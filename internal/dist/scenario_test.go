package dist

// Scenario-layer wire tests: the duration-model options (Model, Corr,
// LoadCOV, ParetoShape) must survive the SimSetup/SimJob protocol so a
// sharded evaluation of a correlated or heavy-tailed scenario stays
// bit-identical to the single-process run at every shard count — the same
// contract TestShardedEvaluateAllBitIdentical pins for the uniform model.

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"robsched/internal/rng"
	"robsched/internal/sim"
)

// TestShardedScenarioBitIdentical runs every non-default duration model ×
// correlation combination through the sharded coordinator at shards 1, 2
// and 4 and requires the gathered makespan vectors to equal the
// single-process sim.RealizeAll bit for bit.
func TestShardedScenarioBitIdentical(t *testing.T) {
	w := testWorkload(t, 31, 30, 3, 3)
	ss := testSchedules(t, w)
	cases := []sim.Options{
		{Model: sim.ModelLognormal},
		{Model: sim.ModelBoundedPareto, ParetoShape: 1.5},
		{Corr: sim.CorrShared, LoadCOV: 0.4},
		{Corr: sim.CorrIndep, LoadCOV: 0.4},
		{Model: sim.ModelLognormal, Corr: sim.CorrShared, LoadCOV: 0.3, Antithetic: true},
	}
	for ci, opt := range cases {
		opt.Realizations = 101 // uneven so shard widths differ
		opt.Workers = 1
		want, err := sim.RealizeAll(ss, opt, rng.New(77))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		for _, shards := range []int{1, 2, 4} {
			pool := NewLocalPool(shards)
			coord := &Coordinator{Pool: pool}
			got, err := coord.RealizeAll(ss, opt, rng.New(77))
			if err != nil {
				t.Fatalf("case %d shards=%d: %v", ci, shards, err)
			}
			for j := range ss {
				for i := range want[j] {
					if math.Float64bits(got[j][i]) != math.Float64bits(want[j][i]) {
						t.Fatalf("case %d shards=%d schedule %d realization %d: %v != %v",
							ci, shards, j, i, got[j][i], want[j][i])
					}
				}
			}
			if err := pool.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestScenarioWireDefaultUnchanged pins the protocol compatibility claim:
// a SimSetup/SimJob with default (uniform, independent) scenario options
// marshals to JSON without any of the new scenario keys, so the default
// wire bytes are identical to the pre-scenario protocol.
func TestScenarioWireDefaultUnchanged(t *testing.T) {
	for name, v := range map[string]any{
		"SimSetup": SimSetup{ID: 1},
		"SimJob":   SimJob{Base: 3, Seeds: []uint64{1, 2}},
	} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"model", "corr", "load_cov", "pareto_shape"} {
			if strings.Contains(string(b), key) {
				t.Errorf("%s default encoding contains scenario key %q: %s", name, key, b)
			}
		}
	}
}

// TestScenarioWireRoundTrip pins that non-default scenario options survive
// a JSON round trip of both carrier messages.
func TestScenarioWireRoundTrip(t *testing.T) {
	su := SimSetup{
		ID:          9,
		Model:       sim.ModelBoundedPareto,
		Corr:        sim.CorrShared,
		LoadCOV:     0.35,
		ParetoShape: 1.5,
	}
	b, err := json.Marshal(su)
	if err != nil {
		t.Fatal(err)
	}
	var got SimSetup
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Model != su.Model || got.Corr != su.Corr || got.LoadCOV != su.LoadCOV || got.ParetoShape != su.ParetoShape {
		t.Errorf("SimSetup round trip lost scenario fields: %+v", got)
	}
	job := SimJob{Model: sim.ModelLognormal, Corr: sim.CorrIndep, LoadCOV: 0.2}
	b, err = json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	var gotJob SimJob
	if err := json.Unmarshal(b, &gotJob); err != nil {
		t.Fatal(err)
	}
	if gotJob.Model != job.Model || gotJob.Corr != job.Corr || gotJob.LoadCOV != job.LoadCOV {
		t.Errorf("SimJob round trip lost scenario fields: %+v", gotJob)
	}
}
