package dist

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robsched/internal/obs"
	"robsched/internal/rng"
	"robsched/internal/sim"
)

// TestPoolExhaustedUnblocksWaiters: a goroutine blocked in get because every
// worker is checked out must fail with ErrPoolExhausted — not block forever —
// when the holders discard their connections instead of returning them.
func TestPoolExhaustedUnblocksWaiters(t *testing.T) {
	pool := NewPool([]Endpoint{liveEndpoint(), liveEndpoint()})
	defer pool.Close()
	c1, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := pool.get()
		errCh <- err
	}()
	select {
	case err := <-errCh:
		t.Fatalf("get returned early with %v; want it to block while holders live", err)
	case <-time.After(20 * time.Millisecond):
	}
	pool.discard(c1)
	pool.discard(c2)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrPoolExhausted) {
			t.Fatalf("waiter got %v, want ErrPoolExhausted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter still blocked after the last holder died")
	}
	if live := pool.Live(); live != 0 {
		t.Errorf("Live() = %d, want 0", live)
	}
}

// TestPoolDiscardIdempotent: repeated discards of one connection decrement
// the live count exactly once, and put after discard never re-idles it.
func TestPoolDiscardIdempotent(t *testing.T) {
	pool := NewPool([]Endpoint{liveEndpoint(), liveEndpoint()})
	defer pool.Close()
	c, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	pool.discard(c)
	pool.discard(c)
	pool.put(c)
	if live := pool.Live(); live != 1 {
		t.Fatalf("Live() = %d after double discard, want 1", live)
	}
	// The surviving worker is handed out; the discarded one never is.
	got, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	if got == c {
		t.Fatal("discarded connection handed out again")
	}
	pool.put(got)
}

// TestTryGetDoesNotBlock: with every worker checked out and no respawn
// budget, tryGet fails immediately with ErrPoolExhausted (the recovery path
// calls it while holding other connections — blocking would self-deadlock).
func TestTryGetDoesNotBlock(t *testing.T) {
	pool := NewPool([]Endpoint{liveEndpoint()})
	defer pool.Close()
	c, err := pool.tryGet()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := pool.tryGet(); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("tryGet = %v, want ErrPoolExhausted", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("tryGet blocked for %v", d)
	}
	pool.put(c)
}

// TestPoolRespawnRecovers: with respawn armed, a pool whose only workers die
// replaces them and the evaluation completes on the replacements —
// bit-identical, with no inline fallback.
func TestPoolRespawnRecovers(t *testing.T) {
	w := testWorkload(t, 23, 20, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 60, Workers: 1}
	want, err := sim.EvaluateAll(ss, opt, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool([]Endpoint{sabotagedEndpoint(), sabotagedEndpoint()})
	defer pool.Close()
	reg := obs.NewRegistry()
	pool.Obs = reg
	pool.Respawn(func() (Endpoint, error) { return LocalEndpoint(), nil }, 4)
	coord := &Coordinator{Pool: pool, Obs: reg}
	got, err := coord.EvaluateAll(ss, opt, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for j := range ss {
		if !metricsBitEqual(got[j], want[j]) {
			t.Errorf("schedule %d: metrics differ after respawn", j)
		}
	}
	if n := reg.Counter("dist.respawns").Value(); n == 0 {
		t.Error("expected at least one respawn")
	}
	if n := reg.Counter("dist.inline_ranges").Value(); n != 0 {
		t.Errorf("inline_ranges = %d, want 0 (respawn should cover the work)", n)
	}
}

// TestPoolRespawnBudgetExhausted: when every spawn attempt fails, the budget
// burns down and checkouts fail with ErrPoolExhausted instead of retrying
// forever.
func TestPoolRespawnBudgetExhausted(t *testing.T) {
	pool := NewPool(nil)
	defer pool.Close()
	reg := obs.NewRegistry()
	pool.Obs = reg
	pool.Respawn(func() (Endpoint, error) { return Endpoint{}, errors.New("spawn refused") }, 2)
	if _, err := pool.get(); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("get = %v, want ErrPoolExhausted", err)
	}
	if n := reg.Counter("dist.respawn_failures").Value(); n != 2 {
		t.Errorf("respawn_failures = %d, want 2 (full budget burned)", n)
	}
}

// TestPoolConcurrentAccounting hammers get/put/discard/KillWorker from many
// goroutines (run under -race): the live count must track discards exactly,
// never go negative, and a discarded connection must never be handed out.
func TestPoolConcurrentAccounting(t *testing.T) {
	const workers = 8
	eps := make([]Endpoint, workers)
	for i := range eps {
		eps[i] = liveEndpoint()
	}
	pool := NewPool(eps)
	defer pool.Close()
	var discards atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(1000 + g))
			for i := 0; i < 60; i++ {
				c, err := pool.get()
				if err != nil {
					if !errors.Is(err, ErrPoolExhausted) {
						t.Errorf("get: %v", err)
					}
					return
				}
				// We are the exclusive holder, so c.dead cannot change
				// under us: reading it here is race-free.
				if c.dead {
					t.Error("dead connection handed out")
				}
				switch r.Intn(10) {
				case 0:
					pool.discard(c)
					pool.discard(c) // double discard must stay a no-op
					discards.Add(1)
				case 1:
					pool.KillWorker(r.Intn(workers))
					pool.put(c)
				default:
					pool.put(c)
				}
			}
		}(g)
	}
	wg.Wait()
	live := pool.Live()
	if live < 0 {
		t.Fatalf("Live() = %d, negative", live)
	}
	if want := workers - int(discards.Load()); live != want {
		t.Errorf("Live() = %d, want %d (%d discards)", live, want, discards.Load())
	}
}
