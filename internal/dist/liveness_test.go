package dist

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"robsched/internal/obs"
	"robsched/internal/rng"
	"robsched/internal/sim"
	"robsched/internal/wio"
)

// stallEndpoint builds a worker that swallows every frame and never answers —
// a hung process, not a dead one. Only a deadline can unmask it.
func stallEndpoint() Endpoint {
	jobR, jobW := io.Pipe()
	resR, resW := io.Pipe()
	go func() {
		for {
			if _, _, err := wio.ReadFrame(jobR, nil); err != nil {
				resW.CloseWithError(err)
				return
			}
		}
	}()
	return Endpoint{
		W:    jobW,
		R:    resR,
		Kill: func() { jobW.CloseWithError(io.ErrClosedPipe); resR.CloseWithError(io.ErrClosedPipe) },
	}
}

// TestStalledWorkerDeadline: without a timeout a stalled worker would hang
// RealizeAll forever; with one armed the coordinator declares it dead,
// counts the missed heartbeat, reassigns the window and still produces
// bit-identical metrics.
func TestStalledWorkerDeadline(t *testing.T) {
	w := testWorkload(t, 7, 20, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 60, Workers: 1}
	want, err := sim.EvaluateAll(ss, opt, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool([]Endpoint{stallEndpoint(), liveEndpoint()})
	defer pool.Close()
	reg := obs.NewRegistry()
	pool.Obs = reg
	coord := &Coordinator{Pool: pool, Obs: reg, Timeout: 150 * time.Millisecond}
	done := make(chan struct{})
	var got []sim.Metrics
	var evalErr error
	go func() {
		got, evalErr = coord.EvaluateAll(ss, opt, rng.New(9))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("EvaluateAll hung on a stalled worker despite the deadline")
	}
	if evalErr != nil {
		t.Fatal(evalErr)
	}
	for j := range ss {
		if !metricsBitEqual(got[j], want[j]) {
			t.Errorf("schedule %d: metrics differ after stalled-worker reassignment", j)
		}
	}
	if n := reg.Counter("dist.heartbeat_misses").Value(); n == 0 {
		t.Error("expected a heartbeat miss for the stalled worker")
	}
	if n := reg.Counter("dist.worker_deaths").Value(); n == 0 {
		t.Error("expected the stalled worker to be declared dead")
	}
}

// scriptedEndpoint runs fn against the coordinator side of a pipe pair:
// fn reads job frames from r and writes response frames to w.
func scriptedEndpoint(fn func(r io.Reader, w *io.PipeWriter)) Endpoint {
	jobR, jobW := io.Pipe()
	resR, resW := io.Pipe()
	go fn(jobR, resW)
	return Endpoint{
		W:    jobW,
		R:    resR,
		Kill: func() { jobW.CloseWithError(io.ErrClosedPipe); resR.CloseWithError(io.ErrClosedPipe) },
	}
}

// TestHeartbeatExtendsDeadline: a worker that takes far longer than the
// frame deadline but pulses heartbeats stays alive; the identical worker
// without pulses is declared dead. This pins down exactly what a heartbeat
// buys: it re-arms the per-frame deadline, nothing more.
func TestHeartbeatExtendsDeadline(t *testing.T) {
	respond := func(w *io.PipeWriter, job SimJob) {
		bw := bufio.NewWriter(w)
		_ = sendJSON(bw, KAck, Ack{Seq: job.Seq})
		_ = wio.WriteFrame(bw, KSimVec, encodeVec(0, make([]float64, len(job.Seeds))))
		_ = wio.WriteFrame(bw, KSimDone, nil)
		_ = bw.Flush()
	}
	slowWorker := func(pulse bool) func(r io.Reader, w *io.PipeWriter) {
		return func(r io.Reader, w *io.PipeWriter) {
			_, payload, err := wio.ReadFrame(r, nil)
			if err != nil {
				w.CloseWithError(err)
				return
			}
			var job SimJob
			if err := parseJSON(payload, &job); err != nil {
				w.CloseWithError(err)
				return
			}
			for i := 0; i < 10; i++ { // 300ms of "compute", 3x the deadline
				time.Sleep(30 * time.Millisecond)
				if pulse {
					if err := wio.WriteFrame(w, KHeartbeat, nil); err != nil {
						return
					}
				}
			}
			respond(w, job)
			for { // drain further frames (e.g. Close's KShutdown) until torn down
				if _, _, err := wio.ReadFrame(r, nil); err != nil {
					w.CloseWithError(err)
					return
				}
			}
		}
	}
	job := SimJob{Seq: 7, Seeds: []uint64{1, 2, 3}}

	pool := NewPool([]Endpoint{scriptedEndpoint(slowWorker(true))})
	defer pool.Close()
	conn, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	conn.arm(100*time.Millisecond, 0)
	if _, err := dispatchSim(conn, job, 1); err != nil {
		t.Fatalf("heartbeating slow worker declared dead: %v", err)
	}
	pool.put(conn)

	silent := NewPool([]Endpoint{scriptedEndpoint(slowWorker(false))})
	defer silent.Close()
	conn, err = silent.get()
	if err != nil {
		t.Fatal(err)
	}
	conn.arm(100*time.Millisecond, 0)
	if _, err := dispatchSim(conn, job, 1); !errors.Is(err, ErrDeadline) {
		t.Fatalf("silent slow worker: %v, want ErrDeadline", err)
	}
	silent.discard(conn)
}

// TestJobBudgetBoundsHeartbeats: heartbeats re-arm the frame deadline but
// never the whole-job budget, so a worker stuck in a loop that still pulses
// is eventually declared dead too.
func TestJobBudgetBoundsHeartbeats(t *testing.T) {
	pool := NewPool([]Endpoint{scriptedEndpoint(func(r io.Reader, w *io.PipeWriter) {
		if _, _, err := wio.ReadFrame(r, nil); err != nil {
			w.CloseWithError(err)
			return
		}
		for { // pulse forever, never respond
			time.Sleep(20 * time.Millisecond)
			if err := wio.WriteFrame(w, KHeartbeat, nil); err != nil {
				return
			}
		}
	})})
	defer pool.Close()
	conn, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	conn.arm(100*time.Millisecond, 300*time.Millisecond)
	start := time.Now()
	_, err = dispatchSim(conn, SimJob{Seq: 1, Seeds: []uint64{1}}, 1)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("immortal heartbeater: %v, want ErrDeadline", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("job budget took %v to fire", d)
	}
	pool.discard(conn)
}

// TestWithHeartbeatPulses: the worker-side pulse generator emits heartbeat
// frames during a long compute, and is fully reaped before it returns — no
// pulse can ever land after (or inside) the response that follows.
func TestWithHeartbeatPulses(t *testing.T) {
	var buf bytes.Buffer
	fw := &frameWriter{w: bufio.NewWriter(&buf)}
	err := withHeartbeat(fw, 10, func() error {
		time.Sleep(80 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.write(KOK, nil); err != nil {
		t.Fatal(err)
	}
	kinds := []byte{}
	for {
		kind, _, err := wio.ReadFrame(&buf, nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream corrupted by heartbeat interleaving: %v", err)
		}
		kinds = append(kinds, kind)
	}
	if len(kinds) < 2 {
		t.Fatalf("got %d frames, want heartbeats plus the response", len(kinds))
	}
	for _, k := range kinds[:len(kinds)-1] {
		if k != KHeartbeat {
			t.Errorf("mid-compute frame kind %d, want heartbeat", k)
		}
	}
	if kinds[len(kinds)-1] != KOK {
		t.Errorf("final frame kind %d, want the response", kinds[len(kinds)-1])
	}
	// millis <= 0 must not start a pulse goroutine at all.
	buf.Reset()
	if err := withHeartbeat(fw, 0, func() error { time.Sleep(30 * time.Millisecond); return nil }); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("disabled heartbeat still wrote frames")
	}
}

// TestSolveWithTimeoutBitIdentical: arming the liveness machinery on a
// healthy pool (heartbeats flowing, budgets armed) must not perturb the
// trajectory — the sequence numbers and pulses are invisible to the GA.
func TestSolveWithTimeoutBitIdentical(t *testing.T) {
	w := testWorkload(t, 13, 20, 3, 3)
	opt := defaultIslandOpts()
	want, err := robustSolveRef(t, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewLocalPool(2)
	defer pool.Close()
	coord := &Coordinator{Pool: pool, Timeout: 2 * time.Second}
	got, err := coord.Solve(w, opt, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if !schedulesEqual(got.Schedule, want.Schedule) || got.Generations != want.Generations {
		t.Error("timeout-armed solve diverged from the in-process trajectory")
	}
}
