package dist

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"robsched/internal/ga"
	"robsched/internal/obs"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/sim"
	"robsched/internal/wio"
)

// Coordinator scatters work over a worker pool and gathers the results.
// All fields may be shared across concurrent calls; Obs and Trace are
// optional (nil disables telemetry). Per-worker counters are published as
// dist.worker<id>.* so a skewed or dying worker is visible in a snapshot.
//
// Timeout, when positive, arms the liveness machinery: every frame exchange
// with a worker must produce a frame (a response or a heartbeat — workers
// are asked to pulse at Timeout/4 while computing) within Timeout, and every
// whole job exchange must finish within a budget derived from its cost
// estimate, or the worker is declared dead, killed, and its work reassigned.
// Timeout 0 (the default) disables deadlines and heartbeats entirely: the
// fault-free fast path pays nothing for the machinery.
type Coordinator struct {
	Pool  *Pool
	Obs   *obs.Registry
	Trace *obs.Tracer

	// Timeout is the per-frame liveness deadline; see the type comment.
	Timeout time.Duration
	// NoCheckpoint disables the per-barrier island checkpoints (and with
	// them, mid-solve recovery): a worker death then aborts the solve after
	// the pool's own bookkeeping. Ablation and benchmarking knob.
	NoCheckpoint bool

	// PipelineDepth is the credit window of the sim dispatcher: how many
	// realization ranges are kept in flight per worker connection. 1
	// restores strict request/response dispatch (the worker idles for a
	// full round trip between ranges); 0 (the default) derives a depth
	// from the transport's RTT hint — see pipelineDepth.
	PipelineDepth int
	// RangeSize overrides the realization-range granularity (realizations
	// per dispatched range). 0 derives it from the workload and pool size —
	// see rangeWidth.
	RangeSize int

	// seq numbers every request that expects an attributable response, so a
	// transport that duplicates or replays frames can never pass a stale
	// response off as the current one.
	seq atomic.Uint64
}

// counter bumps both the aggregate and the per-worker form of a counter.
func (c *Coordinator) counter(name string, worker int) {
	c.Obs.Counter("dist." + name).Inc()
	c.Obs.Counter(fmt.Sprintf("dist.worker%d.%s", worker, name)).Inc()
}

// noteDeath records a dead worker, distinguishing deadline expiries (the
// heartbeat the coordinator was owed never came) from transport failures.
func (c *Coordinator) noteDeath(worker int, err error) {
	if errors.Is(err, ErrDeadline) {
		c.counter("heartbeat_misses", worker)
	}
	c.counter("worker_deaths", worker)
}

// heartbeatMillis is the pulse interval requested from workers: a quarter
// of the frame deadline, so a healthy-but-busy worker always lands several
// pulses per deadline window. 0 when liveness is off.
func (c *Coordinator) heartbeatMillis() int {
	if c.Timeout <= 0 {
		return 0
	}
	ms := int(c.Timeout / 4 / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// jobBudget bounds a whole job exchange from a per-job cost estimate in
// work units (realizations×schedules for sim windows, generations×popsize
// for epochs): one frame deadline per 1000 units on top of the base, capped
// at 64 deadlines. Heartbeats bound the gap between frames; the budget
// bounds the total, so a worker stuck in a loop that still pulses is
// eventually declared dead too.
func (c *Coordinator) jobBudget(units float64) time.Duration {
	if c.Timeout <= 0 {
		return 0
	}
	mult := 1 + units/1000
	if mult > 64 {
		mult = 64
	}
	return time.Duration(float64(c.Timeout) * mult)
}

// transient reports whether an exchange failure means "this worker is
// unusable, reassign the work" (I/O errors, deadlines, protocol garbage) as
// opposed to a remote job-level error over a healthy connection.
func transient(err error) bool {
	var we *WorkerError
	if errors.As(err, &we) {
		return !we.Remote
	}
	return false
}

// shardRange is one contiguous realization window.
type shardRange struct{ base, width int }

// partition cuts r realizations into at most n contiguous near-equal
// windows in index order: the first r%n windows carry one extra
// realization. With r < n the trailing empty windows are dropped.
func partition(r, n int) []shardRange {
	if n > r {
		n = r
	}
	out := make([]shardRange, 0, n)
	base := 0
	for i := 0; i < n; i++ {
		width := r / n
		if i < r%n {
			width++
		}
		out = append(out, shardRange{base, width})
		base += width
	}
	return out
}

// partitionWidth cuts total realizations into contiguous windows of the
// given width (the last one short) in index order.
func partitionWidth(total, width int) []shardRange {
	if width < 1 {
		width = 1
	}
	out := make([]shardRange, 0, (total+width-1)/width)
	for base := 0; base < total; base += width {
		w := width
		if base+w > total {
			w = total - base
		}
		out = append(out, shardRange{base, w})
	}
	return out
}

// rangeWidth picks the realization-range granularity: several ranges per
// worker, so pipelines fill, a straggling range rebalances onto whichever
// worker frees up first, and a worker death forfeits only a small window —
// but never below a floor where per-range framing overhead would show.
func (c *Coordinator) rangeWidth(total, workers int) int {
	if c.RangeSize > 0 {
		return c.RangeSize
	}
	w := total / (workers * 8)
	if w < 32 {
		w = 32
	}
	return w
}

// pipelineDepth sizes the per-connection credit window from the
// transport's RTT hint — a small bandwidth-delay product: depth 2 on a
// zero-latency transport (the worker computes one range while the next is
// already queued behind it), plus one credit per 200µs of round trip so
// the link pipe stays full at wide-area latencies, capped where deeper
// queues only add memory. PipelineDepth overrides; 1 disables pipelining.
func (c *Coordinator) pipelineDepth(rtt time.Duration) int {
	d := c.PipelineDepth
	if d == 0 {
		d = 2 + int(rtt/(200*time.Microsecond))
	}
	if d < 1 {
		d = 1
	}
	if d > 32 {
		d = 32
	}
	return d
}

// RealizeAll is the scatter/gather form of sim.RealizeAll: the realization
// range is partitioned into contiguous windows (several per pool worker —
// see rangeWidth), the workload and schedules are bound to each worker
// connection once via KSimSetup, and the tiny per-window KSimRange requests
// are pipelined over every connection with a credit window sized from the
// transport's RTT (see pipelineDepth). Result vectors commit out of
// arrival order directly into their windows; the assembled makespans — and
// every metric computed from them — are bit-identical to the single-process
// sim.RealizeAll for any shard count, worker count, or arrival order,
// because the seed vector (and the root stream advance) is computed exactly
// as the single-process run computes it, each window is realized from its
// own (base, seeds), and window placement is by index, not by arrival.
//
// A worker that dies (or, with Timeout armed, stalls) mid-range forfeits
// only its in-flight windows: they are requeued and reassigned to whichever
// live worker frees up first; with no live workers left the leftover
// windows are realized in-process. Either way a window's seeds and base are
// unchanged, so the results are too — a window computed twice (the
// false-positive death of a slow-but-alive worker) overwrites itself with
// identical bytes.
func (c *Coordinator) RealizeAll(ss []*schedule.Schedule, opt sim.Options, root *rng.Source) ([][]float64, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(ss) == 0 {
		return nil, fmt.Errorf("dist: no schedules to realize")
	}
	if c.Trace != nil {
		defer c.Trace.Scope("dist").Span("realize_all",
			obs.F("realizations", float64(opt.Realizations)),
			obs.F("schedules", float64(len(ss))),
			obs.F("shards", float64(c.Pool.Size())),
		)()
	}
	seeds := sim.SeedVector(opt.Realizations, opt.Antithetic, root)
	wlDoc := wio.NewWorkloadJSON(ss[0].Workload())
	sDocs := make([]wio.ScheduleJSON, len(ss))
	for i, s := range ss {
		sDocs[i] = wio.NewScheduleJSON(s)
	}
	out := make([][]float64, len(ss))
	for j := range out {
		out[j] = make([]float64, opt.Realizations)
	}
	nw := c.Pool.Size()
	if nw < 1 {
		nw = 1 // no workers: inline fallback realizes every window
	}
	ranges := partitionWidth(opt.Realizations, c.rangeWidth(opt.Realizations, nw))
	d := &simDispatch{
		c:      c,
		out:    out,
		seeds:  seeds,
		ranges: ranges,
		setup: SimSetup{
			ID:              c.seq.Add(1),
			Workload:        wlDoc,
			Schedules:       sDocs,
			Antithetic:      opt.Antithetic,
			BatchSize:       opt.BatchSize,
			Workers:         opt.Workers,
			Model:           opt.Model,
			Corr:            opt.Corr,
			LoadCOV:         opt.LoadCOV,
			ParetoShape:     opt.ParetoShape,
			HeartbeatMillis: c.heartbeatMillis(),
		},
		committed: make([]bool, len(ranges)),
	}
	runners := nw
	if runners > len(ranges) {
		runners = len(ranges)
	}
	var wg sync.WaitGroup
	for i := 0; i < runners; i++ {
		// Deal each runner its first range up front: every checked-out
		// connection is guaranteed to be exercised at least once, so a dead
		// worker is always detected (and its range requeued) rather than
		// depending on goroutine scheduling to route work its way.
		ri, ok := d.take()
		if !ok {
			break
		}
		wg.Add(1)
		go func(first int) {
			defer wg.Done()
			d.run(first)
		}(ri)
	}
	wg.Wait()
	if d.fatalErr != nil {
		return nil, d.fatalErr
	}
	// Inline drain: whatever the pool could not finish (exhausted, closed,
	// or empty from the start) is realized in-process — identical vectors by
	// construction.
	wOpt := sim.Options{
		Antithetic: opt.Antithetic, BatchSize: opt.BatchSize, Workers: opt.Workers,
		Model: opt.Model, Corr: opt.Corr, LoadCOV: opt.LoadCOV, ParetoShape: opt.ParetoShape,
	}
	for ri, sh := range ranges {
		if d.committed[ri] {
			continue
		}
		c.Obs.Counter("dist.inline_ranges").Inc()
		mks, err := sim.RealizeSeeded(ss, wOpt, seeds[sh.base:sh.base+sh.width], sh.base)
		if err != nil {
			return nil, err
		}
		for j := range out {
			copy(out[j][sh.base:sh.base+sh.width], mks[j])
		}
	}
	return out, nil
}

// flight is one dispatched range riding the credit window: its range index
// and the seq its ack must echo.
type flight struct {
	ri  int
	seq uint64
}

// simDispatch is the shared state of one RealizeAll fan-out: the work list
// (ranges yet to be taken plus ranges requeued by dead workers), the commit
// ledger, and the first fatal (non-transient) error. Every method locks;
// the out windows themselves need no locking because a range is written
// only by the connection currently holding it — a range is requeued only
// after its holder's exchange failed, and rewrites are byte-identical.
type simDispatch struct {
	c      *Coordinator
	out    [][]float64
	seeds  []uint64
	ranges []shardRange
	setup  SimSetup

	mu        sync.Mutex
	next      int
	requeued  []int
	committed []bool
	fatalErr  error
}

// take hands out the next range to dispatch — requeued ranges first (they
// block completion), then fresh ones — or reports that no undispatched work
// remains.
func (d *simDispatch) take() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fatalErr != nil {
		return 0, false
	}
	if n := len(d.requeued); n > 0 {
		ri := d.requeued[n-1]
		d.requeued = d.requeued[:n-1]
		return ri, true
	}
	if d.next < len(d.ranges) {
		ri := d.next
		d.next++
		return ri, true
	}
	return 0, false
}

// giveBack returns an uncommitted in-flight range to the work list after
// its worker died.
func (d *simDispatch) giveBack(ri int) {
	d.mu.Lock()
	d.requeued = append(d.requeued, ri)
	d.mu.Unlock()
}

// commit marks a range's vectors as delivered; false means a duplicate
// delivery (already committed by an earlier holder) that overwrote the
// window with identical bytes.
func (d *simDispatch) commit(ri int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.committed[ri] {
		return false
	}
	d.committed[ri] = true
	return true
}

// fatal records the first job-level (non-transient) error; take stops
// issuing work once one is set.
func (d *simDispatch) fatal(err error) {
	d.mu.Lock()
	if d.fatalErr == nil {
		d.fatalErr = err
	}
	d.mu.Unlock()
}

func (d *simDispatch) hasWork() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fatalErr == nil && (len(d.requeued) > 0 || d.next < len(d.ranges))
}

// run is one dispatch runner: check a worker out, pipeline ranges over it
// until the work dries up or the connection dies, repeat. It arrives with
// its first range pre-taken (first) and re-takes between connections, so a
// runner never checks a worker out without work in hand. Pool exhaustion
// (or closure) ends the runner; leftover ranges fall to the inline drain.
func (d *simDispatch) run(first int) {
	ri, ok := first, true
	for ok {
		conn, err := d.c.Pool.get()
		if err != nil {
			d.giveBack(ri)
			return
		}
		d.runConn(conn, ri)
		ri, ok = d.take()
	}
}

// runConn drives one connection with a credit-based pipeline: a sender
// goroutine takes ranges and ships them (setup first, once), acquiring a
// credit from the bounded inflight channel before each send; this
// goroutine is the receiver, retiring flights in send order and releasing
// their credits. Writes coalesce in the connection's buffer and flush when
// the window fills or the work dries up, so a round of small control
// frames costs one syscall. A transport failure stops the sender, requeues
// every unretired flight, and discards the connection; a remote job-level
// error is fatal to the job but the remaining flights still drain so the
// connection comes back clean. The caller's pre-taken range (first) is the
// sender's first dispatch.
func (d *simDispatch) runConn(conn *Conn, first int) {
	depth := d.c.pipelineDepth(conn.rtt)
	inflight := make(chan flight, depth)
	stopSend := make(chan struct{})
	sendDone := make(chan struct{})
	var sendErr error
	go func() {
		defer close(sendDone)
		defer close(inflight)
		setupSent := false
		next := first
		for {
			ri := next
			if ri < 0 {
				var ok bool
				ri, ok = d.take()
				if !ok {
					break
				}
			}
			next = -1
			it := flight{ri: ri, seq: d.c.seq.Add(1)}
			// Acquire a credit before the bytes go out. A full window is
			// the flush point: the worker gets everything queued so far
			// while we wait for a credit (or for the receiver to stop us).
			select {
			case inflight <- it:
			default:
				if err := conn.flush(); err != nil {
					d.giveBack(ri)
					sendErr = err
					return
				}
				select {
				case inflight <- it:
				case <-stopSend:
					d.giveBack(ri)
					return
				}
			}
			conn.armWrite(d.c.Timeout, 0)
			if !setupSent {
				if err := conn.sendNoFlush(KSimSetup, d.setup); err != nil {
					sendErr = err
					return
				}
				setupSent = true
			}
			sh := d.ranges[it.ri]
			req := SimRange{
				Setup: d.setup.ID,
				Base:  sh.base,
				Seeds: d.seeds[sh.base : sh.base+sh.width],
				Seq:   it.seq,
			}
			if err := conn.sendNoFlush(KSimRange, req); err != nil {
				sendErr = err
				return
			}
		}
		if err := conn.flush(); err != nil {
			sendErr = err
		}
	}()
	var recvErr error
	for it := range inflight {
		if recvErr != nil {
			d.giveBack(it.ri)
			continue
		}
		if err := d.recvRange(conn, it.ri, it.seq); err != nil {
			if transient(err) {
				recvErr = err
				close(stopSend)
				d.giveBack(it.ri)
				continue
			}
			// The job itself is bad; the worker is fine. Keep draining the
			// remaining flights so no stale response frames linger on the
			// connection.
			d.fatal(err)
		}
	}
	<-sendDone
	switch {
	case recvErr != nil:
		d.c.noteDeath(conn.id, recvErr)
		d.c.Pool.discard(conn)
	case sendErr != nil:
		d.c.noteDeath(conn.id, sendErr)
		d.c.Pool.discard(conn)
	default:
		d.c.Pool.put(conn)
	}
}

// recvRange retires one flight: the seq-echoing KAck, one vector per
// schedule decoded straight into the range's window of each output vector,
// and KSimDone. Protocol violations — a mismatched seq, a vector for the
// wrong schedule or of the wrong width — are worker-fatal *WorkerErrors.
func (d *simDispatch) recvRange(conn *Conn, ri int, seq uint64) error {
	sh := d.ranges[ri]
	conn.armRead(d.c.Timeout, d.c.jobBudget(float64(sh.width*len(d.out))))
	kind, payload, err := conn.recv()
	if err != nil {
		return err
	}
	if kind != KAck {
		return conn.werr(kind, fmt.Errorf("dist: frame kind %d, want range ack", kind))
	}
	var ack Ack
	if err := parseJSON(payload, &ack); err != nil {
		return conn.werr(KAck, err)
	}
	if ack.Seq != seq {
		return conn.werr(KAck, fmt.Errorf("dist: range ack for seq %d, want %d", ack.Seq, seq))
	}
	for j := range d.out {
		kind, payload, err := conn.recv()
		if err != nil {
			return err
		}
		if kind != KSimVec {
			return conn.werr(kind, fmt.Errorf("dist: frame kind %d, want sim vector", kind))
		}
		if err := decodeVecInto(d.out[j][sh.base:sh.base+sh.width], j, payload); err != nil {
			return conn.werr(KSimVec, err)
		}
	}
	kind, _, err = conn.recv()
	if err != nil {
		return err
	}
	if kind != KSimDone {
		return conn.werr(kind, fmt.Errorf("dist: frame kind %d, want sim done", kind))
	}
	if d.commit(ri) {
		d.c.counter("sim_ranges", conn.id)
	}
	return nil
}

// dispatchSim runs the KSimJob exchange on one connection: the job frame
// out; the sequence-echoing KAck, one vector per schedule and KSimDone
// back. Protocol violations — including an ack for a different job, the
// fingerprint of a duplicated or replayed frame — are worker-fatal
// *WorkerErrors.
func dispatchSim(conn *Conn, job SimJob, schedules int) ([][]float64, error) {
	if err := conn.send(KSimJob, job); err != nil {
		return nil, err
	}
	kind, payload, err := conn.recv()
	if err != nil {
		return nil, err
	}
	if kind != KAck {
		return nil, conn.werr(kind, fmt.Errorf("dist: frame kind %d, want job ack", kind))
	}
	var ack Ack
	if err := parseJSON(payload, &ack); err != nil {
		return nil, conn.werr(KAck, err)
	}
	if ack.Seq != job.Seq {
		return nil, conn.werr(KAck, fmt.Errorf("dist: job ack for seq %d, want %d", ack.Seq, job.Seq))
	}
	out := make([][]float64, schedules)
	for j := 0; j < schedules; j++ {
		kind, payload, err := conn.recv()
		if err != nil {
			return nil, err
		}
		if kind != KSimVec {
			return nil, conn.werr(kind, fmt.Errorf("dist: frame kind %d, want sim vector", kind))
		}
		out[j] = make([]float64, len(job.Seeds))
		if err := decodeVecInto(out[j], j, payload); err != nil {
			return nil, conn.werr(KSimVec, err)
		}
	}
	kind, _, err = conn.recv()
	if err != nil {
		return nil, err
	}
	if kind != KSimDone {
		return nil, conn.werr(kind, fmt.Errorf("dist: frame kind %d, want sim done", kind))
	}
	return out, nil
}

// EvaluateAll is the scatter/gather form of sim.EvaluateAll: metrics
// assembled from the sharded realization vectors, bit-identical to the
// single-process call for any shard count.
func (c *Coordinator) EvaluateAll(ss []*schedule.Schedule, opt sim.Options, root *rng.Source) ([]sim.Metrics, error) {
	mks, err := c.RealizeAll(ss, opt, root)
	if err != nil {
		return nil, err
	}
	out := make([]sim.Metrics, len(ss))
	for j, s := range ss {
		out[j] = sim.MetricsFromSamples(s.Makespan(), mks[j], opt.Deadline)
	}
	return out, nil
}

// islandOp is one barrier operation of an island solve, recorded since the
// last checkpoint so a recovered host can replay its way back to the
// current round. Exactly one field is set. Migrants hold the full ring's
// routing for that barrier — the genotypes as they were at the barrier, not
// references into mutable state — so a replay is a pure function of
// (checkpoint, oplog).
type islandOp struct {
	epoch    *EpochReq
	migrants []Migrant
}

// solveHost is one island-hosting slot of a solve: a remote worker
// connection, or — after graceful degradation — an in-process islandHost
// built on the coordinator's own engine.
type solveHost struct {
	conn    *Conn
	local   *islandHost
	islands []int
}

func (h *solveHost) owns(island int) bool {
	for _, i := range h.islands {
		if i == island {
			return true
		}
	}
	return false
}

// solveRun is the mutable state of one island-sharded Solve: the per-island
// seeds and latest checkpoints (together, the recovery baseline), the op
// log since the last checkpoint, and the current best states folded from
// host responses.
type solveRun struct {
	c     *Coordinator
	eng   *robust.Engine
	wlDoc wio.WorkloadJSON
	sopt  SolverOptions
	k     int
	seeds []uint64
	ckpts []*IslandCheckpoint
	oplog []islandOp
	bests []IslandState
	hosts []*solveHost
}

// Solve is the island-sharded form of robust.Solve: the GA islands are
// hosted by worker processes (round-robin when there are more islands than
// workers) and the coordinator drives the epoch barriers, routes the ring
// migrants in island order, applies the global stagnation rule and picks
// the final best — the exact control flow of the in-process ga.RunIslands,
// so the trajectory and the returned schedule are bit-identical for any
// worker count.
//
// Unless NoCheckpoint is set, the coordinator pulls a full state checkpoint
// of every island (population, fitnesses, best, stagnation counter, rng
// stream position) at each barrier. A worker that dies mid-run is then no
// longer fatal: its islands are restored from their last checkpoints onto a
// fresh worker (respawned by the pool when armed) or a surviving one, the
// barrier ops since the checkpoint are replayed, and the trajectory
// continues bit-identically — the GA step is a pure function of the
// checkpointed state. With the pool exhausted the islands fold into the
// coordinator process itself (graceful degradation) and the solve still
// completes, still bit-identically.
//
// Telemetry (Options.Obs/Trace/Observer) and OnGeneration stay in the
// coordinator process and are not forwarded to workers; Solve rejects the
// hooks that would require cross-process streaming. Concurrent Solve calls
// sharing one pool are not supported (each checks out several workers for
// its whole run and could deadlock another).
func (c *Coordinator) Solve(w *platform.Workload, opt robust.Options, root *rng.Source) (*robust.Result, error) {
	eng, err := robust.NewEngine(w, opt)
	if err != nil {
		return nil, err
	}
	opt = eng.Opt
	if opt.Islands < 2 {
		return nil, fmt.Errorf("dist: island solve needs Options.Islands >= 2, got %d", opt.Islands)
	}
	if opt.OnGeneration != nil || opt.Observer != nil {
		return nil, fmt.Errorf("dist: per-generation hooks are not supported across processes")
	}
	if c.Trace != nil {
		defer c.Trace.Scope("dist").Span("solve_islands",
			obs.F("islands", float64(opt.Islands)),
			obs.F("workers", float64(c.Pool.Size())),
		)()
	}
	k := opt.Islands
	// Island seeds, derived in island order: rng.New(seeds[i]) in a worker
	// is exactly the root.Split() fan-out of the in-process run, and root
	// advances identically.
	seeds := make([]uint64, k)
	for i := range seeds {
		seeds[i] = root.SplitSeed()
	}
	s := &solveRun{
		c:     c,
		eng:   eng,
		wlDoc: wio.NewWorkloadJSON(w),
		sopt: SolverOptions{
			Mode:           int(opt.Mode),
			Eps:            opt.Eps,
			SlackMetric:    int(opt.SlackMetric),
			PopSize:        opt.PopSize,
			CrossoverRate:  opt.CrossoverRate,
			MutationRate:   opt.MutationRate,
			MaxGenerations: opt.MaxGenerations,
			Stagnation:     opt.Stagnation,
			NoHEFTSeed:     opt.NoHEFTSeed,
			NoMetricsCache: opt.NoMetricsCache,
			NoDeltaDecode:  opt.NoDeltaDecode,
			Workers:        opt.Workers,
		},
		k:     k,
		seeds: seeds,
		ckpts: make([]*IslandCheckpoint, k),
		bests: make([]IslandState, k),
	}

	nw := c.Pool.Size()
	if nw > k {
		nw = k
	}
	if nw < 1 {
		nw = 1 // empty pool: one host, folded in-process immediately
	}
	// Round-robin hosting: host j owns islands {i : i mod nw == j}.
	for j := 0; j < nw; j++ {
		s.hosts = append(s.hosts, &solveHost{})
	}
	for i := 0; i < k; i++ {
		h := s.hosts[i%nw]
		h.islands = append(h.islands, i)
	}
	defer s.release()
	for _, h := range s.hosts {
		if err := s.attach(h); err != nil {
			return nil, err
		}
	}

	every := opt.MigrationEvery
	if every <= 0 {
		every = ga.DefaultMigrationEvery
	}
	totalGens := opt.MaxGenerations
	gen := 0
	stagnated := false
	// Checkpoints overlap with dispatch: instead of a dedicated round trip
	// after each barrier, the checkpoint pull is deferred and pipelined with
	// the next round's epoch in one flush (see runOverlappedRound). The
	// worker answers the checkpoint from its post-barrier state — byte-
	// identical to the eager pull — before starting the epoch, so the
	// recovery baseline is the same and a whole round trip per round
	// disappears. The final round's checkpoint is simply dropped: there is
	// nothing left to recover after the solve returns.
	pendingCkpt := false
	for gen < totalGens {
		epoch := every
		if gen+epoch > totalGens {
			epoch = totalGens - gen
		}
		op := islandOp{epoch: &EpochReq{StartGen: gen, Gens: epoch}}
		if pendingCkpt {
			pendingCkpt = false
			if err := s.runOverlappedRound(op); err != nil {
				return nil, err
			}
		} else if err := s.runOp(op); err != nil {
			return nil, err
		}
		gen += epoch
		if gen < totalGens {
			// Ring migration, snapshot first: island i receives the
			// pre-migration best of island i-1, exactly like the in-process
			// barrier.
			migrants := make([]Migrant, 0, k)
			for i := 0; i < k; i++ {
				from := (i - 1 + k) % k
				migrants = append(migrants, Migrant{Island: i, Genotype: s.bests[from].Best})
			}
			if err := s.runOp(islandOp{migrants: migrants}); err != nil {
				return nil, err
			}
		}
		if !c.NoCheckpoint {
			pendingCkpt = true
		}
		if opt.Stagnation > 0 {
			all := true
			for i := range s.bests {
				if s.bests[i].SinceImprove < opt.Stagnation {
					all = false
					break
				}
			}
			if all {
				stagnated = true
				break
			}
		}
	}

	// pickBest: strictly-greater comparison keeps the earliest island on
	// ties, matching the in-process rule.
	bi := 0
	for i := 1; i < k; i++ {
		if s.bests[i].BestFitness() > s.bests[bi].BestFitness() {
			bi = i
		}
	}
	win := s.bests[bi]
	return eng.Result(ga.Result[*robust.Chromosome]{
		Best:        robust.NewChromosome(win.Best.Order, win.Best.Proc),
		BestFitness: win.BestFitness(),
		Generations: gen,
		Stagnated:   stagnated,
	})
}

// initFor builds the (re)init message for a host: every owned island with
// its seed and, when one exists, its latest checkpoint to restore from.
func (s *solveRun) initFor(h *solveHost) IslandInit {
	init := IslandInit{
		Workload:        s.wlDoc,
		Opt:             s.sopt,
		Seq:             s.c.seq.Add(1),
		HeartbeatMillis: s.c.heartbeatMillis(),
	}
	for _, i := range h.islands {
		init.Islands = append(init.Islands, IslandSeed{Island: i, Seed: s.seeds[i], Restore: s.ckpts[i]})
	}
	return init
}

// attach brings a host online for the first time: a pool worker when one is
// available, the in-process fallback otherwise. Transport failures recover
// via recoverHost (which re-inits), so attach only fails on genuine errors.
func (s *solveRun) attach(h *solveHost) error {
	for {
		conn, err := s.c.Pool.tryGet()
		if err != nil {
			return s.foldLocal(h)
		}
		if err := s.initRemote(conn, h); err != nil {
			if !transient(err) {
				return err
			}
			s.c.noteDeath(conn.id, err)
			s.c.Pool.discard(conn)
			continue
		}
		h.conn = conn
		s.c.counter("island_inits", conn.id)
		return nil
	}
}

// initRemote runs the init exchange and replays the oplog on a candidate
// connection, folding the resulting states. On success the host's islands
// are fully caught up to the current round.
func (s *solveRun) initRemote(conn *Conn, h *solveHost) error {
	init := s.initFor(h)
	conn.arm(s.c.Timeout, s.c.jobBudget(float64(s.sopt.PopSize*len(h.islands))))
	if err := conn.send(KIslandInit, init); err != nil {
		return err
	}
	if err := s.foldStates(h, conn, init.Seq); err != nil {
		return err
	}
	for _, op := range s.oplog {
		if err := s.remoteOp(conn, h, op); err != nil {
			return err
		}
	}
	return nil
}

// remoteOp runs one barrier op on a remote host and folds its states.
func (s *solveRun) remoteOp(conn *Conn, h *solveHost, op islandOp) error {
	seq := s.c.seq.Add(1)
	if op.epoch != nil {
		req := *op.epoch
		req.Seq = seq
		conn.arm(s.c.Timeout, s.c.jobBudget(float64(req.Gens*s.sopt.PopSize*len(h.islands))))
		if err := conn.send(KEpoch, req); err != nil {
			return err
		}
	} else {
		req := MigrateReq{Seq: seq}
		for _, m := range op.migrants {
			if h.owns(m.Island) {
				req.Migrants = append(req.Migrants, m)
			}
		}
		conn.arm(s.c.Timeout, s.c.jobBudget(float64(s.sopt.PopSize*len(h.islands))))
		if err := conn.send(KMigrate, req); err != nil {
			return err
		}
	}
	return s.foldStates(h, conn, seq)
}

// localOp runs one barrier op on an in-process host and folds its states.
func (s *solveRun) localOp(h *solveHost, op islandOp) error {
	if op.epoch != nil {
		if err := h.local.runEpoch(*op.epoch); err != nil {
			return err
		}
	} else {
		req := MigrateReq{}
		for _, m := range op.migrants {
			if h.owns(m.Island) {
				req.Migrants = append(req.Migrants, m)
			}
		}
		if err := h.local.runMigrate(req); err != nil {
			return err
		}
	}
	s.foldLocalStates(h)
	return nil
}

// foldStates receives one KIslandState response, verifies its sequence and
// island ownership, and folds the states into bests.
func (s *solveRun) foldStates(h *solveHost, conn *Conn, seq uint64) error {
	kind, payload, err := conn.recv()
	if err != nil {
		return err
	}
	if kind != KIslandState {
		return conn.werr(kind, fmt.Errorf("dist: frame kind %d, want island state", kind))
	}
	var states IslandStates
	if err := parseJSON(payload, &states); err != nil {
		return conn.werr(KIslandState, err)
	}
	if states.Seq != seq {
		return conn.werr(KIslandState, fmt.Errorf("dist: island state for seq %d, want %d", states.Seq, seq))
	}
	for _, st := range states.States {
		if st.Island < 0 || st.Island >= s.k || !h.owns(st.Island) {
			return conn.werr(KIslandState, fmt.Errorf("dist: worker %d reported foreign island %d", conn.id, st.Island))
		}
		s.bests[st.Island] = st
	}
	return nil
}

func (s *solveRun) foldLocalStates(h *solveHost) {
	for _, st := range h.local.states().States {
		s.bests[st.Island] = st
	}
}

// runOp appends one barrier op to the oplog and executes it on every host
// in parallel. A host whose exchange fails in transport is recovered —
// restored from checkpoints and replayed through the oplog, which includes
// this op — before the round completes, so callers observe only success or
// a genuine error.
func (s *solveRun) runOp(op islandOp) error {
	s.oplog = append(s.oplog, op)
	name := "epochs"
	if op.epoch == nil {
		name = "migrations"
	}
	return s.eachHost(name, func(h *solveHost) error {
		if h.local != nil {
			return s.localOp(h, op)
		}
		return s.remoteOp(h.conn, h, op)
	}, false)
}

// eachHost runs fn on every host in parallel; hosts that fail in transport
// are recovered. retry re-runs fn on the recovered host (for rounds whose
// effect is not part of the oplog replay, i.e. checkpoints).
func (s *solveRun) eachHost(name string, fn func(h *solveHost) error, retry bool) error {
	errs := make([]error, len(s.hosts))
	var wg sync.WaitGroup
	for j, h := range s.hosts {
		wg.Add(1)
		go func(j int, h *solveHost) {
			defer wg.Done()
			errs[j] = fn(h)
			if errs[j] == nil && h.conn != nil {
				s.c.counter(name, h.conn.id)
			}
		}(j, h)
	}
	wg.Wait()
	for j, err := range errs {
		for err != nil {
			if !transient(err) {
				return fmt.Errorf("dist: island %s failed: %w", name, err)
			}
			if rerr := s.recoverHost(s.hosts[j], err); rerr != nil {
				return rerr
			}
			err = nil
			if retry {
				err = fn(s.hosts[j])
			}
		}
	}
	return nil
}

// recoverHost replaces a dead remote host: restore its islands from their
// latest checkpoints (or fresh seeds when none was taken yet) on a fresh
// worker — respawned by the pool when armed — and replay the barrier ops
// since the checkpoint. With the pool exhausted the islands fold into the
// coordinator process instead. Either way the host ends bit-identically
// caught up with the no-fault trajectory.
func (s *solveRun) recoverHost(h *solveHost, cause error) error {
	if h.conn == nil {
		// The in-process host cannot fail in transport; a transient-shaped
		// error from it is a bug surfaced as a genuine failure.
		return fmt.Errorf("dist: in-process island host failed: %w", cause)
	}
	s.c.noteDeath(h.conn.id, cause)
	s.c.Pool.discard(h.conn)
	h.conn = nil
	if err := s.attach(h); err != nil {
		return err
	}
	s.c.Obs.Counter("dist.recoveries").Inc()
	return nil
}

// foldLocal degrades a host into the coordinator process: its islands are
// rebuilt on the coordinator's own engine from their latest checkpoints and
// replayed through the oplog. From here on the host computes in-process —
// slower, never wrong.
func (s *solveRun) foldLocal(h *solveHost) error {
	init := s.initFor(h)
	local, err := hostIslands(s.eng, init.Islands)
	if err != nil {
		return err
	}
	h.conn = nil
	h.local = local
	s.foldLocalStates(h)
	for _, op := range s.oplog {
		if err := s.localOp(h, op); err != nil {
			return err
		}
	}
	s.c.Obs.Counter("dist.degraded_solves").Inc()
	return nil
}

// checkpointRound pulls a fresh checkpoint of every island, and only once
// every host has delivered one does it commit: the per-island baselines
// advance and the oplog resets. A host dying mid-round is recovered (to the
// *old* baseline plus replay) and asked again, so the invariant — baseline
// plus oplog always reproduces the current state — holds at every instant.
func (s *solveRun) checkpointRound() error {
	if s.c.NoCheckpoint {
		return nil
	}
	fresh := make([]*IslandCheckpoint, s.k)
	var mu sync.Mutex
	err := s.eachHost("checkpoint_rounds", func(h *solveHost) error {
		var cks IslandCheckpoints
		if h.local != nil {
			cks = h.local.checkpoints()
		} else {
			seq := s.c.seq.Add(1)
			h.conn.arm(s.c.Timeout, s.c.jobBudget(float64(s.sopt.PopSize*len(h.islands))))
			if err := h.conn.send(KCheckpoint, CheckpointReq{Seq: seq}); err != nil {
				return err
			}
			kind, payload, err := h.conn.recv()
			if err != nil {
				return err
			}
			if kind != KCheckpointState {
				return h.conn.werr(kind, fmt.Errorf("dist: frame kind %d, want checkpoint state", kind))
			}
			if err := parseJSON(payload, &cks); err != nil {
				return h.conn.werr(KCheckpointState, err)
			}
			if cks.Seq != seq {
				return h.conn.werr(KCheckpointState, fmt.Errorf("dist: checkpoint for seq %d, want %d", cks.Seq, seq))
			}
		}
		mu.Lock()
		defer mu.Unlock()
		for ci := range cks.Checkpoints {
			ck := &cks.Checkpoints[ci]
			if ck.Island < 0 || ck.Island >= s.k || !h.owns(ck.Island) {
				return fmt.Errorf("dist: checkpoint for foreign island %d", ck.Island)
			}
			fresh[ck.Island] = ck
		}
		return nil
	}, true)
	if err != nil {
		return err
	}
	for i, ck := range fresh {
		if ck == nil {
			return fmt.Errorf("dist: checkpoint round missed island %d", i)
		}
		s.ckpts[i] = ck
	}
	s.oplog = s.oplog[:0]
	s.c.Obs.Counter("dist.checkpoints").Add(int64(s.k))
	return nil
}

// runOverlappedRound runs one epoch barrier with the previous round's
// deferred checkpoint piggybacked: KCheckpoint and KEpoch go out in a
// single coalesced flush, the worker answers the checkpoint from its
// post-barrier (pre-epoch) state and then runs the epoch — one round trip
// where the eager scheme pays two. The op-log ordering makes the overlap
// safe: the epoch op is appended before any frame goes out, so a host that
// dies mid-round is recovered from the *old* baseline and replayed through
// this epoch like any other op. The fresh baselines commit only when every
// island delivered a checkpoint; a recovery mid-round leaves holes (the
// recovered host replayed instead of answering), and the round falls back
// to a standalone checkpointRound to advance the baseline.
//
// Commit is sound even when only some hosts delivered before another's
// recovery: every delivered checkpoint is a valid pre-epoch state, and the
// trimmed oplog (just this epoch) replays each of them to the current
// state.
func (s *solveRun) runOverlappedRound(op islandOp) error {
	s.oplog = append(s.oplog, op)
	fresh := make([]*IslandCheckpoint, s.k)
	var mu sync.Mutex
	fold := func(h *solveHost, cks IslandCheckpoints, conn *Conn) error {
		mu.Lock()
		defer mu.Unlock()
		for ci := range cks.Checkpoints {
			ck := &cks.Checkpoints[ci]
			if ck.Island < 0 || ck.Island >= s.k || !h.owns(ck.Island) {
				err := fmt.Errorf("dist: checkpoint for foreign island %d", ck.Island)
				if conn != nil {
					return conn.werr(KCheckpointState, err)
				}
				return err
			}
			fresh[ck.Island] = ck
		}
		return nil
	}
	err := s.eachHost("epochs", func(h *solveHost) error {
		if h.local != nil {
			if err := fold(h, h.local.checkpoints(), nil); err != nil {
				return err
			}
			return s.localOp(h, op)
		}
		conn := h.conn
		ckSeq := s.c.seq.Add(1)
		req := *op.epoch
		req.Seq = s.c.seq.Add(1)
		conn.armWrite(s.c.Timeout, 0)
		if err := conn.sendNoFlush(KCheckpoint, CheckpointReq{Seq: ckSeq}); err != nil {
			return err
		}
		if err := conn.sendNoFlush(KEpoch, req); err != nil {
			return err
		}
		if err := conn.flush(); err != nil {
			return err
		}
		conn.armRead(s.c.Timeout,
			s.c.jobBudget(float64(s.sopt.PopSize*len(h.islands)))+
				s.c.jobBudget(float64(req.Gens*s.sopt.PopSize*len(h.islands))))
		kind, payload, err := conn.recv()
		if err != nil {
			return err
		}
		if kind != KCheckpointState {
			return conn.werr(kind, fmt.Errorf("dist: frame kind %d, want checkpoint state", kind))
		}
		var cks IslandCheckpoints
		if err := parseJSON(payload, &cks); err != nil {
			return conn.werr(KCheckpointState, err)
		}
		if cks.Seq != ckSeq {
			return conn.werr(KCheckpointState, fmt.Errorf("dist: checkpoint for seq %d, want %d", cks.Seq, ckSeq))
		}
		if err := fold(h, cks, conn); err != nil {
			return err
		}
		return s.foldStates(h, conn, req.Seq)
	}, false)
	if err != nil {
		return err
	}
	for _, ck := range fresh {
		if ck == nil {
			// A recovery interleaved with this round: the recovered host
			// replayed from the old baseline instead of answering the
			// piggybacked pull. Re-establish the invariant eagerly.
			return s.checkpointRound()
		}
	}
	for _, ck := range fresh {
		s.ckpts[ck.Island] = ck
	}
	s.oplog = append(s.oplog[:0], op)
	s.c.Obs.Counter("dist.checkpoints").Add(int64(s.k))
	return nil
}

// release winds the hosts down: remote workers get KIslandFinish and return
// to the pool (or are discarded when they no longer answer); in-process
// hosts are simply dropped.
func (s *solveRun) release() {
	for _, h := range s.hosts {
		if h.conn == nil {
			h.local = nil
			continue
		}
		conn := h.conn
		h.conn = nil
		conn.arm(s.c.Timeout, 0)
		if err := conn.sendEmpty(KIslandFinish); err == nil {
			if kind, _, err := conn.recv(); err == nil && kind == KOK {
				s.c.Pool.put(conn)
				continue
			}
		}
		s.c.counter("worker_deaths", conn.id)
		s.c.Pool.discard(conn)
	}
}
