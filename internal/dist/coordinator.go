package dist

import (
	"fmt"
	"sync"

	"robsched/internal/ga"
	"robsched/internal/obs"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/sim"
	"robsched/internal/wio"
)

// Coordinator scatters work over a worker pool and gathers the results.
// All fields may be shared across concurrent calls; Obs and Trace are
// optional (nil disables telemetry). Per-worker counters are published as
// dist.worker<id>.* so a skewed or dying worker is visible in a snapshot.
type Coordinator struct {
	Pool  *Pool
	Obs   *obs.Registry
	Trace *obs.Tracer
}

// counter bumps both the aggregate and the per-worker form of a counter.
func (c *Coordinator) counter(name string, worker int) {
	c.Obs.Counter("dist." + name).Inc()
	c.Obs.Counter(fmt.Sprintf("dist.worker%d.%s", worker, name)).Inc()
}

// shardRange is one contiguous realization window.
type shardRange struct{ base, width int }

// partition cuts r realizations into at most n contiguous near-equal
// windows in index order: the first r%n windows carry one extra
// realization. With r < n the trailing empty windows are dropped.
func partition(r, n int) []shardRange {
	if n > r {
		n = r
	}
	out := make([]shardRange, 0, n)
	base := 0
	for i := 0; i < n; i++ {
		width := r / n
		if i < r%n {
			width++
		}
		out = append(out, shardRange{base, width})
		base += width
	}
	return out
}

// RealizeAll is the scatter/gather form of sim.RealizeAll: the realization
// range is partitioned into one contiguous window per pool worker, each
// worker realizes its window from the coordinator-derived seed slice, and
// the vectors are reassembled in range order. The returned makespans — and
// every metric computed from them — are bit-identical to the single-process
// sim.RealizeAll for any shard count, because the seed vector (and the root
// stream advance) is computed exactly as the single-process run computes it
// and the concatenation preserves realization order.
//
// A worker that dies mid-range is discarded and its window reassigned to a
// live worker; with no live workers left the window is realized in-process.
// Either way the window's seeds and base are unchanged, so the results are
// too.
func (c *Coordinator) RealizeAll(ss []*schedule.Schedule, opt sim.Options, root *rng.Source) ([][]float64, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(ss) == 0 {
		return nil, fmt.Errorf("dist: no schedules to realize")
	}
	if c.Trace != nil {
		defer c.Trace.Scope("dist").Span("realize_all",
			obs.F("realizations", float64(opt.Realizations)),
			obs.F("schedules", float64(len(ss))),
			obs.F("shards", float64(c.Pool.Size())),
		)()
	}
	seeds := sim.SeedVector(opt.Realizations, opt.Antithetic, root)
	wlDoc := wio.NewWorkloadJSON(ss[0].Workload())
	sDocs := make([]wio.ScheduleJSON, len(ss))
	for i, s := range ss {
		sDocs[i] = wio.NewScheduleJSON(s)
	}
	out := make([][]float64, len(ss))
	for j := range out {
		out[j] = make([]float64, opt.Realizations)
	}
	nshards := c.Pool.Size()
	if nshards < 1 {
		nshards = 1 // no workers: one window, realized via the inline fallback
	}
	shards := partition(opt.Realizations, nshards)
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for si, sh := range shards {
		wg.Add(1)
		go func(si int, sh shardRange) {
			defer wg.Done()
			job := SimJob{
				Workload:   wlDoc,
				Schedules:  sDocs,
				Base:       sh.base,
				Seeds:      seeds[sh.base : sh.base+sh.width],
				Antithetic: opt.Antithetic,
				BatchSize:  opt.BatchSize,
				Workers:    opt.Workers,
			}
			mks, err := c.runSimJob(job, ss, opt)
			if err != nil {
				errs[si] = err
				return
			}
			for j := range out {
				copy(out[j][sh.base:sh.base+sh.width], mks[j])
			}
		}(si, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runSimJob executes one window: check a worker out, ship the job, stream
// the vectors back. A transport failure discards the worker and retries on
// another; once the pool is exhausted the window falls back to an in-process
// sim.RealizeSeeded, which produces the identical vectors by construction.
func (c *Coordinator) runSimJob(job SimJob, ss []*schedule.Schedule, opt sim.Options) ([][]float64, error) {
	for {
		conn, err := c.Pool.get()
		if err != nil {
			break // pool closed or every worker dead: compute locally
		}
		mks, err := dispatchSim(conn, job, len(ss))
		if err == nil {
			c.counter("sim_jobs", conn.id)
			c.Pool.put(conn)
			return mks, nil
		}
		if we, ok := err.(*WorkerError); ok {
			// The job itself is bad; the worker is fine.
			c.Pool.put(conn)
			return nil, we
		}
		c.counter("worker_deaths", conn.id)
		c.Pool.discard(conn)
	}
	c.Obs.Counter("dist.inline_ranges").Inc()
	wOpt := sim.Options{Antithetic: job.Antithetic, BatchSize: job.BatchSize, Workers: job.Workers}
	return sim.RealizeSeeded(ss, wOpt, job.Seeds, job.Base)
}

// dispatchSim runs the KSimJob exchange on one connection.
func dispatchSim(conn *Conn, job SimJob, schedules int) ([][]float64, error) {
	if err := conn.send(KSimJob, job); err != nil {
		return nil, err
	}
	out := make([][]float64, schedules)
	for j := 0; j < schedules; j++ {
		kind, payload, err := conn.recv()
		if err != nil {
			return nil, err
		}
		if kind != KSimVec {
			return nil, fmt.Errorf("dist: frame kind %d, want sim vector", kind)
		}
		out[j] = make([]float64, len(job.Seeds))
		if err := decodeVecInto(out[j], payload); err != nil {
			return nil, err
		}
	}
	kind, _, err := conn.recv()
	if err != nil {
		return nil, err
	}
	if kind != KSimDone {
		return nil, fmt.Errorf("dist: frame kind %d, want sim done", kind)
	}
	return out, nil
}

// EvaluateAll is the scatter/gather form of sim.EvaluateAll: metrics
// assembled from the sharded realization vectors, bit-identical to the
// single-process call for any shard count.
func (c *Coordinator) EvaluateAll(ss []*schedule.Schedule, opt sim.Options, root *rng.Source) ([]sim.Metrics, error) {
	mks, err := c.RealizeAll(ss, opt, root)
	if err != nil {
		return nil, err
	}
	out := make([]sim.Metrics, len(ss))
	for j, s := range ss {
		out[j] = sim.MetricsFromSamples(s.Makespan(), mks[j], opt.Deadline)
	}
	return out, nil
}

// Solve is the island-sharded form of robust.Solve: the GA islands are
// hosted by worker processes (round-robin when there are more islands than
// workers) and the coordinator drives the epoch barriers, routes the ring
// migrants in island order, applies the global stagnation rule and picks
// the final best — the exact control flow of the in-process ga.RunIslands,
// so the trajectory and the returned schedule are bit-identical for any
// worker count.
//
// Telemetry (Options.Obs/Trace/Observer) and OnGeneration stay in the
// coordinator process and are not forwarded to workers; Solve rejects the
// hooks that would require cross-process streaming. Worker death during an
// island run is an error: unlike a stateless realization window, an
// island's population cannot be reconstructed without replaying it.
// Concurrent Solve calls sharing one pool are not supported (each checks
// out several workers for its whole run and could deadlock another).
func (c *Coordinator) Solve(w *platform.Workload, opt robust.Options, root *rng.Source) (*robust.Result, error) {
	eng, err := robust.NewEngine(w, opt)
	if err != nil {
		return nil, err
	}
	opt = eng.Opt
	if opt.Islands < 2 {
		return nil, fmt.Errorf("dist: island solve needs Options.Islands >= 2, got %d", opt.Islands)
	}
	if opt.OnGeneration != nil || opt.Observer != nil {
		return nil, fmt.Errorf("dist: per-generation hooks are not supported across processes")
	}
	if c.Trace != nil {
		defer c.Trace.Scope("dist").Span("solve_islands",
			obs.F("islands", float64(opt.Islands)),
			obs.F("workers", float64(c.Pool.Size())),
		)()
	}
	k := opt.Islands
	// Island seeds, derived in island order: rng.New(seeds[i]) in a worker
	// is exactly the root.Split() fan-out of the in-process run, and root
	// advances identically.
	seeds := make([]uint64, k)
	for i := range seeds {
		seeds[i] = root.SplitSeed()
	}
	nw := c.Pool.Size()
	if nw > k {
		nw = k
	}
	conns := make([]*Conn, 0, nw)
	release := func() {
		for _, conn := range conns {
			if err := conn.sendEmpty(KIslandFinish); err == nil {
				if kind, _, err := conn.recv(); err == nil && kind == KOK {
					c.Pool.put(conn)
					continue
				}
			}
			c.counter("worker_deaths", conn.id)
			c.Pool.discard(conn)
		}
	}
	defer release()
	for len(conns) < nw {
		conn, err := c.Pool.get()
		if err != nil {
			return nil, err
		}
		conns = append(conns, conn)
	}

	// Round-robin hosting: worker j hosts islands {i : i mod nw == j}.
	owner := func(island int) *Conn { return conns[island%nw] }
	inits := make([]IslandInit, nw)
	wlDoc := wio.NewWorkloadJSON(w)
	sopt := SolverOptions{
		Mode:           int(opt.Mode),
		Eps:            opt.Eps,
		SlackMetric:    int(opt.SlackMetric),
		PopSize:        opt.PopSize,
		CrossoverRate:  opt.CrossoverRate,
		MutationRate:   opt.MutationRate,
		MaxGenerations: opt.MaxGenerations,
		Stagnation:     opt.Stagnation,
		NoHEFTSeed:     opt.NoHEFTSeed,
		NoMetricsCache: opt.NoMetricsCache,
		NoDeltaDecode:  opt.NoDeltaDecode,
		Workers:        opt.Workers,
	}
	for j := range inits {
		inits[j] = IslandInit{Workload: wlDoc, Opt: sopt}
	}
	for i := 0; i < k; i++ {
		j := i % nw
		inits[j].Islands = append(inits[j].Islands, IslandSeed{Island: i, Seed: seeds[i]})
	}

	bests := make([]IslandState, k)
	// exchange runs one request/response round against every worker in
	// parallel and folds the returned island states into bests.
	exchange := func(round string, req func(conn *Conn, j int) error) error {
		errs := make([]error, nw)
		var wg sync.WaitGroup
		for j, conn := range conns {
			wg.Add(1)
			go func(j int, conn *Conn) {
				defer wg.Done()
				errs[j] = func() error {
					if err := req(conn, j); err != nil {
						return err
					}
					kind, payload, err := conn.recv()
					if err != nil {
						return err
					}
					if kind != KIslandState {
						return fmt.Errorf("dist: frame kind %d, want island state", kind)
					}
					var states IslandStates
					if err := parseJSON(payload, &states); err != nil {
						return err
					}
					for _, st := range states.States {
						if st.Island < 0 || st.Island >= k || owner(st.Island) != conn {
							return fmt.Errorf("dist: worker %d reported foreign island %d", conn.id, st.Island)
						}
						bests[st.Island] = st
					}
					c.counter(round, conn.id)
					return nil
				}()
			}(j, conn)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("dist: island %s failed: %w", round, err)
			}
		}
		return nil
	}

	if err := exchange("island_inits", func(conn *Conn, j int) error {
		return conn.send(KIslandInit, inits[j])
	}); err != nil {
		return nil, err
	}

	every := opt.MigrationEvery
	if every <= 0 {
		every = ga.DefaultMigrationEvery
	}
	totalGens := opt.MaxGenerations
	gen := 0
	stagnated := false
	for gen < totalGens {
		epoch := every
		if gen+epoch > totalGens {
			epoch = totalGens - gen
		}
		req := EpochReq{StartGen: gen, Gens: epoch}
		if err := exchange("epochs", func(conn *Conn, j int) error {
			return conn.send(KEpoch, req)
		}); err != nil {
			return nil, err
		}
		gen += epoch
		if gen < totalGens {
			// Ring migration, snapshot first: island i receives the
			// pre-migration best of island i-1, exactly like the in-process
			// barrier.
			reqs := make([]MigrateReq, nw)
			for i := 0; i < k; i++ {
				from := (i - 1 + k) % k
				j := i % nw
				reqs[j].Migrants = append(reqs[j].Migrants, Migrant{Island: i, Genotype: bests[from].Best})
			}
			if err := exchange("migrations", func(conn *Conn, j int) error {
				return conn.send(KMigrate, reqs[j])
			}); err != nil {
				return nil, err
			}
		}
		if opt.Stagnation > 0 {
			all := true
			for i := range bests {
				if bests[i].SinceImprove < opt.Stagnation {
					all = false
					break
				}
			}
			if all {
				stagnated = true
				break
			}
		}
	}

	// pickBest: strictly-greater comparison keeps the earliest island on
	// ties, matching the in-process rule.
	bi := 0
	for i := 1; i < k; i++ {
		if bests[i].BestFitness() > bests[bi].BestFitness() {
			bi = i
		}
	}
	win := bests[bi]
	return eng.Result(ga.Result[*robust.Chromosome]{
		Best:        robust.NewChromosome(win.Best.Order, win.Best.Proc),
		BestFitness: win.BestFitness(),
		Generations: gen,
		Stagnated:   stagnated,
	})
}
