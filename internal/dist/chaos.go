package dist

import (
	"io"
	"math"
	"sync/atomic"
	"time"

	"robsched/internal/fault"
	"robsched/internal/rng"
	"robsched/internal/wio"
)

// ChaosPlan injects seeded, reproducible transport faults between the
// coordinator and a worker. It deliberately reuses the fault-scenario
// vocabulary the simulator applies to processors: each wrapped connection
// draws one fault.Scenario over a two-"processor" platform — processor 0 is
// the coordinator→worker link direction, processor 1 the worker→coordinator
// direction — so the same samplers (fault.Model, fault.Fixed) that break
// simulated machines also break the runtime's own transport. A permanent
// failure drops the connection; an outage swallows the frames that cross it
// (a stall, from the peer's point of view); a slowdown stretches transfer
// time. On top of the timeline, each frame independently risks bit
// corruption, truncation and duplication.
//
// Every injection is a deterministic function of (Seed, worker id), so a
// failing chaos run replays exactly. The wrapper frames the byte stream, so
// it injects at frame granularity — the unit at which the protocol can
// detect damage. Chaos without Coordinator.Timeout armed can stall a call
// forever by construction (an outage is a silent stall); always set a
// timeout when wrapping endpoints.
type ChaosPlan struct {
	// Seed fixes every random draw of the plan. Worker ids are mixed in so
	// each connection sees a distinct but reproducible timeline.
	Seed uint64
	// Link samples the per-connection fault timeline. nil means no
	// timeline faults (only the per-frame Corrupt/Truncate/Duplicate).
	Link fault.Sampler
	// Horizon is the scenario horizon in simulated link-seconds; 0 means 60.
	Horizon float64
	// Rate converts frame bytes to link-seconds of transfer work;
	// 0 means 1 MiB/s. One link-second of delay costs one wall-clock
	// millisecond, keeping chaos tests fast while preserving ordering.
	Rate float64
	// Corrupt, Truncate and Duplicate are independent per-frame
	// probabilities: flip one random bit of the encoded frame; cut the
	// frame short and drop the connection (a torn write never leaves the
	// stream consistent); write the frame twice.
	Corrupt   float64
	Truncate  float64
	Duplicate float64
	// Delay defers every frame's delivery by a fixed wall-clock lag per
	// direction (half an injected round trip), and DelayJitter adds a
	// per-frame uniform draw on [0, DelayJitter). Unlike Rate — which
	// models transfer time in scaled link-seconds — these are real time:
	// the knob for emulating cross-machine latency on a local transport,
	// e.g. to measure what pipelining buys at a given RTT. Delivery is
	// overlapped, not serialized: frames queue behind the link with their
	// own due times, so five pipelined frames cost one latency, not five.
	// Due times are clamped monotonic, so jitter never reorders frames.
	Delay       time.Duration
	DelayJitter time.Duration
}

const chaosTick = time.Millisecond // wall-clock cost of one link-second

// DefaultChaos is the moderately hostile plan behind the CLIs' -chaos flag:
// every injection kind at rates that bite a real run several times without
// drowning it. It is a self-test — the run must still produce bit-identical
// results, visibly recovering in the telemetry counters.
func DefaultChaos(seed uint64) ChaosPlan {
	return ChaosPlan{
		Seed:      seed,
		Corrupt:   0.02,
		Truncate:  0.02,
		Duplicate: 0.1,
		Link:      fault.Model{MTBF: 2, OutageEvery: 0.5, OutageMean: 0.05},
	}
}

// ChaosSpawner wraps a spawner so every worker it produces — initial pool
// members and respawned replacements alike — gets the plan's fault timeline
// spliced into its transport, each with a distinct reproducible stream.
func ChaosSpawner(pl ChaosPlan, spawn func() (Endpoint, error)) func() (Endpoint, error) {
	var n atomic.Int64
	return func() (Endpoint, error) {
		ep, err := spawn()
		if err != nil {
			return ep, err
		}
		return pl.Wrap(ep, int(n.Add(1))-1), nil
	}
}

// chaosLink is one direction of a wrapped connection.
type chaosLink struct {
	pl    ChaosPlan
	sc    *fault.Scenario
	p     int // scenario "processor": 0 coord→worker, 1 worker→coord
	r     *rng.Source
	t     float64 // link clock, seconds
	src   io.Reader
	dst   io.Writer
	close func(err error) // tears down both ends of this direction

	// Latency queue, active only when Delay or DelayJitter is set: the
	// pump stamps each frame with a due time and moves on, and writerLoop
	// delivers in stamp order — so frames in flight overlap, which is what
	// the pipelining this knob exists to measure depends on.
	delayq  chan delayed
	lastDue time.Time
	ferr    error // final close cause, read by writerLoop after delayq closes
}

// delayed is one queued delivery: bytes due at a time, optionally followed
// by tearing the direction down (a terminal item ends the queue).
type delayed struct {
	raw []byte
	due time.Time
	err error
}

// Wrap returns ep with the chaos plan's fault timeline spliced into both
// directions of its byte stream. The worker id seeds the per-connection
// randomness; wrapping the same endpoint with the same (Seed, worker)
// replays the same injections.
func (pl ChaosPlan) Wrap(ep Endpoint, worker int) Endpoint {
	if pl.Horizon <= 0 {
		pl.Horizon = 60
	}
	if pl.Rate <= 0 {
		pl.Rate = 1 << 20
	}
	base := rng.New(pl.Seed ^ (0x9e3779b97f4a7c15 * uint64(worker+1)))
	sc := fault.None()
	if pl.Link != nil {
		if s, err := pl.Link.Scenario(2, pl.Horizon, base); err == nil {
			sc = s
		}
	}

	// coordinator→worker: the caller writes into outW; the pump relays
	// frames from outR to the real endpoint.
	outR, outW := io.Pipe()
	// worker→coordinator: the pump relays frames from the real endpoint
	// into inW; the caller reads from inR.
	inR, inW := io.Pipe()

	out := &chaosLink{
		pl: pl, sc: &sc, p: 0, r: rng.New(base.SplitSeed()),
		src: outR, dst: ep.W,
		close: func(err error) {
			outR.CloseWithError(err)
			_ = ep.W.Close()
		},
	}
	in := &chaosLink{
		pl: pl, sc: &sc, p: 1, r: rng.New(base.SplitSeed()),
		src: ep.R, dst: inW,
		close: func(err error) { inW.CloseWithError(err) },
	}
	rtt := ep.RTT
	if pl.Delay > 0 || pl.DelayJitter > 0 {
		// A frame crosses each direction once: the injected round trip is
		// two one-way delays plus the mean jitter (half per direction).
		rtt += 2*pl.Delay + pl.DelayJitter
		out.delayq = make(chan delayed, 64)
		in.delayq = make(chan delayed, 64)
		go out.writerLoop()
		go in.writerLoop()
	}
	go out.pump()
	go in.pump()

	return Endpoint{
		W: outW,
		R: inR,
		Kill: func() {
			outW.CloseWithError(io.ErrClosedPipe)
			inR.CloseWithError(io.ErrClosedPipe)
			if ep.Kill != nil {
				ep.Kill()
			}
		},
		Wait: ep.Wait,
		RTT:  rtt,
	}
}

// pump relays frames from src to dst, applying the link's timeline and the
// per-frame injections. It exits — closing its direction — when the link
// permanently fails, a truncation tears the stream, or either side of the
// relay errors out.
func (l *chaosLink) pump() {
	var buf []byte
	for {
		kind, payload, err := wio.ReadFrame(l.src, buf)
		if err != nil {
			l.fail(err)
			return
		}
		if cap(payload) > cap(buf) {
			buf = payload[:cap(payload)]
		}
		raw, err := wio.AppendFrame(nil, kind, payload)
		if err != nil {
			l.fail(err)
			return
		}
		if !l.deliver(raw) {
			return
		}
	}
}

// fail ends this direction with err — directly, or (with the latency queue
// active) ordered behind every frame already in flight.
func (l *chaosLink) fail(err error) {
	if l.delayq == nil {
		l.close(err)
		return
	}
	l.ferr = err
	close(l.delayq)
}

// emit delivers raw at due — immediately when the latency queue is off —
// and, when err is non-nil, tears the direction down right after (the
// terminal queue item; no further emits may follow). It reports false when
// the direction is gone.
func (l *chaosLink) emit(raw []byte, due time.Time, err error) bool {
	if l.delayq != nil {
		l.delayq <- delayed{raw: raw, due: due, err: err}
		if err != nil {
			close(l.delayq)
			return false
		}
		return true
	}
	if len(raw) > 0 {
		if _, werr := l.dst.Write(raw); werr != nil {
			l.close(werr)
			return false
		}
	}
	if err != nil {
		l.close(err)
		return false
	}
	return true
}

// writerLoop drains the latency queue in stamp order, sleeping each item to
// its due time. On a write failure it keeps draining (so the pump never
// blocks on a full queue) without writing. When the queue closes the
// direction closes with the pump's recorded cause.
func (l *chaosLink) writerLoop() {
	dead := false
	for d := range l.delayq {
		if dead {
			continue
		}
		l.sleepUntil(d.due)
		if len(d.raw) > 0 {
			if _, err := l.dst.Write(d.raw); err != nil {
				l.close(err)
				dead = true
				continue
			}
		}
		if d.err != nil {
			l.close(d.err)
			dead = true
		}
	}
	if !dead {
		l.close(l.ferr)
	}
}

// due stamps the next frame's delivery time: now plus the fixed delay plus
// a uniform jitter draw, clamped monotonic so jitter never reorders the
// stream. The jitter draw happens only when DelayJitter is set, keeping
// the per-frame random stream of jitter-free plans unchanged.
func (l *chaosLink) due() time.Time {
	lag := l.pl.Delay
	if l.pl.DelayJitter > 0 {
		lag += time.Duration(l.r.Float64() * float64(l.pl.DelayJitter))
	}
	due := time.Now().Add(lag)
	if due.Before(l.lastDue) {
		due = l.lastDue
	}
	l.lastDue = due
	return due
}

// sleepUntil waits for an item's due time, capped like sleep so a
// pathological clock skew cannot freeze a test.
func (l *chaosLink) sleepUntil(due time.Time) {
	d := time.Until(due)
	if d <= 0 {
		return
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	time.Sleep(d)
}

// deliver pushes one encoded frame through the fault timeline and the
// injection dice. It reports false when the connection is gone.
func (l *chaosLink) deliver(raw []byte) bool {
	// Timeline: a dead link drops the connection; an outage swallows the
	// frame (pure stall — the peer sees nothing until its deadline fires);
	// otherwise the transfer takes scenario time, slowdowns included.
	if !l.sc.Alive(l.p, l.t) {
		l.fail(io.ErrClosedPipe)
		return false
	}
	start := l.sc.NextStart(l.p, l.t)
	if start > l.t {
		l.sleep(start - l.t)
		l.t = start
	}
	work := float64(len(raw)) / l.pl.Rate
	finish, killed, killTime := l.sc.Run(l.p, l.t, work)
	if killed {
		// The frame was crossing the link when the outage (or failure)
		// hit: it is lost. The link survives a transient outage; a
		// permanent failure (NextStart +Inf) drops the connection.
		l.sleep(killTime - l.t)
		next := l.sc.NextStart(l.p, killTime)
		if math.IsInf(next, 1) {
			l.fail(io.ErrClosedPipe)
			return false
		}
		l.t = next
		return true
	}
	l.sleep(finish - l.t)
	l.t = finish

	// Injections, each an independent Bernoulli draw per frame. Draw all
	// three unconditionally so the random stream consumed per frame is
	// fixed and injections stay reproducible under composition.
	corrupt := l.r.Float64() < l.pl.Corrupt
	truncate := l.r.Float64() < l.pl.Truncate
	duplicate := l.r.Float64() < l.pl.Duplicate
	if corrupt {
		bit := l.r.Intn(len(raw) * 8)
		raw[bit/8] ^= 1 << (bit % 8)
	}
	if truncate {
		n := l.r.Intn(len(raw)) // always short of a full frame
		return l.emit(raw[:n], l.due(), io.ErrUnexpectedEOF)
	}
	due := l.due() // one stamp per frame: a duplicate arrives back-to-back
	if !l.emit(raw, due, nil) {
		return false
	}
	if duplicate {
		return l.emit(raw, due, nil)
	}
	return true
}

// sleep converts link-seconds to wall-clock at chaosTick per second,
// capped so a pathological scenario cannot freeze a test for minutes —
// the cap only delays the inevitable deadline, never reorders frames.
func (l *chaosLink) sleep(dt float64) {
	if dt <= 0 {
		return
	}
	d := time.Duration(dt * float64(chaosTick))
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	time.Sleep(d)
}
