package dist

import (
	"io"
	"math"
	"sync/atomic"
	"time"

	"robsched/internal/fault"
	"robsched/internal/rng"
	"robsched/internal/wio"
)

// ChaosPlan injects seeded, reproducible transport faults between the
// coordinator and a worker. It deliberately reuses the fault-scenario
// vocabulary the simulator applies to processors: each wrapped connection
// draws one fault.Scenario over a two-"processor" platform — processor 0 is
// the coordinator→worker link direction, processor 1 the worker→coordinator
// direction — so the same samplers (fault.Model, fault.Fixed) that break
// simulated machines also break the runtime's own transport. A permanent
// failure drops the connection; an outage swallows the frames that cross it
// (a stall, from the peer's point of view); a slowdown stretches transfer
// time. On top of the timeline, each frame independently risks bit
// corruption, truncation and duplication.
//
// Every injection is a deterministic function of (Seed, worker id), so a
// failing chaos run replays exactly. The wrapper frames the byte stream, so
// it injects at frame granularity — the unit at which the protocol can
// detect damage. Chaos without Coordinator.Timeout armed can stall a call
// forever by construction (an outage is a silent stall); always set a
// timeout when wrapping endpoints.
type ChaosPlan struct {
	// Seed fixes every random draw of the plan. Worker ids are mixed in so
	// each connection sees a distinct but reproducible timeline.
	Seed uint64
	// Link samples the per-connection fault timeline. nil means no
	// timeline faults (only the per-frame Corrupt/Truncate/Duplicate).
	Link fault.Sampler
	// Horizon is the scenario horizon in simulated link-seconds; 0 means 60.
	Horizon float64
	// Rate converts frame bytes to link-seconds of transfer work;
	// 0 means 1 MiB/s. One link-second of delay costs one wall-clock
	// millisecond, keeping chaos tests fast while preserving ordering.
	Rate float64
	// Corrupt, Truncate and Duplicate are independent per-frame
	// probabilities: flip one random bit of the encoded frame; cut the
	// frame short and drop the connection (a torn write never leaves the
	// stream consistent); write the frame twice.
	Corrupt   float64
	Truncate  float64
	Duplicate float64
}

const chaosTick = time.Millisecond // wall-clock cost of one link-second

// DefaultChaos is the moderately hostile plan behind the CLIs' -chaos flag:
// every injection kind at rates that bite a real run several times without
// drowning it. It is a self-test — the run must still produce bit-identical
// results, visibly recovering in the telemetry counters.
func DefaultChaos(seed uint64) ChaosPlan {
	return ChaosPlan{
		Seed:      seed,
		Corrupt:   0.02,
		Truncate:  0.02,
		Duplicate: 0.1,
		Link:      fault.Model{MTBF: 2, OutageEvery: 0.5, OutageMean: 0.05},
	}
}

// ChaosSpawner wraps a spawner so every worker it produces — initial pool
// members and respawned replacements alike — gets the plan's fault timeline
// spliced into its transport, each with a distinct reproducible stream.
func ChaosSpawner(pl ChaosPlan, spawn func() (Endpoint, error)) func() (Endpoint, error) {
	var n atomic.Int64
	return func() (Endpoint, error) {
		ep, err := spawn()
		if err != nil {
			return ep, err
		}
		return pl.Wrap(ep, int(n.Add(1))-1), nil
	}
}

// chaosLink is one direction of a wrapped connection.
type chaosLink struct {
	pl    ChaosPlan
	sc    *fault.Scenario
	p     int // scenario "processor": 0 coord→worker, 1 worker→coord
	r     *rng.Source
	t     float64 // link clock, seconds
	src   io.Reader
	dst   io.Writer
	close func(err error) // tears down both ends of this direction
}

// Wrap returns ep with the chaos plan's fault timeline spliced into both
// directions of its byte stream. The worker id seeds the per-connection
// randomness; wrapping the same endpoint with the same (Seed, worker)
// replays the same injections.
func (pl ChaosPlan) Wrap(ep Endpoint, worker int) Endpoint {
	if pl.Horizon <= 0 {
		pl.Horizon = 60
	}
	if pl.Rate <= 0 {
		pl.Rate = 1 << 20
	}
	base := rng.New(pl.Seed ^ (0x9e3779b97f4a7c15 * uint64(worker+1)))
	sc := fault.None()
	if pl.Link != nil {
		if s, err := pl.Link.Scenario(2, pl.Horizon, base); err == nil {
			sc = s
		}
	}

	// coordinator→worker: the caller writes into outW; the pump relays
	// frames from outR to the real endpoint.
	outR, outW := io.Pipe()
	// worker→coordinator: the pump relays frames from the real endpoint
	// into inW; the caller reads from inR.
	inR, inW := io.Pipe()

	out := &chaosLink{
		pl: pl, sc: &sc, p: 0, r: rng.New(base.SplitSeed()),
		src: outR, dst: ep.W,
		close: func(err error) {
			outR.CloseWithError(err)
			_ = ep.W.Close()
		},
	}
	in := &chaosLink{
		pl: pl, sc: &sc, p: 1, r: rng.New(base.SplitSeed()),
		src: ep.R, dst: inW,
		close: func(err error) { inW.CloseWithError(err) },
	}
	go out.pump()
	go in.pump()

	return Endpoint{
		W: outW,
		R: inR,
		Kill: func() {
			outW.CloseWithError(io.ErrClosedPipe)
			inR.CloseWithError(io.ErrClosedPipe)
			if ep.Kill != nil {
				ep.Kill()
			}
		},
		Wait: ep.Wait,
	}
}

// pump relays frames from src to dst, applying the link's timeline and the
// per-frame injections. It exits — closing its direction — when the link
// permanently fails, a truncation tears the stream, or either side of the
// relay errors out.
func (l *chaosLink) pump() {
	var buf []byte
	for {
		kind, payload, err := wio.ReadFrame(l.src, buf)
		if err != nil {
			l.close(err)
			return
		}
		if cap(payload) > cap(buf) {
			buf = payload[:cap(payload)]
		}
		raw, err := wio.AppendFrame(nil, kind, payload)
		if err != nil {
			l.close(err)
			return
		}
		if !l.deliver(raw) {
			return
		}
	}
}

// deliver pushes one encoded frame through the fault timeline and the
// injection dice. It reports false when the connection is gone.
func (l *chaosLink) deliver(raw []byte) bool {
	// Timeline: a dead link drops the connection; an outage swallows the
	// frame (pure stall — the peer sees nothing until its deadline fires);
	// otherwise the transfer takes scenario time, slowdowns included.
	if !l.sc.Alive(l.p, l.t) {
		l.close(io.ErrClosedPipe)
		return false
	}
	start := l.sc.NextStart(l.p, l.t)
	if start > l.t {
		l.sleep(start - l.t)
		l.t = start
	}
	work := float64(len(raw)) / l.pl.Rate
	finish, killed, killTime := l.sc.Run(l.p, l.t, work)
	if killed {
		// The frame was crossing the link when the outage (or failure)
		// hit: it is lost. The link survives a transient outage; a
		// permanent failure (NextStart +Inf) drops the connection.
		l.sleep(killTime - l.t)
		next := l.sc.NextStart(l.p, killTime)
		if math.IsInf(next, 1) {
			l.close(io.ErrClosedPipe)
			return false
		}
		l.t = next
		return true
	}
	l.sleep(finish - l.t)
	l.t = finish

	// Injections, each an independent Bernoulli draw per frame. Draw all
	// three unconditionally so the random stream consumed per frame is
	// fixed and injections stay reproducible under composition.
	corrupt := l.r.Float64() < l.pl.Corrupt
	truncate := l.r.Float64() < l.pl.Truncate
	duplicate := l.r.Float64() < l.pl.Duplicate
	if corrupt {
		bit := l.r.Intn(len(raw) * 8)
		raw[bit/8] ^= 1 << (bit % 8)
	}
	if truncate {
		n := l.r.Intn(len(raw)) // always short of a full frame
		_, _ = l.dst.Write(raw[:n])
		l.close(io.ErrUnexpectedEOF)
		return false
	}
	writes := 1
	if duplicate {
		writes = 2
	}
	for i := 0; i < writes; i++ {
		if _, err := l.dst.Write(raw); err != nil {
			l.close(err)
			return false
		}
	}
	return true
}

// sleep converts link-seconds to wall-clock at chaosTick per second,
// capped so a pathological scenario cannot freeze a test for minutes —
// the cap only delays the inevitable deadline, never reorders frames.
func (l *chaosLink) sleep(dt float64) {
	if dt <= 0 {
		return
	}
	d := time.Duration(dt * float64(chaosTick))
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	time.Sleep(d)
}
