package dist

import (
	"fmt"
	"os"
	"testing"
	"time"

	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/sim"
)

// benchProcPool spawns n real worker subprocesses (the test binary re-execed
// into ServeWorker, same shape as `robsched worker`), outside the timed loop.
func benchProcPool(b *testing.B, n int) *Pool {
	b.Helper()
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	b.Setenv("ROBSCHED_DIST_TEST_WORKER", "1")
	pool, err := NewProcPool(n, exe)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pool.Close() })
	return pool
}

// BenchmarkDistEvaluateAll measures the Monte-Carlo scatter/gather against
// the in-process engine on the same workload. Worker-side parallelism is
// pinned to 1 so the sharding speedup is attributable to the processes: on
// an m-core machine, shards=k should approach min(k, m)× the inproc lane;
// on a single core the lanes expose the wire + process overhead instead.
func BenchmarkDistEvaluateAll(b *testing.B) {
	w := testWorkload(b, 1, 100, 4, 4)
	ss := testSchedules(b, w)
	opt := sim.Options{Realizations: 1000, Workers: 1}

	b.Run("inproc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.EvaluateAll(ss, opt, rng.New(7)); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			pool := benchProcPool(b, shards)
			coord := &Coordinator{Pool: pool}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.EvaluateAll(ss, opt, rng.New(7)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The hardened lane arms liveness (frame deadlines, job budgets, worker
	// heartbeats) on a fault-free run: its gap to shards=4 is the price of
	// the failure detector when nothing fails.
	b.Run("shards=4/hardened", func(b *testing.B) {
		pool := benchProcPool(b, 4)
		coord := &Coordinator{Pool: pool, Timeout: 5 * time.Second}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := coord.EvaluateAll(ss, opt, rng.New(7)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchTCPPool starts n in-process loopback TCP worker servers and a pool
// dialed into them, outside the timed loop.
func benchTCPPool(b *testing.B, n int) *Pool {
	b.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		srv, err := ListenWorker("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go func() { _ = srv.Serve() }()
		b.Cleanup(srv.Shutdown)
		addrs[i] = srv.Addr()
	}
	pool, err := NewTCPPool(addrs, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pool.Close() })
	return pool
}

// BenchmarkDistEvaluateAllTCP is the loopback-TCP twin of the shards=4
// pipes lane above: same workload, same shard count, sockets instead of
// subprocess pipes. The gap between the two is the socket tax — the
// acceptance bar is staying within ~10% of pipes on loopback.
func BenchmarkDistEvaluateAllTCP(b *testing.B) {
	w := testWorkload(b, 1, 100, 4, 4)
	ss := testSchedules(b, w)
	opt := sim.Options{Realizations: 1000, Workers: 1}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("tcp=%d", workers), func(b *testing.B) {
			pool := benchTCPPool(b, workers)
			coord := &Coordinator{Pool: pool}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.EvaluateAll(ss, opt, rng.New(7)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistPipelineRTT is the latency matrix behind the flow-control
// design: scatter/gather over a single worker whose link carries an
// injected round trip of 0/1/5/20ms, dispatched strictly (depth=1, one
// range in flight — the pre-pipelining behavior) versus with the
// RTT-derived credit window (depth=auto). Throughput at depth=1 collapses
// linearly with RTT (one full round trip per range); the pipelined lanes
// must hold roughly flat, ≥2× depth-1 at 5ms.
func BenchmarkDistPipelineRTT(b *testing.B) {
	w := testWorkload(b, 1, 60, 4, 4)
	ss := testSchedules(b, w)
	opt := sim.Options{Realizations: 512, Workers: 1}
	for _, rtt := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		for _, depth := range []int{1, 0} {
			name := fmt.Sprintf("rtt=%s/depth=auto", rtt)
			if depth == 1 {
				name = fmt.Sprintf("rtt=%s/depth=1", rtt)
			}
			b.Run(name, func(b *testing.B) {
				pl := ChaosPlan{Seed: 1, Delay: rtt / 2}
				pool := NewPool([]Endpoint{pl.Wrap(LocalEndpoint(), 0)})
				b.Cleanup(func() { pool.Close() })
				coord := &Coordinator{
					Pool:          pool,
					Timeout:       30 * time.Second,
					PipelineDepth: depth,
					RangeSize:     32, // 16 ranges in flight contention
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := coord.EvaluateAll(ss, opt, rng.New(7)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDistSolveIslands measures an island-GA solve hosted on worker
// processes against the same run in-process, bit-identical by construction.
func BenchmarkDistSolveIslands(b *testing.B) {
	w := testWorkload(b, 2, 100, 4, 4)
	opt := robust.Options{
		Mode: robust.EpsilonConstraint, Eps: 1.4,
		PopSize: 20, MaxGenerations: 50, Stagnation: 0,
		Islands: 4, MigrationEvery: 10, Workers: 1,
	}

	b.Run("inproc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := robust.Solve(w, opt, rng.New(11)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		pool := benchProcPool(b, 4)
		coord := &Coordinator{Pool: pool}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := coord.Solve(w, opt, rng.New(11)); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Liveness + epoch checkpointing armed on a fault-free solve: measures
	// the standing cost of heartbeats, deadlines and checkpoint rounds.
	b.Run("sharded/hardened", func(b *testing.B) {
		pool := benchProcPool(b, 4)
		coord := &Coordinator{Pool: pool, Timeout: 5 * time.Second}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := coord.Solve(w, opt, rng.New(11)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
