package dist

import (
	"io"
	"testing"

	"robsched/internal/obs"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/wio"
)

func defaultIslandOpts() robust.Options {
	return robust.Options{
		Mode: robust.MinMakespan,
		PopSize: 8, CrossoverRate: 0.9, MutationRate: 0.1,
		MaxGenerations: 30, Stagnation: 0,
		Islands: 3, MigrationEvery: 6,
	}
}

func robustSolveRef(t *testing.T, w *platform.Workload, opt robust.Options) (*robust.Result, error) {
	t.Helper()
	return robust.Solve(w, opt, rng.New(31))
}

// killAfterFrames forwards exactly n response frames from the inner worker,
// then kills it — a process crash at a precisely controlled point of the
// island protocol (mid-init, between epochs, mid-checkpoint, ...).
func killAfterFrames(inner Endpoint, n int) Endpoint {
	resR, resW := io.Pipe()
	go func() {
		var buf []byte
		for i := 0; i < n; i++ {
			kind, payload, err := wio.ReadFrame(inner.R, buf)
			if err != nil {
				resW.CloseWithError(err)
				return
			}
			if cap(payload) > cap(buf) {
				buf = payload[:cap(payload)]
			}
			raw, err := wio.AppendFrame(nil, kind, payload)
			if err != nil {
				resW.CloseWithError(err)
				return
			}
			if _, err := resW.Write(raw); err != nil {
				return
			}
		}
		if inner.Kill != nil {
			inner.Kill()
		}
		resW.CloseWithError(io.ErrClosedPipe)
	}()
	return Endpoint{
		W: inner.W,
		R: resR,
		Kill: func() {
			if inner.Kill != nil {
				inner.Kill()
			}
			resR.CloseWithError(io.ErrClosedPipe)
		},
		Wait: inner.Wait,
	}
}

// checkSolveMatches asserts a recovered solve reproduced the fault-free
// trajectory exactly.
func checkSolveMatches(t *testing.T, tag string, got, want *robust.Result) {
	t.Helper()
	if got.Generations != want.Generations || got.Stagnated != want.Stagnated {
		t.Errorf("%s: run shape (%d, %v), want (%d, %v)",
			tag, got.Generations, got.Stagnated, want.Generations, want.Stagnated)
	}
	if !schedulesEqual(got.Schedule, want.Schedule) {
		t.Errorf("%s: schedules differ (makespan %v vs %v)",
			tag, got.Schedule.Makespan(), want.Schedule.Makespan())
	}
}

// TestCheckpointRestartPropertySpareWorker is the headline recovery
// property: kill an island worker after its n-th protocol frame, for every
// n across the whole solve, and the trajectory must continue bit-identically
// on the spare worker restored from the last epoch-barrier checkpoint.
func TestCheckpointRestartPropertySpareWorker(t *testing.T) {
	w := testWorkload(t, 13, 20, 3, 3)
	opt := defaultIslandOpts()
	opt.Islands = 2 // 2 hosts out of a 3-worker pool leaves a spare for recovery
	want, err := robustSolveRef(t, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	recoveredOnce := false
	for n := 1; n <= 25; n += 2 {
		pool := NewPool([]Endpoint{killAfterFrames(LocalEndpoint(), n), LocalEndpoint(), LocalEndpoint()})
		reg := obs.NewRegistry()
		pool.Obs = reg
		coord := &Coordinator{Pool: pool, Obs: reg}
		got, err := coord.Solve(w, opt, rng.New(31))
		if err != nil {
			t.Fatalf("kill after %d frames: %v", n, err)
		}
		checkSolveMatches(t, "spare-worker", got, want)
		if reg.Counter("dist.recoveries").Value() > 0 {
			recoveredOnce = true
			if reg.Counter("dist.degraded_solves").Value() != 0 {
				t.Errorf("kill after %d frames: degraded in-process despite a spare worker", n)
			}
		}
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !recoveredOnce {
		t.Error("sweep never triggered a recovery; kill points too late?")
	}
}

// TestCheckpointRestartRespawn: no spare workers, but respawn armed — the
// dead host's islands resume from checkpoint on a freshly spawned worker.
func TestCheckpointRestartRespawn(t *testing.T) {
	w := testWorkload(t, 13, 20, 3, 3)
	opt := defaultIslandOpts()
	want, err := robustSolveRef(t, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4, 9, 13} {
		pool := NewPool([]Endpoint{killAfterFrames(LocalEndpoint(), n), LocalEndpoint()})
		reg := obs.NewRegistry()
		pool.Obs = reg
		pool.Respawn(func() (Endpoint, error) { return LocalEndpoint(), nil }, 2)
		coord := &Coordinator{Pool: pool, Obs: reg}
		got, err := coord.Solve(w, opt, rng.New(31))
		if err != nil {
			t.Fatalf("kill after %d frames: %v", n, err)
		}
		checkSolveMatches(t, "respawn", got, want)
		if reg.Counter("dist.respawns").Value() == 0 {
			t.Errorf("kill after %d frames: no respawn", n)
		}
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointRestartDegradesInProcess: no spares, no respawn — the dead
// host's islands fold into the coordinator process and the solve still
// completes bit-identically (graceful degradation, the last rung).
func TestCheckpointRestartDegradesInProcess(t *testing.T) {
	w := testWorkload(t, 13, 20, 3, 3)
	opt := defaultIslandOpts()
	want, err := robustSolveRef(t, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 answers 14 frames over this solve (init, then 5 rounds whose
	// checkpoint pulls overlap the next epoch: epoch/migrate, epoch+ckpt/
	// migrate ×3, epoch+ckpt — final checkpoint and last migration dropped);
	// every kill point below lands mid-run, so each sweep entry must recover.
	for _, n := range []int{1, 3, 7, 12, 13} {
		pool := NewPool([]Endpoint{killAfterFrames(LocalEndpoint(), n), LocalEndpoint()})
		reg := obs.NewRegistry()
		pool.Obs = reg
		coord := &Coordinator{Pool: pool, Obs: reg}
		got, err := coord.Solve(w, opt, rng.New(31))
		if err != nil {
			t.Fatalf("kill after %d frames: %v", n, err)
		}
		checkSolveMatches(t, "degraded", got, want)
		if reg.Counter("dist.degraded_solves").Value() == 0 {
			t.Errorf("kill after %d frames: expected in-process degradation", n)
		}
		if reg.Counter("dist.checkpoints").Value() == 0 && n > 5 {
			t.Errorf("kill after %d frames: no checkpoints were taken", n)
		}
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointEmptyPoolSolvesInProcess: a pool with no workers at all
// still solves — everything folds in-process from the start.
func TestCheckpointEmptyPoolSolvesInProcess(t *testing.T) {
	w := testWorkload(t, 13, 20, 3, 3)
	opt := defaultIslandOpts()
	want, err := robustSolveRef(t, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(nil)
	defer pool.Close()
	reg := obs.NewRegistry()
	coord := &Coordinator{Pool: pool, Obs: reg}
	got, err := coord.Solve(w, opt, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	checkSolveMatches(t, "empty-pool", got, want)
	if reg.Counter("dist.degraded_solves").Value() == 0 {
		t.Error("expected the empty pool to count a degraded solve")
	}
}

// TestNoCheckpointStillRecovers: with checkpoints disabled the recovery
// baseline is the initial seeds and the oplog never truncates, so a death
// costs a full-history replay — but the trajectory still comes back
// bit-identical, and no checkpoint is ever taken.
func TestNoCheckpointStillRecovers(t *testing.T) {
	w := testWorkload(t, 13, 20, 3, 3)
	opt := defaultIslandOpts()
	want, err := robustSolveRef(t, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 5, 9} {
		pool := NewPool([]Endpoint{killAfterFrames(LocalEndpoint(), n), LocalEndpoint()})
		reg := obs.NewRegistry()
		pool.Obs = reg
		coord := &Coordinator{Pool: pool, Obs: reg, NoCheckpoint: true}
		got, err := coord.Solve(w, opt, rng.New(31))
		if err != nil {
			t.Fatalf("kill after %d frames: %v", n, err)
		}
		checkSolveMatches(t, "no-checkpoint", got, want)
		if reg.Counter("dist.checkpoints").Value() != 0 {
			t.Error("NoCheckpoint still took checkpoints")
		}
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
