package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"robsched/internal/ga"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/sim"
	"robsched/internal/wio"
)

// frameWriter serializes frame writes to the response stream. Heartbeat
// pulses are emitted from a side goroutine while a computation runs, so
// every write must take the whole frame (header + payload + flush) under
// one lock — interleaving half-frames would corrupt the stream.
type frameWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
}

func (fw *frameWriter) write(kind byte, payload []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if err := wio.WriteFrame(fw.w, kind, payload); err != nil {
		return err
	}
	return fw.w.Flush()
}

func (fw *frameWriter) sendJSON(kind byte, v any) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if err := sendJSON(fw.w, kind, v); err != nil {
		return err
	}
	return fw.w.Flush()
}

// batch runs fn against the locked write buffer and flushes once at the
// end — the write-coalescing path: a whole response sequence (ack, vector
// frames, done marker) leaves in one flush, one syscall, one packet train,
// instead of a flush per frame. A mid-batch error can only come from the
// underlying writer failing, at which point the stream is dead anyway.
func (fw *frameWriter) batch(fn func(w *bufio.Writer) error) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if err := fn(fw.w); err != nil {
		return err
	}
	return fw.w.Flush()
}

// withHeartbeat runs compute while emitting KHeartbeat frames every millis
// milliseconds, so the coordinator's per-frame deadline sees life from a
// worker that is busy rather than stuck. millis <= 0 runs compute directly —
// the fault-free default costs nothing. The pulse goroutine is stopped and
// reaped before returning, so the response that follows never races a
// heartbeat for the stream (and a heartbeat can never land after KErr).
func withHeartbeat(fw *frameWriter, millis int, compute func() error) error {
	if millis <= 0 {
		return compute()
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(time.Duration(millis) * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if fw.write(KHeartbeat, nil) != nil {
					return // pipe gone; the main loop will notice
				}
			}
		}
	}()
	err := compute()
	close(stop)
	<-done
	return err
}

// ServeWorker runs the worker half of the dist protocol over the (r, w)
// pipe pair — in production, the stdin/stdout of a `robsched worker`
// subprocess — until the coordinator closes the stream or sends KShutdown.
//
// Job-level failures (a malformed workload, invalid options) are reported
// back as KErr frames and the worker keeps serving; transport failures
// terminate the loop with an error. The worker is stateless between sim
// jobs; island hosting holds state from KIslandInit until KIslandFinish or
// a replacing init.
//
// Island requests carry sequence numbers: a request whose Seq matches the
// last one processed is answered from the cached response without
// re-executing, so a transport that duplicates frames cannot advance an
// island twice (at-most-once semantics; Seq 0 disables the check).
func ServeWorker(r io.Reader, w io.Writer) error {
	return serveWorker(r, w, nil, nil)
}

// drained reports whether the drain channel (nil when graceful shutdown is
// not wired) has fired.
func drained(drain <-chan struct{}) bool {
	if drain == nil {
		return false
	}
	select {
	case <-drain:
		return true
	default:
		return false
	}
}

// serveWorker is the serve loop behind ServeWorker and the graceful-stop
// transports. When drain is non-nil and fires, interrupt is invoked once to
// unblock the pending between-requests read (closing the transport's read
// direction or arming an immediate read deadline — writes must survive, so
// the in-flight operation still answers and flushes); the loop then exits
// cleanly instead of treating the unblocked read's error as a failure.
func serveWorker(r io.Reader, w io.Writer, drain <-chan struct{}, interrupt func()) error {
	br := bufio.NewReaderSize(r, 1<<16)
	fw := &frameWriter{w: bufio.NewWriterSize(w, 1<<16)}
	fr := wio.NewFrameReader(br)
	var host *islandHost
	var setup *simState
	if drain != nil && interrupt != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-drain:
				interrupt()
			case <-done:
			}
		}()
	}
	for {
		kind, payload, err := fr.Read()
		if err == io.EOF {
			return nil // coordinator closed between frames: clean exit
		}
		if err != nil {
			if drained(drain) {
				return nil // graceful stop unblocked the idle read
			}
			return fmt.Errorf("dist: worker read: %w", err)
		}
		var jobErr error
		switch kind {
		case KShutdown:
			return nil
		case KSimJob:
			jobErr = handleSimJob(fw, payload)
		case KSimSetup:
			setup, jobErr = newSimState(payload)
		case KSimRange:
			jobErr = handleSimRange(fw, setup, payload)
		case KIslandInit:
			host, jobErr = newIslandHost(payload)
			if jobErr == nil {
				jobErr = host.reply(fw, KIslandState, host.statesSeq(host.initSeq))
			}
		case KEpoch:
			jobErr = handleEpoch(fw, host, payload)
		case KMigrate:
			jobErr = handleMigrate(fw, host, payload)
		case KCheckpoint:
			jobErr = handleCheckpoint(fw, host, payload)
		case KIslandFinish:
			host = nil
			jobErr = fw.write(KOK, nil)
		default:
			jobErr = fmt.Errorf("dist: unknown frame kind %d", kind)
		}
		if jobErr != nil {
			// Report and keep serving. If even the error frame cannot be
			// written the pipe is gone and the loop must end.
			em := ErrMsg{Error: jobErr.Error()}
			var se *setupError
			if errors.As(jobErr, &se) {
				em.Code = ErrCodeSetup
			}
			if err := fw.sendJSON(KErr, em); err != nil {
				return err
			}
		}
		if drained(drain) {
			return nil // graceful stop: the in-flight op answered; exit
		}
	}
}

// handleSimJob realizes one seed window and streams the makespan vectors
// back: a KAck echoing the job's sequence number, one KSimVec frame per
// schedule in schedule order, then KSimDone. Everything is computed before
// the first response byte, so a failure never leaves a half-written
// response sequence. Heartbeats pulse during the compute when the job asks
// for them.
func handleSimJob(fw *frameWriter, payload []byte) error {
	var job SimJob
	if err := parseJSON(payload, &job); err != nil {
		return err
	}
	var mks [][]float64
	err := withHeartbeat(fw, job.HeartbeatMillis, func() error {
		wl, err := job.Workload.Build()
		if err != nil {
			return err
		}
		ss := make([]*schedule.Schedule, len(job.Schedules))
		for i, doc := range job.Schedules {
			if ss[i], err = doc.Bind(wl); err != nil {
				return err
			}
		}
		opt := sim.Options{
			Antithetic: job.Antithetic, BatchSize: job.BatchSize, Workers: job.Workers,
			Model: job.Model, Corr: job.Corr, LoadCOV: job.LoadCOV, ParetoShape: job.ParetoShape,
		}
		mks, err = sim.RealizeSeeded(ss, opt, job.Seeds, job.Base)
		return err
	})
	if err != nil {
		return err
	}
	if err := fw.sendJSON(KAck, Ack{Seq: job.Seq}); err != nil {
		return err
	}
	for j, v := range mks {
		if err := fw.write(KSimVec, encodeVec(j, v)); err != nil {
			return err
		}
	}
	return fw.write(KSimDone, nil)
}

// simState is the per-connection sim setup bound by KSimSetup: the decoded
// workload and schedules every subsequent KSimRange realizes against.
type simState struct {
	id       uint64
	ss       []*schedule.Schedule
	opt      sim.Options
	hbMillis int
}

// setupError marks a range that referenced a setup this worker does not
// hold — the setup frame was lost in transit. Reported back with
// ErrMsg.Code "setup" so the coordinator reassigns rather than aborts.
type setupError struct{ id uint64 }

func (e *setupError) Error() string {
	return fmt.Sprintf("dist: no setup %d bound to this connection", e.id)
}

// newSimState decodes and binds a KSimSetup. No response frame: the setup
// is validated here, and a bad one surfaces as the KErr this handler's
// error becomes — which the coordinator receives in place of the first
// range's ack.
func newSimState(payload []byte) (*simState, error) {
	var su SimSetup
	if err := parseJSON(payload, &su); err != nil {
		return nil, err
	}
	wl, err := su.Workload.Build()
	if err != nil {
		return nil, err
	}
	ss := make([]*schedule.Schedule, len(su.Schedules))
	for i, doc := range su.Schedules {
		if ss[i], err = doc.Bind(wl); err != nil {
			return nil, err
		}
	}
	return &simState{
		id: su.ID,
		ss: ss,
		opt: sim.Options{
			Antithetic: su.Antithetic, BatchSize: su.BatchSize, Workers: su.Workers,
			Model: su.Model, Corr: su.Corr, LoadCOV: su.LoadCOV, ParetoShape: su.ParetoShape,
		},
		hbMillis: su.HeartbeatMillis,
	}, nil
}

// handleSimRange realizes one pipelined seed window against the bound
// setup and streams the response — KAck, one KSimVec per schedule, KSimDone
// — in a single coalesced flush. Everything is computed before the first
// response byte, so a failure never leaves a half-written sequence.
func handleSimRange(fw *frameWriter, setup *simState, payload []byte) error {
	var req SimRange
	if err := parseJSON(payload, &req); err != nil {
		return err
	}
	if setup == nil || setup.id != req.Setup {
		return &setupError{req.Setup}
	}
	var mks [][]float64
	err := withHeartbeat(fw, setup.hbMillis, func() error {
		var err error
		mks, err = sim.RealizeSeeded(setup.ss, setup.opt, req.Seeds, req.Base)
		return err
	})
	if err != nil {
		return err
	}
	return fw.batch(func(w *bufio.Writer) error {
		if err := sendJSON(w, KAck, Ack{Seq: req.Seq}); err != nil {
			return err
		}
		for j, v := range mks {
			if err := wio.WriteFrame(w, KSimVec, encodeVec(j, v)); err != nil {
				return err
			}
		}
		return wio.WriteFrame(w, KSimDone, nil)
	})
}

func handleEpoch(fw *frameWriter, host *islandHost, payload []byte) error {
	if host == nil {
		return fmt.Errorf("dist: epoch before init")
	}
	var req EpochReq
	if err := parseJSON(payload, &req); err != nil {
		return err
	}
	if host.replayCached(fw, req.Seq) {
		return nil
	}
	err := withHeartbeat(fw, host.hbMillis, func() error { return host.runEpoch(req) })
	if err != nil {
		return err
	}
	return host.reply(fw, KIslandState, host.statesSeq(req.Seq))
}

func handleMigrate(fw *frameWriter, host *islandHost, payload []byte) error {
	if host == nil {
		return fmt.Errorf("dist: migrate before init")
	}
	var req MigrateReq
	if err := parseJSON(payload, &req); err != nil {
		return err
	}
	if host.replayCached(fw, req.Seq) {
		return nil
	}
	if err := host.runMigrate(req); err != nil {
		return err
	}
	return host.reply(fw, KIslandState, host.statesSeq(req.Seq))
}

func handleCheckpoint(fw *frameWriter, host *islandHost, payload []byte) error {
	if host == nil {
		return fmt.Errorf("dist: checkpoint before init")
	}
	var req CheckpointReq
	if err := parseJSON(payload, &req); err != nil {
		return err
	}
	if host.replayCached(fw, req.Seq) {
		return nil
	}
	cks := host.checkpoints()
	cks.Seq = req.Seq
	return host.reply(fw, KCheckpointState, cks)
}

// islandHost is the worker-side state of an island-sharded solve: the
// solver engine for the workload plus the hosted ga.Island states. It is
// the same state machine ga.RunIslands drives in-process; the coordinator
// supplies the barrier ordering and the ring migrants. The coordinator's
// graceful-degradation path reuses it verbatim via hostIslands when the
// pool is exhausted.
type islandHost struct {
	eng      *robust.Engine
	islands  []*ga.Island[*robust.Chromosome] // ascending island index
	hbMillis int
	initSeq  uint64

	// At-most-once replay cache: the kind and encoded body of the last
	// response, keyed by the request sequence that produced it.
	lastSeq  uint64
	lastKind byte
	lastBody []byte
}

// replayCached answers a duplicated request (same non-zero Seq as the last
// one processed) from the cached response, reporting whether it did.
func (h *islandHost) replayCached(fw *frameWriter, seq uint64) bool {
	if seq == 0 || seq != h.lastSeq || h.lastBody == nil {
		return false
	}
	_ = fw.write(h.lastKind, h.lastBody)
	return true
}

// reply sends a response and records it for duplicate replay.
func (h *islandHost) reply(fw *frameWriter, kind byte, v any) error {
	body, err := marshalJSON(v)
	if err != nil {
		return err
	}
	var seq uint64
	switch resp := v.(type) {
	case IslandStates:
		seq = resp.Seq
	case IslandCheckpoints:
		seq = resp.Seq
	}
	if seq != 0 {
		h.lastSeq, h.lastKind, h.lastBody = seq, kind, body
	}
	return fw.write(kind, body)
}

func newIslandHost(payload []byte) (*islandHost, error) {
	var init IslandInit
	if err := parseJSON(payload, &init); err != nil {
		return nil, err
	}
	if len(init.Islands) == 0 {
		return nil, fmt.Errorf("dist: island init with no islands")
	}
	wl, err := init.Workload.Build()
	if err != nil {
		return nil, err
	}
	o := init.Opt
	eng, err := robust.NewEngine(wl, robust.Options{
		Mode:           robust.Mode(o.Mode),
		Eps:            o.Eps,
		SlackMetric:    robust.SlackMetric(o.SlackMetric),
		PopSize:        o.PopSize,
		CrossoverRate:  o.CrossoverRate,
		MutationRate:   o.MutationRate,
		MaxGenerations: o.MaxGenerations,
		Stagnation:     o.Stagnation,
		NoHEFTSeed:     o.NoHEFTSeed,
		NoMetricsCache: o.NoMetricsCache,
		NoDeltaDecode:  o.NoDeltaDecode,
		Workers:        o.Workers,
	})
	if err != nil {
		return nil, err
	}
	h, err := hostIslands(eng, init.Islands)
	if err != nil {
		return nil, err
	}
	h.hbMillis = init.HeartbeatMillis
	h.initSeq = init.Seq
	return h, nil
}

// hostIslands builds the island state machines on an existing engine: fresh
// from each seed, or resumed from a checkpoint when one is attached (the
// recovery path). The coordinator's in-process degradation uses this
// directly with its own engine.
func hostIslands(eng *robust.Engine, seeds []IslandSeed) (*islandHost, error) {
	h := &islandHost{eng: eng}
	sorted := append([]IslandSeed(nil), seeds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Island < sorted[j].Island })
	cfg := eng.Config()
	for _, is := range sorted {
		var st *ga.Island[*robust.Chromosome]
		var err error
		if is.Restore != nil {
			if is.Restore.Island != is.Island {
				return nil, fmt.Errorf("dist: checkpoint for island %d attached to island %d", is.Restore.Island, is.Island)
			}
			st, err = restoredIsland(cfg, is.Restore)
		} else {
			st, err = ga.NewIsland(cfg, is.Island, rng.New(is.Seed))
		}
		if err != nil {
			return nil, err
		}
		h.islands = append(h.islands, st)
	}
	return h, nil
}

// restoredIsland rebuilds a ga.Island from its wire checkpoint.
func restoredIsland(cfg ga.Config[*robust.Chromosome], ck *IslandCheckpoint) (*ga.Island[*robust.Chromosome], error) {
	if len(ck.Pop) != len(ck.FitBits) {
		return nil, fmt.Errorf("dist: checkpoint for island %d has %d genotypes, %d fitnesses", ck.Island, len(ck.Pop), len(ck.FitBits))
	}
	snap := ga.IslandSnapshot[*robust.Chromosome]{
		Pop:          make([]*robust.Chromosome, len(ck.Pop)),
		Fit:          make([]float64, len(ck.FitBits)),
		Best:         robust.NewChromosome(ck.Best.Order, ck.Best.Proc),
		BestFit:      math.Float64frombits(ck.BestFitnessBits),
		SinceImprove: ck.SinceImprove,
		Rng: rng.State{
			S:        ck.Rng.S,
			Spare:    math.Float64frombits(ck.Rng.SpareBits),
			HasSpare: ck.Rng.HasSpare,
		},
	}
	for i, g := range ck.Pop {
		snap.Pop[i] = robust.NewChromosome(g.Order, g.Proc)
	}
	for i, b := range ck.FitBits {
		snap.Fit[i] = math.Float64frombits(b)
	}
	return ga.RestoreIsland(cfg, ck.Island, snap)
}

// states snapshots every hosted island's running best in island order.
func (h *islandHost) states() IslandStates {
	out := IslandStates{States: make([]IslandState, 0, len(h.islands))}
	for _, st := range h.islands {
		b, bf := st.Best()
		out.States = append(out.States, IslandState{
			Island:          st.Index(),
			Best:            Genotype{Order: b.Order, Proc: b.Proc},
			BestFitnessBits: math.Float64bits(bf),
			SinceImprove:    st.SinceImprove(),
		})
	}
	return out
}

// statesSeq is states stamped with the request sequence it answers.
func (h *islandHost) statesSeq(seq uint64) IslandStates {
	out := h.states()
	out.Seq = seq
	return out
}

// checkpoints serializes every hosted island's full resumable state, in
// island order. Snapshot is a pure read: the rng stream does not advance,
// so checkpointing never perturbs the trajectory.
func (h *islandHost) checkpoints() IslandCheckpoints {
	out := IslandCheckpoints{Checkpoints: make([]IslandCheckpoint, 0, len(h.islands))}
	for _, st := range h.islands {
		snap := st.Snapshot()
		ck := IslandCheckpoint{
			Island:          st.Index(),
			Pop:             make([]Genotype, len(snap.Pop)),
			FitBits:         make([]uint64, len(snap.Fit)),
			SinceImprove:    snap.SinceImprove,
			BestFitnessBits: math.Float64bits(snap.BestFit),
			Rng: RNGState{
				S:         snap.Rng.S,
				SpareBits: math.Float64bits(snap.Rng.Spare),
				HasSpare:  snap.Rng.HasSpare,
			},
		}
		bo, bp := snap.Best.Genes()
		ck.Best = Genotype{Order: bo, Proc: bp}
		for i, ch := range snap.Pop {
			o, p := ch.Genes()
			ck.Pop[i] = Genotype{Order: o, Proc: p}
		}
		for i, f := range snap.Fit {
			ck.FitBits[i] = math.Float64bits(f)
		}
		out.Checkpoints = append(out.Checkpoints, ck)
	}
	return out
}

func (h *islandHost) find(island int) (*ga.Island[*robust.Chromosome], error) {
	if h == nil {
		return nil, fmt.Errorf("dist: island message before init")
	}
	for _, st := range h.islands {
		if st.Index() == island {
			return st, nil
		}
	}
	return nil, fmt.Errorf("dist: island %d not hosted here", island)
}

// runEpoch advances every hosted island. Pure state transition — the
// serving layer (or the coordinator's in-process fallback) owns the
// response.
func (h *islandHost) runEpoch(req EpochReq) error {
	for _, st := range h.islands {
		if err := st.Epoch(req.StartGen, req.Gens); err != nil {
			return err
		}
	}
	return nil
}

// runMigrate delivers this barrier's migrants to their target islands.
func (h *islandHost) runMigrate(req MigrateReq) error {
	for _, m := range req.Migrants {
		st, err := h.find(m.Island)
		if err != nil {
			return err
		}
		// The migrant arrives as a bare genotype; the island re-evaluates
		// it locally. The fitness is a pure function of the genotype, so
		// losing the sender's memoized metrics changes speed, never values.
		if err := st.Migrate(robust.NewChromosome(m.Genotype.Order, m.Genotype.Proc)); err != nil {
			return err
		}
	}
	return nil
}
