package dist

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"robsched/internal/ga"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/sim"
	"robsched/internal/wio"
)

// ServeWorker runs the worker half of the dist protocol over the (r, w)
// pipe pair — in production, the stdin/stdout of a `robsched worker`
// subprocess — until the coordinator closes the stream or sends KShutdown.
//
// Job-level failures (a malformed workload, invalid options) are reported
// back as KErr frames and the worker keeps serving; transport failures
// terminate the loop with an error. The worker is stateless between sim
// jobs; island hosting holds state from KIslandInit until KIslandFinish or
// a replacing init.
func ServeWorker(r io.Reader, w io.Writer) error {
	br := bufio.NewReaderSize(r, 1<<16)
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf []byte
	var host *islandHost
	for {
		kind, payload, err := wio.ReadFrame(br, buf)
		if err == io.EOF {
			return nil // coordinator closed between frames: clean exit
		}
		if err != nil {
			return fmt.Errorf("dist: worker read: %w", err)
		}
		if cap(payload) > cap(buf) {
			buf = payload[:0]
		}
		var jobErr error
		switch kind {
		case KShutdown:
			return nil
		case KSimJob:
			jobErr = handleSimJob(bw, payload)
		case KIslandInit:
			host, jobErr = newIslandHost(payload)
			if jobErr == nil {
				jobErr = sendJSON(bw, KIslandState, host.states())
			}
		case KEpoch:
			jobErr = host.epoch(bw, payload)
		case KMigrate:
			jobErr = host.migrate(bw, payload)
		case KIslandFinish:
			host = nil
			jobErr = wio.WriteFrame(bw, KOK, nil)
		default:
			jobErr = fmt.Errorf("dist: unknown frame kind %d", kind)
		}
		if jobErr != nil {
			// Report and keep serving. If even the error frame cannot be
			// written the pipe is gone and the loop must end.
			if err := sendJSON(bw, KErr, ErrMsg{Error: jobErr.Error()}); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// handleSimJob realizes one seed window and streams the makespan vectors
// back: one KSimVec frame per schedule in schedule order, then KSimDone.
// Everything is computed before the first response byte, so a failure never
// leaves a half-written response sequence.
func handleSimJob(w io.Writer, payload []byte) error {
	var job SimJob
	if err := parseJSON(payload, &job); err != nil {
		return err
	}
	wl, err := job.Workload.Build()
	if err != nil {
		return err
	}
	ss := make([]*schedule.Schedule, len(job.Schedules))
	for i, doc := range job.Schedules {
		if ss[i], err = doc.Bind(wl); err != nil {
			return err
		}
	}
	opt := sim.Options{Antithetic: job.Antithetic, BatchSize: job.BatchSize, Workers: job.Workers}
	mks, err := sim.RealizeSeeded(ss, opt, job.Seeds, job.Base)
	if err != nil {
		return err
	}
	for _, v := range mks {
		if err := wio.WriteFrame(w, KSimVec, encodeVec(v)); err != nil {
			return err
		}
	}
	return wio.WriteFrame(w, KSimDone, nil)
}

// islandHost is the worker-side state of an island-sharded solve: the
// solver engine for the workload plus the hosted ga.Island states. It is
// the same state machine ga.RunIslands drives in-process; the coordinator
// supplies the barrier ordering and the ring migrants.
type islandHost struct {
	eng     *robust.Engine
	islands []*ga.Island[*robust.Chromosome] // ascending island index
}

func newIslandHost(payload []byte) (*islandHost, error) {
	var init IslandInit
	if err := parseJSON(payload, &init); err != nil {
		return nil, err
	}
	if len(init.Islands) == 0 {
		return nil, fmt.Errorf("dist: island init with no islands")
	}
	wl, err := init.Workload.Build()
	if err != nil {
		return nil, err
	}
	o := init.Opt
	eng, err := robust.NewEngine(wl, robust.Options{
		Mode:           robust.Mode(o.Mode),
		Eps:            o.Eps,
		SlackMetric:    robust.SlackMetric(o.SlackMetric),
		PopSize:        o.PopSize,
		CrossoverRate:  o.CrossoverRate,
		MutationRate:   o.MutationRate,
		MaxGenerations: o.MaxGenerations,
		Stagnation:     o.Stagnation,
		NoHEFTSeed:     o.NoHEFTSeed,
		NoMetricsCache: o.NoMetricsCache,
		NoDeltaDecode:  o.NoDeltaDecode,
		Workers:        o.Workers,
	})
	if err != nil {
		return nil, err
	}
	h := &islandHost{eng: eng}
	seeds := append([]IslandSeed(nil), init.Islands...)
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].Island < seeds[j].Island })
	cfg := eng.Config()
	for _, is := range seeds {
		st, err := ga.NewIsland(cfg, is.Island, rng.New(is.Seed))
		if err != nil {
			return nil, err
		}
		h.islands = append(h.islands, st)
	}
	return h, nil
}

// states snapshots every hosted island's running best in island order.
func (h *islandHost) states() IslandStates {
	out := IslandStates{States: make([]IslandState, 0, len(h.islands))}
	for _, st := range h.islands {
		b, bf := st.Best()
		out.States = append(out.States, IslandState{
			Island:          st.Index(),
			Best:            Genotype{Order: b.Order, Proc: b.Proc},
			BestFitnessBits: math.Float64bits(bf),
			SinceImprove:    st.SinceImprove(),
		})
	}
	return out
}

func (h *islandHost) find(island int) (*ga.Island[*robust.Chromosome], error) {
	if h == nil {
		return nil, fmt.Errorf("dist: island message before init")
	}
	for _, st := range h.islands {
		if st.Index() == island {
			return st, nil
		}
	}
	return nil, fmt.Errorf("dist: island %d not hosted here", island)
}

func (h *islandHost) epoch(w io.Writer, payload []byte) error {
	if h == nil {
		return fmt.Errorf("dist: epoch before init")
	}
	var req EpochReq
	if err := parseJSON(payload, &req); err != nil {
		return err
	}
	for _, st := range h.islands {
		if err := st.Epoch(req.StartGen, req.Gens); err != nil {
			return err
		}
	}
	return sendJSON(w, KIslandState, h.states())
}

func (h *islandHost) migrate(w io.Writer, payload []byte) error {
	if h == nil {
		return fmt.Errorf("dist: migrate before init")
	}
	var req MigrateReq
	if err := parseJSON(payload, &req); err != nil {
		return err
	}
	for _, m := range req.Migrants {
		st, err := h.find(m.Island)
		if err != nil {
			return err
		}
		// The migrant arrives as a bare genotype; the island re-evaluates
		// it locally. The fitness is a pure function of the genotype, so
		// losing the sender's memoized metrics changes speed, never values.
		if err := st.Migrate(robust.NewChromosome(m.Genotype.Order, m.Genotype.Proc)); err != nil {
			return err
		}
	}
	return sendJSON(w, KIslandState, h.states())
}
