package dist

import (
	"errors"
	"io"
	"strings"
	"testing"

	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/sim"
	"robsched/internal/wio"
)

// protoDriver speaks raw frames to an in-process ServeWorker, for
// exercising the protocol's error paths without a coordinator.
type protoDriver struct {
	t    *testing.T
	w    *io.PipeWriter
	r    *io.PipeReader
	done chan error
}

func newProtoDriver(t *testing.T) *protoDriver {
	t.Helper()
	jobR, jobW := io.Pipe()
	resR, resW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := ServeWorker(jobR, resW)
		resW.CloseWithError(err)
		done <- err
	}()
	d := &protoDriver{t: t, w: jobW, r: resR, done: done}
	t.Cleanup(func() { jobW.Close() })
	return d
}

func (d *protoDriver) send(kind byte, v any) {
	d.t.Helper()
	if err := sendJSON(d.w, kind, v); err != nil {
		d.t.Fatal(err)
	}
}

func (d *protoDriver) sendRaw(kind byte, payload []byte) {
	d.t.Helper()
	if err := wio.WriteFrame(d.w, kind, payload); err != nil {
		d.t.Fatal(err)
	}
}

func (d *protoDriver) recv() (byte, []byte) {
	d.t.Helper()
	kind, payload, err := wio.ReadFrame(d.r, nil)
	if err != nil {
		d.t.Fatal(err)
	}
	return kind, payload
}

// expectErr reads one frame and asserts it is a KErr mentioning substr.
func (d *protoDriver) expectErr(substr string) {
	d.t.Helper()
	kind, payload := d.recv()
	if kind != KErr {
		d.t.Fatalf("frame kind %d, want KErr", kind)
	}
	var em ErrMsg
	if err := parseJSON(payload, &em); err != nil {
		d.t.Fatal(err)
	}
	if !strings.Contains(em.Error, substr) {
		d.t.Fatalf("error %q does not mention %q", em.Error, substr)
	}
}

// TestWorkerProtocolErrors walks the job-level failure paths: each bad
// message earns a KErr and the worker keeps serving; KShutdown ends the
// loop cleanly.
func TestWorkerProtocolErrors(t *testing.T) {
	d := newProtoDriver(t)

	d.sendRaw(99, nil)
	d.expectErr("unknown frame kind")

	d.send(KEpoch, EpochReq{StartGen: 0, Gens: 1})
	d.expectErr("before init")

	d.send(KMigrate, MigrateReq{})
	d.expectErr("before init")

	d.sendRaw(KIslandInit, []byte("{not json"))
	d.expectErr("decoding")

	d.send(KIslandInit, IslandInit{})
	d.expectErr("no islands")

	d.sendRaw(KSimJob, []byte("###"))
	d.expectErr("decoding")

	d.send(KSimJob, SimJob{}) // empty workload document
	d.expectErr("tasks")

	// Finish without islands is harmless (idempotent teardown).
	d.sendRaw(KIslandFinish, nil)
	if kind, _ := d.recv(); kind != KOK {
		t.Fatalf("finish response kind %d, want KOK", kind)
	}

	d.sendRaw(KShutdown, nil)
	if err := <-d.done; err != nil {
		t.Fatalf("worker exited with %v", err)
	}
}

// TestWorkerIslandConversation drives a full island session by hand,
// including a migrant routed to an island the worker does not host.
func TestWorkerIslandConversation(t *testing.T) {
	w := testWorkload(t, 2, 12, 2, 2)
	d := newProtoDriver(t)
	init := IslandInit{
		Workload: wio.NewWorkloadJSON(w),
		Opt: SolverOptions{
			Mode:    int(robust.MinMakespan),
			PopSize: 6, CrossoverRate: 0.9, MutationRate: 0.1,
			MaxGenerations: 10,
		},
		Islands: []IslandSeed{{Island: 1, Seed: 42}, {Island: 0, Seed: 7}},
	}
	d.send(KIslandInit, init)
	kind, payload := d.recv()
	if kind != KIslandState {
		t.Fatalf("init response kind %d", kind)
	}
	var states IslandStates
	if err := parseJSON(payload, &states); err != nil {
		t.Fatal(err)
	}
	// States come back in ascending island order regardless of init order.
	if len(states.States) != 2 || states.States[0].Island != 0 || states.States[1].Island != 1 {
		t.Fatalf("init states %+v", states.States)
	}

	d.send(KEpoch, EpochReq{StartGen: 0, Gens: 3})
	if kind, _ = d.recv(); kind != KIslandState {
		t.Fatalf("epoch response kind %d", kind)
	}

	// Route a migrant to island 0 using island 1's best.
	d.send(KMigrate, MigrateReq{Migrants: []Migrant{{Island: 0, Genotype: states.States[1].Best}}})
	if kind, _ = d.recv(); kind != KIslandState {
		t.Fatalf("migrate response kind %d", kind)
	}

	// A migrant for an island hosted elsewhere is a job error.
	d.send(KMigrate, MigrateReq{Migrants: []Migrant{{Island: 5, Genotype: states.States[0].Best}}})
	d.expectErr("not hosted")

	d.sendRaw(KIslandFinish, nil)
	if kind, _ = d.recv(); kind != KOK {
		t.Fatalf("finish response kind %d", kind)
	}
	d.sendRaw(KShutdown, nil)
	if err := <-d.done; err != nil {
		t.Fatal(err)
	}
}

// TestWorkerErrorSurfacesToCaller: a job-level failure (here: a workload
// whose schedules don't validate) comes back as *WorkerError and does not
// kill the worker.
func TestWorkerErrorSurfacesToCaller(t *testing.T) {
	pool := NewLocalPool(1)
	defer pool.Close()
	coord := &Coordinator{Pool: pool}

	conn, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	if conn.ID() != 0 {
		t.Fatalf("conn id %d", conn.ID())
	}
	_, err = dispatchSim(conn, SimJob{Seeds: []uint64{1}}, 0)
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("error %v, want *WorkerError", err)
	}
	if we.Worker != 0 || we.Error() == "" {
		t.Fatalf("worker error %+v", we)
	}
	pool.put(conn)

	// The worker survived the bad job: a real evaluation still works.
	w := testWorkload(t, 4, 15, 2, 2)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 20, Workers: 1}
	want, err := sim.EvaluateAll(ss, opt, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.EvaluateAll(ss, opt, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for j := range ss {
		if !metricsBitEqual(got[j], want[j]) {
			t.Errorf("schedule %d: metrics differ after recovered job error", j)
		}
	}
}

// TestCoordinatorValidation covers the coordinator's own input checks.
func TestCoordinatorValidation(t *testing.T) {
	pool := NewLocalPool(1)
	defer pool.Close()
	coord := &Coordinator{Pool: pool}
	if _, err := coord.RealizeAll(nil, sim.Options{Realizations: 5}, rng.New(1)); err == nil {
		t.Error("empty schedule list accepted")
	}
	w := testWorkload(t, 4, 10, 2, 2)
	ss := testSchedules(t, w)
	if _, err := coord.RealizeAll(ss, sim.Options{Realizations: 0}, rng.New(1)); err == nil {
		t.Error("zero realizations accepted")
	}
	var oe *sim.OptionError
	_, err := coord.EvaluateAll(ss, sim.Options{Realizations: -1}, rng.New(1))
	if !errors.As(err, &oe) {
		t.Errorf("error %v, want *sim.OptionError", err)
	}
}

// TestPoolClosedGet: a closed pool fails checkouts instead of blocking.
func TestPoolClosedGet(t *testing.T) {
	pool := NewLocalPool(1)
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := pool.get(); err == nil {
		t.Error("get on closed pool succeeded")
	}
}
