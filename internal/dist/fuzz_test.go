package dist

import (
	"testing"
)

// FuzzControlMessage throws arbitrary bytes at every control-message decoder
// of the wire protocol — the exact surface a corrupted or hostile frame
// payload reaches after the frame checksum (which this fuzz deliberately
// bypasses). Decoding must fail cleanly or produce a value every handler can
// hold: no panics, no runaway allocation. Valid messages must re-encode.
func FuzzControlMessage(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seq":18446744073709551615}`))
	f.Add([]byte(`{"workload":{"n":3,"m":2},"base":0,"seeds":[1,2,3],"hb_ms":25,"seq":7}`))
	f.Add([]byte(`{"islands":[{"island":0,"seed":42,"restore":{"island":0,"pop":[{"order":[0],"proc":[0]}],"fit_bits":[0],"rng":{"s":[1,2,3,4],"has_spare":true}}}]}`))
	f.Add([]byte(`{"migrants":[{"island":1,"genotype":{"order":[2,0,1],"proc":[1,0,1]}}],"seq":3}`))
	f.Add([]byte(`{"states":[{"island":0,"best_fitness_bits":4638387860618067575}]}`))
	f.Add([]byte(`{"checkpoints":[{"island":2,"since_improve":5}],"seq":9}`))
	f.Add([]byte(`{"error":"dist: island 7 not hosted here","code":"setup"}`))
	f.Add([]byte(`{"id":3,"workload":{"n":3,"m":2},"schedules":[],"batch_size":8}`))
	f.Add([]byte(`{"setup":3,"base":64,"seeds":[9,8,7],"seq":12}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`"not an object"`))
	f.Add([]byte{0xFF, 0xFE, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		targets := []any{
			&SimJob{}, &SimSetup{}, &SimRange{}, &Ack{}, &IslandInit{},
			&EpochReq{}, &MigrateReq{}, &IslandStates{}, &CheckpointReq{},
			&IslandCheckpoints{}, &ErrMsg{},
		}
		for _, v := range targets {
			if err := parseJSON(data, v); err != nil {
				continue
			}
			// A payload the worker would accept must round-trip through the
			// encoder it answers with.
			if _, err := marshalJSON(v); err != nil {
				t.Fatalf("decoded %T does not re-encode: %v", v, err)
			}
		}
	})
}
