// Package dist is a coordinator/worker runtime that scatters the repo's two
// embarrassingly-parallel workloads across local OS processes and gathers
// the results over pipes:
//
//   - realization sharding: the Monte-Carlo realizations of sim.EvaluateAll
//     are partitioned into contiguous index ranges, one job per worker; each
//     worker realizes its window with the coordinator-derived seed slice
//     (sim.RealizeSeeded) and streams the raw makespan vectors back. The
//     coordinator reassembles them in range order, so every metric —
//     quantiles included — is bit-identical to the single-process run for
//     any shard count.
//
//   - island sharding: the GA islands of robust.Solve are hosted by worker
//     processes (ga.Island, one state machine shared with the in-process
//     ga.RunIslands). The coordinator drives the epoch barriers and routes
//     the ring migrants in (generation, island) order, so the trajectory —
//     and the returned schedule — is bit-identical to the in-process island
//     run for any worker count.
//
// The wire format is the length-prefixed binary frame of internal/wio:
// control messages are JSON payloads (Go's encoding/json round-trips the
// uint64 seeds exactly into uint64 struct fields), makespan vectors are raw
// little-endian float64 blocks. Workers are plain `robsched worker`
// subprocesses speaking the protocol on stdin/stdout; stderr passes through
// for crash visibility.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"robsched/internal/wio"
)

// Frame kinds. The coordinator only ever sends job/control kinds; workers
// only ever send response kinds. An unknown kind is a protocol error on
// either side.
const (
	// KSimJob carries a SimJob (JSON): realize one seed window.
	KSimJob byte = 1
	// KSimVec carries one schedule's makespan vector for the current job as
	// raw little-endian float64s, one frame per schedule in schedule order.
	KSimVec byte = 2
	// KSimDone (empty payload) terminates a KSimJob response sequence.
	KSimDone byte = 3
	// KErr carries an ErrMsg (JSON) in place of any normal response.
	KErr byte = 4
	// KIslandInit carries an IslandInit (JSON): build the engine and host
	// the listed islands. Response: KIslandState.
	KIslandInit byte = 5
	// KIslandState carries an IslandStates (JSON): the hosted islands'
	// bests in island order. Sent in response to init, epoch and migrate.
	KIslandState byte = 6
	// KEpoch carries an EpochReq (JSON): advance every hosted island.
	// Response: KIslandState.
	KEpoch byte = 7
	// KMigrate carries a MigrateReq (JSON): replace each target island's
	// worst individual with the routed migrant. Response: KIslandState
	// with the post-migration bests.
	KMigrate byte = 8
	// KIslandFinish (empty payload) drops the hosted islands and engine.
	// Response: KOK.
	KIslandFinish byte = 9
	// KOK (empty payload) acknowledges a control message.
	KOK byte = 10
	// KShutdown (empty payload) asks the worker to exit cleanly. No
	// response; the worker closes its end.
	KShutdown byte = 11
)

// SimJob asks a worker to realize one contiguous window of a Monte-Carlo
// evaluation. The seed window plus the global base index are the entire
// stream-derivation state: sim.RealizeSeeded(…, Seeds, Base) in the worker
// produces exactly the makespans the coordinator's full-range run would
// produce at [Base, Base+len(Seeds)).
type SimJob struct {
	// Workload is the problem instance (workers are stateless between
	// jobs, so every job is self-contained).
	Workload wio.WorkloadJSON `json:"workload"`
	// Schedules are evaluated under common random numbers, like
	// sim.EvaluateAll.
	Schedules []wio.ScheduleJSON `json:"schedules"`
	// Base is the window's global realization index; it carries the
	// antithetic parity across shard boundaries.
	Base int `json:"base"`
	// Seeds is the window of the coordinator's seed vector.
	Seeds []uint64 `json:"seeds"`
	// Antithetic mirrors odd global realizations (matching the seed
	// pairing of the coordinator's sim.SeedVector call).
	Antithetic bool `json:"antithetic,omitempty"`
	// BatchSize and Workers are the worker-side engine knobs; neither can
	// change a bit of the results.
	BatchSize int `json:"batch_size,omitempty"`
	Workers   int `json:"workers,omitempty"`
}

// ErrMsg is a worker-side failure, shipped back in place of a response.
type ErrMsg struct {
	Error string `json:"error"`
}

// Genotype is a chromosome on the wire.
type Genotype struct {
	Order []int `json:"order"`
	Proc  []int `json:"proc"`
}

// SolverOptions is the JSON-safe subset of robust.Options an island worker
// needs to rebuild the engine. Everything here is deterministic
// configuration; callbacks and telemetry stay in the coordinator process.
type SolverOptions struct {
	Mode        int     `json:"mode"`
	Eps         float64 `json:"eps,omitempty"`
	SlackMetric int     `json:"slack_metric,omitempty"`

	PopSize        int     `json:"pop_size"`
	CrossoverRate  float64 `json:"crossover_rate"`
	MutationRate   float64 `json:"mutation_rate"`
	MaxGenerations int     `json:"max_generations"`
	Stagnation     int     `json:"stagnation,omitempty"`

	NoHEFTSeed     bool `json:"no_heft_seed,omitempty"`
	NoMetricsCache bool `json:"no_metrics_cache,omitempty"`
	NoDeltaDecode  bool `json:"no_delta_decode,omitempty"`
	// Workers bounds the decode fan-out inside the worker process.
	Workers int `json:"workers,omitempty"`
}

// IslandSeed assigns one island (by its global ring index) to the receiving
// worker, with the 64-bit seed of its RNG stream. The coordinator derives
// the seeds by root.SplitSeed() in island order, so rng.New(Seed) in the
// worker is bit-identical to the root.Split() fan-out of the in-process
// ga.RunIslands.
type IslandSeed struct {
	Island int    `json:"island"`
	Seed   uint64 `json:"seed"`
}

// IslandInit asks a worker to build the solver engine for the workload and
// host the listed islands.
type IslandInit struct {
	Workload wio.WorkloadJSON `json:"workload"`
	Opt      SolverOptions    `json:"opt"`
	Islands  []IslandSeed     `json:"islands"`
}

// EpochReq advances every hosted island by Gens generations. StartGen is
// the number of generations already evolved (observer numbering parity with
// the in-process runner; dist runs carry no observer but the state machine
// keeps the argument).
type EpochReq struct {
	StartGen int `json:"start_gen"`
	Gens     int `json:"gens"`
}

// Migrant routes one ring migrant to a hosted island.
type Migrant struct {
	Island   int      `json:"island"`
	Genotype Genotype `json:"genotype"`
}

// MigrateReq delivers this barrier's migrants for the worker's islands.
type MigrateReq struct {
	Migrants []Migrant `json:"migrants"`
}

// IslandState reports one hosted island's running best.
type IslandState struct {
	Island int      `json:"island"`
	Best   Genotype `json:"best"`
	// BestFitness is serialized as IEEE-754 bits: the ε-constraint mode
	// can produce ±Inf fitnesses, which JSON numbers cannot carry, and
	// the coordinator's tie-breaking must see the exact value.
	BestFitnessBits uint64 `json:"best_fitness_bits"`
	SinceImprove    int    `json:"since_improve"`
}

// BestFitness decodes the exact fitness value.
func (s IslandState) BestFitness() float64 { return math.Float64frombits(s.BestFitnessBits) }

// IslandStates is a worker's response to init, epoch and migrate: its
// hosted islands in ascending island order.
type IslandStates struct {
	States []IslandState `json:"states"`
}

// encodeVec converts a makespan vector to raw little-endian float64 bytes.
func encodeVec(mks []float64) []byte {
	out := make([]byte, 8*len(mks))
	for i, m := range mks {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(m))
	}
	return out
}

// decodeVecInto parses a KSimVec payload into dst, which must match its
// length exactly.
func decodeVecInto(dst []float64, payload []byte) error {
	if len(payload) != 8*len(dst) {
		return fmt.Errorf("dist: makespan vector is %d bytes, want %d", len(payload), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return nil
}

// sendJSON writes v as one JSON-payload frame.
func sendJSON(w io.Writer, kind byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dist: encoding %T: %w", v, err)
	}
	return wio.WriteFrame(w, kind, payload)
}

// parseJSON decodes a JSON control payload.
func parseJSON(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("dist: decoding %T: %w", v, err)
	}
	return nil
}
