// Package dist is a coordinator/worker runtime that scatters the repo's two
// embarrassingly-parallel workloads across local OS processes and gathers
// the results over pipes:
//
//   - realization sharding: the Monte-Carlo realizations of sim.EvaluateAll
//     are partitioned into contiguous index ranges, one job per worker; each
//     worker realizes its window with the coordinator-derived seed slice
//     (sim.RealizeSeeded) and streams the raw makespan vectors back. The
//     coordinator reassembles them in range order, so every metric —
//     quantiles included — is bit-identical to the single-process run for
//     any shard count.
//
//   - island sharding: the GA islands of robust.Solve are hosted by worker
//     processes (ga.Island, one state machine shared with the in-process
//     ga.RunIslands). The coordinator drives the epoch barriers and routes
//     the ring migrants in (generation, island) order, so the trajectory —
//     and the returned schedule — is bit-identical to the in-process island
//     run for any worker count.
//
// The wire format is the length-prefixed binary frame of internal/wio:
// control messages are JSON payloads (Go's encoding/json round-trips the
// uint64 seeds exactly into uint64 struct fields), makespan vectors are raw
// little-endian float64 blocks. Workers are plain `robsched worker`
// subprocesses speaking the protocol on stdin/stdout; stderr passes through
// for crash visibility.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"robsched/internal/sim"
	"robsched/internal/wio"
)

// Frame kinds. The coordinator only ever sends job/control kinds; workers
// only ever send response kinds. An unknown kind is a protocol error on
// either side.
const (
	// KSimJob carries a SimJob (JSON): realize one seed window.
	KSimJob byte = 1
	// KSimVec carries one schedule's makespan vector for the current job as
	// raw little-endian float64s, one frame per schedule in schedule order.
	KSimVec byte = 2
	// KSimDone (empty payload) terminates a KSimJob response sequence.
	KSimDone byte = 3
	// KErr carries an ErrMsg (JSON) in place of any normal response.
	KErr byte = 4
	// KIslandInit carries an IslandInit (JSON): build the engine and host
	// the listed islands. Response: KIslandState.
	KIslandInit byte = 5
	// KIslandState carries an IslandStates (JSON): the hosted islands'
	// bests in island order. Sent in response to init, epoch and migrate.
	KIslandState byte = 6
	// KEpoch carries an EpochReq (JSON): advance every hosted island.
	// Response: KIslandState.
	KEpoch byte = 7
	// KMigrate carries a MigrateReq (JSON): replace each target island's
	// worst individual with the routed migrant. Response: KIslandState
	// with the post-migration bests.
	KMigrate byte = 8
	// KIslandFinish (empty payload) drops the hosted islands and engine.
	// Response: KOK.
	KIslandFinish byte = 9
	// KOK (empty payload) acknowledges a control message.
	KOK byte = 10
	// KShutdown (empty payload) asks the worker to exit cleanly. No
	// response; the worker closes its end.
	KShutdown byte = 11
	// KHeartbeat (empty payload) is a worker-side liveness pulse emitted
	// while a long computation holds the response stream open. The
	// coordinator's receive path consumes and discards it, resetting the
	// per-frame deadline; it is never a response by itself.
	KHeartbeat byte = 12
	// KCheckpoint carries a CheckpointReq (JSON): serialize every hosted
	// island's full state. Response: KCheckpointState.
	KCheckpoint byte = 13
	// KCheckpointState carries an IslandCheckpoints (JSON).
	KCheckpointState byte = 14
	// KAck carries an Ack (JSON) echoing a SimJob's sequence number before
	// the response vectors, so a response stream can never be attributed to
	// the wrong job (a duplicated or replayed frame shows up as a sequence
	// mismatch instead of silently corrupting the gather).
	KAck byte = 15
	// KSimSetup carries a SimSetup (JSON): bind the workload and schedules
	// once per connection, so the pipelined KSimRange requests that follow
	// stay tiny (a seed window instead of a full problem document). No
	// direct response — a failed setup surfaces as KErr when the first
	// range references it.
	KSimSetup byte = 16
	// KSimRange carries a SimRange (JSON): realize one seed window against
	// the connection's current setup. Response: KAck, one KSimVec per
	// schedule, KSimDone — the same stream shape as KSimJob.
	KSimRange byte = 17
)

// SimJob asks a worker to realize one contiguous window of a Monte-Carlo
// evaluation. The seed window plus the global base index are the entire
// stream-derivation state: sim.RealizeSeeded(…, Seeds, Base) in the worker
// produces exactly the makespans the coordinator's full-range run would
// produce at [Base, Base+len(Seeds)).
type SimJob struct {
	// Workload is the problem instance (workers are stateless between
	// jobs, so every job is self-contained).
	Workload wio.WorkloadJSON `json:"workload"`
	// Schedules are evaluated under common random numbers, like
	// sim.EvaluateAll.
	Schedules []wio.ScheduleJSON `json:"schedules"`
	// Base is the window's global realization index; it carries the
	// antithetic parity across shard boundaries.
	Base int `json:"base"`
	// Seeds is the window of the coordinator's seed vector.
	Seeds []uint64 `json:"seeds"`
	// Antithetic mirrors odd global realizations (matching the seed
	// pairing of the coordinator's sim.SeedVector call).
	Antithetic bool `json:"antithetic,omitempty"`
	// BatchSize and Workers are the worker-side engine knobs; neither can
	// change a bit of the results.
	BatchSize int `json:"batch_size,omitempty"`
	Workers   int `json:"workers,omitempty"`
	// Model, Corr, LoadCOV and ParetoShape select the scenario layer's
	// duration model (sim.Options fields of the same names). All four are
	// omitted at their zero values, so the default uniform-independent wire
	// encoding is byte-identical to the pre-scenario protocol.
	Model       sim.DurationModel `json:"model,omitempty"`
	Corr        sim.Correlation   `json:"corr,omitempty"`
	LoadCOV     float64           `json:"load_cov,omitempty"`
	ParetoShape float64           `json:"pareto_shape,omitempty"`
	// Seq is echoed back in the response's KAck frame; 0 disables the
	// handshake (bare protocol tests).
	Seq uint64 `json:"seq,omitempty"`
	// HeartbeatMillis asks the worker to emit KHeartbeat frames at this
	// interval while computing; 0 disables heartbeats entirely (the
	// fault-free fast path pays nothing for the feature).
	HeartbeatMillis int `json:"heartbeat_millis,omitempty"`
}

// Ack echoes a request's sequence number ahead of its response stream.
type Ack struct {
	Seq uint64 `json:"seq"`
}

// CheckpointReq asks for a full state snapshot of every hosted island.
type CheckpointReq struct {
	Seq uint64 `json:"seq,omitempty"`
}

// ErrMsg is a worker-side failure, shipped back in place of a response.
type ErrMsg struct {
	Error string `json:"error"`
	// Code classifies machine-actionable failures. "setup" means a
	// KSimRange referenced a setup the worker does not hold — the setup
	// frame was lost in transit (or the worker is a fresh respawn) — which
	// the coordinator treats as transient: discard the connection and
	// reassign the range, rather than failing the job.
	Code string `json:"code,omitempty"`
}

// ErrCodeSetup is the ErrMsg.Code for a range whose setup is missing.
const ErrCodeSetup = "setup"

// SimSetup binds a Monte-Carlo evaluation's static state — the workload,
// the schedule set under common random numbers, and the engine knobs — to a
// worker connection, so each subsequent SimRange ships only its seed
// window. ID is coordinator-unique; a range echoing a different ID is
// answered with a KErr coded "setup" (see ErrMsg.Code).
type SimSetup struct {
	ID        uint64             `json:"id"`
	Workload  wio.WorkloadJSON   `json:"workload"`
	Schedules []wio.ScheduleJSON `json:"schedules"`
	// Antithetic, BatchSize and Workers mirror the SimJob fields: parity
	// comes from each range's global Base, knobs never change result bits.
	Antithetic bool `json:"antithetic,omitempty"`
	BatchSize  int  `json:"batch_size,omitempty"`
	Workers    int  `json:"workers,omitempty"`
	// Model, Corr, LoadCOV and ParetoShape mirror the SimJob fields; zero
	// values are omitted, keeping the default wire encoding unchanged.
	Model       sim.DurationModel `json:"model,omitempty"`
	Corr        sim.Correlation   `json:"corr,omitempty"`
	LoadCOV     float64           `json:"load_cov,omitempty"`
	ParetoShape float64           `json:"pareto_shape,omitempty"`
	// HeartbeatMillis asks the worker to pulse while computing each range.
	HeartbeatMillis int `json:"heartbeat_millis,omitempty"`
}

// SimRange asks for one contiguous window of the setup's evaluation:
// sim.RealizeSeeded(…, Seeds, Base) against the bound schedules. Seq is
// echoed in the response's KAck, ordering the pipelined response streams.
type SimRange struct {
	Setup uint64   `json:"setup"`
	Base  int      `json:"base"`
	Seeds []uint64 `json:"seeds"`
	Seq   uint64   `json:"seq,omitempty"`
}

// Genotype is a chromosome on the wire.
type Genotype struct {
	Order []int `json:"order"`
	Proc  []int `json:"proc"`
}

// SolverOptions is the JSON-safe subset of robust.Options an island worker
// needs to rebuild the engine. Everything here is deterministic
// configuration; callbacks and telemetry stay in the coordinator process.
type SolverOptions struct {
	Mode        int     `json:"mode"`
	Eps         float64 `json:"eps,omitempty"`
	SlackMetric int     `json:"slack_metric,omitempty"`

	PopSize        int     `json:"pop_size"`
	CrossoverRate  float64 `json:"crossover_rate"`
	MutationRate   float64 `json:"mutation_rate"`
	MaxGenerations int     `json:"max_generations"`
	Stagnation     int     `json:"stagnation,omitempty"`

	NoHEFTSeed     bool `json:"no_heft_seed,omitempty"`
	NoMetricsCache bool `json:"no_metrics_cache,omitempty"`
	NoDeltaDecode  bool `json:"no_delta_decode,omitempty"`
	// Workers bounds the decode fan-out inside the worker process.
	Workers int `json:"workers,omitempty"`
}

// IslandSeed assigns one island (by its global ring index) to the receiving
// worker, with the 64-bit seed of its RNG stream. The coordinator derives
// the seeds by root.SplitSeed() in island order, so rng.New(Seed) in the
// worker is bit-identical to the root.Split() fan-out of the in-process
// ga.RunIslands.
type IslandSeed struct {
	Island int    `json:"island"`
	Seed   uint64 `json:"seed"`
	// Restore, when set, resumes the island from a checkpoint instead of
	// seeding it fresh — the recovery path after a worker death. The Seed is
	// ignored in that case; the checkpoint carries the exact rng position.
	Restore *IslandCheckpoint `json:"restore,omitempty"`
}

// IslandInit asks a worker to build the solver engine for the workload and
// host the listed islands.
type IslandInit struct {
	Workload wio.WorkloadJSON `json:"workload"`
	Opt      SolverOptions    `json:"opt"`
	Islands  []IslandSeed     `json:"islands"`
	Seq      uint64           `json:"seq,omitempty"`
	// HeartbeatMillis asks the worker to emit KHeartbeat frames at this
	// interval during epoch and migration computations; 0 disables.
	HeartbeatMillis int `json:"heartbeat_millis,omitempty"`
}

// EpochReq advances every hosted island by Gens generations. StartGen is
// the number of generations already evolved (observer numbering parity with
// the in-process runner; dist runs carry no observer but the state machine
// keeps the argument).
type EpochReq struct {
	StartGen int    `json:"start_gen"`
	Gens     int    `json:"gens"`
	Seq      uint64 `json:"seq,omitempty"`
}

// Migrant routes one ring migrant to a hosted island.
type Migrant struct {
	Island   int      `json:"island"`
	Genotype Genotype `json:"genotype"`
}

// MigrateReq delivers this barrier's migrants for the worker's islands.
type MigrateReq struct {
	Migrants []Migrant `json:"migrants"`
	Seq      uint64    `json:"seq,omitempty"`
}

// IslandState reports one hosted island's running best.
type IslandState struct {
	Island int      `json:"island"`
	Best   Genotype `json:"best"`
	// BestFitness is serialized as IEEE-754 bits: the ε-constraint mode
	// can produce ±Inf fitnesses, which JSON numbers cannot carry, and
	// the coordinator's tie-breaking must see the exact value.
	BestFitnessBits uint64 `json:"best_fitness_bits"`
	SinceImprove    int    `json:"since_improve"`
}

// BestFitness decodes the exact fitness value.
func (s IslandState) BestFitness() float64 { return math.Float64frombits(s.BestFitnessBits) }

// IslandStates is a worker's response to init, epoch and migrate: its
// hosted islands in ascending island order. Seq echoes the request's
// sequence number, so a duplicated or stale response can never be folded
// into the coordinator's state as if it answered the current round.
type IslandStates struct {
	States []IslandState `json:"states"`
	Seq    uint64        `json:"seq,omitempty"`
}

// RNGState is an rng.State on the wire. The cached polar-method spare is
// carried as IEEE-754 bits so the resumed stream is bit-identical (a JSON
// number round-trip could perturb the last ulp).
type RNGState struct {
	S         [4]uint64 `json:"s"`
	SpareBits uint64    `json:"spare_bits,omitempty"`
	HasSpare  bool      `json:"has_spare,omitempty"`
}

// IslandCheckpoint is the complete resumable state of one island at an
// epoch barrier: the full population with its fitness values (as IEEE-754
// bits — ε-constraint fitnesses can be ±Inf), the running best, the
// stagnation counter and the exact rng stream position. Restoring it on any
// worker (or in-process) and replaying the barrier ops since it was taken
// reproduces the no-fault trajectory bit for bit: the GA step is a pure
// function of (population, fitness, best, sinceImprove, rng stream), and
// everything else a worker memoizes (decoded schedules, metric caches) only
// affects speed, never values.
type IslandCheckpoint struct {
	Island          int        `json:"island"`
	Pop             []Genotype `json:"pop"`
	FitBits         []uint64   `json:"fit_bits"`
	Best            Genotype   `json:"best"`
	BestFitnessBits uint64     `json:"best_fitness_bits"`
	SinceImprove    int        `json:"since_improve"`
	Rng             RNGState   `json:"rng"`
}

// IslandCheckpoints is a worker's response to KCheckpoint: every hosted
// island's checkpoint in ascending island order.
type IslandCheckpoints struct {
	Checkpoints []IslandCheckpoint `json:"checkpoints"`
	Seq         uint64             `json:"seq,omitempty"`
}

// encodeVec converts a makespan vector to a KSimVec payload: the schedule
// index as a little-endian uint64 followed by raw little-endian float64
// bytes. The index makes every vector frame self-identifying — a duplicated
// or reordered frame can never be mistaken for its stream neighbour, which
// carries the same byte width.
func encodeVec(idx int, mks []float64) []byte {
	out := make([]byte, 8+8*len(mks))
	binary.LittleEndian.PutUint64(out, uint64(idx))
	for i, m := range mks {
		binary.LittleEndian.PutUint64(out[8+8*i:], math.Float64bits(m))
	}
	return out
}

// decodeVecInto parses a KSimVec payload into dst, which must match its
// length exactly, after checking the frame identifies as schedule wantIdx.
func decodeVecInto(dst []float64, wantIdx int, payload []byte) error {
	if len(payload) != 8+8*len(dst) {
		return fmt.Errorf("dist: makespan vector is %d bytes, want %d", len(payload), 8+8*len(dst))
	}
	if idx := binary.LittleEndian.Uint64(payload); idx != uint64(wantIdx) {
		return fmt.Errorf("dist: makespan vector for schedule %d, want %d", idx, wantIdx)
	}
	payload = payload[8:]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return nil
}

// marshalJSON encodes a control message body.
func marshalJSON(v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding %T: %w", v, err)
	}
	return payload, nil
}

// sendJSON writes v as one JSON-payload frame.
func sendJSON(w io.Writer, kind byte, v any) error {
	payload, err := marshalJSON(v)
	if err != nil {
		return err
	}
	return wio.WriteFrame(w, kind, payload)
}

// parseJSON decodes a JSON control payload.
func parseJSON(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("dist: decoding %T: %w", v, err)
	}
	return nil
}
