package dist

import (
	"errors"
	"testing"
	"time"

	"robsched/internal/fault"
	"robsched/internal/obs"
	"robsched/internal/rng"
	"robsched/internal/sim"
)

// typedTransportError reports whether err is one of the declared failure
// shapes of the distribution runtime — the only errors chaos is allowed to
// surface. Anything else (or a silent mismatch) is a verdict of corruption.
func typedTransportError(err error) bool {
	var we *WorkerError
	return errors.As(err, &we) ||
		errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrPoolExhausted) ||
		errors.Is(err, ErrPoolClosed)
}

// chaosPlans is the injection matrix: every failure kind the fault wrapper
// can produce, at rates high enough that each run meets several injections.
func chaosPlans() map[string]ChaosPlan {
	return map[string]ChaosPlan{
		// Bit flips anywhere in the encoded frame. The CRC must catch every
		// one — a flip that survived into a parsed payload would be silent
		// corruption.
		"corrupt": {Seed: 101, Corrupt: 0.2},
		// Torn writes: part of a frame, then the connection dies.
		"truncate": {Seed: 102, Truncate: 0.15},
		// At-least-once delivery: frames arrive twice; sequence numbers and
		// the workers' replay cache must keep effects at-most-once.
		"duplicate": {Seed: 103, Duplicate: 0.5},
		// Outages swallow in-flight frames: a stall, only a deadline
		// unmasks it. Timescales are link-seconds; the clock advances by
		// frame bytes / Rate, so they are tuned to the test's traffic.
		"stall": {Seed: 104, Link: fault.Model{OutageEvery: 0.05, OutageMean: 0.1}},
		// Permanent link failure: the connection drops mid-conversation.
		"kill": {Seed: 105, Link: fault.Model{MTBF: 0.08}},
		// Stragglers: transfers stretch far past the frame deadline.
		"delay": {Seed: 106, Link: fault.Model{SlowEvery: 0.03, SlowMean: 0.1, SlowFactor: 100}},
		// Everything at once.
		"storm": {
			Seed: 107, Corrupt: 0.05, Truncate: 0.05, Duplicate: 0.2,
			Link: fault.Model{MTBF: 0.3, OutageEvery: 0.1, OutageMean: 0.05},
		},
		// Wide-area latency: fixed per-direction lag plus jitter. Pure
		// delay must never change results — only completion order.
		"latency": {Seed: 108, Delay: time.Millisecond, DelayJitter: 2 * time.Millisecond},
		// Latency under fire: the full storm riding a jittery slow link,
		// the closest emulation of a bad cross-machine hop.
		"latency-storm": {
			Seed: 109, Delay: 500 * time.Microsecond, DelayJitter: time.Millisecond,
			Corrupt: 0.05, Truncate: 0.05, Duplicate: 0.2,
			Link: fault.Model{MTBF: 0.3, OutageEvery: 0.1, OutageMean: 0.05},
		},
	}
}

func chaosPool(n int, pl ChaosPlan) *Pool {
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = pl.Wrap(LocalEndpoint(), i)
	}
	return NewPool(eps)
}

// TestChaosSimRanges drives the scatter/gather realization path through the
// whole injection matrix: every run must either produce bit-identical
// metrics (faults absorbed by reassignment or the inline fallback) or fail
// with a typed transport error — never hang, never silently differ.
func TestChaosSimRanges(t *testing.T) {
	w := testWorkload(t, 29, 20, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 80, Workers: 1}
	want, err := sim.EvaluateAll(ss, opt, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	var totalDeaths int64
	for name, pl := range chaosPlans() {
		t.Run(name, func(t *testing.T) {
			pool := chaosPool(2, pl)
			defer pool.Close()
			reg := obs.NewRegistry()
			pool.Obs = reg
			coord := &Coordinator{Pool: pool, Obs: reg, Timeout: 150 * time.Millisecond}
			got, err := coord.EvaluateAll(ss, opt, rng.New(12))
			totalDeaths += reg.Counter("dist.worker_deaths").Value()
			if err != nil {
				if !typedTransportError(err) {
					t.Fatalf("untyped error escaped: %v", err)
				}
				return
			}
			for j := range ss {
				if !metricsBitEqual(got[j], want[j]) {
					t.Fatalf("schedule %d: SILENT CORRUPTION — metrics differ without an error", j)
				}
			}
		})
	}
	if totalDeaths == 0 {
		t.Error("the whole injection matrix killed no worker — chaos is not biting")
	}
}

// TestChaosIslandSolve drives the island solve — init, epochs, migrations,
// checkpoints, recovery — through the injection matrix, with respawn armed
// so recovery itself runs under fire (respawned workers are wrapped too).
func TestChaosIslandSolve(t *testing.T) {
	w := testWorkload(t, 13, 20, 3, 3)
	opt := defaultIslandOpts()
	want, err := robustSolveRef(t, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	var totalDeaths int64
	for name, pl := range chaosPlans() {
		t.Run(name, func(t *testing.T) {
			pool := chaosPool(2, pl)
			defer pool.Close()
			reg := obs.NewRegistry()
			pool.Obs = reg
			defer func() { totalDeaths += reg.Counter("dist.worker_deaths").Value() }()
			next := 100
			pool.Respawn(func() (Endpoint, error) {
				next++
				return pl.Wrap(LocalEndpoint(), next), nil
			}, 3)
			coord := &Coordinator{Pool: pool, Obs: reg, Timeout: 150 * time.Millisecond}
			got, err := coord.Solve(w, opt, rng.New(31))
			if err != nil {
				if !typedTransportError(err) {
					t.Fatalf("untyped error escaped: %v", err)
				}
				return
			}
			checkSolveMatches(t, name, got, want)
		})
	}
	if totalDeaths == 0 {
		t.Error("the whole injection matrix killed no worker — chaos is not biting")
	}
}

// TestChaosInjectionsAreSeeded: the same plan over the same frame sequence
// injects identically — a failing chaos run can be replayed bit for bit.
func TestChaosInjectionsAreSeeded(t *testing.T) {
	run := func() (int, error) {
		pl := ChaosPlan{Seed: 7, Corrupt: 0.3}
		pool := NewPool([]Endpoint{pl.Wrap(LocalEndpoint(), 0)})
		defer pool.Close()
		reg := obs.NewRegistry()
		pool.Obs = reg
		coord := &Coordinator{Pool: pool, Obs: reg, Timeout: 200 * time.Millisecond}
		w := testWorkload(t, 29, 15, 3, 3)
		ss := testSchedules(t, w)
		_, err := coord.EvaluateAll(ss, sim.Options{Realizations: 24, Workers: 1}, rng.New(3))
		return int(reg.Counter("dist.worker_deaths").Value()), err
	}
	d1, err1 := run()
	d2, err2 := run()
	if d1 != d2 || (err1 == nil) != (err2 == nil) {
		t.Errorf("same seed, different injections: deaths %d vs %d, errs %v vs %v", d1, d2, err1, err2)
	}
}
