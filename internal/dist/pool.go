package dist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"

	"robsched/internal/wio"
)

// Endpoint is the coordinator's side of one worker's pipe pair. W carries
// frames to the worker, R carries its responses. Kill, when non-nil, tears
// the worker down abruptly (used by the pool's fault injection and by Close
// for workers that no longer respond); Wait, when non-nil, reaps the worker
// after its pipes close.
type Endpoint struct {
	W    io.WriteCloser
	R    io.Reader
	Kill func()
	Wait func() error
}

// Conn is one live worker connection. A Conn is checked out of the Pool by
// exactly one goroutine at a time; it is not safe for concurrent use.
type Conn struct {
	id  int
	ep  Endpoint
	bw  *bufio.Writer
	r   io.Reader
	buf []byte
}

// ID returns the worker's index in the pool (stable for telemetry labels).
func (c *Conn) ID() int { return c.id }

// send writes one JSON-payload frame and flushes it to the worker.
func (c *Conn) send(kind byte, v any) error {
	if err := sendJSON(c.bw, kind, v); err != nil {
		return err
	}
	return c.bw.Flush()
}

// sendEmpty writes one empty frame and flushes it.
func (c *Conn) sendEmpty(kind byte) error {
	if err := wio.WriteFrame(c.bw, kind, nil); err != nil {
		return err
	}
	return c.bw.Flush()
}

// recv reads the next frame. The payload aliases the connection's scratch
// buffer and is valid until the next recv. A KErr frame is decoded and
// returned as a *WorkerError; io errors (including a peer that died
// mid-frame) pass through for the caller's death handling.
func (c *Conn) recv() (byte, []byte, error) {
	kind, payload, err := wio.ReadFrame(c.r, c.buf)
	if err != nil {
		return 0, nil, err
	}
	if cap(payload) > cap(c.buf) {
		c.buf = payload[:0]
	}
	if kind == KErr {
		var em ErrMsg
		if err := parseJSON(payload, &em); err != nil {
			return 0, nil, err
		}
		return 0, nil, &WorkerError{Worker: c.id, Msg: em.Error}
	}
	return kind, payload, nil
}

// WorkerError is a job-level failure reported by a worker over a healthy
// connection — the job is invalid, not the worker. The coordinator returns
// it to the caller instead of reassigning the work.
type WorkerError struct {
	Worker int
	Msg    string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("dist: worker %d: %s", e.Worker, e.Msg)
}

// Pool hands out worker connections to coordinator goroutines. Checked-out
// connections are exclusive; concurrent coordinator calls (e.g. the
// experiment harness evaluating several graphs at once) share the pool and
// block until a worker frees up. A connection reported dead via discard
// leaves the pool permanently; when the last live worker is gone, waiting
// and future get calls fail instead of blocking forever.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	idle   []*Conn
	all    []*Conn
	live   int
	closed bool
}

// NewPool wraps caller-supplied endpoints (one per worker) into a pool.
// NewLocalPool and NewProcPool are the stock constructors; tests inject
// sabotaged endpoints through this one.
func NewPool(eps []Endpoint) *Pool {
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	for i, ep := range eps {
		c := &Conn{id: i, ep: ep, bw: bufio.NewWriterSize(ep.W, 1<<16), r: bufio.NewReaderSize(ep.R, 1<<16)}
		p.all = append(p.all, c)
		p.idle = append(p.idle, c)
	}
	p.live = len(p.all)
	return p
}

// NewLocalPool serves n protocol workers on in-memory pipes inside this
// process: the full wire codec and worker loop with no process boundary.
// It backs the property tests and the -shards path in environments where
// subprocess spawning is unavailable.
func NewLocalPool(n int) *Pool {
	eps := make([]Endpoint, n)
	for i := range eps {
		jobR, jobW := io.Pipe()
		resR, resW := io.Pipe()
		go func() {
			err := ServeWorker(jobR, resW)
			resW.CloseWithError(err)
			jobR.CloseWithError(err)
		}()
		eps[i] = Endpoint{
			W:    jobW,
			R:    resR,
			Kill: func() { jobW.CloseWithError(io.ErrClosedPipe); resR.CloseWithError(io.ErrClosedPipe) },
		}
	}
	return NewPool(eps)
}

// NewProcPool spawns n worker subprocesses running bin args... (typically
// the running executable with the `worker` subcommand) and connects to
// their stdin/stdout. Worker stderr passes through to this process's
// stderr, so a crashing worker stays visible.
func NewProcPool(n int, bin string, args ...string) (*Pool, error) {
	eps := make([]Endpoint, 0, n)
	fail := func(err error) (*Pool, error) {
		for _, ep := range eps {
			ep.Kill()
			if ep.Wait != nil {
				_ = ep.Wait()
			}
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fail(fmt.Errorf("dist: worker %d stdin: %w", i, err))
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail(fmt.Errorf("dist: worker %d stdout: %w", i, err))
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("dist: spawning worker %d: %w", i, err))
		}
		eps = append(eps, Endpoint{
			W:    stdin,
			R:    stdout,
			Kill: func() { _ = cmd.Process.Kill() },
			Wait: cmd.Wait,
		})
	}
	return NewPool(eps), nil
}

// Size returns the pool's initial worker count (the scatter width), not the
// current live count.
func (p *Pool) Size() int { return len(p.all) }

// Live returns the number of workers not yet reported dead.
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// get checks out an idle worker, blocking while all live workers are busy.
// It fails once the pool is closed or every worker has died.
func (p *Pool) get() (*Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, fmt.Errorf("dist: pool is closed")
		}
		// FIFO checkout spreads jobs across workers instead of re-hammering
		// the most recently returned one.
		if len(p.idle) > 0 {
			c := p.idle[0]
			p.idle = append(p.idle[:0], p.idle[1:]...)
			return c, nil
		}
		if p.live == 0 {
			return nil, fmt.Errorf("dist: no live workers")
		}
		p.cond.Wait()
	}
}

// put returns a healthy worker to the pool.
func (p *Pool) put(c *Conn) {
	p.mu.Lock()
	p.idle = append(p.idle, c)
	p.mu.Unlock()
	p.cond.Signal()
}

// discard removes a dead or misbehaving worker permanently, closing its
// endpoint and waking waiters so they can fail over or error out.
func (p *Pool) discard(c *Conn) {
	if c.ep.Kill != nil {
		c.ep.Kill()
	}
	_ = c.ep.W.Close()
	if c.ep.Wait != nil {
		_ = c.ep.Wait()
	}
	p.mu.Lock()
	p.live--
	p.mu.Unlock()
	p.cond.Broadcast()
}

// KillWorker abruptly severs worker i's connection without any protocol
// shutdown — the fault-injection hook behind the worker-death tests (and
// usable against live runs: the next coordinator call on that worker fails
// and triggers reassignment). The worker is not removed from the pool here;
// the coordinator discards it when a call fails.
func (p *Pool) KillWorker(i int) {
	if i < 0 || i >= len(p.all) {
		return
	}
	c := p.all[i]
	if c.ep.Kill != nil {
		c.ep.Kill()
	}
}

// Close shuts the pool down: every idle worker gets a KShutdown and its
// pipes closed; workers still checked out are torn down abruptly. Safe to
// call once all coordinator calls have returned.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := make(map[*Conn]bool, len(p.idle))
	for _, c := range p.idle {
		idle[c] = true
	}
	p.idle = nil
	p.mu.Unlock()
	p.cond.Broadcast()
	for _, c := range p.all {
		if idle[c] {
			_ = c.sendEmpty(KShutdown)
			_ = c.ep.W.Close()
		} else if c.ep.Kill != nil {
			c.ep.Kill()
		}
		if c.ep.Wait != nil {
			_ = c.ep.Wait()
		}
	}
	return nil
}
