package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"robsched/internal/obs"
	"robsched/internal/wio"
)

// Typed failure sentinels. Every transport-level error the coordinator sees
// is a *WorkerError wrapping one of these (or the underlying I/O error), so
// callers discriminate with errors.Is/As instead of string matching.
var (
	// ErrDeadline marks a liveness deadline expiry: the worker produced no
	// frame (not even a heartbeat) within the per-frame window, or the whole
	// exchange overran its job budget. The connection is killed to unblock
	// the pending pipe operation, so the worker is gone either way.
	ErrDeadline = errors.New("dist: liveness deadline exceeded")
	// ErrPoolExhausted is returned by checkouts once every worker has died
	// and the respawn budget (if any) is spent — the caller should degrade
	// to in-process computation rather than wait forever.
	ErrPoolExhausted = errors.New("dist: worker pool exhausted")
	// ErrPoolClosed is returned by checkouts after Close.
	ErrPoolClosed = errors.New("dist: pool is closed")
)

// Endpoint is the coordinator's side of one worker's transport. W carries
// frames to the worker, R carries its responses — a pipe pair for local
// workers, the two halves of one net.Conn for TCP workers. Kill, when
// non-nil, tears the worker down abruptly (used by the pool's fault
// injection, deadline enforcement and by Close for workers that no longer
// respond); Wait, when non-nil, reaps the worker after its transport
// closes. RTT, when positive, is the transport's measured (or injected)
// round-trip hint; the coordinator's flow control sizes its per-worker
// pipeline window from it.
type Endpoint struct {
	W    io.WriteCloser
	R    io.Reader
	Kill func()
	Wait func() error
	RTT  time.Duration
}

// readDeadliner and writeDeadliner match transport ends that enforce
// deadlines natively per direction (*os.File over OS pipes, net.Conn over
// TCP). When an end supports its direction, withDeadline arms the kernel
// poller instead of spawning a watchdog goroutine per operation — the
// hardened fault-free path then costs one timer update per frame instead
// of a goroutine, a channel and two scheduler handoffs. The directions are
// armed independently, so a sender goroutine and a receiver goroutine can
// run deadlines on one connection concurrently.
type readDeadliner interface {
	SetReadDeadline(t time.Time) error
}
type writeDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// connSide is the liveness state of one direction of a connection. timeout
// bounds the wall-clock of each frame operation; jobDeadline bounds the
// whole in-flight exchange (heartbeats re-arm the former, never the
// latter, so a worker stuck in a loop that still pulses is eventually
// declared dead). Both zero by default: the fault-free path takes the
// direct call with no goroutine or timer. set is the native per-direction
// deadline hook, nil when the transport lacks one (in-memory pipes) or a
// call ever failed.
type connSide struct {
	timeout     time.Duration
	jobDeadline time.Time
	set         func(time.Time) error
}

func (s *connSide) arm(frame, budget time.Duration) {
	s.timeout = frame
	if budget > 0 {
		s.jobDeadline = time.Now().Add(budget)
	} else {
		s.jobDeadline = time.Time{}
	}
}

// Conn is one live worker connection. A Conn is checked out of the Pool by
// exactly one goroutine at a time. Within that checkout, at most one
// goroutine may write (send/sendNoFlush/flush, guarded by ws) while one
// other reads (recv, guarded by rs) — the split the pipelined dispatcher
// relies on; no further concurrency is supported.
type Conn struct {
	id  int
	ep  Endpoint
	bw  *bufio.Writer
	fr  *wio.FrameReader
	rtt time.Duration

	// rs/ws are the read-side and write-side liveness states.
	rs, ws connSide

	p    *Pool // owning pool (telemetry + accounting)
	dead bool  // set under p.mu by discard; a dead conn is never re-idled
}

// ID returns the worker's index in the pool (stable for telemetry labels).
func (c *Conn) ID() int { return c.id }

// arm configures liveness for the next exchange on both directions: frame
// is the per-frame deadline, budget the whole-exchange bound (either 0
// disables that check).
func (c *Conn) arm(frame, budget time.Duration) {
	c.rs.arm(frame, budget)
	c.ws.arm(frame, budget)
}

// armRead and armWrite configure one direction's liveness independently —
// the pipelined dispatcher budgets its sender and receiver separately.
func (c *Conn) armRead(frame, budget time.Duration)  { c.rs.arm(frame, budget) }
func (c *Conn) armWrite(frame, budget time.Duration) { c.ws.arm(frame, budget) }

// withDeadline runs one transport operation under side s's liveness
// bounds. Transports that enforce deadlines natively (subprocess workers:
// OS pipes are pollable; TCP sockets) take the cheap path — arm the kernel
// poller for that direction, run, disarm. In-memory pipes carry no
// SetDeadline, so expiry is enforced the only way that cannot leak: kill
// the endpoint (closing its pipes), which unblocks the pending read or
// write, then reap the operation goroutine. Either way an expired
// operation leaves the worker dead, never half-trusted.
func (c *Conn) withDeadline(s *connSide, op func() error) error {
	wait := s.timeout
	if !s.jobDeadline.IsZero() {
		rem := time.Until(s.jobDeadline)
		if rem <= 0 {
			if c.ep.Kill != nil {
				c.ep.Kill()
			}
			return ErrDeadline
		}
		if wait <= 0 || rem < wait {
			wait = rem
		}
	}
	if wait <= 0 {
		return op()
	}
	if s.set != nil {
		if s.set(time.Now().Add(wait)) == nil {
			err := op()
			_ = s.set(time.Time{})
			if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
				if c.ep.Kill != nil {
					c.ep.Kill()
				}
				return ErrDeadline
			}
			return err
		}
		// Native deadlines refused (non-pollable fd): fall back for good.
		s.set = nil
	}
	done := make(chan error, 1)
	go func() { done <- op() }()
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		if c.ep.Kill != nil {
			c.ep.Kill()
		}
		<-done // the kill unblocked the pipe op; reap it
		return ErrDeadline
	}
}

// werr attributes a transport failure to this worker, preserving the cause
// for errors.Is/As. An error that is already a *WorkerError (the KErr path)
// passes through untouched.
func (c *Conn) werr(frame byte, err error) error {
	if err == nil {
		return nil
	}
	var we *WorkerError
	if errors.As(err, &we) {
		return err
	}
	return &WorkerError{Worker: c.id, Frame: frame, Err: err}
}

// send writes one JSON-payload frame and flushes it to the worker.
func (c *Conn) send(kind byte, v any) error {
	return c.werr(kind, c.withDeadline(&c.ws, func() error {
		if err := sendJSON(c.bw, kind, v); err != nil {
			return err
		}
		return c.bw.Flush()
	}))
}

// sendNoFlush queues one JSON-payload frame into the write buffer without
// flushing — the write-coalescing path: a dispatch round batches several
// control frames and ends with one flush, one syscall, one packet.
func (c *Conn) sendNoFlush(kind byte, v any) error {
	return c.werr(kind, c.withDeadline(&c.ws, func() error {
		return sendJSON(c.bw, kind, v)
	}))
}

// flush pushes the queued frames to the transport.
func (c *Conn) flush() error {
	return c.werr(0, c.withDeadline(&c.ws, func() error {
		return c.bw.Flush()
	}))
}

// sendEmpty writes one empty frame and flushes it.
func (c *Conn) sendEmpty(kind byte) error {
	return c.werr(kind, c.withDeadline(&c.ws, func() error {
		if err := wio.WriteFrame(c.bw, kind, nil); err != nil {
			return err
		}
		return c.bw.Flush()
	}))
}

// recv reads the next non-heartbeat frame. The payload aliases the
// connection's frame reader buffer and is valid until the next recv.
// KHeartbeat frames are consumed silently, each one re-arming the
// per-frame deadline — a computing worker that pulses stays alive; a stuck
// one times out. A KErr frame is decoded into a *WorkerError with Remote
// set (the job failed, the worker is healthy) — except one coded "setup",
// which means a pipelined range outran its lost setup frame: that is a
// transport casualty (Remote false), so the dispatcher reassigns the range
// instead of failing the job. Transport failures come back as *WorkerError
// wrapping the I/O cause.
func (c *Conn) recv() (byte, []byte, error) {
	for {
		var kind byte
		var payload []byte
		err := c.withDeadline(&c.rs, func() error {
			var e error
			kind, payload, e = c.fr.Read()
			return e
		})
		if err != nil {
			return 0, nil, c.werr(kind, err)
		}
		if kind == KHeartbeat {
			if c.p != nil {
				c.p.Obs.Counter("dist.heartbeats").Inc()
			}
			continue
		}
		if kind == KErr {
			var em ErrMsg
			if err := parseJSON(payload, &em); err != nil {
				return 0, nil, c.werr(KErr, err)
			}
			return 0, nil, &WorkerError{Worker: c.id, Frame: KErr, Remote: em.Code != ErrCodeSetup, Err: errors.New(em.Error)}
		}
		return kind, payload, nil
	}
}

// WorkerError attributes a failure to one worker. Remote distinguishes the
// two classes the coordinator must treat differently: a remote error arrived
// as a KErr frame over a healthy connection (the job is invalid, the worker
// is fine — surface it to the caller), while a local one is a transport or
// protocol failure (the worker is unusable — discard it and reassign the
// work). Unwrap exposes the cause, so errors.Is(err, io.ErrUnexpectedEOF),
// errors.Is(err, ErrDeadline) and friends work across every dispatch path.
type WorkerError struct {
	Worker int   // pool index of the worker
	Frame  byte  // frame kind in flight when the failure happened (0 if unknown)
	Remote bool  // reported by the worker itself over a healthy connection
	Err    error // underlying cause
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("dist: worker %d (frame %d): %v", e.Worker, e.Frame, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// Pool hands out worker connections to coordinator goroutines. Checked-out
// connections are exclusive; concurrent coordinator calls (e.g. the
// experiment harness evaluating several graphs at once) share the pool and
// block until a worker frees up. A connection reported dead via discard
// leaves the pool permanently; when the last live worker is gone, waiting
// and future get calls fail with ErrPoolExhausted instead of blocking
// forever — unless Respawn is armed, in which case the pool launches
// replacement workers under a capped exponential backoff first.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	idle   []*Conn
	all    []*Conn
	live   int
	closed bool

	// Obs, when set, receives pool-level counters (dist.respawns,
	// dist.respawn_failures, dist.heartbeats). Nil is a no-op.
	Obs *obs.Registry

	spawn       func() (Endpoint, error)
	spawnLeft   int
	respawning  bool
	nextBackoff time.Duration
}

const (
	respawnBackoffBase = 50 * time.Millisecond
	respawnBackoffCap  = 2 * time.Second
	// closeGrace bounds the polite KShutdown handshake during Close; a
	// worker that stopped reading its pipe is killed instead of hanging
	// the shutdown forever.
	closeGrace = time.Second
)

// NewPool wraps caller-supplied endpoints (one per worker) into a pool.
// NewLocalPool and NewProcPool are the stock constructors; tests inject
// sabotaged endpoints through this one.
func NewPool(eps []Endpoint) *Pool {
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	for _, ep := range eps {
		p.addConnLocked(ep)
	}
	return p
}

// addConnLocked wraps an endpoint into a new live idle connection. The
// caller must hold mu (or be the constructor, before the pool is shared).
func (p *Pool) addConnLocked(ep Endpoint) *Conn {
	c := &Conn{
		id:  len(p.all),
		ep:  ep,
		bw:  bufio.NewWriterSize(ep.W, 1<<16),
		fr:  wio.NewFrameReader(bufio.NewReaderSize(ep.R, 1<<16)),
		rtt: ep.RTT,
		p:   p,
	}
	if wd, ok := ep.W.(writeDeadliner); ok {
		c.ws.set = wd.SetWriteDeadline
	}
	if rd, ok := ep.R.(readDeadliner); ok {
		c.rs.set = rd.SetReadDeadline
	}
	p.all = append(p.all, c)
	p.idle = append(p.idle, c)
	p.live++
	return c
}

// Respawn arms worker replacement: when no worker is available, checkouts
// launch up to budget replacements via spawn, sleeping with exponential
// backoff (50ms doubling, capped at 2s) between attempts. Off by default —
// fault-injection tests rely on dead-is-dead accounting. Call before the
// pool is shared across goroutines.
func (p *Pool) Respawn(spawn func() (Endpoint, error), budget int) {
	p.spawn = spawn
	p.spawnLeft = budget
}

// LocalEndpoint serves one protocol worker on in-memory pipes inside this
// process: the full wire codec and worker loop with no process boundary.
func LocalEndpoint() Endpoint {
	jobR, jobW := io.Pipe()
	resR, resW := io.Pipe()
	go func() {
		err := ServeWorker(jobR, resW)
		resW.CloseWithError(err)
		jobR.CloseWithError(err)
	}()
	return Endpoint{
		W:    jobW,
		R:    resR,
		Kill: func() { jobW.CloseWithError(io.ErrClosedPipe); resR.CloseWithError(io.ErrClosedPipe) },
	}
}

// NewLocalPool serves n protocol workers on in-memory pipes. It backs the
// property tests and the -shards path in environments where subprocess
// spawning is unavailable.
func NewLocalPool(n int) *Pool {
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = LocalEndpoint()
	}
	return NewPool(eps)
}

// ProcEndpoint returns a spawner for worker subprocesses running bin args...
// (typically the running executable with the `worker` subcommand), suitable
// both for building a pool and as a Respawn hook. Worker stderr passes
// through to this process's stderr, so a crashing worker stays visible.
func ProcEndpoint(bin string, args ...string) func() (Endpoint, error) {
	return func() (Endpoint, error) {
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return Endpoint{}, fmt.Errorf("dist: worker stdin: %w", err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return Endpoint{}, fmt.Errorf("dist: worker stdout: %w", err)
		}
		if err := cmd.Start(); err != nil {
			return Endpoint{}, fmt.Errorf("dist: spawning worker: %w", err)
		}
		return Endpoint{
			W:    stdin,
			R:    stdout,
			Kill: func() { _ = cmd.Process.Kill() },
			Wait: cmd.Wait,
		}, nil
	}
}

// NewSpawnPool builds a pool of n workers from a spawner, tearing down the
// partial pool when any spawn fails. The same spawner can then be handed to
// Respawn so replacements come up identically to the originals.
func NewSpawnPool(n int, spawn func() (Endpoint, error)) (*Pool, error) {
	eps := make([]Endpoint, 0, n)
	for i := 0; i < n; i++ {
		ep, err := spawn()
		if err != nil {
			for _, prev := range eps {
				if prev.Kill != nil {
					prev.Kill()
				}
				if prev.Wait != nil {
					_ = prev.Wait()
				}
			}
			return nil, fmt.Errorf("dist: worker %d: %w", i, err)
		}
		eps = append(eps, ep)
	}
	return NewPool(eps), nil
}

// NewProcPool spawns n worker subprocesses and connects to their
// stdin/stdout.
func NewProcPool(n int, bin string, args ...string) (*Pool, error) {
	return NewSpawnPool(n, ProcEndpoint(bin, args...))
}

// Size returns the pool's current worker count including respawned and dead
// workers (the scatter width), not the live count.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.all)
}

// Live returns the number of workers not yet reported dead.
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// get checks out an idle worker, blocking while all live workers are busy.
// It fails with ErrPoolClosed once the pool is closed, and with
// ErrPoolExhausted once every worker has died and respawn (if armed) is out
// of budget — never blocking forever on a pool that cannot recover.
func (p *Pool) get() (*Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, ErrPoolClosed
		}
		// FIFO checkout spreads jobs across workers instead of re-hammering
		// the most recently returned one.
		if len(p.idle) > 0 {
			c := p.idle[0]
			p.idle = append(p.idle[:0], p.idle[1:]...)
			return c, nil
		}
		if p.live == 0 {
			if !p.respawnLocked() {
				return nil, fmt.Errorf("%w: every worker is dead", ErrPoolExhausted)
			}
			continue
		}
		p.cond.Wait()
	}
}

// tryGet checks a worker out without waiting for busy workers to free up:
// an idle worker is returned immediately; otherwise a respawn is attempted
// (when armed), and failing that the call errors with ErrPoolExhausted.
// Recovery paths that already hold other connections use this — blocking in
// get would deadlock against themselves.
func (p *Pool) tryGet() (*Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, ErrPoolClosed
		}
		if len(p.idle) > 0 {
			c := p.idle[0]
			p.idle = append(p.idle[:0], p.idle[1:]...)
			return c, nil
		}
		if !p.respawnLocked() {
			return nil, fmt.Errorf("%w: no idle worker and no respawn budget", ErrPoolExhausted)
		}
	}
}

// respawnLocked attempts to bring one replacement worker up. It returns
// false when respawn is off or out of budget (the caller should fail), and
// true when pool state may have changed and the caller should re-check.
// Called with mu held; the lock is dropped across the backoff sleep and the
// spawn itself.
func (p *Pool) respawnLocked() bool {
	for p.respawning {
		// Another goroutine is mid-respawn; wait for its outcome.
		p.cond.Wait()
		if p.closed || len(p.idle) > 0 || p.live > 0 {
			return true
		}
	}
	if p.spawn == nil || p.spawnLeft <= 0 {
		return false
	}
	p.respawning = true
	p.spawnLeft--
	delay := p.nextBackoff
	if p.nextBackoff == 0 {
		p.nextBackoff = respawnBackoffBase
	} else if p.nextBackoff < respawnBackoffCap {
		p.nextBackoff *= 2
	}
	p.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	ep, err := p.spawn()
	p.mu.Lock()
	p.respawning = false
	defer p.cond.Broadcast()
	if err != nil {
		p.Obs.Counter("dist.respawn_failures").Inc()
		return true // budget may remain; the caller's loop re-decides
	}
	if p.closed {
		if ep.Kill != nil {
			ep.Kill()
		}
		if ep.Wait != nil {
			_ = ep.Wait()
		}
		return true
	}
	p.addConnLocked(ep)
	p.Obs.Counter("dist.respawns").Inc()
	return true
}

// put returns a healthy worker to the pool. A connection already discarded
// (or a pool already closed) is left alone — put after discard is a no-op,
// never a double-free of the live count.
func (p *Pool) put(c *Conn) {
	p.mu.Lock()
	if c.dead || p.closed {
		p.mu.Unlock()
		return
	}
	c.rs.arm(0, 0)
	c.ws.arm(0, 0)
	p.idle = append(p.idle, c)
	p.mu.Unlock()
	p.cond.Signal()
}

// discard removes a dead or misbehaving worker permanently, closing its
// endpoint and waking waiters so they can fail over or error out. It is
// idempotent: concurrent or repeated discards of one connection decrement
// the live count exactly once.
func (p *Pool) discard(c *Conn) {
	p.mu.Lock()
	if c.dead {
		p.mu.Unlock()
		return
	}
	c.dead = true
	p.live--
	p.mu.Unlock()
	if c.ep.Kill != nil {
		c.ep.Kill()
	}
	_ = c.ep.W.Close()
	if c.ep.Wait != nil {
		_ = c.ep.Wait()
	}
	p.cond.Broadcast()
}

// KillWorker abruptly severs worker i's connection without any protocol
// shutdown — the fault-injection hook behind the worker-death tests (and
// usable against live runs: the next coordinator call on that worker fails
// and triggers reassignment). The worker is not removed from the pool here;
// the coordinator discards it when a call fails.
func (p *Pool) KillWorker(i int) {
	p.mu.Lock()
	if i < 0 || i >= len(p.all) {
		p.mu.Unlock()
		return
	}
	c := p.all[i]
	p.mu.Unlock()
	if c.ep.Kill != nil {
		c.ep.Kill()
	}
}

// Close shuts the pool down: every idle worker gets a KShutdown and its
// pipes closed; workers still checked out are torn down abruptly. Safe to
// call once all coordinator calls have returned.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := make(map[*Conn]bool, len(p.idle))
	for _, c := range p.idle {
		idle[c] = true
	}
	p.idle = nil
	conns := make([]*Conn, len(p.all))
	copy(conns, p.all)
	dead := make(map[*Conn]bool)
	for _, c := range conns {
		if c.dead {
			dead[c] = true
		}
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	for _, c := range conns {
		switch {
		case dead[c]:
			// Already torn down by discard.
		case idle[c]:
			// Bounded politeness: a worker that no longer drains its pipe
			// would block the shutdown frame forever; the deadline kills it
			// instead (withDeadline's expiry path).
			c.arm(closeGrace, 0)
			_ = c.sendEmpty(KShutdown)
			_ = c.ep.W.Close()
			if c.ep.Wait != nil {
				_ = c.ep.Wait()
			}
		default:
			if c.ep.Kill != nil {
				c.ep.Kill()
			}
			if c.ep.Wait != nil {
				_ = c.ep.Wait()
			}
		}
	}
	return nil
}
