package dist

import (
	"fmt"
	"io"
	"math"
	"os"
	"testing"

	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/obs"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/sim"
	"robsched/internal/wio"
)

// TestMain doubles as the worker executable for the proc-pool and TCP
// tests: when the re-exec marker is set, the test binary runs the full
// production worker entry point — the protocol on stdin/stdout, or a TCP
// server when the listen marker names an address — signal handling and
// graceful drain included, the same shape as `robsched worker`.
func TestMain(m *testing.M) {
	if os.Getenv("ROBSCHED_DIST_TEST_WORKER") == "1" {
		if err := RunWorker(os.Getenv("ROBSCHED_DIST_TEST_LISTEN")); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func testWorkload(t testing.TB, seed uint64, n, m int, meanUL float64) *platform.Workload {
	t.Helper()
	r := rng.New(seed)
	p := gen.PaperParams()
	p.N, p.M, p.MeanUL = n, m, meanUL
	w, err := gen.Random(p, r)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// testSchedules returns a few distinct schedules of the same workload (HEFT
// plus simple topological-order assignments).
func testSchedules(t testing.TB, w *platform.Workload) []*schedule.Schedule {
	t.Helper()
	hs, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	order := w.G.TopologicalOrder()
	zero, err := schedule.FromOrder(w, order, make([]int, w.N()))
	if err != nil {
		t.Fatal(err)
	}
	proc := make([]int, w.N())
	for i := range proc {
		proc[i] = i % w.M()
	}
	rr, err := schedule.FromOrder(w, order, proc)
	if err != nil {
		t.Fatal(err)
	}
	return []*schedule.Schedule{hs, zero, rr}
}

// metricsBitEqual compares every float field bit-for-bit (NaN-safe, unlike
// ==) and the integer fields directly.
func metricsBitEqual(a, b sim.Metrics) bool {
	fb := func(x float64) uint64 { return math.Float64bits(x) }
	return a.Realizations == b.Realizations &&
		fb(a.M0) == fb(b.M0) &&
		fb(a.MeanMakespan) == fb(b.MeanMakespan) &&
		fb(a.StdMakespan) == fb(b.StdMakespan) &&
		fb(a.MinMakespan) == fb(b.MinMakespan) &&
		fb(a.MaxMakespan) == fb(b.MaxMakespan) &&
		fb(a.MeanTardiness) == fb(b.MeanTardiness) &&
		fb(a.MissRate) == fb(b.MissRate) &&
		fb(a.R1) == fb(b.R1) &&
		fb(a.R2) == fb(b.R2) &&
		fb(a.P50) == fb(b.P50) &&
		fb(a.P95) == fb(b.P95) &&
		fb(a.P99) == fb(b.P99) &&
		fb(a.DeadlineMissRate) == fb(b.DeadlineMissRate)
}

// TestShardedEvaluateAllBitIdentical is the headline acceptance property:
// for every shard count the sharded metrics — exact quantiles included —
// equal the single-process sim.EvaluateAll bit for bit, and the root stream
// advances identically (so anything drawn after the call agrees too).
func TestShardedEvaluateAllBitIdentical(t *testing.T) {
	w := testWorkload(t, 3, 40, 4, 4)
	ss := testSchedules(t, w)
	for _, antithetic := range []bool{false, true} {
		opt := sim.Options{Realizations: 257, Antithetic: antithetic, Workers: 1}
		wantRoot := rng.New(11)
		want, err := sim.EvaluateAll(ss, opt, wantRoot)
		if err != nil {
			t.Fatal(err)
		}
		wantNext := wantRoot.Uint64()
		for _, shards := range []int{1, 2, 3, 4, 8} {
			pool := NewLocalPool(shards)
			coord := &Coordinator{Pool: pool}
			root := rng.New(11)
			got, err := coord.EvaluateAll(ss, opt, root)
			if err != nil {
				t.Fatalf("antithetic=%v shards=%d: %v", antithetic, shards, err)
			}
			if gotNext := root.Uint64(); gotNext != wantNext {
				t.Errorf("antithetic=%v shards=%d: root stream diverged after the call", antithetic, shards)
			}
			for j := range ss {
				if !metricsBitEqual(got[j], want[j]) {
					t.Errorf("antithetic=%v shards=%d schedule %d: metrics differ:\n got %+v\nwant %+v",
						antithetic, shards, j, got[j], want[j])
				}
			}
			if err := pool.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestShardedRealizeAllVectors pins the raw makespan vectors (the gathered
// windows in range order) against the single-process run, with an uneven
// realization count so every shard width differs.
func TestShardedRealizeAllVectors(t *testing.T) {
	w := testWorkload(t, 5, 30, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 101, Workers: 1}
	want, err := sim.RealizeAll(ss, opt, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 8} {
		pool := NewLocalPool(shards)
		coord := &Coordinator{Pool: pool}
		got, err := coord.RealizeAll(ss, opt, rng.New(21))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for j := range ss {
			for i := range want[j] {
				if math.Float64bits(got[j][i]) != math.Float64bits(want[j][i]) {
					t.Fatalf("shards=%d schedule %d realization %d: %v != %v",
						shards, j, i, got[j][i], want[j][i])
				}
			}
		}
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// sabotagedEndpoint builds a worker that accepts jobs frames and then dies
// without responding — severing its response pipe mid-job, the way a killed
// process looks from the coordinator's side.
func sabotagedEndpoint() Endpoint {
	jobR, jobW := io.Pipe()
	resR, resW := io.Pipe()
	go func() {
		// Read one frame (the job), then die silently.
		_, _, _ = wio.ReadFrame(jobR, nil)
		resW.CloseWithError(io.ErrClosedPipe)
		jobR.CloseWithError(io.ErrClosedPipe)
	}()
	return Endpoint{
		W:    jobW,
		R:    resR,
		Kill: func() { jobW.CloseWithError(io.ErrClosedPipe); resR.CloseWithError(io.ErrClosedPipe) },
	}
}

// liveEndpoint is one in-process protocol worker (what NewLocalPool builds).
func liveEndpoint() Endpoint {
	jobR, jobW := io.Pipe()
	resR, resW := io.Pipe()
	go func() {
		err := ServeWorker(jobR, resW)
		resW.CloseWithError(err)
		jobR.CloseWithError(err)
	}()
	return Endpoint{
		W:    jobW,
		R:    resR,
		Kill: func() { jobW.CloseWithError(io.ErrClosedPipe); resR.CloseWithError(io.ErrClosedPipe) },
	}
}

// TestWorkerKillMidRange kills a worker after it receives its range; the
// coordinator must discard it, reassign the window to a live worker and
// produce bit-identical final metrics.
func TestWorkerKillMidRange(t *testing.T) {
	w := testWorkload(t, 7, 30, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 120, Workers: 1}
	want, err := sim.EvaluateAll(ss, opt, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool([]Endpoint{sabotagedEndpoint(), liveEndpoint(), liveEndpoint()})
	defer pool.Close()
	reg := obs.NewRegistry()
	coord := &Coordinator{Pool: pool, Obs: reg}
	got, err := coord.EvaluateAll(ss, opt, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for j := range ss {
		if !metricsBitEqual(got[j], want[j]) {
			t.Errorf("schedule %d: metrics differ after worker death:\n got %+v\nwant %+v", j, got[j], want[j])
		}
	}
	if n := reg.Counter("dist.worker_deaths").Value(); n != 1 {
		t.Errorf("worker_deaths = %d, want 1", n)
	}
	if n := reg.Counter("dist.inline_ranges").Value(); n != 0 {
		t.Errorf("inline_ranges = %d, want 0 (range must be reassigned, not inlined)", n)
	}
	if live := pool.Live(); live != 2 {
		t.Errorf("live workers = %d, want 2", live)
	}
}

// TestAllWorkersDeadFallsBackInline: with every worker dead the coordinator
// realizes the windows itself — same seeds, same base, same results.
func TestAllWorkersDeadFallsBackInline(t *testing.T) {
	w := testWorkload(t, 7, 20, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 60, Workers: 1}
	want, err := sim.EvaluateAll(ss, opt, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool([]Endpoint{sabotagedEndpoint(), sabotagedEndpoint()})
	defer pool.Close()
	reg := obs.NewRegistry()
	coord := &Coordinator{Pool: pool, Obs: reg}
	got, err := coord.EvaluateAll(ss, opt, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for j := range ss {
		if !metricsBitEqual(got[j], want[j]) {
			t.Errorf("schedule %d: inline fallback metrics differ", j)
		}
	}
	if n := reg.Counter("dist.inline_ranges").Value(); n == 0 {
		t.Error("expected at least one inline range")
	}
	if live := pool.Live(); live != 0 {
		t.Errorf("live workers = %d, want 0", live)
	}
}

// TestKillWorkerInjection exercises the public fault-injection hook: kill a
// pool worker up front and run a sharded evaluation over what remains.
func TestKillWorkerInjection(t *testing.T) {
	w := testWorkload(t, 9, 20, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 77, Workers: 1}
	want, err := sim.EvaluateAll(ss, opt, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	pool := NewLocalPool(4)
	defer pool.Close()
	pool.KillWorker(2)
	coord := &Coordinator{Pool: pool}
	got, err := coord.EvaluateAll(ss, opt, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for j := range ss {
		if !metricsBitEqual(got[j], want[j]) {
			t.Errorf("schedule %d: metrics differ after injected kill", j)
		}
	}
}

// schedulesEqual compares the full assignment and per-processor orders.
func schedulesEqual(a, b *schedule.Schedule) bool {
	ap, bp := a.ProcAssignment(), b.ProcAssignment()
	if len(ap) != len(bp) {
		return false
	}
	for i := range ap {
		if ap[i] != bp[i] {
			return false
		}
	}
	for p := 0; p < a.Workload().M(); p++ {
		ao, bo := a.ProcOrder(p), b.ProcOrder(p)
		if len(ao) != len(bo) {
			return false
		}
		for i := range ao {
			if ao[i] != bo[i] {
				return false
			}
		}
	}
	return math.Float64bits(a.Makespan()) == math.Float64bits(b.Makespan())
}

// TestIslandSolveBitIdentical drives the island-sharded solve against the
// in-process robust.Solve with the same root seed: for every worker count
// the returned schedule, generation count and stagnation flag must match
// exactly — the trajectories are the same computation.
func TestIslandSolveBitIdentical(t *testing.T) {
	w := testWorkload(t, 13, 25, 3, 3)
	cases := []robust.Options{
		{
			Mode: robust.MinMakespan,
			PopSize: 10, CrossoverRate: 0.9, MutationRate: 0.1,
			MaxGenerations: 40, Stagnation: 0,
			Islands: 3, MigrationEvery: 10,
		},
		{
			Mode: robust.EpsilonConstraint, Eps: 1.5,
			PopSize: 10, CrossoverRate: 0.9, MutationRate: 0.1,
			MaxGenerations: 60, Stagnation: 12,
			Islands: 4, MigrationEvery: 8,
		},
	}
	for ci, opt := range cases {
		want, err := robust.Solve(w, opt, rng.New(31))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3} {
			pool := NewLocalPool(workers)
			coord := &Coordinator{Pool: pool}
			got, err := coord.Solve(w, opt, rng.New(31))
			if err != nil {
				t.Fatalf("case %d workers=%d: %v", ci, workers, err)
			}
			if got.Generations != want.Generations || got.Stagnated != want.Stagnated {
				t.Errorf("case %d workers=%d: run shape (%d, %v), want (%d, %v)",
					ci, workers, got.Generations, got.Stagnated, want.Generations, want.Stagnated)
			}
			if math.Float64bits(got.MHEFT) != math.Float64bits(want.MHEFT) {
				t.Errorf("case %d workers=%d: MHEFT %v != %v", ci, workers, got.MHEFT, want.MHEFT)
			}
			if !schedulesEqual(got.Schedule, want.Schedule) {
				t.Errorf("case %d workers=%d: schedules differ (makespan %v vs %v)",
					ci, workers, got.Schedule.Makespan(), want.Schedule.Makespan())
			}
			if err := pool.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestIslandSolveRejectsHooks: per-generation callbacks cannot cross the
// process boundary and must be rejected up front.
func TestIslandSolveRejectsHooks(t *testing.T) {
	w := testWorkload(t, 1, 10, 2, 2)
	pool := NewLocalPool(1)
	defer pool.Close()
	coord := &Coordinator{Pool: pool}
	opt := robust.Options{
		Mode: robust.MinMakespan, PopSize: 6, CrossoverRate: 0.9, MutationRate: 0.1,
		MaxGenerations: 5, Islands: 2,
	}
	bad := opt
	bad.OnGeneration = func(int, *schedule.Schedule) {}
	if _, err := coord.Solve(w, bad, rng.New(1)); err == nil {
		t.Error("OnGeneration accepted across processes")
	}
	single := opt
	single.Islands = 1
	if _, err := coord.Solve(w, single, rng.New(1)); err == nil {
		t.Error("Islands=1 accepted (nothing to shard)")
	}
}

// TestProcPoolRoundTrip runs real OS worker subprocesses (the test binary
// re-execs into ServeWorker) through the full scatter/gather path.
func TestProcPoolRoundTrip(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("no executable path: %v", err)
	}
	t.Setenv("ROBSCHED_DIST_TEST_WORKER", "1")
	pool, err := NewProcPool(2, exe)
	if err != nil {
		t.Fatalf("spawning workers: %v", err)
	}
	defer pool.Close()
	w := testWorkload(t, 17, 20, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 64, Workers: 1}
	want, err := sim.EvaluateAll(ss, opt, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	coord := &Coordinator{Pool: pool}
	got, err := coord.EvaluateAll(ss, opt, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for j := range ss {
		if !metricsBitEqual(got[j], want[j]) {
			t.Errorf("schedule %d: metrics differ across process boundary", j)
		}
	}
}

func TestPartition(t *testing.T) {
	cases := []struct {
		r, n int
		want []shardRange
	}{
		{10, 2, []shardRange{{0, 5}, {5, 5}}},
		{101, 8, []shardRange{{0, 13}, {13, 13}, {26, 13}, {39, 13}, {52, 13}, {65, 12}, {77, 12}, {89, 12}}},
		{3, 8, []shardRange{{0, 1}, {1, 1}, {2, 1}}},
		{1, 1, []shardRange{{0, 1}}},
	}
	for _, tc := range cases {
		got := partition(tc.r, tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("partition(%d, %d) = %v, want %v", tc.r, tc.n, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("partition(%d, %d) = %v, want %v", tc.r, tc.n, got, tc.want)
			}
		}
	}
}
