package dist

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"robsched/internal/obs"
	"robsched/internal/rng"
	"robsched/internal/sim"
)

// testWorkerServers starts n in-process TCP worker servers on loopback and
// returns their addresses. Each is torn down with the test.
func testWorkerServers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := ListenWorker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = srv.Serve() }()
		t.Cleanup(srv.Shutdown)
		addrs[i] = srv.Addr()
	}
	return addrs
}

// TestTCPEvaluateAllBitIdentical is the loopback-TCP form of the headline
// acceptance property: for every worker count the sharded metrics equal the
// single-process run bit for bit — the socket transport changes nothing.
func TestTCPEvaluateAllBitIdentical(t *testing.T) {
	w := testWorkload(t, 3, 30, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 157, Workers: 1}
	wantRoot := rng.New(11)
	want, err := sim.EvaluateAll(ss, opt, wantRoot)
	if err != nil {
		t.Fatal(err)
	}
	wantNext := wantRoot.Uint64()
	for _, workers := range []int{1, 2, 4} {
		addrs := testWorkerServers(t, workers)
		pool, err := NewTCPPool(addrs, 0)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		coord := &Coordinator{Pool: pool, Timeout: 5 * time.Second}
		root := rng.New(11)
		got, err := coord.EvaluateAll(ss, opt, root)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if gotNext := root.Uint64(); gotNext != wantNext {
			t.Errorf("workers=%d: root stream diverged after the call", workers)
		}
		for j := range ss {
			if !metricsBitEqual(got[j], want[j]) {
				t.Errorf("workers=%d schedule %d: metrics differ over TCP:\n got %+v\nwant %+v",
					workers, j, got[j], want[j])
			}
		}
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTCPSolveBitIdentical runs the island solve over loopback TCP for
// several worker counts: same trajectory, same schedule, bit for bit.
func TestTCPSolveBitIdentical(t *testing.T) {
	w := testWorkload(t, 13, 20, 3, 3)
	opt := defaultIslandOpts()
	want, err := robustSolveRef(t, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		addrs := testWorkerServers(t, workers)
		pool, err := NewTCPPool(addrs, 0)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		coord := &Coordinator{Pool: pool, Timeout: 5 * time.Second}
		got, err := coord.Solve(w, opt, rng.New(31))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkSolveMatches(t, fmt.Sprintf("tcp workers=%d", workers), got, want)
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTCPRedialRecovers arms the redial rung of the respawn ladder: a
// killed connection is replaced by dialing back into the (still listening)
// worker rotation, the forfeited windows are reassigned, and the results
// stay bit-identical — no inline fallback, no lost work.
func TestTCPRedialRecovers(t *testing.T) {
	w := testWorkload(t, 7, 20, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 96, Workers: 1}
	want, err := sim.EvaluateAll(ss, opt, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	// A single pool slot whose connection is killed up front: the only way
	// to finish without the inline fallback is the redial rung.
	addrs := testWorkerServers(t, 1)
	pool, err := NewTCPPool(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	reg := obs.NewRegistry()
	pool.Obs = reg
	pool.Respawn(TCPSpawner(addrs, 0), 4)
	pool.KillWorker(0)
	coord := &Coordinator{Pool: pool, Obs: reg, Timeout: 5 * time.Second}
	got, err := coord.EvaluateAll(ss, opt, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for j := range ss {
		if !metricsBitEqual(got[j], want[j]) {
			t.Errorf("schedule %d: metrics differ after redial", j)
		}
	}
	if n := reg.Counter("dist.respawns").Value(); n == 0 {
		t.Error("no redial happened")
	}
	if n := reg.Counter("dist.inline_ranges").Value(); n != 0 {
		t.Errorf("inline_ranges = %d, want 0 (redial must carry the work)", n)
	}
}

// TestTCPWorkerGracefulSignal runs the production worker entry point as a
// real OS subprocess listening on TCP, does work over it, then sends
// SIGTERM: the worker must drain and exit 0 — the graceful-redeploy
// contract remote workers rely on.
func TestTCPWorkerGracefulSignal(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("no executable path: %v", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"ROBSCHED_DIST_TEST_WORKER=1",
		"ROBSCHED_DIST_TEST_LISTEN=127.0.0.1:0",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cmd.Process.Kill() }()
	// The worker prints its resolved listen address on stdout.
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading worker banner: %v", err)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "listening on "))

	pool, err := NewTCPPool([]string{addr}, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := testWorkload(t, 17, 15, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 48, Workers: 1}
	want, err := sim.EvaluateAll(ss, opt, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	coord := &Coordinator{Pool: pool, Timeout: 5 * time.Second}
	got, err := coord.EvaluateAll(ss, opt, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for j := range ss {
		if !metricsBitEqual(got[j], want[j]) {
			t.Errorf("schedule %d: metrics differ via subprocess TCP worker", j)
		}
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("worker did not exit cleanly on SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("worker did not exit within 10s of SIGTERM")
	}
}

// TestGatherOutOfOrderProperty is the out-of-order gather property test:
// many small ranges race over several jittery-latency connections (so
// completion order is arbitrary) with frames duplicated at high rate (so
// commits repeat), across seeded trials. Every trial must reassemble the
// vectors bit-identically or fail typed — placement is by range index,
// never by arrival.
func TestGatherOutOfOrderProperty(t *testing.T) {
	w := testWorkload(t, 23, 15, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 96, Workers: 1}
	want, err := sim.RealizeAll(ss, opt, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		pl := ChaosPlan{
			Seed:        200 + uint64(trial),
			Delay:       200 * time.Microsecond,
			DelayJitter: 3 * time.Millisecond,
			Duplicate:   0.3,
		}
		pool := chaosPool(3, pl)
		reg := obs.NewRegistry()
		pool.Obs = reg
		coord := &Coordinator{Pool: pool, Obs: reg, Timeout: 2 * time.Second, RangeSize: 8}
		got, err := coord.RealizeAll(ss, opt, rng.New(9))
		if err != nil {
			if !typedTransportError(err) {
				t.Fatalf("trial %d: untyped error escaped: %v", trial, err)
			}
			_ = pool.Close()
			continue
		}
		for j := range ss {
			for i := range want[j] {
				if math.Float64bits(got[j][i]) != math.Float64bits(want[j][i]) {
					t.Fatalf("trial %d schedule %d realization %d: %v != %v",
						trial, j, i, got[j][i], want[j][i])
				}
			}
		}
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSimDispatchLedger pins the dispatcher's bookkeeping: requeued ranges
// take priority over fresh ones, commits are exactly-once even when a
// range is delivered twice, and a fatal error stops issuance.
func TestSimDispatchLedger(t *testing.T) {
	d := &simDispatch{
		ranges:    partitionWidth(100, 10),
		committed: make([]bool, 10),
	}
	if ri, ok := d.take(); !ok || ri != 0 {
		t.Fatalf("first take = (%d, %v), want (0, true)", ri, ok)
	}
	if ri, ok := d.take(); !ok || ri != 1 {
		t.Fatalf("second take = (%d, %v), want (1, true)", ri, ok)
	}
	d.giveBack(0)
	if ri, ok := d.take(); !ok || ri != 0 {
		t.Fatalf("take after giveBack = (%d, %v), want the requeued 0", ri, ok)
	}
	if !d.commit(1) {
		t.Error("first commit reported duplicate")
	}
	if d.commit(1) {
		t.Error("second commit of the same range reported fresh")
	}
	d.fatal(fmt.Errorf("boom"))
	if _, ok := d.take(); ok {
		t.Error("take issued work after a fatal error")
	}
	if d.hasWork() {
		t.Error("hasWork true after a fatal error")
	}
}

// TestPipelineLatencySmoke injects a 5ms round trip and compares strict
// request/response dispatch (depth 1) against the credit pipeline: over 12
// ranges the depth-1 run pays ~12 round trips where the pipeline pays ~1,
// so even allowing generous scheduler noise the pipeline must win clearly.
// The latency-lane benchmarks quantify the full matrix; this is the CI
// smoke that pipelining works at all, under a hard deadline.
func TestPipelineLatencySmoke(t *testing.T) {
	w := testWorkload(t, 3, 15, 3, 3)
	ss := testSchedules(t, w)
	opt := sim.Options{Realizations: 96, Workers: 1}
	lane := func(depth int) time.Duration {
		pl := ChaosPlan{Seed: 42, Delay: 2500 * time.Microsecond} // 5ms RTT
		pool := NewPool([]Endpoint{pl.Wrap(LocalEndpoint(), 0)})
		defer pool.Close()
		coord := &Coordinator{
			Pool:          pool,
			Timeout:       10 * time.Second,
			PipelineDepth: depth,
			RangeSize:     8, // 12 ranges
		}
		start := time.Now()
		if _, err := coord.EvaluateAll(ss, opt, rng.New(2)); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		return time.Since(start)
	}
	serial := lane(1)
	piped := lane(0) // auto: RTT-derived window covers all 12 ranges
	t.Logf("depth-1 %v, pipelined %v (%.1fx)", serial, piped, float64(serial)/float64(piped))
	if float64(serial) < 1.5*float64(piped) {
		t.Errorf("pipelining bought <1.5x at 5ms RTT: depth-1 %v vs pipelined %v", serial, piped)
	}
}

func TestPartitionWidth(t *testing.T) {
	cases := []struct {
		total, width int
		want         []shardRange
	}{
		{10, 4, []shardRange{{0, 4}, {4, 4}, {8, 2}}},
		{8, 4, []shardRange{{0, 4}, {4, 4}}},
		{3, 8, []shardRange{{0, 3}}},
		{5, 0, []shardRange{{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}}},
		{0, 4, []shardRange{}},
	}
	for _, tc := range cases {
		got := partitionWidth(tc.total, tc.width)
		if len(got) != len(tc.want) {
			t.Fatalf("partitionWidth(%d, %d) = %v, want %v", tc.total, tc.width, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("partitionWidth(%d, %d) = %v, want %v", tc.total, tc.width, got, tc.want)
			}
		}
	}
}
