package dist

import (
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// The TCP transport. The frame protocol is transport-agnostic — an Endpoint
// is any (io.WriteCloser, io.Reader) pair — so serving it over sockets is
// the same worker loop behind new plumbing: a listener that runs one
// serveWorker per accepted connection, a dialer that wraps the socket in an
// Endpoint, and a spawner that redials dead workers (the "reconnect" rung
// of the pool's respawn ladder). net.Conn implements SetReadDeadline and
// SetWriteDeadline, so the liveness machinery takes the same native-
// deadline fast path subprocess pipes do.

// tcpDialTimeout bounds a single connection attempt when the caller does
// not specify one.
const tcpDialTimeout = 5 * time.Second

// WorkerServer serves the dist worker protocol on a TCP listener: one
// serveWorker loop per accepted connection, each independent (a coordinator
// per connection). Shutdown drains gracefully — in-flight operations finish
// and flush their responses before the connections close.
type WorkerServer struct {
	ln   net.Listener
	stop chan struct{}
	wg   sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]bool
}

// ListenWorker binds a worker server to addr (host:port; port 0 picks a
// free one, see Addr).
func ListenWorker(addr string) (*WorkerServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: worker listen %s: %w", addr, err)
	}
	return &WorkerServer{ln: ln, stop: make(chan struct{}), conns: make(map[net.Conn]bool)}, nil
}

// Addr returns the bound listen address (the resolved port when the caller
// asked for :0).
func (s *WorkerServer) Addr() string { return s.ln.Addr().String() }

// Serve accepts and serves connections until Shutdown (returning nil) or a
// listener failure. Each connection runs the full worker protocol; a
// connection-level error tears down that connection only.
func (s *WorkerServer) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
				return fmt.Errorf("dist: worker accept: %w", err)
			}
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true) // latency over batching; we coalesce ourselves
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func(conn net.Conn) {
			defer s.wg.Done()
			// The drain interrupt arms an immediate read deadline: the
			// pending between-requests read unblocks while the write side
			// stays usable for the in-flight response.
			_ = serveWorker(conn, conn, s.stop, func() { _ = conn.SetReadDeadline(time.Now()) })
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			_ = conn.Close()
		}(conn)
	}
}

// Shutdown stops accepting, asks every serving connection to finish its
// in-flight operation, and waits for them to drain.
func (s *WorkerServer) Shutdown() {
	close(s.stop)
	_ = s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// DialWorker connects to a worker at addr, returning an Endpoint whose RTT
// hint is the measured connection setup time (one TCP handshake ≈ one
// round trip) — the input to the coordinator's pipeline-depth heuristic.
// timeout <= 0 uses a 5s default.
func DialWorker(addr string, timeout time.Duration) (Endpoint, error) {
	if timeout <= 0 {
		timeout = tcpDialTimeout
	}
	start := time.Now()
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return Endpoint{}, fmt.Errorf("dist: dialing worker %s: %w", addr, err)
	}
	rtt := time.Since(start)
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return Endpoint{
		W:    conn,
		R:    conn,
		Kill: func() { _ = conn.Close() },
		RTT:  rtt,
	}, nil
}

// TCPSpawner returns a spawner that connects to the given worker addresses
// round-robin — both the pool constructor and the Respawn hook for TCP
// workers. As the respawn rung it is a lazy redial: a connection that dies
// (worker crash, network partition, redeploy) is replaced by dialing the
// next address in the rotation, so a restarted remote worker reattaches
// without coordinator restarts. Dial failures burn respawn budget and back
// off exactly like failed process spawns.
func TCPSpawner(addrs []string, timeout time.Duration) func() (Endpoint, error) {
	var n atomic.Int64
	return func() (Endpoint, error) {
		if len(addrs) == 0 {
			return Endpoint{}, fmt.Errorf("dist: no worker addresses")
		}
		addr := addrs[int(n.Add(1)-1)%len(addrs)]
		return DialWorker(addr, timeout)
	}
}

// NewTCPPool connects one pool worker per address. Arm Respawn with the
// same TCPSpawner to get reconnect-on-death.
func NewTCPPool(addrs []string, timeout time.Duration) (*Pool, error) {
	return NewSpawnPool(len(addrs), TCPSpawner(addrs, timeout))
}

// RunWorker is the process entry point behind the CLIs' `worker`
// subcommand: the protocol over stdin/stdout when listen is empty, or a
// TCP server on listen. Either way SIGTERM and SIGINT drain gracefully —
// the in-flight operation finishes and flushes its response, the listener
// closes, and the process exits 0 — so remote workers redeploy without
// failing the coordinator mid-range (its seq/ack machinery reassigns
// anything unanswered).
func RunWorker(listen string) error {
	drain := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	var once sync.Once
	go func() {
		for range sigc {
			once.Do(func() { close(drain) })
		}
	}()

	if listen == "" {
		return serveWorker(os.Stdin, os.Stdout, drain, func() {
			// Pollable stdin (a pipe from the coordinator) unblocks via
			// deadline; a non-pollable one falls back to closing it.
			if os.Stdin.SetReadDeadline(time.Now()) != nil {
				_ = os.Stdin.Close()
			}
		})
	}
	srv, err := ListenWorker(listen)
	if err != nil {
		return err
	}
	// The bound address on stdout: with -listen the frame stream is on the
	// sockets, so stdout is free for scripts (and tests) to learn the port.
	fmt.Printf("listening on %s\n", srv.Addr())
	go func() {
		<-drain
		srv.Shutdown()
	}()
	return srv.Serve()
}
