// Package viz renders the library's outputs as standalone SVG documents —
// line charts for the regenerated figures and Gantt charts for schedules —
// with no dependencies beyond the standard library. The experiment CLI
// writes figN.svg next to the CSV files so results can be eyeballed
// without a plotting stack.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// ChartOptions styles a line chart. Zero values get sensible defaults.
type ChartOptions struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // default 720
	Height int // default 440
}

// palette holds distinguishable series colours (repeating if exhausted).
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f",
}

// LineChartSVG renders the series as an SVG line chart with axes, ticks
// and a legend. NaN and infinite points break the polyline rather than
// distorting the scale.
func LineChartSVG(series []Series, opt ChartOptions) string {
	w, h := opt.Width, opt.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 440
	}
	const (
		left, right, top, bottom = 70, 180, 46, 56
	)
	plotW := float64(w - left - right)
	plotH := float64(h - top - bottom)

	// Data ranges over finite points only.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if xmin > xmax { // no finite data
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range slightly so curves do not hug the frame.
	pad := (ymax - ymin) * 0.05
	ymin, ymax = ymin-pad, ymax+pad

	sx := func(x float64) float64 { return float64(left) + (x-xmin)/(xmax-xmin)*plotW }
	sy := func(y float64) float64 { return float64(top) + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`, left, esc(opt.Title))
	}
	// Frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#444"/>`,
		left, top, plotW, plotH)
	// Ticks and grid.
	for _, tx := range niceTicks(xmin, xmax, 6) {
		px := sx(tx)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`,
			px, top, px, float64(top)+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`,
			px, float64(top)+plotH+16, fmtTick(tx))
	}
	for _, ty := range niceTicks(ymin, ymax, 6) {
		py := sy(ty)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`,
			left, py, float64(left)+plotW, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`,
			left-6, py+4, fmtTick(ty))
	}
	if opt.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" text-anchor="middle">%s</text>`,
			float64(left)+plotW/2, h-14, esc(opt.XLabel))
	}
	if opt.YLabel != "" {
		fmt.Fprintf(&b, `<text x="18" y="%.1f" font-size="12" text-anchor="middle" transform="rotate(-90 18 %.1f)">%s</text>`,
			float64(top)+plotH/2, float64(top)+plotH/2, esc(opt.YLabel))
	}
	// Curves.
	for si, s := range series {
		color := palette[si%len(palette)]
		var pts []string
		flush := func() {
			if len(pts) >= 2 {
				fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
					strings.Join(pts, " "), color)
			}
			pts = pts[:0]
		}
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				flush()
				continue
			}
			px, py := sx(s.X[i]), sy(s.Y[i])
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px, py))
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.3" fill="%s"/>`, px, py, color)
		}
		flush()
		// Legend entry.
		ly := top + 14 + si*18
		lx := left + int(plotW) + 12
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			lx, ly-4, lx+18, ly-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`, lx+24, ly, esc(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceTicks returns ~count round tick positions spanning [lo, hi].
func niceTicks(lo, hi float64, count int) []float64 {
	if count < 2 {
		count = 2
	}
	span := hi - lo
	if span <= 0 || !finite(span) {
		return []float64{lo}
	}
	step := niceNum(span/float64(count-1), true)
	start := math.Ceil(lo/step) * step
	var out []float64
	for t := start; t <= hi+step*1e-9; t += step {
		// Snap tiny float noise to zero.
		if math.Abs(t) < step*1e-9 {
			t = 0
		}
		out = append(out, t)
	}
	return out
}

// niceNum rounds x to a "nice" number (1, 2, 5 × 10^k), per Heckbert's
// classic Graphics Gems axis-labelling routine.
func niceNum(x float64, round bool) float64 {
	exp := math.Floor(math.Log10(x))
	f := x / math.Pow(10, exp)
	var nf float64
	if round {
		switch {
		case f < 1.5:
			nf = 1
		case f < 3:
			nf = 2
		case f < 7:
			nf = 5
		default:
			nf = 10
		}
	} else {
		switch {
		case f <= 1:
			nf = 1
		case f <= 2:
			nf = 2
		case f <= 5:
			nf = 5
		default:
			nf = 10
		}
	}
	return nf * math.Pow(10, exp)
}

func fmtTick(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e7 {
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%.3g", x)
}
