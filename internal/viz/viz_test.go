package viz

import (
	"math"
	"strings"
	"testing"

	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/rng"
)

func TestLineChartSVGBasic(t *testing.T) {
	series := []Series{
		{Name: "alpha", X: []float64{0, 1, 2, 3}, Y: []float64{1, 4, 2, 8}},
		{Name: "beta", X: []float64{0, 1, 2, 3}, Y: []float64{3, 3, 3, 3}},
	}
	svg := LineChartSVG(series, ChartOptions{Title: "A & B", XLabel: "x", YLabel: "y"})
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "A &amp; B", "alpha", "beta",
		`text-anchor="middle">x</text>`, ">y</text>",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two polylines, one per series.
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polyline count = %d, want 2", got)
	}
	// One circle per finite point.
	if got := strings.Count(svg, "<circle"); got != 8 {
		t.Errorf("circle count = %d, want 8", got)
	}
}

func TestLineChartSVGHandlesNaNAndInf(t *testing.T) {
	series := []Series{{
		Name: "broken",
		X:    []float64{0, 1, 2, 3, 4},
		Y:    []float64{1, math.NaN(), 2, math.Inf(1), 3},
	}}
	svg := LineChartSVG(series, ChartOptions{})
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	// NaN/Inf never leak into coordinates.
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("non-finite coordinates leaked into the SVG")
	}
	// Finite points still plotted.
	if got := strings.Count(svg, "<circle"); got != 3 {
		t.Errorf("circle count = %d, want 3", got)
	}
}

func TestLineChartSVGEmpty(t *testing.T) {
	svg := LineChartSVG(nil, ChartOptions{})
	if !strings.Contains(svg, "<svg") {
		t.Fatal("empty chart not an SVG")
	}
	svg = LineChartSVG([]Series{{Name: "nodata"}}, ChartOptions{})
	if !strings.Contains(svg, "nodata") {
		t.Fatal("legend missing for empty series")
	}
}

func TestLineChartSVGConstantSeries(t *testing.T) {
	// Degenerate ranges (all x equal, all y equal) must not divide by zero.
	svg := LineChartSVG([]Series{{Name: "c", X: []float64{5, 5}, Y: []float64{2, 2}}}, ChartOptions{})
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN in degenerate chart")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 10, 6)
	if len(ticks) < 3 {
		t.Fatalf("too few ticks: %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 10+1e-9 {
		t.Fatalf("ticks out of range: %v", ticks)
	}
	// Negative ranges work too.
	neg := niceTicks(-3, 3, 5)
	found0 := false
	for _, x := range neg {
		if x == 0 {
			found0 = true
		}
	}
	if !found0 {
		t.Fatalf("no zero tick across a sign change: %v", neg)
	}
}

func TestNiceNum(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{1.3, 1}, {2.4, 2}, {6.5, 5}, {8, 10}, {0.13, 0.1}, {34, 50},
	}
	for _, c := range cases {
		if got := niceNum(c.in, true); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("niceNum(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestGanttSVG(t *testing.T) {
	p := gen.PaperParams()
	p.N, p.M = 15, 3
	w, err := gen.Random(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svg := GanttSVG(s, GanttOptions{Title: "demo", ShowSlack: true})
	for _, want := range []string{"<svg", "</svg>", "demo", ">P1</text>", ">P3</text>", "makespan"} {
		if !strings.Contains(svg, want) {
			t.Errorf("Gantt missing %q", want)
		}
	}
	// One tooltip per task.
	if got := strings.Count(svg, "<title>"); got != w.N() {
		t.Errorf("tooltip count = %d, want %d", got, w.N())
	}
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN coordinates in Gantt")
	}
}

func TestEscape(t *testing.T) {
	if got := esc(`a<b>&"c"`); got != `a&lt;b&gt;&amp;&quot;c&quot;` {
		t.Fatalf("esc = %q", got)
	}
}

func TestHistogramSVG(t *testing.T) {
	r := rng.New(9)
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = r.Norm(100, 15)
	}
	svg := HistogramSVG(samples, HistogramOptions{
		Title:   "makespan distribution",
		XLabel:  "makespan",
		Markers: map[string]float64{"M0": 95, "p95": 125},
	})
	for _, want := range []string{"<svg", "</svg>", "makespan distribution", "M0", "p95", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Errorf("histogram missing %q", want)
		}
	}
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN leaked into histogram")
	}
	// Bars drawn.
	if got := strings.Count(svg, `fill="#1f77b4"`); got < 5 {
		t.Errorf("only %d bars", got)
	}
}

func TestHistogramSVGEdgeCases(t *testing.T) {
	if svg := HistogramSVG(nil, HistogramOptions{}); !strings.Contains(svg, "no data") {
		t.Error("empty histogram not labelled")
	}
	// All-equal samples must not divide by zero.
	svg := HistogramSVG([]float64{5, 5, 5}, HistogramOptions{Bins: 4})
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN in constant histogram")
	}
	// NaN samples ignored.
	svg = HistogramSVG([]float64{math.NaN(), 1, 2}, HistogramOptions{})
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN sample leaked")
	}
}
