package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// HistogramOptions styles a histogram.
type HistogramOptions struct {
	Title  string
	XLabel string
	Width  int // default 640
	Height int // default 360
	Bins   int // default Sturges' rule
	// Markers draws labelled vertical reference lines (e.g. M0, p95).
	Markers map[string]float64
}

// HistogramSVG renders an empirical distribution (e.g. sampled makespans)
// as an SVG histogram with optional labelled markers.
func HistogramSVG(samples []float64, opt HistogramOptions) string {
	w, h := opt.Width, opt.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 360
	}
	const left, right, top, bottom = 60, 24, 44, 52
	plotW := float64(w - left - right)
	plotH := float64(h - top - bottom)

	var finiteSamples []float64
	for _, x := range samples {
		if finite(x) {
			finiteSamples = append(finiteSamples, x)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-size="14" font-weight="bold">%s</text>`, left, esc(opt.Title))
	}
	if len(finiteSamples) == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">(no data)</text>`, left, top+20)
		b.WriteString(`</svg>`)
		return b.String()
	}
	sort.Float64s(finiteSamples)
	lo, hi := finiteSamples[0], finiteSamples[len(finiteSamples)-1]
	if hi == lo {
		hi = lo + 1
	}
	bins := opt.Bins
	if bins <= 0 {
		bins = int(math.Ceil(math.Log2(float64(len(finiteSamples))))) + 1
	}
	counts := make([]int, bins)
	for _, x := range finiteSamples {
		i := int((x - lo) / (hi - lo) * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	sx := func(x float64) float64 { return float64(left) + (x-lo)/(hi-lo)*plotW }
	binW := plotW / float64(bins)
	for i, c := range counts {
		barH := float64(c) / float64(maxCount) * plotH
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#1f77b4" fill-opacity="0.7" stroke="white" stroke-width="0.5"/>`,
			float64(left)+float64(i)*binW, float64(top)+plotH-barH, binW, barH)
	}
	// Frame and x ticks.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#444"/>`, left, top, plotW, plotH)
	for _, tx := range niceTicks(lo, hi, 6) {
		px := sx(tx)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`,
			px, float64(top)+plotH+16, fmtTick(tx))
	}
	if opt.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" text-anchor="middle">%s</text>`,
			float64(left)+plotW/2, h-10, esc(opt.XLabel))
	}
	// Markers in sorted-name order for determinism.
	var names []string
	for name := range opt.Markers {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		x := opt.Markers[name]
		if !finite(x) || x < lo || x > hi {
			continue
		}
		px := sx(x)
		color := palette[(i+1)%len(palette)]
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.5" stroke-dasharray="4 3"/>`,
			px, top, px, float64(top)+plotH, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" fill="%s" text-anchor="middle">%s</text>`,
			px, top-4, color, esc(name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}
