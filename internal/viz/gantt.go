package viz

import (
	"fmt"
	"math"
	"strings"

	"robsched/internal/schedule"
)

// GanttOptions styles a Gantt chart. Zero values get defaults.
type GanttOptions struct {
	Title string
	Width int // default 860
	// RowHeight is the per-processor lane height (default 34).
	RowHeight int
	// ShowSlack shades each task's slack window after its bar.
	ShowSlack bool
}

// GanttSVG renders the schedule under expected durations as an SVG Gantt
// chart: one lane per processor, one labelled bar per task, a time axis,
// and (optionally) the slack window of every task shaded behind it.
func GanttSVG(s *schedule.Schedule, opt GanttOptions) string {
	w := s.Workload()
	width := opt.Width
	if width <= 0 {
		width = 860
	}
	rowH := opt.RowHeight
	if rowH <= 0 {
		rowH = 34
	}
	const left, right, top = 60, 24, 44
	bottom := 40
	m := w.M()
	height := top + m*rowH + bottom
	plotW := float64(width - left - right)
	makespan := s.Makespan()
	if makespan <= 0 {
		makespan = 1
	}
	sx := func(t float64) float64 { return float64(left) + t/makespan*plotW }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`,
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-size="14" font-weight="bold">%s</text>`, left, esc(opt.Title))
	}
	// Lanes.
	for p := 0; p < m; p++ {
		y := top + p*rowH
		fill := "#fafafa"
		if p%2 == 1 {
			fill = "#f0f0f0"
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%d" fill="%s"/>`,
			left, y, plotW, rowH, fill)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="end">P%d</text>`,
			left-8, y+rowH/2+4, p+1)
	}
	// Time ticks.
	for _, tx := range niceTicks(0, makespan, 8) {
		px := sx(tx)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ccc"/>`,
			px, top, px, top+m*rowH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`,
			px, top+m*rowH+16, fmtTick(tx))
	}
	// Task bars (and slack windows).
	for v := 0; v < w.N(); v++ {
		p := s.Proc(v)
		y := top + p*rowH + 4
		h := rowH - 8
		x0, x1 := sx(s.Start(v)), sx(s.Finish(v))
		if opt.ShowSlack && s.Slack(v) > 1e-9 {
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" fill-opacity="0.15"/>`,
				x1, y, sx(s.Finish(v)+s.Slack(v))-x1, h, palette[v%len(palette)])
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" rx="2" fill="%s" fill-opacity="0.85">`,
			x0, y, math.Max(x1-x0, 1), h, palette[v%len(palette)])
		fmt.Fprintf(&b, `<title>v%d: [%.2f, %.2f] slack %.2f</title></rect>`,
			v+1, s.Start(v), s.Finish(v), s.Slack(v))
		if x1-x0 > 16 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" fill="white" text-anchor="middle">%d</text>`,
				(x0+x1)/2, y+h/2+4, v+1)
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">makespan %.4g</text>`,
		left, height-8, s.Makespan())
	b.WriteString(`</svg>`)
	return b.String()
}
