package experiments

import (
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"time"

	"robsched/internal/obs"
)

// Manifest records everything needed to reproduce (and audit) one
// experiments run: the effective configuration, the root seed, the source
// revision and a final telemetry snapshot. It is written as manifest.json
// next to the CSV outputs, so every archived result set carries its own
// provenance.
type Manifest struct {
	// CreatedAt is the wall-clock timestamp of the run (RFC 3339, UTC).
	CreatedAt string `json:"created_at"`
	// GitDescribe identifies the source tree (git describe --always
	// --dirty); empty when the binary runs outside a git checkout.
	GitDescribe string `json:"git_describe,omitempty"`
	// Seed is the root seed every table derives from.
	Seed uint64 `json:"seed"`
	// Config is the flattened effective configuration — robust.Options
	// carries function-valued hooks, so the manifest keeps only the plain
	// scalar knobs that determine results.
	Config ManifestConfig `json:"config"`
	// Metrics is the final registry snapshot (nil when observability was
	// off): GA generation totals, cache traffic, Monte-Carlo realization
	// counts and fault-executor decision counters.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// ManifestConfig is the JSON-marshalable projection of Config.
type ManifestConfig struct {
	Graphs         int       `json:"graphs"`
	Realizations   int       `json:"realizations"`
	Tasks          int       `json:"tasks"`
	Processors     int       `json:"processors"`
	ULs            []float64 `json:"uls"`
	Eps            []float64 `json:"eps"`
	RGrid          []float64 `json:"r_grid,omitempty"`
	PopSize        int       `json:"pop_size"`
	CrossoverRate  float64   `json:"crossover_rate"`
	MutationRate   float64   `json:"mutation_rate"`
	MaxGenerations int       `json:"max_generations"`
	Stagnation     int       `json:"stagnation"`
	TraceEvery     int       `json:"trace_every"`
	Workers        int       `json:"workers"`
	// Scenario is the named scenario family ("montage-lognormal", ...);
	// empty for the paper's default path.
	Scenario string `json:"scenario,omitempty"`
}

// Manifest assembles the run manifest for this configuration. The registry
// may be nil; pass the one the run populated to embed its final snapshot.
func (c Config) Manifest(reg *obs.Registry) Manifest {
	ga := c.gaOptions()
	m := Manifest{
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		GitDescribe: gitDescribe(),
		Seed:        c.Seed,
		Config: ManifestConfig{
			Graphs:         c.Graphs,
			Realizations:   c.Realizations,
			Tasks:          c.Gen.N,
			Processors:     c.Gen.M,
			ULs:            c.ULs,
			Eps:            c.Eps,
			RGrid:          c.RGrid,
			PopSize:        ga.PopSize,
			CrossoverRate:  ga.CrossoverRate,
			MutationRate:   ga.MutationRate,
			MaxGenerations: ga.MaxGenerations,
			Stagnation:     ga.Stagnation,
			TraceEvery:     c.TraceEvery,
			Workers:        c.Workers,
		},
	}
	if c.Scenario != nil {
		m.Config.Scenario = c.Scenario.Name
	}
	if reg != nil {
		snap := reg.Snapshot()
		m.Metrics = &snap
	}
	return m
}

// WriteManifest writes the manifest as indented JSON to path.
func WriteManifest(path string, m Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// gitDescribe best-effort identifies the working tree's revision. Any
// failure (no git binary, not a checkout) degrades to an empty string —
// provenance is advisory, never a reason to fail a run.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
