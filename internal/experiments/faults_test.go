package experiments

import (
	"math"
	"strings"
	"testing"

	"robsched/internal/repair"
)

// tinyFaultConfig shrinks the experiment to seconds.
func tinyFaultConfig(t *testing.T) (Config, FaultConfig) {
	t.Helper()
	c := Default()
	c.Graphs = 3
	c.Realizations = 60
	c.Gen.N = 25
	c.GA.PopSize = 8
	c.GA.MaxGenerations = 20
	fc := DefaultFaultConfig()
	fc.Policy.DropFactor = 4 // keep total-death realizations from failing
	return c, fc
}

func TestFaultResilience(t *testing.T) {
	c, fc := tinyFaultConfig(t)
	res, err := c.FaultResilience(fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("expected heft/anneal/ga rows, got %d", len(res.Rows))
	}
	if res.Points != 3*c.Graphs {
		t.Fatalf("points %d != %d", res.Points, 3*c.Graphs)
	}
	for _, row := range res.Rows {
		if row.NoFaultMean <= 0 || row.FaultMean <= 0 {
			t.Fatalf("%s: non-positive means: %+v", row.Scheduler, row)
		}
		// Injecting faults on top of the same noise can only inflate the
		// expected makespan.
		if row.Inflation < 1 {
			t.Fatalf("%s: fault inflation %g < 1", row.Scheduler, row.Inflation)
		}
		if row.Completion <= 0 || row.Completion > 1 {
			t.Fatalf("%s: completion %g", row.Scheduler, row.Completion)
		}
	}
	if math.IsNaN(res.SlackCorr) || res.SlackCorr < -1 || res.SlackCorr > 1 {
		t.Fatalf("slack correlation %g out of range", res.SlackCorr)
	}
	out := res.String()
	for _, want := range []string{"heft", "anneal", "ga", "Pearson"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}

	// Deterministic: same config, same table.
	again, err := c.FaultResilience(fc)
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Fatal("fault resilience experiment not reproducible")
	}
}

func TestFaultResilienceValidation(t *testing.T) {
	c, fc := tinyFaultConfig(t)
	bad := fc
	bad.MTBFFactor = 0
	if _, err := c.FaultResilience(bad); err == nil {
		t.Error("MTBFFactor=0 accepted")
	}
	bad = fc
	bad.Policy = repair.FaultPolicy{Policy: repair.Policy{Threshold: -1}}
	if _, err := c.FaultResilience(bad); err == nil {
		t.Error("invalid policy accepted")
	}
	cbad := c
	cbad.Graphs = 0
	if _, err := cbad.FaultResilience(fc); err == nil {
		t.Error("zero graphs accepted")
	}
}
