package experiments

import (
	"fmt"

	"robsched/internal/dynamic"
	"robsched/internal/heft"
	"robsched/internal/repair"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/sim"
	"robsched/internal/stats"
	"robsched/internal/stoch"
)

// AblationSeed measures what the HEFT seed chromosome buys the
// ε-constraint GA (Section 4.2.2 prescribes seeding): for each uncertainty
// level, the mean expected makespan (relative to HEFT) and mean slack of
// the final schedule with and without the seed, at the configured GA
// budget. Returned series (x = UL): "seeded,M0/MHEFT", "unseeded,M0/MHEFT",
// "seeded,slack", "unseeded,slack".
func (c Config) AblationSeed() ([]Series, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	base := c.gaOptions()
	base.Mode = robust.EpsilonConstraint
	if base.Eps == 0 {
		base.Eps = 1.5
	}
	kinds := []struct {
		name   string
		noSeed bool
	}{{"seeded", false}, {"unseeded", true}}
	x := append([]float64(nil), c.ULs...)
	series := make([]Series, 0, 4)
	results := make([][][2]float64, len(kinds)) // [kind][ul] -> (relM0, slack)
	for ki, kind := range kinds {
		results[ki] = make([][2]float64, len(c.ULs))
		for u, ul := range c.ULs {
			relM0 := make([]float64, c.Graphs)
			slack := make([]float64, c.Graphs)
			err := c.parallelFor(c.Graphs, func(g int) error {
				w, err := c.workload(u, g, ul)
				if err != nil {
					return err
				}
				opt := base
				opt.NoHEFTSeed = kind.noSeed
				res, err := robust.Solve(w, opt, rng.New(c.graphSeed(u, g)^0xab1))
				if err != nil {
					return err
				}
				relM0[g] = res.Schedule.Makespan() / res.MHEFT
				slack[g] = res.Schedule.AvgSlack()
				return nil
			})
			if err != nil {
				return nil, err
			}
			results[ki][u] = [2]float64{stats.Mean(relM0), stats.Mean(slack)}
		}
	}
	for ki, kind := range kinds {
		m0s := make([]float64, len(c.ULs))
		sls := make([]float64, len(c.ULs))
		for u := range c.ULs {
			m0s[u] = results[ki][u][0]
			sls[u] = results[ki][u][1]
		}
		series = append(series,
			Series{Name: kind.name + ",M0/MHEFT", X: x, Y: m0s},
			Series{Name: kind.name + ",slack", X: x, Y: sls})
	}
	return series, nil
}

// AblationSlackMetric compares the paper's average-slack surrogate with
// the conservative minimum-slack variant under the ε-constraint GA:
// realized R1 and R2 per uncertainty level. Returned series (x = UL):
// "avg,R1", "min,R1", "avg,R2", "min,R2".
func (c Config) AblationSlackMetric() ([]Series, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	base := c.gaOptions()
	base.Mode = robust.EpsilonConstraint
	if base.Eps == 0 {
		base.Eps = 1.5
	}
	metrics := []struct {
		name string
		m    robust.SlackMetric
	}{{"avg", robust.AvgSlack}, {"min", robust.MinSlack}}
	x := append([]float64(nil), c.ULs...)
	r1s := make([][]float64, len(metrics))
	r2s := make([][]float64, len(metrics))
	for mi, metric := range metrics {
		r1s[mi] = make([]float64, len(c.ULs))
		r2s[mi] = make([]float64, len(c.ULs))
		for u, ul := range c.ULs {
			gr1 := make([]float64, c.Graphs)
			gr2 := make([]float64, c.Graphs)
			err := c.parallelFor(c.Graphs, func(g int) error {
				w, err := c.workload(u, g, ul)
				if err != nil {
					return err
				}
				opt := base
				opt.SlackMetric = metric.m
				res, err := robust.Solve(w, opt, rng.New(c.graphSeed(u, g)^0xab2))
				if err != nil {
					return err
				}
				m, err := sim.Evaluate(res.Schedule, c.simOptions(), rng.New(c.graphSeed(u, g)^0xab3))
				if err != nil {
					return err
				}
				gr1[g] = stats.LogRatio(m.R1, 1) // capped ln R1
				gr2[g] = stats.LogRatio(m.R2, 1)
				return nil
			})
			if err != nil {
				return nil, err
			}
			r1s[mi][u] = meanFinite(gr1)
			r2s[mi][u] = meanFinite(gr2)
		}
	}
	var out []Series
	for mi, metric := range metrics {
		out = append(out,
			Series{Name: metric.name + ",lnR1", X: x, Y: r1s[mi]},
			Series{Name: metric.name + ",lnR2", X: x, Y: r2s[mi]})
	}
	return out, nil
}

// AblationRiskFactor sweeps the variance-aware HEFT's risk factor k
// (durations E[c] + k·σ) and reports the mean relative change versus plain
// HEFT of realized mean makespan and mean tardiness, averaged over graphs,
// per uncertainty level. Returned series (x = k): one pair of series per
// UL.
func (c Config) AblationRiskFactor(ks []float64) ([]Series, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(ks) == 0 {
		ks = []float64{0, 0.5, 1, 2, 3}
	}
	var out []Series
	for u, ul := range c.ULs {
		meanY := make([]float64, len(ks))
		tardY := make([]float64, len(ks))
		type row struct{ dMean, dTard []float64 }
		rows := make([]row, c.Graphs)
		err := c.parallelFor(c.Graphs, func(g int) error {
			w, err := c.workload(u, g, ul)
			if err != nil {
				return err
			}
			plain, err := heft.HEFT(w, heft.Options{})
			if err != nil {
				return err
			}
			schedules := []*schedule.Schedule{plain}
			for _, k := range ks {
				s, err := stoch.HEFT(w, k)
				if err != nil {
					return err
				}
				schedules = append(schedules, s)
			}
			ms, err := c.evaluateAll(schedules, c.simOptions(), rng.New(c.graphSeed(u, g)^0xab4))
			if err != nil {
				return err
			}
			rows[g] = row{dMean: make([]float64, len(ks)), dTard: make([]float64, len(ks))}
			for ki := range ks {
				rows[g].dMean[ki] = (ms[ki+1].MeanMakespan - ms[0].MeanMakespan) / ms[0].MeanMakespan
				if ms[0].MeanTardiness > 0 {
					rows[g].dTard[ki] = (ms[ki+1].MeanTardiness - ms[0].MeanTardiness) / ms[0].MeanTardiness
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for ki := range ks {
			mv := make([]float64, c.Graphs)
			tv := make([]float64, c.Graphs)
			for g := 0; g < c.Graphs; g++ {
				mv[g] = rows[g].dMean[ki]
				tv[g] = rows[g].dTard[ki]
			}
			meanY[ki] = stats.Mean(mv)
			tardY[ki] = stats.Mean(tv)
		}
		out = append(out,
			Series{Name: fmtUL(ul) + ",ΔreMean", X: append([]float64(nil), ks...), Y: meanY},
			Series{Name: fmtUL(ul) + ",Δtardiness", X: append([]float64(nil), ks...), Y: tardY})
	}
	return out, nil
}

// AblationGAParams sweeps the GA's crossover and mutation rates on a grid
// and reports, per (pc, pm) pair, the mean final slack of the ε-constraint
// GA (at the first configured UL) relative to the paper's setting
// pc=0.9, pm=0.1. Returned series: one per pc value with x = pm.
func (c Config) AblationGAParams(pcs, pms []float64) ([]Series, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(pcs) == 0 {
		pcs = []float64{0.5, 0.9}
	}
	if len(pms) == 0 {
		pms = []float64{0.02, 0.1, 0.3}
	}
	ul := c.ULs[0]
	base := c.gaOptions()
	base.Mode = robust.EpsilonConstraint
	if base.Eps == 0 {
		base.Eps = 1.5
	}
	// Reference slack at the paper's rates, per graph.
	ref := make([]float64, c.Graphs)
	err := c.parallelFor(c.Graphs, func(g int) error {
		w, err := c.workload(7, g, ul)
		if err != nil {
			return err
		}
		opt := base
		opt.CrossoverRate, opt.MutationRate = 0.9, 0.1
		res, err := robust.Solve(w, opt, rng.New(c.graphSeed(7, g)^0xab7))
		if err != nil {
			return err
		}
		ref[g] = res.Schedule.AvgSlack()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Series
	for _, pc := range pcs {
		y := make([]float64, len(pms))
		for pi, pm := range pms {
			vals := make([]float64, c.Graphs)
			err := c.parallelFor(c.Graphs, func(g int) error {
				w, err := c.workload(7, g, ul)
				if err != nil {
					return err
				}
				opt := base
				opt.CrossoverRate, opt.MutationRate = pc, pm
				res, err := robust.Solve(w, opt, rng.New(c.graphSeed(7, g)^0xab8))
				if err != nil {
					return err
				}
				if ref[g] > 0 {
					vals[g] = res.Schedule.AvgSlack() / ref[g]
				} else {
					vals[g] = 1
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			y[pi] = stats.Mean(vals)
		}
		out = append(out, Series{Name: fmt.Sprintf("pc=%.2g", pc), X: append([]float64(nil), pms...), Y: y})
	}
	return out, nil
}

// PolicyComparison pits the four execution strategies against each other
// across the uncertainty levels, all on identical workloads: static HEFT
// (right-shift), reactive repair of the HEFT schedule, the fully dynamic
// dispatcher, and the paper's ε-constraint robust GA schedule. Reported per
// strategy: the realized mean makespan normalized by static HEFT's
// (x = UL). Values below 1 beat the static baseline.
func (c Config) PolicyComparison(eps, repairThreshold float64) ([]Series, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if eps <= 0 {
		eps = 1.4
	}
	if repairThreshold <= 0 {
		repairThreshold = 0.05
	}
	base := c.gaOptions()
	base.Mode = robust.EpsilonConstraint
	base.Eps = eps
	names := []string{"static-heft", "repair", "dynamic", "robust-ga"}
	x := append([]float64(nil), c.ULs...)
	ys := make([][]float64, len(names))
	for i := range ys {
		ys[i] = make([]float64, len(c.ULs))
	}
	for u, ul := range c.ULs {
		rows := make([][]float64, c.Graphs)
		err := c.parallelFor(c.Graphs, func(g int) error {
			w, err := c.workload(u, g, ul)
			if err != nil {
				return err
			}
			hs, err := heft.HEFT(w, heft.Options{})
			if err != nil {
				return err
			}
			res, err := robust.Solve(w, base, rng.New(c.graphSeed(u, g)^0xab5))
			if err != nil {
				return err
			}
			simOpt := c.simOptions()
			seed := c.graphSeed(u, g) ^ 0xab6
			static, err := c.evaluateAll([]*schedule.Schedule{hs, res.Schedule}, simOpt, rng.New(seed))
			if err != nil {
				return err
			}
			rep, err := repair.Evaluate(hs, repair.Policy{Threshold: repairThreshold}, simOpt, rng.New(seed))
			if err != nil {
				return err
			}
			dyn, err := dynamic.Evaluate(w, simOpt, rng.New(seed))
			if err != nil {
				return err
			}
			baseMean := static[0].MeanMakespan
			rows[g] = []float64{
				1,
				rep.MeanMakespan / baseMean,
				dyn.MeanMakespan / baseMean,
				static[1].MeanMakespan / baseMean,
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i := range names {
			vals := make([]float64, c.Graphs)
			for g := 0; g < c.Graphs; g++ {
				vals[g] = rows[g][i]
			}
			ys[i][u] = stats.Mean(vals)
		}
	}
	out := make([]Series, len(names))
	for i, name := range names {
		out[i] = Series{Name: name, X: x, Y: ys[i]}
	}
	return out, nil
}
