package experiments

import (
	"fmt"

	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/stats"
)

// Trace is the result of a Fig. 2 / Fig. 3 experiment: for each uncertainty
// level, the natural-log ratio (relative to generation 0) of the realized
// mean makespan, the average slack, and the robustness R1 of the best
// schedule, sampled along the GA's evolution.
type Trace struct {
	Mode  robust.Mode
	Steps []int // sampled generation indices (0 ... MaxGenerations)
	// Per uncertainty level, aligned with Steps: mean over graphs of
	// ln(metric(step)/metric(0)).
	ULs      []float64
	Makespan [][]float64
	Slack    [][]float64
	R1       [][]float64
}

// EvolutionTrace reproduces Fig. 2 (mode robust.MinMakespan) and Fig. 3
// (mode robust.MaxSlack): single-objective GAs are traced along their
// evolution and the best schedule of each sampled generation is evaluated
// in the simulated "real" environment.
func (c Config) EvolutionTrace(mode robust.Mode) (*Trace, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if mode != robust.MinMakespan && mode != robust.MaxSlack {
		return nil, fmt.Errorf("experiments: EvolutionTrace needs a single-objective mode, got %v", mode)
	}
	base := c.gaOptions()
	maxGen := base.MaxGenerations
	steps := sampleSteps(maxGen, c.TraceEvery)
	tr := &Trace{Mode: mode, Steps: steps, ULs: c.ULs}
	tr.Makespan = make([][]float64, len(c.ULs))
	tr.Slack = make([][]float64, len(c.ULs))
	tr.R1 = make([][]float64, len(c.ULs))

	for u, ul := range c.ULs {
		// Per graph, per sampled step: the three metrics.
		type row struct{ mk, sl, r1 []float64 }
		rows := make([]row, c.Graphs)
		err := c.parallelFor(c.Graphs, func(g int) error {
			w, err := c.workload(u, g, ul)
			if err != nil {
				return err
			}
			// Capture the best schedule at each sampled generation.
			snapshots := make([]*schedule.Schedule, len(steps))
			next := 0
			opt := base
			opt.Mode = mode
			opt.Stagnation = 0 // traces need the full horizon
			// The paper's Fig. 2/3 trajectories span large log-ratios,
			// which requires the single-objective GAs to start from a
			// fully random population: with a HEFT seed, generation 0 is
			// already near-optimal and the evolution effect is invisible.
			opt.NoHEFTSeed = true
			opt.OnGeneration = func(gen int, best *schedule.Schedule) {
				if next < len(steps) && gen == steps[next] {
					snapshots[next] = best
					next++
				}
			}
			gaRNG := rng.New(c.graphSeed(u, g) ^ 0xabcdef12345)
			if _, err := robust.Solve(w, opt, gaRNG); err != nil {
				return err
			}
			// Evaluate every snapshot under common random numbers.
			ms, err := c.evaluateAll(snapshots, c.simOptions(), rng.New(c.graphSeed(u, g)^0x5555))
			if err != nil {
				return err
			}
			rows[g] = row{
				mk: make([]float64, len(steps)),
				sl: make([]float64, len(steps)),
				r1: make([]float64, len(steps)),
			}
			for i := range steps {
				rows[g].mk[i] = stats.LogRatio(ms[i].MeanMakespan, ms[0].MeanMakespan)
				rows[g].sl[i] = stats.LogRatio(snapshots[i].AvgSlack(), snapshots[0].AvgSlack())
				rows[g].r1[i] = stats.LogRatio(ms[i].R1, ms[0].R1)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		tr.Makespan[u] = make([]float64, len(steps))
		tr.Slack[u] = make([]float64, len(steps))
		tr.R1[u] = make([]float64, len(steps))
		for i := range steps {
			mk := make([]float64, c.Graphs)
			sl := make([]float64, c.Graphs)
			r1 := make([]float64, c.Graphs)
			for g := 0; g < c.Graphs; g++ {
				mk[g] = rows[g].mk[i]
				sl[g] = rows[g].sl[i]
				r1[g] = rows[g].r1[i]
			}
			tr.Makespan[u][i] = meanFinite(mk)
			tr.Slack[u][i] = meanFinite(sl)
			tr.R1[u][i] = meanFinite(r1)
		}
	}
	return tr, nil
}

// sampleSteps returns {0, every, 2·every, ..., maxGen} with maxGen always
// included.
func sampleSteps(maxGen, every int) []int {
	var steps []int
	for s := 0; s < maxGen; s += every {
		steps = append(steps, s)
	}
	return append(steps, maxGen)
}

// Series flattens the trace into named curves, three per uncertainty level,
// matching the legend of the paper's figures.
func (t *Trace) Series() []Series {
	x := make([]float64, len(t.Steps))
	for i, s := range t.Steps {
		x[i] = float64(s)
	}
	var out []Series
	for u, ul := range t.ULs {
		out = append(out,
			Series{Name: fmtUL(ul) + ",Makespan", X: x, Y: t.Makespan[u]},
			Series{Name: fmtUL(ul) + ",Slack", X: x, Y: t.Slack[u]},
			Series{Name: fmtUL(ul) + ",R1", X: x, Y: t.R1[u]},
		)
	}
	return out
}
