package experiments

import (
	"strings"
	"testing"
)

func ablationConfig() Config {
	c := tinyConfig()
	c.ULs = []float64{2, 6}
	c.Graphs = 2
	c.Realizations = 100
	c.GA.MaxGenerations = 30
	return c
}

func TestAblationSeed(t *testing.T) {
	c := ablationConfig()
	series, err := c.AblationSeed()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
		if len(s.X) != len(c.ULs) || len(s.Y) != len(c.ULs) {
			t.Fatalf("series %q misshaped", s.Name)
		}
	}
	seeded, ok1 := byName["seeded,M0/MHEFT"]
	unseeded, ok2 := byName["unseeded,M0/MHEFT"]
	if !ok1 || !ok2 {
		t.Fatalf("missing series: %v", byName)
	}
	for u := range c.ULs {
		// The ε-constraint keeps both within the bound, but the seeded run
		// can never exceed ε; sanity: ratios positive and below ε plus
		// tolerance.
		if seeded.Y[u] <= 0 || seeded.Y[u] > 1.5+1e-9 {
			t.Errorf("seeded M0/MHEFT[%d] = %g", u, seeded.Y[u])
		}
		if unseeded.Y[u] <= 0 {
			t.Errorf("unseeded M0/MHEFT[%d] = %g", u, unseeded.Y[u])
		}
	}
}

func TestAblationSlackMetric(t *testing.T) {
	c := ablationConfig()
	series, err := c.AblationSlackMetric()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if !strings.Contains(s.Name, "lnR") {
			t.Errorf("unexpected series name %q", s.Name)
		}
	}
}

func TestAblationRiskFactor(t *testing.T) {
	c := ablationConfig()
	series, err := c.AblationRiskFactor([]float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two series per UL.
	if len(series) != 2*len(c.ULs) {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if len(s.X) != 2 {
			t.Fatalf("series %q has %d points", s.Name, len(s.X))
		}
		// k = 0 is plain HEFT: relative change exactly 0.
		if s.Y[0] != 0 {
			t.Errorf("series %q at k=0: %g, want 0", s.Name, s.Y[0])
		}
	}
}

func TestPolicyComparison(t *testing.T) {
	c := ablationConfig()
	series, err := c.PolicyComparison(1.4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	static, ok := byName["static-heft"]
	if !ok {
		t.Fatal("missing static-heft")
	}
	for u := range c.ULs {
		if static.Y[u] != 1 {
			t.Fatalf("static baseline not normalized: %g", static.Y[u])
		}
	}
	// The dynamic dispatcher should beat rigid static execution at high
	// uncertainty (last UL = 6).
	last := len(c.ULs) - 1
	if dyn := byName["dynamic"]; dyn.Y[last] >= 1.05 {
		t.Errorf("dynamic dispatcher ratio %g at UL=%g; expected to be competitive",
			dyn.Y[last], c.ULs[last])
	}
	// Repair should not be (much) worse than rigid execution.
	if rep := byName["repair"]; rep.Y[last] > 1.05 {
		t.Errorf("repair ratio %g at UL=%g; expected <= ~1", rep.Y[last], c.ULs[last])
	}
}

func TestSensitivity(t *testing.T) {
	c := ablationConfig()
	c.ULs = []float64{4}
	for _, tc := range []struct {
		param SensitivityParam
		grid  []float64
	}{
		{SweepCCR, []float64{0.1, 1.0}},
		{SweepShape, []float64{0.5, 2.0}},
		{SweepProcs, []float64{2, 4}},
	} {
		series, err := c.Sensitivity(tc.param, tc.grid, 1.4)
		if err != nil {
			t.Fatalf("%v: %v", tc.param, err)
		}
		if len(series) != 2 {
			t.Fatalf("%v: got %d series", tc.param, len(series))
		}
		for _, s := range series {
			if len(s.X) != len(tc.grid) {
				t.Fatalf("%v: series %q has %d points", tc.param, s.Name, len(s.X))
			}
		}
		// The constraint must hold at every grid point.
		for i, y := range series[1].Y {
			if y > 1.4+1e-9 {
				t.Errorf("%v grid %g: M0/MHEFT = %g exceeds ε", tc.param, tc.grid[i], y)
			}
		}
	}
	if _, err := c.Sensitivity(SweepCCR, nil, 1.4); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := c.Sensitivity(SweepProcs, []float64{0}, 1.4); err == nil {
		t.Error("zero processors accepted")
	}
}

func TestAblationGAParams(t *testing.T) {
	c := ablationConfig()
	c.ULs = []float64{4}
	c.Graphs = 2
	series, err := c.AblationGAParams([]float64{0.9}, []float64{0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].X) != 2 {
		t.Fatalf("series shape wrong: %+v", series)
	}
	for _, y := range series[0].Y {
		if y <= 0 {
			t.Errorf("relative slack %g not positive", y)
		}
	}
}

func TestFig1(t *testing.T) {
	out, err := Fig1(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"(a) task graph: 8 tasks",
		"(b) system: 4 fully connected processors",
		"(c) schedule (HEFT):",
		"(d) disjunctive graph",
		"digraph \"fig1a\"",
		"digraph \"fig1d\"",
		"makespan",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 output missing %q", want)
		}
	}
	// Deterministic per seed.
	out2, err := Fig1(7)
	if err != nil {
		t.Fatal(err)
	}
	if out != out2 {
		t.Error("Fig1 not deterministic")
	}
}
