package experiments

import (
	"math"
	"strings"
	"testing"

	"robsched/internal/gen"
	"robsched/internal/robust"
)

// tinyConfig is small enough for unit tests yet large enough that the
// paper's qualitative shapes still emerge.
func tinyConfig() Config {
	c := Default()
	c.Gen.N = 24
	c.Gen.M = 3
	c.Graphs = 3
	c.Realizations = 120
	c.ULs = []float64{2, 6}
	c.Eps = []float64{1.0, 1.5, 2.0}
	c.RGrid = []float64{0, 0.5, 1}
	c.GA.PopSize = 10
	c.GA.MaxGenerations = 40
	c.GA.Stagnation = 0
	c.TraceEvery = 20
	return c
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig()
	if err := good.validate(); err != nil {
		t.Fatalf("tiny config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Graphs = 0 },
		func(c *Config) { c.Realizations = 0 },
		func(c *Config) { c.ULs = nil },
		func(c *Config) { c.ULs = []float64{0.5} },
		func(c *Config) { c.TraceEvery = 0 },
		func(c *Config) { c.Gen.N = 0 },
	}
	for i, mut := range cases {
		c := tinyConfig()
		mut(&c)
		if err := c.validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDefaultAndPaperScaleValid(t *testing.T) {
	if err := Default().validate(); err != nil {
		t.Errorf("Default invalid: %v", err)
	}
	ps := PaperScale()
	if err := ps.validate(); err != nil {
		t.Errorf("PaperScale invalid: %v", err)
	}
	if ps.Graphs != 100 || ps.Realizations != 1000 || ps.Gen.N != 100 {
		t.Errorf("PaperScale not at paper scale: %+v", ps)
	}
	if ps.GA.PopSize != 20 || ps.GA.MaxGenerations != 1000 {
		t.Errorf("PaperScale GA params wrong: %+v", ps.GA)
	}
}

func TestSampleSteps(t *testing.T) {
	got := sampleSteps(100, 30)
	want := []int{0, 30, 60, 90, 100}
	if len(got) != len(want) {
		t.Fatalf("sampleSteps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sampleSteps = %v, want %v", got, want)
		}
	}
	// Exact multiple: maxGen still included once.
	got = sampleSteps(60, 30)
	want = []int{0, 30, 60}
	if len(got) != len(want) || got[2] != 60 {
		t.Fatalf("sampleSteps = %v, want %v", got, want)
	}
}

func TestEvolutionTraceFig2Shape(t *testing.T) {
	c := tinyConfig()
	tr, err := c.EvolutionTrace(robust.MinMakespan)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) == 0 || tr.Steps[0] != 0 || tr.Steps[len(tr.Steps)-1] != c.GA.MaxGenerations {
		t.Fatalf("Steps = %v", tr.Steps)
	}
	for u := range tr.ULs {
		// Log ratios are 0 at step 0 by construction.
		if tr.Makespan[u][0] != 0 || tr.Slack[u][0] != 0 || tr.R1[u][0] != 0 {
			t.Fatalf("UL index %d: trace does not start at 0: %g %g %g",
				u, tr.Makespan[u][0], tr.Slack[u][0], tr.R1[u][0])
		}
	}
	last := len(tr.Steps) - 1
	// Paper Fig. 2 shape: minimizing the makespan drives slack and R1
	// down, most significantly at small uncertainty levels (at large UL
	// the paper itself reports weaker, noisier movement).
	if tr.Slack[0][last] >= 0 {
		t.Errorf("UL=%g: slack log-ratio %g did not fall while minimizing makespan", tr.ULs[0], tr.Slack[0][last])
	}
	for u, ul := range tr.ULs {
		if tr.Slack[u][last] > 0.35 {
			t.Errorf("UL=%g: slack log-ratio rose to %g while minimizing makespan", ul, tr.Slack[u][last])
		}
		if tr.R1[u][last] > 0.35 {
			t.Errorf("UL=%g: R1 log-ratio rose to %g while minimizing makespan", ul, tr.R1[u][last])
		}
	}
	// At the lowest uncertainty level the realized makespan should improve
	// (negative log ratio).
	if tr.Makespan[0][last] >= 0 {
		t.Errorf("UL=%g: realized makespan did not improve: %g", tr.ULs[0], tr.Makespan[0][last])
	}
}

func TestEvolutionTraceFig3Shape(t *testing.T) {
	c := tinyConfig()
	tr, err := c.EvolutionTrace(robust.MaxSlack)
	if err != nil {
		t.Fatal(err)
	}
	last := len(tr.Steps) - 1
	// Paper Fig. 3 shape: maximizing slack raises slack, raises R1, and
	// raises the makespan substantially.
	for u, ul := range tr.ULs {
		if tr.Slack[u][last] <= 0 {
			t.Errorf("UL=%g: slack log-ratio %g did not rise while maximizing slack", ul, tr.Slack[u][last])
		}
		if tr.Makespan[u][last] <= 0 {
			t.Errorf("UL=%g: makespan log-ratio %g did not rise while maximizing slack", ul, tr.Makespan[u][last])
		}
		if tr.R1[u][last] <= -0.1 {
			t.Errorf("UL=%g: R1 log-ratio %g fell while maximizing slack", ul, tr.R1[u][last])
		}
	}
}

func TestEvolutionTraceRejectsEpsilonMode(t *testing.T) {
	c := tinyConfig()
	if _, err := c.EvolutionTrace(robust.EpsilonConstraint); err == nil {
		t.Fatal("epsilon-constraint mode accepted for a trace")
	}
}

func TestTraceSeries(t *testing.T) {
	c := tinyConfig()
	c.ULs = []float64{2}
	tr, err := c.EvolutionTrace(robust.MinMakespan)
	if err != nil {
		t.Fatal(err)
	}
	series := tr.Series()
	if len(series) != 3 {
		t.Fatalf("got %d series, want 3", len(series))
	}
	for _, s := range series {
		if len(s.X) != len(tr.Steps) || len(s.Y) != len(tr.Steps) {
			t.Fatalf("series %q has mismatched lengths", s.Name)
		}
		if !strings.Contains(s.Name, "UL=2.0") {
			t.Fatalf("series name %q missing UL tag", s.Name)
		}
	}
}

func TestRunSweepAndFigures(t *testing.T) {
	c := tinyConfig()
	sw, err := c.RunSweep()
	if err != nil {
		t.Fatal(err)
	}
	// Grid shape.
	if len(sw.GA) != len(c.ULs) || len(sw.GA[0]) != len(c.Eps) || len(sw.GA[0][0]) != c.Graphs {
		t.Fatalf("sweep grid shape wrong")
	}
	// Constraint holds per cell: M0 <= ε · M_HEFT.
	for u := range c.ULs {
		for e, eps := range c.Eps {
			for g := 0; g < c.Graphs; g++ {
				if sw.GA[u][e][g].M0 > eps*sw.HEFT[u][g].M0+1e-9 {
					t.Fatalf("cell (%d,%d,%d) violates the constraint: %g > %g·%g",
						u, e, g, sw.GA[u][e][g].M0, eps, sw.HEFT[u][g].M0)
				}
			}
		}
	}

	// Fig. 4: at ε=1.0 the GA should improve robustness over HEFT on
	// average (R1 log ratio positive at the lowest UL) and not lose on
	// makespan by much.
	fig4, err := sw.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4) != 3 {
		t.Fatalf("Fig4 returned %d series", len(fig4))
	}
	byName := map[string]Series{}
	for _, s := range fig4 {
		byName[s.Name] = s
	}
	if s, ok := byName["R1"]; !ok || s.Y[0] <= 0 {
		t.Errorf("Fig4 R1 improvement at UL=%g is %g, want > 0", c.ULs[0], s.Y[0])
	}
	if s := byName["Makespan"]; s.Y[0] < -0.15 {
		t.Errorf("Fig4 makespan log ratio %g strongly negative: GA much worse than HEFT", s.Y[0])
	}

	// Fig. 5/6: relaxing ε should increase robustness relative to ε=1.0.
	for _, m := range []Metric{R1, R2} {
		series, err := sw.FigEpsImprovement(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != len(c.ULs) {
			t.Fatalf("FigEpsImprovement(%v) returned %d series", m, len(series))
		}
		for _, s := range series {
			if len(s.X) != 2 { // eps 1.5 and 2.0
				t.Fatalf("series %q X = %v", s.Name, s.X)
			}
			// Mean improvement across the grid should be positive.
			mean := (s.Y[0] + s.Y[1]) / 2
			if mean <= 0 {
				t.Errorf("%v %s: mean improvement %g not positive", m, s.Name, mean)
			}
		}
	}

	// Fig. 7/8: best ε must come from the grid, and emphasizing the
	// makespan (r=1) must not prefer a larger ε than emphasizing
	// robustness (r=0).
	for _, m := range []Metric{R1, R2} {
		series, err := sw.FigBestEps(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range series {
			for _, y := range s.Y {
				if y < c.Eps[0] || y > c.Eps[len(c.Eps)-1] || math.IsNaN(y) {
					t.Fatalf("%v %s: best ε %g outside grid", m, s.Name, y)
				}
			}
			if s.Y[len(s.Y)-1] > s.Y[0] {
				t.Errorf("%v %s: best ε at r=1 (%g) exceeds best ε at r=0 (%g)",
					m, s.Name, s.Y[len(s.Y)-1], s.Y[0])
			}
			// r=1 cares only about makespan: ε=1.0 gives the GA the
			// tightest bound, so the best ε should be the smallest.
			if s.Y[len(s.Y)-1] != c.Eps[0] {
				t.Logf("note: %v %s best ε at r=1 is %g (grid minimum %g)", m, s.Name, s.Y[len(s.Y)-1], c.Eps[0])
			}
		}
	}
}

func TestSweepDeterminism(t *testing.T) {
	c := tinyConfig()
	c.ULs = []float64{2}
	c.Eps = []float64{1.0, 1.5}
	c.Graphs = 2
	run := func(workers int) *Sweep {
		cc := c
		cc.Workers = workers
		sw, err := cc.RunSweep()
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	a, b := run(1), run(4)
	for u := range a.GA {
		for e := range a.GA[u] {
			for g := range a.GA[u][e] {
				if a.GA[u][e][g].M0 != b.GA[u][e][g].M0 ||
					a.GA[u][e][g].Sim.MeanMakespan != b.GA[u][e][g].Sim.MeanMakespan {
					t.Fatalf("sweep not deterministic across worker counts at (%d,%d,%d)", u, e, g)
				}
			}
		}
	}
}

func TestFigRequiresEps1(t *testing.T) {
	c := tinyConfig()
	c.Eps = []float64{1.5, 2.0}
	sw, err := c.RunSweep()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Fig4(); err == nil {
		t.Error("Fig4 without ε=1.0 accepted")
	}
	if _, err := sw.FigEpsImprovement(R1); err == nil {
		t.Error("FigEpsImprovement without ε=1.0 accepted")
	}
}

func TestFormatSeries(t *testing.T) {
	s := []Series{
		{Name: "A", X: []float64{1, 2}, Y: []float64{0.5, math.Inf(1)}},
		{Name: "B", X: []float64{1, 2}, Y: []float64{-1, math.NaN()}},
	}
	out := FormatSeries("Fig. X", "UL", s)
	for _, want := range []string{"# Fig. X", "UL", "A", "B", "+Inf", "NaN", "0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatSeries missing %q in:\n%s", want, out)
		}
	}
	if empty := FormatSeries("t", "x", nil); !strings.Contains(empty, "no data") {
		t.Error("empty series not handled")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	s := []Series{
		{Name: "a,b", X: []float64{1, 2}, Y: []float64{3, 4}},
		{Name: "c", X: []float64{1, 2}, Y: []float64{5, 6}},
	}
	if err := WriteCSV(&b, "x", s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != `x,"a,b",c` {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,3,5" || lines[2] != "2,4,6" {
		t.Errorf("rows = %q, %q", lines[1], lines[2])
	}
}

func TestMeanFinite(t *testing.T) {
	if got := meanFinite([]float64{1, math.NaN(), 3}); got != 2 {
		t.Errorf("meanFinite = %g, want 2", got)
	}
	if !math.IsNaN(meanFinite([]float64{math.NaN()})) {
		t.Error("all-NaN input should be NaN")
	}
}

func TestGAOptionsFillsDefaults(t *testing.T) {
	var c Config
	c.Gen = gen.PaperParams()
	opt := c.gaOptions()
	if opt.PopSize != 20 || opt.MaxGenerations != 1000 || opt.CrossoverRate != 0.9 || opt.MutationRate != 0.1 {
		t.Fatalf("gaOptions defaults wrong: %+v", opt)
	}
}
