package experiments

import (
	"fmt"
	"math"

	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/sim"
	"robsched/internal/stats"
)

// Point is one schedule's outcome on one workload: its expected makespan,
// slack and Monte-Carlo metrics.
type Point struct {
	M0       float64
	AvgSlack float64
	Sim      sim.Metrics
}

// Sweep holds the full UL × ε × graph grid of GA outcomes plus the per-
// graph HEFT baselines, all evaluated under common random numbers. It is
// the shared substrate of Figs. 4–8.
type Sweep struct {
	Cfg  Config
	ULs  []float64
	Eps  []float64
	GA   [][][]Point // [ul][eps][graph]
	HEFT [][]Point   // [ul][graph]
}

// RunSweep runs the ε-constraint GA for every uncertainty level, every ε
// and every graph, evaluating each schedule against the HEFT baseline on
// identical Monte-Carlo realizations.
func (c Config) RunSweep() (*Sweep, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(c.Eps) == 0 {
		return nil, fmt.Errorf("experiments: empty ε grid")
	}
	base := c.gaOptions()
	sw := &Sweep{Cfg: c, ULs: c.ULs, Eps: c.Eps}
	sw.GA = make([][][]Point, len(c.ULs))
	sw.HEFT = make([][]Point, len(c.ULs))
	for u := range c.ULs {
		sw.GA[u] = make([][]Point, len(c.Eps))
		for e := range c.Eps {
			sw.GA[u][e] = make([]Point, c.Graphs)
		}
		sw.HEFT[u] = make([]Point, c.Graphs)
	}
	// One flat UL × graph job list: a single parallelFor with no barrier
	// between uncertainty levels, so workers that finish one level's graphs
	// early immediately start on the next level instead of idling at a
	// per-UL join. Every job writes only its own sw.GA[u][·][g] and
	// sw.HEFT[u][g] cells, so the flattening cannot change any result.
	err := c.parallelFor(len(c.ULs)*c.Graphs, func(idx int) error {
		u, g := idx/c.Graphs, idx%c.Graphs
		ul := c.ULs[u]
		w, err := c.workload(u, g, ul)
		if err != nil {
			return err
		}
		// The HEFT baseline is ε-independent, so it is computed once per
		// graph and threaded through Options.HEFT instead of re-derived by
		// every Solve on the ε grid; likewise one genotype→metrics cache is
		// shared across the grid — the metrics are ε-independent, so a
		// genotype decoded for one ε is free for every other. Neither
		// sharing changes any number: HEFT is deterministic and cache hits
		// return the exact floats a decode would.
		heftSched, err := robust.HEFTBaseline(w)
		if err != nil {
			return err
		}
		cache := robust.NewMetricsCache()
		// One GA run per ε; all schedules (plus HEFT) evaluated on the
		// same realizations.
		schedules := make([]*schedule.Schedule, 0, len(c.Eps)+1)
		for e, eps := range c.Eps {
			opt := base
			opt.Mode = robust.EpsilonConstraint
			opt.Eps = eps
			opt.HEFT = heftSched
			opt.Cache = cache
			res, err := robust.Solve(w, opt, rng.New(c.graphSeed(u, g)^uint64(0x1111*(e+1))))
			if err != nil {
				return err
			}
			schedules = append(schedules, res.Schedule)
		}
		schedules = append(schedules, heftSched)
		ms, err := c.evaluateAll(schedules, c.simOptions(), rng.New(c.graphSeed(u, g)^0x7777))
		if err != nil {
			return err
		}
		for e := range c.Eps {
			sw.GA[u][e][g] = Point{
				M0:       schedules[e].Makespan(),
				AvgSlack: schedules[e].AvgSlack(),
				Sim:      ms[e],
			}
		}
		h := len(c.Eps)
		sw.HEFT[u][g] = Point{
			M0:       heftSched.Makespan(),
			AvgSlack: heftSched.AvgSlack(),
			Sim:      ms[h],
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sw, nil
}

// epsIndex returns the grid index of ε (exact match).
func (s *Sweep) epsIndex(eps float64) (int, error) {
	for i, e := range s.Eps {
		if e == eps {
			return i, nil
		}
	}
	return 0, fmt.Errorf("experiments: ε=%g not in sweep grid %v", eps, s.Eps)
}

// Fig4 reproduces Fig. 4: at ε = 1.0, the mean natural-log ratio of the
// GA's realized mean makespan improvement, R1 improvement and R2
// improvement over HEFT, as a function of the uncertainty level.
// Positive values mean the GA wins.
func (s *Sweep) Fig4() ([]Series, error) {
	e0, err := s.epsIndex(1.0)
	if err != nil {
		return nil, err
	}
	x := append([]float64(nil), s.ULs...)
	mk := make([]float64, len(s.ULs))
	r1 := make([]float64, len(s.ULs))
	r2 := make([]float64, len(s.ULs))
	for u := range s.ULs {
		n := len(s.GA[u][e0])
		mks := make([]float64, n)
		r1s := make([]float64, n)
		r2s := make([]float64, n)
		for g := 0; g < n; g++ {
			ga, heft := s.GA[u][e0][g], s.HEFT[u][g]
			// Makespan improvement: HEFT's realized mean over the GA's —
			// larger is better for the GA.
			mks[g] = stats.LogRatio(heft.Sim.MeanMakespan, ga.Sim.MeanMakespan)
			r1s[g] = stats.LogRatio(ga.Sim.R1, heft.Sim.R1)
			r2s[g] = stats.LogRatio(ga.Sim.R2, heft.Sim.R2)
		}
		mk[u] = meanFinite(mks)
		r1[u] = meanFinite(r1s)
		r2[u] = meanFinite(r2s)
	}
	return []Series{
		{Name: "Makespan", X: x, Y: mk},
		{Name: "R1", X: x, Y: r1},
		{Name: "R2", X: x, Y: r2},
	}, nil
}

// FigEpsImprovement reproduces Figs. 5 and 6: for each uncertainty level,
// the mean relative improvement of the chosen robustness metric at each
// ε > 1.0 over the same graph's ε = 1.0 result:
//
//	improvement(ε) = mean over graphs of R(ε)/R(1.0) − 1.
func (s *Sweep) FigEpsImprovement(m Metric) ([]Series, error) {
	e0, err := s.epsIndex(1.0)
	if err != nil {
		return nil, err
	}
	var x []float64
	var idx []int
	for e, eps := range s.Eps {
		if eps > 1.0 {
			x = append(x, eps)
			idx = append(idx, e)
		}
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("experiments: ε grid has no values above 1.0")
	}
	out := make([]Series, 0, len(s.ULs))
	for u, ul := range s.ULs {
		y := make([]float64, len(idx))
		for k, e := range idx {
			vals := make([]float64, len(s.GA[u][e]))
			for g := range vals {
				vals[g] = stats.SafeRatio(metricOf(s.GA[u][e][g].Sim, m), metricOf(s.GA[u][e0][g].Sim, m)) - 1
			}
			y[k] = meanFinite(vals)
		}
		out = append(out, Series{Name: fmtUL(ul), X: x, Y: y})
	}
	return out, nil
}

// FigBestEps reproduces Figs. 7 and 8: for each uncertainty level and each
// weight r, the ε in the sweep grid that maximizes the mean overall
// performance P(s) (Eqn. 9) built from the realized mean makespan and the
// chosen robustness metric.
func (s *Sweep) FigBestEps(m Metric) ([]Series, error) {
	rGrid := s.Cfg.RGrid
	if len(rGrid) == 0 {
		return nil, fmt.Errorf("experiments: empty r grid")
	}
	out := make([]Series, 0, len(s.ULs))
	for u, ul := range s.ULs {
		y := make([]float64, len(rGrid))
		for k, r := range rGrid {
			bestEps, bestP := math.NaN(), math.Inf(-1)
			for e, eps := range s.Eps {
				vals := make([]float64, len(s.GA[u][e]))
				for g := range vals {
					ga, heft := s.GA[u][e][g], s.HEFT[u][g]
					vals[g] = stats.OverallPerformance(r,
						ga.Sim.MeanMakespan, heft.Sim.MeanMakespan,
						metricOf(ga.Sim, m), metricOf(heft.Sim, m))
				}
				if p := meanFinite(vals); p > bestP {
					bestP, bestEps = p, eps
				}
			}
			y[k] = bestEps
		}
		out = append(out, Series{Name: fmtUL(ul), X: append([]float64(nil), rGrid...), Y: y})
	}
	return out, nil
}
