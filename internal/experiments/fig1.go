package experiments

import (
	"fmt"
	"strings"

	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
)

// Fig1 reproduces the paper's worked example (Fig. 1) programmatically:
// the 8-task graph, a 4-processor system, a schedule in the paper's set
// notation, its Gantt chart, and the disjunctive graph with the added E'
// edges — rendered as text (plus Graphviz DOT of both graphs).
func Fig1(seed uint64) (string, error) {
	g := gen.PaperExampleGraph(5)
	r := rng.New(seed)
	sys := platform.UniformSystem(4, 1)
	bcet := gen.ExecMatrix(g.N(), 4, 10, 0.5, 0.5, r)
	ul := gen.ULMatrix(g.N(), 4, 2, 0.5, 0.5, r)
	w, err := platform.NewWorkload(g, sys, bcet, ul)
	if err != nil {
		return "", err
	}
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		return "", err
	}
	gs, err := s.DisjunctiveGraph()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("# Fig. 1 — worked example: task graph, system, schedule, disjunctive graph\n\n")
	fmt.Fprintf(&b, "(a) task graph: %d tasks, %d edges, depth %d\n", g.N(), g.EdgeCount(), g.Depth())
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "    v%d -> v%d (data %.3g)\n", e.From+1, e.To+1, e.Data)
	}
	fmt.Fprintf(&b, "\n(b) system: %d fully connected processors, rate %.3g\n", sys.M(), sys.Rate(0, 1))
	fmt.Fprintf(&b, "\n(c) schedule (HEFT): %v\n", s)
	fmt.Fprintf(&b, "    makespan %.4g, avg slack %.4g\n\n", s.Makespan(), s.AvgSlack())
	b.WriteString(s.Gantt(72))
	b.WriteString("\n(d) disjunctive graph G_s: E' edges added by the processor orders\n")
	dis := s.DisjunctiveEdges()
	if len(dis) == 0 {
		b.WriteString("    (none — every same-processor pair is already a data edge)\n")
	}
	for _, e := range dis {
		fmt.Fprintf(&b, "    v%d -> v%d (disjunctive)\n", e.From+1, e.To+1)
	}
	fmt.Fprintf(&b, "    |E ∪ E'| = %d; same-processor data edges have their size zeroed (Eqn. 1)\n", gs.EdgeCount())
	b.WriteString("\n-- DOT of the task graph --\n")
	b.WriteString(g.Dot("fig1a"))
	b.WriteString("\n-- DOT of the disjunctive graph --\n")
	b.WriteString(gs.Dot("fig1d"))
	return b.String(), nil
}
