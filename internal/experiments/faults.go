package experiments

// Fault-resilience experiment: does the paper's slack-based robustness —
// engineered against duration noise — also buy resilience against
// processor failures? For every graph, three schedulers of increasing
// slack (HEFT, simulated annealing, the ε-constraint GA) are evaluated
// twice under common random numbers: once with duration noise only and
// once with fault injection on top, and the per-schedule slack is
// correlated with the fault-induced makespan inflation.

import (
	"fmt"
	"strings"

	"robsched/internal/fault"
	"robsched/internal/heft"
	"robsched/internal/repair"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/stats"
)

// FaultConfig parameterizes the fault-resilience experiment on top of the
// shared experiment Config.
type FaultConfig struct {
	// MTBFFactor scales the per-processor mean time between failures in
	// multiples of the HEFT makespan of each instance (2 means a processor
	// fails on average once per two baseline makespans).
	MTBFFactor float64
	// Policy is the fault-aware execution policy (retry/migration/drop).
	Policy repair.FaultPolicy
	// UL is the mean uncertainty level of the generated workloads; 0
	// defaults to the middle of the config's UL grid.
	UL float64
	// Eps relaxes the makespan constraint M0 ≤ ε·M_HEFT for the SA and GA
	// schedulers; 0 defaults to 1.4. At ε = 1.0 there is no makespan
	// budget to buy slack with and all three schedulers collapse onto
	// near-HEFT schedules, which makes the correlation vacuous.
	Eps float64
}

// DefaultFaultConfig pairs a 2·M0 MTBF with two migrating retries — enough
// failures to differentiate schedules without overwhelming them.
func DefaultFaultConfig() FaultConfig {
	return FaultConfig{MTBFFactor: 2, Policy: repair.DefaultFaultPolicy()}
}

// FaultResilienceRow aggregates one scheduler across all graphs.
type FaultResilienceRow struct {
	Scheduler string
	// NormSlack is the schedule's average slack divided by its own
	// makespan (the paper's robustness surrogate, scale-free).
	NormSlack float64
	// NoFaultMean and FaultMean are mean makespans relative to the HEFT
	// baseline M0 of each instance; Inflation is their ratio — how much
	// the faults alone cost.
	NoFaultMean float64
	FaultMean   float64
	Inflation   float64
	// Completion, Retries, Migrations and Drops are per-realization means
	// under faults.
	Completion float64
	Retries    float64
	Migrations float64
	Drops      float64
}

// FaultResilienceResult is the experiment outcome.
type FaultResilienceResult struct {
	Rows []FaultResilienceRow
	// SlackCorr is the Pearson correlation between normalized slack and
	// fault inflation across every (graph, scheduler) point: negative
	// means slack buys fault resilience too.
	SlackCorr float64
	Graphs    int
	Points    int
}

// String renders the result as an aligned text table.
func (r *FaultResilienceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Slack vs fault resilience (%d graphs, %d points)\n", r.Graphs, r.Points)
	fmt.Fprintf(&b, "%-10s %10s %12s %12s %10s %8s %8s %8s %8s\n",
		"scheduler", "slack/M0", "nofault/MH", "fault/MH", "inflation", "compl", "retries", "migr", "drops")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10.4f %12.4f %12.4f %10.4f %8.4f %8.3f %8.3f %8.3f\n",
			row.Scheduler, row.NormSlack, row.NoFaultMean, row.FaultMean, row.Inflation,
			row.Completion, row.Retries, row.Migrations, row.Drops)
	}
	fmt.Fprintf(&b, "Pearson(slack/M0, inflation) = %+.4f\n", r.SlackCorr)
	return b.String()
}

// FaultResilience runs the experiment. Schedules per graph: HEFT, SA and
// the ε-constraint GA at a comparable search budget; both evaluations of a
// graph share the instance, the duration seed and the fault-scenario
// stream (common random numbers), so differences are attributable to the
// schedules alone.
func (c Config) FaultResilience(fc FaultConfig) (*FaultResilienceResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if fc.MTBFFactor <= 0 {
		return nil, fmt.Errorf("experiments: MTBFFactor=%g must be > 0", fc.MTBFFactor)
	}
	if err := fc.Policy.Validate(); err != nil {
		return nil, err
	}
	ul := fc.UL
	if ul == 0 {
		ul = c.ULs[len(c.ULs)/2]
	}
	gaOpt := c.gaOptions()
	gaOpt.Mode = robust.EpsilonConstraint
	gaOpt.Eps = fc.Eps
	if gaOpt.Eps == 0 {
		gaOpt.Eps = 1.4
	}
	saOpt := robust.PaperishAnnealOptions(gaOpt.Eps)
	saOpt.Steps = gaOpt.PopSize * gaOpt.MaxGenerations // comparable budget

	names := []string{"heft", "anneal", "ga"}
	type point struct {
		slack, noFault, faultMean, inflation float64
		completion, retries, migr, drops     float64
	}
	points := make([][]point, c.Graphs) // [graph][scheduler]
	err := c.parallelFor(c.Graphs, func(g int) error {
		w, err := c.workload(0, g, ul)
		if err != nil {
			return err
		}
		hs, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			return err
		}
		sa, err := robust.SolveAnneal(w, saOpt, rng.New(c.graphSeed(0, g)^0xfa1))
		if err != nil {
			return err
		}
		ga, err := robust.Solve(w, gaOpt, rng.New(c.graphSeed(0, g)^0xfa2))
		if err != nil {
			return err
		}
		ss := []*schedule.Schedule{hs, sa.Schedule, ga.Schedule}
		opt := c.simOptions()
		noFault, err := c.evaluateAll(ss, opt, rng.New(c.graphSeed(0, g)^0xfa3))
		if err != nil {
			return err
		}
		// Fault lane: every schedule of this graph sees the same duration
		// and scenario streams (same seed), model and horizon.
		m0 := hs.Makespan()
		mo := fault.Model{MTBF: fc.MTBFFactor * m0, KeepOne: true}
		horizon := 4 * m0
		pol := fc.Policy
		pol.Obs, pol.Trace = c.Obs, c.Trace
		points[g] = make([]point, len(ss))
		for i, s := range ss {
			fm, err := repair.EvaluateFaults(s, pol, mo, horizon, opt, rng.New(c.graphSeed(0, g)^0xfa4))
			if err != nil {
				return err
			}
			points[g][i] = point{
				slack:      s.AvgSlack() / s.Makespan(),
				noFault:    noFault[i].MeanMakespan / m0,
				faultMean:  fm.MeanMakespan / m0,
				inflation:  fm.MeanMakespan / noFault[i].MeanMakespan,
				completion: fm.MeanCompletion,
				retries:    fm.MeanRetries,
				migr:       fm.MeanMigrations,
				drops:      fm.MeanDropped,
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &FaultResilienceResult{Graphs: c.Graphs}
	var slacks, inflations []float64
	for i, name := range names {
		row := FaultResilienceRow{Scheduler: name}
		for g := 0; g < c.Graphs; g++ {
			pt := points[g][i]
			row.NormSlack += pt.slack
			row.NoFaultMean += pt.noFault
			row.FaultMean += pt.faultMean
			row.Inflation += pt.inflation
			row.Completion += pt.completion
			row.Retries += pt.retries
			row.Migrations += pt.migr
			row.Drops += pt.drops
			slacks = append(slacks, pt.slack)
			inflations = append(inflations, pt.inflation)
		}
		gf := float64(c.Graphs)
		row.NormSlack /= gf
		row.NoFaultMean /= gf
		row.FaultMean /= gf
		row.Inflation /= gf
		row.Completion /= gf
		row.Retries /= gf
		row.Migrations /= gf
		row.Drops /= gf
		res.Rows = append(res.Rows, row)
	}
	res.Points = len(slacks)
	res.SlackCorr = stats.Pearson(slacks, inflations)
	return res, nil
}
