// Package experiments reproduces the paper's evaluation (Section 5). Each
// figure of the paper maps to a runner here:
//
//	Fig. 2  EvolutionTrace with robust.MinMakespan — makespan/slack/R1
//	        log-ratio trajectories of a GA minimizing the makespan.
//	Fig. 3  EvolutionTrace with robust.MaxSlack — the same trajectories
//	        when maximizing slack.
//	Fig. 4  Sweep.Fig4 — improvement over HEFT at ε = 1.0 versus UL.
//	Fig. 5  Sweep.FigEpsImprovement(R1) — R1 improvement over ε = 1.0.
//	Fig. 6  Sweep.FigEpsImprovement(R2) — R2 improvement over ε = 1.0.
//	Fig. 7  Sweep.FigBestEps(R1) — ε maximizing overall performance vs r.
//	Fig. 8  Sweep.FigBestEps(R2) — same with R2.
//
// A single Sweep (GA runs over the UL × ε grid plus a HEFT baseline per
// graph, all Monte-Carlo evaluated under common random numbers) feeds
// figures 4–8, mirroring how the paper reuses one set of runs.
//
// Scale: the paper uses 100 random graphs × 1000 realizations × 1000 GA
// generations. Default() is scaled down to run in seconds; PaperScale()
// restores the published parameters.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"robsched/internal/gen"
	"robsched/internal/obs"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/scenario"
	"robsched/internal/schedule"
	"robsched/internal/sim"
	"robsched/internal/stats"
)

// Config parameterizes every experiment runner.
type Config struct {
	// Seed anchors all randomness; the same seed regenerates every table.
	Seed uint64
	// Graphs is the number of random task graphs averaged per data point
	// (paper: 100).
	Graphs int
	// Realizations is the Monte-Carlo sample count per schedule
	// (paper: 1000).
	Realizations int
	// Gen generates the workloads; MeanUL is overridden by ULs.
	Gen gen.Params
	// ULs is the uncertainty-level grid (paper: 2, 4, 6, 8).
	ULs []float64
	// Eps is the ε grid for the constraint sweeps (paper: 1.0 .. 2.0).
	Eps []float64
	// RGrid is the overall-performance weight grid for Figs. 7–8.
	RGrid []float64
	// GA carries the genetic-algorithm parameters (mode and ε are set by
	// each runner).
	GA robust.Options
	// TraceEvery samples the evolution traces of Figs. 2–3 every k
	// generations (the endpoints are always included).
	TraceEvery int
	// Workers caps experiment-level parallelism; 0 means GOMAXPROCS.
	Workers int
	// Obs and Trace, when non-nil, are threaded into every solver, fault
	// executor and Monte-Carlo engine call the runners make, aggregating
	// the whole experiment's telemetry into one registry/trace. Counter
	// totals stay deterministic — graphs run in parallel but each graph's
	// counts are fixed and counter addition commutes.
	Obs   *obs.Registry
	Trace *obs.Tracer
	// Sim, when non-nil, replaces sim.EvaluateAll as the Monte-Carlo
	// evaluator every runner calls — the hook dist.Coordinator.EvaluateAll
	// plugs into to shard realizations across worker processes. Any
	// substitute must be bit-identical to the in-process engine (the dist
	// coordinator is) or the tables change. It must be safe for concurrent
	// calls: runners evaluate several graphs at once.
	Sim func(ss []*schedule.Schedule, opt sim.Options, root *rng.Source) ([]sim.Metrics, error)
	// Scenario, when non-nil, selects the workload family every runner
	// generates (layered-random or a workflow shape) and the duration model
	// every Monte-Carlo evaluation samples from (uniform, heavy-tailed,
	// correlated — the -scenario flag of the CLIs). Nil is the paper's
	// path, bit-identical to a config that never heard of scenarios.
	Scenario *scenario.Scenario
}

// Default returns a configuration that reproduces every figure's shape in
// seconds rather than hours: fewer graphs, fewer realizations, a shorter
// GA, and a smaller ε grid.
func Default() Config {
	p := gen.PaperParams()
	p.N = 50
	p.M = 4
	ga := robust.PaperOptions(robust.EpsilonConstraint, 1.0)
	ga.PopSize = 16
	ga.MaxGenerations = 120
	ga.Stagnation = 0
	return Config{
		Seed:         1,
		Graphs:       6,
		Realizations: 300,
		Gen:          p,
		ULs:          []float64{2, 4, 6, 8},
		Eps:          []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0},
		RGrid:        []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		GA:           ga,
		TraceEvery:   10,
	}
}

// PaperScale returns the published experimental scale (Section 5):
// n=100 tasks, 100 graphs, 1000 realizations, Np=20, 1000 generations,
// ε in {1.0, 1.2, ..., 2.0}. Expect hours of CPU time.
func PaperScale() Config {
	c := Default()
	c.Gen = gen.PaperParams()
	c.Graphs = 100
	c.Realizations = 1000
	c.GA = robust.PaperOptions(robust.EpsilonConstraint, 1.0)
	c.GA.Stagnation = 0 // traces need the full horizon
	c.TraceEvery = 50
	return c
}

func (c Config) validate() error {
	switch {
	case c.Graphs < 1:
		return fmt.Errorf("experiments: Graphs=%d must be >= 1", c.Graphs)
	case c.Realizations < 1:
		return fmt.Errorf("experiments: Realizations=%d must be >= 1", c.Realizations)
	case len(c.ULs) == 0:
		return fmt.Errorf("experiments: empty UL grid")
	case c.TraceEvery < 1:
		return fmt.Errorf("experiments: TraceEvery=%d must be >= 1", c.TraceEvery)
	}
	for _, ul := range c.ULs {
		if ul < 1 {
			return fmt.Errorf("experiments: UL=%g must be >= 1", ul)
		}
	}
	return c.Gen.Validate()
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// gaOptions returns the configured GA options with zero fields replaced by
// the paper defaults, so partially filled configs stay usable.
func (c Config) gaOptions() robust.Options {
	opt := c.GA
	def := robust.PaperOptions(robust.EpsilonConstraint, 1.0)
	if opt.PopSize == 0 {
		opt.PopSize = def.PopSize
	}
	if opt.CrossoverRate == 0 {
		opt.CrossoverRate = def.CrossoverRate
	}
	if opt.MutationRate == 0 {
		opt.MutationRate = def.MutationRate
	}
	if opt.MaxGenerations == 0 {
		opt.MaxGenerations = def.MaxGenerations
	}
	opt.Obs = c.Obs
	opt.Trace = c.Trace
	return opt
}

// simOptions returns the Monte-Carlo options every runner evaluates with,
// carrying the experiment-wide telemetry sinks and, when a scenario is
// configured, its duration-model overlay.
func (c Config) simOptions() sim.Options {
	opt := sim.Options{Realizations: c.Realizations, Obs: c.Obs, Trace: c.Trace}
	if c.Scenario != nil {
		opt = c.Scenario.Apply(opt)
	}
	return opt
}

// evaluateAll runs the Monte-Carlo evaluation through the configured Sim
// hook, defaulting to the in-process engine.
func (c Config) evaluateAll(ss []*schedule.Schedule, opt sim.Options, root *rng.Source) ([]sim.Metrics, error) {
	if c.Sim != nil {
		return c.Sim(ss, opt, root)
	}
	return sim.EvaluateAll(ss, opt, root)
}

// graphSeed derives the deterministic workload seed for graph g at
// uncertainty level index u, independent of scheduling order.
func (c Config) graphSeed(u, g int) uint64 {
	return c.Seed ^ (uint64(u+1) * 0x9e3779b97f4a7c15) ^ (uint64(g+1) * 0xc2b2ae3d27d4eb4f)
}

// workload builds the g-th workload at the given mean uncertainty level,
// routed through the configured scenario's family generator (nil and the
// "random" family both mean gen.Random, same draws, bit for bit).
func (c Config) workload(u, g int, ul float64) (*platform.Workload, error) {
	p := c.Gen
	p.MeanUL = ul
	r := rng.New(c.graphSeed(u, g))
	if c.Scenario != nil {
		return c.Scenario.Workload(p, r)
	}
	return gen.Random(p, r)
}

// Series is one named curve: aligned X and Y vectors.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// parallelFor runs f(i) for i in [0, n) across the configured workers and
// returns the first error.
func (c Config) parallelFor(n int, f func(i int) error) error {
	nw := c.workers()
	if nw > n {
		nw = n
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < nw; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := k; i < n; i += nw {
				errs[i] = f(i)
			}
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// meanFinite averages xs ignoring NaN; returns NaN if nothing remains.
func meanFinite(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Metric selects which robustness metric a figure reports.
type Metric int

const (
	R1 Metric = iota // inverse expected relative tardiness (Def. 3.6)
	R2               // inverse miss rate (Def. 3.7)
)

func (m Metric) String() string {
	if m == R2 {
		return "R2"
	}
	return "R1"
}

func metricOf(ms sim.Metrics, m Metric) float64 {
	if m == R2 {
		return ms.R2
	}
	return ms.R1
}

func fmtUL(ul float64) string { return fmt.Sprintf("UL=%.1f", ul) }

var _ = stats.Mean // stats is used by the sibling files
