package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// FormatSeries renders a set of series sharing one X grid as an aligned
// text table: one row per X value, one column per series. This is the
// "figure" output of the harness — same axes and series as the paper's
// plots, as numbers.
func FormatSeries(title, xlabel string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	if len(series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	// Header.
	fmt.Fprintf(&b, "%-10s", xlabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %14s", truncate(s.Name, 14))
	}
	b.WriteByte('\n')
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-10.4g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %14s", fmtVal(s.Y[i]))
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteCSV emits the series as CSV with an x column followed by one column
// per series, for external plotting.
func WriteCSV(w io.Writer, xlabel string, series []Series) error {
	cols := []string{csvEscape(xlabel)}
	for _, s := range series {
		cols = append(cols, csvEscape(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	if len(series) == 0 {
		return nil
	}
	for i := range series[0].X {
		row := []string{fmt.Sprintf("%g", series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%g", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func fmtVal(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmt.Sprintf("%.6g", v)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}
