package experiments

// Correlated-uncertainty experiment: how much of slack-based robustness
// survives when the paper's independence assumption is dropped? For every
// graph, a HEFT baseline and the slack-optimizing ε-constraint GA schedule
// are evaluated twice per load level under equal marginal variance — once
// with independent per-entry load factors (CorrIndep) and once with a
// shared per-processor factor (CorrShared). The marginals of every duration
// are identical across the pair by construction (internal/sim), so any gap
// is purely the cross-task correlation the paper's model cannot express.
//
// The expected headline: under independence, per-task noise averages out
// across a schedule's many tasks and the planned slack absorbs what is
// left; a shared processor factor cannot be averaged away, so tardiness and
// miss rates degrade sharply while the same schedule on the same marginals
// looked robust under the independence assumption.

import (
	"fmt"
	"strings"

	"robsched/internal/heft"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/sim"
)

// CorrGapConfig parameterizes the correlation-gap experiment.
type CorrGapConfig struct {
	// LoadCOVs is the shared-load coefficient-of-variation grid; empty
	// defaults to {0.15, 0.3, 0.45, 0.6}.
	LoadCOVs []float64
	// UL is the mean uncertainty level of the generated workloads; 0
	// defaults to the middle of the config's UL grid.
	UL float64
	// Eps relaxes the GA's makespan constraint (M0 ≤ ε·M_HEFT); 0
	// defaults to 1.4, the same budget the fault experiment uses.
	Eps float64
}

// DefaultCorrGapConfig returns the default load grid.
func DefaultCorrGapConfig() CorrGapConfig {
	return CorrGapConfig{LoadCOVs: []float64{0.15, 0.3, 0.45, 0.6}}
}

// CorrGapRow aggregates one load level across all graphs. Tardiness is the
// paper's mean relative tardiness E[max(0, M−M0)/M0] (R1's reciprocal,
// reported directly so rows stay finite when nothing is tardy), Miss the
// M0 miss rate, and P95 the 95th-percentile makespan normalized by M0.
type CorrGapRow struct {
	LoadCOV float64

	GaTardIndep, GaTardShared float64
	GaMissIndep, GaMissShared float64
	GaP95Indep, GaP95Shared   float64

	HeftTardIndep, HeftTardShared float64
	HeftP95Indep, HeftP95Shared   float64
}

// CorrGapResult is the experiment outcome.
type CorrGapResult struct {
	Rows   []CorrGapRow
	Graphs int
	// Family names the workload family the rows were generated from.
	Family string
}

// String renders the result as an aligned text table.
func (r *CorrGapResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Correlated vs independent load at equal marginal variance (%d graphs, family %s)\n",
		r.Graphs, r.Family)
	fmt.Fprintf(&b, "%-8s %11s %11s %11s %11s %10s %10s %10s %10s\n",
		"loadCOV", "gaTardInd", "gaTardShr", "gaMissInd", "gaMissShr", "gaP95Ind", "gaP95Shr", "heftP95Ind", "heftP95Shr")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8.2f %11.4f %11.4f %11.4f %11.4f %10.4f %10.4f %10.4f %10.4f\n",
			row.LoadCOV, row.GaTardIndep, row.GaTardShared, row.GaMissIndep, row.GaMissShared,
			row.GaP95Indep, row.GaP95Shared, row.HeftP95Indep, row.HeftP95Shared)
	}
	return b.String()
}

// Series returns the result as plottable curves (mean relative tardiness of
// each schedule under each dependence structure, versus load COV).
func (r *CorrGapResult) Series() []Series {
	x := make([]float64, len(r.Rows))
	curves := map[string][]float64{
		"GA indep": nil, "GA shared": nil, "HEFT indep": nil, "HEFT shared": nil,
	}
	for i, row := range r.Rows {
		x[i] = row.LoadCOV
		curves["GA indep"] = append(curves["GA indep"], row.GaTardIndep)
		curves["GA shared"] = append(curves["GA shared"], row.GaTardShared)
		curves["HEFT indep"] = append(curves["HEFT indep"], row.HeftTardIndep)
		curves["HEFT shared"] = append(curves["HEFT shared"], row.HeftTardShared)
	}
	return []Series{
		{Name: "GA indep", X: x, Y: curves["GA indep"]},
		{Name: "GA shared", X: x, Y: curves["GA shared"]},
		{Name: "HEFT indep", X: x, Y: curves["HEFT indep"]},
		{Name: "HEFT shared", X: x, Y: curves["HEFT shared"]},
	}
}

// CorrelationGap runs the experiment. The GA solves once per graph (the
// schedule is fixed before the evaluation regime varies, like a planner
// that believes the independence assumption); each load level then
// evaluates the same schedules under both dependence structures with the
// same evaluation seed. The workload family follows Config.Scenario, so
// the gap can be measured on workflow shapes as well as random layers; the
// duration model is forced to the uniform marginals both correlation modes
// share.
func (c Config) CorrelationGap(gc CorrGapConfig) (*CorrGapResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	covs := gc.LoadCOVs
	if len(covs) == 0 {
		covs = DefaultCorrGapConfig().LoadCOVs
	}
	for _, cov := range covs {
		if !(cov > 0) {
			return nil, fmt.Errorf("experiments: LoadCOV=%g must be > 0", cov)
		}
	}
	ul := gc.UL
	if ul == 0 {
		ul = c.ULs[len(c.ULs)/2]
	}
	gaOpt := c.gaOptions()
	gaOpt.Mode = robust.EpsilonConstraint
	gaOpt.Eps = gc.Eps
	if gaOpt.Eps == 0 {
		gaOpt.Eps = 1.4
	}

	type cell struct {
		gaTard, gaMiss, gaP95       float64
		heftTard, heftMiss, heftP95 float64
	}
	// cells[graph][cov][corr] with corr 0 = indep, 1 = shared.
	cells := make([][][2]cell, c.Graphs)
	err := c.parallelFor(c.Graphs, func(g int) error {
		w, err := c.workload(0, g, ul)
		if err != nil {
			return err
		}
		hs, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			return err
		}
		ga, err := robust.Solve(w, gaOpt, rng.New(c.graphSeed(0, g)^0xc0a))
		if err != nil {
			return err
		}
		ss := []*schedule.Schedule{hs, ga.Schedule}
		cells[g] = make([][2]cell, len(covs))
		for ci, cov := range covs {
			for corr, mode := range []sim.Correlation{sim.CorrIndep, sim.CorrShared} {
				opt := c.simOptions()
				opt.Model = sim.ModelUniform // both regimes share uniform marginals
				opt.Corr = mode
				opt.LoadCOV = cov
				// One seed per (graph, cov): the indep/shared pair shares
				// the realization seed vector, isolating the dependence
				// structure as the only difference.
				ms, err := c.evaluateAll(ss, opt, rng.New(c.graphSeed(0, g)^(0xc0b+uint64(ci))))
				if err != nil {
					return err
				}
				cells[g][ci][corr] = cell{
					heftTard: ms[0].MeanTardiness,
					heftMiss: ms[0].MissRate,
					heftP95:  ms[0].P95 / ms[0].M0,
					gaTard:   ms[1].MeanTardiness,
					gaMiss:   ms[1].MissRate,
					gaP95:    ms[1].P95 / ms[1].M0,
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	family := "random"
	if c.Scenario != nil {
		family = c.Scenario.Family
	}
	res := &CorrGapResult{Graphs: c.Graphs, Family: family}
	for ci, cov := range covs {
		row := CorrGapRow{LoadCOV: cov}
		for g := 0; g < c.Graphs; g++ {
			ind, shr := cells[g][ci][0], cells[g][ci][1]
			row.GaTardIndep += ind.gaTard
			row.GaTardShared += shr.gaTard
			row.GaMissIndep += ind.gaMiss
			row.GaMissShared += shr.gaMiss
			row.GaP95Indep += ind.gaP95
			row.GaP95Shared += shr.gaP95
			row.HeftTardIndep += ind.heftTard
			row.HeftTardShared += shr.heftTard
			row.HeftP95Indep += ind.heftP95
			row.HeftP95Shared += shr.heftP95
		}
		gf := float64(c.Graphs)
		row.GaTardIndep /= gf
		row.GaTardShared /= gf
		row.GaMissIndep /= gf
		row.GaMissShared /= gf
		row.GaP95Indep /= gf
		row.GaP95Shared /= gf
		row.HeftTardIndep /= gf
		row.HeftTardShared /= gf
		row.HeftP95Indep /= gf
		row.HeftP95Shared /= gf
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
