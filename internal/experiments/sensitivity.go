package experiments

import (
	"fmt"

	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/stats"
)

// SensitivityParam selects which workload knob a sensitivity sweep varies.
// The paper fixes CCR = 0.1, shape α = 1.0 and one platform; these sweeps
// answer the natural follow-up of how the robustness gains transfer.
type SensitivityParam int

const (
	// SweepCCR varies the communication-to-computation ratio.
	SweepCCR SensitivityParam = iota
	// SweepShape varies the graph shape parameter α (tall vs wide DAGs).
	SweepShape
	// SweepProcs varies the processor count.
	SweepProcs
)

func (p SensitivityParam) String() string {
	switch p {
	case SweepCCR:
		return "CCR"
	case SweepShape:
		return "shape"
	case SweepProcs:
		return "procs"
	default:
		return fmt.Sprintf("SensitivityParam(%d)", int(p))
	}
}

// Sensitivity sweeps one workload parameter at the first configured
// uncertainty level and reports, per grid value, the ε-constraint GA's
// realized R1 improvement over HEFT (ln ratio) and its makespan ratio
// M0/M_HEFT. Returned series (x = parameter value): "lnR1-improvement",
// "M0/MHEFT".
func (c Config) Sensitivity(param SensitivityParam, grid []float64, eps float64) ([]Series, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(grid) == 0 {
		return nil, fmt.Errorf("experiments: empty sensitivity grid")
	}
	if eps <= 0 {
		eps = 1.4
	}
	ul := c.ULs[0]
	base := c.gaOptions()
	base.Mode = robust.EpsilonConstraint
	base.Eps = eps
	r1Y := make([]float64, len(grid))
	m0Y := make([]float64, len(grid))
	for gi, val := range grid {
		cfg := c
		cfg.Gen = c.Gen // copy
		switch param {
		case SweepCCR:
			cfg.Gen.CCR = val
		case SweepShape:
			cfg.Gen.Shape = val
		case SweepProcs:
			cfg.Gen.M = int(val)
			if cfg.Gen.M < 1 {
				return nil, fmt.Errorf("experiments: processor count %g invalid", val)
			}
		default:
			return nil, fmt.Errorf("experiments: unknown sensitivity parameter %v", param)
		}
		if err := cfg.Gen.Validate(); err != nil {
			return nil, err
		}
		r1s := make([]float64, cfg.Graphs)
		m0s := make([]float64, cfg.Graphs)
		err := cfg.parallelFor(cfg.Graphs, func(g int) error {
			w, err := cfg.workload(gi+100, g, ul)
			if err != nil {
				return err
			}
			res, err := robust.Solve(w, base, rng.New(cfg.graphSeed(gi+100, g)^0x5e51))
			if err != nil {
				return err
			}
			ms, err := cfg.evaluateAll(
				[]*schedule.Schedule{res.Schedule, res.HEFT},
				cfg.simOptions(),
				rng.New(cfg.graphSeed(gi+100, g)^0x5e52))
			if err != nil {
				return err
			}
			r1s[g] = stats.LogRatio(ms[0].R1, ms[1].R1)
			m0s[g] = res.Schedule.Makespan() / res.MHEFT
			return nil
		})
		if err != nil {
			return nil, err
		}
		r1Y[gi] = meanFinite(r1s)
		m0Y[gi] = stats.Mean(m0s)
	}
	x := append([]float64(nil), grid...)
	return []Series{
		{Name: "lnR1-improvement", X: x, Y: r1Y},
		{Name: "M0/MHEFT", X: x, Y: m0Y},
	}, nil
}
