package experiments

import (
	"math"
	"strings"
	"testing"

	"robsched/internal/scenario"
)

// tinyCorrGapConfig shrinks the correlation-gap experiment to seconds.
func tinyCorrGapConfig(t *testing.T) (Config, CorrGapConfig) {
	t.Helper()
	c := Default()
	c.Graphs = 3
	c.Realizations = 400
	c.Gen.N = 30
	c.GA.PopSize = 8
	c.GA.MaxGenerations = 20
	gc := CorrGapConfig{LoadCOVs: []float64{0.2, 0.5}}
	return c, gc
}

func TestCorrelationGap(t *testing.T) {
	c, gc := tinyCorrGapConfig(t)
	res, err := c.CorrelationGap(gc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(gc.LoadCOVs) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(gc.LoadCOVs))
	}
	if res.Family != "random" {
		t.Fatalf("family %q, want random", res.Family)
	}
	for _, row := range res.Rows {
		for name, v := range map[string]float64{
			"gaTardIndep":  row.GaTardIndep,
			"gaTardShared": row.GaTardShared,
			"gaP95Indep":   row.GaP95Indep,
			"gaP95Shared":  row.GaP95Shared,
			"heftP95":      row.HeftP95Indep,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("loadCOV=%g: %s = %g", row.LoadCOV, name, v)
			}
		}
		// The headline regression: at equal marginal variance, correlated
		// load strictly degrades tail behavior relative to independent noise.
		if !(row.GaP95Shared > row.GaP95Indep) {
			t.Errorf("loadCOV=%g: GA P95 shared %g !> indep %g",
				row.LoadCOV, row.GaP95Shared, row.GaP95Indep)
		}
		if !(row.HeftP95Shared > row.HeftP95Indep) {
			t.Errorf("loadCOV=%g: HEFT P95 shared %g !> indep %g",
				row.LoadCOV, row.HeftP95Shared, row.HeftP95Indep)
		}
	}
	// The gap must widen with the load COV (more shared variance, worse tail).
	if !(res.Rows[1].GaP95Shared-res.Rows[1].GaP95Indep >
		res.Rows[0].GaP95Shared-res.Rows[0].GaP95Indep) {
		t.Errorf("correlation gap did not widen with load COV: %+v", res.Rows)
	}

	out := res.String()
	for _, want := range []string{"loadCOV", "gaTardShr", "random"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if got := res.Series(); len(got) != 4 {
		t.Fatalf("series count %d, want 4", len(got))
	}

	again, err := c.CorrelationGap(gc)
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Fatal("correlation-gap experiment not reproducible")
	}
}

func TestCorrelationGapScenarioFamily(t *testing.T) {
	c, gc := tinyCorrGapConfig(t)
	c.Graphs = 2
	c.Realizations = 120
	gc.LoadCOVs = []float64{0.4}
	s, err := scenario.Lookup("montage")
	if err != nil {
		t.Fatal(err)
	}
	c.Scenario = &s
	res, err := c.CorrelationGap(gc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Family != "montage" {
		t.Fatalf("family %q, want montage", res.Family)
	}
	if !(res.Rows[0].GaP95Shared > res.Rows[0].GaP95Indep) {
		t.Errorf("montage: GA P95 shared %g !> indep %g",
			res.Rows[0].GaP95Shared, res.Rows[0].GaP95Indep)
	}
}

func TestCorrelationGapValidation(t *testing.T) {
	c, gc := tinyCorrGapConfig(t)
	gc.LoadCOVs = []float64{0.2, -1}
	if _, err := c.CorrelationGap(gc); err == nil {
		t.Error("negative LoadCOV accepted")
	}
	bad := c
	bad.Graphs = 0
	if _, err := bad.CorrelationGap(CorrGapConfig{}); err == nil {
		t.Error("Graphs=0 accepted")
	}
}

// TestScenarioConfigWiring pins the Config.Scenario plumbing: the workload
// router swaps in the family generator, the sim overlay reaches simOptions,
// and the manifest records the scenario name (and omits it by default).
func TestScenarioConfigWiring(t *testing.T) {
	c := Default()
	if m := c.Manifest(nil); m.Config.Scenario != "" {
		t.Errorf("default manifest carries scenario %q", m.Config.Scenario)
	}
	s, err := scenario.Lookup("epigenomics-lognormal")
	if err != nil {
		t.Fatal(err)
	}
	c.Scenario = &s
	if m := c.Manifest(nil); m.Config.Scenario != "epigenomics-lognormal" {
		t.Errorf("manifest scenario %q", m.Config.Scenario)
	}
	opt := c.simOptions()
	if opt.Model.String() != "lognormal" {
		t.Errorf("simOptions model %v, want lognormal", opt.Model)
	}
	w, err := c.workload(0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Epigenomics emits 3W+4 tasks for derived width W — never more than
	// the configured budget and structurally not a layered-random count.
	if w.N() > c.Gen.N || (w.N()-4)%3 != 0 {
		t.Errorf("scenario workload has %d tasks (budget %d)", w.N(), c.Gen.N)
	}
}
