package robust

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"robsched/internal/ga"
	"robsched/internal/obs"
	"robsched/internal/rng"
)

func solveStats(t *testing.T, workers int, islands int) ([]ga.GenStats, *obs.Snapshot, *Result) {
	t.Helper()
	w := testWorkload(t, 4242, 25, 4)
	var got []ga.GenStats
	reg := obs.NewRegistry()
	opt := Options{
		Mode:    MinMakespan,
		PopSize: 16, CrossoverRate: 0.9, MutationRate: 0.1,
		MaxGenerations: 40, Stagnation: 0,
		Workers:  workers,
		Islands:  islands,
		Obs:      reg,
		Observer: ga.ObserverFunc(func(s ga.GenStats) { got = append(got, s) }),
	}
	res, err := Solve(w, opt, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	return got, &snap, res
}

// TestObserverWorkerIndependence is the PR's central property test: the
// observer trajectory — every GenStats field, in order — and the registry
// snapshot must be bit-identical for Workers=1 and Workers=4, because all
// observed values are computed serially from the decoded population.
func TestObserverWorkerIndependence(t *testing.T) {
	s1, snap1, r1 := solveStats(t, 1, 0)
	s4, snap4, r4 := solveStats(t, 4, 0)
	if !reflect.DeepEqual(s1, s4) {
		t.Fatal("observer trajectories differ between Workers=1 and Workers=4")
	}
	if !reflect.DeepEqual(snap1, snap4) {
		t.Fatalf("registry snapshots differ:\n1: %+v\n4: %+v", snap1, snap4)
	}
	if r1.Schedule.Makespan() != r4.Schedule.Makespan() {
		t.Fatal("results differ between worker counts")
	}
}

// TestObserverIslandsDeterministic runs the island solver twice with
// identical configuration: the ordered trajectory and the registry snapshot
// must both reproduce exactly.
func TestObserverIslandsDeterministic(t *testing.T) {
	a, snapA, _ := solveStats(t, 4, 3)
	b, snapB, _ := solveStats(t, 4, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("island observer trajectories differ between identical runs")
	}
	if !reflect.DeepEqual(snapA, snapB) {
		t.Fatalf("island registry snapshots differ:\n%+v\n%+v", snapA, snapB)
	}
	// 3 islands, 40 generations each, plus gen 0 per island.
	if len(a) != 3*41 {
		t.Fatalf("observed %d stats, want %d", len(a), 3*41)
	}
}

// TestRegistryCountsMatchRun cross-checks the registry against ground truth
// from the run itself: ga.generations equals the result's generation count,
// operator counters equal the trajectory totals, and the cache counters
// partition the trajectory's lookups.
func TestRegistryCountsMatchRun(t *testing.T) {
	stats, snap, res := solveStats(t, 0, 0)
	if got, want := snap.Counters["ga.generations"], int64(res.Generations); got != want {
		t.Fatalf("ga.generations = %d, want %d", got, want)
	}
	var cross, mut int64
	for _, s := range stats {
		cross += int64(s.Crossovers)
		mut += int64(s.Mutations)
	}
	if snap.Counters["ga.crossovers"] != cross || snap.Counters["ga.mutations"] != mut {
		t.Fatalf("operator counters = %d/%d, want %d/%d",
			snap.Counters["ga.crossovers"], snap.Counters["ga.mutations"], cross, mut)
	}
	if snap.Counters["cache.hits"]+snap.Counters["cache.misses"] == 0 {
		t.Fatal("cache counters are empty — cache traffic not recorded")
	}
	last := stats[len(stats)-1]
	if g := snap.Gauges["ga.best_fitness"]; g != last.Best {
		t.Fatalf("ga.best_fitness = %g, want %g", g, last.Best)
	}
	if d := snap.Gauges["ga.diversity"]; math.IsNaN(d) || d <= 0 || d > 1 {
		t.Fatalf("ga.diversity = %g, want in (0,1]", d)
	}
}

// TestCacheStatsCounters drives the cache directly and checks the traffic
// counters, including the collision fallback via an injected constant key.
func TestCacheStatsCounters(t *testing.T) {
	w := testWorkload(t, 4300, 10, 3)
	r := rng.New(9)
	a, b := Random(w, r), Random(w, r)
	mc := NewMetricsCache()
	ka := mc.key(a)
	if _, ok := mc.lookup(ka, a); ok {
		t.Fatal("lookup in empty cache must miss")
	}
	mc.insert(ka, a, schedMetrics{m0: 1})
	if _, ok := mc.lookup(ka, a); !ok {
		t.Fatal("lookup after insert must hit")
	}
	st := mc.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Collisions != 0 {
		t.Fatalf("stats = %+v, want hits=1 misses=1 collisions=0", st)
	}

	// Constant key: two distinct genotypes share a fingerprint, so the
	// second lookup walks a non-empty bucket and must count a collision.
	col := NewMetricsCache()
	col.keyFn = func(*Chromosome) uint64 { return 7 }
	col.insert(7, a, schedMetrics{m0: 1})
	if _, ok := col.lookup(7, b); ok {
		t.Fatal("distinct genotype must not hit despite equal key")
	}
	if st := col.Stats(); st.Collisions != 1 || st.Misses != 1 {
		t.Fatalf("collision stats = %+v, want collisions=1 misses=1", st)
	}

	var nilCache *MetricsCache
	if nilCache.Stats() != (CacheStats{}) {
		t.Fatal("nil cache stats must be zero")
	}
	if d := (CacheStats{Hits: 5, Misses: 3}).Sub(CacheStats{Hits: 2, Misses: 1}); d.Hits != 3 || d.Misses != 2 {
		t.Fatalf("Sub = %+v", d)
	}
}

// TestSolveTraceEvents runs a traced solve and checks the JSONL stream:
// parseable, one ga/generation event per observed generation, the
// cache/stats event, and the robust/solve span.
func TestSolveTraceEvents(t *testing.T) {
	w := testWorkload(t, 4400, 15, 3)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf, 0)
	opt := Options{
		Mode:    MinMakespan,
		PopSize: 12, CrossoverRate: 0.9, MutationRate: 0.1,
		MaxGenerations: 10, Stagnation: 0,
		Trace: tr,
	}
	res, err := Solve(w, opt, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	var genEvents, cacheEvents, solveSpans int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec obs.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		switch {
		case rec.Scope == "ga" && rec.Name == "generation":
			genEvents++
		case rec.Scope == "cache" && rec.Name == "stats":
			cacheEvents++
		case rec.Scope == "robust" && rec.Name == "solve" && rec.Kind == "span":
			solveSpans++
		}
	}
	if genEvents != res.Generations+1 {
		t.Fatalf("trace has %d generation events, want %d", genEvents, res.Generations+1)
	}
	if cacheEvents != 1 || solveSpans != 1 {
		t.Fatalf("cache events = %d, solve spans = %d, want 1/1", cacheEvents, solveSpans)
	}
}
