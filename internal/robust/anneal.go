package robust

import (
	"fmt"
	"math"

	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// AnnealOptions configures the simulated-annealing comparator. The paper
// lists simulated annealing next to genetic algorithms among the guided
// random search methods for task scheduling (Section 1); this solver runs
// SA over the same chromosome and neighbourhood (the GA's mutation
// operator) and the same ε-constraint objective, isolating the
// search-strategy choice from everything else.
type AnnealOptions struct {
	// Eps is the makespan bound M0 ≤ Eps·M_HEFT.
	Eps float64
	// SlackMetric selects the robustness surrogate (paper: AvgSlack).
	SlackMetric SlackMetric
	// Steps is the number of proposals (default 20000).
	Steps int
	// InitialTemp and FinalTemp bound the geometric cooling schedule,
	// expressed as fractions of the initial solution's slack scale.
	// Defaults: 1.0 and 1e-3.
	InitialTemp, FinalTemp float64
	// NoHEFTSeed starts from a random chromosome instead of HEFT's.
	NoHEFTSeed bool
}

// PaperishAnnealOptions returns an SA budget comparable to the paper's GA
// (Np=20 × 1000 generations = 20000 evaluations).
func PaperishAnnealOptions(eps float64) AnnealOptions {
	return AnnealOptions{Eps: eps, Steps: 20000, InitialTemp: 1, FinalTemp: 1e-3}
}

// SolveAnneal runs simulated annealing under the ε-constraint objective:
// maximize slack with infeasible states penalized by their violation. The
// energy of a state s is
//
//	E(s) = −slack(s)            if M0(s) ≤ ε·M_HEFT
//	E(s) = violation·scale      otherwise
//
// so every feasible state has lower energy than every infeasible one.
func SolveAnneal(w *platform.Workload, opt AnnealOptions, r *rng.Source) (*Result, error) {
	if opt.Eps <= 0 {
		return nil, fmt.Errorf("robust: SolveAnneal needs Eps > 0, got %g", opt.Eps)
	}
	if opt.Steps == 0 {
		opt.Steps = 20000
	}
	if opt.Steps < 1 {
		return nil, fmt.Errorf("robust: Steps=%d must be >= 1", opt.Steps)
	}
	if opt.InitialTemp == 0 {
		opt.InitialTemp = 1
	}
	if opt.FinalTemp == 0 {
		opt.FinalTemp = 1e-3
	}
	if opt.InitialTemp < opt.FinalTemp || opt.FinalTemp <= 0 {
		return nil, fmt.Errorf("robust: temperatures (%g, %g) invalid", opt.InitialTemp, opt.FinalTemp)
	}
	hs, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		return nil, err
	}
	mheft := hs.Makespan()
	bound := opt.Eps * mheft
	slackOf := func(s *schedule.Schedule) float64 {
		if opt.SlackMetric == MinSlack {
			return s.MinSlack()
		}
		return s.AvgSlack()
	}
	// Energy: feasible states rank by slack; infeasible ones sit above any
	// feasible energy by construction (violation scaled by M_HEFT keeps
	// the units comparable).
	energy := func(s *schedule.Schedule) float64 {
		if s.Makespan() <= bound {
			return -slackOf(s)
		}
		return (s.Makespan() - bound) / mheft * (1 + mheft)
	}

	dec := schedule.NewDecoder(w)
	var cur *Chromosome
	if opt.NoHEFTSeed {
		cur = Random(w, r)
	} else {
		cur = FromSchedule(hs)
	}
	curS, err := cur.DecodeWith(dec)
	if err != nil {
		return nil, err
	}
	curE := energy(curS)
	bestS, bestE := curS, curE

	// Temperature scale anchored to the makespan bound so acceptance
	// probabilities are dimensionless across instances.
	scale := mheft
	cooling := math.Pow(opt.FinalTemp/opt.InitialTemp, 1/float64(opt.Steps))
	temp := opt.InitialTemp * scale
	for step := 0; step < opt.Steps; step++ {
		next, _ := Mutate(w, cur, r)
		nextS, err := next.DecodeWith(dec)
		if err != nil {
			return nil, err
		}
		nextE := energy(nextS)
		if nextE <= curE || r.Float64() < math.Exp((curE-nextE)/temp) {
			cur, curS, curE = next, nextS, nextE
			if curE < bestE {
				bestS, bestE = curS, curE
			}
		}
		temp *= cooling
	}
	return &Result{
		Schedule:    bestS,
		HEFT:        hs,
		MHEFT:       mheft,
		Generations: opt.Steps,
	}, nil
}
