package robust

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"robsched/internal/ga"
	"robsched/internal/heft"
	"robsched/internal/obs"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// Mode selects the GA objective.
type Mode int

const (
	// EpsilonConstraint maximizes slack subject to M0(s) <= ε·M_HEFT
	// (Eqn. 7/8) — the paper's bi-objective method.
	EpsilonConstraint Mode = iota
	// MinMakespan minimizes the expected makespan, the classical GA
	// objective used for the Fig. 2 experiment.
	MinMakespan
	// MaxSlack maximizes slack with no makespan constraint, used for the
	// Fig. 3 experiment.
	MaxSlack
)

func (m Mode) String() string {
	switch m {
	case EpsilonConstraint:
		return "epsilon-constraint"
	case MinMakespan:
		return "min-makespan"
	case MaxSlack:
		return "max-slack"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SlackMetric selects the robustness surrogate maximized by the GA.
type SlackMetric int

const (
	// AvgSlack is the paper's surrogate (Eqn. 3).
	AvgSlack SlackMetric = iota
	// MinSlack is a more conservative extension: the smallest task slack.
	MinSlack
)

// Options configures the robust scheduler. ZeroOptions-with-PaperDefaults is
// the paper's configuration.
type Options struct {
	Mode        Mode
	Eps         float64     // ε of the constraint method (paper sweeps 1.0..2.0)
	SlackMetric SlackMetric // robustness surrogate (paper: AvgSlack)

	// GA parameters (Section 5: Np=20, pc=0.9, pm=0.1, 1000 generations,
	// 100-generation stagnation window).
	PopSize        int
	CrossoverRate  float64
	MutationRate   float64
	MaxGenerations int
	Stagnation     int

	// NoHEFTSeed drops the HEFT chromosome from the initial population
	// (ablation; the paper always seeds it).
	NoHEFTSeed bool
	// Islands > 1 runs that many populations in parallel goroutines with
	// ring migration every MigrationEvery generations — an island-model
	// extension of the paper's single-population GA. Incompatible with
	// OnGeneration.
	Islands        int
	MigrationEvery int
	// NoElitism is reserved for engine-level ablation and currently unused;
	// elitism is integral to the engine.

	// Workers bounds the goroutines used to decode each population before
	// the fitness combination (0 = GOMAXPROCS, 1 = serial). Decoding is the
	// only parallel part; the fitness values — and therefore the whole GA
	// trajectory — are bit-identical for every setting.
	Workers int

	// HEFT supplies a precomputed baseline schedule for this exact
	// workload; nil makes Solve compute it. Threading the baseline through
	// lets experiments.RunSweep run HEFT once per graph instead of once per
	// (graph, ε) — the result is identical because HEFT is deterministic.
	HEFT *schedule.Schedule

	// Cache, if non-nil, is the genotype→metrics cache consulted before any
	// chromosome decode and filled after it. It may be shared across Solve
	// calls on the same workload (metrics are independent of Mode, ε and
	// SlackMetric) but never across workloads. Nil gives the run a private
	// cache; sharing only changes speed, never any result.
	Cache *MetricsCache

	// NoMetricsCache disables the metrics cache entirely (ablation and
	// property tests). The GA trajectory is bit-identical either way — the
	// cache only skips redundant decodes.
	NoMetricsCache bool

	// NoDeltaDecode forces every chromosome decode down the full path
	// instead of delta-decoding against the parent it diverged from
	// (ablation and property tests). Delta decodes are bit-identical to
	// full decodes, so the GA trajectory — and every recorded figure — is
	// unchanged either way; only speed differs.
	NoDeltaDecode bool

	// OnGeneration, if set, observes the best schedule of each generation
	// (generation 0 is the initial population). Used to trace Figs. 2–3.
	OnGeneration func(gen int, best *schedule.Schedule)

	// Obs, if non-nil, receives solver telemetry: per-generation engine
	// counters/gauges (ga.generations, ga.crossovers, ga.mutations,
	// ga.best_fitness, ga.mean_fitness, ga.diversity) and the metrics-cache
	// traffic of this run (cache.hits/misses/collisions/evictions). Every
	// registry value is a deterministic count over the GA trajectory —
	// independent of Workers and wall-clock — so snapshots reproduce across
	// runs. Nil disables with zero overhead.
	Obs *obs.Registry
	// Trace, if non-nil, receives structured records: one "ga/generation"
	// event per evaluated generation, a "cache/stats" event, and a
	// "robust/solve" span. Span durations are wall-clock and therefore not
	// reproducible (unlike Obs).
	Trace *obs.Tracer
	// Observer, if non-nil, receives the raw per-generation ga.GenStats.
	// Composes with Obs/Trace; supported with Islands (unlike OnGeneration),
	// with a trajectory that is bit-identical and identically ordered for
	// every Workers setting.
	Observer ga.Observer
}

// PaperOptions returns the paper's GA configuration for the given mode and ε.
func PaperOptions(mode Mode, eps float64) Options {
	return Options{
		Mode: mode, Eps: eps,
		PopSize: 20, CrossoverRate: 0.9, MutationRate: 0.1,
		MaxGenerations: 1000, Stagnation: 100,
	}
}

// Result is the outcome of a robust scheduling run.
type Result struct {
	// Schedule is the best schedule found by the GA.
	Schedule *schedule.Schedule
	// HEFT is the baseline schedule (also the GA seed unless disabled).
	HEFT *schedule.Schedule
	// MHEFT is the baseline's expected makespan (the constraint anchor).
	MHEFT float64
	// Generations actually evolved, and whether the stagnation window
	// triggered.
	Generations int
	Stagnated   bool
}

// HEFTBaseline computes the deterministic HEFT baseline schedule that
// anchors the ε-constraint and seeds the GA. Callers running several solves
// on the same workload (e.g. an ε grid) compute it once and thread it
// through Options.HEFT.
func HEFTBaseline(w *platform.Workload) (*schedule.Schedule, error) {
	hs, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		return nil, fmt.Errorf("robust: HEFT baseline failed: %w", err)
	}
	return hs, nil
}

// Solve runs the bi-objective GA on the workload and returns the best
// schedule under the selected objective.
func Solve(w *platform.Workload, opt Options, r *rng.Source) (*Result, error) {
	eng, err := NewEngine(w, opt)
	if err != nil {
		return nil, err
	}
	opt = eng.Opt
	eval := eng.eval
	cfg := eng.cfg
	if opt.OnGeneration != nil {
		on := opt.OnGeneration
		cfg.OnGeneration = func(gen int, pop []*Chromosome, fit []float64) {
			best := 0
			for i, f := range fit {
				if f > fit[best] {
					best = i
				}
			}
			on(gen, eval.schedOf(pop[best]))
		}
	}
	if opt.Trace != nil {
		defer opt.Trace.Scope("robust").Span("solve",
			obs.F("mode", float64(opt.Mode)),
			obs.F("pop", float64(opt.PopSize)),
			obs.F("max_generations", float64(opt.MaxGenerations)),
		)()
	}
	cachePre := eval.cache.Stats()
	var res ga.Result[*Chromosome]
	if opt.Islands > 1 {
		res, err = ga.RunIslands(ga.IslandConfig[*Chromosome]{
			Base:           cfg,
			Islands:        opt.Islands,
			MigrationEvery: opt.MigrationEvery,
		}, r)
	} else {
		res, err = ga.Run(cfg, r)
	}
	if err != nil {
		return nil, err
	}
	if eval.cache != nil && (opt.Obs != nil || opt.Trace != nil) {
		recordCacheStats(opt.Obs, opt.Trace, eval.cache.Stats().Sub(cachePre))
	}
	if opt.Obs != nil || opt.Trace != nil {
		recordDeltaStats(opt.Obs, opt.Trace, eval.deltaStats())
	}
	return eng.Result(res)
}

// runCustomFitness evolves the standard chromosome with an arbitrary
// per-schedule fitness function (larger is better). Used by the
// weighted-sum comparator; the ε-constraint path goes through Solve
// because its fitness is population-relative.
//
// Of the engine-level options it honors opt.Workers — each population's
// undecoded chromosomes fan out across that many goroutines, with results
// (and the whole trajectory) bit-identical for every setting — but NOT
// opt.Islands: the fitness is an opaque hook, so the run is always a single
// population (unlike Solve, which spawns islands). The post-elitism
// EvaluateOne path re-scores exactly one chromosome and therefore decodes
// serially on the calling goroutine; its value is the same fitness function,
// so EvaluateOne and Evaluate agree by construction. The genotype metrics
// cache does not apply here — the custom fitness needs the full schedule,
// which the per-chromosome decode memo already makes single-decode.
func runCustomFitness(w *platform.Workload, opt Options, r *rng.Source, seed *schedule.Schedule, fitness func(*schedule.Schedule) float64) (*Result, error) {
	dec := schedule.NewDecoder(w)
	schedOf := func(c *Chromosome) *schedule.Schedule {
		s, err := c.DecodeWith(dec)
		if err != nil {
			panic(err) // operators guarantee validity
		}
		return s
	}
	evaluateInto := func(pop []*Chromosome, fit []float64) {
		decodePopulation(dec, pop, opt.Workers)
		for i, c := range pop {
			fit[i] = fitness(schedOf(c))
		}
	}
	cfg := ga.Config[*Chromosome]{
		PopSize:        opt.PopSize,
		CrossoverRate:  opt.CrossoverRate,
		MutationRate:   opt.MutationRate,
		MaxGenerations: opt.MaxGenerations,
		Stagnation:     opt.Stagnation,
		Random:         func(r *rng.Source) *Chromosome { return Random(w, r) },
		Crossover:      crossoverGA,
		Mutate:         func(c *Chromosome, r *rng.Source) *Chromosome { out, _ := Mutate(w, c, r); return out },
		Key:            (*Chromosome).Key,
		Evaluate: func(pop []*Chromosome) []float64 {
			fit := make([]float64, len(pop))
			evaluateInto(pop, fit)
			return fit
		},
		EvaluateInto: evaluateInto,
		EvaluateOne:  func(c *Chromosome) float64 { return fitness(schedOf(c)) },
	}
	if seed != nil && !opt.NoHEFTSeed {
		cfg.Seeds = []*Chromosome{FromSchedule(seed)}
	}
	res, err := ga.Run(cfg, r)
	if err != nil {
		return nil, err
	}
	s, err := res.Best.Decode(w)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, Generations: res.Generations, Stagnated: res.Stagnated}, nil
}

// crossoverGA adapts Crossover to the engine's two-result hook; the
// divergence indices ride along inside the children (parent/firstDirty),
// where the evaluator's delta-decode pass picks them up.
func crossoverGA(a, b *Chromosome, r *rng.Source) (*Chromosome, *Chromosome) {
	c1, c2, _, _ := Crossover(a, b, r)
	return c1, c2
}

// evaluator computes the population fitness for each mode. It is reentrant
// — islands call evaluate concurrently — so it holds no mutable scratch;
// per-chromosome decode/metrics state lives in the chromosomes themselves,
// the decoder's buffer pool is concurrency-safe and the metrics cache is
// mutex-striped.
type evaluator struct {
	w     *platform.Workload
	opt   Options
	mheft float64
	dec   *schedule.Decoder
	// cache is the genotype→metrics cache; nil when Options.NoMetricsCache
	// disabled it.
	cache *MetricsCache

	// frontierHist receives one observation (the number of re-swept tasks)
	// per successful delta decode; nil — and therefore a no-op — when
	// telemetry is off.
	frontierHist *obs.Histogram
	// Delta-decode traffic, accumulated atomically across the decode
	// workers. The totals are deterministic: which chromosomes decode, and
	// each decode's frontier size, are pure functions of the GA trajectory,
	// independent of Workers and scheduling.
	deltaHits      atomic.Int64
	deltaFallbacks atomic.Int64
	deltaFrontier  atomic.Int64
}

// deltaFrontierBounds buckets frontier sizes (tasks re-swept per delta
// decode); paper-scale graphs have tens to hundreds of tasks.
var deltaFrontierBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

func (e *evaluator) deltaStats() deltaStats {
	return deltaStats{
		Hits:          e.deltaHits.Load(),
		Fallbacks:     e.deltaFallbacks.Load(),
		FrontierTasks: e.deltaFrontier.Load(),
	}
}

// slackOf returns the configured robustness surrogate of a schedule.
func (e *evaluator) slackOf(s *schedule.Schedule) float64 {
	if e.opt.SlackMetric == MinSlack {
		return s.MinSlack()
	}
	return s.AvgSlack()
}

// slackMet is slackOf over the cached metrics triple.
func (e *evaluator) slackMet(m schedMetrics) float64 {
	if e.opt.SlackMetric == MinSlack {
		return m.minSlack
	}
	return m.avgSlack
}

// schedOf returns the chromosome's memoized schedule, decoding on demand.
func (e *evaluator) schedOf(c *Chromosome) *schedule.Schedule {
	s, err := c.DecodeWith(e.dec)
	if err != nil {
		panic(err) // operators guarantee validity
	}
	return s
}

// metricsOf returns the chromosome's metrics triple, consulting the cache
// and falling back to a decode. Not safe for concurrent calls on the same
// chromosome; the GA's evaluation paths only reach it serially.
func (e *evaluator) metricsOf(c *Chromosome) schedMetrics {
	if c.hasMetr {
		return c.metr
	}
	if c.decoded == nil && e.cache != nil {
		k := e.cache.key(c)
		if met, ok := e.cache.lookup(k, c); ok {
			c.metr, c.hasMetr = met, true
			c.parent = nil
			return c.metr
		}
		c.metr = metricsFromSchedule(e.schedOf(c))
		c.hasMetr = true
		e.cache.insert(k, c, c.metr)
		return c.metr
	}
	c.metr = metricsFromSchedule(e.schedOf(c))
	c.hasMetr = true
	return c.metr
}

// dedupPending collects pop's entries that still need work (no memoized
// metrics and no decoded schedule), deduplicated by pointer — selection and
// elitism alias chromosomes, so the same pointer can fill several slots.
// The map replaces a historical O(Np²) scan; it matters once PopSize rises
// above the paper's 20.
func dedupPending(pop []*Chromosome, needsWork func(*Chromosome) bool) []*Chromosome {
	pending := make([]*Chromosome, 0, len(pop))
	seen := make(map[*Chromosome]struct{}, len(pop))
	for _, c := range pop {
		if !needsWork(c) {
			continue
		}
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		pending = append(pending, c)
	}
	return pending
}

// decodeAll fans the pending chromosomes out across worker goroutines
// (0 = GOMAXPROCS) and waits for all of them; each finished chromosome runs
// the optional done hook on its worker. Decode order cannot influence
// results: each schedule depends only on its own genotype.
func decodeAll(dec *schedule.Decoder, pending []*Chromosome, workers int, done func(i int, c *Chromosome)) {
	fanOut(pending, workers, func(i int, c *Chromosome) error {
		if _, err := c.DecodeWith(dec); err != nil {
			return err
		}
		if done != nil {
			done(i, c)
		}
		return nil
	})
}

// fanOut runs work(i, c) for every pending chromosome across `workers`
// goroutines (0 = GOMAXPROCS) and waits for all of them. A work error
// panics after the barrier — the operators guarantee genotype validity, so
// a decode failure is a bug, not an input condition.
func fanOut(pending []*Chromosome, workers int, work func(i int, c *Chromosome) error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers <= 1 {
		for i, c := range pending {
			if err := work(i, c); err != nil {
				panic(err) // operators guarantee validity
			}
		}
		return
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := wk; i < len(pending); i += workers {
				if err := work(i, pending[i]); err != nil {
					errs[wk] = err
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			panic(err) // operators guarantee validity
		}
	}
}

// deltaPlan is one pending chromosome's decode decision: a nil parent means
// a full decode; otherwise DecodeDelta reuses the parent schedule's prefix
// before position fd. Plans are resolved serially before the parallel
// fan-out so no worker ever reads another chromosome's parentage fields.
type deltaPlan struct {
	parent *schedule.Schedule
	fd     int
}

// planDeltas resolves each miss's parent chain to its nearest decoded
// ancestor — composing the first-divergence indices by minimum, which keeps
// the prefix-agreement invariant transitively — and decides full vs delta
// on a cheap cost model: a clean prefix shorter than n/8 pays the delta
// path's per-suffix-task overhead on nearly the whole graph, and more than
// n/4 changed genes seeds the dirty sweeps so densely (each moved task
// rewires disjunctive arcs, each reassignment re-costs its arcs) that the
// branch-free full sweep is faster than tracking what survived. Both scans
// are O(n) in the serial section, noise next to the decode they steer. All
// parent links are severed afterwards so discarded generations (and their
// schedule arenas) stay collectable.
func (e *evaluator) planDeltas(misses []*Chromosome) []deltaPlan {
	var plans []deltaPlan
	if !e.opt.NoDeltaDecode {
		plans = make([]deltaPlan, len(misses))
		for i, c := range misses {
			d := c.firstDirty
			p := c.parent
			for p != nil && p.decoded == nil {
				if p.firstDirty < d {
					d = p.firstDirty
				}
				p = p.parent
			}
			n := len(c.Order)
			if p == nil || d*8 < n {
				continue // plans[i] stays the zero full-decode plan
			}
			changes := 0
			for j := d; j < n; j++ {
				if c.Order[j] != p.Order[j] {
					changes++
				}
			}
			for v := range c.Proc {
				if c.Proc[v] != p.Proc[v] {
					changes++
				}
			}
			if changes*4 > n {
				continue
			}
			plans[i] = deltaPlan{parent: p.decoded, fd: d}
		}
	}
	// Sever only after every chain is resolved: a miss's chain may pass
	// through another miss of the same batch.
	for _, c := range misses {
		c.parent = nil
	}
	return plans
}

// decodeOne executes one plan, routing telemetry by outcome. A fallback
// (DecodeDelta rejecting the claimed prefix) means the parentage
// bookkeeping is wrong; it stays correct — DecodeDelta re-runs the full
// path — but is counted separately so it can be alarmed on.
func (e *evaluator) decodeOne(c *Chromosome, pl deltaPlan) error {
	if pl.parent == nil {
		_, err := c.DecodeWith(e.dec)
		return err
	}
	frontier, full, err := e.dec.DecodeDelta(pl.parent, &c.decodedVal, c.Order, c.Proc, pl.fd)
	if err != nil {
		return fmt.Errorf("robust: invalid chromosome: %w", err)
	}
	c.decoded = &c.decodedVal
	if full {
		e.deltaFallbacks.Add(1)
		return nil
	}
	e.deltaHits.Add(1)
	e.deltaFrontier.Add(int64(frontier))
	e.frontierHist.Observe(float64(frontier))
	return nil
}

// decodePopulation decodes every not-yet-decoded chromosome of pop (used by
// the custom-fitness and NSGA-II paths, which need full schedules rather
// than the metrics triple).
func decodePopulation(dec *schedule.Decoder, pop []*Chromosome, workers int) {
	pending := dedupPending(pop, func(c *Chromosome) bool { return c.decoded == nil })
	decodeAll(dec, pending, workers, nil)
}

// ensureMetrics guarantees every chromosome of pop carries its metrics
// triple, decoding only genuinely novel genotypes: already-memoized and
// already-decoded chromosomes are free, cache hits (genotype-equal to any
// previously decoded individual, across generations, islands and — via a
// shared Options.Cache — sibling Solve runs) skip the decode entirely, and
// only the misses fan out across the worker goroutines, inserting their
// metrics into the cache as they finish. The barrier guarantees the serial
// fitness combination that follows sees every metric.
func (e *evaluator) ensureMetrics(pop []*Chromosome) {
	// No parent severing in this closure: every path that sets hasMetr or
	// decoded already severed, so the fields are nil here — and writing
	// them would race between islands, which share migrant pointers.
	pending := dedupPending(pop, func(c *Chromosome) bool {
		if c.hasMetr {
			return false
		}
		if c.decoded != nil {
			c.metr = metricsFromSchedule(c.decoded)
			c.hasMetr = true
			return false
		}
		return true
	})
	// Serial cache pass: hashing is cheap next to a decode, and resolving
	// hits up front keeps the parallel section to pure decode work.
	misses := pending
	var keys []uint64
	if e.cache != nil {
		misses = pending[:0]
		keys = make([]uint64, 0, len(pending))
		for _, c := range pending {
			k := e.cache.key(c)
			if met, ok := e.cache.lookup(k, c); ok {
				c.metr, c.hasMetr = met, true
				c.parent = nil
				continue
			}
			misses = append(misses, c)
			keys = append(keys, k)
		}
	}
	plans := e.planDeltas(misses)
	fanOut(misses, e.opt.Workers, func(i int, c *Chromosome) error {
		var pl deltaPlan
		if plans != nil {
			pl = plans[i]
		}
		if err := e.decodeOne(c, pl); err != nil {
			return err
		}
		c.metr = metricsFromSchedule(c.decoded)
		c.hasMetr = true
		if keys != nil {
			e.cache.insert(keys[i], c, c.metr)
		}
		return nil
	})
}

// evaluateInto implements the three objectives over the metrics triples,
// writing the fitness into fit (the GA engine's reusable arena). The novel
// genotypes are decoded in parallel first; the fitness combination itself
// is serial and deterministic, so the values — and the whole GA trajectory
// — are bit-identical for every Workers count and with the cache on or off.
func (e *evaluator) evaluateInto(pop []*Chromosome, fit []float64) {
	e.ensureMetrics(pop)
	switch e.opt.Mode {
	case MinMakespan:
		for i, c := range pop {
			fit[i] = -e.metricsOf(c).m0
		}
	case MaxSlack:
		for i, c := range pop {
			fit[i] = e.slackMet(e.metricsOf(c))
		}
	case EpsilonConstraint:
		// Eqn. 8. Feasible individuals score their slack; infeasible ones
		// score min(feasible fitness) · ε·M_HEFT / M0, which is strictly
		// below every feasible score and decreases with the violation.
		bound := e.opt.Eps * e.mheft
		minFeasible := math.Inf(1)
		for _, c := range pop {
			m := e.metricsOf(c)
			if slack := e.slackMet(m); m.m0 <= bound && slack < minFeasible {
				minFeasible = slack
			}
		}
		for i, c := range pop {
			m := e.metricsOf(c)
			switch {
			case m.m0 <= bound:
				fit[i] = e.slackMet(m)
			case math.IsInf(minFeasible, 1):
				// No feasible individual this generation — a case the
				// paper leaves unspecified. Rank purely by (inverse)
				// constraint violation, shifted below any plausible
				// feasible score.
				fit[i] = -m.m0 / bound
			default:
				fit[i] = minFeasible * bound / m.m0
			}
		}
	default:
		panic(fmt.Sprintf("robust: unknown mode %d", e.opt.Mode))
	}
}

// evaluate is the allocating form of evaluateInto, kept for the ga.Config
// Evaluate hook and direct tests.
func (e *evaluator) evaluate(pop []*Chromosome) []float64 {
	fit := make([]float64, len(pop))
	e.evaluateInto(pop, fit)
	return fit
}
