package robust

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"robsched/internal/ga"
	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// Mode selects the GA objective.
type Mode int

const (
	// EpsilonConstraint maximizes slack subject to M0(s) <= ε·M_HEFT
	// (Eqn. 7/8) — the paper's bi-objective method.
	EpsilonConstraint Mode = iota
	// MinMakespan minimizes the expected makespan, the classical GA
	// objective used for the Fig. 2 experiment.
	MinMakespan
	// MaxSlack maximizes slack with no makespan constraint, used for the
	// Fig. 3 experiment.
	MaxSlack
)

func (m Mode) String() string {
	switch m {
	case EpsilonConstraint:
		return "epsilon-constraint"
	case MinMakespan:
		return "min-makespan"
	case MaxSlack:
		return "max-slack"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SlackMetric selects the robustness surrogate maximized by the GA.
type SlackMetric int

const (
	// AvgSlack is the paper's surrogate (Eqn. 3).
	AvgSlack SlackMetric = iota
	// MinSlack is a more conservative extension: the smallest task slack.
	MinSlack
)

// Options configures the robust scheduler. ZeroOptions-with-PaperDefaults is
// the paper's configuration.
type Options struct {
	Mode        Mode
	Eps         float64     // ε of the constraint method (paper sweeps 1.0..2.0)
	SlackMetric SlackMetric // robustness surrogate (paper: AvgSlack)

	// GA parameters (Section 5: Np=20, pc=0.9, pm=0.1, 1000 generations,
	// 100-generation stagnation window).
	PopSize        int
	CrossoverRate  float64
	MutationRate   float64
	MaxGenerations int
	Stagnation     int

	// NoHEFTSeed drops the HEFT chromosome from the initial population
	// (ablation; the paper always seeds it).
	NoHEFTSeed bool
	// Islands > 1 runs that many populations in parallel goroutines with
	// ring migration every MigrationEvery generations — an island-model
	// extension of the paper's single-population GA. Incompatible with
	// OnGeneration.
	Islands        int
	MigrationEvery int
	// NoElitism is reserved for engine-level ablation and currently unused;
	// elitism is integral to the engine.

	// Workers bounds the goroutines used to decode each population before
	// the fitness combination (0 = GOMAXPROCS, 1 = serial). Decoding is the
	// only parallel part; the fitness values — and therefore the whole GA
	// trajectory — are bit-identical for every setting.
	Workers int

	// OnGeneration, if set, observes the best schedule of each generation
	// (generation 0 is the initial population). Used to trace Figs. 2–3.
	OnGeneration func(gen int, best *schedule.Schedule)
}

// PaperOptions returns the paper's GA configuration for the given mode and ε.
func PaperOptions(mode Mode, eps float64) Options {
	return Options{
		Mode: mode, Eps: eps,
		PopSize: 20, CrossoverRate: 0.9, MutationRate: 0.1,
		MaxGenerations: 1000, Stagnation: 100,
	}
}

// Result is the outcome of a robust scheduling run.
type Result struct {
	// Schedule is the best schedule found by the GA.
	Schedule *schedule.Schedule
	// HEFT is the baseline schedule (also the GA seed unless disabled).
	HEFT *schedule.Schedule
	// MHEFT is the baseline's expected makespan (the constraint anchor).
	MHEFT float64
	// Generations actually evolved, and whether the stagnation window
	// triggered.
	Generations int
	Stagnated   bool
}

// Solve runs the bi-objective GA on the workload and returns the best
// schedule under the selected objective.
func Solve(w *platform.Workload, opt Options, r *rng.Source) (*Result, error) {
	if opt.PopSize == 0 && opt.MaxGenerations == 0 {
		def := PaperOptions(opt.Mode, opt.Eps)
		def.SlackMetric = opt.SlackMetric
		def.NoHEFTSeed = opt.NoHEFTSeed
		def.OnGeneration = opt.OnGeneration
		opt = def
	}
	if opt.Mode == EpsilonConstraint && opt.Eps <= 0 {
		return nil, fmt.Errorf("robust: epsilon-constraint mode needs Eps > 0, got %g", opt.Eps)
	}
	hs, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		return nil, fmt.Errorf("robust: HEFT baseline failed: %w", err)
	}
	mheft := hs.Makespan()

	eval := &evaluator{w: w, opt: opt, mheft: mheft, dec: schedule.NewDecoder(w)}
	cfg := ga.Config[*Chromosome]{
		PopSize:        opt.PopSize,
		CrossoverRate:  opt.CrossoverRate,
		MutationRate:   opt.MutationRate,
		MaxGenerations: opt.MaxGenerations,
		Stagnation:     opt.Stagnation,
		Random:         func(r *rng.Source) *Chromosome { return Random(w, r) },
		Crossover:      Crossover,
		Mutate:         func(c *Chromosome, r *rng.Source) *Chromosome { return Mutate(w, c, r) },
		Evaluate:       eval.evaluate,
		Key:            (*Chromosome).Key,
	}
	// The two single-objective modes are population-independent, so the
	// engine's post-elitism pass only needs the replaced slot re-scored. The
	// ε-constraint fitness (Eqn. 8) is population-relative and keeps the
	// full re-evaluation.
	switch opt.Mode {
	case MinMakespan:
		cfg.EvaluateOne = func(c *Chromosome) float64 { return -eval.schedOf(c).Makespan() }
	case MaxSlack:
		cfg.EvaluateOne = func(c *Chromosome) float64 { return eval.slackOf(eval.schedOf(c)) }
	}
	if !opt.NoHEFTSeed {
		cfg.Seeds = []*Chromosome{FromSchedule(hs)}
	}
	if opt.OnGeneration != nil {
		on := opt.OnGeneration
		cfg.OnGeneration = func(gen int, pop []*Chromosome, fit []float64) {
			best := 0
			for i, f := range fit {
				if f > fit[best] {
					best = i
				}
			}
			on(gen, eval.schedOf(pop[best]))
		}
	}
	var res ga.Result[*Chromosome]
	if opt.Islands > 1 {
		res, err = ga.RunIslands(ga.IslandConfig[*Chromosome]{
			Base:           cfg,
			Islands:        opt.Islands,
			MigrationEvery: opt.MigrationEvery,
		}, r)
	} else {
		res, err = ga.Run(cfg, r)
	}
	if err != nil {
		return nil, err
	}
	s, err := res.Best.Decode(w)
	if err != nil {
		return nil, err
	}
	return &Result{
		Schedule:    s,
		HEFT:        hs,
		MHEFT:       mheft,
		Generations: res.Generations,
		Stagnated:   res.Stagnated,
	}, nil
}

// runCustomFitness evolves the standard chromosome with an arbitrary
// per-schedule fitness function (larger is better). Used by the
// weighted-sum comparator; the ε-constraint path goes through Solve
// because its fitness is population-relative.
func runCustomFitness(w *platform.Workload, opt Options, r *rng.Source, seed *schedule.Schedule, fitness func(*schedule.Schedule) float64) (*Result, error) {
	dec := schedule.NewDecoder(w)
	schedOf := func(c *Chromosome) *schedule.Schedule {
		s, err := c.DecodeWith(dec)
		if err != nil {
			panic(err) // operators guarantee validity
		}
		return s
	}
	cfg := ga.Config[*Chromosome]{
		PopSize:        opt.PopSize,
		CrossoverRate:  opt.CrossoverRate,
		MutationRate:   opt.MutationRate,
		MaxGenerations: opt.MaxGenerations,
		Stagnation:     opt.Stagnation,
		Random:         func(r *rng.Source) *Chromosome { return Random(w, r) },
		Crossover:      Crossover,
		Mutate:         func(c *Chromosome, r *rng.Source) *Chromosome { return Mutate(w, c, r) },
		Key:            (*Chromosome).Key,
		Evaluate: func(pop []*Chromosome) []float64 {
			decodePopulation(dec, pop, opt.Workers)
			fit := make([]float64, len(pop))
			for i, c := range pop {
				fit[i] = fitness(schedOf(c))
			}
			return fit
		},
		EvaluateOne: func(c *Chromosome) float64 { return fitness(schedOf(c)) },
	}
	if seed != nil && !opt.NoHEFTSeed {
		cfg.Seeds = []*Chromosome{FromSchedule(seed)}
	}
	res, err := ga.Run(cfg, r)
	if err != nil {
		return nil, err
	}
	s, err := res.Best.Decode(w)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s, Generations: res.Generations, Stagnated: res.Stagnated}, nil
}

// evaluator computes the population fitness for each mode. It is reentrant
// — islands call evaluate concurrently — so it holds no mutable scratch;
// per-chromosome decode state lives in the chromosomes themselves and the
// decoder's buffer pool is concurrency-safe.
type evaluator struct {
	w     *platform.Workload
	opt   Options
	mheft float64
	dec   *schedule.Decoder
}

// slackOf returns the configured robustness surrogate of a schedule.
func (e *evaluator) slackOf(s *schedule.Schedule) float64 {
	if e.opt.SlackMetric == MinSlack {
		return s.MinSlack()
	}
	return s.AvgSlack()
}

// schedOf returns the chromosome's memoized schedule, decoding on demand.
func (e *evaluator) schedOf(c *Chromosome) *schedule.Schedule {
	s, err := c.DecodeWith(e.dec)
	if err != nil {
		panic(err) // operators guarantee validity
	}
	return s
}

// decodePopulation fans the population's undecoded chromosomes out across
// worker goroutines (0 = GOMAXPROCS) and waits for all of them. Selection
// and elitism alias chromosomes — the same pointer can fill several slots —
// so the pending set is deduplicated by pointer before the fan-out; the
// barrier guarantees the fitness combination that follows sees every
// schedule. Decode order cannot influence results: each schedule depends
// only on its own genotype.
func decodePopulation(dec *schedule.Decoder, pop []*Chromosome, workers int) {
	pending := make([]*Chromosome, 0, len(pop))
	for _, c := range pop {
		if c.decoded != nil {
			continue
		}
		dup := false
		for _, p := range pending {
			if p == c {
				dup = true
				break
			}
		}
		if !dup {
			pending = append(pending, c)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers <= 1 {
		for _, c := range pending {
			if _, err := c.DecodeWith(dec); err != nil {
				panic(err) // operators guarantee validity
			}
		}
		return
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := wk; i < len(pending); i += workers {
				if _, err := pending[i].DecodeWith(dec); err != nil {
					errs[wk] = err
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			panic(err) // operators guarantee validity
		}
	}
}

// evaluate implements the three objectives. The population is decoded in
// parallel first (memoized on each chromosome, so the engine's post-elitism
// re-evaluation costs only the O(Np) fitness recombination); the fitness
// combination itself is serial and deterministic.
func (e *evaluator) evaluate(pop []*Chromosome) []float64 {
	decodePopulation(e.dec, pop, e.opt.Workers)
	fit := make([]float64, len(pop))
	switch e.opt.Mode {
	case MinMakespan:
		for i, c := range pop {
			fit[i] = -e.schedOf(c).Makespan()
		}
	case MaxSlack:
		for i, c := range pop {
			fit[i] = e.slackOf(e.schedOf(c))
		}
	case EpsilonConstraint:
		// Eqn. 8. Feasible individuals score their slack; infeasible ones
		// score min(feasible fitness) · ε·M_HEFT / M0, which is strictly
		// below every feasible score and decreases with the violation.
		bound := e.opt.Eps * e.mheft
		minFeasible := math.Inf(1)
		type decoded struct {
			m0, slack float64
			feasible  bool
		}
		ds := make([]decoded, len(pop))
		for i, c := range pop {
			s := e.schedOf(c)
			d := decoded{m0: s.Makespan(), slack: e.slackOf(s)}
			d.feasible = d.m0 <= bound
			ds[i] = d
			if d.feasible && d.slack < minFeasible {
				minFeasible = d.slack
			}
		}
		for i, d := range ds {
			switch {
			case d.feasible:
				fit[i] = d.slack
			case math.IsInf(minFeasible, 1):
				// No feasible individual this generation — a case the
				// paper leaves unspecified. Rank purely by (inverse)
				// constraint violation, shifted below any plausible
				// feasible score.
				fit[i] = -d.m0 / bound
			default:
				fit[i] = minFeasible * bound / d.m0
			}
		}
	default:
		panic(fmt.Sprintf("robust: unknown mode %d", e.opt.Mode))
	}
	return fit
}
