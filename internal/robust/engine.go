package robust

import (
	"fmt"

	"robsched/internal/ga"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// Engine is the reusable core of Solve: the normalized options, the HEFT
// baseline, and the fully-wired GA configuration for one workload. Solve
// builds one per call; the multi-process island coordinator (internal/dist)
// builds an identical Engine inside each worker process — HEFT and the
// option normalization are deterministic, so every process derives the same
// baseline, the same ε anchor and the same ga.Config, and an out-of-process
// island evolves the exact trajectory its in-process counterpart would.
type Engine struct {
	// Opt is the effective configuration after paper-default normalization.
	Opt Options
	// HEFT is the baseline schedule (also the GA seed unless disabled) and
	// MHEFT its expected makespan, the ε-constraint anchor.
	HEFT  *schedule.Schedule
	MHEFT float64

	w    *platform.Workload
	eval *evaluator
	cfg  ga.Config[*Chromosome]
}

// NewEngine normalizes the options (a zero GA block takes the paper's
// configuration), computes or adopts the HEFT baseline, and wires the
// evaluator into a ga.Config. It performs no evolution; callers hand the
// Config to ga.Run, ga.RunIslands or ga.NewIsland.
func NewEngine(w *platform.Workload, opt Options) (*Engine, error) {
	if opt.PopSize == 0 && opt.MaxGenerations == 0 {
		def := PaperOptions(opt.Mode, opt.Eps)
		def.SlackMetric = opt.SlackMetric
		def.NoHEFTSeed = opt.NoHEFTSeed
		def.OnGeneration = opt.OnGeneration
		def.Workers = opt.Workers
		def.HEFT = opt.HEFT
		def.Cache = opt.Cache
		def.NoMetricsCache = opt.NoMetricsCache
		def.NoDeltaDecode = opt.NoDeltaDecode
		def.Islands = opt.Islands
		def.MigrationEvery = opt.MigrationEvery
		def.Obs = opt.Obs
		def.Trace = opt.Trace
		def.Observer = opt.Observer
		opt = def
	}
	if opt.Mode == EpsilonConstraint && opt.Eps <= 0 {
		return nil, fmt.Errorf("robust: epsilon-constraint mode needs Eps > 0, got %g", opt.Eps)
	}
	hs := opt.HEFT
	if hs == nil {
		var err error
		hs, err = HEFTBaseline(w)
		if err != nil {
			return nil, err
		}
	}
	mheft := hs.Makespan()

	eval := &evaluator{w: w, opt: opt, mheft: mheft, dec: schedule.NewDecoder(w)}
	if !opt.NoMetricsCache {
		eval.cache = opt.Cache
		if eval.cache == nil {
			eval.cache = NewMetricsCache()
		}
	}
	// Nil-safe: a nil registry hands out a nil (no-op) histogram.
	eval.frontierHist = opt.Obs.Histogram("decode.delta_frontier", deltaFrontierBounds)
	cfg := ga.Config[*Chromosome]{
		PopSize:        opt.PopSize,
		CrossoverRate:  opt.CrossoverRate,
		MutationRate:   opt.MutationRate,
		MaxGenerations: opt.MaxGenerations,
		Stagnation:     opt.Stagnation,
		Random:         func(r *rng.Source) *Chromosome { return Random(w, r) },
		Crossover:      crossoverGA,
		Mutate:         func(c *Chromosome, r *rng.Source) *Chromosome { out, _ := Mutate(w, c, r); return out },
		Evaluate:       eval.evaluate,
		EvaluateInto:   eval.evaluateInto,
		Key:            (*Chromosome).Key,
		Observer:       ga.MultiObserver(opt.Observer, telemetryObserver(opt.Obs, opt.Trace)),
	}
	// The two single-objective modes are population-independent, so the
	// engine's post-elitism pass only needs the replaced slot re-scored. The
	// ε-constraint fitness (Eqn. 8) is population-relative and keeps the
	// full re-evaluation — which the metrics cache turns into a pure
	// recombination over already-known metrics.
	switch opt.Mode {
	case MinMakespan:
		cfg.EvaluateOne = func(c *Chromosome) float64 { return -eval.metricsOf(c).m0 }
	case MaxSlack:
		cfg.EvaluateOne = func(c *Chromosome) float64 { return eval.slackMet(eval.metricsOf(c)) }
	}
	if !opt.NoHEFTSeed {
		cfg.Seeds = []*Chromosome{FromSchedule(hs)}
	}
	return &Engine{Opt: opt, HEFT: hs, MHEFT: mheft, w: w, eval: eval, cfg: cfg}, nil
}

// Config returns the engine's GA configuration. The returned value shares
// the engine's evaluator (reentrant — islands call it concurrently); callers
// may adjust the copy's hooks (e.g. OnGeneration) without affecting the
// engine.
func (e *Engine) Config() ga.Config[*Chromosome] { return e.cfg }

// Result decodes a finished GA run into the solver's result type.
func (e *Engine) Result(res ga.Result[*Chromosome]) (*Result, error) {
	s, err := res.Best.Decode(e.w)
	if err != nil {
		return nil, err
	}
	return &Result{
		Schedule:    s,
		HEFT:        e.HEFT,
		MHEFT:       e.MHEFT,
		Generations: res.Generations,
		Stagnated:   res.Stagnated,
	}, nil
}
