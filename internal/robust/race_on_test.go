//go:build race

package robust

// raceEnabled reports whether the race detector is active; its
// instrumentation adds allocations, so allocation-budget tests skip.
const raceEnabled = true
