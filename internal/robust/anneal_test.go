package robust

import (
	"testing"

	"robsched/internal/rng"
	"robsched/internal/schedule"
)

func TestSolveAnnealValidation(t *testing.T) {
	w := testWorkload(t, 2000, 10, 2)
	r := rng.New(1)
	if _, err := SolveAnneal(w, AnnealOptions{Eps: 0}, r); err == nil {
		t.Error("Eps=0 accepted")
	}
	if _, err := SolveAnneal(w, AnnealOptions{Eps: 1.2, Steps: -1}, r); err == nil {
		t.Error("negative steps accepted")
	}
	if _, err := SolveAnneal(w, AnnealOptions{Eps: 1.2, InitialTemp: 0.001, FinalTemp: 1}, r); err == nil {
		t.Error("inverted temperatures accepted")
	}
}

func TestSolveAnnealFeasibleAndImproving(t *testing.T) {
	w := testWorkload(t, 2001, 30, 4)
	opt := PaperishAnnealOptions(1.4)
	opt.Steps = 4000
	res, err := SolveAnneal(w, opt, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Validate(res.Schedule); err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan() > 1.4*res.MHEFT+1e-9 {
		t.Fatalf("SA result infeasible: %g > 1.4·%g", res.Schedule.Makespan(), res.MHEFT)
	}
	// Started from the HEFT seed and tracking the best feasible state, the
	// final slack can never be below HEFT's.
	if res.Schedule.AvgSlack() < res.HEFT.AvgSlack()-1e-9 {
		t.Fatalf("SA slack %g below HEFT %g", res.Schedule.AvgSlack(), res.HEFT.AvgSlack())
	}
	if res.Schedule.AvgSlack() <= res.HEFT.AvgSlack() {
		t.Fatal("SA never improved the slack at all")
	}
}

func TestSolveAnnealNoSeed(t *testing.T) {
	w := testWorkload(t, 2002, 20, 3)
	opt := PaperishAnnealOptions(1.5)
	opt.Steps = 3000
	opt.NoHEFTSeed = true
	res, err := SolveAnneal(w, opt, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil {
		t.Fatal("no schedule")
	}
}

func TestSolveAnnealMinSlackMetric(t *testing.T) {
	w := testWorkload(t, 2003, 20, 3)
	opt := PaperishAnnealOptions(1.5)
	opt.Steps = 2000
	opt.SlackMetric = MinSlack
	res, err := SolveAnneal(w, opt, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan() > 1.5*res.MHEFT+1e-9 {
		t.Fatal("constraint violated")
	}
}

// TestAnnealVsGAComparableQuality: with matched evaluation budgets, SA and
// the GA should land within a modest factor of each other on the attained
// slack — neither search collapses.
func TestAnnealVsGAComparableQuality(t *testing.T) {
	w := testWorkload(t, 2004, 40, 4)
	const budget = 6000
	sa, err := SolveAnneal(w, AnnealOptions{Eps: 1.4, Steps: budget}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	gaOpt := Options{
		Mode: EpsilonConstraint, Eps: 1.4,
		PopSize: 12, CrossoverRate: 0.9, MutationRate: 0.2,
		MaxGenerations: budget / 12,
	}
	ga, err := Solve(w, gaOpt, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	saSlack, gaSlack := sa.Schedule.AvgSlack(), ga.Schedule.AvgSlack()
	if saSlack < gaSlack/4 || gaSlack < saSlack/4 {
		t.Fatalf("search strategies wildly apart: SA %g vs GA %g", saSlack, gaSlack)
	}
}
