package robust

import (
	"testing"

	"robsched/internal/heft"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

func paretoOpts() ParetoOptions {
	return ParetoOptions{PopSize: 16, CrossoverRate: 0.9, MutationRate: 0.2, MaxGenerations: 40}
}

func TestSolveParetoValidation(t *testing.T) {
	w := testWorkload(t, 1000, 15, 3)
	r := rng.New(1)
	bad := []ParetoOptions{
		{PopSize: 2, CrossoverRate: 0.9, MutationRate: 0.1, MaxGenerations: 10},
		{PopSize: 7, CrossoverRate: 0.9, MutationRate: 0.1, MaxGenerations: 10},
		{PopSize: 8, CrossoverRate: 0.9, MutationRate: 0.1, MaxGenerations: 0},
		{PopSize: 8, CrossoverRate: 1.9, MutationRate: 0.1, MaxGenerations: 10},
	}
	for i, opt := range bad {
		if _, err := SolvePareto(w, opt, r); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestSolveParetoFrontProperties(t *testing.T) {
	w := testWorkload(t, 1001, 30, 4)
	front, err := SolvePareto(w, paretoOpts(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	for i := 1; i < len(front); i++ {
		a, b := front[i-1], front[i]
		// Sorted by increasing makespan.
		if b.Makespan < a.Makespan-1e-9 {
			t.Fatalf("front not sorted by makespan: %g then %g", a.Makespan, b.Makespan)
		}
		// Mutually non-dominated: along increasing makespan, slack must
		// strictly increase (otherwise the later point is dominated).
		if b.Slack <= a.Slack+1e-9 {
			t.Fatalf("front point %d dominated: (%g,%g) then (%g,%g)",
				i, a.Makespan, a.Slack, b.Makespan, b.Slack)
		}
	}
	// Every front schedule is a valid schedule of the workload.
	for _, p := range front {
		if p.Schedule.Makespan() != p.Makespan {
			t.Fatal("point metadata inconsistent with schedule")
		}
		if err := schedule.Validate(p.Schedule); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSolveParetoCoversHEFTRegion(t *testing.T) {
	// Seeded with HEFT, the front's minimum makespan can never exceed
	// HEFT's (the seed survives unless dominated by something better).
	w := testWorkload(t, 1002, 25, 4)
	hs, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	front, err := SolvePareto(w, paretoOpts(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if front[0].Makespan > hs.Makespan()+1e-9 {
		t.Fatalf("front min makespan %g exceeds HEFT %g", front[0].Makespan, hs.Makespan())
	}
	// The front should also contain something substantially slacker than
	// HEFT for this size of instance.
	best := front[len(front)-1]
	if best.Slack <= hs.AvgSlack() {
		t.Fatalf("front max slack %g does not beat HEFT %g", best.Slack, hs.AvgSlack())
	}
}

func TestSolveParetoNoSeed(t *testing.T) {
	w := testWorkload(t, 1003, 15, 3)
	opt := paretoOpts()
	opt.NoHEFTSeed = true
	front, err := SolvePareto(w, opt, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty front")
	}
}

func TestSolveWeightedSumExtremes(t *testing.T) {
	w := testWorkload(t, 1004, 25, 4)
	opt := quickOptions(EpsilonConstraint, 1) // reuse GA params
	// weight=1: pure makespan minimization; seeded with HEFT so never
	// worse.
	res1, err := SolveWeightedSum(w, 1, opt, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Schedule.Makespan() > res1.MHEFT+1e-9 {
		t.Fatalf("weight=1 worse than HEFT: %g > %g", res1.Schedule.Makespan(), res1.MHEFT)
	}
	// weight=0: pure slack maximization.
	res0, err := SolveWeightedSum(w, 0, opt, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res0.Schedule.AvgSlack() < res1.Schedule.AvgSlack() {
		t.Fatalf("weight=0 slack %g below weight=1 slack %g",
			res0.Schedule.AvgSlack(), res1.Schedule.AvgSlack())
	}
	if _, err := SolveWeightedSum(w, 1.5, opt, rng.New(5)); err == nil {
		t.Fatal("weight out of range accepted")
	}
}

// TestSolveWeightedSumWorkersIdentical pins the runCustomFitness contract:
// opt.Workers only parallelizes population decoding, so Workers=4 and
// Workers=1 must produce identical schedules and results for every weight.
func TestSolveWeightedSumWorkersIdentical(t *testing.T) {
	w := testWorkload(t, 1010, 30, 4)
	opt := quickOptions(EpsilonConstraint, 1)
	for _, weight := range []float64{0, 0.5, 1} {
		serial := opt
		serial.Workers = 1
		want, err := SolveWeightedSum(w, weight, serial, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		par := opt
		par.Workers = 4
		got, err := SolveWeightedSum(w, weight, par, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		if !eqInts(want.Schedule.Order(), got.Schedule.Order()) ||
			!eqInts(want.Schedule.ProcAssignment(), got.Schedule.ProcAssignment()) {
			t.Fatalf("weight=%g: Workers=4 schedule differs from Workers=1", weight)
		}
		if want.Schedule.Makespan() != got.Schedule.Makespan() ||
			want.Schedule.AvgSlack() != got.Schedule.AvgSlack() ||
			want.Generations != got.Generations || want.Stagnated != got.Stagnated {
			t.Fatalf("weight=%g: Workers=4 result differs from Workers=1", weight)
		}
	}
}

func TestSolveWeightedSumDefaults(t *testing.T) {
	w := testWorkload(t, 1005, 8, 2)
	res, err := SolveWeightedSum(w, 0.5, Options{}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil || res.MHEFT <= 0 {
		t.Fatal("missing results")
	}
}

// TestParetoFrontDominatesEpsilonPoints checks consistency between the two
// solvers: each ε-constraint solution should be (weakly) near the NSGA-II
// front, i.e. not strictly dominated by a front point by a wide margin in
// both objectives simultaneously. This is a sanity band, not an equality.
func TestParetoFrontVsEpsilonConstraint(t *testing.T) {
	w := testWorkload(t, 1006, 25, 4)
	opt := paretoOpts()
	opt.MaxGenerations = 60
	front, err := SolvePareto(w, opt, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	eres, err := Solve(w, quickOptions(EpsilonConstraint, 1.4), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	em, es := eres.Schedule.Makespan(), eres.Schedule.AvgSlack()
	// The ε solution must not be dominated by any front point by more than
	// 30% in both objectives (both searches are stochastic).
	for _, p := range front {
		if p.Makespan < em*0.7 && p.Slack > es*1.3 {
			t.Fatalf("ε-constraint solution (%g, %g) far inside the NSGA-II front (point %g, %g)",
				em, es, p.Makespan, p.Slack)
		}
	}
}
