// Package robust implements the paper's contribution: the bi-objective
// genetic algorithm of Section 4 that schedules a DAG onto heterogeneous
// processors to maximize robustness (average slack) subject to the
// ε-constraint M0(s) <= ε·M_HEFT, together with the two single-objective
// modes (minimize makespan / maximize slack) used by the Fig. 2 and Fig. 3
// experiments.
package robust

import (
	"fmt"
	"sync"
	"sync/atomic"

	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// Chromosome is the GA encoding of Section 4.2.1: a scheduling string (a
// topological order of the task graph giving the global execution order)
// plus the task→processor assignment. The per-processor assignment strings
// of the paper are recovered by filtering the scheduling string by
// processor, which is exactly how the paper's mutation operator re-inserts
// tasks ("keeping the relative order of all the tasks assigned on that
// processor according to the scheduling string").
type Chromosome struct {
	Order []int // scheduling string: a topological order of the tasks
	Proc  []int // assignment: processor of each task (indexed by task id)

	// decoded memoizes the schedule; operators always produce fresh
	// chromosomes, so the cache never goes stale. When the chromosome is
	// decoded through a schedule.Decoder the schedule lives in decodedVal,
	// so the steady-state cost per decode is just the two arena
	// allocations inside DecodeInto.
	decoded    *schedule.Schedule
	decodedVal schedule.Schedule

	// metr memoizes the fitness-relevant metrics triple. It is populated
	// either from the decoded schedule or — via the solver's MetricsCache —
	// without decoding at all, which is what makes re-evaluations and
	// genotype-duplicate individuals free.
	metr    schedMetrics
	hasMetr bool

	// Parentage for delta decoding: parent, when non-nil, is a chromosome
	// this one was derived from whose genotype agrees with ours on every
	// scheduling-string position before firstDirty (and on the processor of
	// every task named there). The operators record it; the evaluator
	// resolves it — compressing chains through undecoded intermediates,
	// composing firstDirty by minimum — into the nearest decoded ancestor
	// for schedule.Decoder.DecodeDelta.
	parent     *Chromosome
	firstDirty int

	// Rolling genotype hash: raw is the position-weighted polynomial
	// Σ (gene_i+1)·base^i over the order genes (positions 0..n-1) then the
	// proc genes (positions n..2n-1); key is its avalanched form served by
	// Key. Operators derive a child's raw from its parent's in O(changed
	// genes) instead of re-hashing the unchanged prefix. Lazy computation
	// writes the memo, which is safe across islands because every consumer
	// that keys chromosomes (initial-population dedup, the metrics cache,
	// observer diversity) keys its whole population each generation, so a
	// migrant is always keyed before the migration barrier — afterwards the
	// memo is only read. Operators never write to the parents they read.
	raw    uint64
	key    uint64
	hasKey bool
}

// NewChromosome wraps the given order and assignment without copying.
func NewChromosome(order, proc []int) *Chromosome {
	return &Chromosome{Order: order, Proc: proc}
}

// Random generates a valid chromosome uniformly: a random topological order
// and independent uniform processor choices (Section 4.2.2).
func Random(w *platform.Workload, r *rng.Source) *Chromosome {
	order := w.G.RandomTopologicalOrder(r)
	proc := make([]int, w.N())
	for i := range proc {
		proc[i] = r.Intn(w.M())
	}
	return NewChromosome(order, proc)
}

// FromSchedule encodes an existing schedule (e.g. HEFT's) as a chromosome,
// used to seed the initial population.
func FromSchedule(s *schedule.Schedule) *Chromosome {
	c := NewChromosome(s.Order(), s.ProcAssignment())
	c.decoded = s
	c.metr = metricsFromSchedule(s)
	c.hasMetr = true
	return c
}

// Clone returns a deep copy without the memoized schedule. Order and Proc
// share one backing array (carved with full-capacity subslices, so neither
// can grow into the other) — the GA's operators clone every offspring, and
// one allocation instead of two is measurable over a long run.
//
// A computed key memo carries over, so cloning an evaluated elite never
// re-hashes; the operators adjust it incrementally as they edit genes.
// Callers that edit a clone's genes directly must not rely on Key.
func (c *Chromosome) Clone() *Chromosome {
	n, p := len(c.Order), len(c.Proc)
	buf := make([]int, n+p)
	copy(buf[:n], c.Order)
	copy(buf[n:], c.Proc)
	out := NewChromosome(buf[:n:n], buf[n:])
	out.raw, out.key, out.hasKey = c.raw, c.key, c.hasKey
	return out
}

// Genes returns independent copies of the genotype's order and assignment
// strings. Serializers that outlive the chromosome — the dist runtime's
// island checkpoints — use it instead of aliasing Order/Proc, so a frozen
// snapshot can never observe a slice some later consumer re-wraps.
func (c *Chromosome) Genes() (order, proc []int) {
	order = append([]int(nil), c.Order...)
	proc = append([]int(nil), c.Proc...)
	return order, proc
}

// Decode builds (and memoizes) the schedule the chromosome represents.
// Operators maintain the invariant that Order is a topological order, so the
// trusted constructor applies; malformed genotypes (non-permutations,
// out-of-range processors, same-processor precedence inversions) are still
// rejected with an error.
func (c *Chromosome) Decode(w *platform.Workload) (*schedule.Schedule, error) {
	if c.decoded != nil {
		return c.decoded, nil
	}
	s, err := schedule.FromOrderTrusted(w, c.Order, c.Proc)
	if err != nil {
		return nil, fmt.Errorf("robust: invalid chromosome: %w", err)
	}
	c.decoded = s
	c.parent = nil // a decoded chromosome no longer needs its ancestry
	return s, nil
}

// DecodeWith is Decode on the solver's pooled decoder: the schedule is built
// into storage embedded in the chromosome, so a steady-state decode costs
// exactly the decoder's two arena allocations.
func (c *Chromosome) DecodeWith(d *schedule.Decoder) (*schedule.Schedule, error) {
	if c.decoded != nil {
		return c.decoded, nil
	}
	if err := d.DecodeInto(&c.decodedVal, c.Order, c.Proc); err != nil {
		return nil, fmt.Errorf("robust: invalid chromosome: %w", err)
	}
	c.decoded = &c.decodedVal
	c.parent = nil // a decoded chromosome no longer needs its ancestry
	return c.decoded, nil
}

// keyBase is the (odd, invertible mod 2^64) weight base of the rolling
// genotype hash; keyGene biases every gene by one so task/processor 0
// still contributes to its position's term.
const keyBase = 0x9e3779b97f4a7c15

func keyGene(v int) uint64 { return uint64(uint32(v)) + 1 }

// keyPow serves the grow-only table of keyBase powers; readers are
// lock-free (atomic load), growth copies under a mutex.
var keyPow struct {
	mu  sync.Mutex
	tab atomic.Value // []uint64; tab[i] = keyBase^i
}

func keyPowers(k int) []uint64 {
	if t, _ := keyPow.tab.Load().([]uint64); len(t) >= k {
		return t
	}
	keyPow.mu.Lock()
	defer keyPow.mu.Unlock()
	t, _ := keyPow.tab.Load().([]uint64)
	if len(t) >= k {
		return t
	}
	nt := make([]uint64, k+k/2+8)
	nt[0] = 1
	for i := 1; i < len(nt); i++ {
		nt[i] = nt[i-1] * keyBase
	}
	keyPow.tab.Store(nt)
	return nt
}

// mixKey is the 64-bit murmur3 finalizer: the rolling raw hash is additive
// and position-weighted, so low-entropy genotypes need the avalanche to
// spread across the metrics-cache shards.
func mixKey(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Key fingerprints the genotype for the GA's initial-population uniqueness
// check and the solver's metrics cache. It is the avalanched form of a
// position-weighted polynomial over the genes, memoized on the chromosome:
// the operators update the polynomial incrementally from the parent's in
// O(changed genes), so keying a child stops re-hashing the unchanged
// prefix (Key was the single hottest function of a cached ε-constraint
// solve before memoization). Equal genotypes always collide by
// construction; a collision between distinct genotypes is benign everywhere
// it is consumed — the GA redraws one "duplicate" random individual, and
// the metrics cache verifies full genotype equality before trusting a hit.
func (c *Chromosome) Key() uint64 {
	if c.hasKey {
		return c.key
	}
	n := len(c.Order)
	pow := keyPowers(n + len(c.Proc))
	raw := uint64(0)
	for i, v := range c.Order {
		raw += keyGene(v) * pow[i]
	}
	for v, p := range c.Proc {
		raw += keyGene(p) * pow[n+v]
	}
	c.raw = raw
	c.key = mixKey(raw)
	c.hasKey = true
	return c.key
}

// Crossover implements the paper's single-point operator (Section 4.2.5).
//
// Scheduling strings: a random cut splits both parents; each child keeps
// its own left part and reorders its right-part tasks by their relative
// order in the other parent. Because both parents are topological orders,
// the children are too: a precedence u→v with u left / v right is trivially
// respected, both-left keeps the parent's order, and both-right inherits
// the other parent's (topological) relative order.
//
// Assignment strings: each parent's assignment is viewed as a processor
// string indexed by task; a second random cut exchanges the right parts.
//
// Alongside the children, Crossover reports each child's first divergence
// from its base parent (c1 from a, c2 from b): the smallest scheduling-
// string position at which the child's (order, processor-of-ordered-task)
// pair differs, i.e. a valid firstDirty for schedule.Decoder.DecodeDelta.
// The proc exchange is by task id, so a reassigned task can sit anywhere
// in the child's scheduling string; the scan below resolves its child
// position. len(Order) means the child is genotype-identical to the parent.
func Crossover(a, b *Chromosome, r *rng.Source) (*Chromosome, *Chromosome, int, int) {
	n := len(a.Order)
	c1, c2 := a.Clone(), b.Clone()
	d1, d2 := n, n
	if n >= 2 {
		sc := getOpScratch(n)
		cut := 1 + r.Intn(n-1)
		reorderTail(c1.Order, cut, b.Order, sc.mark)
		reorderTail(c2.Order, cut, a.Order, sc.mark)
		pcut := 1 + r.Intn(n-1)
		for v := pcut; v < n; v++ {
			c1.Proc[v], c2.Proc[v] = b.Proc[v], a.Proc[v]
		}
		d1 = finishChild(c1, a, cut, pcut, sc.pos)
		d2 = finishChild(c2, b, cut, pcut, sc.pos)
		putOpScratch(sc)
	}
	c1.parent, c1.firstDirty = a, d1
	c2.parent, c2.firstDirty = b, d2
	return c1, c2, d1, d2
}

// finishChild computes a crossover child's first divergence from its base
// parent and, when the parent's key memo carried over through Clone,
// adjusts the child's rolling hash by differencing exactly the changed
// genes. It reads the parent but never writes to it. pos must have
// capacity n; its contents are overwritten.
func finishChild(c, p *Chromosome, cut, pcut int, pos []int) int {
	n := len(c.Order)
	d := n
	upd := c.hasKey
	var pow []uint64
	var delta uint64
	if upd {
		pow = keyPowers(2 * n)
	}
	for i := cut; i < n; i++ {
		if nv, ov := c.Order[i], p.Order[i]; nv != ov {
			if i < d {
				d = i
			}
			if upd {
				delta += (keyGene(nv) - keyGene(ov)) * pow[i]
			}
		}
	}
	pos = pos[:n]
	for i, t := range c.Order {
		pos[t] = i
	}
	for v := pcut; v < n; v++ {
		if np, op := c.Proc[v], p.Proc[v]; np != op {
			if pos[v] < d {
				d = pos[v]
			}
			if upd {
				delta += (keyGene(np) - keyGene(op)) * pow[n+v]
			}
		}
	}
	if upd {
		c.raw += delta
		c.key = mixKey(c.raw)
	}
	return d
}

// reorderTail rewrites order[cut:] so its tasks appear in the relative
// order they have in ref. mark must be an all-false slice of at least
// len(order) entries; it is restored to all-false before returning.
func reorderTail(order []int, cut int, ref []int, mark []bool) {
	for _, v := range order[cut:] {
		mark[v] = true
	}
	i := cut
	for _, v := range ref {
		if mark[v] {
			order[i] = v
			i++
		}
	}
	for _, v := range order[cut:] {
		mark[v] = false
	}
}

// opScratch pools the per-operator working buffers that used to be per-call
// map allocations in Crossover and Mutate. The mark slice is kept all-false
// between uses.
type opScratch struct {
	pos  []int
	mark []bool
}

var opPool = sync.Pool{New: func() any { return new(opScratch) }}

func getOpScratch(n int) *opScratch {
	sc := opPool.Get().(*opScratch)
	if cap(sc.pos) < n {
		sc.pos = make([]int, n)
		sc.mark = make([]bool, n)
	}
	return sc
}

func putOpScratch(sc *opScratch) { opPool.Put(sc) }

// Mutate implements the paper's operator (Section 4.2.6): a random task v
// is moved to a uniformly random position within its feasible range in the
// scheduling string — strictly after the last of its immediate predecessors
// and strictly before the first of its immediate successors — and then
// reassigned to a uniformly random processor.
//
// The second result is the child's first divergence from c, in the same
// sense as Crossover's: the move rewrites every scheduling-string position
// between the old and new index of v (a permutation shift changes all of
// them), and the reassignment dirties v at its new position, so the
// divergence is min(from, to) when v moved and to when only its processor
// changed; len(Order) if the mutation was a no-op.
func Mutate(w *platform.Workload, c *Chromosome, r *rng.Source) (*Chromosome, int) {
	out := c.Clone()
	n := len(out.Order)
	v := r.Intn(n)
	sc := getOpScratch(n)
	defer putOpScratch(sc)
	pos := sc.pos[:n]
	for i, t := range out.Order {
		pos[t] = i
	}
	lo := 0 // first feasible index for v
	for _, a := range w.G.Predecessors(v) {
		if p := pos[a.To] + 1; p > lo {
			lo = p
		}
	}
	hi := n - 1 // last feasible index for v
	for _, a := range w.G.Successors(v) {
		if p := pos[a.To] - 1; p < hi {
			hi = p
		}
	}
	from := pos[v]
	to := lo + r.Intn(hi-lo+1)
	moveWithin(out.Order, from, to)
	op := out.Proc[v]
	np := r.Intn(w.M())
	out.Proc[v] = np
	d := n
	if from != to {
		if d = to; from < to {
			d = from
		}
	} else if np != op {
		d = to
	}
	if out.hasKey {
		pow := keyPowers(2 * n)
		var delta uint64
		lo, hi := from, to
		if lo > hi {
			lo, hi = hi, lo
		}
		// c.Order still holds the pre-move values over the shifted span.
		for i := lo; i <= hi; i++ {
			delta += (keyGene(out.Order[i]) - keyGene(c.Order[i])) * pow[i]
		}
		delta += (keyGene(np) - keyGene(op)) * pow[n+v]
		out.raw += delta
		out.key = mixKey(out.raw)
	}
	out.parent, out.firstDirty = c, d
	return out, d
}

// moveWithin moves the element at index from to index to, shifting the
// elements in between.
func moveWithin(xs []int, from, to int) {
	v := xs[from]
	switch {
	case from < to:
		copy(xs[from:to], xs[from+1:to+1])
	case from > to:
		copy(xs[to+1:from+1], xs[to:from])
	}
	xs[to] = v
}
