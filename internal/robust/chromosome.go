// Package robust implements the paper's contribution: the bi-objective
// genetic algorithm of Section 4 that schedules a DAG onto heterogeneous
// processors to maximize robustness (average slack) subject to the
// ε-constraint M0(s) <= ε·M_HEFT, together with the two single-objective
// modes (minimize makespan / maximize slack) used by the Fig. 2 and Fig. 3
// experiments.
package robust

import (
	"fmt"
	"sync"

	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// Chromosome is the GA encoding of Section 4.2.1: a scheduling string (a
// topological order of the task graph giving the global execution order)
// plus the task→processor assignment. The per-processor assignment strings
// of the paper are recovered by filtering the scheduling string by
// processor, which is exactly how the paper's mutation operator re-inserts
// tasks ("keeping the relative order of all the tasks assigned on that
// processor according to the scheduling string").
type Chromosome struct {
	Order []int // scheduling string: a topological order of the tasks
	Proc  []int // assignment: processor of each task (indexed by task id)

	// decoded memoizes the schedule; operators always produce fresh
	// chromosomes, so the cache never goes stale. When the chromosome is
	// decoded through a schedule.Decoder the schedule lives in decodedVal,
	// so the steady-state cost per decode is just the two arena
	// allocations inside DecodeInto.
	decoded    *schedule.Schedule
	decodedVal schedule.Schedule

	// metr memoizes the fitness-relevant metrics triple. It is populated
	// either from the decoded schedule or — via the solver's MetricsCache —
	// without decoding at all, which is what makes re-evaluations and
	// genotype-duplicate individuals free.
	metr    schedMetrics
	hasMetr bool
}

// NewChromosome wraps the given order and assignment without copying.
func NewChromosome(order, proc []int) *Chromosome {
	return &Chromosome{Order: order, Proc: proc}
}

// Random generates a valid chromosome uniformly: a random topological order
// and independent uniform processor choices (Section 4.2.2).
func Random(w *platform.Workload, r *rng.Source) *Chromosome {
	order := w.G.RandomTopologicalOrder(r)
	proc := make([]int, w.N())
	for i := range proc {
		proc[i] = r.Intn(w.M())
	}
	return NewChromosome(order, proc)
}

// FromSchedule encodes an existing schedule (e.g. HEFT's) as a chromosome,
// used to seed the initial population.
func FromSchedule(s *schedule.Schedule) *Chromosome {
	c := NewChromosome(s.Order(), s.ProcAssignment())
	c.decoded = s
	c.metr = metricsFromSchedule(s)
	c.hasMetr = true
	return c
}

// Clone returns a deep copy without the memoized schedule. Order and Proc
// share one backing array (carved with full-capacity subslices, so neither
// can grow into the other) — the GA's operators clone every offspring, and
// one allocation instead of two is measurable over a long run.
func (c *Chromosome) Clone() *Chromosome {
	n, p := len(c.Order), len(c.Proc)
	buf := make([]int, n+p)
	copy(buf[:n], c.Order)
	copy(buf[n:], c.Proc)
	return NewChromosome(buf[:n:n], buf[n:])
}

// Decode builds (and memoizes) the schedule the chromosome represents.
// Operators maintain the invariant that Order is a topological order, so the
// trusted constructor applies; malformed genotypes (non-permutations,
// out-of-range processors, same-processor precedence inversions) are still
// rejected with an error.
func (c *Chromosome) Decode(w *platform.Workload) (*schedule.Schedule, error) {
	if c.decoded != nil {
		return c.decoded, nil
	}
	s, err := schedule.FromOrderTrusted(w, c.Order, c.Proc)
	if err != nil {
		return nil, fmt.Errorf("robust: invalid chromosome: %w", err)
	}
	c.decoded = s
	return s, nil
}

// DecodeWith is Decode on the solver's pooled decoder: the schedule is built
// into storage embedded in the chromosome, so a steady-state decode costs
// exactly the decoder's two arena allocations.
func (c *Chromosome) DecodeWith(d *schedule.Decoder) (*schedule.Schedule, error) {
	if c.decoded != nil {
		return c.decoded, nil
	}
	if err := d.DecodeInto(&c.decodedVal, c.Order, c.Proc); err != nil {
		return nil, fmt.Errorf("robust: invalid chromosome: %w", err)
	}
	c.decoded = &c.decodedVal
	return c.decoded, nil
}

// Key fingerprints the genotype for the GA's initial-population uniqueness
// check and the solver's metrics cache: a multiplicative word-wise hash
// (one XOR-multiply per gene instead of the four byte steps of classical
// FNV-1a — Key was the single hottest function of a cached ε-constraint
// solve) followed by a murmur-style avalanche so low-entropy genotypes
// still spread across the cache shards. Equal genotypes always collide by
// construction; a collision between distinct genotypes is benign everywhere
// it is consumed — the GA redraws one "duplicate" random individual, and
// the metrics cache verifies full genotype equality before trusting a hit.
func (c *Chromosome) Key() uint64 {
	const m = 0x9e3779b97f4a7c15
	h := uint64(14695981039346656037)
	for _, v := range c.Order {
		h = (h ^ uint64(uint32(v))) * m
	}
	for _, v := range c.Proc {
		h = (h ^ uint64(uint32(v))) * m
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Crossover implements the paper's single-point operator (Section 4.2.5).
//
// Scheduling strings: a random cut splits both parents; each child keeps
// its own left part and reorders its right-part tasks by their relative
// order in the other parent. Because both parents are topological orders,
// the children are too: a precedence u→v with u left / v right is trivially
// respected, both-left keeps the parent's order, and both-right inherits
// the other parent's (topological) relative order.
//
// Assignment strings: each parent's assignment is viewed as a processor
// string indexed by task; a second random cut exchanges the right parts.
func Crossover(a, b *Chromosome, r *rng.Source) (*Chromosome, *Chromosome) {
	n := len(a.Order)
	c1, c2 := a.Clone(), b.Clone()
	if n >= 2 {
		sc := getOpScratch(n)
		cut := 1 + r.Intn(n-1)
		reorderTail(c1.Order, cut, b.Order, sc.mark)
		reorderTail(c2.Order, cut, a.Order, sc.mark)
		putOpScratch(sc)
		pcut := 1 + r.Intn(n-1)
		for v := pcut; v < n; v++ {
			c1.Proc[v], c2.Proc[v] = b.Proc[v], a.Proc[v]
		}
	}
	return c1, c2
}

// reorderTail rewrites order[cut:] so its tasks appear in the relative
// order they have in ref. mark must be an all-false slice of at least
// len(order) entries; it is restored to all-false before returning.
func reorderTail(order []int, cut int, ref []int, mark []bool) {
	for _, v := range order[cut:] {
		mark[v] = true
	}
	i := cut
	for _, v := range ref {
		if mark[v] {
			order[i] = v
			i++
		}
	}
	for _, v := range order[cut:] {
		mark[v] = false
	}
}

// opScratch pools the per-operator working buffers that used to be per-call
// map allocations in Crossover and Mutate. The mark slice is kept all-false
// between uses.
type opScratch struct {
	pos  []int
	mark []bool
}

var opPool = sync.Pool{New: func() any { return new(opScratch) }}

func getOpScratch(n int) *opScratch {
	sc := opPool.Get().(*opScratch)
	if cap(sc.pos) < n {
		sc.pos = make([]int, n)
		sc.mark = make([]bool, n)
	}
	return sc
}

func putOpScratch(sc *opScratch) { opPool.Put(sc) }

// Mutate implements the paper's operator (Section 4.2.6): a random task v
// is moved to a uniformly random position within its feasible range in the
// scheduling string — strictly after the last of its immediate predecessors
// and strictly before the first of its immediate successors — and then
// reassigned to a uniformly random processor.
func Mutate(w *platform.Workload, c *Chromosome, r *rng.Source) *Chromosome {
	out := c.Clone()
	n := len(out.Order)
	v := r.Intn(n)
	sc := getOpScratch(n)
	defer putOpScratch(sc)
	pos := sc.pos[:n]
	for i, t := range out.Order {
		pos[t] = i
	}
	lo := 0 // first feasible index for v
	for _, a := range w.G.Predecessors(v) {
		if p := pos[a.To] + 1; p > lo {
			lo = p
		}
	}
	hi := n - 1 // last feasible index for v
	for _, a := range w.G.Successors(v) {
		if p := pos[a.To] - 1; p < hi {
			hi = p
		}
	}
	newPos := lo + r.Intn(hi-lo+1)
	moveWithin(out.Order, pos[v], newPos)
	out.Proc[v] = r.Intn(w.M())
	return out
}

// moveWithin moves the element at index from to index to, shifting the
// elements in between.
func moveWithin(xs []int, from, to int) {
	v := xs[from]
	switch {
	case from < to:
		copy(xs[from:to], xs[from+1:to+1])
	case from > to:
		copy(xs[to+1:from+1], xs[to:from])
	}
	xs[to] = v
}
