package robust

import (
	"fmt"
	"math"
	"sort"

	"robsched/internal/heft"
	"robsched/internal/pareto"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// ParetoOptions configures the NSGA-II front solver, an alternative to the
// paper's ε-constraint method (its Section 4 cites Deb's book, from which
// both approaches come): instead of one slack-maximal schedule under a
// makespan bound, it returns the whole approximated Pareto front of
// (minimize makespan, maximize slack).
type ParetoOptions struct {
	PopSize        int
	CrossoverRate  float64
	MutationRate   float64
	MaxGenerations int
	SlackMetric    SlackMetric
	// NoHEFTSeed drops the HEFT chromosome from the initial population.
	NoHEFTSeed bool
	// Workers bounds the goroutines decoding each population (0 =
	// GOMAXPROCS, 1 = serial); results are identical for every setting.
	Workers int
}

// PaperParetoOptions mirrors the paper's GA parameters for the front solver.
func PaperParetoOptions() ParetoOptions {
	return ParetoOptions{PopSize: 40, CrossoverRate: 0.9, MutationRate: 0.1, MaxGenerations: 250}
}

// ParetoPoint is one non-dominated schedule of the final front.
type ParetoPoint struct {
	Schedule *schedule.Schedule
	Makespan float64
	Slack    float64
}

// SolvePareto runs NSGA-II (fast non-dominated sorting, crowding-distance
// selection, elitist (µ+λ) survival) over the scheduling chromosome and
// returns the final front sorted by increasing makespan, deduplicated by
// objective values.
func SolvePareto(w *platform.Workload, opt ParetoOptions, r *rng.Source) ([]ParetoPoint, error) {
	if opt.PopSize < 4 {
		return nil, fmt.Errorf("robust: NSGA-II needs PopSize >= 4, got %d", opt.PopSize)
	}
	if opt.PopSize%2 != 0 {
		return nil, fmt.Errorf("robust: NSGA-II needs an even PopSize, got %d", opt.PopSize)
	}
	if opt.MaxGenerations < 1 {
		return nil, fmt.Errorf("robust: MaxGenerations=%d must be >= 1", opt.MaxGenerations)
	}
	if opt.CrossoverRate < 0 || opt.CrossoverRate > 1 || opt.MutationRate < 0 || opt.MutationRate > 1 {
		return nil, fmt.Errorf("robust: rates out of [0,1]")
	}

	slackOf := func(s *schedule.Schedule) float64 {
		if opt.SlackMetric == MinSlack {
			return s.MinSlack()
		}
		return s.AvgSlack()
	}
	// Objectives are minimized: (makespan, -slack).
	dec := schedule.NewDecoder(w)
	objectives := func(pop []*Chromosome) ([][]float64, error) {
		decodePopulation(dec, pop, opt.Workers)
		objs := make([][]float64, len(pop))
		for i, c := range pop {
			s, err := c.DecodeWith(dec)
			if err != nil {
				return nil, err
			}
			objs[i] = []float64{s.Makespan(), -slackOf(s)}
		}
		return objs, nil
	}

	pop := make([]*Chromosome, 0, opt.PopSize)
	if !opt.NoHEFTSeed {
		hs, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			return nil, err
		}
		pop = append(pop, FromSchedule(hs))
	}
	for len(pop) < opt.PopSize {
		pop = append(pop, Random(w, r))
	}
	objs, err := objectives(pop)
	if err != nil {
		return nil, err
	}
	rank, crowd := rankAndCrowd(objs)

	for gen := 0; gen < opt.MaxGenerations; gen++ {
		// Binary tournaments on (rank, crowding) produce the mating pool;
		// crossover/mutation produce λ = µ offspring.
		offspring := make([]*Chromosome, 0, opt.PopSize)
		pick := func() int {
			a, b := r.Intn(len(pop)), r.Intn(len(pop))
			if rank[a] < rank[b] || (rank[a] == rank[b] && crowd[a] > crowd[b]) {
				return a
			}
			return b
		}
		for len(offspring) < opt.PopSize {
			pa, pb := pop[pick()], pop[pick()]
			var c1, c2 *Chromosome
			if r.Float64() < opt.CrossoverRate {
				c1, c2, _, _ = Crossover(pa, pb, r)
			} else {
				c1, c2 = pa.Clone(), pb.Clone()
			}
			if r.Float64() < opt.MutationRate {
				c1, _ = Mutate(w, c1, r)
			}
			if r.Float64() < opt.MutationRate {
				c2, _ = Mutate(w, c2, r)
			}
			offspring = append(offspring, c1, c2)
		}
		// (µ+λ) survival by front rank, then crowding.
		combined := append(append([]*Chromosome{}, pop...), offspring...)
		cobjs, err := objectives(combined)
		if err != nil {
			return nil, err
		}
		fronts := pareto.NonDominatedSort(cobjs)
		next := make([]*Chromosome, 0, opt.PopSize)
		nextObjs := make([][]float64, 0, opt.PopSize)
		for _, f := range fronts {
			if len(next)+len(f) <= opt.PopSize {
				for _, i := range f {
					next = append(next, combined[i])
					nextObjs = append(nextObjs, cobjs[i])
				}
				continue
			}
			// Partial front: keep the most crowded-out (largest distance).
			cd := pareto.CrowdingDistance(cobjs, f)
			order := make([]int, len(f))
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool { return cd[order[a]] > cd[order[b]] })
			for _, oi := range order {
				if len(next) == opt.PopSize {
					break
				}
				next = append(next, combined[f[oi]])
				nextObjs = append(nextObjs, cobjs[f[oi]])
			}
			break
		}
		pop, objs = next, nextObjs
		rank, crowd = rankAndCrowd(objs)
	}

	// Final front, sorted by makespan, deduplicated on objective values.
	front := pareto.Filter(objs)
	sort.Slice(front, func(a, b int) bool { return objs[front[a]][0] < objs[front[b]][0] })
	var out []ParetoPoint
	for _, i := range front {
		s, err := pop[i].Decode(w)
		if err != nil {
			return nil, err
		}
		p := ParetoPoint{Schedule: s, Makespan: objs[i][0], Slack: -objs[i][1]}
		if len(out) > 0 && nearlyEqual(out[len(out)-1].Makespan, p.Makespan) && nearlyEqual(out[len(out)-1].Slack, p.Slack) {
			continue
		}
		out = append(out, p)
	}
	return out, nil
}

func nearlyEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// rankAndCrowd returns each individual's front rank and crowding distance.
func rankAndCrowd(objs [][]float64) ([]int, []float64) {
	n := len(objs)
	rank := make([]int, n)
	crowd := make([]float64, n)
	for fi, f := range pareto.NonDominatedSort(objs) {
		cd := pareto.CrowdingDistance(objs, f)
		for k, i := range f {
			rank[i] = fi
			crowd[i] = cd[k]
		}
	}
	return rank, crowd
}

// SolveWeightedSum is the classical scalarization comparator to the
// ε-constraint method: it maximizes
//
//	weight·(M_HEFT/M0) + (1−weight)·(slack/M_HEFT)
//
// with the single-objective GA engine, normalizing both objectives by the
// HEFT makespan so the weight is dimensionless. weight = 1 reduces to
// makespan minimization, weight = 0 to slack maximization.
func SolveWeightedSum(w *platform.Workload, weight float64, opt Options, r *rng.Source) (*Result, error) {
	if weight < 0 || weight > 1 {
		return nil, fmt.Errorf("robust: weight %g out of [0,1]", weight)
	}
	hs, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		return nil, err
	}
	mheft := hs.Makespan()
	if opt.PopSize == 0 {
		def := PaperOptions(EpsilonConstraint, 1)
		opt.PopSize = def.PopSize
		opt.CrossoverRate = def.CrossoverRate
		opt.MutationRate = def.MutationRate
		opt.MaxGenerations = def.MaxGenerations
		opt.Stagnation = def.Stagnation
	}
	slackOf := func(s *schedule.Schedule) float64 {
		if opt.SlackMetric == MinSlack {
			return s.MinSlack()
		}
		return s.AvgSlack()
	}
	res, err := runCustomFitness(w, opt, r, hs, func(s *schedule.Schedule) float64 {
		return weight*(mheft/s.Makespan()) + (1-weight)*(slackOf(s)/mheft)
	})
	if err != nil {
		return nil, err
	}
	res.HEFT = hs
	res.MHEFT = mheft
	return res, nil
}
