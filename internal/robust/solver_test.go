package robust

import (
	"math"
	"testing"

	"robsched/internal/heft"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// quickOptions returns a small-but-effective GA configuration for tests.
func quickOptions(mode Mode, eps float64) Options {
	return Options{
		Mode: mode, Eps: eps,
		PopSize: 12, CrossoverRate: 0.9, MutationRate: 0.2,
		MaxGenerations: 80, Stagnation: 0,
	}
}

func TestSolveMinMakespanNeverWorseThanHEFT(t *testing.T) {
	// The HEFT chromosome seeds the population and elitism preserves the
	// best individual, so the final makespan can never exceed HEFT's.
	for seed := uint64(0); seed < 4; seed++ {
		w := testWorkload(t, 100+seed, 30, 4)
		res, err := Solve(w, quickOptions(MinMakespan, 0), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := schedule.Validate(res.Schedule); err != nil {
			t.Fatal(err)
		}
		if res.Schedule.Makespan() > res.MHEFT+1e-9 {
			t.Fatalf("seed %d: GA makespan %g worse than HEFT %g",
				seed, res.Schedule.Makespan(), res.MHEFT)
		}
	}
}

func TestSolveMinMakespanImprovesOverRandom(t *testing.T) {
	w := testWorkload(t, 200, 30, 4)
	r := rng.New(1)
	res, err := Solve(w, quickOptions(MinMakespan, 0), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := 0; i < 20; i++ {
		rs, err := heft.RandomSchedule(w, r)
		if err != nil {
			t.Fatal(err)
		}
		worst += rs.Makespan()
	}
	if avg := worst / 20; res.Schedule.Makespan() >= avg {
		t.Fatalf("GA makespan %g not better than random average %g",
			res.Schedule.Makespan(), avg)
	}
}

func TestSolveMaxSlackIncreasesSlack(t *testing.T) {
	w := testWorkload(t, 300, 30, 4)
	res, err := Solve(w, quickOptions(MaxSlack, 0), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Seeded with HEFT and elitist, so slack must be at least HEFT's, and
	// for a 30-task/4-proc instance the GA should strictly improve it.
	if res.Schedule.AvgSlack() < res.HEFT.AvgSlack()-1e-9 {
		t.Fatalf("GA slack %g below HEFT slack %g",
			res.Schedule.AvgSlack(), res.HEFT.AvgSlack())
	}
	if res.Schedule.AvgSlack() <= res.HEFT.AvgSlack() {
		t.Fatalf("GA did not improve slack at all (%g)", res.Schedule.AvgSlack())
	}
}

func TestSolveEpsilonConstraintFeasible(t *testing.T) {
	for _, eps := range []float64{1.0, 1.3, 2.0} {
		w := testWorkload(t, 400, 30, 4)
		res, err := Solve(w, quickOptions(EpsilonConstraint, eps), rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := schedule.Validate(res.Schedule); err != nil {
			t.Fatal(err)
		}
		bound := eps * res.MHEFT
		if res.Schedule.Makespan() > bound+1e-9 {
			t.Fatalf("eps=%g: result infeasible: M0 %g > bound %g",
				eps, res.Schedule.Makespan(), bound)
		}
		if res.Schedule.AvgSlack() < res.HEFT.AvgSlack()-1e-9 {
			t.Fatalf("eps=%g: slack %g below HEFT's %g",
				eps, res.Schedule.AvgSlack(), res.HEFT.AvgSlack())
		}
	}
}

func TestLargerEpsilonMoreSlack(t *testing.T) {
	// Relaxing the makespan bound can only expand the feasible set, so the
	// attained slack should (weakly, modulo search noise) increase. We
	// compare the extremes with the same seed and allow a tiny tolerance.
	w := testWorkload(t, 500, 40, 4)
	tight, err := Solve(w, quickOptions(EpsilonConstraint, 1.0), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Solve(w, quickOptions(EpsilonConstraint, 2.0), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if loose.Schedule.AvgSlack() < tight.Schedule.AvgSlack()*0.9 {
		t.Fatalf("eps=2.0 slack %g much smaller than eps=1.0 slack %g",
			loose.Schedule.AvgSlack(), tight.Schedule.AvgSlack())
	}
}

func TestSolveNoHEFTSeed(t *testing.T) {
	w := testWorkload(t, 600, 20, 3)
	opt := quickOptions(EpsilonConstraint, 1.5)
	opt.NoHEFTSeed = true
	res, err := Solve(w, opt, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil || res.HEFT == nil {
		t.Fatal("missing schedules")
	}
}

func TestSolveMinSlackMetric(t *testing.T) {
	w := testWorkload(t, 650, 20, 3)
	opt := quickOptions(EpsilonConstraint, 1.5)
	opt.SlackMetric = MinSlack
	res, err := Solve(w, opt, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan() > 1.5*res.MHEFT+1e-9 {
		t.Fatal("min-slack run broke the constraint")
	}
}

func TestSolveDefaultsToPaperOptions(t *testing.T) {
	w := testWorkload(t, 700, 10, 2)
	// Zero GA parameters: Solve must substitute the paper defaults rather
	// than fail. Keep the graph tiny so the 1000-generation default (with
	// its 100-generation stagnation window) stays fast.
	res, err := Solve(w, Options{Mode: EpsilonConstraint, Eps: 1.2}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Generations == 0 {
		t.Fatal("no generations evolved")
	}
	if !res.Stagnated && res.Generations != 1000 {
		t.Fatalf("unexpected termination after %d generations", res.Generations)
	}
}

func TestSolveRejectsBadEps(t *testing.T) {
	w := testWorkload(t, 800, 10, 2)
	if _, err := Solve(w, quickOptions(EpsilonConstraint, 0), rng.New(9)); err == nil {
		t.Fatal("eps=0 accepted")
	}
}

func TestOnGenerationObservesEveryGeneration(t *testing.T) {
	w := testWorkload(t, 900, 15, 3)
	opt := quickOptions(MinMakespan, 0)
	opt.MaxGenerations = 10
	var gens []int
	var spans []float64
	opt.OnGeneration = func(gen int, best *schedule.Schedule) {
		gens = append(gens, gen)
		spans = append(spans, best.Makespan())
	}
	if _, err := Solve(w, opt, rng.New(10)); err != nil {
		t.Fatal(err)
	}
	// Generation 0 (initial population) plus 10 evolved generations.
	if len(gens) != 11 {
		t.Fatalf("observer called %d times, want 11", len(gens))
	}
	for i, g := range gens {
		if g != i {
			t.Fatalf("generation sequence %v not consecutive", gens)
		}
	}
	// In MinMakespan mode with elitism, the observed best makespan is
	// non-increasing across generations.
	for i := 1; i < len(spans); i++ {
		if spans[i] > spans[i-1]+1e-9 {
			t.Fatalf("best makespan increased at generation %d: %g -> %g",
				i, spans[i-1], spans[i])
		}
	}
	if math.IsNaN(spans[0]) {
		t.Fatal("NaN makespan observed")
	}
}

// TestEqn8FitnessOrdering exercises the ε-constraint fitness directly:
// feasible individuals rank by slack, infeasible ones strictly below every
// feasible one, worse with larger violation.
func TestEqn8FitnessOrdering(t *testing.T) {
	w := testWorkload(t, 950, 25, 4)
	r := rng.New(11)
	hs, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eval := evaluator{w: w, opt: Options{Mode: EpsilonConstraint, Eps: 1.2}, mheft: hs.Makespan(), dec: schedule.NewDecoder(w)}
	bound := 1.2 * hs.Makespan()
	// Collect a population with both kinds.
	var pop []*Chromosome
	for len(pop) < 30 {
		pop = append(pop, Random(w, r))
	}
	pop = append(pop, FromSchedule(hs)) // certainly feasible
	fit := eval.evaluate(pop)
	minFeasible, maxInfeasible := math.Inf(1), math.Inf(-1)
	nFeas, nInfeas := 0, 0
	for i, c := range pop {
		s, err := c.Decode(w)
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan() <= bound {
			nFeas++
			if fit[i] != s.AvgSlack() {
				t.Fatalf("feasible fitness %g != slack %g", fit[i], s.AvgSlack())
			}
			if fit[i] < minFeasible {
				minFeasible = fit[i]
			}
		} else {
			nInfeas++
			if fit[i] > maxInfeasible {
				maxInfeasible = fit[i]
			}
		}
	}
	if nFeas == 0 || nInfeas == 0 {
		t.Skipf("population not mixed (feasible=%d infeasible=%d)", nFeas, nInfeas)
	}
	if maxInfeasible >= minFeasible {
		t.Fatalf("infeasible fitness %g not below feasible minimum %g",
			maxInfeasible, minFeasible)
	}
	// Larger violation → smaller fitness among infeasible individuals.
	type vi struct{ m0, f float64 }
	var vis []vi
	for i, c := range pop {
		s, _ := c.Decode(w)
		if s.Makespan() > bound {
			vis = append(vis, vi{s.Makespan(), fit[i]})
		}
	}
	for i := 0; i < len(vis); i++ {
		for j := 0; j < len(vis); j++ {
			if vis[i].m0 < vis[j].m0-1e-9 && vis[i].f < vis[j].f-1e-9 {
				t.Fatalf("violation ordering broken: M0 %g fit %g vs M0 %g fit %g",
					vis[i].m0, vis[i].f, vis[j].m0, vis[j].f)
			}
		}
	}
}

// TestEqn8NoFeasibleFallback: when no individual satisfies the constraint,
// fitness must still rank by violation (smaller M0 is better).
func TestEqn8NoFeasibleFallback(t *testing.T) {
	w := testWorkload(t, 960, 25, 4)
	r := rng.New(12)
	hs, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An absurdly tight bound makes everything infeasible.
	eval := evaluator{w: w, opt: Options{Mode: EpsilonConstraint, Eps: 0.01}, mheft: hs.Makespan(), dec: schedule.NewDecoder(w)}
	var pop []*Chromosome
	for len(pop) < 10 {
		pop = append(pop, Random(w, r))
	}
	fit := eval.evaluate(pop)
	for i := range pop {
		for j := range pop {
			si, _ := pop[i].Decode(w)
			sj, _ := pop[j].Decode(w)
			if si.Makespan() < sj.Makespan()-1e-9 && fit[i] <= fit[j]-1e-12 {
				t.Fatalf("fallback ranking broken: M0 %g fit %g vs M0 %g fit %g",
					si.Makespan(), fit[i], sj.Makespan(), fit[j])
			}
		}
	}
}

func TestSolveWithIslands(t *testing.T) {
	w := testWorkload(t, 1100, 30, 4)
	opt := quickOptions(EpsilonConstraint, 1.4)
	opt.Islands = 3
	opt.MigrationEvery = 15
	res, err := Solve(w, opt, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan() > 1.4*res.MHEFT+1e-9 {
		t.Fatal("island result infeasible")
	}
	if res.Schedule.AvgSlack() < res.HEFT.AvgSlack()-1e-9 {
		t.Fatal("island result below HEFT slack (seed lost)")
	}
	// Islands must be incompatible with the trace observer.
	opt.OnGeneration = func(int, *schedule.Schedule) {}
	if _, err := Solve(w, opt, rng.New(21)); err == nil {
		t.Fatal("islands with OnGeneration accepted")
	}
}
