package robust

import (
	"sync"
	"sync/atomic"

	"robsched/internal/schedule"
)

// schedMetrics is the genotype-deterministic triple every GA fitness in this
// package is combined from. Caching it per genotype is sound because a
// chromosome's schedule — and hence its expected makespan and slack — is a
// pure function of (Order, Proc) for a fixed workload.
type schedMetrics struct {
	m0       float64
	avgSlack float64
	minSlack float64
}

func metricsFromSchedule(s *schedule.Schedule) schedMetrics {
	return schedMetrics{m0: s.Makespan(), avgSlack: s.AvgSlack(), minSlack: s.MinSlack()}
}

const (
	// cacheShardCount stripes the cache so concurrent islands (and the
	// parallel population decoders) rarely contend on the same mutex.
	cacheShardCount = 16
	// cacheShardCap bounds the entries per shard; a full shard is reset
	// wholesale. At the paper's n=100 this caps the cache near 26 MB —
	// an eviction can only cost a redundant decode, never correctness.
	cacheShardCap = 1024
)

// MetricsCache memoizes schedule metrics by genotype fingerprint, so the GA
// only pays the O(V+E) decode for genuinely novel genotypes: elitism copies,
// tournament-duplicated winners, crossovers of converged parents and no-op
// mutations all produce fresh *Chromosome pointers with already-seen
// genotypes. Every hit is confirmed by full genotype equality, so an FNV-1a
// collision degrades to a decode instead of corrupting a run.
//
// A MetricsCache is safe for concurrent use and MAY be shared across Solve
// calls — the metrics are independent of Mode, ε and the slack metric — but
// only on the same workload: entries from a different workload would alias
// genotypes with different schedules. experiments.RunSweep shares one cache
// across its whole ε grid per graph.
type MetricsCache struct {
	// keyFn overrides the genotype fingerprint, letting tests inject
	// colliding keys; nil means (*Chromosome).Key.
	keyFn  func(*Chromosome) uint64
	shards [cacheShardCount]cacheShard

	// Traffic counters (atomic; see Stats). The counts are deterministic
	// for a fixed GA trajectory: every lookup happens either in the serial
	// cache pass of ensureMetrics or on the serial EvaluateOne path, so
	// they cannot depend on Workers or scheduling.
	hits       atomic.Int64
	misses     atomic.Int64
	collisions atomic.Int64
	evictions  atomic.Int64
}

// CacheStats is a monotonic snapshot of a MetricsCache's traffic counters.
type CacheStats struct {
	// Hits and Misses partition every lookup.
	Hits   int64
	Misses int64
	// Collisions counts the misses that found entries under the same
	// fingerprint but failed the full genotype comparison — the FNV-1a
	// collision fallback degrading to a decode instead of a wrong metric.
	Collisions int64
	// Evictions counts wholesale shard resets (capacity pressure).
	Evictions int64
}

// Stats returns the cache's traffic counters; nil-safe (a nil cache reads
// all-zero). Callers observing a single run on a shared cache subtract a
// before-snapshot with Sub.
func (mc *MetricsCache) Stats() CacheStats {
	if mc == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:       mc.hits.Load(),
		Misses:     mc.misses.Load(),
		Collisions: mc.collisions.Load(),
		Evictions:  mc.evictions.Load(),
	}
}

// Sub returns the per-field difference s - prev, turning two monotonic
// snapshots into the traffic of the interval between them.
func (s CacheStats) Sub(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:       s.Hits - prev.Hits,
		Misses:     s.Misses - prev.Misses,
		Collisions: s.Collisions - prev.Collisions,
		Evictions:  s.Evictions - prev.Evictions,
	}
}

type cacheShard struct {
	mu sync.Mutex
	m  map[uint64][]cacheEntry
	n  int
}

// cacheEntry keeps the full genotype (order then proc, packed as int32)
// alongside the metrics so hits can be verified exactly.
type cacheEntry struct {
	geno []int32
	met  schedMetrics
}

// NewMetricsCache returns an empty cache ready for concurrent use.
func NewMetricsCache() *MetricsCache { return &MetricsCache{} }

func (mc *MetricsCache) key(c *Chromosome) uint64 {
	if mc.keyFn != nil {
		return mc.keyFn(c)
	}
	return c.Key()
}

// lookup returns the metrics recorded for c's genotype, if any. k must be
// mc.key(c); callers pass it in so the hot path hashes the genotype once.
func (mc *MetricsCache) lookup(k uint64, c *Chromosome) (schedMetrics, bool) {
	sh := &mc.shards[k%cacheShardCount]
	sh.mu.Lock()
	entries := sh.m[k]
	for _, e := range entries {
		if genoEqual(e.geno, c.Order, c.Proc) {
			sh.mu.Unlock()
			mc.hits.Add(1)
			return e.met, true
		}
	}
	sh.mu.Unlock()
	mc.misses.Add(1)
	if len(entries) > 0 {
		mc.collisions.Add(1)
	}
	return schedMetrics{}, false
}

// insert records the metrics of c's genotype under key k (= mc.key(c)),
// copying the genotype so later mutations of the caller's slices cannot
// corrupt the entry. Duplicate concurrent inserts of the same genotype
// (two workers decoding different pointers with equal genotypes) collapse
// to one entry.
func (mc *MetricsCache) insert(k uint64, c *Chromosome, met schedMetrics) {
	geno := make([]int32, 0, len(c.Order)+len(c.Proc))
	for _, v := range c.Order {
		geno = append(geno, int32(v))
	}
	for _, v := range c.Proc {
		geno = append(geno, int32(v))
	}
	sh := &mc.shards[k%cacheShardCount]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.n >= cacheShardCap {
		sh.m = nil
		sh.n = 0
		mc.evictions.Add(1)
	}
	if sh.m == nil {
		sh.m = make(map[uint64][]cacheEntry, 64)
	}
	for _, e := range sh.m[k] {
		if genoEqual(e.geno, c.Order, c.Proc) {
			return
		}
	}
	sh.m[k] = append(sh.m[k], cacheEntry{geno: geno, met: met})
	sh.n++
}

// genoEqual reports whether the packed genotype equals (order, proc).
func genoEqual(geno []int32, order, proc []int) bool {
	if len(geno) != len(order)+len(proc) {
		return false
	}
	for i, v := range order {
		if geno[i] != int32(v) {
			return false
		}
	}
	off := len(order)
	for i, v := range proc {
		if geno[off+i] != int32(v) {
			return false
		}
	}
	return true
}
