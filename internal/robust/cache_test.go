package robust

import (
	"fmt"
	"testing"

	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// solveTrace is everything observable about one Solve run that the cache and
// worker-count invariance properties compare: the final best schedule's
// genotype and metrics, the termination bookkeeping, and (single-population
// runs only) the per-generation best-makespan/slack trajectory.
type solveTrace struct {
	order, proc []int
	m0, slack   float64
	gens        int
	stagnated   bool
	trajM0      []float64
	trajSlack   []float64
}

// solveTraced solves a fresh copy of the workload with the given options and
// collects the trace. Islands runs don't support OnGeneration, so their
// trace carries only the final result.
func solveTraced(t *testing.T, opt Options, seed uint64, wseed uint64, n, m int) solveTrace {
	t.Helper()
	w := testWorkload(t, wseed, n, m)
	var tr solveTrace
	if opt.Islands <= 1 {
		opt.OnGeneration = func(gen int, best *schedule.Schedule) {
			tr.trajM0 = append(tr.trajM0, best.Makespan())
			tr.trajSlack = append(tr.trajSlack, best.AvgSlack())
		}
	}
	res, err := Solve(w, opt, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	tr.order = res.Schedule.Order()
	tr.proc = res.Schedule.ProcAssignment()
	tr.m0 = res.Schedule.Makespan()
	tr.slack = res.Schedule.AvgSlack()
	tr.gens = res.Generations
	tr.stagnated = res.Stagnated
	return tr
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func assertTracesIdentical(t *testing.T, label string, a, b solveTrace) {
	t.Helper()
	if !eqInts(a.order, b.order) || !eqInts(a.proc, b.proc) {
		t.Fatalf("%s: best genotypes differ", label)
	}
	if a.m0 != b.m0 || a.slack != b.slack {
		t.Fatalf("%s: metrics differ: (%.17g,%.17g) vs (%.17g,%.17g)",
			label, a.m0, a.slack, b.m0, b.slack)
	}
	if a.gens != b.gens || a.stagnated != b.stagnated {
		t.Fatalf("%s: termination differs: (%d,%v) vs (%d,%v)",
			label, a.gens, a.stagnated, b.gens, b.stagnated)
	}
	if !eqFloats(a.trajM0, b.trajM0) || !eqFloats(a.trajSlack, b.trajSlack) {
		t.Fatalf("%s: per-generation trajectories differ", label)
	}
}

// TestSolveCacheWorkersIslandsBitIdentical is the tentpole invariance
// property: the metrics cache (off / private / shared-prefilled), the decode
// worker count and the island count must each leave the GA trajectory and
// final schedule bit-identical — the cache only skips redundant decodes and
// the workers only parallelize them, so every float the fitness combination
// sees is the same.
func TestSolveCacheWorkersIslandsBitIdentical(t *testing.T) {
	base := Options{
		Mode: EpsilonConstraint, Eps: 1.3,
		PopSize: 14, CrossoverRate: 0.9, MutationRate: 0.15,
		MaxGenerations: 60, Stagnation: 25, MigrationEvery: 10,
	}
	for _, islands := range []int{1, 4} {
		opt := base
		opt.Islands = islands
		opt.Workers = 1
		opt.NoMetricsCache = true
		ref := solveTraced(t, opt, 99, 7, 40, 4)

		for _, workers := range []int{1, 4} {
			for _, cache := range []string{"off", "private", "shared"} {
				v := base
				v.Islands = islands
				v.Workers = workers
				switch cache {
				case "off":
					v.NoMetricsCache = true
				case "shared":
					// Pre-warm a shared cache with a full sibling solve:
					// hits from a foreign run must return the exact floats
					// a decode would.
					c := NewMetricsCache()
					warm := base
					warm.Islands = islands
					warm.Cache = c
					if _, err := Solve(testWorkload(t, 7, 40, 4), warm, rng.New(1234)); err != nil {
						t.Fatal(err)
					}
					v.Cache = c
				}
				got := solveTraced(t, v, 99, 7, 40, 4)
				assertTracesIdentical(t,
					fmt.Sprintf("islands=%d workers=%d cache=%s", islands, workers, cache),
					ref, got)
			}
		}
	}
}

// TestSolveSharedCacheAcrossEpsIdentical models experiments.RunSweep: one
// cache and one HEFT baseline shared across an ε grid on the same workload
// must reproduce the isolated per-ε runs exactly.
func TestSolveSharedCacheAcrossEpsIdentical(t *testing.T) {
	w := testWorkload(t, 11, 35, 4)
	hs, err := HEFTBaseline(w)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewMetricsCache()
	epsGrid := []float64{1.0, 1.2, 1.5}
	for i, eps := range epsGrid {
		opt := Options{
			Mode: EpsilonConstraint, Eps: eps,
			PopSize: 12, CrossoverRate: 0.9, MutationRate: 0.15,
			MaxGenerations: 40, Stagnation: 0,
		}
		iso := opt
		iso.NoMetricsCache = true
		want, err := Solve(w, iso, rng.New(uint64(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		opt.HEFT = hs
		opt.Cache = cache
		got, err := Solve(w, opt, rng.New(uint64(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		if !eqInts(want.Schedule.Order(), got.Schedule.Order()) ||
			!eqInts(want.Schedule.ProcAssignment(), got.Schedule.ProcAssignment()) {
			t.Fatalf("eps=%g: shared-cache schedule differs from isolated run", eps)
		}
		if want.Schedule.Makespan() != got.Schedule.Makespan() ||
			want.Schedule.AvgSlack() != got.Schedule.AvgSlack() {
			t.Fatalf("eps=%g: shared-cache metrics differ", eps)
		}
		if want.Generations != got.Generations || want.Stagnated != got.Stagnated {
			t.Fatalf("eps=%g: termination differs", eps)
		}
	}
}

// TestMetricsCacheHitReturnsExactMetrics checks the basic contract on a
// genotype-equal, pointer-distinct chromosome: the hit returns exactly the
// inserted floats.
func TestMetricsCacheHitReturnsExactMetrics(t *testing.T) {
	w := testWorkload(t, 21, 20, 3)
	r := rng.New(5)
	c := Random(w, r)
	s, err := c.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	met := metricsFromSchedule(s)
	mc := NewMetricsCache()
	mc.insert(mc.key(c), c, met)

	dup := c.Clone() // genotype-equal, fresh pointer, no memoized state
	got, ok := mc.lookup(mc.key(dup), dup)
	if !ok {
		t.Fatal("genotype-equal chromosome missed the cache")
	}
	if got != met {
		t.Fatalf("hit returned %+v, inserted %+v", got, met)
	}
}

// TestMetricsCacheCollisionFallsBackToDecode injects a constant fingerprint
// so every genotype collides on one key: lookups for a different genotype
// must miss (the full-genotype guard rejects the colliding entry), and a
// Solve using the colliding cache must still be bit-identical to a cache-off
// run — a collision can only cost a redundant decode, never corrupt a result.
func TestMetricsCacheCollisionFallsBackToDecode(t *testing.T) {
	w := testWorkload(t, 31, 25, 3)
	r := rng.New(6)
	a := Random(w, r)
	b := Random(w, r)
	if eqInts(a.Order, b.Order) && eqInts(a.Proc, b.Proc) {
		t.Fatal("test needs two distinct genotypes")
	}
	sa, err := a.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMetricsCache()
	mc.keyFn = func(*Chromosome) uint64 { return 42 }
	mc.insert(mc.key(a), a, metricsFromSchedule(sa))
	if _, ok := mc.lookup(mc.key(b), b); ok {
		t.Fatal("colliding key with different genotype reported a hit")
	}
	if _, ok := mc.lookup(mc.key(a), a); !ok {
		t.Fatal("genuine entry lost under colliding keys")
	}

	// End to end: an all-colliding cache degrades to decode-everything but
	// changes no result.
	opt := Options{
		Mode: EpsilonConstraint, Eps: 1.3,
		PopSize: 12, CrossoverRate: 0.9, MutationRate: 0.15,
		MaxGenerations: 40, Stagnation: 0,
	}
	ref := opt
	ref.NoMetricsCache = true
	want, err := Solve(w, ref, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	colliding := NewMetricsCache()
	colliding.keyFn = func(*Chromosome) uint64 { return 42 }
	opt.Cache = colliding
	got, err := Solve(w, opt, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(want.Schedule.Order(), got.Schedule.Order()) ||
		!eqInts(want.Schedule.ProcAssignment(), got.Schedule.ProcAssignment()) ||
		want.Schedule.Makespan() != got.Schedule.Makespan() ||
		want.Generations != got.Generations {
		t.Fatal("all-colliding cache changed the Solve result")
	}
}

// TestMetricsCacheEvictionResetsShard fills a shard past its cap and checks
// the wholesale reset: the shard shrinks, stays consistent, and keeps
// serving correct entries afterwards.
func TestMetricsCacheEvictionResetsShard(t *testing.T) {
	mc := NewMetricsCache()
	// Pin every insert to shard 0 with distinct keys that are ≡ 0 mod the
	// shard count.
	mkChrom := func(i int) *Chromosome {
		return NewChromosome([]int{0, 1, 2}, []int{i, i + 1, i + 2})
	}
	for i := 0; i <= cacheShardCap; i++ {
		c := mkChrom(i)
		k := uint64(i) * cacheShardCount
		mc.insert(k, c, schedMetrics{m0: float64(i)})
	}
	sh := &mc.shards[0]
	if sh.n > cacheShardCap {
		t.Fatalf("shard grew past cap: n=%d", sh.n)
	}
	// The post-reset insert must still be retrievable.
	last := mkChrom(cacheShardCap)
	if met, ok := mc.lookup(uint64(cacheShardCap)*cacheShardCount, last); !ok || met.m0 != float64(cacheShardCap) {
		t.Fatalf("post-eviction entry lost: ok=%v met=%+v", ok, met)
	}
}
