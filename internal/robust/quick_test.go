package robust

import (
	"testing"
	"testing/quick"

	"robsched/internal/rng"
)

// Property-based coverage of the genetic operators with testing/quick:
// arbitrary seeds drive workload generation, parent construction and the
// operator randomness, and the invariants of Section 4.2 must hold for
// every draw — offspring are permutations, topological, and within
// processor range.

func validChromosome(wSeed uint64, c *Chromosome, n, m int) bool {
	if len(c.Order) != n || len(c.Proc) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range c.Order {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	for _, p := range c.Proc {
		if p < 0 || p >= m {
			return false
		}
	}
	return true
}

func TestQuickCrossoverInvariants(t *testing.T) {
	check := func(wSeed, opSeed uint16) bool {
		w := testWorkload(t, uint64(wSeed)%64, 12+int(wSeed)%20, 2+int(wSeed)%3)
		r := rng.New(uint64(opSeed))
		a, b := Random(w, r), Random(w, r)
		c1, c2, _, _ := Crossover(a, b, r)
		n, m := w.N(), w.M()
		return validChromosome(uint64(wSeed), c1, n, m) &&
			validChromosome(uint64(wSeed), c2, n, m) &&
			w.G.IsTopologicalOrder(c1.Order) &&
			w.G.IsTopologicalOrder(c2.Order)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMutateInvariants(t *testing.T) {
	check := func(wSeed, opSeed uint16) bool {
		w := testWorkload(t, uint64(wSeed)%64, 12+int(wSeed)%20, 2+int(wSeed)%3)
		r := rng.New(uint64(opSeed))
		c := Random(w, r)
		mutated, _ := Mutate(w, c, r)
		return validChromosome(uint64(wSeed), mutated, w.N(), w.M()) &&
			w.G.IsTopologicalOrder(mutated.Order)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRepeatedMutationStaysValid(t *testing.T) {
	// Long mutation chains must not drift out of the feasible space —
	// operator validity has to be closed under composition.
	check := func(wSeed, opSeed uint16) bool {
		w := testWorkload(t, uint64(wSeed)%64, 10+int(wSeed)%15, 2+int(wSeed)%3)
		r := rng.New(uint64(opSeed))
		c := Random(w, r)
		for k := 0; k < 30; k++ {
			c, _ = Mutate(w, c, r)
		}
		if !w.G.IsTopologicalOrder(c.Order) {
			return false
		}
		_, err := c.Decode(w)
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeMakespanPositive(t *testing.T) {
	// Every decodable chromosome has a positive makespan and non-negative
	// slack everywhere.
	check := func(wSeed, opSeed uint16) bool {
		w := testWorkload(t, uint64(wSeed)%64, 8+int(wSeed)%20, 1+int(wSeed)%4)
		r := rng.New(uint64(opSeed))
		s, err := Random(w, r).Decode(w)
		if err != nil {
			return false
		}
		if s.Makespan() <= 0 {
			return false
		}
		for v := 0; v < w.N(); v++ {
			if s.Slack(v) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
