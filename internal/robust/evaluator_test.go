package robust

import (
	"testing"

	"robsched/internal/obs"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// TestEvaluateParallelMatchesSerial: for every mode, the parallel decode
// path must produce bit-identical fitness vectors to the serial one.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	modes := []Mode{EpsilonConstraint, MinMakespan, MaxSlack}
	for _, mode := range modes {
		for _, shape := range []struct{ n, m int }{{12, 2}, {40, 4}, {80, 8}} {
			w := testWorkload(t, 7, shape.n, shape.m)
			mheft := 100.0
			serial := &evaluator{w: w, opt: Options{Mode: mode, Eps: 1.3, Workers: 1}, mheft: mheft, dec: schedule.NewDecoder(w)}
			par := &evaluator{w: w, opt: Options{Mode: mode, Eps: 1.3, Workers: 0}, mheft: mheft, dec: schedule.NewDecoder(w)}

			// Two identical undecoded populations (Evaluate memoizes decode
			// state on the chromosomes, so each evaluator needs its own
			// copies), each with an aliased pointer like the engine produces.
			r := rng.New(99)
			popA := make([]*Chromosome, 0, 21)
			popB := make([]*Chromosome, 0, 21)
			for i := 0; i < 20; i++ {
				c := Random(w, r)
				popA = append(popA, c.Clone())
				popB = append(popB, c.Clone())
			}
			popA = append(popA, popA[3])
			popB = append(popB, popB[3])

			fs := serial.evaluate(popA)
			fp := par.evaluate(popB)
			for i := range fs {
				if fs[i] != fp[i] {
					t.Fatalf("mode %v n=%d: fitness[%d] parallel %v != serial %v",
						mode, shape.n, i, fp[i], fs[i])
				}
			}
		}
	}
}

// TestSolveParallelDeterminism: a full Solve run must be bit-identical
// regardless of the worker count — same best schedule, same generation
// count, same per-generation best-makespan trace.
func TestSolveParallelDeterminism(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		for _, shape := range []struct{ n, m int }{{25, 3}, {50, 5}} {
			w := testWorkload(t, seed, shape.n, shape.m)
			run := func(workers int) (*Result, []float64) {
				var trace []float64
				opt := PaperOptions(EpsilonConstraint, 1.4)
				opt.MaxGenerations = 40
				opt.Stagnation = 0
				opt.Workers = workers
				opt.OnGeneration = func(gen int, best *schedule.Schedule) {
					trace = append(trace, best.Makespan(), best.AvgSlack())
				}
				res, err := Solve(w, opt, rng.New(seed*1000+uint64(shape.n)))
				if err != nil {
					t.Fatal(err)
				}
				return res, trace
			}
			r1, t1 := run(1)
			rp, tp := run(0)
			if r1.Schedule.Makespan() != rp.Schedule.Makespan() ||
				r1.Schedule.AvgSlack() != rp.Schedule.AvgSlack() ||
				r1.Generations != rp.Generations {
				t.Fatalf("seed %d n=%d: parallel result differs from serial", seed, shape.n)
			}
			o1, op := r1.Schedule.Order(), rp.Schedule.Order()
			p1, pp := r1.Schedule.ProcAssignment(), rp.Schedule.ProcAssignment()
			for v := 0; v < shape.n; v++ {
				if o1[v] != op[v] || p1[v] != pp[v] {
					t.Fatalf("seed %d n=%d: best genotype differs at task %d", seed, shape.n, v)
				}
			}
			if len(t1) != len(tp) {
				t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(tp))
			}
			for i := range t1 {
				if t1[i] != tp[i] {
					t.Fatalf("seed %d n=%d: generation trace differs at %d", seed, shape.n, i)
				}
			}
		}
	}
}

func BenchmarkEvaluatePopulation(b *testing.B) {
	w := testWorkload(b, 5, 100, 8)
	for _, bench := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			eval := &evaluator{
				w:     w,
				opt:   Options{Mode: EpsilonConstraint, Eps: 1.4, Workers: bench.workers},
				mheft: 100,
				dec:   schedule.NewDecoder(w),
			}
			r := rng.New(1)
			template := make([]*Chromosome, 20)
			for i := range template {
				template[i] = Random(w, r)
			}
			pop := make([]*Chromosome, len(template))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j, c := range template {
					pop[j] = c.Clone() // undecoded copies each round
				}
				b.StartTimer()
				eval.evaluate(pop)
			}
		})
	}
}

// TestSolveDeltaDecodeTrajectoryIdentity: delta decoding is a pure
// performance optimization — a full Solve run with it on must be
// bit-identical to one with it off: same best genotype, same generation
// count, same per-generation (makespan, slack) trace. Exercised across the
// worker and island configurations, whose interaction with the parentage
// bookkeeping (chains through undecoded intermediates, migrants with
// severed parents) is where a regression would hide.
func TestSolveDeltaDecodeTrajectoryIdentity(t *testing.T) {
	for _, cfg := range []struct {
		name             string
		workers, islands int
		noCache          bool
	}{
		{"serial", 1, 1, false},
		{"parallel", 0, 1, false},
		{"islands", 0, 3, false},
		{"nocache", 1, 1, true},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			for _, shape := range []struct{ n, m int }{{25, 3}, {60, 5}} {
				w := testWorkload(t, 13, shape.n, shape.m)
				run := func(noDelta bool) (*Result, []float64) {
					var trace []float64
					opt := PaperOptions(EpsilonConstraint, 1.4)
					opt.MaxGenerations = 40
					opt.Stagnation = 0
					opt.Workers = cfg.workers
					opt.NoMetricsCache = cfg.noCache
					opt.NoDeltaDecode = noDelta
					if cfg.islands > 1 {
						opt.Islands = cfg.islands
						opt.MigrationEvery = 10
					} else {
						opt.OnGeneration = func(gen int, best *schedule.Schedule) {
							trace = append(trace, best.Makespan(), best.AvgSlack())
						}
					}
					res, err := Solve(w, opt, rng.New(7000+uint64(shape.n)))
					if err != nil {
						t.Fatal(err)
					}
					return res, trace
				}
				on, tOn := run(false)
				off, tOff := run(true)
				if on.Schedule.Makespan() != off.Schedule.Makespan() ||
					on.Schedule.AvgSlack() != off.Schedule.AvgSlack() ||
					on.Generations != off.Generations {
					t.Fatalf("n=%d: delta-on result differs from delta-off", shape.n)
				}
				oOn, oOff := on.Schedule.Order(), off.Schedule.Order()
				pOn, pOff := on.Schedule.ProcAssignment(), off.Schedule.ProcAssignment()
				for v := 0; v < shape.n; v++ {
					if oOn[v] != oOff[v] || pOn[v] != pOff[v] {
						t.Fatalf("n=%d: best genotype differs at task %d", shape.n, v)
					}
				}
				if len(tOn) != len(tOff) {
					t.Fatalf("trace lengths differ: %d vs %d", len(tOn), len(tOff))
				}
				for i := range tOn {
					if tOn[i] != tOff[i] {
						t.Fatalf("n=%d: generation trace differs at index %d", shape.n, i)
					}
				}
			}
		})
	}
}

// TestSolveDeltaDecodeActuallyFires guards against the optimization
// silently disabling itself: a paper-scale run must take the delta path for
// a substantial share of its decodes, with zero fallbacks (a fallback means
// the operators' divergence bookkeeping handed DecodeDelta a wrong prefix).
func TestSolveDeltaDecodeActuallyFires(t *testing.T) {
	w := testWorkload(t, 17, 60, 5)
	reg := obs.NewRegistry()
	opt := PaperOptions(EpsilonConstraint, 1.4)
	opt.MaxGenerations = 60
	opt.Stagnation = 0
	opt.Obs = reg
	if _, err := Solve(w, opt, rng.New(18)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	hits := snap.Counters["decode.delta_hits"]
	if fb := snap.Counters["decode.delta_fallbacks"]; fb != 0 {
		t.Fatalf("%d delta fallbacks — the operators reported a wrong divergence index", fb)
	}
	if hits < 100 {
		t.Fatalf("only %d delta hits over 60 generations — the delta path is not firing", hits)
	}
	if ft := snap.Counters["decode.delta_frontier_tasks"]; ft >= hits*int64(w.N()) {
		t.Fatalf("mean frontier %d tasks is the whole graph — no work is being saved", ft/hits)
	}
	if h := snap.Histograms["decode.delta_frontier"]; h.Count != hits {
		t.Fatalf("frontier histogram saw %d observations, want %d", h.Count, hits)
	}
}
