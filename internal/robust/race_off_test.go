//go:build !race

package robust

const raceEnabled = false
