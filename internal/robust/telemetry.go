package robust

import (
	"math"

	"robsched/internal/ga"
	"robsched/internal/obs"
)

// telemetryObserver adapts Options.Obs/Options.Trace into a ga.Observer.
// Registry updates are pure counts over the (deterministic) GenStats
// trajectory, so two identically-configured runs produce identical
// snapshots; the trace events additionally carry the engine telemetry as
// JSONL for offline inspection. Returns nil when both sinks are off so the
// engine keeps its no-observer fast path.
func telemetryObserver(reg *obs.Registry, tr *obs.Tracer) ga.Observer {
	if reg == nil && tr == nil {
		return nil
	}
	gens := reg.Counter("ga.generations")
	cross := reg.Counter("ga.crossovers")
	mut := reg.Counter("ga.mutations")
	best := reg.Gauge("ga.best_fitness")
	mean := reg.Gauge("ga.mean_fitness")
	div := reg.Gauge("ga.diversity")
	sc := tr.Scope("ga")
	return ga.ObserverFunc(func(s ga.GenStats) {
		if s.Gen > 0 {
			gens.Inc()
		}
		cross.Add(int64(s.Crossovers))
		mut.Add(int64(s.Mutations))
		best.Set(s.Best)
		mean.Set(s.Mean)
		attrs := []obs.Attr{
			obs.F("island", float64(s.Island)),
			obs.F("gen", float64(s.Gen)),
			obs.F("best", s.Best),
			obs.F("mean", s.Mean),
			obs.F("crossovers", float64(s.Crossovers)),
			obs.F("mutations", float64(s.Mutations)),
		}
		// Diversity is NaN when the engine has no Key hook; NaN is not
		// representable in JSON, so it is dropped rather than encoded.
		if !math.IsNaN(s.Diversity) {
			div.Set(s.Diversity)
			attrs = append(attrs, obs.F("diversity", s.Diversity))
		}
		sc.Event("generation", attrs...)
	})
}

// deltaStats is one run's delta-decode traffic: how many decodes reused a
// parent prefix, how many fell back to the full path after a failed prefix
// verification (0 unless the parentage bookkeeping regresses), and the
// total number of tasks re-swept across all delta decodes.
type deltaStats struct {
	Hits          int64
	Fallbacks     int64
	FrontierTasks int64
}

// recordDeltaStats adds one run's delta-decode traffic to the registry and
// emits it as a trace event. Like the cache counters, every value is a
// deterministic function of the GA trajectory. The per-decode frontier
// distribution is observed live into the decode.delta_frontier histogram
// by the evaluator rather than here.
func recordDeltaStats(reg *obs.Registry, tr *obs.Tracer, d deltaStats) {
	reg.Counter("decode.delta_hits").Add(d.Hits)
	reg.Counter("decode.delta_fallbacks").Add(d.Fallbacks)
	reg.Counter("decode.delta_frontier_tasks").Add(d.FrontierTasks)
	tr.Scope("decode").Event("delta",
		obs.F("hits", float64(d.Hits)),
		obs.F("fallbacks", float64(d.Fallbacks)),
		obs.F("frontier_tasks", float64(d.FrontierTasks)),
	)
}

// recordCacheStats adds one run's metrics-cache traffic (a delta between
// two Stats snapshots, so shared caches attribute per-run counts correctly)
// to the registry and emits it as a trace event.
func recordCacheStats(reg *obs.Registry, tr *obs.Tracer, d CacheStats) {
	reg.Counter("cache.hits").Add(d.Hits)
	reg.Counter("cache.misses").Add(d.Misses)
	reg.Counter("cache.collisions").Add(d.Collisions)
	reg.Counter("cache.evictions").Add(d.Evictions)
	tr.Scope("cache").Event("stats",
		obs.F("hits", float64(d.Hits)),
		obs.F("misses", float64(d.Misses)),
		obs.F("collisions", float64(d.Collisions)),
		obs.F("evictions", float64(d.Evictions)),
	)
}
