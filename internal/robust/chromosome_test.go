package robust

import (
	"testing"

	"robsched/internal/dag"
	"robsched/internal/gen"
	"robsched/internal/platform"
	"robsched/internal/rng"
)

func testWorkload(t testing.TB, seed uint64, n, m int) *platform.Workload {
	t.Helper()
	r := rng.New(seed)
	p := gen.PaperParams()
	p.N, p.M = n, m
	w, err := gen.Random(p, r)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRandomChromosomeValid(t *testing.T) {
	w := testWorkload(t, 1, 30, 4)
	r := rng.New(2)
	for i := 0; i < 50; i++ {
		c := Random(w, r)
		if !w.G.IsTopologicalOrder(c.Order) {
			t.Fatal("random chromosome order not topological")
		}
		for _, p := range c.Proc {
			if p < 0 || p >= w.M() {
				t.Fatalf("processor %d out of range", p)
			}
		}
		if _, err := c.Decode(w); err != nil {
			t.Fatalf("decode failed: %v", err)
		}
	}
}

func TestCrossoverValidityProperty(t *testing.T) {
	w := testWorkload(t, 3, 40, 4)
	r := rng.New(4)
	for trial := 0; trial < 200; trial++ {
		a, b := Random(w, r), Random(w, r)
		aOrder := append([]int(nil), a.Order...)
		aProc := append([]int(nil), a.Proc...)
		c1, c2, _, _ := Crossover(a, b, r)
		for _, c := range []*Chromosome{c1, c2} {
			if !w.G.IsTopologicalOrder(c.Order) {
				t.Fatalf("trial %d: offspring order not topological", trial)
			}
			if _, err := c.Decode(w); err != nil {
				t.Fatalf("trial %d: offspring does not decode: %v", trial, err)
			}
		}
		// Parents untouched.
		for i := range aOrder {
			if a.Order[i] != aOrder[i] || a.Proc[i] != aProc[i] {
				t.Fatal("crossover mutated a parent")
			}
		}
	}
}

func TestCrossoverMixesAssignments(t *testing.T) {
	w := testWorkload(t, 5, 20, 4)
	r := rng.New(6)
	// Parents with constant, distinct processor strings: children must
	// contain a prefix of one value and a suffix of the other.
	mixed := false
	for trial := 0; trial < 50 && !mixed; trial++ {
		a, b := Random(w, r), Random(w, r)
		for i := range a.Proc {
			a.Proc[i] = 0
			b.Proc[i] = 1
		}
		c1, _, _, _ := Crossover(a, b, r)
		saw0, saw1 := false, false
		for _, p := range c1.Proc {
			if p == 0 {
				saw0 = true
			} else {
				saw1 = true
			}
		}
		// The processor cut is in [1, n-1], so both values must appear.
		if !saw0 || !saw1 {
			t.Fatalf("child processor string = %v: single-point exchange missing", c1.Proc)
		}
		// Prefix must be parent A's value, suffix parent B's.
		boundary := -1
		for i, p := range c1.Proc {
			if p == 1 {
				boundary = i
				break
			}
		}
		for i, p := range c1.Proc {
			want := 0
			if i >= boundary {
				want = 1
			}
			if p != want {
				t.Fatalf("child processor string %v is not a single-point exchange", c1.Proc)
			}
		}
		mixed = true
	}
	if !mixed {
		t.Fatal("never exercised crossover")
	}
}

func TestCrossoverPreservesLeftPart(t *testing.T) {
	w := testWorkload(t, 7, 25, 3)
	r := rng.New(8)
	for trial := 0; trial < 100; trial++ {
		a, b := Random(w, r), Random(w, r)
		c1, _, _, _ := Crossover(a, b, r)
		// Some non-empty prefix of c1.Order must equal a's prefix.
		if c1.Order[0] != a.Order[0] {
			t.Fatalf("trial %d: child lost parent A's first task", trial)
		}
	}
}

func TestCrossoverSingleTaskGraph(t *testing.T) {
	g := dag.NewBuilder(1).MustBuild()
	exec := platform.NewMatrix(1, 2)
	exec.Fill(5)
	w, err := platform.DeterministicWorkload(g, platform.UniformSystem(2, 1), exec)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	a, b := Random(w, r), Random(w, r)
	c1, c2, _, _ := Crossover(a, b, r)
	if len(c1.Order) != 1 || len(c2.Order) != 1 {
		t.Fatal("single-task crossover broke")
	}
}

func TestMutateValidityProperty(t *testing.T) {
	w := testWorkload(t, 11, 40, 4)
	r := rng.New(12)
	for trial := 0; trial < 300; trial++ {
		c := Random(w, r)
		before := append([]int(nil), c.Order...)
		m, _ := Mutate(w, c, r)
		if !w.G.IsTopologicalOrder(m.Order) {
			t.Fatalf("trial %d: mutated order not topological", trial)
		}
		if _, err := m.Decode(w); err != nil {
			t.Fatalf("trial %d: mutant does not decode: %v", trial, err)
		}
		// Original untouched.
		for i := range before {
			if c.Order[i] != before[i] {
				t.Fatal("mutation modified its argument")
			}
		}
	}
}

func TestMutateActuallyChanges(t *testing.T) {
	w := testWorkload(t, 13, 30, 4)
	r := rng.New(14)
	changed := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		c := Random(w, r)
		m, _ := Mutate(w, c, r)
		if m.Key() != c.Key() {
			changed++
		}
	}
	// With 4 processors a re-roll of the processor alone changes the
	// genotype with probability 3/4; expect most mutations to take effect.
	if changed < trials/2 {
		t.Fatalf("mutation changed the genotype only %d/%d times", changed, trials)
	}
}

func TestMoveWithin(t *testing.T) {
	cases := []struct {
		in       []int
		from, to int
		want     []int
	}{
		{[]int{0, 1, 2, 3}, 1, 3, []int{0, 2, 3, 1}},
		{[]int{0, 1, 2, 3}, 3, 0, []int{3, 0, 1, 2}},
		{[]int{0, 1, 2, 3}, 2, 2, []int{0, 1, 2, 3}},
		{[]int{5, 6}, 0, 1, []int{6, 5}},
	}
	for i, c := range cases {
		got := append([]int(nil), c.in...)
		moveWithin(got, c.from, c.to)
		for j := range c.want {
			if got[j] != c.want[j] {
				t.Errorf("case %d: moveWithin = %v, want %v", i, got, c.want)
				break
			}
		}
	}
}

func TestKeyDistinguishesGenotypes(t *testing.T) {
	w := testWorkload(t, 15, 12, 3)
	r := rng.New(16)
	a := Random(w, r)
	if a.Key() != a.Clone().Key() {
		t.Fatal("clone has a different key")
	}
	// Built fresh rather than via Clone: a clone carries the key memo, so
	// editing its genes directly (which no production caller does) would
	// serve the stale key by design.
	b := NewChromosome(append([]int(nil), a.Order...), append([]int(nil), a.Proc...))
	b.Proc[0] = (b.Proc[0] + 1) % w.M()
	if a.Key() == b.Key() {
		t.Fatal("different assignments share a key")
	}
	seen := map[uint64]int{}
	for i := 0; i < 100; i++ {
		seen[Random(w, r).Key()]++
	}
	if len(seen) < 95 {
		t.Fatalf("only %d distinct keys in 100 random chromosomes", len(seen))
	}
}

func TestDecodeMemoizes(t *testing.T) {
	w := testWorkload(t, 17, 15, 3)
	r := rng.New(18)
	c := Random(w, r)
	s1, err := c.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("Decode did not memoize")
	}
	// Clone drops the memo.
	cl := c.Clone()
	s3, err := cl.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 {
		t.Fatal("clone shares the memoized schedule")
	}
	if s3.Makespan() != s1.Makespan() {
		t.Fatal("clone decodes to a different schedule")
	}
}

func TestFromScheduleRoundTrip(t *testing.T) {
	w := testWorkload(t, 19, 25, 4)
	r := rng.New(20)
	c := Random(w, r)
	s, err := c.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	c2 := FromSchedule(s)
	s2, err := c2.Decode(w)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Makespan() != s.Makespan() || s2.AvgSlack() != s.AvgSlack() {
		t.Fatalf("round trip changed the schedule: M %g->%g, slack %g->%g",
			s.Makespan(), s2.Makespan(), s.AvgSlack(), s2.AvgSlack())
	}
}

func TestDecodeRejectsBrokenChromosome(t *testing.T) {
	w := testWorkload(t, 21, 10, 2)
	c := NewChromosome([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 8}, make([]int, 10))
	if _, err := c.Decode(w); err == nil {
		t.Fatal("broken chromosome decoded")
	}
}

// freshKey recomputes a chromosome's key from scratch, bypassing any
// incremental memo the operators maintained.
func freshKey(c *Chromosome) uint64 {
	return NewChromosome(append([]int(nil), c.Order...), append([]int(nil), c.Proc...)).Key()
}

// checkDivergence verifies that d is exactly the first scheduling-string
// position at which child diverges from parent: every earlier position
// agrees in both task and processor-of-task, and position d (when < n)
// disagrees in at least one of them.
func checkDivergence(t *testing.T, trial int, parent, child *Chromosome, d int) {
	t.Helper()
	n := len(parent.Order)
	for i := 0; i < d; i++ {
		v := child.Order[i]
		if v != parent.Order[i] || child.Proc[v] != parent.Proc[v] {
			t.Fatalf("trial %d: position %d dirty before reported divergence %d", trial, i, d)
		}
	}
	if d < n {
		v := child.Order[d]
		if v == parent.Order[d] && child.Proc[v] == parent.Proc[v] {
			t.Fatalf("trial %d: reported divergence %d but position still clean", trial, d)
		}
	}
}

// TestOperatorDivergenceAndKeys pins the two operator-side contracts of the
// delta-decode pipeline: the reported first-divergence index is exact (the
// prefix before it is reusable, the position at it is genuinely dirty), the
// parentage fields match it, and the incrementally maintained rolling key
// equals a from-scratch rehash of the child genotype.
func TestOperatorDivergenceAndKeys(t *testing.T) {
	w := testWorkload(t, 33, 30, 4)
	r := rng.New(34)
	for trial := 0; trial < 300; trial++ {
		a, b := Random(w, r), Random(w, r)
		a.Key() // seed the memo so children take the incremental path
		b.Key()
		c1, c2, d1, d2 := Crossover(a, b, r)
		for i, pc := range []struct {
			p, c *Chromosome
			d    int
		}{{a, c1, d1}, {b, c2, d2}} {
			checkDivergence(t, trial, pc.p, pc.c, pc.d)
			if pc.c.parent != pc.p || pc.c.firstDirty != pc.d {
				t.Fatalf("trial %d child %d: parentage (%p,%d) does not match (%p,%d)",
					trial, i, pc.c.parent, pc.c.firstDirty, pc.p, pc.d)
			}
			if got, want := pc.c.Key(), freshKey(pc.c); got != want {
				t.Fatalf("trial %d child %d: incremental key %x != recomputed %x", trial, i, got, want)
			}
		}
		m, dm := Mutate(w, c1, r)
		checkDivergence(t, trial, c1, m, dm)
		if m.parent != c1 || m.firstDirty != dm {
			t.Fatal("mutation parentage mismatch")
		}
		if got, want := m.Key(), freshKey(m); got != want {
			t.Fatalf("trial %d: mutated incremental key %x != recomputed %x", trial, got, want)
		}
	}
}

// TestOperatorKeysWithoutMemo checks the cold path: children of unkeyed
// parents carry no memo and hash correctly on first demand.
func TestOperatorKeysWithoutMemo(t *testing.T) {
	w := testWorkload(t, 35, 20, 3)
	r := rng.New(36)
	a, b := Random(w, r), Random(w, r)
	c1, c2, _, _ := Crossover(a, b, r)
	if c1.hasKey || c2.hasKey {
		t.Fatal("children of unkeyed parents carry a key memo")
	}
	if c1.Key() != freshKey(c1) || c2.Key() != freshKey(c2) {
		t.Fatal("cold-path key differs from recomputed key")
	}
}

// TestOperatorsAllocationFree pins the operator allocation budget: after
// scratch pools warm up, Crossover costs its two child clones (one backing
// array each) and Mutate one — nothing else.
func TestOperatorsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	w := testWorkload(t, 37, 60, 4)
	r := rng.New(38)
	a, b := Random(w, r), Random(w, r)
	a.Key()
	b.Key()
	Crossover(a, b, r) // warm the scratch pool and power table
	if avg := testing.AllocsPerRun(200, func() { Crossover(a, b, r) }); avg > 4 {
		t.Fatalf("Crossover allocates %.1f times per call, budget 4", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { Mutate(w, a, r) }); avg > 2 {
		t.Fatalf("Mutate allocates %.1f times per call, budget 2", avg)
	}
}

func BenchmarkCrossover(b *testing.B) {
	w := testWorkload(b, 39, 100, 8)
	r := rng.New(40)
	pa, pb := Random(w, r), Random(w, r)
	pa.Key()
	pb.Key()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Crossover(pa, pb, r)
	}
}

func BenchmarkMutate(b *testing.B) {
	w := testWorkload(b, 41, 100, 8)
	r := rng.New(42)
	c := Random(w, r)
	c.Key()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mutate(w, c, r)
	}
}
