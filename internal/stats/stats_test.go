package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Errorf("Mean = %g", Mean([]float64{1, 2, 3, 4}))
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
	if Mean([]float64{7}) != 7 {
		t.Error("Mean of singleton")
	}
}

func TestStd(t *testing.T) {
	if !almost(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Errorf("Std = %g, want 2", Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if Std([]float64{3}) != 0 {
		t.Error("Std of singleton should be 0")
	}
	if !math.IsNaN(Std(nil)) {
		t.Error("Std(nil) not NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max not NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("invalid quantile inputs not NaN")
	}
	// Input untouched.
	if xs[0] != 4 {
		t.Error("Quantile sorted its input")
	}
}

func TestQuantileOrderingProperty(t *testing.T) {
	check := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		q1 := Quantile(raw, 0.25)
		q2 := Quantile(raw, 0.5)
		q3 := Quantile(raw, 0.75)
		return q1 <= q2 && q2 <= q3 && Min(raw) <= q1 && q3 <= Max(raw)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	str := s.String()
	if !strings.Contains(str, "n=5") || !strings.Contains(str, "mean=3") {
		t.Errorf("Summary.String = %q", str)
	}
}

func TestSafeRatio(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct{ a, b, want float64 }{
		{6, 3, 2},
		{inf, inf, 1},
		{inf, 5, math.Exp(RatioLogCap)},
		{5, inf, math.Exp(-RatioLogCap)},
		{5, 0, 1},
		{0, 5, 1},
		{-1, 5, 1},
	}
	for i, c := range cases {
		if got := SafeRatio(c.a, c.b); !almost(got, c.want) {
			t.Errorf("case %d: SafeRatio(%g,%g) = %g, want %g", i, c.a, c.b, got, c.want)
		}
	}
}

func TestLogRatio(t *testing.T) {
	if !almost(LogRatio(math.E, 1), 1) {
		t.Errorf("LogRatio(e,1) = %g", LogRatio(math.E, 1))
	}
	if !almost(LogRatio(1, 1), 0) {
		t.Errorf("LogRatio(1,1) = %g", LogRatio(1, 1))
	}
	inf := math.Inf(1)
	if got := LogRatio(inf, 1); got != RatioLogCap {
		t.Errorf("LogRatio(inf,1) = %g, want cap", got)
	}
	if got := LogRatio(1, inf); got != -RatioLogCap {
		t.Errorf("LogRatio(1,inf) = %g, want -cap", got)
	}
	if got := LogRatio(inf, inf); got != 0 {
		t.Errorf("LogRatio(inf,inf) = %g, want 0", got)
	}
}

func TestOverallPerformance(t *testing.T) {
	// r=1: only makespan matters. GA halves HEFT's makespan → ln 2.
	if got := OverallPerformance(1, 50, 100, 1, 1); !almost(got, math.Log(2)) {
		t.Errorf("r=1: P = %g, want ln2", got)
	}
	// r=0: only robustness matters. R doubled → ln 2.
	if got := OverallPerformance(0, 50, 100, 4, 2); !almost(got, math.Log(2)) {
		t.Errorf("r=0: P = %g, want ln2", got)
	}
	// r=0.5 blends.
	want := 0.5*math.Log(2) + 0.5*math.Log(3)
	if got := OverallPerformance(0.5, 50, 100, 6, 2); !almost(got, want) {
		t.Errorf("r=0.5: P = %g, want %g", got, want)
	}
	// Identical schedules score 0 for any r.
	for _, r := range []float64{0, 0.3, 1} {
		if got := OverallPerformance(r, 100, 100, 2, 2); !almost(got, 0) {
			t.Errorf("identical schedules: P(r=%g) = %g", r, got)
		}
	}
	if !math.IsNaN(OverallPerformance(-0.1, 1, 1, 1, 1)) || !math.IsNaN(OverallPerformance(1.1, 1, 1, 1, 1)) {
		t.Error("out-of-range r not NaN")
	}
	// Infinite robustness on both sides cancels.
	inf := math.Inf(1)
	if got := OverallPerformance(0.5, 80, 100, inf, inf); !almost(got, 0.5*math.Log(100.0/80)) {
		t.Errorf("inf/inf robustness: P = %g", got)
	}
}

func TestOverallPerformanceMonotonicity(t *testing.T) {
	// With fixed metrics, increasing robustness increases P; increasing
	// makespan decreases it.
	base := OverallPerformance(0.5, 100, 100, 2, 2)
	if OverallPerformance(0.5, 100, 100, 3, 2) <= base {
		t.Error("more robustness did not raise P")
	}
	if OverallPerformance(0.5, 120, 100, 2, 2) >= base {
		t.Error("more makespan did not lower P")
	}
}

func TestArgmaxF(t *testing.T) {
	xs := []float64{1, 5, 3, 5}
	if got := ArgmaxF(len(xs), func(i int) float64 { return xs[i] }); got != 1 {
		t.Errorf("ArgmaxF = %d, want 1 (first of ties)", got)
	}
	if got := ArgmaxF(1, func(int) float64 { return -7 }); got != 0 {
		t.Errorf("ArgmaxF single = %d", got)
	}
}

func TestPearson(t *testing.T) {
	if got := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); !almost(got, 1) {
		t.Errorf("perfect positive = %g", got)
	}
	if got := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); !almost(got, -1) {
		t.Errorf("perfect negative = %g", got)
	}
	if got := Pearson([]float64{1, 2, 3, 4}, []float64{1, 3, 2, 4}); got <= 0 || got >= 1 {
		t.Errorf("noisy positive = %g, want in (0,1)", got)
	}
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("constant sample not NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Error("short sample not NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{1, 2, 3})) {
		t.Error("mismatched lengths not NaN")
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but nonlinear: Spearman 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if got := Spearman(xs, ys); !almost(got, 1) {
		t.Errorf("monotone Spearman = %g", got)
	}
	if p := Pearson(xs, ys); p >= 1 {
		t.Errorf("nonlinear Pearson = %g, expected < 1", p)
	}
	// Ties handled via mid-ranks.
	if got := Spearman([]float64{1, 1, 2}, []float64{3, 3, 5}); !almost(got, 1) {
		t.Errorf("tied Spearman = %g", got)
	}
}

func TestRanks(t *testing.T) {
	got := ranks([]float64{30, 10, 20, 10})
	want := []float64{4, 1.5, 3, 1.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}
