// Package stats provides the summary statistics and metric arithmetic the
// experiment harness builds its tables from: means and deviations, safe
// log-ratios (the paper plots natural-log ratios of improvements, which
// degenerate when a robustness metric is infinite), and the overall
// performance score P(s) of Eqn. 9.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs; NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs; NaN for fewer than
// one element. It uses the two-pass formula for stability.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Min returns the smallest element; NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest element; NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs with linear
// interpolation; NaN for an empty slice. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	Q25, Q75         float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    Std(xs),
		Min:    Min(xs),
		Median: Quantile(xs, 0.5),
		Max:    Max(xs),
		Q25:    Quantile(xs, 0.25),
		Q75:    Quantile(xs, 0.75),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Q25, s.Median, s.Q75, s.Max)
}

// RatioCap bounds the ratios fed to LogRatio when one side is infinite (a
// robustness metric with zero tardiness or miss rate). exp(±RatioLogCap)
// is the effective ratio bound.
const RatioLogCap = 20.0

// SafeRatio returns a/b guarded for the infinities the robustness metrics
// produce: Inf/Inf = 1 (both schedules perfectly robust), Inf/x caps high,
// x/Inf caps low, and non-positive denominators cap by sign.
func SafeRatio(a, b float64) float64 {
	aInf, bInf := math.IsInf(a, 1), math.IsInf(b, 1)
	switch {
	case aInf && bInf:
		return 1
	case aInf:
		return math.Exp(RatioLogCap)
	case bInf:
		return math.Exp(-RatioLogCap)
	case b <= 0 || a <= 0:
		// Degenerate metric; treat as no information.
		return 1
	default:
		return a / b
	}
}

// LogRatio returns ln(SafeRatio(a, b)) clamped to ±RatioLogCap. The paper's
// figures plot natural-log ratios (e.g. "log ratio of the change relative
// to step 0", "log ratio of relative improvement over HEFT").
func LogRatio(a, b float64) float64 {
	l := math.Log(SafeRatio(a, b))
	if l > RatioLogCap {
		return RatioLogCap
	}
	if l < -RatioLogCap {
		return -RatioLogCap
	}
	return l
}

// OverallPerformance computes P(s) of Eqn. 9:
//
//	P(s) = r·ln(M_HEFT / M(s)) + (1−r)·ln(R(s) / R_HEFT)
//
// where r in [0,1] weights makespan emphasis against robustness emphasis.
// Infinite robustness values are capped via LogRatio.
func OverallPerformance(r, makespan, makespanHEFT, robustness, robustnessHEFT float64) float64 {
	if r < 0 || r > 1 {
		return math.NaN()
	}
	return r*LogRatio(makespanHEFT, makespan) + (1-r)*LogRatio(robustness, robustnessHEFT)
}

// Pearson returns the Pearson correlation coefficient of two equally sized
// samples; NaN when either sample is constant or shorter than 2.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of two equally sized
// samples (Pearson on mid-ranks; ties averaged).
func Spearman(xs, ys []float64) float64 {
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns the mid-ranks of xs (1-based, ties averaged).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = mid
		}
		i = j + 1
	}
	return out
}

// ArgmaxF returns the index in xs whose f value is largest (ties: first).
func ArgmaxF(n int, f func(i int) float64) int {
	best, bestV := 0, math.Inf(-1)
	for i := 0; i < n; i++ {
		if v := f(i); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
