// Package rng provides a small, deterministic, splittable random number
// generator together with the distribution samplers needed by the robust
// scheduling experiments (uniform, exponential, normal and gamma variates).
//
// The experiments in the paper are Monte-Carlo heavy: 100 task graphs, each
// evaluated with 1000 realizations of the random task durations, inside a
// genetic-algorithm loop. Reproducing a figure therefore requires
//
//   - determinism: the same root seed must regenerate the same table, and
//   - splittability: independent goroutines must draw from statistically
//     independent streams without locking a shared source.
//
// The core generator is xoshiro256++ seeded through SplitMix64, following
// Blackman & Vigna. Split derives a child stream whose seed is drawn from
// the parent, which is the standard way to fan a root seed out across
// workers. None of the methods are safe for concurrent use on a single
// Source; use Split to give each goroutine its own.
package rng

import (
	"fmt"
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random number generator. The zero value
// is not valid; use New.
type Source struct {
	s [4]uint64
	// spare holds a cached standard normal variate produced by the polar
	// method, which generates two at a time.
	spare    float64
	hasSpare bool
}

// splitMix64 advances *x and returns the next SplitMix64 output. It is used
// only for seeding, where its equidistribution is sufficient.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed. Distinct seeds
// yield streams that are, for all practical purposes, independent.
func New(seed uint64) *Source {
	var s Source
	x := seed
	for i := range s.s {
		s.s[i] = splitMix64(&x)
	}
	// A pathological all-zero state cannot occur: SplitMix64 is a bijection
	// pipeline and produces four zero outputs only for specific inputs that
	// the increment rules out, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

// State is the complete serializable position of a Source: the xoshiro256++
// word state plus the cached polar-method normal variate. Capturing a State
// and later resuming via FromState continues the stream bit-identically —
// the checkpoint/restart mechanism of the distributed island solver
// (internal/dist) rides on this to resume a dead worker's RNG mid-run.
type State struct {
	S        [4]uint64
	Spare    float64
	HasSpare bool
}

// State snapshots the source's current position. The source is not advanced.
func (r *Source) State() State {
	return State{S: r.s, Spare: r.spare, HasSpare: r.hasSpare}
}

// FromState reconstructs a Source at the captured position: every draw after
// FromState(st) is bit-identical to the draws the snapshotted source would
// have produced, including a pending cached normal variate.
func FromState(st State) *Source {
	s := &Source{s: st.S, spare: st.Spare, hasSpare: st.HasSpare}
	// Same guard as New: the all-zero xoshiro state is absorbing.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return s
}

// Split returns a new Source whose stream is independent of the parent's
// subsequent output. The parent is advanced.
func (r *Source) Split() *Source {
	return New(r.SplitSeed())
}

// SplitSeed draws and returns the seed of the child stream the next Split
// call would create: New(r.SplitSeed()) is bit-identical to r.Split(), and
// the parent advances the same single step either way. A coordinator uses
// it to derive worker streams it can recreate in another process — shipping
// the 64-bit seed over the wire instead of the generator state — while
// keeping the derivation sequence (and everything later drawn from the
// parent) exactly the same as an in-process Split fan-out.
func (r *Source) SplitSeed() uint64 {
	return r.Uint64() ^ 0xd1b54a32d192ed03
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256++).
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit integer.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	// Lemire's nearly-divisionless bounded generation.
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64s fills dst with uniform float64s in [0, 1), advancing the stream
// exactly len(dst) draws. The sequence is identical to len(dst) successive
// Float64 calls; the block form exists because the Monte-Carlo sampling hot
// loop draws hundreds of thousands of variates per evaluation, and keeping
// the xoshiro256++ state in locals across the loop (instead of re-loading it
// through the receiver on every non-inlined Uint64 call) measurably reduces
// the per-draw cost.
func (r *Source) Float64s(dst []float64) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range dst {
		x := bits.RotateLeft64(s0+s3, 23) + s0
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		dst[i] = float64(x>>11) / (1 << 53)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Float64Open returns a uniform float64 in (0, 1), never exactly zero.
// Samplers that take a logarithm use this to avoid -Inf.
func (r *Source) Float64Open() float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// Uniform returns a uniform float64 in [a, b). It panics if b < a.
func (r *Source) Uniform(a, b float64) float64 {
	if b < a {
		panic(fmt.Sprintf("rng: Uniform called with a=%g > b=%g", a, b))
	}
	return a + (b-a)*r.Float64()
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a uniformly random permutation of [0, len(p)),
// consuming exactly the same stream as Perm(len(p)). It exists so steady-
// state loops (the GA's per-generation tournament) can reuse one scratch
// slice instead of allocating a fresh permutation every call.
func (r *Source) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
}

// Shuffle permutes p uniformly at random in place.
func (r *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("rng: Exp called with rate=%g", rate))
	}
	return -math.Log(r.Float64Open()) / rate
}

// Norm returns a normal variate with the given mean and standard deviation,
// using the Marsaglia polar method.
func (r *Source) Norm(mean, stddev float64) float64 {
	if stddev < 0 {
		panic(fmt.Sprintf("rng: Norm called with stddev=%g", stddev))
	}
	return mean + stddev*r.stdNorm()
}

func (r *Source) stdNorm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Gamma returns a gamma variate with the given shape k and scale θ
// (mean k·θ, variance k·θ²). The paper's COV-based matrix generation (Ali
// et al., HCW 2000) draws both task means and per-machine execution times
// from gamma distributions parameterized this way.
//
// Shape >= 1 uses Marsaglia & Tsang's squeeze method; shape < 1 uses the
// boost Gamma(k) = Gamma(k+1) · U^{1/k}.
func (r *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("rng: Gamma called with shape=%g scale=%g", shape, scale))
	}
	if shape < 1 {
		u := r.Float64Open()
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.stdNorm()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// GammaMeanCOV returns a gamma variate parameterized by its mean and
// coefficient of variation, the form used throughout Ali et al.'s
// heterogeneity model: shape = 1/COV², scale = mean·COV².
func (r *Source) GammaMeanCOV(mean, cov float64) float64 {
	if mean <= 0 || cov <= 0 {
		panic(fmt.Sprintf("rng: GammaMeanCOV called with mean=%g cov=%g", mean, cov))
	}
	return r.Gamma(1/(cov*cov), mean*cov*cov)
}

// LogNormalQuantile returns the lognormal quantile (inverse CDF) at u for the
// distribution of exp(N(mu, sigma²)). It is a pure function of (mu, sigma, u)
// so that the Monte-Carlo SoA sampler and the antithetic mirror can evaluate
// the same variate at u and 1−u with bit-identical floating-point op order
// (every Float64 output k/2^53 makes 1−u exactly representable). u must lie
// in [0, 1); u == 0 is clamped to the smallest positive draw so the mirror at
// u = 1 never produces +Inf.
func LogNormalQuantile(mu, sigma, u float64) float64 {
	if u <= 0 {
		u = 0x1p-53
	}
	return math.Exp(mu + sigma*(math.Sqrt2*math.Erfinv(2*u-1)))
}

// BoundedParetoQuantile returns the quantile (inverse CDF) at u of the Pareto
// distribution with tail index alpha truncated to [lo, hi]:
//
//	F(x) = (1 − (lo/x)^α) / (1 − (lo/hi)^α),  lo ≤ x ≤ hi.
//
// Like LogNormalQuantile it is a pure function so sampler and mirror share
// one op order. Both endpoints are finite: u=0 → lo, u→1 → hi.
func BoundedParetoQuantile(lo, hi, alpha, u float64) float64 {
	ratio := math.Pow(lo/hi, alpha)
	return lo / math.Pow(1-u*(1-ratio), 1/alpha)
}

// LogNormal returns a lognormal variate exp(N(mu, sigma²)) by inverse-CDF
// transform of a single uniform draw. Exactly one Float64 is consumed per
// call — unlike Norm's polar method, the draw count is fixed, which is what
// the lane-batched realization sampler requires to stay bit-identical across
// worker counts.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	if sigma < 0 {
		panic(fmt.Sprintf("rng: LogNormal called with sigma=%g", sigma))
	}
	return LogNormalQuantile(mu, sigma, r.Float64())
}

// LogNormalMeanCOV returns a lognormal variate parameterized by its mean and
// coefficient of variation: sigma² = ln(1+COV²), mu = ln(mean) − sigma²/2.
// The correlated-load duration model uses this with mean 1 to perturb whole
// processors per realization without shifting expected durations.
func (r *Source) LogNormalMeanCOV(mean, cov float64) float64 {
	if mean <= 0 || cov < 0 {
		panic(fmt.Sprintf("rng: LogNormalMeanCOV called with mean=%g cov=%g", mean, cov))
	}
	sigma2 := math.Log(1 + cov*cov)
	return r.LogNormal(math.Log(mean)-sigma2/2, math.Sqrt(sigma2))
}

// BoundedPareto returns a Pareto(alpha) variate truncated to [lo, hi] by
// inverse-CDF transform of a single uniform draw (fixed draw count, like
// LogNormal).
func (r *Source) BoundedPareto(lo, hi, alpha float64) float64 {
	if !(lo > 0) || hi < lo || alpha <= 0 {
		panic(fmt.Sprintf("rng: BoundedPareto called with lo=%g hi=%g alpha=%g", lo, hi, alpha))
	}
	return BoundedParetoQuantile(lo, hi, alpha, r.Float64())
}
