package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	diff := false
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("child stream identical to parent continuation")
	}
}

func TestSplitDeterminism(t *testing.T) {
	mk := func() []uint64 {
		r := New(99)
		c1 := r.Split()
		c2 := r.Split()
		out := make([]uint64, 0, 20)
		for i := 0; i < 10; i++ {
			out = append(out, c1.Uint64(), c2.Uint64())
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split streams not reproducible at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64sMatchesFloat64(t *testing.T) {
	// The block fill must advance the stream exactly like successive
	// Float64 calls and leave both sources in the same state, for every
	// block length including zero.
	a, b := New(17), New(17)
	for _, n := range []int{0, 1, 7, 64, 1000} {
		block := make([]float64, n)
		a.Float64s(block)
		for i, x := range block {
			if want := b.Float64(); x != want {
				t.Fatalf("len %d: block[%d] = %v, Float64 = %v", n, i, x, want)
			}
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("states diverged after block fills")
	}
}

func TestFloat64OpenNonZero(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		if f := r.Float64Open(); f <= 0 || f >= 1 {
			t.Fatalf("Float64Open out of (0,1): %g", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %g", i, c, want)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) out of range: %g", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	r := New(13)
	if v := r.Uniform(3, 3); v != 3 {
		t.Fatalf("Uniform(3,3) = %g, want 3", v)
	}
}

func TestUniformMoments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Uniform(10, 30)
	}
	mean := sum / n
	if math.Abs(mean-20) > 0.1 {
		t.Errorf("Uniform(10,30) mean = %g, want ~20", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for n := 0; n < 50; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(23)
	const n, draws = 5, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first element %d: count %d too far from %g", i, c, want)
		}
	}
}

func TestExpMoments(t *testing.T) {
	r := New(29)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp produced negative %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %g, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(31)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("Norm(5,2) mean = %g, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("Norm(5,2) variance = %g, want ~4", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(37)
	cases := []struct{ shape, scale float64 }{
		{0.5, 2.0}, // sub-1 shape path
		{1.0, 3.0},
		{4.0, 0.5},
		{9.0, 1.0},
	}
	const n = 200000
	for _, c := range cases {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := r.Gamma(c.shape, c.scale)
			if v <= 0 {
				t.Fatalf("Gamma(%g,%g) produced non-positive %g", c.shape, c.scale, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.03*wantMean+0.02 {
			t.Errorf("Gamma(%g,%g) mean = %g, want ~%g", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.10*wantVar+0.05 {
			t.Errorf("Gamma(%g,%g) variance = %g, want ~%g", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaMeanCOVMoments(t *testing.T) {
	r := New(41)
	const n = 200000
	const mean, cov = 20.0, 0.5 // the paper's µ_task = cc = 20, V = 0.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.GammaMeanCOV(mean, cov)
		sum += v
		sumSq += v * v
	}
	gotMean := sum / n
	gotStd := math.Sqrt(sumSq/n - gotMean*gotMean)
	if math.Abs(gotMean-mean) > 0.5 {
		t.Errorf("GammaMeanCOV mean = %g, want ~%g", gotMean, mean)
	}
	if gotCOV := gotStd / gotMean; math.Abs(gotCOV-cov) > 0.02 {
		t.Errorf("GammaMeanCOV COV = %g, want ~%g", gotCOV, cov)
	}
}

func TestGammaPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0, 1) did not panic")
		}
	}()
	New(1).Gamma(0, 1)
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(43)
	if err := quick.Check(func(seedRaw uint32) bool {
		p := []int{10, 20, 30, 40, 50, 60}
		r.Shuffle(p)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == 210 && len(p) == 6
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkGamma(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Gamma(4, 0.5)
	}
	_ = sink
}

func BenchmarkUniform(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Uniform(1, 9)
	}
	_ = sink
}
