package rng

// Kolmogorov–Smirnov goodness-of-fit suite: every continuous sampler the
// simulator depends on (uniform, exponential, normal, gamma) is tested
// against its analytic CDF with fixed seeds. The generators are fully
// deterministic, so these are regression tests, not flaky statistical
// checks: for a given seed the KS statistic is a constant, and the
// threshold (the asymptotic 99.9%-level critical value 1.95/√n) leaves a
// wide margin that only a genuine distribution bug crosses.

import (
	"math"
	"sort"
	"testing"
)

const ksN = 20000

// ksStat returns the two-sided Kolmogorov–Smirnov statistic between the
// sample and the analytic CDF.
func ksStat(sample []float64, cdf func(float64) float64) float64 {
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		if up := float64(i+1)/n - f; up > d {
			d = up
		}
		if down := f - float64(i)/n; down > d {
			d = down
		}
	}
	return d
}

// checkKS fails the test when the KS statistic exceeds the 99.9% critical
// value; it always logs the statistic so distribution drift is visible in
// verbose runs long before it crosses the line.
func checkKS(t *testing.T, name string, sample []float64, cdf func(float64) float64) {
	t.Helper()
	d := ksStat(sample, cdf)
	limit := 1.95 / math.Sqrt(float64(len(sample)))
	t.Logf("%s: KS statistic %.5f (limit %.5f, n=%d)", name, d, limit, len(sample))
	if d > limit {
		t.Errorf("%s: KS statistic %.5f exceeds %.5f — sample does not match the analytic CDF", name, d, limit)
	}
}

// lowerIncompleteGammaRegularized computes P(a, x) = γ(a, x)/Γ(a) via the
// series expansion for x < a+1 and the Lentz continued fraction otherwise —
// the standard split that converges quickly on both sides.
func lowerIncompleteGammaRegularized(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series: P(a,x) = x^a e^-x / Γ(a) · Σ x^k / (a(a+1)...(a+k)).
		sum := 1.0 / a
		term := sum
		for k := 1; k < 500; k++ {
			term *= x / (a + float64(k))
			sum += term
			if math.Abs(term) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a,x) (modified Lentz).
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for k := 1; k < 500; k++ {
		an := -float64(k) * (float64(k) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}

func normalCDF(mean, std, x float64) float64 {
	return 0.5 * math.Erfc(-(x-mean)/(std*math.Sqrt2))
}

func TestKSUniform(t *testing.T) {
	r := New(101)
	sample := make([]float64, ksN)
	for i := range sample {
		sample[i] = r.Uniform(3, 11)
	}
	checkKS(t, "Uniform(3,11)", sample, func(x float64) float64 {
		switch {
		case x < 3:
			return 0
		case x > 11:
			return 1
		default:
			return (x - 3) / 8
		}
	})
}

func TestKSFloat64s(t *testing.T) {
	r := New(102)
	sample := make([]float64, ksN)
	r.Float64s(sample)
	checkKS(t, "Float64s", sample, func(x float64) float64 {
		return math.Min(1, math.Max(0, x))
	})
}

func TestKSExponential(t *testing.T) {
	const rate = 0.7
	r := New(103)
	sample := make([]float64, ksN)
	for i := range sample {
		sample[i] = r.Exp(rate)
	}
	checkKS(t, "Exp(0.7)", sample, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 1 - math.Exp(-rate*x)
	})
}

func TestKSNormal(t *testing.T) {
	const mean, std = 5.0, 2.5
	r := New(104)
	sample := make([]float64, ksN)
	for i := range sample {
		sample[i] = r.Norm(mean, std)
	}
	checkKS(t, "Norm(5,2.5)", sample, func(x float64) float64 {
		return normalCDF(mean, std, x)
	})
}

// TestKSGamma covers both Marsaglia–Tsang regimes: shape >= 1 directly and
// shape < 1 via the boosting transform.
func TestKSGamma(t *testing.T) {
	cases := []struct {
		shape, scale float64
		seed         uint64
	}{
		{0.5, 2.0, 105},
		{1.0, 1.0, 106},
		{2.5, 0.8, 107},
		{9.0, 3.0, 108},
	}
	for _, tc := range cases {
		r := New(tc.seed)
		sample := make([]float64, ksN)
		for i := range sample {
			sample[i] = r.Gamma(tc.shape, tc.scale)
		}
		shape := tc.shape
		scale := tc.scale
		checkKS(t, "Gamma", sample, func(x float64) float64 {
			if x <= 0 {
				return 0
			}
			return lowerIncompleteGammaRegularized(shape, x/scale)
		})
	}
}

// TestKSGammaMeanCOV pins the (mean, cov) parameterization: shape = 1/cov²,
// scale = mean·cov².
func TestKSGammaMeanCOV(t *testing.T) {
	const mean, cov = 10.0, 0.5
	r := New(109)
	sample := make([]float64, ksN)
	for i := range sample {
		sample[i] = r.GammaMeanCOV(mean, cov)
	}
	shape := 1 / (cov * cov)
	scale := mean * cov * cov
	checkKS(t, "GammaMeanCOV(10,0.5)", sample, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return lowerIncompleteGammaRegularized(shape, x/scale)
	})
}

// TestKSLogNormal pins the inverse-CDF lognormal sampler against the
// analytic CDF Φ((ln x − mu)/sigma) across both a narrow and a heavy-tailed
// parameterization.
func TestKSLogNormal(t *testing.T) {
	cases := []struct {
		mu, sigma float64
		seed      uint64
	}{
		{0, 0.25, 112},
		{1.5, 1.0, 113},
	}
	for _, tc := range cases {
		r := New(tc.seed)
		sample := make([]float64, ksN)
		for i := range sample {
			sample[i] = r.LogNormal(tc.mu, tc.sigma)
		}
		mu, sigma := tc.mu, tc.sigma
		checkKS(t, "LogNormal", sample, func(x float64) float64 {
			if x <= 0 {
				return 0
			}
			return normalCDF(mu, sigma, math.Log(x))
		})
	}
}

// TestKSLogNormalMeanCOV pins the (mean, cov) parameterization by checking
// the sample against the CDF derived from sigma² = ln(1+cov²),
// mu = ln(mean) − sigma²/2, and the sample mean against the requested mean.
func TestKSLogNormalMeanCOV(t *testing.T) {
	const mean, cov = 1.0, 0.3
	r := New(114)
	sample := make([]float64, ksN)
	sum := 0.0
	for i := range sample {
		sample[i] = r.LogNormalMeanCOV(mean, cov)
		sum += sample[i]
	}
	sigma := math.Sqrt(math.Log(1 + cov*cov))
	mu := math.Log(mean) - sigma*sigma/2
	checkKS(t, "LogNormalMeanCOV(1,0.3)", sample, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return normalCDF(mu, sigma, math.Log(x))
	})
	if got := sum / ksN; math.Abs(got-mean) > 4*cov/math.Sqrt(ksN) {
		t.Errorf("sample mean %.5f deviates from requested mean %g", got, mean)
	}
}

// TestKSBoundedPareto pins the truncated Pareto sampler against
// F(x) = (1 − (lo/x)^α) / (1 − (lo/hi)^α) for a heavy tail (α < 2, infinite
// variance untruncated) and a moderate one.
func TestKSBoundedPareto(t *testing.T) {
	cases := []struct {
		lo, hi, alpha float64
		seed          uint64
	}{
		{1, 100, 1.5, 115},
		{2, 20, 3.0, 116},
	}
	for _, tc := range cases {
		r := New(tc.seed)
		sample := make([]float64, ksN)
		for i := range sample {
			x := r.BoundedPareto(tc.lo, tc.hi, tc.alpha)
			if x < tc.lo || x > tc.hi {
				t.Fatalf("BoundedPareto(%g,%g,%g) = %g outside bounds", tc.lo, tc.hi, tc.alpha, x)
			}
			sample[i] = x
		}
		lo, hi, alpha := tc.lo, tc.hi, tc.alpha
		norm := 1 - math.Pow(lo/hi, alpha)
		checkKS(t, "BoundedPareto", sample, func(x float64) float64 {
			switch {
			case x < lo:
				return 0
			case x > hi:
				return 1
			default:
				return (1 - math.Pow(lo/x, alpha)) / norm
			}
		})
	}
}

// TestQuantileMirrorExact pins the antithetic-mirror contract the SoA sampler
// relies on: for every uniform draw u = k/2^53, the value 1−u is exactly
// representable, so Quantile(1−u) is the exact antithetic partner of
// Quantile(u) — bit-identical whether computed by the sampler or the mirror.
func TestQuantileMirrorExact(t *testing.T) {
	r := New(117)
	for i := 0; i < 1000; i++ {
		u := r.Float64()
		if 1-(1-u) != u {
			t.Fatalf("1-u not exactly representable for u=%x", math.Float64bits(u))
		}
		if a, b := LogNormalQuantile(0.5, 0.8, u), LogNormalQuantile(0.5, 0.8, u); a != b {
			t.Fatalf("LogNormalQuantile not deterministic at u=%g: %g != %g", u, a, b)
		}
		if a, b := BoundedParetoQuantile(1, 50, 1.5, u), BoundedParetoQuantile(1, 50, 1.5, u); a != b {
			t.Fatalf("BoundedParetoQuantile not deterministic at u=%g: %g != %g", u, a, b)
		}
	}
	// Edge cases: u = 0 must not yield 0 (lognormal) or escape [lo, hi]
	// (Pareto), and the mirror at u = 1 must stay finite.
	if v := LogNormalQuantile(0, 1, 0); v <= 0 || math.IsInf(v, 0) {
		t.Errorf("LogNormalQuantile(0,1,0) = %g, want finite positive", v)
	}
	if v := LogNormalQuantile(0, 1, 1-0x1p-53); math.IsInf(v, 0) || v <= 0 {
		t.Errorf("LogNormalQuantile at max u = %g, want finite positive", v)
	}
	if v := BoundedParetoQuantile(1, 50, 1.5, 0); v != 1 {
		t.Errorf("BoundedParetoQuantile at u=0 = %g, want lo", v)
	}
	if v := BoundedParetoQuantile(1, 50, 1.5, 1); math.Abs(v-50) > 1e-9 {
		t.Errorf("BoundedParetoQuantile at u=1 = %g, want hi", v)
	}
}

// TestIncompleteGammaReference sanity-checks the test's own CDF helper
// against closed forms: P(1,x) = 1-e^-x and P(1/2, x) = erf(√x).
func TestIncompleteGammaReference(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		if got, want := lowerIncompleteGammaRegularized(1, x), 1-math.Exp(-x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1,%g) = %.15g, want %.15g", x, got, want)
		}
		if got, want := lowerIncompleteGammaRegularized(0.5, x), math.Erf(math.Sqrt(x)); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(0.5,%g) = %.15g, want %.15g", x, got, want)
		}
	}
}

// TestSplitStreamIndependence checks Split: the parent's and child's
// uniform streams must each pass KS and be (empirically) uncorrelated —
// Pearson correlation within the bound 4.5/√n that a true independent pair
// stays under with overwhelming margin for a fixed seed.
func TestSplitStreamIndependence(t *testing.T) {
	parent := New(110)
	child := parent.Split()
	a := make([]float64, ksN)
	b := make([]float64, ksN)
	for i := range a {
		a[i] = parent.Float64()
		b[i] = child.Float64()
	}
	uniform := func(x float64) float64 { return math.Min(1, math.Max(0, x)) }
	checkKS(t, "Split parent", a, uniform)
	checkKS(t, "Split child", b, uniform)

	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= ksN
	mb /= ksN
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	corr := cov / math.Sqrt(va*vb)
	if limit := 4.5 / math.Sqrt(ksN); math.Abs(corr) > limit {
		t.Errorf("parent/child correlation %.5f exceeds %.5f — Split streams are not independent", corr, limit)
	}
	// Lagged self-check: the child must also not replay the parent stream
	// at an offset (a classic splitting bug).
	for lag := 1; lag <= 3; lag++ {
		match := 0
		for i := 0; i+lag < ksN; i++ {
			if a[i+lag] == b[i] {
				match++
			}
		}
		if match > 0 {
			t.Errorf("lag %d: child stream repeats %d parent draws exactly", lag, match)
		}
	}
}

// TestKSDeterministic pins that the suite is a regression test, not a
// statistical one: the KS statistic for a fixed seed never changes.
func TestKSDeterministic(t *testing.T) {
	stat := func() float64 {
		r := New(111)
		sample := make([]float64, 2000)
		for i := range sample {
			sample[i] = r.Gamma(2, 1)
		}
		return ksStat(sample, func(x float64) float64 {
			if x <= 0 {
				return 0
			}
			return lowerIncompleteGammaRegularized(2, x)
		})
	}
	if a, b := stat(), stat(); a != b {
		t.Fatalf("KS statistic not deterministic: %v != %v", a, b)
	}
}
