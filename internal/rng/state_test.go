package rng

import (
	"math"
	"testing"
)

// TestStateRoundTrip: resuming from a captured State reproduces the exact
// draw sequence the original source continues with, across every sampler —
// including the cached polar-method normal variate.
func TestStateRoundTrip(t *testing.T) {
	r := New(12345)
	// Burn a mixed prefix so the state is mid-stream, and leave the polar
	// spare populated (Norm caches the second variate of each pair).
	for i := 0; i < 17; i++ {
		r.Uint64()
		r.Float64()
	}
	r.Norm(0, 1) // leaves hasSpare=true with odds ~1 (polar generates pairs)

	st := r.State()
	clone := FromState(st)

	for i := 0; i < 200; i++ {
		if a, b := r.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("draw %d: Uint64 %d != %d", i, a, b)
		}
	}
	// Normal draws exercise the spare path on both sides.
	for i := 0; i < 50; i++ {
		a, b := r.Norm(3, 2), clone.Norm(3, 2)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("norm draw %d: %v != %v", i, a, b)
		}
	}
	// Gamma uses rejection sampling (variable draw counts) — a state mismatch
	// would desynchronize it immediately.
	for i := 0; i < 50; i++ {
		a, b := r.Gamma(2.5, 1.5), clone.Gamma(2.5, 1.5)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("gamma draw %d: %v != %v", i, a, b)
		}
	}
}

// TestStateDoesNotAdvance: State is a pure read.
func TestStateDoesNotAdvance(t *testing.T) {
	r := New(7)
	r.Uint64()
	st1 := r.State()
	st2 := r.State()
	if st1 != st2 {
		t.Fatal("State advanced the source")
	}
	want := FromState(st1).Uint64()
	if got := r.Uint64(); got != want {
		t.Fatalf("draw after State: %d != %d", got, want)
	}
}

// TestFromStateZeroGuard: the absorbing all-zero xoshiro state is rejected
// the same way New rejects it.
func TestFromStateZeroGuard(t *testing.T) {
	r := FromState(State{})
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("all-zero state was not rescued")
	}
}
