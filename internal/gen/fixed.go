package gen

import (
	"fmt"

	"robsched/internal/dag"
)

// PaperExampleGraph returns the illustrative 8-task graph used to explain
// Fig. 1 of the paper. The published figure's exact edges are not fully
// legible in the text, so this graph is constructed to be consistent with
// the schedule the paper writes out for it:
// {{(v1,v2),(v2,v4)}, {(v3,v5),(v5,v8)}, {(v6,v7)}, ∅}.
// Tasks use 0-based ids internally (v1 = task 0).
func PaperExampleGraph(data float64) *dag.Graph {
	b := dag.NewBuilder(8)
	edges := [][2]int{
		{0, 1}, {0, 2}, // v1 -> v2, v3
		{1, 3}, {1, 4}, // v2 -> v4, v5
		{2, 4}, {2, 5}, // v3 -> v5, v6
		{5, 6},                 // v6 -> v7
		{3, 7}, {4, 7}, {6, 7}, // v4, v5, v7 -> v8
	}
	for _, e := range edges {
		b.MustAddEdge(e[0], e[1], data)
	}
	return b.MustBuild()
}

// GaussianElimination returns the task graph of Gaussian elimination on a
// k×k matrix (k >= 2), the classic structured workload from the HEFT paper:
// for each elimination step j there is one pivot task followed by k-1-j
// update tasks; the pivot feeds every update of its step, and each update
// feeds the next step's pivot (column j+1) or its same-column update.
// Every edge carries data units of communication.
func GaussianElimination(k int, data float64) (*dag.Graph, error) {
	if k < 2 {
		return nil, fmt.Errorf("gen: GaussianElimination needs k >= 2, got %d", k)
	}
	// Number the tasks step by step: pivot(j) then update(j, i) for
	// i = j+1..k-1.
	type key struct{ j, i int }
	id := make(map[key]int)
	next := 0
	for j := 0; j < k-1; j++ {
		id[key{j, j}] = next // pivot of step j
		next++
		for i := j + 1; i < k; i++ {
			id[key{j, i}] = next // update of column i at step j
			next++
		}
	}
	b := dag.NewBuilder(next)
	for j := 0; j < k-1; j++ {
		pivot := id[key{j, j}]
		for i := j + 1; i < k; i++ {
			b.MustAddEdge(pivot, id[key{j, i}], data)
		}
		if j+1 < k-1 {
			// update(j, j+1) produces the next pivot column.
			b.MustAddEdge(id[key{j, j + 1}], id[key{j + 1, j + 1}], data)
			for i := j + 2; i < k; i++ {
				b.MustAddEdge(id[key{j, i}], id[key{j + 1, i}], data)
			}
		}
	}
	return b.Build()
}

// FFT returns the butterfly task graph of a 2^stages-point fast Fourier
// transform: stages+1 rows of 2^stages tasks where task (l, i) of row l >= 1
// depends on tasks (l-1, i) and (l-1, i XOR 2^(l-1)). Every edge carries
// data units of communication.
func FFT(stages int, data float64) (*dag.Graph, error) {
	if stages < 1 || stages > 16 {
		return nil, fmt.Errorf("gen: FFT stages must be in [1,16], got %d", stages)
	}
	p := 1 << stages
	b := dag.NewBuilder((stages + 1) * p)
	id := func(l, i int) int { return l*p + i }
	for l := 1; l <= stages; l++ {
		half := 1 << (l - 1)
		for i := 0; i < p; i++ {
			b.MustAddEdge(id(l-1, i), id(l, i), data)
			b.MustAddEdge(id(l-1, i^half), id(l, i), data)
		}
	}
	return b.Build()
}

// ForkJoin returns stages sequential fork-join diamonds: a fork task
// fanning out to width parallel tasks that all join, the join feeding the
// next stage's fork. Every edge carries data units of communication.
func ForkJoin(width, stages int, data float64) (*dag.Graph, error) {
	if width < 1 || stages < 1 {
		return nil, fmt.Errorf("gen: ForkJoin needs width, stages >= 1, got %d, %d", width, stages)
	}
	n := stages*(width+2) - (stages - 1) // join of stage s is fork of stage s+1
	b := dag.NewBuilder(n)
	fork := 0
	next := 1
	for s := 0; s < stages; s++ {
		join := next + width
		for w := 0; w < width; w++ {
			b.MustAddEdge(fork, next+w, data)
			b.MustAddEdge(next+w, join, data)
		}
		fork = join
		next = join + 1
	}
	return b.Build()
}

// Stencil returns a depth×width pipeline stencil: task (d, w) for d >= 1
// depends on its up-to-three upper neighbours (d-1, w-1..w+1). Every edge
// carries data units of communication.
func Stencil(width, depth int, data float64) (*dag.Graph, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("gen: Stencil needs width, depth >= 1, got %d, %d", width, depth)
	}
	b := dag.NewBuilder(width * depth)
	id := func(d, w int) int { return d*width + w }
	for d := 1; d < depth; d++ {
		for w := 0; w < width; w++ {
			for dw := -1; dw <= 1; dw++ {
				if u := w + dw; u >= 0 && u < width {
					b.MustAddEdge(id(d-1, u), id(d, w), data)
				}
			}
		}
	}
	return b.Build()
}
