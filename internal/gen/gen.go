// Package gen generates the workloads of the paper's evaluation
// (Section 5): layered random task graphs parameterized by size, shape,
// average computation cost and communication-to-computation ratio (the
// generator of Shi & Dongarra, FGCS 2006, itself in the Topcuoglu et al.
// family), best-case execution time matrices from the coefficient-of-
// variation heterogeneity model of Ali et al. (HCW 2000), and the two-level
// Gamma uncertainty-level matrices of Section 5. It also provides the fixed
// structured graphs (Gaussian elimination, FFT butterfly, fork-join,
// pipeline stencil) used by the example programs.
package gen

import (
	"fmt"
	"math"

	"robsched/internal/dag"
	"robsched/internal/platform"
	"robsched/internal/rng"
)

// Params collects every knob of the paper's workload generator, with
// PaperParams giving the values used in Section 5.
type Params struct {
	// Graph shape.
	N           int     // number of tasks (paper: 100)
	Shape       float64 // shape parameter α: mean height is sqrt(N)/α (paper: 1.0)
	MaxInDegree int     // cap on sampled predecessors per non-entry task (default 5)

	// Costs.
	CC  float64 // average computation cost = µ_task of the COV model (paper: 20)
	CCR float64 // communication-to-computation ratio (paper: 0.1)

	// Heterogeneity (COV model, Ali et al.).
	VTask float64 // task heterogeneity (paper: 0.5)
	VMach float64 // machine heterogeneity (paper: 0.5)

	// Uncertainty levels (two-level Gamma model, Section 5).
	MeanUL float64 // average uncertainty level UL (paper sweeps 2..8)
	V1     float64 // COV of per-task expected uncertainty levels (paper: 0.5)
	V2     float64 // COV of per-(task,proc) levels around the task's (paper: 0.5)

	// Platform.
	M    int     // number of processors (paper does not state it; default 8)
	Rate float64 // uniform inter-processor transfer rate (default 1.0)
}

// PaperParams returns the parameter set of the paper's experiments with
// MeanUL left at 2.0 (the experiments sweep it).
func PaperParams() Params {
	return Params{
		N: 100, Shape: 1.0, MaxInDegree: 5,
		CC: 20, CCR: 0.1,
		VTask: 0.5, VMach: 0.5,
		MeanUL: 2.0, V1: 0.5, V2: 0.5,
		M: 8, Rate: 1.0,
	}
}

// Validate reports the first invalid field.
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return fmt.Errorf("gen: N=%d must be positive", p.N)
	case p.Shape <= 0:
		return fmt.Errorf("gen: Shape=%g must be positive", p.Shape)
	case p.CC <= 0:
		return fmt.Errorf("gen: CC=%g must be positive", p.CC)
	case p.CCR < 0:
		return fmt.Errorf("gen: CCR=%g must be non-negative", p.CCR)
	case p.VTask <= 0 || p.VMach <= 0:
		return fmt.Errorf("gen: VTask=%g, VMach=%g must be positive", p.VTask, p.VMach)
	case p.MeanUL < 1:
		return fmt.Errorf("gen: MeanUL=%g must be >= 1", p.MeanUL)
	case p.V1 <= 0 || p.V2 <= 0:
		return fmt.Errorf("gen: V1=%g, V2=%g must be positive", p.V1, p.V2)
	case p.M <= 0:
		return fmt.Errorf("gen: M=%d must be positive", p.M)
	case p.Rate <= 0:
		return fmt.Errorf("gen: Rate=%g must be positive", p.Rate)
	}
	return nil
}

// Random generates one complete workload instance: graph, platform, BCET and
// UL matrices.
func Random(p Params, r *rng.Source) (*platform.Workload, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g, err := RandomGraph(p, r)
	if err != nil {
		return nil, err
	}
	sys := platform.UniformSystem(p.M, p.Rate)
	bcet := ExecMatrix(g.N(), p.M, p.CC, p.VTask, p.VMach, r)
	ul := ULMatrix(g.N(), p.M, p.MeanUL, p.V1, p.V2, r)
	return platform.NewWorkload(g, sys, bcet, ul)
}

// RandomGraph generates a layered random DAG:
//
//   - the number of levels is sampled uniformly with mean sqrt(N)/Shape
//     (small Shape → tall thin graphs, large Shape → short wide ones);
//   - the N tasks are spread over the levels uniformly at random, with
//     every level guaranteed at least one task;
//   - each non-first-level task draws 1 + Intn(MaxInDegree) predecessors,
//     always including one from the immediately preceding level so every
//     level advances the critical path, the rest uniformly among all
//     earlier tasks;
//   - each edge carries data sized so its mean communication cost at the
//     platform's transfer rate Rate is CC·CCR (sampled U(0, 2·CC·CCR)·Rate).
func RandomGraph(p Params, r *rng.Source) (*dag.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N
	if n == 1 {
		return dag.NewBuilder(1).Build()
	}
	meanHeight := math.Sqrt(float64(n)) / p.Shape
	levels := int(math.Round(r.Uniform(1, 2*meanHeight)))
	// With at least two tasks, keep at least two levels so the graph is a
	// proper DAG with dependencies rather than an independent task set.
	if levels < 2 {
		levels = 2
	}
	if levels > n {
		levels = n
	}
	// Assign each task a level; force at least one task per level by
	// seeding the first `levels` tasks one per level, then spreading the
	// rest uniformly.
	levelOf := make([]int, n)
	for v := 0; v < levels; v++ {
		levelOf[v] = v
	}
	for v := levels; v < n; v++ {
		levelOf[v] = r.Intn(levels)
	}
	// Shuffle identities so task ids do not encode levels.
	perm := r.Perm(n)
	byLevel := make([][]int, levels)
	for v := 0; v < n; v++ {
		l := levelOf[v]
		byLevel[l] = append(byLevel[l], perm[v])
	}
	maxIn := p.MaxInDegree
	if maxIn <= 0 {
		maxIn = 5
	}
	meanComm := p.CC * p.CCR
	sampleData := func() float64 {
		if meanComm == 0 {
			return 0
		}
		return r.Uniform(0, 2*meanComm) * p.Rate
	}
	b := dag.NewBuilder(n)
	var earlier []int
	for l := 1; l < levels; l++ {
		earlier = append(earlier, byLevel[l-1]...)
		prev := byLevel[l-1]
		for _, v := range byLevel[l] {
			// Guaranteed parent from the previous level.
			first := prev[r.Intn(len(prev))]
			if err := b.AddEdge(first, v, sampleData()); err != nil {
				return nil, err
			}
			extra := r.Intn(maxIn)
			for k := 0; k < extra; k++ {
				u := earlier[r.Intn(len(earlier))]
				// Duplicate edges are simply skipped.
				_ = b.AddEdge(u, v, sampleData())
			}
		}
	}
	return b.Build()
}

// ExecMatrix generates an n×m execution-time matrix with the COV-based
// method of Ali et al.: each task i draws a mean q_i from a Gamma
// distribution with mean muTask and COV vTask, and its time on each machine
// from a Gamma with mean q_i and COV vMach.
func ExecMatrix(n, m int, muTask, vTask, vMach float64, r *rng.Source) platform.Matrix {
	out := platform.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		q := r.GammaMeanCOV(muTask, vTask)
		for j := 0; j < m; j++ {
			out.Set(i, j, r.GammaMeanCOV(q, vMach))
		}
	}
	return out
}

// ULMatrix generates the n×m uncertainty-level matrix of Section 5: a
// per-task expected level q_i ~ Gamma(mean meanUL, COV v1), then
// UL_ij ~ Gamma(mean q_i, COV v2), clamped to >= 1 so the duration
// distribution U(b, (2UL-1)b) stays well formed.
func ULMatrix(n, m int, meanUL, v1, v2 float64, r *rng.Source) platform.Matrix {
	out := platform.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		q := r.GammaMeanCOV(meanUL, v1)
		if q < 1 {
			q = 1
		}
		for j := 0; j < m; j++ {
			ul := r.GammaMeanCOV(q, v2)
			if ul < 1 {
				ul = 1
			}
			out.Set(i, j, ul)
		}
	}
	return out
}

// ConstantULMatrix returns an n×m matrix with every uncertainty level equal
// to ul — useful for controlled experiments and tests.
func ConstantULMatrix(n, m int, ul float64) platform.Matrix {
	if ul < 1 {
		panic(fmt.Sprintf("gen: ConstantULMatrix ul=%g < 1", ul))
	}
	out := platform.NewMatrix(n, m)
	out.Fill(ul)
	return out
}
