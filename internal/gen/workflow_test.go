package gen

import (
	"math"
	"testing"

	"robsched/internal/heft"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// wfCase enumerates the family generators with their task-count formulas.
var wfCases = []struct {
	name  string
	tasks func(w int) int
}{
	{"montage", func(w int) int { return 3*w + 4 }},
	{"epigenomics", func(w int) int { return 3*w + 4 }},
	{"cybershake", func(w int) int { return 2*w + 4 }},
}

// TestWorkflowValidDAGs is the satellite property test: every family, at
// several widths and seeds, yields a workload whose DAG schedules cleanly —
// HEFT succeeds and the resulting schedule passes the shared invariant
// validator — with the advertised task count and a stage list that
// partitions the task set.
func TestWorkflowValidDAGs(t *testing.T) {
	p := PaperParams()
	for _, tc := range wfCases {
		for _, width := range []int{2, 5, 8} {
			for seed := uint64(1); seed <= 5; seed++ {
				w, stages, err := WorkflowByName(tc.name, width, p, rng.New(seed))
				if err != nil {
					t.Fatalf("%s width=%d seed=%d: %v", tc.name, width, seed, err)
				}
				if got, want := w.N(), tc.tasks(width); got != want {
					t.Fatalf("%s width=%d: %d tasks, want %d", tc.name, width, got, want)
				}
				seen := make([]bool, w.N())
				for _, st := range stages {
					for _, task := range st.Tasks {
						if task < 0 || task >= w.N() || seen[task] {
							t.Fatalf("%s width=%d: stage %q claims task %d twice or out of range", tc.name, width, st.Name, task)
						}
						seen[task] = true
					}
				}
				for task, ok := range seen {
					if !ok {
						t.Fatalf("%s width=%d: task %d not claimed by any stage", tc.name, width, task)
					}
				}
				s, err := heft.HEFT(w, heft.Options{})
				if err != nil {
					t.Fatalf("%s width=%d seed=%d: HEFT failed: %v", tc.name, width, seed, err)
				}
				if err := schedule.Validate(s); err != nil {
					t.Fatalf("%s width=%d seed=%d: invalid schedule: %v", tc.name, width, seed, err)
				}
			}
		}
	}
}

// TestWorkflowStageCCRBounds pins the per-stage CCR profile: every edge's
// data lies within [0.5, 1.5]·CC·stageCCR·Rate of its consumer's stage —
// the documented sampling bound — and entry stages receive no edges.
func TestWorkflowStageCCRBounds(t *testing.T) {
	p := PaperParams()
	p.CCR = 0.4
	for _, tc := range wfCases {
		w, stages, err := WorkflowByName(tc.name, 6, p, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		stageOf := make([]int, w.N())
		for si, st := range stages {
			for _, task := range st.Tasks {
				stageOf[task] = si
			}
		}
		counts := make([]int, len(stages))
		for _, e := range w.G.Edges() {
			st := stages[stageOf[e.To]]
			counts[stageOf[e.To]]++
			if st.CCR == 0 {
				t.Fatalf("%s: edge %d→%d enters entry stage %q", tc.name, e.From, e.To, st.Name)
			}
			lo := 0.5 * p.CC * st.CCR * p.Rate
			hi := 1.5 * p.CC * st.CCR * p.Rate
			if e.Data < lo || e.Data > hi {
				t.Fatalf("%s: edge %d→%d data %g outside stage %q bounds [%g, %g]",
					tc.name, e.From, e.To, e.Data, st.Name, lo, hi)
			}
		}
		for si, st := range stages {
			if st.CCR > 0 && counts[si] == 0 {
				t.Errorf("%s: non-entry stage %q received no edges", tc.name, st.Name)
			}
		}
	}
}

// TestWorkflowDeterminism pins seed determinism: one seed yields one
// workload (edges, BCET and UL bit-identical), and different seeds differ.
func TestWorkflowDeterminism(t *testing.T) {
	p := PaperParams()
	for _, tc := range wfCases {
		a, _, err := WorkflowByName(tc.name, 4, p, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := WorkflowByName(tc.name, 4, p, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		c, _, err := WorkflowByName(tc.name, 4, p, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		ea, eb := a.G.Edges(), b.G.Edges()
		if len(ea) != len(eb) {
			t.Fatalf("%s: edge counts differ across identical seeds", tc.name)
		}
		differs := false
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: edge %d differs across identical seeds: %+v vs %+v", tc.name, i, ea[i], eb[i])
			}
		}
		for tsk := 0; tsk < a.N(); tsk++ {
			for j := 0; j < a.M(); j++ {
				if math.Float64bits(a.BCET.At(tsk, j)) != math.Float64bits(b.BCET.At(tsk, j)) {
					t.Fatalf("%s: BCET(%d,%d) differs across identical seeds", tc.name, tsk, j)
				}
				if math.Float64bits(a.UL.At(tsk, j)) != math.Float64bits(b.UL.At(tsk, j)) {
					t.Fatalf("%s: UL(%d,%d) differs across identical seeds", tc.name, tsk, j)
				}
				if a.BCET.At(tsk, j) != c.BCET.At(tsk, j) {
					differs = true
				}
			}
		}
		if !differs {
			t.Errorf("%s: seeds 3 and 4 produced identical BCET matrices", tc.name)
		}
	}
}

// TestWorkflowStageCompProfile sanity-checks the computation profile: the
// heavy stage of each family (montage add, epigenomics map, cybershake
// extract) has a larger empirical mean BCET than the light stage — the
// profile actually reaches the matrices.
func TestWorkflowStageCompProfile(t *testing.T) {
	p := PaperParams()
	heavyLight := map[string][2]string{
		"montage":     {"add", "concat"},
		"epigenomics": {"map", "convert"},
		"cybershake":  {"extract", "zip"},
	}
	for _, tc := range wfCases {
		// Average over seeds: single-task stages need a few draws for the
		// Gamma means to separate.
		var meanOf map[string]float64
		const seeds = 20
		for seed := uint64(100); seed < 100+seeds; seed++ {
			w, stages, err := WorkflowByName(tc.name, 6, p, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			if meanOf == nil {
				meanOf = make(map[string]float64)
			}
			for _, st := range stages {
				sum, cnt := 0.0, 0
				for _, task := range st.Tasks {
					for j := 0; j < w.M(); j++ {
						sum += w.BCET.At(task, j)
						cnt++
					}
				}
				meanOf[st.Name] += sum / float64(cnt) / seeds
			}
		}
		hl := heavyLight[tc.name]
		if meanOf[hl[0]] <= meanOf[hl[1]] {
			t.Errorf("%s: heavy stage %q mean BCET %.2f not above light stage %q %.2f",
				tc.name, hl[0], meanOf[hl[0]], hl[1], meanOf[hl[1]])
		}
	}
}

func TestWorkflowErrors(t *testing.T) {
	p := PaperParams()
	if _, _, err := WorkflowByName("pegasus", 4, p, rng.New(1)); err == nil {
		t.Error("unknown workflow shape accepted")
	}
	for _, name := range WorkflowShapes() {
		if _, _, err := WorkflowByName(name, 1, p, rng.New(1)); err == nil {
			t.Errorf("%s: width 1 accepted", name)
		}
		bad := p
		bad.CC = 0
		if _, _, err := WorkflowByName(name, 4, bad, rng.New(1)); err == nil {
			t.Errorf("%s: invalid params accepted", name)
		}
	}
}
