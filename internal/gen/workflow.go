// Scientific-workflow shape generators: Montage-like fan-in reduction,
// Epigenomics-like parallel pipeline sweep, CyberShake-like scatter —
// the workflow classes of the Pegasus workflow gallery that dominate real
// scheduling studies, as opposed to the paper's layered-random graphs.
//
// Each family is built from named stages. A stage carries its own CCR
// multiplier (communication is wildly non-uniform across real workflow
// stages: Montage's mosaic assembly moves orders of magnitude more data than
// its background fitting) and its own computation-cost multiplier (an
// Epigenomics map step dwarfs the format conversions around it). Edge data
// into a stage is sampled U(0.5, 1.5)·CC·stageCCR·Rate, so every edge's
// communication cost lies within [0.5, 1.5]× the stage mean — a bound the
// tests pin. Task computation means are CC·stageComp, fed through the same
// Ali et al. COV heterogeneity model as the random generator.

package gen

import (
	"fmt"

	"robsched/internal/dag"
	"robsched/internal/platform"
	"robsched/internal/rng"
)

// Stage describes one named phase of a generated workflow: its task ids,
// its effective CCR (the mean communication cost of an edge into the stage
// is CC·CCR, sampled within [0.5, 1.5]× that mean), and its computation
// multiplier (the stage's mean task computation cost is CC·Comp).
type Stage struct {
	Name string
	// Tasks lists the stage's task ids (contiguous, in stage order).
	Tasks []int
	// CCR is the stage's effective communication-to-computation ratio for
	// incoming edges; 0 for entry stages, which have none.
	CCR float64
	// Comp scales the stage's mean computation cost relative to Params.CC.
	Comp float64
}

// WorkflowShapes lists the workflow generator family names accepted by
// WorkflowByName (and the CLIs' -shape/-scenario flags).
func WorkflowShapes() []string { return []string{"montage", "epigenomics", "cybershake"} }

// WorkflowByName dispatches to the named family generator. width controls
// the parallel width W of the family (Montage: 3W+4 tasks, Epigenomics:
// 3W+4, CyberShake: 2W+4).
func WorkflowByName(name string, width int, p Params, r *rng.Source) (*platform.Workload, []Stage, error) {
	switch name {
	case "montage":
		return Montage(width, p, r)
	case "epigenomics":
		return Epigenomics(width, p, r)
	case "cybershake":
		return CyberShake(width, p, r)
	}
	return nil, nil, fmt.Errorf("gen: unknown workflow shape %q (want montage|epigenomics|cybershake)", name)
}

// wfEdge is a structural edge plus the consumer stage whose CCR profile
// prices its data.
type wfEdge struct {
	from, to, stage int
}

// wfBuilder accumulates a workflow's structure before costs are sampled.
type wfBuilder struct {
	stages []Stage
	edges  []wfEdge
	n      int
}

// stage appends a named stage of count tasks with the given CCR multiplier
// (relative to p.CCR) and computation multiplier, returning the task ids.
func (b *wfBuilder) stage(name string, count int, ccrMult, comp float64, p Params) []int {
	ids := make([]int, count)
	for i := range ids {
		ids[i] = b.n + i
	}
	b.n += count
	b.stages = append(b.stages, Stage{
		Name:  name,
		Tasks: ids,
		CCR:   ccrMult * p.CCR,
		Comp:  comp,
	})
	return ids
}

// edge records from→to, priced by the consumer's (latest added) stage unless
// stageIdx names another.
func (b *wfBuilder) edge(from, to int) {
	b.edges = append(b.edges, wfEdge{from, to, len(b.stages) - 1})
}

// build materializes the structure into a workload: edge data sampled per
// consumer-stage CCR, computation means per stage Comp through the COV
// heterogeneity model, and the paper's two-level Gamma UL matrix. The draw
// order is fixed (edges in insertion order, then BCET in task order, then
// UL), so one seed reproduces one workload exactly.
func (b *wfBuilder) build(p Params, r *rng.Source) (*platform.Workload, []Stage, error) {
	p.N = b.n
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	db := dag.NewBuilder(b.n)
	for _, e := range b.edges {
		st := b.stages[e.stage]
		data := 0.0
		if st.CCR > 0 {
			data = r.Uniform(0.5, 1.5) * p.CC * st.CCR * p.Rate
		}
		if err := db.AddEdge(e.from, e.to, data); err != nil {
			return nil, nil, err
		}
	}
	g, err := db.Build()
	if err != nil {
		return nil, nil, err
	}
	sys := platform.UniformSystem(p.M, p.Rate)
	bcet := platform.NewMatrix(b.n, p.M)
	for _, st := range b.stages {
		for _, t := range st.Tasks {
			q := r.GammaMeanCOV(p.CC*st.Comp, p.VTask)
			for j := 0; j < p.M; j++ {
				bcet.Set(t, j, r.GammaMeanCOV(q, p.VMach))
			}
		}
	}
	ul := ULMatrix(b.n, p.M, p.MeanUL, p.V1, p.V2, r)
	w, err := platform.NewWorkload(g, sys, bcet, ul)
	if err != nil {
		return nil, nil, err
	}
	return w, b.stages, nil
}

// Montage generates a Montage-like mosaic workflow of width W (3W+4 tasks):
// W parallel reprojections, W overlap-pair difference fits feeding one
// fan-in concatenation, a background model broadcast back out to W
// background corrections, then the communication-heavy mosaic add and a
// final shrink. The fan-in/fan-out diamond around the background model and
// the high-CCR add stage are the family's signature stresses.
func Montage(width int, p Params, r *rng.Source) (*platform.Workload, []Stage, error) {
	if width < 2 {
		return nil, nil, fmt.Errorf("gen: montage width=%d must be >= 2", width)
	}
	var b wfBuilder
	project := b.stage("project", width, 0, 1.0, p)
	diff := b.stage("diff", width, 2.0, 0.3, p)
	for i, d := range diff {
		// Each difference fits an overlapping pair of reprojected tiles.
		b.edge(project[i], d)
		b.edge(project[(i+1)%width], d)
	}
	concat := b.stage("concat", 1, 1.0, 0.2, p)
	for _, d := range diff {
		b.edge(d, concat[0])
	}
	bgModel := b.stage("bgmodel", 1, 0.5, 1.5, p)
	b.edge(concat[0], bgModel[0])
	background := b.stage("background", width, 1.5, 0.4, p)
	for i, bg := range background {
		b.edge(bgModel[0], bg)
		b.edge(project[i], bg)
	}
	add := b.stage("add", 1, 4.0, 2.0, p)
	for _, bg := range background {
		b.edge(bg, add[0])
	}
	shrink := b.stage("shrink", 1, 2.0, 0.5, p)
	b.edge(add[0], shrink[0])
	return b.build(p, r)
}

// Epigenomics generates an Epigenomics-like parallel sweep of width W
// (3W+4 tasks): one split fans out to W independent three-step pipelines
// (filter → convert → map, with the map step carrying most of the
// computation), merged and indexed into a final pileup. Long independent
// chains make it the schedule-length stress case: slack on one lane is
// useless to the others.
func Epigenomics(width int, p Params, r *rng.Source) (*platform.Workload, []Stage, error) {
	if width < 2 {
		return nil, nil, fmt.Errorf("gen: epigenomics width=%d must be >= 2", width)
	}
	var b wfBuilder
	split := b.stage("split", 1, 0, 0.5, p)
	filter := b.stage("filter", width, 1.0, 1.0, p)
	for _, f := range filter {
		b.edge(split[0], f)
	}
	convert := b.stage("convert", width, 0.5, 0.3, p)
	for i, c := range convert {
		b.edge(filter[i], c)
	}
	mapStage := b.stage("map", width, 0.5, 4.0, p)
	for i, m := range mapStage {
		b.edge(convert[i], m)
	}
	merge := b.stage("merge", 1, 1.0, 1.0, p)
	for _, m := range mapStage {
		b.edge(m, merge[0])
	}
	index := b.stage("index", 1, 2.0, 0.5, p)
	b.edge(merge[0], index[0])
	pileup := b.stage("pileup", 1, 1.0, 1.0, p)
	b.edge(index[0], pileup[0])
	return b.build(p, r)
}

// CyberShake generates a CyberShake-like scatter workflow of width W
// (2W+4 tasks): two strain-tensor extractions scatter to W seismogram
// syntheses — each consuming both extraction outputs over the family's
// signature very-high-CCR edges — with per-synthesis peak calculations and
// two zip fan-ins. Communication dominates computation here, the opposite
// regime from Epigenomics.
func CyberShake(width int, p Params, r *rng.Source) (*platform.Workload, []Stage, error) {
	if width < 2 {
		return nil, nil, fmt.Errorf("gen: cybershake width=%d must be >= 2", width)
	}
	var b wfBuilder
	extract := b.stage("extract", 2, 0, 2.0, p)
	synthesis := b.stage("synthesis", width, 8.0, 1.0, p)
	for _, s := range synthesis {
		b.edge(extract[0], s)
		b.edge(extract[1], s)
	}
	peak := b.stage("peak", width, 0.2, 0.3, p)
	for i, pk := range peak {
		b.edge(synthesis[i], pk)
	}
	zip := b.stage("zip", 2, 3.0, 0.2, p)
	for _, s := range synthesis {
		b.edge(s, zip[0])
	}
	for _, pk := range peak {
		b.edge(pk, zip[1])
	}
	return b.build(p, r)
}
