package gen

import (
	"fmt"

	"robsched/internal/dag"
	"robsched/internal/rng"
)

// OutTree generates a random rooted out-tree (task 0 is the root; every
// other task has exactly one parent chosen uniformly among earlier tasks,
// with branching capped at maxChildren). Out-trees model divide-style
// computations; they stress schedulers differently from layered DAGs
// because every join is trivial.
func OutTree(n, maxChildren int, data float64, r *rng.Source) (*dag.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: OutTree needs n >= 1, got %d", n)
	}
	if maxChildren < 1 {
		return nil, fmt.Errorf("gen: OutTree needs maxChildren >= 1, got %d", maxChildren)
	}
	b := dag.NewBuilder(n)
	children := make([]int, n)
	for v := 1; v < n; v++ {
		// Uniform parent among earlier tasks with spare child slots.
		parent := -1
		for attempts := 0; attempts < 4*v; attempts++ {
			c := r.Intn(v)
			if children[c] < maxChildren {
				parent = c
				break
			}
		}
		if parent < 0 {
			// All sampled candidates full: scan deterministically.
			for c := 0; c < v; c++ {
				if children[c] < maxChildren {
					parent = c
					break
				}
			}
		}
		if parent < 0 {
			return nil, fmt.Errorf("gen: OutTree cannot place task %d (maxChildren too small)", v)
		}
		children[parent]++
		b.MustAddEdge(parent, v, data)
	}
	return b.Build()
}

// InTree generates a random rooted in-tree: the mirror of OutTree, with
// every non-final task feeding exactly one later consumer and task n-1 the
// single sink. In-trees model reduction-style computations.
func InTree(n, maxParents int, data float64, r *rng.Source) (*dag.Graph, error) {
	out, err := OutTree(n, maxParents, data, r)
	if err != nil {
		return nil, err
	}
	// Reverse every edge and relabel v -> n-1-v so the sink is the
	// highest id and edges still go low -> high.
	b := dag.NewBuilder(n)
	for _, e := range out.Edges() {
		b.MustAddEdge(n-1-e.To, n-1-e.From, e.Data)
	}
	return b.Build()
}

// SeriesParallel generates a random series-parallel DAG by repeated
// expansion: starting from a single source→sink edge, each step picks a
// random edge and either serializes it (u→w→v) or parallelizes it
// (a second path u→w→v), until n tasks exist. Series-parallel graphs are
// the classical tractable family for stochastic makespan analysis, which
// makes them good test beds for the Clark estimator.
func SeriesParallel(n int, data float64, r *rng.Source) (*dag.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: SeriesParallel needs n >= 2, got %d", n)
	}
	type edge struct{ u, v int }
	edges := []edge{{0, 1}}
	next := 2
	for next < n {
		e := edges[r.Intn(len(edges))]
		w := next
		next++
		if r.Float64() < 0.5 {
			// Series: replace u→v with u→w→v.
			for i := range edges {
				if edges[i] == e {
					edges[i] = edge{e.u, w}
					break
				}
			}
			edges = append(edges, edge{w, e.v})
		} else {
			// Parallel: add u→w→v next to u→v.
			edges = append(edges, edge{e.u, w}, edge{w, e.v})
		}
	}
	b := dag.NewBuilder(n)
	seen := map[edge]bool{}
	for _, e := range edges {
		if seen[e] {
			continue
		}
		seen[e] = true
		b.MustAddEdge(e.u, e.v, data)
	}
	return b.Build()
}
