package gen

import (
	"math"
	"testing"

	"robsched/internal/rng"
)

func TestParamsValidate(t *testing.T) {
	good := PaperParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("PaperParams invalid: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.Shape = 0 },
		func(p *Params) { p.CC = -1 },
		func(p *Params) { p.CCR = -0.1 },
		func(p *Params) { p.VTask = 0 },
		func(p *Params) { p.VMach = 0 },
		func(p *Params) { p.MeanUL = 0.5 },
		func(p *Params) { p.V1 = 0 },
		func(p *Params) { p.V2 = -1 },
		func(p *Params) { p.M = 0 },
		func(p *Params) { p.Rate = 0 },
	}
	for i, mut := range mutations {
		p := PaperParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRandomGraphShape(t *testing.T) {
	r := rng.New(1)
	p := PaperParams()
	for trial := 0; trial < 20; trial++ {
		g, err := RandomGraph(p, r)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != p.N {
			t.Fatalf("N = %d, want %d", g.N(), p.N)
		}
		if !g.IsTopologicalOrder(g.TopologicalOrder()) {
			t.Fatal("generated graph has invalid topological order")
		}
		// Connectivity property: only level-0 tasks are entries, i.e. every
		// level > 0 task has a predecessor; and the graph has at least one
		// edge for n=100.
		if g.EdgeCount() == 0 {
			t.Fatal("no edges generated for n=100")
		}
		// Depth must not exceed the level count implied by construction.
		if d := g.Depth(); d < 1 || d > p.N {
			t.Fatalf("depth %d out of range", d)
		}
	}
}

func TestRandomGraphSingleNode(t *testing.T) {
	p := PaperParams()
	p.N = 1
	g, err := RandomGraph(p, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1 || g.EdgeCount() != 0 {
		t.Fatalf("n=%d edges=%d", g.N(), g.EdgeCount())
	}
}

func TestRandomGraphShapeParameterEffect(t *testing.T) {
	// Small Shape → tall graphs; large Shape → short wide graphs, on
	// average over several samples.
	r := rng.New(3)
	depthAt := func(shape float64) float64 {
		p := PaperParams()
		p.Shape = shape
		total := 0
		const trials = 30
		for i := 0; i < trials; i++ {
			g, err := RandomGraph(p, r)
			if err != nil {
				t.Fatal(err)
			}
			total += g.Depth()
		}
		return float64(total) / trials
	}
	tall := depthAt(0.5) // mean height 20
	wide := depthAt(2.0) // mean height 5
	if tall <= wide {
		t.Fatalf("shape parameter has no effect: depth(α=0.5)=%g <= depth(α=2)=%g", tall, wide)
	}
}

func TestRandomWorkloadCCR(t *testing.T) {
	// The realized CCR should be near the requested one on average. CCR is
	// defined against expected computation cost, which is MeanUL times the
	// BCET-based cc, so the realized value is CCR/MeanUL up to noise.
	r := rng.New(5)
	p := PaperParams()
	p.MeanUL = 1 // make realized CCR directly comparable
	p.V1, p.V2 = 0.5, 0.5
	var sum float64
	const trials = 30
	for i := 0; i < trials; i++ {
		w, err := Random(p, r)
		if err != nil {
			t.Fatal(err)
		}
		sum += w.CCR()
	}
	mean := sum / trials
	if mean < 0.05 || mean > 0.2 {
		t.Fatalf("realized CCR = %g, want near %g", mean, p.CCR)
	}
}

func TestExecMatrixMoments(t *testing.T) {
	r := rng.New(7)
	const n, m = 400, 8
	const mu, vt, vm = 20.0, 0.5, 0.5
	b := ExecMatrix(n, m, mu, vt, vm, r)
	if b.Rows() != n || b.Cols() != m {
		t.Fatalf("shape %dx%d", b.Rows(), b.Cols())
	}
	// Overall mean ≈ mu.
	if mean := b.Mean(); math.Abs(mean-mu) > 1.5 {
		t.Errorf("mean = %g, want ~%g", mean, mu)
	}
	if b.Min() <= 0 {
		t.Errorf("non-positive execution time %g", b.Min())
	}
	// Task heterogeneity: row means should vary with COV ≈ vt. Estimate
	// the COV of row means (machine noise shrinks as 1/sqrt(m), so allow
	// slack).
	var rm []float64
	for i := 0; i < n; i++ {
		rm = append(rm, b.RowMean(i))
	}
	var s, s2 float64
	for _, x := range rm {
		s += x
		s2 += x * x
	}
	meanRM := s / n
	cov := math.Sqrt(s2/float64(n)-meanRM*meanRM) / meanRM
	if cov < 0.3 || cov > 0.7 {
		t.Errorf("row-mean COV = %g, want near %g", cov, vt)
	}
}

func TestULMatrixBounds(t *testing.T) {
	r := rng.New(9)
	for _, meanUL := range []float64{1, 2, 4, 8} {
		ul := ULMatrix(200, 8, meanUL, 0.5, 0.5, r)
		min := ul.Min()
		if min < 1 {
			t.Fatalf("UL below 1: %g", min)
		}
		mean := ul.Mean()
		// Clamping at 1 biases the mean upward for small meanUL; allow a
		// generous band that still catches unit errors.
		if mean < meanUL*0.85 || mean > meanUL*1.4+0.5 {
			t.Errorf("meanUL=%g: realized mean %g out of band", meanUL, mean)
		}
	}
}

func TestConstantULMatrix(t *testing.T) {
	ul := ConstantULMatrix(3, 2, 2.5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if ul.At(i, j) != 2.5 {
				t.Fatalf("At(%d,%d) = %g", i, j, ul.At(i, j))
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ul < 1 did not panic")
		}
	}()
	ConstantULMatrix(1, 1, 0.5)
}

func TestRandomWorkloadIsValid(t *testing.T) {
	r := rng.New(11)
	p := PaperParams()
	p.N = 40
	for trial := 0; trial < 10; trial++ {
		w, err := Random(p, r)
		if err != nil {
			t.Fatal(err)
		}
		if w.N() != 40 || w.M() != 8 {
			t.Fatalf("workload shape %dx%d", w.N(), w.M())
		}
		// Expected durations at least BCET.
		for i := 0; i < w.N(); i++ {
			for j := 0; j < w.M(); j++ {
				if w.ExpectedAt(i, j) < w.BCET.At(i, j) {
					t.Fatal("expected < BCET")
				}
			}
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	p := PaperParams()
	p.N = 30
	w1, err := Random(p, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Random(p, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if w1.N() != w2.N() || w1.G.EdgeCount() != w2.G.EdgeCount() {
		t.Fatal("same seed produced different graphs")
	}
	for i := 0; i < w1.N(); i++ {
		for j := 0; j < w1.M(); j++ {
			if w1.BCET.At(i, j) != w2.BCET.At(i, j) || w1.UL.At(i, j) != w2.UL.At(i, j) {
				t.Fatal("same seed produced different matrices")
			}
		}
	}
}

func TestPaperExampleGraph(t *testing.T) {
	g := PaperExampleGraph(1)
	if g.N() != 8 {
		t.Fatalf("N = %d, want 8", g.N())
	}
	if es := g.Entries(); len(es) != 1 || es[0] != 0 {
		t.Errorf("Entries = %v, want [0]", es)
	}
	if xs := g.Exits(); len(xs) != 1 || xs[0] != 7 {
		t.Errorf("Exits = %v, want [7]", xs)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(6, 7) {
		t.Error("expected edges missing")
	}
}

func TestGaussianElimination(t *testing.T) {
	if _, err := GaussianElimination(1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	for _, k := range []int{2, 3, 5, 8} {
		g, err := GaussianElimination(k, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Tasks: sum over steps j=0..k-2 of (1 + k-1-j) = (k-1)(k+2)/2.
		want := (k - 1) * (k + 2) / 2
		if g.N() != want {
			t.Errorf("k=%d: N = %d, want %d", k, g.N(), want)
		}
		if len(g.Entries()) != 1 {
			t.Errorf("k=%d: %d entries, want 1 (first pivot)", k, len(g.Entries()))
		}
		// Depth is 2(k-1)-1 rows of pivot/update alternation.
		if got, want := g.Depth(), 2*(k-1)-1+1; k > 2 && got != want {
			t.Errorf("k=%d: depth = %d, want %d", k, got, want)
		}
	}
}

func TestFFT(t *testing.T) {
	if _, err := FFT(0, 1); err == nil {
		t.Error("stages=0 accepted")
	}
	for _, st := range []int{1, 2, 3, 4} {
		g, err := FFT(st, 1)
		if err != nil {
			t.Fatal(err)
		}
		p := 1 << st
		if g.N() != (st+1)*p {
			t.Errorf("stages=%d: N = %d, want %d", st, g.N(), (st+1)*p)
		}
		if g.EdgeCount() != 2*st*p {
			t.Errorf("stages=%d: edges = %d, want %d", st, g.EdgeCount(), 2*st*p)
		}
		if g.Depth() != st+1 {
			t.Errorf("stages=%d: depth = %d, want %d", st, g.Depth(), st+1)
		}
		// Every non-input task has exactly 2 predecessors.
		for v := p; v < g.N(); v++ {
			if g.InDegree(v) != 2 {
				t.Fatalf("stages=%d: task %d has in-degree %d", st, v, g.InDegree(v))
			}
		}
	}
}

func TestForkJoin(t *testing.T) {
	if _, err := ForkJoin(0, 1, 1); err == nil {
		t.Error("width=0 accepted")
	}
	g, err := ForkJoin(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// stage pattern: fork, 3 parallel, join=fork2, 3 parallel, join.
	if g.N() != 9 {
		t.Fatalf("N = %d, want 9", g.N())
	}
	if len(g.Entries()) != 1 || len(g.Exits()) != 1 {
		t.Fatalf("entries/exits = %v/%v", g.Entries(), g.Exits())
	}
	if g.Depth() != 5 {
		t.Errorf("depth = %d, want 5", g.Depth())
	}
}

func TestStencil(t *testing.T) {
	if _, err := Stencil(1, 0, 1); err == nil {
		t.Error("depth=0 accepted")
	}
	g, err := Stencil(4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("N = %d, want 12", g.N())
	}
	if g.Depth() != 3 {
		t.Errorf("depth = %d, want 3", g.Depth())
	}
	// Interior task (1,1) = id 5 has 3 predecessors.
	if g.InDegree(5) != 3 {
		t.Errorf("in-degree of interior task = %d, want 3", g.InDegree(5))
	}
	// Border task (1,0) = id 4 has 2.
	if g.InDegree(4) != 2 {
		t.Errorf("in-degree of border task = %d, want 2", g.InDegree(4))
	}
}

func BenchmarkRandomWorkload(b *testing.B) {
	r := rng.New(1)
	p := PaperParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Random(p, r); err != nil {
			b.Fatal(err)
		}
	}
}
