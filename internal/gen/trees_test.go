package gen

import (
	"testing"

	"robsched/internal/rng"
)

func TestOutTreeShape(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(60)
		g, err := OutTree(n, 3, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != n || g.EdgeCount() != n-1 {
			t.Fatalf("n=%d: %d nodes %d edges", n, g.N(), g.EdgeCount())
		}
		// Exactly one entry (the root); every other node has in-degree 1.
		if es := g.Entries(); len(es) != 1 || es[0] != 0 {
			t.Fatalf("entries = %v", es)
		}
		for v := 1; v < n; v++ {
			if g.InDegree(v) != 1 {
				t.Fatalf("node %d in-degree %d", v, g.InDegree(v))
			}
			if g.OutDegree(v) > 3 {
				t.Fatalf("node %d exceeds branching cap", v)
			}
		}
		if g.OutDegree(0) > 3 {
			t.Fatal("root exceeds branching cap")
		}
	}
}

func TestOutTreeValidation(t *testing.T) {
	r := rng.New(2)
	if _, err := OutTree(0, 3, 1, r); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := OutTree(5, 0, 1, r); err == nil {
		t.Error("maxChildren=0 accepted")
	}
	// maxChildren=1 degenerates to a chain and must still work.
	g, err := OutTree(10, 1, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.Depth() != 10 {
		t.Fatalf("chain depth = %d", g.Depth())
	}
}

func TestInTreeShape(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(50)
		g, err := InTree(n, 3, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != n || g.EdgeCount() != n-1 {
			t.Fatalf("n=%d: %d nodes %d edges", n, g.N(), g.EdgeCount())
		}
		// Exactly one exit (the sink, highest id); every other node has
		// out-degree 1.
		if xs := g.Exits(); len(xs) != 1 || xs[0] != n-1 {
			t.Fatalf("exits = %v", xs)
		}
		for v := 0; v < n-1; v++ {
			if g.OutDegree(v) != 1 {
				t.Fatalf("node %d out-degree %d", v, g.OutDegree(v))
			}
			if g.InDegree(v) > 3 {
				t.Fatalf("node %d exceeds join cap", v)
			}
		}
	}
}

func TestSeriesParallelShape(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(60)
		g, err := SeriesParallel(n, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != n {
			t.Fatalf("n = %d, want %d", g.N(), n)
		}
		// Single source (0) and single sink (1) by construction.
		if es := g.Entries(); len(es) != 1 || es[0] != 0 {
			t.Fatalf("entries = %v", es)
		}
		if xs := g.Exits(); len(xs) != 1 || xs[0] != 1 {
			t.Fatalf("exits = %v", xs)
		}
		if !g.IsTopologicalOrder(g.TopologicalOrder()) {
			t.Fatal("invalid topological order")
		}
	}
	if _, err := SeriesParallel(1, 1, r); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestTreesDeterministicPerSeed(t *testing.T) {
	a, err := SeriesParallel(25, 1, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SeriesParallel(25, 1, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCount() != b.EdgeCount() {
		t.Fatal("same seed produced different graphs")
	}
}
