// Package fault models processor faults for the robustness evaluation:
// the paper only perturbs task *durations* (c_ij ~ U(b_ij, (2·UL_ij−1)·b_ij)),
// but real heterogeneous platforms also lose and degrade processors. A
// Scenario is a deterministic, replayable description of what happens to
// each processor over simulated time:
//
//   - a permanent fail-stop failure at time FailAt[p] (the processor dies
//     and never recovers; work running at that instant is killed);
//   - transient outages [Start, End): the processor is unavailable, a task
//     running when the outage begins is killed (fail-stop with reboot —
//     partial work is lost), and no task may start inside the interval;
//   - straggler slowdowns [Start, End) with Factor ≥ 1: work progresses at
//     rate 1/Factor during the interval — the task is not killed, it just
//     takes longer (degraded, not dead).
//
// Scenarios are sampled from Model (per-processor exponential hazards, the
// classic reliability assumption of the NSGA-II reliability-cost literature)
// through deterministic rng streams, or loaded from JSON via internal/wio,
// so a fault run is fully reproducible from (seed, scenario file).
//
// The timeline engine (NextStart, Run) is written so that a processor with
// no events takes a fast path returning the exact same floating-point
// values as fault-oblivious execution — the fault-aware executor in
// internal/repair is bit-identical to the plain one under an empty
// scenario.
//
// The same vocabulary doubles as the distribution runtime's chaos model:
// internal/dist wraps each coordinator↔worker connection in a two-
// "processor" Scenario (one per link direction), so outages become frame
// stalls, failures become dropped connections and slowdowns become
// stragglers on the wire — sampled by the same Model, replayable from the
// same seeds.
package fault

import (
	"fmt"
	"math"

	"robsched/internal/rng"
)

// ValidationError reports an invalid field of a Scenario or Model. It is
// the typed error returned by every validation path of this package, so
// callers can distinguish malformed fault inputs from execution errors.
type ValidationError struct {
	Field  string
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("fault: %s: %s", e.Field, e.Reason)
}

// Interval is a half-open unavailability window [Start, End) of a
// processor.
type Interval struct {
	Start float64
	End   float64
}

// Slowdown is a half-open degradation window [Start, End) during which the
// processor executes work at rate 1/Factor (Factor ≥ 1).
type Slowdown struct {
	Start  float64
	End    float64
	Factor float64
}

// Scenario is one realized fault timeline for an m-processor platform.
// The zero value is the empty scenario (no faults on any platform size).
// Per-processor lists must be sorted by Start and pairwise disjoint; Build
// in internal/wio sorts on load, Model sampling produces them sorted.
type Scenario struct {
	// M is the number of processors the scenario was built for; 0 marks
	// the empty scenario, valid for any platform.
	M int
	// FailAt[p] is the permanent fail-stop time of processor p; +Inf (or a
	// nil slice) means the processor never fails permanently.
	FailAt []float64
	// Outages[p] lists the transient unavailability intervals of p.
	Outages [][]Interval
	// Slowdowns[p] lists the degradation intervals of p.
	Slowdowns [][]Slowdown
}

// None returns the empty scenario, valid for any platform size.
func None() Scenario { return Scenario{} }

// Empty reports whether the scenario contains no fault events at all.
func (sc *Scenario) Empty() bool {
	for _, t := range sc.FailAt {
		if !math.IsInf(t, 1) {
			return false
		}
	}
	for _, list := range sc.Outages {
		if len(list) > 0 {
			return false
		}
	}
	for _, list := range sc.Slowdowns {
		if len(list) > 0 {
			return false
		}
	}
	return true
}

// Validate checks internal consistency: slice lengths match M, times are
// finite (FailAt may be +Inf), non-negative and ordered, intervals are
// disjoint and slowdown factors are ≥ 1. All failures are reported as
// *ValidationError.
func (sc *Scenario) Validate() error {
	if sc.M < 0 {
		return &ValidationError{"M", fmt.Sprintf("%d must be >= 0", sc.M)}
	}
	if sc.M == 0 {
		if len(sc.FailAt) != 0 || len(sc.Outages) != 0 || len(sc.Slowdowns) != 0 {
			return &ValidationError{"M", "empty scenario (M=0) must carry no events"}
		}
		return nil
	}
	if len(sc.FailAt) != 0 && len(sc.FailAt) != sc.M {
		return &ValidationError{"FailAt", fmt.Sprintf("has %d entries for %d processors", len(sc.FailAt), sc.M)}
	}
	for p, t := range sc.FailAt {
		if math.IsNaN(t) || t < 0 {
			return &ValidationError{"FailAt", fmt.Sprintf("processor %d fails at invalid time %g", p, t)}
		}
	}
	if len(sc.Outages) != 0 && len(sc.Outages) != sc.M {
		return &ValidationError{"Outages", fmt.Sprintf("has %d lists for %d processors", len(sc.Outages), sc.M)}
	}
	for p, list := range sc.Outages {
		prevEnd := 0.0
		for i, iv := range list {
			switch {
			case math.IsNaN(iv.Start) || math.IsNaN(iv.End) || math.IsInf(iv.Start, 0) || math.IsInf(iv.End, 0):
				return &ValidationError{"Outages", fmt.Sprintf("processor %d interval %d is not finite", p, i)}
			case iv.Start < 0 || iv.End <= iv.Start:
				return &ValidationError{"Outages", fmt.Sprintf("processor %d interval %d [%g,%g) is not a positive window", p, i, iv.Start, iv.End)}
			case iv.Start < prevEnd:
				return &ValidationError{"Outages", fmt.Sprintf("processor %d interval %d overlaps or is out of order", p, i)}
			}
			prevEnd = iv.End
		}
	}
	if len(sc.Slowdowns) != 0 && len(sc.Slowdowns) != sc.M {
		return &ValidationError{"Slowdowns", fmt.Sprintf("has %d lists for %d processors", len(sc.Slowdowns), sc.M)}
	}
	for p, list := range sc.Slowdowns {
		prevEnd := 0.0
		for i, sl := range list {
			switch {
			case math.IsNaN(sl.Start) || math.IsNaN(sl.End) || math.IsInf(sl.Start, 0) || math.IsInf(sl.End, 0):
				return &ValidationError{"Slowdowns", fmt.Sprintf("processor %d interval %d is not finite", p, i)}
			case sl.Start < 0 || sl.End <= sl.Start:
				return &ValidationError{"Slowdowns", fmt.Sprintf("processor %d interval %d [%g,%g) is not a positive window", p, i, sl.Start, sl.End)}
			case sl.Start < prevEnd:
				return &ValidationError{"Slowdowns", fmt.Sprintf("processor %d interval %d overlaps or is out of order", p, i)}
			case math.IsNaN(sl.Factor) || math.IsInf(sl.Factor, 0) || sl.Factor < 1:
				return &ValidationError{"Slowdowns", fmt.Sprintf("processor %d factor %g must be a finite value >= 1", p, sl.Factor)}
			}
			prevEnd = sl.End
		}
	}
	return nil
}

// failTime returns the permanent failure time of p (+Inf if never).
func (sc *Scenario) failTime(p int) float64 {
	if len(sc.FailAt) == 0 {
		return math.Inf(1)
	}
	return sc.FailAt[p]
}

// outages returns p's outage list (nil when none).
func (sc *Scenario) outages(p int) []Interval {
	if len(sc.Outages) == 0 {
		return nil
	}
	return sc.Outages[p]
}

// slowdowns returns p's slowdown list (nil when none).
func (sc *Scenario) slowdowns(p int) []Slowdown {
	if len(sc.Slowdowns) == 0 {
		return nil
	}
	return sc.Slowdowns[p]
}

// Alive reports whether processor p has not permanently failed by time t
// (a processor is dead at and after its FailAt instant).
func (sc *Scenario) Alive(p int, t float64) bool {
	return t < sc.failTime(p)
}

// NextStart returns the earliest instant >= t at which processor p can
// begin executing work: outside every outage interval and strictly before
// the permanent failure. It returns +Inf when p can never start again.
// For a processor with no events this is the identity — the fast path that
// keeps fault-aware execution bit-identical to plain execution under an
// empty scenario.
func (sc *Scenario) NextStart(p int, t float64) float64 {
	fail := sc.failTime(p)
	for _, iv := range sc.outages(p) {
		if iv.End <= t {
			continue
		}
		if iv.Start <= t {
			t = iv.End
		}
		// Intervals are sorted; once one starts after t, later ones do too.
		if iv.Start > t {
			break
		}
	}
	if t >= fail {
		return math.Inf(1)
	}
	return t
}

// Run executes work units of base duration on processor p from start
// (which must be a NextStart-feasible instant). It returns the finish
// time, walking the slowdown timeline at rate 1/Factor inside degradation
// windows. killed is true when the next outage or the permanent failure
// arrives before completion; the work done up to killTime is lost.
// A task finishing exactly at a kill boundary completes.
//
// For a processor with no slowdowns the finish is computed as start+work,
// the exact floating-point expression of fault-oblivious execution.
func (sc *Scenario) Run(p int, start, work float64) (finish float64, killed bool, killTime float64) {
	// The earliest instant that would kill the task: the next outage start
	// strictly after start, or the permanent failure.
	kill := sc.failTime(p)
	for _, iv := range sc.outages(p) {
		if iv.Start > start {
			if iv.Start < kill {
				kill = iv.Start
			}
			break
		}
	}
	finish = start + work
	if slows := sc.slowdowns(p); len(slows) > 0 {
		t, remaining := start, work
		for _, sl := range slows {
			if sl.End <= t {
				continue
			}
			if sl.Start > t {
				// Full-rate segment before the slowdown.
				seg := sl.Start - t
				if remaining <= seg {
					t += remaining
					remaining = 0
					break
				}
				t = sl.Start
				remaining -= seg
			}
			// Degraded segment: rate 1/Factor.
			segWork := (sl.End - t) / sl.Factor
			if remaining <= segWork {
				t += remaining * sl.Factor
				remaining = 0
				break
			}
			t = sl.End
			remaining -= segWork
		}
		finish = t + remaining
	}
	if finish > kill {
		return kill, true, kill
	}
	return finish, false, 0
}

// Sampler produces one scenario per Monte-Carlo realization. Model samples
// fresh timelines from a deterministic stream; Fixed replays one scenario.
type Sampler interface {
	// Scenario returns a fault timeline for an m-processor platform over
	// the given horizon of simulated time, drawing only from r.
	Scenario(m int, horizon float64, r *rng.Source) (Scenario, error)
}

// Model parameterizes random fault scenarios: per-processor exponential
// hazards for permanent failures, Poisson arrivals of transient outages
// and straggler degradations with exponential lengths. The zero value
// generates empty scenarios.
type Model struct {
	// MTBF is the mean time to permanent fail-stop failure of each
	// processor (exponential hazard). 0 disables permanent failures.
	MTBF float64
	// OutageEvery is the mean gap between transient outages per processor
	// (Poisson arrivals); 0 disables outages. OutageMean is the mean
	// outage length (exponential).
	OutageEvery float64
	OutageMean  float64
	// SlowEvery is the mean gap between degradation windows per processor;
	// 0 disables. SlowMean is the mean window length, SlowFactor the rate
	// multiplier (>= 1) applied while degraded.
	SlowEvery  float64
	SlowMean   float64
	SlowFactor float64
	// KeepOne, when set, guarantees at least one processor survives: if
	// every processor drew a permanent failure inside the horizon, the
	// latest failure is cancelled.
	KeepOne bool
}

// Validate checks the model parameters, reporting *ValidationError.
func (mo Model) Validate() error {
	check := func(field string, v float64, allowZero bool) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || (!allowZero && v == 0) {
			return &ValidationError{field, fmt.Sprintf("%g must be a finite value > 0", v)}
		}
		return nil
	}
	if err := check("MTBF", mo.MTBF, true); err != nil {
		return err
	}
	if err := check("OutageEvery", mo.OutageEvery, true); err != nil {
		return err
	}
	if mo.OutageEvery > 0 {
		if err := check("OutageMean", mo.OutageMean, false); err != nil {
			return err
		}
	}
	if err := check("SlowEvery", mo.SlowEvery, true); err != nil {
		return err
	}
	if mo.SlowEvery > 0 {
		if err := check("SlowMean", mo.SlowMean, false); err != nil {
			return err
		}
		if math.IsNaN(mo.SlowFactor) || math.IsInf(mo.SlowFactor, 0) || mo.SlowFactor < 1 {
			return &ValidationError{"SlowFactor", fmt.Sprintf("%g must be a finite value >= 1", mo.SlowFactor)}
		}
	}
	return nil
}

// Scenario samples one fault timeline for m processors over the horizon.
// The draw sequence is fixed (per processor: failure, outages, slowdowns),
// so the same (m, horizon, stream) triple always regenerates the same
// scenario regardless of which model features are enabled elsewhere.
func (mo Model) Scenario(m int, horizon float64, r *rng.Source) (Scenario, error) {
	if err := mo.Validate(); err != nil {
		return Scenario{}, err
	}
	if m < 1 {
		return Scenario{}, &ValidationError{"m", fmt.Sprintf("%d must be >= 1", m)}
	}
	if math.IsNaN(horizon) || math.IsInf(horizon, 0) || horizon <= 0 {
		return Scenario{}, &ValidationError{"horizon", fmt.Sprintf("%g must be a finite value > 0", horizon)}
	}
	sc := Scenario{M: m}
	for p := 0; p < m; p++ {
		fail := math.Inf(1)
		if mo.MTBF > 0 {
			if t := r.Exp(1 / mo.MTBF); t < horizon {
				fail = t
			}
		}
		sc.FailAt = append(sc.FailAt, fail)
		var outs []Interval
		if mo.OutageEvery > 0 {
			t := 0.0
			for {
				t += r.Exp(1 / mo.OutageEvery)
				if t >= horizon {
					break
				}
				d := r.Exp(1 / mo.OutageMean)
				outs = append(outs, Interval{Start: t, End: t + d})
				t += d
			}
		}
		sc.Outages = append(sc.Outages, outs)
		var slows []Slowdown
		if mo.SlowEvery > 0 {
			t := 0.0
			for {
				t += r.Exp(1 / mo.SlowEvery)
				if t >= horizon {
					break
				}
				d := r.Exp(1 / mo.SlowMean)
				slows = append(slows, Slowdown{Start: t, End: t + d, Factor: mo.SlowFactor})
				t += d
			}
		}
		sc.Slowdowns = append(sc.Slowdowns, slows)
	}
	if mo.KeepOne {
		last, lastAt := -1, math.Inf(-1)
		allFail := true
		for p, t := range sc.FailAt {
			if math.IsInf(t, 1) {
				allFail = false
				break
			}
			if t > lastAt {
				last, lastAt = p, t
			}
		}
		if allFail && last >= 0 {
			sc.FailAt[last] = math.Inf(1)
		}
	}
	return sc, nil
}

// Fixed replays one scenario for every realization (durations still vary),
// the replayable-artifact mode: the scenario typically comes from a JSON
// file written by internal/wio.
type Fixed struct {
	S Scenario
}

// Scenario returns the fixed scenario after validating it against the
// platform size. The empty scenario matches any platform.
func (f Fixed) Scenario(m int, _ float64, _ *rng.Source) (Scenario, error) {
	if err := f.S.Validate(); err != nil {
		return Scenario{}, err
	}
	if f.S.M != 0 && f.S.M != m {
		return Scenario{}, &ValidationError{"M", fmt.Sprintf("scenario is for %d processors, platform has %d", f.S.M, m)}
	}
	return f.S, nil
}
