package fault

import (
	"errors"
	"math"
	"testing"

	"robsched/internal/rng"
)

func mustValid(t *testing.T, sc Scenario) {
	t.Helper()
	if err := sc.Validate(); err != nil {
		t.Fatalf("scenario invalid: %v", err)
	}
}

func TestEmptyScenario(t *testing.T) {
	sc := None()
	mustValid(t, sc)
	if !sc.Empty() {
		t.Fatal("None() not empty")
	}
	// Empty scenario behaves as the identity timeline for any processor.
	for _, tm := range []float64{0, 1.5, 1e9} {
		if got := sc.NextStart(3, tm); got != tm {
			t.Fatalf("NextStart(%g) = %g", tm, got)
		}
		fin, killed, _ := sc.Run(3, tm, 7.25)
		if killed || fin != tm+7.25 {
			t.Fatalf("Run(%g, 7.25) = %g killed=%v", tm, fin, killed)
		}
	}
	full := Scenario{M: 2, FailAt: []float64{math.Inf(1), math.Inf(1)}, Outages: [][]Interval{nil, nil}}
	mustValid(t, full)
	if !full.Empty() {
		t.Fatal("scenario with only +Inf failures should be empty")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []Scenario{
		{M: -1},
		{M: 0, FailAt: []float64{1}},
		{M: 2, FailAt: []float64{1}},
		{M: 1, FailAt: []float64{math.NaN()}},
		{M: 1, FailAt: []float64{-2}},
		{M: 1, Outages: [][]Interval{{{Start: 3, End: 2}}}},
		{M: 1, Outages: [][]Interval{{{Start: -1, End: 2}}}},
		{M: 1, Outages: [][]Interval{{{Start: 0, End: 2}, {Start: 1, End: 3}}}},
		{M: 1, Outages: [][]Interval{{{Start: 0, End: math.Inf(1)}}}},
		{M: 1, Slowdowns: [][]Slowdown{{{Start: 0, End: 1, Factor: 0.5}}}},
		{M: 1, Slowdowns: [][]Slowdown{{{Start: 0, End: 1, Factor: math.NaN()}}}},
		{M: 1, Slowdowns: [][]Slowdown{{{Start: 2, End: 1, Factor: 2}}}},
	}
	for i, sc := range cases {
		err := sc.Validate()
		if err == nil {
			t.Errorf("case %d accepted: %+v", i, sc)
			continue
		}
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("case %d: error %v is not a *ValidationError", i, err)
		}
	}
}

func TestNextStartSkipsOutagesAndDeath(t *testing.T) {
	sc := Scenario{
		M:       2,
		FailAt:  []float64{20, math.Inf(1)},
		Outages: [][]Interval{{{Start: 5, End: 8}, {Start: 8, End: 10}}, nil},
	}
	mustValid(t, sc)
	if got := sc.NextStart(0, 4); got != 4 {
		t.Fatalf("before outage: %g", got)
	}
	if got := sc.NextStart(0, 5); got != 10 {
		t.Fatalf("inside chained outages: %g", got)
	}
	if got := sc.NextStart(0, 19); got != 19 {
		t.Fatalf("just before death: %g", got)
	}
	if got := sc.NextStart(0, 20); !math.IsInf(got, 1) {
		t.Fatalf("at death: %g", got)
	}
	if got := sc.NextStart(1, 1e6); got != 1e6 {
		t.Fatalf("healthy processor: %g", got)
	}
	// Outage that runs past the failure time: still dead.
	sc2 := Scenario{M: 1, FailAt: []float64{6}, Outages: [][]Interval{{{Start: 5, End: 9}}}}
	mustValid(t, sc2)
	if got := sc2.NextStart(0, 5.5); !math.IsInf(got, 1) {
		t.Fatalf("outage spanning death: %g", got)
	}
}

func TestRunKillsAndDegrades(t *testing.T) {
	sc := Scenario{
		M:         1,
		FailAt:    []float64{100},
		Outages:   [][]Interval{{{Start: 10, End: 12}}},
		Slowdowns: [][]Slowdown{{{Start: 20, End: 30, Factor: 2}}},
	}
	mustValid(t, sc)
	// Completes before the outage.
	if fin, killed, _ := sc.Run(0, 0, 10); killed || fin != 10 {
		t.Fatalf("exact fit: fin=%g killed=%v", fin, killed)
	}
	// Crosses the outage start: killed there.
	if fin, killed, at := sc.Run(0, 5, 6); !killed || at != 10 || fin != 10 {
		t.Fatalf("outage kill: fin=%g killed=%v at=%g", fin, killed, at)
	}
	// Fully inside the slowdown: takes Factor times longer.
	if fin, killed, _ := sc.Run(0, 20, 4); killed || fin != 28 {
		t.Fatalf("degraded run: fin=%g killed=%v", fin, killed)
	}
	// Straddles the slowdown end: 5 units degraded (10 wall), rest at rate 1.
	if fin, killed, _ := sc.Run(0, 20, 7); killed || fin != 32 {
		t.Fatalf("straddling run: fin=%g killed=%v", fin, killed)
	}
	// Runs into the permanent failure.
	if fin, killed, at := sc.Run(0, 95, 50); !killed || at != 100 || fin != 100 {
		t.Fatalf("death kill: fin=%g killed=%v at=%g", fin, killed, at)
	}
}

func TestRunEntersSlowdownMidway(t *testing.T) {
	sc := Scenario{M: 1, Slowdowns: [][]Slowdown{{{Start: 4, End: 8, Factor: 4}}}}
	mustValid(t, sc)
	// 2 units at rate 1 (t=2..4), then 4 wall units at rate 1/4 = 1 unit of
	// work (t=4..8), then 1 unit at rate 1: finish 9 for 4 units of work.
	if fin, killed, _ := sc.Run(0, 2, 4); killed || fin != 9 {
		t.Fatalf("fin=%g killed=%v", fin, killed)
	}
}

func TestModelSamplingDeterministicAndValid(t *testing.T) {
	mo := Model{MTBF: 50, OutageEvery: 30, OutageMean: 3, SlowEvery: 25, SlowMean: 5, SlowFactor: 2}
	a, err := mo.Scenario(4, 100, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := mo.Scenario(4, 100, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	mustValid(t, a)
	if a.M != b.M || len(a.FailAt) != len(b.FailAt) {
		t.Fatal("same seed produced different shapes")
	}
	for p := range a.FailAt {
		if a.FailAt[p] != b.FailAt[p] {
			t.Fatalf("failure times differ on processor %d", p)
		}
		if len(a.Outages[p]) != len(b.Outages[p]) || len(a.Slowdowns[p]) != len(b.Slowdowns[p]) {
			t.Fatalf("event counts differ on processor %d", p)
		}
		for i := range a.Outages[p] {
			if a.Outages[p][i] != b.Outages[p][i] {
				t.Fatalf("outage %d differs on processor %d", i, p)
			}
		}
	}
	// A different seed differs somewhere (overwhelmingly likely at these
	// rates over this horizon).
	c, err := mo.Scenario(4, 100, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for p := range a.FailAt {
		if a.FailAt[p] != c.FailAt[p] || len(a.Outages[p]) != len(c.Outages[p]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical scenarios")
	}
}

func TestModelKeepOne(t *testing.T) {
	// A tiny MTBF fails every processor inside the horizon; KeepOne must
	// cancel the latest failure.
	mo := Model{MTBF: 0.01, KeepOne: true}
	sc, err := mo.Scenario(5, 1000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	alive := 0
	for _, ft := range sc.FailAt {
		if math.IsInf(ft, 1) {
			alive++
		}
	}
	if alive != 1 {
		t.Fatalf("KeepOne left %d processors alive", alive)
	}
}

func TestModelValidation(t *testing.T) {
	bad := []Model{
		{MTBF: -1},
		{MTBF: math.NaN()},
		{OutageEvery: 5}, // missing OutageMean
		{SlowEvery: 5, SlowMean: 1, SlowFactor: 0.5}, // factor < 1
		{SlowEvery: 5, SlowMean: 0, SlowFactor: 2},   // missing SlowMean
		{OutageEvery: math.Inf(1), OutageMean: 1},    // infinite rate
	}
	for i, mo := range bad {
		err := mo.Validate()
		if err == nil {
			t.Errorf("model %d accepted: %+v", i, mo)
			continue
		}
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("model %d: error %v is not a *ValidationError", i, err)
		}
	}
	if err := (Model{}).Validate(); err != nil {
		t.Errorf("zero model rejected: %v", err)
	}
	if _, err := (Model{}).Scenario(0, 10, rng.New(1)); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := (Model{}).Scenario(2, 0, rng.New(1)); err == nil {
		t.Error("horizon=0 accepted")
	}
}

func TestFixedSampler(t *testing.T) {
	sc := Scenario{M: 3, FailAt: []float64{5, math.Inf(1), math.Inf(1)}}
	got, err := Fixed{S: sc}.Scenario(3, 100, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.FailAt[0] != 5 {
		t.Fatal("fixed sampler altered the scenario")
	}
	if _, err := (Fixed{S: sc}).Scenario(4, 100, rng.New(1)); err == nil {
		t.Error("platform size mismatch accepted")
	}
	if _, err := (Fixed{S: None()}).Scenario(4, 100, rng.New(1)); err != nil {
		t.Errorf("empty scenario rejected for any m: %v", err)
	}
}
