package sim

import (
	"io"
	"testing"

	"robsched/internal/obs"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// benchSchedules builds `count` distinct valid schedules of one workload:
// the HEFT baseline plus deterministic round-robin variants, mirroring how
// EvaluateAll is used by the sweeps (a family of GA schedules plus HEFT
// under common random numbers).
func benchSchedules(tb testing.TB, w *platform.Workload, count int) []*schedule.Schedule {
	tb.Helper()
	ss := []*schedule.Schedule{heftSchedule(tb, w)}
	order := w.G.TopologicalOrder()
	for k := 1; len(ss) < count; k++ {
		proc := make([]int, w.N())
		for i, v := range order {
			proc[v] = (i*k + k) % w.M()
		}
		s, err := schedule.FromOrder(w, order, proc)
		if err != nil {
			tb.Fatal(err)
		}
		ss = append(ss, s)
	}
	return ss
}

// BenchmarkEvaluateAll is the paper-scale Monte-Carlo hot path: 1000
// realizations of an n=100, m=8 workload applied to 7 schedules under
// common random numbers. Tracked in BENCH_sim.json via bench.sh.
func BenchmarkEvaluateAll(b *testing.B) {
	w := testWorkload(b, 1, 100, 8, 4)
	ss := benchSchedules(b, w, 7)
	opt := PaperOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateAll(ss, opt, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateAllObs is BenchmarkEvaluateAll with and without the
// registry/tracer attached: the Monte-Carlo engine instruments per batch,
// not per realization, so "on" must track "off" within noise. Tracked in
// BENCH_obs.json via bench.sh.
func BenchmarkEvaluateAllObs(b *testing.B) {
	w := testWorkload(b, 1, 100, 8, 4)
	ss := benchSchedules(b, w, 7)
	run := func(b *testing.B, instrument bool) {
		opt := PaperOptions()
		if instrument {
			opt.Obs = obs.NewRegistry()
			opt.Trace = obs.NewTracer(io.Discard, 64)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := EvaluateAll(ss, opt, rng.New(1)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
