package sim

import (
	"testing"

	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// benchSchedules builds `count` distinct valid schedules of one workload:
// the HEFT baseline plus deterministic round-robin variants, mirroring how
// EvaluateAll is used by the sweeps (a family of GA schedules plus HEFT
// under common random numbers).
func benchSchedules(tb testing.TB, w *platform.Workload, count int) []*schedule.Schedule {
	tb.Helper()
	ss := []*schedule.Schedule{heftSchedule(tb, w)}
	order := w.G.TopologicalOrder()
	for k := 1; len(ss) < count; k++ {
		proc := make([]int, w.N())
		for i, v := range order {
			proc[v] = (i*k + k) % w.M()
		}
		s, err := schedule.FromOrder(w, order, proc)
		if err != nil {
			tb.Fatal(err)
		}
		ss = append(ss, s)
	}
	return ss
}

// BenchmarkEvaluateAll is the paper-scale Monte-Carlo hot path: 1000
// realizations of an n=100, m=8 workload applied to 7 schedules under
// common random numbers. Tracked in BENCH_sim.json via bench.sh.
func BenchmarkEvaluateAll(b *testing.B) {
	w := testWorkload(b, 1, 100, 8, 4)
	ss := benchSchedules(b, w, 7)
	opt := PaperOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateAll(ss, opt, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}
