// Package sim implements the paper's evaluation methodology: Monte-Carlo
// realizations of the non-deterministic task durations (Section 3.1's
// uniform model c_ij ~ U(b_ij, (2·UL_ij−1)·b_ij)) and the two robustness
// metrics computed from them — R1, the inverse expected relative tardiness
// (Definition 3.6), and R2, the inverse schedule miss rate (Definition 3.7).
//
// Realizations are processed in lane-batched groups: a worker samples
// Options.BatchSize duration matrices up front, gathers each schedule's
// assigned durations into lane-major buffers, and runs one
// structure-of-arrays forward longest-path sweep over the schedule's
// precomputed CSR disjunctive graph that advances all lanes per arc
// (schedule.MakespanBatchInto). Batches fan out across Options.Workers
// goroutines with per-realization deterministic RNG streams.
//
// Every metric — including the P50/P95/P99 quantiles, which are exact order
// statistics of the retained per-realization makespan vector — is computed
// from the makespans in realization order, so all results are bit-identical
// regardless of worker count and batch width. (Before the batched engine,
// P50/P95/P99 were the median of per-worker P² estimates and the
// mean/std/tardiness accumulator was merged per worker, so those fields
// varied in the last bits — quantiles by far more — with Options.Workers.)
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"robsched/internal/obs"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// DefaultBatchSize is the number of realizations a worker processes per
// kernel batch when Options.BatchSize is zero. Eight lanes of float64 fill
// one cache line, which measures fastest for the paper-scale workloads.
const DefaultBatchSize = 8

// DurationModel selects the per-(task, processor) duration distribution.
// The zero value is the paper's uniform model, and selecting it (with
// CorrNone) keeps the original sampling path bit-identical.
type DurationModel uint8

const (
	// ModelUniform is the paper's c_ij ~ U(b_ij, (2·UL_ij−1)·b_ij).
	ModelUniform DurationModel = iota
	// ModelLognormal matches the uniform model's mean and variance per
	// (task, processor) pair but draws from a lognormal — the service-time
	// distribution observed on real shared clusters, with a right tail the
	// uniform model cannot produce.
	ModelLognormal
	// ModelBoundedPareto keeps the uniform model's support [b, (2·UL−1)·b]
	// but distributes mass as a truncated Pareto with tail index
	// Options.ParetoShape — most draws near the best case, rare draws near
	// the worst, the classic heavy-tail stress for slack-based robustness.
	ModelBoundedPareto

	numDurationModels
)

// String returns the registry name of the model ("uniform", "lognormal",
// "pareto").
func (m DurationModel) String() string {
	switch m {
	case ModelUniform:
		return "uniform"
	case ModelLognormal:
		return "lognormal"
	case ModelBoundedPareto:
		return "pareto"
	}
	return fmt.Sprintf("DurationModel(%d)", uint8(m))
}

// ParseDurationModel is the inverse of DurationModel.String, used by the
// -scenario CLI plumbing.
func ParseDurationModel(s string) (DurationModel, error) {
	switch s {
	case "uniform":
		return ModelUniform, nil
	case "lognormal":
		return ModelLognormal, nil
	case "pareto":
		return ModelBoundedPareto, nil
	}
	return 0, fmt.Errorf("sim: unknown duration model %q (want uniform|lognormal|pareto)", s)
}

// Correlation selects the cross-task dependence structure of one
// realization's duration matrix. The zero value (independent entries) is
// the paper's assumption.
type Correlation uint8

const (
	// CorrNone draws every matrix entry independently (the paper's model).
	CorrNone Correlation = iota
	// CorrShared multiplies all durations on a processor by one shared
	// mean-1 lognormal load factor per realization (COV Options.LoadCOV):
	// a busy processor is busy for every task it runs, which is the
	// correlation the paper's independence assumption hides.
	CorrShared
	// CorrIndep multiplies every matrix entry by its own independent mean-1
	// lognormal factor with the same COV as CorrShared. Each entry's
	// marginal distribution is identical to CorrShared's — only the
	// cross-task dependence differs — so the pair isolates the effect of
	// correlation at equal marginal variance.
	CorrIndep

	numCorrelations
)

// String returns the registry name of the correlation mode ("none",
// "shared", "indep").
func (c Correlation) String() string {
	switch c {
	case CorrNone:
		return "none"
	case CorrShared:
		return "shared"
	case CorrIndep:
		return "indep"
	}
	return fmt.Sprintf("Correlation(%d)", uint8(c))
}

// ParseCorrelation is the inverse of Correlation.String.
func ParseCorrelation(s string) (Correlation, error) {
	switch s {
	case "none":
		return CorrNone, nil
	case "shared":
		return CorrShared, nil
	case "indep":
		return CorrIndep, nil
	}
	return 0, fmt.Errorf("sim: unknown correlation mode %q (want none|shared|indep)", s)
}

// Options configures a Monte-Carlo evaluation.
type Options struct {
	// Realizations is the number of sampled executions (paper: 1000).
	Realizations int
	// Workers caps the parallel fan-out; 0 means GOMAXPROCS.
	Workers int
	// Deadline, when positive, additionally reports the fraction of
	// realizations whose makespan exceeds it (a user-deadline robustness
	// view beyond the paper's M0-relative miss rate).
	Deadline float64
	// Antithetic pairs each realization with its mirrored counterpart
	// (uniform draws u and 1−u). The makespan is monotone in every task
	// duration, so the paired makespans are negatively correlated and the
	// mean estimator's variance strictly drops for the same sample count —
	// classic antithetic-variates variance reduction. Odd realization
	// counts leave the last sample unpaired.
	Antithetic bool
	// BatchSize is the number of realizations evaluated per batched kernel
	// sweep; 0 means DefaultBatchSize. Any width yields bit-identical
	// results — this is purely a throughput knob.
	BatchSize int

	// Model selects the duration distribution. The zero value is the
	// paper's uniform model; combined with CorrNone it runs the original
	// sampling path bit-identically.
	Model DurationModel
	// Corr selects the cross-task correlation structure of each sampled
	// duration matrix. Non-CorrNone modes require LoadCOV > 0.
	Corr Correlation
	// LoadCOV is the coefficient of variation of the mean-1 lognormal load
	// factor applied by CorrShared/CorrIndep. Ignored under CorrNone.
	LoadCOV float64
	// ParetoShape is the tail index α of ModelBoundedPareto (smaller is
	// heavier; 1.5 is a typical heavy tail). Ignored by the other models.
	ParetoShape float64

	// Obs, if non-nil, receives engine telemetry: the deterministic
	// counters sim.realize_calls / sim.realizations / sim.schedules /
	// sim.batches and the sim.batch_occupancy histogram (all independent of
	// Workers), plus sim.worker_claims, a histogram of batches claimed per
	// worker whose shape — unlike every other instrument — depends on the
	// worker count and scheduling. Nil disables with zero overhead.
	Obs *obs.Registry
	// Trace, if non-nil, receives a "sim/realize_all" span per engine run
	// (realizations, schedules, batches, workers attributes; wall-clock
	// duration) and a "sim/build_sampler" span for the sample-table setup.
	Trace *obs.Tracer
}

// PaperOptions returns the paper's evaluation settings (1000 realizations).
func PaperOptions() Options { return Options{Realizations: 1000} }

// OptionError reports an invalid Options field. It is the typed error
// returned by Validate, so callers can tell a misconfigured evaluation
// apart from an execution failure and report which knob is wrong.
type OptionError struct {
	Field  string
	Value  float64
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("sim: Options.%s=%g %s", e.Field, e.Value, e.Reason)
}

// Validate checks the option set without clamping anything: every consumer
// of Options (here and in the repair/fault evaluators) rejects bad values
// with an *OptionError instead of silently correcting them.
func (o Options) Validate() error {
	if o.Realizations < 1 {
		return &OptionError{"Realizations", float64(o.Realizations), "must be >= 1"}
	}
	if o.Workers < 0 {
		return &OptionError{"Workers", float64(o.Workers), "must be >= 0"}
	}
	if o.BatchSize < 0 {
		return &OptionError{"BatchSize", float64(o.BatchSize), "must be >= 0"}
	}
	if math.IsNaN(o.Deadline) || math.IsInf(o.Deadline, 0) {
		return &OptionError{"Deadline", o.Deadline, "must be finite"}
	}
	if o.Model >= numDurationModels {
		return &OptionError{"Model", float64(o.Model), "is not a known duration model"}
	}
	if o.Corr >= numCorrelations {
		return &OptionError{"Corr", float64(o.Corr), "is not a known correlation mode"}
	}
	if math.IsNaN(o.LoadCOV) || math.IsInf(o.LoadCOV, 0) || o.LoadCOV < 0 {
		return &OptionError{"LoadCOV", o.LoadCOV, "must be finite and >= 0"}
	}
	if o.Corr != CorrNone && o.LoadCOV == 0 {
		return &OptionError{"LoadCOV", o.LoadCOV, "must be > 0 when Corr is set"}
	}
	if math.IsNaN(o.ParetoShape) || math.IsInf(o.ParetoShape, 0) || o.ParetoShape < 0 {
		return &OptionError{"ParetoShape", o.ParetoShape, "must be finite and >= 0"}
	}
	if o.Model == ModelBoundedPareto && o.ParetoShape == 0 {
		return &OptionError{"ParetoShape", o.ParetoShape, "must be > 0 for the bounded-Pareto model"}
	}
	return nil
}

func (o Options) workers() int {
	w := o.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// batch returns the kernel batch width for a run of r realizations.
func (o Options) batch(r int) int {
	b := o.BatchSize
	if b == 0 {
		b = DefaultBatchSize
	}
	if b > r {
		b = r
	}
	return b
}

// Metrics summarizes the realized behaviour of one schedule.
type Metrics struct {
	// M0 is the expected makespan the schedule was planned with.
	M0 float64
	// Realizations is the number of Monte-Carlo samples behind the stats.
	Realizations int

	// MeanMakespan, StdMakespan, MinMakespan, MaxMakespan summarize the
	// realized makespan distribution.
	MeanMakespan float64
	StdMakespan  float64
	MinMakespan  float64
	MaxMakespan  float64

	// MeanTardiness is E[δ] with δ_i = max(0, M_i − M0)/M0 (Eqn. 4).
	MeanTardiness float64
	// MissRate is α = |{M_i > M0}|/N (Definition 3.7).
	MissRate float64
	// R1 = 1/E[δ] (Eqn. 5); +Inf when no realization is tardy.
	R1 float64
	// R2 = 1/α (Eqn. 6); +Inf when no realization misses.
	R2 float64

	// P50, P95 and P99 are exact order statistics of the realized makespan
	// distribution (tail behaviour the mean hides): the smallest sampled
	// makespan not exceeded by at least the given fraction of realizations,
	// the same convention as DeadlineForConfidence.
	P50, P95, P99 float64
	// DeadlineMissRate is the fraction of realizations whose makespan
	// exceeded Options.Deadline; NaN when no deadline was set.
	DeadlineMissRate float64
}

// accum folds one makespan vector into the scalar statistics. Mean and
// variance use Welford's online algorithm — the naive sum-of-squares form
// cancels catastrophically when the makespan spread is tiny relative to its
// magnitude (e.g. deterministic workloads). Realizations are always fed in
// realization order, so the accumulation is worker-independent.
type accum struct {
	n         int
	meanM     float64
	m2        float64 // sum of squared deviations from the running mean
	minM      float64
	maxM      float64
	sumDelta  float64
	missCount int

	deadline       float64 // 0 disables
	deadlineMisses int
}

func newAccum() accum {
	return accum{minM: math.Inf(1), maxM: math.Inf(-1)}
}

func (a *accum) add(m, m0 float64) {
	if a.deadline > 0 && m > a.deadline {
		a.deadlineMisses++
	}
	a.n++
	d := m - a.meanM
	a.meanM += d / float64(a.n)
	a.m2 += d * (m - a.meanM)
	if m < a.minM {
		a.minM = m
	}
	if m > a.maxM {
		a.maxM = m
	}
	if m > m0*(1+1e-12) {
		a.missCount++
		a.sumDelta += (m - m0) / m0
	}
}

func (a accum) metrics(m0 float64) Metrics {
	n := float64(a.n)
	mean := a.meanM
	variance := a.m2 / n
	if variance < 0 {
		variance = 0
	}
	meanDelta := a.sumDelta / n
	missRate := float64(a.missCount) / n
	r1 := math.Inf(1)
	if meanDelta > 0 {
		r1 = 1 / meanDelta
	}
	r2 := math.Inf(1)
	if missRate > 0 {
		r2 = 1 / missRate
	}
	deadlineMiss := math.NaN()
	if a.deadline > 0 {
		deadlineMiss = float64(a.deadlineMisses) / n
	}
	return Metrics{
		M0:               m0,
		Realizations:     a.n,
		MeanMakespan:     mean,
		StdMakespan:      math.Sqrt(variance),
		MinMakespan:      a.minM,
		MaxMakespan:      a.maxM,
		MeanTardiness:    meanDelta,
		MissRate:         missRate,
		R1:               r1,
		R2:               r2,
		DeadlineMissRate: deadlineMiss,
		// Quantiles are filled by the callers from the sorted sample.
		P50: math.NaN(), P95: math.NaN(), P99: math.NaN(),
	}
}

// sampler precomputes the per-(task, processor) constants of the duration
// distributions U(b, (2·UL−1)·b), so the per-realization sampling loop is
// pure RNG and multiply-add work with no matrix lookups. A non-positive
// width marks a degenerate pair (UL == 1), which consumes no random draw —
// exactly like Workload.SampleDuration, so the streams stay bit-identical.
type sampler struct {
	lo    []float64 // b_ij (row-major n×m)
	width []float64 // hi − b, hi = (2·UL−1)·b
	sum   []float64 // b + hi, the antithetic mirror constant
	draws int       // non-degenerate pairs == duration uniforms per realization

	// Model extension. The legacy fields above fully describe the uniform
	// model; the general path (any non-default Model/Corr) additionally
	// uses the tables below. mu/sigma are the lognormal parameters matched
	// per pair to the uniform model's mean and variance; alpha is the
	// bounded-Pareto tail index over the same support [lo, lo+width].
	model     DurationModel
	corr      Correlation
	mu, sigma []float64
	alpha     float64
	// Mean-1 lognormal load-factor parameters: sigma² = ln(1+LoadCOV²),
	// mu = −sigma²/2.
	loadMu, loadSigma float64
	loadDraws         int // uniforms consumed for load factors per realization
	m                 int // processors (column count of the row-major tables)
}

// general reports whether this sampler needs the generalized path; false
// means the original uniform code runs, bit-identical to the pre-model
// engine.
func (sp *sampler) general() bool {
	return sp.model != ModelUniform || sp.corr != CorrNone
}

// scratch returns the per-realization uniform block length the worker must
// provide: load-factor draws first, then one draw per non-degenerate pair.
func (sp *sampler) scratch() int { return sp.loadDraws + sp.draws }

func newSampler(w *platform.Workload, opt Options) sampler {
	n, m := w.N(), w.M()
	sp := sampler{
		lo:    make([]float64, n*m),
		width: make([]float64, n*m),
		sum:   make([]float64, n*m),
		model: opt.Model,
		corr:  opt.Corr,
		alpha: opt.ParetoShape,
		m:     m,
	}
	for t := 0; t < n; t++ {
		for p := 0; p < m; p++ {
			b := w.BCET.At(t, p)
			hi := (2*w.UL.At(t, p) - 1) * b
			k := t*m + p
			sp.lo[k] = b
			sp.width[k] = hi - b
			sp.sum[k] = b + hi
			if hi > b {
				sp.draws++
			}
		}
	}
	if opt.Model == ModelLognormal {
		// Match the uniform model's first two moments per pair:
		// mean μ = (b+hi)/2, variance v = (hi−b)²/12, then
		// sigma² = ln(1+v/μ²), mu = ln μ − sigma²/2.
		sp.mu = make([]float64, n*m)
		sp.sigma = make([]float64, n*m)
		for k := range sp.lo {
			if sp.width[k] <= 0 {
				continue
			}
			mean := sp.sum[k] / 2
			v := sp.width[k] * sp.width[k] / 12
			s2 := math.Log(1 + v/(mean*mean))
			sp.mu[k] = math.Log(mean) - s2/2
			sp.sigma[k] = math.Sqrt(s2)
		}
	}
	if opt.Corr != CorrNone {
		s2 := math.Log(1 + opt.LoadCOV*opt.LoadCOV)
		sp.loadMu = -s2 / 2
		sp.loadSigma = math.Sqrt(s2)
		if opt.Corr == CorrShared {
			sp.loadDraws = m
		} else {
			sp.loadDraws = n * m
		}
	}
	return sp
}

// sampleInto draws one full duration matrix into lane `lane` of dst, which
// is (task, processor)-major with the given lane stride: entry (t, p) of
// the realization lands at dst[(t*m+p)*stride+lane]. The draw per pair is
// lo + width·U[0,1), the same floating-point expression as
// Workload.SampleDuration / rng.Uniform. The realization's sp.draws uniforms
// are generated as one rng.Float64s block into the scratch u and consumed in
// pair order — the identical draw sequence, minus a function call per draw.
func (sp *sampler) sampleInto(dst []float64, stride, lane int, r *rng.Source, u []float64) {
	u = u[:sp.draws]
	r.Float64s(u)
	j := 0
	for k, w := range sp.width {
		if w <= 0 {
			dst[k*stride+lane] = sp.lo[k]
			continue
		}
		dst[k*stride+lane] = sp.lo[k] + w*u[j]
		j++
	}
}

// sampleMirroredInto is sampleInto with every non-degenerate draw reflected
// across its interval midpoint: (b + hi) − (b + width·U), the antithetic
// counterpart stream, operation for operation the expression the scalar
// engine's mirrored wrapper evaluated.
func (sp *sampler) sampleMirroredInto(dst []float64, stride, lane int, r *rng.Source, u []float64) {
	u = u[:sp.draws]
	r.Float64s(u)
	j := 0
	for k, w := range sp.width {
		if w <= 0 {
			dst[k*stride+lane] = sp.lo[k]
			continue
		}
		dst[k*stride+lane] = sp.sum[k] - (sp.lo[k] + w*u[j])
		j++
	}
}

// sampleGeneralInto is the model-extension sampling path: any duration model
// combined with any correlation mode, normal or antithetic-mirrored. One
// realization consumes sp.scratch() uniforms as a single rng.Float64s block —
// load-factor draws first, then one draw per non-degenerate pair — so the
// draw schedule is a pure function of the workload shape and the realization
// seed, independent of worker count, batch width and shard boundaries.
//
// The antithetic mirror is uniform across every model: the mirrored
// realization evaluates the identical transforms at 1−u for every uniform in
// the block. Float64 outputs are dyadic rationals k/2^53, so 1−u is exactly
// representable and the mirror is exact — no rounding asymmetry between a
// realization and its antithetic partner. (The legacy uniform-only path keeps
// its historical midpoint-reflection expression instead; the two paths never
// mix, since this one only runs for non-default Model/Corr.)
//
// load is caller scratch of length sp.m, used only under CorrShared.
func (sp *sampler) sampleGeneralInto(dst []float64, stride, lane int, r *rng.Source, u, load []float64, mirrored bool) {
	u = u[:sp.scratch()]
	r.Float64s(u)
	if mirrored {
		for i := range u {
			u[i] = 1 - u[i]
		}
	}
	if sp.corr == CorrShared {
		for p := 0; p < sp.m; p++ {
			load[p] = rng.LogNormalQuantile(sp.loadMu, sp.loadSigma, u[p])
		}
	}
	j := sp.loadDraws
	for k, w := range sp.width {
		v := sp.lo[k]
		if w > 0 {
			uu := u[j]
			j++
			switch sp.model {
			case ModelUniform:
				v = sp.lo[k] + w*uu
			case ModelLognormal:
				v = rng.LogNormalQuantile(sp.mu[k], sp.sigma[k], uu)
			case ModelBoundedPareto:
				v = rng.BoundedParetoQuantile(sp.lo[k], sp.lo[k]+w, sp.alpha, uu)
			}
		}
		// The load factor multiplies every entry on the processor —
		// degenerate (deterministic) pairs included: a loaded processor
		// slows all of its tasks.
		switch sp.corr {
		case CorrShared:
			v *= load[k%sp.m]
		case CorrIndep:
			v *= rng.LogNormalQuantile(sp.loadMu, sp.loadSigma, u[k])
		}
		dst[k*stride+lane] = v
	}
}

// SeedVector derives the per-realization RNG seed vector RealizeAll uses:
// one root.Uint64() draw per realization, in realization order, independent
// of any parallelism. With antithetic pairing, realizations 2k and 2k+1
// share a seed; the odd one mirrors every uniform draw.
//
// The vector is the whole stream-derivation scheme: a coordinator that
// computes it once and hands contiguous windows (with their global base
// index, which carries the antithetic parity) to RealizeSeeded in other
// worker processes reproduces exactly the sample set of a single-process
// RealizeAll, shard boundaries included.
func SeedVector(realizations int, antithetic bool, root *rng.Source) []uint64 {
	seeds := make([]uint64, realizations)
	for i := range seeds {
		if antithetic && i%2 == 1 {
			seeds[i] = seeds[i-1]
		} else {
			seeds[i] = root.Uint64()
		}
	}
	return seeds
}

// RealizeAll is the shared Monte-Carlo engine: it runs opt.Realizations
// sampled executions of every schedule (all of the same workload, under
// common random numbers — each realization samples the full n×m duration
// matrix once and applies it to every schedule) and returns the realized
// makespans indexed [schedule][realization]. Evaluate, EvaluateAll, CVaR
// and DeadlineForConfidence are all views over this one engine.
//
// The root source seeds one independent stream per realization, and each
// lane's floating-point operations follow the scalar order, so the returned
// vectors are bit-identical for every Workers and BatchSize setting.
func RealizeAll(ss []*schedule.Schedule, opt Options, root *rng.Source) ([][]float64, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return RealizeSeeded(ss, opt, SeedVector(opt.Realizations, opt.Antithetic, root), 0)
}

// RealizeSeeded runs the batched Monte-Carlo engine over an explicit window
// of the realization space: seeds[l] is the RNG seed of global realization
// base+l (a window of the SeedVector derivation), and the returned makespans
// are indexed [schedule][l]. opt.Realizations is ignored; the window length
// is len(seeds). base matters only under Options.Antithetic, where the
// global index parity selects the mirrored sampler, so windows that split an
// antithetic pair still reproduce the exact single-process draws.
//
// RealizeAll is RealizeSeeded over the full vector at base 0; a scatter/
// gather coordinator (internal/dist) runs disjoint windows in worker
// processes and concatenates the results in base order, which is
// bit-identical to the single-process run for any partition.
func RealizeSeeded(ss []*schedule.Schedule, opt Options, seeds []uint64, base int) ([][]float64, error) {
	vopt := opt
	vopt.Realizations = len(seeds)
	if err := vopt.Validate(); err != nil {
		return nil, err
	}
	if base < 0 {
		return nil, &OptionError{"base", float64(base), "must be >= 0"}
	}
	if len(ss) == 0 {
		return nil, fmt.Errorf("sim: no schedules to evaluate")
	}
	w := ss[0].Workload()
	for _, s := range ss[1:] {
		if s.Workload() != w {
			return nil, fmt.Errorf("sim: schedules must share one workload for common random numbers")
		}
	}
	n, m := w.N(), w.M()
	R := len(seeds)
	B := opt.batch(R)
	buildDone := opt.Trace.Scope("sim").Span("build_sampler")
	sp := newSampler(w, opt)
	buildDone()
	mks := make([][]float64, len(ss))
	arena := make([]float64, len(ss)*R)
	for j := range mks {
		mks[j], arena = arena[:R:R], arena[R:]
	}
	nBatches := (R + B - 1) / B
	nw := opt.workers()
	if nw > nBatches {
		nw = nBatches
	}
	// Telemetry: the counters and the occupancy histogram aggregate
	// worker-independent facts (every run issues the same batch widths);
	// only worker_claims reflects the actual racy batch assignment.
	opt.Obs.Counter("sim.realize_calls").Inc()
	opt.Obs.Counter("sim.realizations").Add(int64(R))
	opt.Obs.Counter("sim.schedules").Add(int64(len(ss)))
	opt.Obs.Counter("sim.batches").Add(int64(nBatches))
	occupancy := opt.Obs.Histogram("sim.batch_occupancy", []float64{1, 2, 4, 8, 16, 32, 64})
	claims := opt.Obs.Histogram("sim.worker_claims", []float64{1, 2, 4, 8, 16, 64, 256, 1024})
	if opt.Trace != nil {
		defer opt.Trace.Scope("sim").Span("realize_all",
			obs.F("realizations", float64(R)),
			obs.F("schedules", float64(len(ss))),
			obs.F("batches", float64(nBatches)),
			obs.F("batch_size", float64(B)),
			obs.F("workers", float64(nw)),
		)()
	}
	// Workers claim whole batches off a shared cursor; since every batch
	// writes a disjoint [lo, lo+b) realization range, the assignment of
	// batches to workers cannot affect the result.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < nw; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			durs := make([]float64, n*m*B) // sampled matrices, lane-minor
			lane := make([]float64, n*B)   // one schedule's assigned durations
			st := make([]float64, B)
			finish := make([]float64, n*B)
			out := make([]float64, B)
			u := make([]float64, sp.scratch()) // one realization's uniform block
			load := make([]float64, m)         // CorrShared per-processor factors
			claimed := 0
			defer func() { claims.Observe(float64(claimed)) }()
			for {
				lo := int(cursor.Add(int64(B))) - B
				if lo >= R {
					return
				}
				claimed++
				b := B
				if lo+b > R {
					b = R - lo
				}
				occupancy.Observe(float64(b))
				for l := 0; l < b; l++ {
					i := lo + l
					r := rng.New(seeds[i])
					// The antithetic mirror follows the global realization
					// index, so a window starting on an odd index keeps
					// mirroring exactly the realizations the full run would.
					mirror := opt.Antithetic && (base+i)%2 == 1
					switch {
					case sp.general():
						sp.sampleGeneralInto(durs, b, l, r, u, load, mirror)
					case mirror:
						sp.sampleMirroredInto(durs, b, l, r, u)
					default:
						sp.sampleInto(durs, b, l, r, u)
					}
				}
				for j, s := range ss {
					for t := 0; t < n; t++ {
						base := (t*m + s.Proc(t)) * b
						copy(lane[t*b:t*b+b], durs[base:base+b])
					}
					s.MakespanBatchInto(b, lane[:n*b], st[:b], finish[:n*b], out[:b])
					copy(mks[j][lo:lo+b], out[:b])
				}
			}
		}()
	}
	wg.Wait()
	return mks, nil
}

// Evaluate runs opt.Realizations Monte-Carlo executions of the schedule and
// returns its robustness metrics. The root source seeds one independent
// stream per realization, so results do not depend on the worker count.
func Evaluate(s *schedule.Schedule, opt Options, root *rng.Source) (Metrics, error) {
	ms, err := EvaluateAll([]*schedule.Schedule{s}, opt, root)
	if err != nil {
		return Metrics{}, err
	}
	return ms[0], nil
}

// EvaluateAll evaluates several schedules of the *same workload* under
// common random numbers: each realization samples the full n×m duration
// matrix once and applies it to every schedule, which is how the paper
// compares the GA's schedules against HEFT's on identical environments
// (and is the variance-reduction friendly way to estimate improvements).
//
// All metric fields, quantiles included, are computed from the full
// per-realization makespan vector in realization order and are therefore
// bit-identical for every Workers and BatchSize setting.
func EvaluateAll(ss []*schedule.Schedule, opt Options, root *rng.Source) ([]Metrics, error) {
	mks, err := RealizeAll(ss, opt, root)
	if err != nil {
		return nil, err
	}
	out := make([]Metrics, len(ss))
	for j, s := range ss {
		out[j] = MetricsFromSamples(s.Makespan(), mks[j], opt.Deadline)
	}
	return out, nil
}

// quantileSorted returns the exact empirical p-quantile of a sorted sample:
// the smallest sampled value x such that at least a p fraction of the
// samples are <= x (i.e. sorted[ceil(p·n)−1]).
func quantileSorted(sorted []float64, p float64) float64 {
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// MetricsFromSamples assembles the full metric set from an explicit slice
// of realized makespans against the planned makespan m0. The quantiles are
// exact order statistics of the sample. Other simulators (e.g. the dynamic
// online baseline and the runtime-repair comparator) use this to report
// results comparable to Evaluate's. deadline <= 0 disables the deadline
// miss rate.
func MetricsFromSamples(m0 float64, makespans []float64, deadline float64) Metrics {
	a := newAccum()
	a.deadline = deadline
	for _, m := range makespans {
		a.add(m, m0)
	}
	out := a.metrics(m0)
	sorted := append([]float64(nil), makespans...)
	sort.Float64s(sorted)
	if len(sorted) > 0 {
		out.P50 = quantileSorted(sorted, 0.50)
		out.P95 = quantileSorted(sorted, 0.95)
		out.P99 = quantileSorted(sorted, 0.99)
	}
	return out
}

// DeadlineForConfidence returns the smallest deadline D such that the
// schedule meets D in at least the given fraction of sampled realizations:
// the empirical `confidence`-quantile of the realized makespan. This is
// the planning question robustness ultimately answers — "what completion
// time can I promise with 95% confidence?". It runs on the same batched
// parallel engine as Evaluate and honours Options.Workers, Antithetic and
// BatchSize; with equal Options and root seed it returns exactly the
// corresponding order statistic of Evaluate's makespan sample.
func DeadlineForConfidence(s *schedule.Schedule, confidence float64, opt Options, root *rng.Source) (float64, error) {
	if confidence <= 0 || confidence > 1 {
		return 0, fmt.Errorf("sim: confidence %g out of (0, 1]", confidence)
	}
	mks, err := RealizeAll([]*schedule.Schedule{s}, opt, root)
	if err != nil {
		return 0, err
	}
	makespans := mks[0]
	sort.Float64s(makespans)
	return quantileSorted(makespans, confidence), nil
}

// CVaR returns the conditional value at risk of the schedule's makespan at
// level q: the mean of the worst (1−q) fraction of sampled realizations —
// what "bad days" cost on average, the risk measure conservative planners
// optimize for. Like DeadlineForConfidence it is a view over the shared
// batched engine and honours Options.Workers, Antithetic and BatchSize.
func CVaR(s *schedule.Schedule, q float64, opt Options, root *rng.Source) (float64, error) {
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("sim: CVaR level %g out of (0, 1)", q)
	}
	mks, err := RealizeAll([]*schedule.Schedule{s}, opt, root)
	if err != nil {
		return 0, err
	}
	makespans := mks[0]
	sort.Float64s(makespans)
	cut := int(math.Floor(q * float64(len(makespans))))
	if cut >= len(makespans) {
		cut = len(makespans) - 1
	}
	tail := makespans[cut:]
	sum := 0.0
	for _, m := range tail {
		sum += m
	}
	return sum / float64(len(tail)), nil
}

// Realize samples a single duration vector for the schedule's assignment —
// one concrete execution environment — using the given stream. Useful for
// examples and for tests that need a single realization.
func Realize(s *schedule.Schedule, r *rng.Source) []float64 {
	w := s.Workload()
	dur := make([]float64, w.N())
	for t := range dur {
		dur[t] = w.SampleDuration(t, s.Proc(t), r)
	}
	return dur
}
