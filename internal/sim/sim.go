// Package sim implements the paper's evaluation methodology: Monte-Carlo
// realizations of the non-deterministic task durations (Section 3.1's
// uniform model c_ij ~ U(b_ij, (2·UL_ij−1)·b_ij)) and the two robustness
// metrics computed from them — R1, the inverse expected relative tardiness
// (Definition 3.6), and R2, the inverse schedule miss rate (Definition 3.7).
//
// Each realization is a single allocation-free longest-path pass over the
// schedule's precomputed disjunctive graph, and realizations fan out across
// GOMAXPROCS workers with per-realization deterministic RNG streams, so
// results are bit-identical regardless of parallelism.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// Options configures a Monte-Carlo evaluation.
type Options struct {
	// Realizations is the number of sampled executions (paper: 1000).
	Realizations int
	// Workers caps the parallel fan-out; 0 means GOMAXPROCS.
	Workers int
	// Deadline, when positive, additionally reports the fraction of
	// realizations whose makespan exceeds it (a user-deadline robustness
	// view beyond the paper's M0-relative miss rate).
	Deadline float64
	// Antithetic pairs each realization with its mirrored counterpart
	// (uniform draws u and 1−u). The makespan is monotone in every task
	// duration, so the paired makespans are negatively correlated and the
	// mean estimator's variance strictly drops for the same sample count —
	// classic antithetic-variates variance reduction. Odd realization
	// counts leave the last sample unpaired.
	Antithetic bool
}

// PaperOptions returns the paper's evaluation settings (1000 realizations).
func PaperOptions() Options { return Options{Realizations: 1000} }

func (o Options) validate() error {
	if o.Realizations < 1 {
		return fmt.Errorf("sim: Realizations=%d must be >= 1", o.Realizations)
	}
	if o.Workers < 0 {
		return fmt.Errorf("sim: Workers=%d must be >= 0", o.Workers)
	}
	return nil
}

func (o Options) workers() int {
	w := o.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > o.Realizations {
		w = o.Realizations
	}
	return w
}

// Metrics summarizes the realized behaviour of one schedule.
type Metrics struct {
	// M0 is the expected makespan the schedule was planned with.
	M0 float64
	// Realizations is the number of Monte-Carlo samples behind the stats.
	Realizations int

	// MeanMakespan, StdMakespan, MinMakespan, MaxMakespan summarize the
	// realized makespan distribution.
	MeanMakespan float64
	StdMakespan  float64
	MinMakespan  float64
	MaxMakespan  float64

	// MeanTardiness is E[δ] with δ_i = max(0, M_i − M0)/M0 (Eqn. 4).
	MeanTardiness float64
	// MissRate is α = |{M_i > M0}|/N (Definition 3.7).
	MissRate float64
	// R1 = 1/E[δ] (Eqn. 5); +Inf when no realization is tardy.
	R1 float64
	// R2 = 1/α (Eqn. 6); +Inf when no realization misses.
	R2 float64

	// P50, P95 and P99 are online P²-estimated quantiles of the realized
	// makespan distribution (tail behaviour the mean hides).
	P50, P95, P99 float64
	// DeadlineMissRate is the fraction of realizations whose makespan
	// exceeded Options.Deadline; NaN when no deadline was set.
	DeadlineMissRate float64
}

// accum is one worker's partial statistics. Mean and variance use
// Welford's online algorithm (and Chan's pairwise merge) — the naive
// sum-of-squares form cancels catastrophically when the makespan spread is
// tiny relative to its magnitude (e.g. deterministic workloads).
type accum struct {
	n         int
	meanM     float64
	m2        float64 // sum of squared deviations from the running mean
	minM      float64
	maxM      float64
	sumDelta  float64
	missCount int

	deadline       float64 // 0 disables
	deadlineMisses int
	q50, q95, q99  *P2Quantile
}

func newAccum() accum {
	return accum{
		minM: math.Inf(1), maxM: math.Inf(-1),
		q50: NewP2Quantile(0.50),
		q95: NewP2Quantile(0.95),
		q99: NewP2Quantile(0.99),
	}
}

func (a *accum) add(m, m0 float64) {
	a.q50.Add(m)
	a.q95.Add(m)
	a.q99.Add(m)
	if a.deadline > 0 && m > a.deadline {
		a.deadlineMisses++
	}
	a.n++
	d := m - a.meanM
	a.meanM += d / float64(a.n)
	a.m2 += d * (m - a.meanM)
	if m < a.minM {
		a.minM = m
	}
	if m > a.maxM {
		a.maxM = m
	}
	if m > m0*(1+1e-12) {
		a.missCount++
		a.sumDelta += (m - m0) / m0
	}
}

func (a *accum) merge(b accum) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	na, nb := float64(a.n), float64(b.n)
	delta := b.meanM - a.meanM
	a.m2 += b.m2 + delta*delta*na*nb/(na+nb)
	a.meanM += delta * nb / (na + nb)
	a.n += b.n
	if b.minM < a.minM {
		a.minM = b.minM
	}
	if b.maxM > a.maxM {
		a.maxM = b.maxM
	}
	a.sumDelta += b.sumDelta
	a.missCount += b.missCount
	a.deadlineMisses += b.deadlineMisses
}

func (a accum) metrics(m0 float64) Metrics {
	n := float64(a.n)
	mean := a.meanM
	variance := a.m2 / n
	if variance < 0 {
		variance = 0
	}
	meanDelta := a.sumDelta / n
	missRate := float64(a.missCount) / n
	r1 := math.Inf(1)
	if meanDelta > 0 {
		r1 = 1 / meanDelta
	}
	r2 := math.Inf(1)
	if missRate > 0 {
		r2 = 1 / missRate
	}
	deadlineMiss := math.NaN()
	if a.deadline > 0 {
		deadlineMiss = float64(a.deadlineMisses) / n
	}
	return Metrics{
		M0:               m0,
		Realizations:     a.n,
		MeanMakespan:     mean,
		StdMakespan:      math.Sqrt(variance),
		MinMakespan:      a.minM,
		MaxMakespan:      a.maxM,
		MeanTardiness:    meanDelta,
		MissRate:         missRate,
		R1:               r1,
		R2:               r2,
		DeadlineMissRate: deadlineMiss,
		// Quantiles are filled by EvaluateAll from the per-worker
		// estimators (P² markers cannot be merged exactly).
		P50: math.NaN(), P95: math.NaN(), P99: math.NaN(),
	}
}

// Evaluate runs opt.Realizations Monte-Carlo executions of the schedule and
// returns its robustness metrics. The root source seeds one independent
// stream per realization, so results do not depend on the worker count.
func Evaluate(s *schedule.Schedule, opt Options, root *rng.Source) (Metrics, error) {
	ms, err := EvaluateAll([]*schedule.Schedule{s}, opt, root)
	if err != nil {
		return Metrics{}, err
	}
	return ms[0], nil
}

// EvaluateAll evaluates several schedules of the *same workload* under
// common random numbers: each realization samples the full n×m duration
// matrix once and applies it to every schedule, which is how the paper
// compares the GA's schedules against HEFT's on identical environments
// (and is the variance-reduction friendly way to estimate improvements).
func EvaluateAll(ss []*schedule.Schedule, opt Options, root *rng.Source) ([]Metrics, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if len(ss) == 0 {
		return nil, fmt.Errorf("sim: no schedules to evaluate")
	}
	w := ss[0].Workload()
	for _, s := range ss[1:] {
		if s.Workload() != w {
			return nil, fmt.Errorf("sim: schedules must share one workload for common random numbers")
		}
	}
	n, m := w.N(), w.M()
	// One deterministic seed per realization, independent of parallelism.
	// With antithetic pairing, realizations 2k and 2k+1 share a seed; the
	// odd one mirrors every uniform draw.
	seeds := make([]uint64, opt.Realizations)
	for i := range seeds {
		if opt.Antithetic && i%2 == 1 {
			seeds[i] = seeds[i-1]
		} else {
			seeds[i] = root.Uint64()
		}
	}
	nw := opt.workers()
	partials := make([][]accum, nw)
	var wg sync.WaitGroup
	for k := 0; k < nw; k++ {
		partials[k] = make([]accum, len(ss))
		for j := range partials[k] {
			partials[k][j] = newAccum()
			partials[k][j].deadline = opt.Deadline
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			acc := partials[k]
			durs := make([]float64, n*m) // sampled duration matrix, row-major
			dur := make([]float64, n)
			startBuf := make([]float64, n)
			finishBuf := make([]float64, n)
			for i := k; i < opt.Realizations; i += nw {
				r := rng.New(seeds[i])
				var src uniformSource = r
				if opt.Antithetic && i%2 == 1 {
					src = mirrored{r}
				}
				for t := 0; t < n; t++ {
					for p := 0; p < m; p++ {
						durs[t*m+p] = w.SampleDuration(t, p, src)
					}
				}
				for j, s := range ss {
					for t := 0; t < n; t++ {
						dur[t] = durs[t*m+s.Proc(t)]
					}
					mk := s.MakespanInto(dur, startBuf, finishBuf)
					acc[j].add(mk, s.Makespan())
				}
			}
		}(k)
	}
	wg.Wait()
	out := make([]Metrics, len(ss))
	for j, s := range ss {
		total := newAccum()
		total.deadline = opt.Deadline
		var q50s, q95s, q99s []float64
		for k := 0; k < nw; k++ {
			total.merge(partials[k][j])
			q50s = append(q50s, partials[k][j].q50.Value())
			q95s = append(q95s, partials[k][j].q95.Value())
			q99s = append(q99s, partials[k][j].q99.Value())
		}
		out[j] = total.metrics(s.Makespan())
		out[j].P50 = medianOf(q50s)
		out[j].P95 = medianOf(q95s)
		out[j].P99 = medianOf(q99s)
	}
	return out, nil
}

// uniformSource is the sampling capability Workload.SampleDuration needs.
type uniformSource interface {
	Uniform(a, b float64) float64
}

// mirrored reflects every uniform draw of the wrapped source across its
// interval midpoint: the antithetic counterpart stream.
type mirrored struct {
	src *rng.Source
}

func (m mirrored) Uniform(a, b float64) float64 {
	return a + b - m.src.Uniform(a, b)
}

// MetricsFromSamples assembles the full metric set from an explicit slice
// of realized makespans against the planned makespan m0. Other simulators
// (e.g. the dynamic online baseline) use this to report results comparable
// to Evaluate's. deadline <= 0 disables the deadline miss rate.
func MetricsFromSamples(m0 float64, makespans []float64, deadline float64) Metrics {
	a := newAccum()
	a.deadline = deadline
	for _, m := range makespans {
		a.add(m, m0)
	}
	out := a.metrics(m0)
	out.P50 = a.q50.Value()
	out.P95 = a.q95.Value()
	out.P99 = a.q99.Value()
	return out
}

// DeadlineForConfidence returns the smallest deadline D such that the
// schedule meets D in at least the given fraction of sampled realizations:
// the empirical `confidence`-quantile of the realized makespan. This is
// the planning question robustness ultimately answers — "what completion
// time can I promise with 95% confidence?".
func DeadlineForConfidence(s *schedule.Schedule, confidence float64, opt Options, root *rng.Source) (float64, error) {
	if confidence <= 0 || confidence > 1 {
		return 0, fmt.Errorf("sim: confidence %g out of (0, 1]", confidence)
	}
	if err := opt.validate(); err != nil {
		return 0, err
	}
	w := s.Workload()
	n := w.N()
	makespans := make([]float64, opt.Realizations)
	dur := make([]float64, n)
	startBuf := make([]float64, n)
	finishBuf := make([]float64, n)
	for k := range makespans {
		r := rng.New(root.Uint64())
		for t := 0; t < n; t++ {
			dur[t] = w.SampleDuration(t, s.Proc(t), r)
		}
		makespans[k] = s.MakespanInto(dur, startBuf, finishBuf)
	}
	sort.Float64s(makespans)
	idx := int(math.Ceil(confidence*float64(len(makespans)))) - 1
	if idx < 0 {
		idx = 0
	}
	return makespans[idx], nil
}

// CVaR returns the conditional value at risk of the schedule's makespan at
// level q: the mean of the worst (1−q) fraction of sampled realizations —
// what "bad days" cost on average, the risk measure conservative planners
// optimize for.
func CVaR(s *schedule.Schedule, q float64, opt Options, root *rng.Source) (float64, error) {
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("sim: CVaR level %g out of (0, 1)", q)
	}
	if err := opt.validate(); err != nil {
		return 0, err
	}
	w := s.Workload()
	n := w.N()
	makespans := make([]float64, opt.Realizations)
	dur := make([]float64, n)
	startBuf := make([]float64, n)
	finishBuf := make([]float64, n)
	for k := range makespans {
		r := rng.New(root.Uint64())
		for t := 0; t < n; t++ {
			dur[t] = w.SampleDuration(t, s.Proc(t), r)
		}
		makespans[k] = s.MakespanInto(dur, startBuf, finishBuf)
	}
	sort.Float64s(makespans)
	cut := int(math.Floor(q * float64(len(makespans))))
	if cut >= len(makespans) {
		cut = len(makespans) - 1
	}
	tail := makespans[cut:]
	sum := 0.0
	for _, m := range tail {
		sum += m
	}
	return sum / float64(len(tail)), nil
}

// Realize samples a single duration vector for the schedule's assignment —
// one concrete execution environment — using the given stream. Useful for
// examples and for tests that need a single realization.
func Realize(s *schedule.Schedule, r *rng.Source) []float64 {
	w := s.Workload()
	dur := make([]float64, w.N())
	for t := range dur {
		dur[t] = w.SampleDuration(t, s.Proc(t), r)
	}
	return dur
}
