package sim

import (
	"math"
	"sort"
	"testing"

	"robsched/internal/rng"
)

func exactQuantile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

func TestP2QuantilePanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%g) did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func TestP2QuantileEmpty(t *testing.T) {
	q := NewP2Quantile(0.5)
	if !math.IsNaN(q.Value()) {
		t.Fatal("empty estimator not NaN")
	}
	if q.N() != 0 {
		t.Fatal("N != 0")
	}
}

func TestP2QuantileSmallSamplesExact(t *testing.T) {
	// With fewer than five observations the estimate is the exact sample
	// quantile.
	q := NewP2Quantile(0.5)
	q.Add(5)
	if q.Value() != 5 {
		t.Fatalf("single value: %g", q.Value())
	}
	q.Add(1)
	if q.Value() != 3 {
		t.Fatalf("two values median: %g", q.Value())
	}
	q.Add(9)
	if q.Value() != 5 {
		t.Fatalf("three values median: %g", q.Value())
	}
}

func TestP2QuantileUniform(t *testing.T) {
	r := rng.New(1)
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		q := NewP2Quantile(p)
		var xs []float64
		const n = 20000
		for i := 0; i < n; i++ {
			x := r.Uniform(0, 100)
			xs = append(xs, x)
			q.Add(x)
		}
		want := exactQuantile(xs, p)
		if math.Abs(q.Value()-want) > 1.0 {
			t.Errorf("p=%g: P² = %g, exact = %g", p, q.Value(), want)
		}
		if q.N() != n {
			t.Errorf("N = %d", q.N())
		}
	}
}

func TestP2QuantileSkewed(t *testing.T) {
	// Exponential data: heavy right tail stresses the marker adjustment.
	r := rng.New(2)
	q := NewP2Quantile(0.95)
	var xs []float64
	const n = 30000
	for i := 0; i < n; i++ {
		x := r.Exp(0.1)
		xs = append(xs, x)
		q.Add(x)
	}
	want := exactQuantile(xs, 0.95)
	if math.Abs(q.Value()-want)/want > 0.05 {
		t.Errorf("exponential p95: P² = %g, exact = %g", q.Value(), want)
	}
}

func TestP2QuantileSortedInput(t *testing.T) {
	// Monotone input is a classic stress case for online estimators.
	q := NewP2Quantile(0.5)
	const n = 10001
	for i := 0; i < n; i++ {
		q.Add(float64(i))
	}
	want := float64(n-1) / 2
	if math.Abs(q.Value()-want)/want > 0.05 {
		t.Errorf("sorted input median: P² = %g, want ~%g", q.Value(), want)
	}
}

func TestP2QuantileConstantInput(t *testing.T) {
	q := NewP2Quantile(0.9)
	for i := 0; i < 100; i++ {
		q.Add(7)
	}
	if q.Value() != 7 {
		t.Fatalf("constant input: %g", q.Value())
	}
}

func TestQuantileSortedConvention(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	// sorted[ceil(p*n)-1]: the smallest sample covering a p fraction.
	for _, c := range []struct{ p, want float64 }{
		{0.50, 5}, {0.95, 10}, {0.99, 10}, {0.10, 1}, {1.0, 10}, {0.001, 1},
	} {
		if got := quantileSorted(sorted, c.p); got != c.want {
			t.Errorf("quantileSorted(p=%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := quantileSorted([]float64{42}, 0.5); got != 42 {
		t.Errorf("single-sample quantile = %g", got)
	}
}

func TestMetricsQuantilesOrdered(t *testing.T) {
	w := testWorkload(t, 51, 60, 4, 4)
	s := heftSchedule(t, w)
	m, err := Evaluate(s, Options{Realizations: 2000}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !(m.MinMakespan <= m.P50 && m.P50 <= m.P95 && m.P95 <= m.P99 && m.P99 <= m.MaxMakespan+1e-9) {
		t.Fatalf("quantiles out of order: min %g p50 %g p95 %g p99 %g max %g",
			m.MinMakespan, m.P50, m.P95, m.P99, m.MaxMakespan)
	}
	// The median should sit near the mean for this roughly symmetric
	// distribution.
	if math.Abs(m.P50-m.MeanMakespan)/m.MeanMakespan > 0.1 {
		t.Errorf("median %g far from mean %g", m.P50, m.MeanMakespan)
	}
}

func TestDeadlineMissRate(t *testing.T) {
	w := testWorkload(t, 53, 40, 4, 3)
	s := heftSchedule(t, w)
	// A deadline below any realization misses always; above all, never.
	low, err := Evaluate(s, Options{Realizations: 300, Deadline: 1e-6}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if low.DeadlineMissRate != 1 {
		t.Errorf("tiny deadline miss rate = %g, want 1", low.DeadlineMissRate)
	}
	high, err := Evaluate(s, Options{Realizations: 300, Deadline: 1e12}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if high.DeadlineMissRate != 0 {
		t.Errorf("huge deadline miss rate = %g, want 0", high.DeadlineMissRate)
	}
	// A deadline at the p95 estimate should miss roughly 5% of the time.
	m, err := Evaluate(s, Options{Realizations: 2000}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	at95, err := Evaluate(s, Options{Realizations: 2000, Deadline: m.P95}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if at95.DeadlineMissRate < 0.01 || at95.DeadlineMissRate > 0.12 {
		t.Errorf("p95 deadline miss rate = %g, want ~0.05", at95.DeadlineMissRate)
	}
	// Without a deadline the field is NaN.
	if !math.IsNaN(m.DeadlineMissRate) {
		t.Errorf("unset deadline produced %g", m.DeadlineMissRate)
	}
}

func TestQuantileStableAcrossWorkerCounts(t *testing.T) {
	// Quantiles are exact order statistics of the full makespan sample and
	// must therefore be bit-identical across worker counts (they were only
	// approximately stable under the former per-worker P² estimators).
	w := testWorkload(t, 55, 60, 4, 4)
	s := heftSchedule(t, w)
	a, err := Evaluate(s, Options{Realizations: 2000, Workers: 1}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(s, Options{Realizations: 2000, Workers: 8}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.P50 != b.P50 || a.P95 != b.P95 || a.P99 != b.P99 {
		t.Errorf("quantiles differ across worker counts: %+v vs %+v", a, b)
	}
}
