package sim

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile is the Jain & Chlamtac P² algorithm: an online estimator of a
// single quantile using five markers and O(1) memory, for streaming
// consumers that cannot retain their sample. Estimates are exact until five
// observations arrive and converge with O(1/sqrt(n)) error afterwards.
//
// The Monte-Carlo engine no longer uses it: Metrics.P50/P95/P99 are exact
// order statistics of the retained per-realization makespan vector (the
// former per-worker P² estimates silently varied with Options.Workers).
type P2Quantile struct {
	p       float64
	n       int
	heights [5]float64 // marker heights
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	inc     [5]float64 // desired position increments per observation
	init    []float64  // first observations until the estimator is primed
}

// NewP2Quantile returns an estimator of the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("sim: NewP2Quantile(%g) needs 0 < p < 1", p))
	}
	return &P2Quantile{
		p:    p,
		inc:  [5]float64{0, p / 2, p, (1 + p) / 2, 1},
		init: make([]float64, 0, 5),
	}
}

// Add feeds one observation.
func (q *P2Quantile) Add(x float64) {
	q.n++
	if len(q.init) < 5 {
		q.init = append(q.init, x)
		if len(q.init) == 5 {
			sort.Float64s(q.init)
			copy(q.heights[:], q.init)
			for i := range q.pos {
				q.pos[i] = float64(i + 1)
			}
			q.want = [5]float64{1, 1 + 2*q.p, 1 + 4*q.p, 3 + 2*q.p, 5}
		}
		return
	}
	// Locate the cell containing x and update the extreme markers.
	var k int
	switch {
	case x < q.heights[0]:
		q.heights[0] = x
		k = 0
	case x >= q.heights[4]:
		q.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.inc[i]
	}
	// Adjust the three interior markers with the piecewise-parabolic
	// formula, falling back to linear when the parabola would cross a
	// neighbour.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := q.parabolic(i, s)
			if q.heights[i-1] < h && h < q.heights[i+1] {
				q.heights[i] = h
			} else {
				q.heights[i] = q.linear(i, s)
			}
			q.pos[i] += s
		}
	}
}

func (q *P2Quantile) parabolic(i int, s float64) float64 {
	num1 := q.pos[i] - q.pos[i-1] + s
	num2 := q.pos[i+1] - q.pos[i] - s
	den := q.pos[i+1] - q.pos[i-1]
	t1 := (q.heights[i+1] - q.heights[i]) / (q.pos[i+1] - q.pos[i])
	t2 := (q.heights[i] - q.heights[i-1]) / (q.pos[i] - q.pos[i-1])
	return q.heights[i] + s/den*(num1*t1+num2*t2)
}

func (q *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return q.heights[i] + s*(q.heights[j]-q.heights[i])/(q.pos[j]-q.pos[i])
}

// N returns the number of observations fed so far.
func (q *P2Quantile) N() int { return q.n }

// Value returns the current quantile estimate; NaN before any observation.
func (q *P2Quantile) Value() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	if len(q.init) < 5 {
		// Fewer than five observations: interpolate on the sorted sample.
		s := append([]float64(nil), q.init...)
		sort.Float64s(s)
		pos := q.p * float64(len(s)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return s[lo]
		}
		frac := pos - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	return q.heights[2]
}

// Merge is intentionally absent: P² markers cannot be merged exactly,
// which is precisely why the engine switched to exact order statistics
// over the retained makespan vector.
