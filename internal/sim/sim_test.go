package sim

import (
	"errors"
	"math"
	"testing"

	"robsched/internal/dag"
	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

func testWorkload(t testing.TB, seed uint64, n, m int, meanUL float64) *platform.Workload {
	t.Helper()
	r := rng.New(seed)
	p := gen.PaperParams()
	p.N, p.M, p.MeanUL = n, m, meanUL
	w, err := gen.Random(p, r)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func heftSchedule(t testing.TB, w *platform.Workload) *schedule.Schedule {
	t.Helper()
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOptionsValidate(t *testing.T) {
	w := testWorkload(t, 1, 10, 2, 2)
	s := heftSchedule(t, w)
	if _, err := Evaluate(s, Options{Realizations: 0}, rng.New(1)); err == nil {
		t.Error("zero realizations accepted")
	}
	if _, err := Evaluate(s, Options{Realizations: 10, Workers: -1}, rng.New(1)); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := Evaluate(s, Options{Realizations: 10, BatchSize: -1}, rng.New(1)); err == nil {
		t.Error("negative batch size accepted")
	}
	if _, err := EvaluateAll(nil, PaperOptions(), rng.New(1)); err == nil {
		t.Error("empty schedule list accepted")
	}
	if _, err := RealizeAll(nil, PaperOptions(), rng.New(1)); err == nil {
		t.Error("empty schedule list accepted by RealizeAll")
	}
}

// TestOptionsValidateTyped pins down the typed-error contract: every
// invalid field yields an *OptionError naming the field, instead of a
// silent clamp or an anonymous error.
func TestOptionsValidateTyped(t *testing.T) {
	cases := []struct {
		opt   Options
		field string
	}{
		{Options{Realizations: 0}, "Realizations"},
		{Options{Realizations: -5}, "Realizations"},
		{Options{Realizations: 10, Workers: -1}, "Workers"},
		{Options{Realizations: 10, BatchSize: -3}, "BatchSize"},
		{Options{Realizations: 10, Deadline: math.NaN()}, "Deadline"},
		{Options{Realizations: 10, Deadline: math.Inf(1)}, "Deadline"},
		{Options{Realizations: 10, Deadline: math.Inf(-1)}, "Deadline"},
	}
	for i, c := range cases {
		err := c.opt.Validate()
		if err == nil {
			t.Errorf("case %d accepted: %+v", i, c.opt)
			continue
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("case %d: error %v is not an *OptionError", i, err)
			continue
		}
		if oe.Field != c.field {
			t.Errorf("case %d: error names field %q, want %q", i, oe.Field, c.field)
		}
		if oe.Error() == "" {
			t.Errorf("case %d: empty error text", i)
		}
	}
	good := []Options{
		{Realizations: 1},
		{Realizations: 1000, Workers: 8, BatchSize: 64, Deadline: 123.5},
		PaperOptions(),
	}
	for i, opt := range good {
		if err := opt.Validate(); err != nil {
			t.Errorf("valid options %d rejected: %v", i, err)
		}
	}
}

func TestDeterministicWorkloadHasZeroTardiness(t *testing.T) {
	// With UL == 1 everywhere, every realization equals the expectation:
	// no tardiness, no misses, R1 and R2 infinite.
	r := rng.New(2)
	g, err := gen.RandomGraph(gen.PaperParams(), r)
	if err != nil {
		t.Fatal(err)
	}
	exec := gen.ExecMatrix(g.N(), 4, 20, 0.5, 0.5, r)
	w, err := platform.DeterministicWorkload(g, platform.UniformSystem(4, 1), exec)
	if err != nil {
		t.Fatal(err)
	}
	s := heftSchedule(t, w)
	m, err := Evaluate(s, Options{Realizations: 200}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanTardiness != 0 || m.MissRate != 0 {
		t.Fatalf("deterministic workload tardy: δ=%g α=%g", m.MeanTardiness, m.MissRate)
	}
	if !math.IsInf(m.R1, 1) || !math.IsInf(m.R2, 1) {
		t.Fatalf("R1=%g R2=%g, want +Inf", m.R1, m.R2)
	}
	if math.Abs(m.MeanMakespan-m.M0) > 1e-9 || m.StdMakespan > 1e-9 {
		t.Fatalf("makespan distribution not degenerate: mean %g std %g (M0 %g)",
			m.MeanMakespan, m.StdMakespan, m.M0)
	}
}

func TestMetricsBasicSanity(t *testing.T) {
	w := testWorkload(t, 5, 40, 4, 3)
	s := heftSchedule(t, w)
	m, err := Evaluate(s, Options{Realizations: 500}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if m.Realizations != 500 {
		t.Errorf("Realizations = %d", m.Realizations)
	}
	if m.MinMakespan > m.MeanMakespan || m.MeanMakespan > m.MaxMakespan {
		t.Errorf("makespan order broken: min %g mean %g max %g",
			m.MinMakespan, m.MeanMakespan, m.MaxMakespan)
	}
	if m.MissRate < 0 || m.MissRate > 1 {
		t.Errorf("MissRate = %g", m.MissRate)
	}
	if m.MeanTardiness < 0 {
		t.Errorf("MeanTardiness = %g", m.MeanTardiness)
	}
	if m.R1 <= 0 || m.R2 <= 0 {
		t.Errorf("R1=%g R2=%g must be positive", m.R1, m.R2)
	}
	// A tight HEFT schedule under UL=3 should actually miss sometimes.
	if m.MissRate == 0 {
		t.Error("HEFT schedule never missed under heavy uncertainty; suspicious")
	}
	// Realized makespans must be at least the best-case critical path and
	// the mean should exceed zero sanity bounds.
	if m.MinMakespan <= 0 {
		t.Errorf("MinMakespan = %g", m.MinMakespan)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// Metrics come from the per-realization makespan vector in realization
	// order, so every field — quantiles included — must be bit-identical
	// across worker counts.
	w := testWorkload(t, 9, 60, 4, 4)
	s := heftSchedule(t, w)
	serial, err := Evaluate(s, Options{Realizations: 300, Workers: 1}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Evaluate(s, Options{Realizations: 300, Workers: 7}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !metricsIdentical(serial, parallel) {
		t.Fatalf("parallel differs from serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

// metricsIdentical reports bit-identity of every metric field, treating NaN
// as equal to NaN (DeadlineMissRate is NaN when no deadline is set).
func metricsIdentical(a, b Metrics) bool {
	eq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	return a.M0 == b.M0 && a.Realizations == b.Realizations &&
		eq(a.MeanMakespan, b.MeanMakespan) && eq(a.StdMakespan, b.StdMakespan) &&
		eq(a.MinMakespan, b.MinMakespan) && eq(a.MaxMakespan, b.MaxMakespan) &&
		eq(a.MeanTardiness, b.MeanTardiness) && eq(a.MissRate, b.MissRate) &&
		eq(a.R1, b.R1) && eq(a.R2, b.R2) &&
		eq(a.P50, b.P50) && eq(a.P95, b.P95) && eq(a.P99, b.P99) &&
		eq(a.DeadlineMissRate, b.DeadlineMissRate)
}

func TestEvaluateDeterministicPerSeed(t *testing.T) {
	w := testWorkload(t, 13, 30, 3, 2)
	s := heftSchedule(t, w)
	a, err := Evaluate(s, Options{Realizations: 100}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(s, Options{Realizations: 100}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanMakespan != b.MeanMakespan || a.StdMakespan != b.StdMakespan ||
		a.MissRate != b.MissRate || a.MeanTardiness != b.MeanTardiness ||
		a.P95 != b.P95 {
		t.Fatalf("same seed gave different metrics:\n%+v\n%+v", a, b)
	}
}

func TestEvaluateAllCommonRandomNumbers(t *testing.T) {
	w := testWorkload(t, 15, 30, 3, 2)
	s := heftSchedule(t, w)
	// The same schedule twice under common random numbers must yield
	// identical metrics.
	ms, err := EvaluateAll([]*schedule.Schedule{s, s}, Options{Realizations: 200}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].MeanMakespan != ms[1].MeanMakespan || ms[0].MissRate != ms[1].MissRate ||
		ms[0].MeanTardiness != ms[1].MeanTardiness || ms[0].P95 != ms[1].P95 {
		t.Fatalf("identical schedules diverged under common random numbers:\n%+v\n%+v", ms[0], ms[1])
	}
}

func TestEvaluateAllRejectsMixedWorkloads(t *testing.T) {
	w1 := testWorkload(t, 19, 10, 2, 2)
	w2 := testWorkload(t, 20, 10, 2, 2)
	s1 := heftSchedule(t, w1)
	s2 := heftSchedule(t, w2)
	if _, err := EvaluateAll([]*schedule.Schedule{s1, s2}, Options{Realizations: 10}, rng.New(1)); err == nil {
		t.Fatal("mixed workloads accepted")
	}
}

// TestSlackImprovesRobustness is the library-level statement of the paper's
// central claim (Section 5.1): between two schedules of the same workload,
// the one with substantially larger average slack should score better on
// both robustness metrics.
func TestSlackImprovesRobustness(t *testing.T) {
	w := testWorkload(t, 21, 50, 4, 4)
	tight := heftSchedule(t, w)
	// A deliberately padded schedule: serialize everything on the fastest
	// processor ordering — large makespan, large slack? No: serial schedules
	// have zero slack. Instead, build a schedule that spreads tasks with
	// big gaps: put every task alone in topological order across
	// processors round-robin, which yields large communication stalls and
	// hence slack windows on non-critical tasks.
	order := w.G.TopologicalOrder()
	proc := make([]int, w.N())
	for i, v := range order {
		proc[v] = i % w.M()
	}
	spread, err := schedule.FromOrder(w, order, proc)
	if err != nil {
		t.Fatal(err)
	}
	if spread.AvgSlack() <= tight.AvgSlack() {
		t.Skipf("fixture failed to produce a high-slack schedule (%g <= %g)",
			spread.AvgSlack(), tight.AvgSlack())
	}
	ms, err := EvaluateAll([]*schedule.Schedule{tight, spread}, Options{Realizations: 800}, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if ms[1].MeanTardiness >= ms[0].MeanTardiness {
		t.Errorf("higher slack did not reduce tardiness: %g >= %g",
			ms[1].MeanTardiness, ms[0].MeanTardiness)
	}
}

func TestRealize(t *testing.T) {
	w := testWorkload(t, 25, 20, 3, 2)
	s := heftSchedule(t, w)
	r := rng.New(29)
	dur := Realize(s, r)
	if len(dur) != w.N() {
		t.Fatalf("Realize returned %d durations", len(dur))
	}
	for i, d := range dur {
		b := w.BCET.At(i, s.Proc(i))
		hi := (2*w.UL.At(i, s.Proc(i)) - 1) * b
		if d < b || d > hi {
			t.Fatalf("duration %g outside [%g, %g]", d, b, hi)
		}
	}
	// A realized makespan must be at least the all-best-case makespan.
	bcet := make([]float64, w.N())
	for i := range bcet {
		bcet[i] = w.BCET.At(i, s.Proc(i))
	}
	if s.MakespanWith(dur) < s.MakespanWith(bcet)-1e-9 {
		t.Fatal("realized makespan below best-case makespan")
	}
}

func TestAccumArithmetic(t *testing.T) {
	vals := []float64{3, 7, 1, 9, 4, 6}
	const m0 = 5.0
	single := newAccum()
	for _, v := range vals {
		single.add(v, m0)
	}
	got := single.metrics(m0)
	// Hand-checked values: misses are 7, 9, 6 → α = 0.5, δ = (2/5+4/5+1/5)/6.
	if got.MissRate != 0.5 {
		t.Errorf("MissRate = %g, want 0.5", got.MissRate)
	}
	if want := (2.0/5 + 4.0/5 + 1.0/5) / 6; math.Abs(got.MeanTardiness-want) > 1e-12 {
		t.Errorf("MeanTardiness = %g, want %g", got.MeanTardiness, want)
	}
	if got.R2 != 2 {
		t.Errorf("R2 = %g, want 2", got.R2)
	}
	if got.MinMakespan != 1 || got.MaxMakespan != 9 {
		t.Errorf("min/max = %g/%g", got.MinMakespan, got.MaxMakespan)
	}
}

func TestSingleRealization(t *testing.T) {
	w := testWorkload(t, 31, 10, 2, 2)
	s := heftSchedule(t, w)
	m, err := Evaluate(s, Options{Realizations: 1}, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	if m.Realizations != 1 || m.MinMakespan != m.MaxMakespan {
		t.Fatalf("single realization metrics inconsistent: %+v", m)
	}
}

// TestTardinessDiamond pins the metric arithmetic on the tiny deterministic
// diamond where realizations can be enumerated by hand via a two-point UL.
func TestTardinessDiamond(t *testing.T) {
	b := dag.NewBuilder(2)
	b.MustAddEdge(0, 1, 0)
	g := b.MustBuild()
	bcet, _ := platform.MatrixFromRows([][]float64{{10}, {10}})
	ul, _ := platform.MatrixFromRows([][]float64{{1.5}, {1.5}})
	w, err := platform.NewWorkload(g, platform.UniformSystem(1, 1), bcet, ul)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.FromOrder(w, []int{0, 1}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Durations ~ U(10, 20) each; M0 = 15+15 = 30; M = d0+d1 with mean 30.
	if s.Makespan() != 30 {
		t.Fatalf("M0 = %g, want 30", s.Makespan())
	}
	m, err := Evaluate(s, Options{Realizations: 20000}, rng.New(35))
	if err != nil {
		t.Fatal(err)
	}
	// By symmetry the miss rate is 1/2 and E[δ] = E[max(0, S-30)]/30 where
	// S is the sum of two U(10,20): E[max(0,S-30)] = 10/6 ≈ 1.6667, so
	// E[δ] ≈ 0.05556 and R1 ≈ 18, R2 ≈ 2.
	if math.Abs(m.MissRate-0.5) > 0.02 {
		t.Errorf("MissRate = %g, want ~0.5", m.MissRate)
	}
	if math.Abs(m.MeanTardiness-1.0/18) > 0.004 {
		t.Errorf("MeanTardiness = %g, want ~%g", m.MeanTardiness, 1.0/18)
	}
	if math.Abs(m.R2-2) > 0.1 {
		t.Errorf("R2 = %g, want ~2", m.R2)
	}
}

func BenchmarkEvaluate1000x100(b *testing.B) {
	w := testWorkload(b, 1, 100, 8, 4)
	s := heftSchedule(b, w)
	opt := PaperOptions()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(s, opt, r); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDeadlineForConfidence(t *testing.T) {
	w := testWorkload(t, 61, 40, 4, 4)
	s := heftSchedule(t, w)
	d95, err := DeadlineForConfidence(s, 0.95, Options{Realizations: 1500}, rng.New(63))
	if err != nil {
		t.Fatal(err)
	}
	d50, err := DeadlineForConfidence(s, 0.5, Options{Realizations: 1500}, rng.New(63))
	if err != nil {
		t.Fatal(err)
	}
	if d50 >= d95 {
		t.Fatalf("d50 %g >= d95 %g", d50, d95)
	}
	// Promising d95 must actually hold ~95% of the time on fresh samples.
	m, err := Evaluate(s, Options{Realizations: 1500, Deadline: d95}, rng.New(64))
	if err != nil {
		t.Fatal(err)
	}
	if m.DeadlineMissRate < 0.01 || m.DeadlineMissRate > 0.10 {
		t.Errorf("d95 deadline missed %g of the time, want ~0.05", m.DeadlineMissRate)
	}
	if _, err := DeadlineForConfidence(s, 0, Options{Realizations: 10}, rng.New(1)); err == nil {
		t.Error("confidence 0 accepted")
	}
	if _, err := DeadlineForConfidence(s, 1.5, Options{Realizations: 10}, rng.New(1)); err == nil {
		t.Error("confidence > 1 accepted")
	}
	// confidence 1 returns the sample maximum.
	dMax, err := DeadlineForConfidence(s, 1, Options{Realizations: 200}, rng.New(65))
	if err != nil {
		t.Fatal(err)
	}
	if dMax < d95 {
		t.Errorf("confidence-1 deadline %g below d95 %g", dMax, d95)
	}
}

// TestAntitheticReducesEstimatorVariance: with paired mirrored draws, the
// variance of the MeanMakespan estimator across repeated evaluations must
// drop relative to independent sampling — makespan is monotone in all
// durations, so the pairs are negatively correlated.
func TestAntitheticReducesEstimatorVariance(t *testing.T) {
	w := testWorkload(t, 71, 40, 4, 4)
	s := heftSchedule(t, w)
	const reps = 40
	const nReal = 60
	variance := func(anti bool) float64 {
		var means []float64
		for k := 0; k < reps; k++ {
			m, err := Evaluate(s, Options{Realizations: nReal, Antithetic: anti}, rng.New(uint64(1000+k)))
			if err != nil {
				t.Fatal(err)
			}
			means = append(means, m.MeanMakespan)
		}
		mu := 0.0
		for _, x := range means {
			mu += x
		}
		mu /= reps
		v := 0.0
		for _, x := range means {
			v += (x - mu) * (x - mu)
		}
		return v / reps
	}
	vPlain := variance(false)
	vAnti := variance(true)
	if vAnti >= vPlain {
		t.Fatalf("antithetic variance %g not below plain %g", vAnti, vPlain)
	}
}

// TestAntitheticPreservesMean: the estimator stays unbiased.
func TestAntitheticPreservesMean(t *testing.T) {
	w := testWorkload(t, 73, 30, 3, 3)
	s := heftSchedule(t, w)
	plain, err := Evaluate(s, Options{Realizations: 4000}, rng.New(75))
	if err != nil {
		t.Fatal(err)
	}
	anti, err := Evaluate(s, Options{Realizations: 4000, Antithetic: true}, rng.New(76))
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(anti.MeanMakespan-plain.MeanMakespan) / plain.MeanMakespan; rel > 0.01 {
		t.Fatalf("antithetic mean off by %g", rel)
	}
}

// TestMirroredUniformBounds: the reference antithetic wrapper (and hence
// the engine's mirrored sampling, which equivalence tests pin against it)
// stays inside the interval and mirrors exactly.
func TestMirroredUniformBounds(t *testing.T) {
	r1 := rng.New(77)
	r2 := rng.New(77)
	m := refMirrored{r2}
	for i := 0; i < 1000; i++ {
		u := r1.Uniform(2, 10)
		v := m.Uniform(2, 10)
		if v < 2 || v > 10 {
			t.Fatalf("mirrored draw %g outside [2,10]", v)
		}
		if math.Abs((u+v)-12) > 1e-12 {
			t.Fatalf("draws %g and %g do not mirror around the midpoint", u, v)
		}
	}
}

func TestCVaR(t *testing.T) {
	w := testWorkload(t, 81, 30, 3, 4)
	s := heftSchedule(t, w)
	cvar95, err := CVaR(s, 0.95, Options{Realizations: 2000}, rng.New(83))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(s, Options{Realizations: 2000}, rng.New(83))
	if err != nil {
		t.Fatal(err)
	}
	// CVaR(0.95) exceeds the p95 quantile and the mean, and stays below
	// the sampled maximum.
	if cvar95 < m.P95 {
		t.Errorf("CVaR95 %g below p95 %g", cvar95, m.P95)
	}
	if cvar95 <= m.MeanMakespan {
		t.Errorf("CVaR95 %g not above mean %g", cvar95, m.MeanMakespan)
	}
	if cvar95 > m.MaxMakespan+1e-9 {
		t.Errorf("CVaR95 %g above max %g", cvar95, m.MaxMakespan)
	}
	// Monotone in q.
	cvar50, err := CVaR(s, 0.5, Options{Realizations: 2000}, rng.New(83))
	if err != nil {
		t.Fatal(err)
	}
	if cvar50 >= cvar95 {
		t.Errorf("CVaR50 %g >= CVaR95 %g", cvar50, cvar95)
	}
	if _, err := CVaR(s, 0, Options{Realizations: 10}, rng.New(1)); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := CVaR(s, 1, Options{Realizations: 10}, rng.New(1)); err == nil {
		t.Error("q=1 accepted")
	}
}
