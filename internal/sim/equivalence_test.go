package sim

import (
	"fmt"
	"testing"

	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// refMirrored reflects every uniform draw of the wrapped source across its
// interval midpoint — the antithetic counterpart stream, as the pre-batching
// scalar engine implemented it.
type refMirrored struct {
	src *rng.Source
}

func (m refMirrored) Uniform(a, b float64) float64 {
	return a + b - m.src.Uniform(a, b)
}

// refMakespans is an independent reimplementation of the pre-batching scalar
// engine: one realization at a time, full n×m matrix sampled through
// Workload.SampleDuration, one MakespanInto pass per schedule. The batched
// engine must reproduce it bit for bit for every worker count and batch
// width.
func refMakespans(tb testing.TB, ss []*schedule.Schedule, opt Options, root *rng.Source) [][]float64 {
	tb.Helper()
	w := ss[0].Workload()
	n, m := w.N(), w.M()
	seeds := make([]uint64, opt.Realizations)
	for i := range seeds {
		if opt.Antithetic && i%2 == 1 {
			seeds[i] = seeds[i-1]
		} else {
			seeds[i] = root.Uint64()
		}
	}
	out := make([][]float64, len(ss))
	for j := range out {
		out[j] = make([]float64, opt.Realizations)
	}
	durs := make([]float64, n*m)
	dur := make([]float64, n)
	startBuf := make([]float64, n)
	finishBuf := make([]float64, n)
	for i := 0; i < opt.Realizations; i++ {
		r := rng.New(seeds[i])
		var src interface{ Uniform(a, b float64) float64 } = r
		if opt.Antithetic && i%2 == 1 {
			src = refMirrored{r}
		}
		for t := 0; t < n; t++ {
			for p := 0; p < m; p++ {
				durs[t*m+p] = w.SampleDuration(t, p, src)
			}
		}
		for j, s := range ss {
			for t := 0; t < n; t++ {
				dur[t] = durs[t*m+s.Proc(t)]
			}
			out[j][i] = s.MakespanInto(dur, startBuf, finishBuf)
		}
	}
	return out
}

// equivSchedules builds a small family of schedules over one workload: HEFT
// plus deterministic round-robin variants.
func equivSchedules(tb testing.TB, w *platform.Workload, count int) []*schedule.Schedule {
	return benchSchedules(tb, w, count)
}

// TestBatchedMatchesScalar is the batched-vs-scalar equivalence property:
// over random workloads (including a fully deterministic one, which
// exercises the no-draw degenerate sampling path), batch widths 1, 3, 8 and
// 17, several worker counts and antithetic on/off, every per-realization
// makespan and every metric field must be bit-identical to the scalar
// reference pass.
func TestBatchedMatchesScalar(t *testing.T) {
	workloads := []*platform.Workload{
		testWorkload(t, 101, 30, 4, 4),
		testWorkload(t, 103, 57, 3, 2),
		testWorkload(t, 105, 100, 8, 6),
		testWorkload(t, 107, 23, 5, 1), // UL == 1: degenerate distributions
	}
	const realizations = 101 // odd: tail batch + an unpaired antithetic draw
	for wi, w := range workloads {
		ss := equivSchedules(t, w, 3)
		for _, anti := range []bool{false, true} {
			base := Options{Realizations: realizations, Antithetic: anti}
			ref := refMakespans(t, ss, base, rng.New(uint64(900+wi)))
			refMetrics, err := EvaluateAll(ss, Options{Realizations: realizations, Antithetic: anti, Workers: 1, BatchSize: 1}, rng.New(uint64(900+wi)))
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range []int{1, 3, 8, 17} {
				for _, workers := range []int{1, 2, 5} {
					opt := Options{
						Realizations: realizations,
						Workers:      workers,
						Antithetic:   anti,
						BatchSize:    batch,
					}
					label := fmt.Sprintf("workload=%d anti=%v batch=%d workers=%d", wi, anti, batch, workers)
					mks, err := RealizeAll(ss, opt, rng.New(uint64(900+wi)))
					if err != nil {
						t.Fatal(err)
					}
					for j := range ss {
						for i := range mks[j] {
							if mks[j][i] != ref[j][i] {
								t.Fatalf("%s: schedule %d realization %d: batched %v != scalar %v",
									label, j, i, mks[j][i], ref[j][i])
							}
						}
					}
					ms, err := EvaluateAll(ss, opt, rng.New(uint64(900+wi)))
					if err != nil {
						t.Fatal(err)
					}
					for j := range ss {
						if !metricsIdentical(ms[j], refMetrics[j]) {
							t.Fatalf("%s: schedule %d metrics diverged:\n%+v\n%+v",
								label, j, ms[j], refMetrics[j])
						}
					}
				}
			}
		}
	}
}

// TestSharedEngineViews: CVaR and DeadlineForConfidence are views over the
// same batched engine, so with equal Options and root seed they must be
// exactly consistent with Evaluate's sample — the 95% confidence deadline
// IS the P95 order statistic, and CVaR at q is at least the q-quantile —
// for every worker count, batch width and antithetic setting.
func TestSharedEngineViews(t *testing.T) {
	w := testWorkload(t, 111, 40, 4, 4)
	s := heftSchedule(t, w)
	for _, workers := range []int{1, 4} {
		for _, anti := range []bool{false, true} {
			opt := Options{Realizations: 400, Workers: workers, Antithetic: anti, BatchSize: 8}
			m, err := Evaluate(s, opt, rng.New(13))
			if err != nil {
				t.Fatal(err)
			}
			d95, err := DeadlineForConfidence(s, 0.95, opt, rng.New(13))
			if err != nil {
				t.Fatal(err)
			}
			if d95 != m.P95 {
				t.Errorf("workers=%d anti=%v: DeadlineForConfidence(0.95) %v != P95 %v",
					workers, anti, d95, m.P95)
			}
			cvar95, err := CVaR(s, 0.95, opt, rng.New(13))
			if err != nil {
				t.Fatal(err)
			}
			if cvar95 < m.P95 || cvar95 > m.MaxMakespan {
				t.Errorf("workers=%d anti=%v: CVaR95 %v outside [P95 %v, max %v]",
					workers, anti, cvar95, m.P95, m.MaxMakespan)
			}
			// Worker-independence of the derived views themselves.
			d95Serial, err := DeadlineForConfidence(s, 0.95, Options{Realizations: 400, Workers: 1, Antithetic: anti, BatchSize: 3}, rng.New(13))
			if err != nil {
				t.Fatal(err)
			}
			if d95 != d95Serial {
				t.Errorf("anti=%v: deadline varies with workers/batch: %v vs %v", anti, d95, d95Serial)
			}
		}
	}
}
