package sim

// Tests for the duration-model extension: lognormal and bounded-Pareto
// duration distributions and the correlated (shared per-processor load)
// sampling mode. The invariants pinned here are the ones the scenario layer
// depends on: bit-identity across worker counts and batch widths for every
// model, exact antithetic mirroring (the mirrored realization evaluates the
// same transforms at exactly 1−u), moment matching of the lognormal tables,
// and the paper-gap regression — P95 makespan under correlated load strictly
// dominates the independent model at equal marginal variance.

import (
	"errors"
	"math"
	"testing"

	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// modelCases enumerates every non-default (Model, Corr) combination the
// general sampling path serves.
func modelCases() []Options {
	return []Options{
		{Model: ModelLognormal},
		{Model: ModelBoundedPareto, ParetoShape: 1.5},
		{Model: ModelUniform, Corr: CorrShared, LoadCOV: 0.4},
		{Model: ModelUniform, Corr: CorrIndep, LoadCOV: 0.4},
		{Model: ModelLognormal, Corr: CorrShared, LoadCOV: 0.3},
		{Model: ModelBoundedPareto, ParetoShape: 2.5, Corr: CorrIndep, LoadCOV: 0.25},
	}
}

func TestModelOptionsValidate(t *testing.T) {
	cases := []struct {
		opt   Options
		field string
	}{
		{Options{Realizations: 10, Model: numDurationModels}, "Model"},
		{Options{Realizations: 10, Corr: numCorrelations}, "Corr"},
		{Options{Realizations: 10, LoadCOV: math.NaN()}, "LoadCOV"},
		{Options{Realizations: 10, LoadCOV: -0.5}, "LoadCOV"},
		{Options{Realizations: 10, Corr: CorrShared}, "LoadCOV"},
		{Options{Realizations: 10, Corr: CorrIndep}, "LoadCOV"},
		{Options{Realizations: 10, ParetoShape: math.Inf(1)}, "ParetoShape"},
		{Options{Realizations: 10, ParetoShape: -1}, "ParetoShape"},
		{Options{Realizations: 10, Model: ModelBoundedPareto}, "ParetoShape"},
	}
	for i, c := range cases {
		err := c.opt.Validate()
		if err == nil {
			t.Errorf("case %d accepted: %+v", i, c.opt)
			continue
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("case %d: error %v is not an *OptionError", i, err)
			continue
		}
		if oe.Field != c.field {
			t.Errorf("case %d: error names field %q, want %q", i, oe.Field, c.field)
		}
	}
	for i, opt := range modelCases() {
		opt.Realizations = 10
		if err := opt.Validate(); err != nil {
			t.Errorf("valid model case %d rejected: %v", i, err)
		}
	}
}

func TestModelParseRoundTrip(t *testing.T) {
	for m := ModelUniform; m < numDurationModels; m++ {
		got, err := ParseDurationModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseDurationModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	for c := CorrNone; c < numCorrelations; c++ {
		got, err := ParseCorrelation(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCorrelation(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseDurationModel("cauchy"); err == nil {
		t.Error("unknown duration model accepted")
	}
	if _, err := ParseCorrelation("copula"); err == nil {
		t.Error("unknown correlation mode accepted")
	}
}

// TestModelWorkerBatchInvariance pins the bit-identity contract for every
// model × correlation combination: the realized makespan vectors are exactly
// equal for any Workers/BatchSize setting, antithetic or not.
func TestModelWorkerBatchInvariance(t *testing.T) {
	w := testWorkload(t, 11, 30, 4, 4)
	ss := []*schedule.Schedule{heftSchedule(t, w)}
	for _, anti := range []bool{false, true} {
		for ci, base := range modelCases() {
			base.Realizations = 97 // odd, not a batch multiple
			base.Antithetic = anti
			ref, err := RealizeAll(ss, withWB(base, 1, 1), rng.New(42))
			if err != nil {
				t.Fatalf("case %d: %v", ci, err)
			}
			for _, wb := range [][2]int{{1, 8}, {4, 8}, {4, 1}, {3, 32}} {
				got, err := RealizeAll(ss, withWB(base, wb[0], wb[1]), rng.New(42))
				if err != nil {
					t.Fatalf("case %d workers=%d batch=%d: %v", ci, wb[0], wb[1], err)
				}
				for i := range ref[0] {
					if got[0][i] != ref[0][i] {
						t.Fatalf("case %d anti=%v workers=%d batch=%d: realization %d = %v, want %v",
							ci, anti, wb[0], wb[1], i, got[0][i], ref[0][i])
					}
				}
			}
		}
	}
}

func withWB(o Options, workers, batch int) Options {
	o.Workers = workers
	o.BatchSize = batch
	return o
}

// TestGeneralMirrorExact is the white-box antithetic contract for the
// general path: the mirrored realization must evaluate exactly the same
// transforms at exactly 1−u, for every duration model and correlation mode.
// The expected matrix is recomputed here from the raw uniform block by an
// independent (test-local) implementation of the spec.
func TestGeneralMirrorExact(t *testing.T) {
	w := testWorkload(t, 12, 15, 3, 3)
	n, m := w.N(), w.M()
	for ci, opt := range modelCases() {
		sp := newSampler(w, opt)
		if !sp.general() {
			t.Fatalf("case %d: expected general sampler", ci)
		}
		u := make([]float64, sp.scratch())
		load := make([]float64, m)
		fwd := make([]float64, n*m)
		mir := make([]float64, n*m)
		const seed = 777
		sp.sampleGeneralInto(fwd, 1, 0, rng.New(seed), u, load, false)
		sp.sampleGeneralInto(mir, 1, 0, rng.New(seed), u, load, true)

		// Reference: draw the same block, flip every uniform, apply the
		// documented transforms.
		ref := make([]float64, sp.scratch())
		rng.New(seed).Float64s(ref)
		for i := range ref {
			ref[i] = 1 - ref[i]
		}
		j := sp.loadDraws
		for k := 0; k < n*m; k++ {
			v := sp.lo[k]
			if sp.width[k] > 0 {
				uu := ref[j]
				j++
				switch opt.Model {
				case ModelUniform:
					v = sp.lo[k] + sp.width[k]*uu
				case ModelLognormal:
					v = rng.LogNormalQuantile(sp.mu[k], sp.sigma[k], uu)
				case ModelBoundedPareto:
					v = rng.BoundedParetoQuantile(sp.lo[k], sp.lo[k]+sp.width[k], opt.ParetoShape, uu)
				}
			}
			switch opt.Corr {
			case CorrShared:
				v *= rng.LogNormalQuantile(sp.loadMu, sp.loadSigma, ref[k%m])
			case CorrIndep:
				v *= rng.LogNormalQuantile(sp.loadMu, sp.loadSigma, ref[k])
			}
			if mir[k] != v {
				t.Fatalf("case %d entry %d: mirrored sample %v, want exact %v", ci, k, mir[k], v)
			}
		}
		// Sanity: the forward and mirrored draws must actually differ
		// somewhere (the mirror is not the identity).
		same := true
		for k := range fwd {
			if fwd[k] != mir[k] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("case %d: mirrored realization identical to forward", ci)
		}
	}
}

// TestLognormalMomentMatch pins the sampler's lognormal parameter tables:
// per non-degenerate pair, exp(mu + sigma²/2) must reproduce the uniform
// model's mean (b+hi)/2 and exp(2mu+sigma²)(exp(sigma²)−1) its variance
// (hi−b)²/12, to floating-point accuracy.
func TestLognormalMomentMatch(t *testing.T) {
	w := testWorkload(t, 13, 20, 4, 3)
	sp := newSampler(w, Options{Model: ModelLognormal})
	for k := range sp.lo {
		if sp.width[k] <= 0 {
			continue
		}
		wantMean := sp.sum[k] / 2
		wantVar := sp.width[k] * sp.width[k] / 12
		s2 := sp.sigma[k] * sp.sigma[k]
		gotMean := math.Exp(sp.mu[k] + s2/2)
		gotVar := math.Exp(2*sp.mu[k]+s2) * (math.Exp(s2) - 1)
		if math.Abs(gotMean-wantMean) > 1e-9*wantMean {
			t.Fatalf("pair %d: lognormal mean %v, want %v", k, gotMean, wantMean)
		}
		if math.Abs(gotVar-wantVar) > 1e-9*wantVar {
			t.Fatalf("pair %d: lognormal variance %v, want %v", k, gotVar, wantVar)
		}
	}
}

// TestEqualMarginals pins the CorrShared/CorrIndep construction: each matrix
// entry has the identical marginal distribution under both modes (only the
// cross-task dependence differs). Checked empirically entry-wise: sample
// mean and variance of a fixed entry agree within Monte-Carlo tolerance.
func TestEqualMarginals(t *testing.T) {
	w := testWorkload(t, 14, 6, 2, 4)
	n, m := w.N(), w.M()
	const N = 30000
	moments := func(corr Correlation) (mean, variance float64) {
		sp := newSampler(w, Options{Corr: corr, LoadCOV: 0.5})
		u := make([]float64, sp.scratch())
		load := make([]float64, m)
		dst := make([]float64, n*m)
		root := rng.New(55)
		var sum, sumsq float64
		for i := 0; i < N; i++ {
			sp.sampleGeneralInto(dst, 1, 0, rng.New(root.Uint64()), u, load, false)
			v := dst[0] // entry (task 0, proc 0)
			sum += v
			sumsq += v * v
		}
		mean = sum / N
		variance = sumsq/N - mean*mean
		return
	}
	mS, vS := moments(CorrShared)
	mI, vI := moments(CorrIndep)
	if rel := math.Abs(mS-mI) / mS; rel > 0.02 {
		t.Errorf("entry means diverge: shared %v vs indep %v (rel %.3f)", mS, mI, rel)
	}
	if rel := math.Abs(vS-vI) / vS; rel > 0.10 {
		t.Errorf("entry variances diverge: shared %v vs indep %v (rel %.3f)", vS, vI, rel)
	}
}

// TestCorrSharedP95Dominance is the paper-gap regression test: for a fixed
// schedule, the P95 makespan under correlated per-processor load strictly
// dominates the independent model at equal marginal variance. Averaging over
// independent per-entry factors concentrates the makespan; a shared factor
// cannot be averaged away, so the tail is strictly heavier. The margin is
// pinned (not just > 1) so a silent weakening of the correlation plumbing
// fails the test.
func TestCorrSharedP95Dominance(t *testing.T) {
	w := testWorkload(t, 15, 50, 4, 3)
	ss := []*schedule.Schedule{heftSchedule(t, w)}
	opt := Options{Realizations: 4000, Workers: 2, LoadCOV: 0.5}
	p95 := func(corr Correlation) float64 {
		o := opt
		o.Corr = corr
		ms, err := EvaluateAll(ss, o, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		return ms[0].P95
	}
	shared, indep := p95(CorrShared), p95(CorrIndep)
	ratio := shared / indep
	t.Logf("P95 shared=%.4f indep=%.4f ratio=%.4f", shared, indep, ratio)
	if ratio <= 1.05 {
		t.Errorf("correlated-load P95 %.4f does not dominate independent P95 %.4f (ratio %.4f, want > 1.05)",
			shared, indep, ratio)
	}
}
