package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"robsched/internal/obs"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// TestRealizeAllTelemetry checks the registry against the engine's ground
// truth: counters equal the run's realization/batch arithmetic, the
// occupancy histogram accounts for every realization exactly once, and the
// per-worker claim counts sum to the batch count.
func TestRealizeAllTelemetry(t *testing.T) {
	w := testWorkload(t, 61, 25, 3, 2)
	s := heftSchedule(t, w)
	reg := obs.NewRegistry()
	opt := Options{Realizations: 103, BatchSize: 8, Workers: 3, Obs: reg}
	if _, err := RealizeAll([]*schedule.Schedule{s, s}, opt, rng.New(5)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	wantBatches := int64((103 + 7) / 8)
	checks := map[string]int64{
		"sim.realize_calls": 1,
		"sim.realizations":  103,
		"sim.schedules":     2,
		"sim.batches":       wantBatches,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	occ := snap.Histograms["sim.batch_occupancy"]
	if occ.Count != wantBatches || occ.Sum != 103 {
		t.Errorf("batch_occupancy count=%d sum=%g, want %d/103", occ.Count, occ.Sum, wantBatches)
	}
	claims := snap.Histograms["sim.worker_claims"]
	if claims.Count != 3 || claims.Sum != float64(wantBatches) {
		t.Errorf("worker_claims count=%d sum=%g, want 3/%d", claims.Count, claims.Sum, wantBatches)
	}
}

// TestRealizeAllTelemetryDoesNotPerturb pins that attaching observability
// leaves every realized makespan bit-identical to the uninstrumented run.
func TestRealizeAllTelemetryDoesNotPerturb(t *testing.T) {
	w := testWorkload(t, 62, 20, 3, 3)
	s := heftSchedule(t, w)
	plain, err := RealizeAll([]*schedule.Schedule{s}, Options{Realizations: 64}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	observed, err := RealizeAll([]*schedule.Schedule{s}, Options{
		Realizations: 64,
		Obs:          obs.NewRegistry(),
		Trace:        obs.NewTracer(&buf, 0),
	}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("telemetry changed the realized makespans")
	}
	// The trace carries the build_sampler and realize_all spans as JSONL.
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec obs.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		if rec.Scope == "sim" {
			names = append(names, rec.Name)
		}
	}
	if len(names) != 2 || names[0] != "build_sampler" || names[1] != "realize_all" {
		t.Fatalf("sim trace spans = %v, want [build_sampler realize_all]", names)
	}
}
