package sim

import (
	"math"
	"testing"

	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// TestRealizeSeededWindowsConcat is the exactness substrate of the dist
// scatter/gather coordinator: cutting the seed vector into arbitrary
// contiguous windows and realizing each window independently (with its
// global base index) must concatenate to exactly — bit for bit — the
// makespans of the single full-range run, for even and uneven partitions,
// with and without antithetic pairing.
func TestRealizeSeededWindowsConcat(t *testing.T) {
	w := testWorkload(t, 7, 40, 4, 4)
	ss := []*schedule.Schedule{heftSchedule(t, w)}
	{
		s2, err := schedule.FromOrder(w, w.G.TopologicalOrder(), make([]int, w.N()))
		if err != nil {
			t.Fatal(err)
		}
		ss = append(ss, s2)
	}
	const R = 101 // prime, so no partition divides it evenly
	partitions := [][]int{
		{R},
		{50, 51},
		{1, 100},
		{33, 33, 35},
		{25, 25, 25, 26},
		{13, 13, 13, 13, 12, 12, 12, 13},
		{1, 2, 3, 5, 90},
	}
	for _, antithetic := range []bool{false, true} {
		opt := Options{Realizations: R, Antithetic: antithetic}
		want, err := RealizeAll(ss, opt, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		seeds := SeedVector(R, antithetic, rng.New(42))
		for _, parts := range partitions {
			base := 0
			for _, width := range parts {
				window := seeds[base : base+width]
				// Vary batch size and workers per window: neither may
				// change a single bit.
				opt := Options{Antithetic: antithetic, BatchSize: 1 + base%7, Workers: 1 + base%3}
				got, err := RealizeSeeded(ss, opt, window, base)
				if err != nil {
					t.Fatal(err)
				}
				for j := range ss {
					if len(got[j]) != width {
						t.Fatalf("window [%d,%d): got %d makespans", base, base+width, len(got[j]))
					}
					for l, m := range got[j] {
						if math.Float64bits(m) != math.Float64bits(want[j][base+l]) {
							t.Fatalf("antithetic=%v partition %v: schedule %d realization %d: window %v != full %v",
								antithetic, parts, j, base+l, m, want[j][base+l])
						}
					}
				}
				base += width
			}
		}
	}
}

// TestSeedVectorMatchesRoot pins the derivation: without antithetic pairing
// the vector is the raw root stream; with it, odd entries replicate their
// even predecessor and the root advances only once per pair.
func TestSeedVectorMatchesRoot(t *testing.T) {
	plain := SeedVector(9, false, rng.New(5))
	r := rng.New(5)
	for i, s := range plain {
		if want := r.Uint64(); s != want {
			t.Fatalf("seed %d: %d != %d", i, s, want)
		}
	}
	anti := SeedVector(9, true, rng.New(5))
	r = rng.New(5)
	for i := 0; i < len(anti); i += 2 {
		want := r.Uint64()
		if anti[i] != want {
			t.Fatalf("antithetic seed %d: %d != %d", i, anti[i], want)
		}
		if i+1 < len(anti) && anti[i+1] != anti[i] {
			t.Fatalf("antithetic pair %d/%d seeds differ", i, i+1)
		}
	}
}

func TestRealizeSeededValidation(t *testing.T) {
	w := testWorkload(t, 1, 10, 2, 2)
	ss := []*schedule.Schedule{heftSchedule(t, w)}
	if _, err := RealizeSeeded(ss, Options{}, nil, 0); err == nil {
		t.Error("empty seed window accepted")
	}
	if _, err := RealizeSeeded(ss, Options{}, []uint64{1}, -1); err == nil {
		t.Error("negative base accepted")
	}
	if _, err := RealizeSeeded(nil, Options{}, []uint64{1}, 0); err == nil {
		t.Error("empty schedule list accepted")
	}
}
