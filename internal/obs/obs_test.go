package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if reg.Counter("x") != c {
		t.Fatal("same name must return the same counter")
	}
	g := reg.Gauge("y")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
	if reg.Gauge("y") != g {
		t.Fatal("same name must return the same gauge")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106) > 1e-12 {
		t.Fatalf("sum = %g, want 106", h.Sum())
	}
	snap := reg.Snapshot().Histograms["h"]
	// 0.5 and 1 land in the <=1 bucket, 1.5 in <=2, 3 in <=4, 100 in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, snap.Buckets[i], w, snap.Buckets)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must read zero")
	}
	g := reg.Gauge("y")
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read zero")
	}
	h := reg.Histogram("h", []float64{1})
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read zero")
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}

	var tr *Tracer
	tr.Event("e", F("a", 1))
	tr.Span("s")()
	tr.SnapshotRegistry("final", reg)
	if tr.Scope("sub") != nil {
		t.Fatal("nil tracer scope must stay nil")
	}
	if tr.Records() != nil || tr.Total() != 0 || tr.Err() != nil {
		t.Fatal("nil tracer must be inert")
	}
}

func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("c").Inc()
				reg.Histogram("h", []float64{0.5}).Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	h := reg.Histogram("h", nil)
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Fatalf("histogram count=%d sum=%g, want 8000/8000", h.Count(), h.Sum())
	}
}

func TestSnapshotSummaryDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Add(7)
	reg.Counter("a.count").Add(3)
	reg.Gauge("c.level").Set(1.5)
	reg.Histogram("d.hist", []float64{1}).Observe(2)
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("summary has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	for i, prefix := range []string{"a.count", "b.count", "c.level", "d.hist"} {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Fatalf("line %d = %q, want prefix %q", i, lines[i], prefix)
		}
	}
	var buf2 bytes.Buffer
	if err := reg.Snapshot().WriteSummary(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("summary must be deterministic")
	}
}

func TestTracerJSONLAndRing(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, 4)
	tr.Event("alpha", F("x", 1), F("y", 2))
	tr.Scope("ga").Event("beta")
	tr.Scope("ga").Scope("gen").Span("run", F("n", 3))()
	reg := NewRegistry()
	reg.Counter("done").Inc()
	tr.SnapshotRegistry("final", reg)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("trace has %d lines, want 4", len(lines))
	}
	var recs []Record
	for _, l := range lines {
		var r Record
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", l, err)
		}
		recs = append(recs, r)
	}
	if recs[0].Name != "alpha" || recs[0].Kind != "event" || recs[0].Attrs["y"] != 2 {
		t.Fatalf("bad event record: %+v", recs[0])
	}
	if recs[1].Scope != "ga" {
		t.Fatalf("scope = %q, want ga", recs[1].Scope)
	}
	if recs[2].Scope != "ga/gen" || recs[2].Kind != "span" || recs[2].DurNS < 0 {
		t.Fatalf("bad span record: %+v", recs[2])
	}
	if recs[3].Kind != "snapshot" || recs[3].Registry == nil || recs[3].Registry.Counters["done"] != 1 {
		t.Fatalf("bad snapshot record: %+v", recs[3])
	}

	// The ring holds the same four records in order.
	ring := tr.Records()
	if len(ring) != 4 || tr.Total() != 4 {
		t.Fatalf("ring has %d records (total %d), want 4", len(ring), tr.Total())
	}
	for i := range ring {
		if ring[i].Name != recs[i].Name {
			t.Fatalf("ring[%d] = %q, want %q", i, ring[i].Name, recs[i].Name)
		}
	}
}

func TestTracerRingRotation(t *testing.T) {
	tr := NewTracer(nil, 3)
	for i := 0; i < 7; i++ {
		tr.Event(fmt.Sprintf("e%d", i))
	}
	recs := tr.Records()
	if len(recs) != 3 || tr.Total() != 7 {
		t.Fatalf("ring has %d records (total %d), want 3 (7)", len(recs), tr.Total())
	}
	for i, want := range []string{"e4", "e5", "e6"} {
		if recs[i].Name != want {
			t.Fatalf("ring[%d] = %q, want %q (oldest first)", i, recs[i].Name, want)
		}
	}
}

// TestTracerRingConcurrent hammers the ring from concurrent writers and
// readers; under -race this pins the ring's synchronization.
func TestTracerRingConcurrent(t *testing.T) {
	tr := NewTracer(io.Discard, 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := tr.Scope(fmt.Sprintf("w%d", w))
			for i := 0; i < 500; i++ {
				sc.Event("tick", F("i", float64(i)))
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = tr.Records()
				_ = tr.Total()
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 2000 {
		t.Fatalf("total = %d, want 2000", tr.Total())
	}
	if got := len(tr.Records()); got != 64 {
		t.Fatalf("ring has %d records, want 64", got)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("served").Add(9)
	addr, stop, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/debug/obs"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["served"] != 9 {
		t.Fatalf("snapshot counter = %d, want 9", snap.Counters["served"])
	}
	if !bytes.Contains(get("/debug/vars"), []byte("robsched.obs")) {
		t.Fatal("expvar export missing robsched.obs")
	}
	if !bytes.Contains(get("/debug/pprof/"), []byte("goroutine")) {
		t.Fatal("pprof index not served")
	}
}
