package obs

import (
	"testing"
)

// TestDisabledPathAllocationFree pins the obs-off contract: every operation
// on nil instruments — what an instrumented hot path executes when
// observability is disabled — performs zero allocations.
func TestDisabledPathAllocationFree(t *testing.T) {
	var reg *Registry
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		c := reg.Counter("c")
		c.Inc()
		c.Add(5)
		reg.Gauge("g").Set(1)
		reg.Histogram("h", nil).Observe(2)
		tr.Event("e")
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocates %g allocs/op, want 0", allocs)
	}
}

// BenchmarkDisabledCounter measures the per-call cost of a counter update
// when observability is off (nil instruments): the price every instrumented
// hot path pays by default. Tracked in BENCH_obs.json.
func BenchmarkDisabledCounter(b *testing.B) {
	var reg *Registry
	c := reg.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkEnabledCounter is the enabled counterpart: one atomic add.
func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkEnabledHistogram measures one histogram observation (binary
// search + two atomic adds + CAS sum).
func BenchmarkEnabledHistogram(b *testing.B) {
	h := NewRegistry().Histogram("h", []float64{1, 2, 4, 8, 16, 32})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 40))
	}
}

// BenchmarkTracerEvent measures an enabled ring-only trace event (no sink).
func BenchmarkTracerEvent(b *testing.B) {
	tr := NewTracer(nil, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Event("tick", F("i", float64(i)))
	}
}
