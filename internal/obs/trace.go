package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Record is one structured trace entry. Records marshal to a single JSON
// object per line (JSONL): timestamps are unix nanoseconds, spans carry
// their duration, and the optional Registry field embeds a full metric
// snapshot (the final record of an instrumented CLI run, making the trace
// file self-contained).
type Record struct {
	TS       int64              `json:"ts,omitempty"`
	Scope    string             `json:"scope,omitempty"`
	Kind     string             `json:"kind"` // "event", "span" or "snapshot"
	Name     string             `json:"name"`
	DurNS    int64              `json:"dur_ns,omitempty"`
	Attrs    map[string]float64 `json:"attrs,omitempty"`
	Registry *Snapshot          `json:"registry,omitempty"`
}

// Attr is one numeric attribute of a trace record.
type Attr struct {
	Key   string
	Value float64
}

// F builds an Attr; the name follows fmt's %f-style mnemonic for a float
// field.
func F(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Tracer emits trace records to an optional JSONL sink and keeps the most
// recent records in a fixed in-memory ring (for tests and post-run
// inspection). Tracers returned by Scope share the sink and the ring and
// tag their records with the scope path. All methods are safe for
// concurrent use; every method on a nil Tracer is a no-op.
type Tracer struct {
	core  *tracerCore
	scope string
}

type tracerCore struct {
	mu      sync.Mutex
	enc     *json.Encoder // nil when no sink
	ring    []Record
	ringCap int
	next    int   // ring write position
	total   int64 // records emitted since creation
	err     error // first sink write error
	now     func() int64
}

// NewTracer returns a tracer writing JSONL records to w (nil disables the
// sink) and retaining the last ringCap records in memory (<= 0 defaults to
// 256).
func NewTracer(w io.Writer, ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = 256
	}
	core := &tracerCore{
		ring:    make([]Record, 0, ringCap),
		ringCap: ringCap,
		now:     func() int64 { return time.Now().UnixNano() },
	}
	if w != nil {
		core.enc = json.NewEncoder(w)
	}
	return &Tracer{core: core}
}

// Scope returns a tracer whose records are tagged with the given scope,
// nested under the receiver's scope with a "/" separator. Nil-safe.
func (t *Tracer) Scope(name string) *Tracer {
	if t == nil {
		return nil
	}
	s := name
	if t.scope != "" {
		s = t.scope + "/" + name
	}
	return &Tracer{core: t.core, scope: s}
}

// Event records an instantaneous event. No-op on a nil receiver.
func (t *Tracer) Event(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.emit(Record{Kind: "event", Name: name, Attrs: attrMap(attrs)})
}

// Span starts a timed span and returns the function that ends it; the
// record is emitted at end time with the measured duration. On a nil
// receiver the returned end function is a no-op.
func (t *Tracer) Span(name string, attrs ...Attr) func() {
	if t == nil {
		return func() {}
	}
	start := t.core.now()
	return func() {
		t.emit(Record{Kind: "span", Name: name, DurNS: t.core.now() - start, Attrs: attrMap(attrs)})
	}
}

// SnapshotRegistry emits a "snapshot" record embedding the registry's
// current metric values — conventionally the final record of a run, so the
// JSONL file carries its own registry snapshot. No-op on a nil receiver.
func (t *Tracer) SnapshotRegistry(name string, reg *Registry) {
	if t == nil {
		return
	}
	snap := reg.Snapshot()
	t.emit(Record{Kind: "snapshot", Name: name, Registry: &snap})
}

// Records returns the ring contents, oldest first. Empty on a nil receiver.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	c := t.core
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, 0, len(c.ring))
	if len(c.ring) == c.ringCap {
		out = append(out, c.ring[c.next:]...)
	}
	return append(out, c.ring[:c.next]...)
}

// Total returns the number of records emitted since creation (including
// records that have rotated out of the ring). Zero on a nil receiver.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	c := t.core
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Err returns the first error the JSONL sink reported, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	c := t.core
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (t *Tracer) emit(rec Record) {
	c := t.core
	rec.Scope = t.scope
	c.mu.Lock()
	defer c.mu.Unlock()
	rec.TS = c.now()
	if len(c.ring) < c.ringCap {
		c.ring = append(c.ring, rec)
		c.next = len(c.ring) % c.ringCap
	} else {
		c.ring[c.next] = rec
		c.next = (c.next + 1) % c.ringCap
	}
	c.total++
	if c.enc != nil {
		if err := c.enc.Encode(rec); err != nil && c.err == nil {
			c.err = err
		}
	}
}

func attrMap(attrs []Attr) map[string]float64 {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]float64, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}
