package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exposes the registry's snapshot as the expvar variable
// "robsched.obs" (served under /debug/vars). expvar names are global and
// publish-once, so later calls re-point the variable at the new registry
// instead of publishing again.
func PublishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("robsched.obs", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// Serve starts an HTTP server on addr (host:port; port 0 picks a free one)
// exposing the Go runtime profiles under /debug/pprof/, expvar — including
// the published registry — under /debug/vars, and the registry snapshot
// alone as JSON under /debug/obs. It returns the bound address and a
// function that shuts the server down.
func Serve(addr string, reg *Registry) (string, func() error, error) {
	PublishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reg.Snapshot())
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
