// Package obs is a zero-dependency, low-overhead observability layer for
// the solver pipeline: atomic counters, gauges and fixed-bucket histograms
// behind a Registry, plus a scoped Tracer (trace.go) that emits structured
// span/event records to a JSONL sink and an in-memory ring.
//
// The whole package is nil-safe by design: every method on a nil *Registry,
// *Counter, *Gauge, *Histogram or *Tracer is a no-op, and a nil Registry
// hands out nil instruments. Instrumented hot paths therefore cost a single
// predictable nil check — and zero allocations — when observability is
// disabled, which is the default everywhere. The allocation benchmark in
// bench_test.go and the obs-off lanes of BENCH_obs.json pin this down.
//
// The Registry deliberately holds only deterministic facts about a run —
// how many generations evolved, how many cache lookups hit, how many
// realizations were sampled — so its snapshot can be compared exactly
// against the configured run (and golden-file tested). Wall-clock timings
// (throughput, build times, span durations) belong to the Tracer, whose
// records carry timestamps and are not expected to be reproducible.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter ignores all writes and reads as zero.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 holding the latest value of some quantity
// (a configuration knob, a level, a most-recent measurement). A nil Gauge
// ignores all writes and reads as zero.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value; zero on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets defined by their upper
// bounds, and tracks the total count and sum. Observations are atomic;
// concurrent Observe calls never lose counts. A nil Histogram ignores all
// observations.
type Histogram struct {
	bounds []float64 // sorted upper bounds; immutable after construction
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the last slot is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations; zero on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values; zero on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Registry hands out named instruments and snapshots them. Instruments are
// created on first use and shared by name afterwards, so independent call
// sites accumulate into the same counter. All methods are safe for
// concurrent use; a nil Registry hands out nil (no-op) instruments.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Nil on a nil receiver.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Nil on a nil receiver.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (an implicit +Inf bucket always
// closes the range; later calls reuse the first bounds). Nil on a nil
// receiver.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // len(Bounds)+1, last is the +Inf bucket
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every instrument. An empty snapshot
// on a nil receiver.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: make([]int64, len(h.counts)),
			Count:   h.Count(),
			Sum:     h.Sum(),
		}
		for i := range h.counts {
			hs.Buckets[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteSummary renders the snapshot as an aligned text table, instruments
// sorted by name — the `-obs` summary block of the CLIs. Every value
// printed is a deterministic fact of the run (counts and set gauges), so
// the block is stable under golden-file tests.
func (s Snapshot) WriteSummary(w io.Writer) error {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var err error
		switch {
		case hasKey(s.Counters, n):
			_, err = fmt.Fprintf(w, "%-28s %14d\n", n, s.Counters[n])
		case hasKey(s.Gauges, n):
			_, err = fmt.Fprintf(w, "%-28s %14.6g\n", n, s.Gauges[n])
		default:
			h := s.Histograms[n]
			mean := math.NaN()
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			_, err = fmt.Fprintf(w, "%-28s %14d  sum=%.6g mean=%.6g\n", n, h.Count, h.Sum, mean)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func hasKey[V any](m map[string]V, k string) bool {
	_, ok := m[k]
	return ok
}
