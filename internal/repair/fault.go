// Fault-aware execution: this file extends the event-driven executor to
// play a static schedule against a realized duration matrix *and* a fault
// scenario (internal/fault). Tasks running on a processor that fails
// permanently or suffers a transient outage are killed and retried under a
// bounded RetryPolicy with deterministic backoff in simulated time,
// optionally migrating via the same EFT re-planner the reactive policy
// uses (never placing work on dead processors); an optional graceful-
// degradation mode drops non-critical tasks whose start slips past
// DropFactor·M0 (à la Mokhtari et al.'s autonomous task dropping) and the
// run reports a completion fraction instead of failing.
//
// Under an empty scenario ExecuteFaults performs exactly the floating-
// point operations of Execute, so its results are bit-identical to plain
// right-shift / reactive execution — the property test in fault_test.go
// pins this down.
package repair

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"robsched/internal/fault"
	"robsched/internal/heft"
	"robsched/internal/obs"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
	"robsched/internal/sim"
)

// RetryPolicy bounds how killed tasks are re-attempted.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts a task may consume after
	// kills; once exceeded the task is abandoned (dropped under graceful
	// degradation, otherwise the run is marked failed).
	MaxRetries int
	// Backoff is the simulated-time wait before retry k, growing
	// exponentially: Backoff·2^(k−1). Zero retries immediately.
	Backoff float64
	// Migrate re-plans every unstarted task (EFT over expected durations,
	// alive processors only) after each kill, letting the killed task move
	// off the faulty processor. Without it a killed task retries on its
	// originally planned processor.
	Migrate bool
}

// FaultPolicy configures fault-aware execution: the embedded reactive-
// reschedule Policy (use NeverReschedule for pure right-shift), the retry
// behaviour, and graceful degradation.
type FaultPolicy struct {
	Policy
	Retry RetryPolicy
	// DropFactor d > 0 enables graceful degradation: a non-critical task
	// (planned slack > 0) whose earliest feasible start exceeds d·M0 is
	// dropped rather than executed, and abandoned tasks count as drops
	// instead of failing the run. 0 disables dropping.
	DropFactor float64

	// Obs, if non-nil, receives executor telemetry: the counters
	// repair.executions, repair.kills, repair.retries, repair.migrations,
	// repair.drops, repair.abandons and repair.reschedules. The totals are
	// deterministic for a fixed evaluation (per-realization streams are
	// seeded sequentially), independent of worker count. Nil disables with
	// zero overhead.
	Obs *obs.Registry
	// Trace, if non-nil, receives one structured event per fault-handling
	// decision — repair/kill, repair/retry, repair/migrate, repair/drop,
	// repair/abandon and repair/reschedule — each carrying task, processor
	// and simulated-time attribution. Events from concurrently evaluated
	// realizations interleave in wall-clock order.
	Trace *obs.Tracer
}

// DefaultFaultPolicy is right-shift execution with two migrating retries
// and no dropping — the configuration the CLI starts from.
func DefaultFaultPolicy() FaultPolicy {
	return FaultPolicy{
		Policy: NeverReschedule(),
		Retry:  RetryPolicy{MaxRetries: 2, Backoff: 0, Migrate: true},
	}
}

// Validate checks the policy, reporting *PolicyError.
func (pol FaultPolicy) Validate() error {
	if pol.Threshold < 0 || math.IsNaN(pol.Threshold) {
		return &PolicyError{"Threshold", fmt.Sprintf("%g must be >= 0", pol.Threshold)}
	}
	if pol.Retry.MaxRetries < 0 {
		return &PolicyError{"Retry.MaxRetries", fmt.Sprintf("%d must be >= 0", pol.Retry.MaxRetries)}
	}
	if pol.Retry.Backoff < 0 || math.IsNaN(pol.Retry.Backoff) || math.IsInf(pol.Retry.Backoff, 0) {
		return &PolicyError{"Retry.Backoff", fmt.Sprintf("%g must be finite and >= 0", pol.Retry.Backoff)}
	}
	if pol.DropFactor < 0 || math.IsNaN(pol.DropFactor) || math.IsInf(pol.DropFactor, 0) {
		return &PolicyError{"DropFactor", fmt.Sprintf("%g must be finite and >= 0", pol.DropFactor)}
	}
	return nil
}

// FaultOutcome is one simulated execution under faults. Start/Finish/Proc
// are meaningful for completed tasks only; Makespan is the latest finish
// among completed tasks.
type FaultOutcome struct {
	Outcome
	// Completed marks the tasks that ran to completion.
	Completed []bool
	// Dropped lists tasks abandoned under graceful degradation (their
	// descendants cascade here too); Unfinished lists tasks abandoned
	// without degradation enabled, in which case Failed is set.
	Dropped    []int
	Unfinished []int
	Failed     bool
	// Kills counts work-losing fault hits; Retries the re-attempts they
	// triggered; Migrations the retry attempts that started on a different
	// processor than the previous attempt.
	Kills      int
	Retries    int
	Migrations int
	// CompletionFraction is completed tasks / n.
	CompletionFraction float64
}

// ExecuteFaults plays the realized duration matrix against the schedule
// under the fault scenario and policy. With fault.None() it degenerates to
// Execute bit-for-bit.
func ExecuteFaults(s *schedule.Schedule, durs platform.Matrix, sc fault.Scenario, pol FaultPolicy) (FaultOutcome, error) {
	w := s.Workload()
	n, m := w.N(), w.M()
	if durs.Rows() != n || durs.Cols() != m {
		return FaultOutcome{}, fmt.Errorf("repair: duration matrix is %dx%d, want %dx%d", durs.Rows(), durs.Cols(), n, m)
	}
	if err := pol.Validate(); err != nil {
		return FaultOutcome{}, err
	}
	if err := sc.Validate(); err != nil {
		return FaultOutcome{}, err
	}
	if sc.M != 0 && sc.M != m {
		return FaultOutcome{}, &fault.ValidationError{Field: "M", Reason: fmt.Sprintf("scenario is for %d processors, platform has %d", sc.M, m)}
	}
	window := pol.Threshold * s.Makespan()
	dropAfter := pol.DropFactor * s.Makespan()
	critTol := 1e-9 * (1 + s.Makespan())

	// Telemetry handles (nil-safe no-ops when observability is off). The
	// instrumentation only records decisions already taken — it cannot
	// perturb the executor's floating-point sequence, so the bit-identity
	// with Execute under an empty scenario is preserved.
	tsc := pol.Trace.Scope("repair")
	cKills := pol.Obs.Counter("repair.kills")
	cRetries := pol.Obs.Counter("repair.retries")
	cMigrations := pol.Obs.Counter("repair.migrations")
	cDrops := pol.Obs.Counter("repair.drops")
	cAbandons := pol.Obs.Counter("repair.abandons")
	cResched := pol.Obs.Counter("repair.reschedules")
	pol.Obs.Counter("repair.executions").Inc()

	out := FaultOutcome{
		Outcome: Outcome{
			Proc:   s.ProcAssignment(),
			Start:  make([]float64, n),
			Finish: make([]float64, n),
		},
		Completed: make([]bool, n),
	}
	queues := make([][]int, m)
	for p := 0; p < m; p++ {
		queues[p] = s.ProcOrder(p)
	}
	planned := make([]float64, n)
	for v := 0; v < n; v++ {
		planned[v] = s.Finish(v)
	}
	completed := out.Completed
	remainingPreds := make([]int, n)
	for v := 0; v < n; v++ {
		remainingPreds[v] = w.G.InDegree(v)
	}
	procFree := make([]float64, m)
	ranks := heft.UpwardRanks(w)
	notBefore := make([]float64, n)
	attempts := make([]int, n)
	lastProc := make([]int, n)
	for v := range lastProc {
		lastProc[v] = out.Proc[v]
	}
	abandoned := make([]bool, n)
	nAbandoned := 0

	// abandon removes v (and, transitively, every descendant that can now
	// never become ready) from the run.
	var abandon func(v int)
	abandon = func(v int) {
		if abandoned[v] || completed[v] {
			return
		}
		abandoned[v] = true
		nAbandoned++
		if pol.DropFactor > 0 {
			out.Dropped = append(out.Dropped, v)
			cDrops.Inc()
			tsc.Event("drop", obs.F("task", float64(v)))
		} else {
			out.Unfinished = append(out.Unfinished, v)
			out.Failed = true
			cAbandons.Inc()
			tsc.Event("abandon", obs.F("task", float64(v)))
		}
		for _, a := range w.G.Successors(v) {
			abandon(a.To)
		}
	}
	// aliveAt masks the processors that have not permanently failed by t.
	aliveAt := func(t float64) ([]bool, bool) {
		alive := make([]bool, m)
		any := false
		for p := 0; p < m; p++ {
			if sc.Alive(p, t) {
				alive[p] = true
				any = true
			}
		}
		return alive, any
	}
	replanFault := func(now float64) bool {
		alive, any := aliveAt(now)
		if !any {
			return false
		}
		replanWith(w, ranks, completed, abandoned, alive, notBefore, out.Outcome, procFree, queues, planned)
		return true
	}

	done := 0
	stalled := false // one migration re-plan already spent on the current stall
	for done+nAbandoned < n {
		// Drop abandoned tasks off the queue heads so the scan below only
		// sees live work.
		for p := 0; p < m; p++ {
			for len(queues[p]) > 0 && abandoned[queues[p][0]] {
				queues[p] = queues[p][1:]
			}
		}
		// Among processor-queue heads whose predecessors are all completed,
		// execute the one with the earliest feasible start. Heads whose
		// processor can never run them again (dead by their earliest start)
		// are collected as stuck.
		bestProc, bestStart := -1, math.Inf(1)
		var stuck []int
		for p := 0; p < m; p++ {
			if len(queues[p]) == 0 {
				continue
			}
			v := queues[p][0]
			if remainingPreds[v] > 0 {
				continue
			}
			start := procFree[p]
			for _, a := range w.G.Predecessors(v) {
				u := a.To
				if t := out.Finish[u] + w.Sys.CommCost(out.Proc[u], p, a.Data); t > start {
					start = t
				}
			}
			if nb := notBefore[v]; nb > start {
				start = nb
			}
			start = sc.NextStart(p, start)
			if math.IsInf(start, 1) {
				stuck = append(stuck, p)
				continue
			}
			if start < bestStart {
				bestProc, bestStart = p, start
			}
		}
		if bestProc < 0 {
			if len(stuck) == 0 {
				return FaultOutcome{}, fmt.Errorf("repair: execution stalled with %d tasks left (plan inconsistency)", n-done-nAbandoned)
			}
			// Every runnable head sits on a processor that is dead by the
			// time the task could start. Give migration one re-plan per
			// stall; if that does not unstick the run (or migration is
			// off), abandon the stuck heads — they have nowhere to go.
			if pol.Retry.Migrate && !stalled {
				now := 0.0
				for p := 0; p < m; p++ {
					if sc.Alive(p, procFree[p]) && procFree[p] > now {
						now = procFree[p]
					}
				}
				if replanFault(now) {
					stalled = true
					continue
				}
			}
			for _, p := range stuck {
				abandon(queues[p][0])
			}
			stalled = false
			continue
		}
		stalled = false
		v := queues[bestProc][0]
		// Graceful degradation: a non-critical task whose feasible start
		// slipped past d·M0 is dropped instead of executed.
		if pol.DropFactor > 0 && bestStart > dropAfter && s.Slack(v) > critTol {
			abandon(v)
			continue
		}
		queues[bestProc] = queues[bestProc][1:]
		if attempts[v] > 0 && bestProc != lastProc[v] {
			out.Migrations++
			cMigrations.Inc()
			tsc.Event("migrate",
				obs.F("task", float64(v)),
				obs.F("from", float64(lastProc[v])),
				obs.F("to", float64(bestProc)),
				obs.F("time", bestStart),
			)
		}
		lastProc[v] = bestProc
		fin, killed, killTime := sc.Run(bestProc, bestStart, durs.At(v, bestProc))
		if killed {
			out.Kills++
			cKills.Inc()
			tsc.Event("kill",
				obs.F("task", float64(v)),
				obs.F("proc", float64(bestProc)),
				obs.F("time", killTime),
			)
			procFree[bestProc] = killTime
			attempts[v]++
			if attempts[v] > pol.Retry.MaxRetries {
				abandon(v)
				continue
			}
			out.Retries++
			notBefore[v] = killTime + pol.Retry.Backoff*math.Pow(2, float64(attempts[v]-1))
			cRetries.Inc()
			tsc.Event("retry",
				obs.F("task", float64(v)),
				obs.F("attempt", float64(attempts[v])),
				obs.F("not_before", notBefore[v]),
			)
			if pol.Retry.Migrate {
				if !replanFault(killTime) {
					abandon(v) // no processor left alive
				}
			} else {
				queues[bestProc] = append([]int{v}, queues[bestProc]...)
			}
			continue
		}
		out.Start[v] = bestStart
		out.Finish[v] = fin
		out.Proc[v] = bestProc
		procFree[bestProc] = fin
		completed[v] = true
		done++
		for _, a := range w.G.Successors(v) {
			remainingPreds[a.To]--
		}
		if fin > out.Makespan {
			out.Makespan = fin
		}
		// Repair trigger: the observed finish ran past the plan by more
		// than the window.
		if !math.IsInf(pol.Threshold, 1) && fin-planned[v] > window && done+nAbandoned < n {
			replanWith(w, ranks, completed, abandoned, aliveMaskOrNil(&sc, m, fin), notBefore, out.Outcome, procFree, queues, planned)
			out.Reschedules++
			cResched.Inc()
			tsc.Event("reschedule",
				obs.F("task", float64(v)),
				obs.F("time", fin),
				obs.F("overrun", fin-planned[v]),
			)
		}
	}
	out.CompletionFraction = float64(done) / float64(n)
	return out, nil
}

// aliveMaskOrNil returns the alive mask at time t, or nil when every
// processor is alive (the mask-free path keeps the re-planner on the exact
// instruction sequence of the fault-oblivious executor).
func aliveMaskOrNil(sc *fault.Scenario, m int, t float64) []bool {
	alive := make([]bool, m)
	all := true
	for p := 0; p < m; p++ {
		alive[p] = sc.Alive(p, t)
		all = all && alive[p]
	}
	if all {
		return nil
	}
	return alive
}

// FaultMetrics extends the repair metrics with fault statistics averaged
// over the realizations.
type FaultMetrics struct {
	Metrics
	MeanKills      float64
	MeanRetries    float64
	MeanMigrations float64
	MeanDropped    float64
	// MeanCompletion is the average completion fraction; FailRate the
	// fraction of realizations that ended with unfinished tasks (always 0
	// when graceful degradation is on).
	MeanCompletion float64
	FailRate       float64
}

// EvaluateFaults Monte-Carlo evaluates the schedule under the fault policy:
// each realization samples a fresh duration matrix and draws a scenario
// from the sampler over the given horizon of simulated time (<= 0 defaults
// to 4·M0). Realizations fan out across opt.Workers goroutines, but every
// per-realization stream is seeded from the root sequentially and results
// are folded in realization order, so all outputs — retries, migrations,
// drops and the makespan distribution — are identical for every worker
// count.
//
// Makespans of partially completed runs cover the completed tasks only;
// MeanCompletion and FailRate report how much work those runs shed.
func EvaluateFaults(s *schedule.Schedule, pol FaultPolicy, src fault.Sampler, horizon float64, opt sim.Options, root *rng.Source) (FaultMetrics, error) {
	if err := opt.Validate(); err != nil {
		return FaultMetrics{}, err
	}
	if err := pol.Validate(); err != nil {
		return FaultMetrics{}, err
	}
	if math.IsNaN(horizon) || math.IsInf(horizon, 0) {
		return FaultMetrics{}, &PolicyError{"horizon", fmt.Sprintf("%g must be finite", horizon)}
	}
	if horizon <= 0 {
		horizon = 4 * s.Makespan()
	}
	if pol.Trace != nil {
		defer pol.Trace.Scope("repair").Span("evaluate_faults",
			obs.F("realizations", float64(opt.Realizations)),
			obs.F("horizon", horizon),
		)()
	}
	w := s.Workload()
	n, m := w.N(), w.M()
	R := opt.Realizations
	durSeeds := make([]uint64, R)
	scenSeeds := make([]uint64, R)
	for k := 0; k < R; k++ {
		durSeeds[k] = root.Uint64()
		scenSeeds[k] = root.Uint64()
	}
	type result struct {
		out FaultOutcome
		err error
	}
	results := make([]result, R)
	nw := opt.Workers
	if nw == 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > R {
		nw = R
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			durs := platform.NewMatrix(n, m)
			for {
				k := int(cursor.Add(1)) - 1
				if k >= R {
					return
				}
				r := rng.New(durSeeds[k])
				for i := 0; i < n; i++ {
					for p := 0; p < m; p++ {
						durs.Set(i, p, w.SampleDuration(i, p, r))
					}
				}
				sc, err := src.Scenario(m, horizon, rng.New(scenSeeds[k]))
				if err != nil {
					results[k] = result{err: err}
					continue
				}
				o, err := ExecuteFaults(s, durs, sc, pol)
				results[k] = result{out: o, err: err}
			}
		}()
	}
	wg.Wait()
	makespans := make([]float64, R)
	var fm FaultMetrics
	totalResched := 0
	for k, res := range results {
		if res.err != nil {
			return FaultMetrics{}, res.err
		}
		o := res.out
		makespans[k] = o.Makespan
		totalResched += o.Reschedules
		fm.MeanKills += float64(o.Kills)
		fm.MeanRetries += float64(o.Retries)
		fm.MeanMigrations += float64(o.Migrations)
		fm.MeanDropped += float64(len(o.Dropped))
		fm.MeanCompletion += o.CompletionFraction
		if o.Failed {
			fm.FailRate++
		}
	}
	rf := float64(R)
	fm.MeanKills /= rf
	fm.MeanRetries /= rf
	fm.MeanMigrations /= rf
	fm.MeanDropped /= rf
	fm.MeanCompletion /= rf
	fm.FailRate /= rf
	fm.Metrics = Metrics{
		Metrics:         sim.MetricsFromSamples(s.Makespan(), makespans, opt.Deadline),
		MeanReschedules: float64(totalResched) / rf,
	}
	return fm, nil
}

// DegradationPoint is one lane of a degradation curve: the expected
// behaviour of a schedule when exactly Failures processors fail
// permanently at uniformly random instants within the planned makespan.
type DegradationPoint struct {
	Failures       int
	MeanMakespan   float64
	MeanCompletion float64
	FailRate       float64
}

// DegradationCurve maps out graceful degradation: expected makespan and
// completion versus the number of permanent processor failures, from 0 to
// maxFailures (capped at m). The 0-failure lane reuses the batched
// sim.RealizeAll engine; faulted lanes sample which processors fail (a
// deterministic draw per realization) and run the fault-aware executor.
func DegradationCurve(s *schedule.Schedule, pol FaultPolicy, maxFailures int, opt sim.Options, root *rng.Source) ([]DegradationPoint, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if maxFailures < 0 {
		return nil, &PolicyError{"maxFailures", fmt.Sprintf("%d must be >= 0", maxFailures)}
	}
	w := s.Workload()
	m := w.M()
	if maxFailures > m {
		maxFailures = m
	}
	curve := make([]DegradationPoint, 0, maxFailures+1)
	// No-fault lane: the batched Monte-Carlo kernel.
	mks, err := sim.RealizeAll([]*schedule.Schedule{s}, opt, rng.New(root.Uint64()))
	if err != nil {
		return nil, err
	}
	mean := 0.0
	for _, mk := range mks[0] {
		mean += mk
	}
	curve = append(curve, DegradationPoint{
		Failures:       0,
		MeanMakespan:   mean / float64(len(mks[0])),
		MeanCompletion: 1,
	})
	for f := 1; f <= maxFailures; f++ {
		src := failureCountSampler{count: f, m0: s.Makespan()}
		fm, err := EvaluateFaults(s, pol, src, 0, opt, rng.New(root.Uint64()))
		if err != nil {
			return nil, err
		}
		curve = append(curve, DegradationPoint{
			Failures:       f,
			MeanMakespan:   fm.MeanMakespan,
			MeanCompletion: fm.MeanCompletion,
			FailRate:       fm.FailRate,
		})
	}
	return curve, nil
}

// failureCountSampler draws scenarios with exactly count permanent
// failures at uniform instants in (0, m0), hitting a uniformly random
// processor subset.
type failureCountSampler struct {
	count int
	m0    float64
}

func (fs failureCountSampler) Scenario(m int, _ float64, r *rng.Source) (fault.Scenario, error) {
	count := fs.count
	if count > m {
		count = m
	}
	sc := fault.Scenario{M: m, FailAt: make([]float64, m)}
	for p := range sc.FailAt {
		sc.FailAt[p] = math.Inf(1)
	}
	for _, p := range r.Perm(m)[:count] {
		sc.FailAt[p] = r.Uniform(0, fs.m0)
	}
	return sc, nil
}
