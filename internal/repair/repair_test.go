package repair

import (
	"math"
	"testing"

	"robsched/internal/dynamic"
	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
	"robsched/internal/sim"
)

func testWorkload(t testing.TB, seed uint64, n, m int, ul float64) *platform.Workload {
	t.Helper()
	p := gen.PaperParams()
	p.N, p.M, p.MeanUL = n, m, ul
	w, err := gen.Random(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestRightShiftMatchesASAPSemantics is the keystone: executing with the
// never-reschedule policy must reproduce exactly the paper's realization
// semantics, i.e. Schedule.MakespanWith on the same realized durations.
func TestRightShiftMatchesASAPSemantics(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		w := testWorkload(t, uint64(trial), 30, 4, 4)
		s, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		durs := dynamic.RealizeMatrix(w, r)
		o, err := Execute(s, durs, NeverReschedule())
		if err != nil {
			t.Fatal(err)
		}
		dur := make([]float64, w.N())
		for v := range dur {
			dur[v] = durs.At(v, s.Proc(v))
		}
		if want := s.MakespanWith(dur); math.Abs(o.Makespan-want) > 1e-9 {
			t.Fatalf("trial %d: right-shift makespan %g != ASAP %g", trial, o.Makespan, want)
		}
		if o.Reschedules != 0 {
			t.Fatalf("right-shift rescheduled %d times", o.Reschedules)
		}
		// Assignment untouched.
		for v := 0; v < w.N(); v++ {
			if o.Proc[v] != s.Proc(v) {
				t.Fatalf("right-shift moved task %d", v)
			}
		}
	}
}

func TestExecuteValidation(t *testing.T) {
	w := testWorkload(t, 3, 10, 2, 2)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := platform.NewMatrix(3, 3)
	bad.Fill(1)
	if _, err := Execute(s, bad, NeverReschedule()); err == nil {
		t.Error("bad duration matrix accepted")
	}
	if _, err := Execute(s, dynamic.RealizeMatrix(w, rng.New(1)), Policy{Threshold: -1}); err == nil {
		t.Error("negative threshold accepted")
	}
}

// checkValidExecution verifies precedence, communication and no-overlap
// invariants of an outcome via the shared schedule.ValidateExecution.
func checkValidExecution(t *testing.T, w *platform.Workload, o Outcome) {
	t.Helper()
	if err := schedule.ValidateExecution(w, o.Proc, o.Start, o.Finish); err != nil {
		t.Fatal(err)
	}
}

func TestRescheduleOutcomeValid(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		w := testWorkload(t, uint64(100+trial), 30, 4, 6)
		s, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		durs := dynamic.RealizeMatrix(w, r)
		o, err := Execute(s, durs, Policy{Threshold: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		checkValidExecution(t, w, o)
		if o.Makespan <= 0 {
			t.Fatal("bad makespan")
		}
	}
}

func TestTightThresholdTriggersReschedules(t *testing.T) {
	// Under heavy uncertainty a near-zero threshold must fire at least
	// once, and a +Inf threshold never.
	w := testWorkload(t, 7, 40, 4, 6)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	durs := dynamic.RealizeMatrix(w, rng.New(8))
	tight, err := Execute(s, durs, Policy{Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Reschedules == 0 {
		t.Fatal("tight threshold never rescheduled under UL=6")
	}
	loose, err := Execute(s, durs, NeverReschedule())
	if err != nil {
		t.Fatal(err)
	}
	if loose.Reschedules != 0 {
		t.Fatal("infinite threshold rescheduled")
	}
}

func TestDeterministicDurationsNeverTrigger(t *testing.T) {
	// When reality equals the plan there is nothing to repair, even with a
	// very tight threshold.
	w := testWorkload(t, 9, 25, 3, 1)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, m := w.N(), w.M()
	durs := platform.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for p := 0; p < m; p++ {
			durs.Set(i, p, w.ExpectedAt(i, p))
		}
	}
	o, err := Execute(s, durs, Policy{Threshold: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if o.Reschedules != 0 {
		t.Fatalf("deterministic run rescheduled %d times", o.Reschedules)
	}
	if math.Abs(o.Makespan-s.Makespan()) > 1e-6 {
		t.Fatalf("deterministic makespan %g != M0 %g", o.Makespan, s.Makespan())
	}
}

// TestRepairImprovesOverRightShift: under heavy uncertainty, reacting to
// large disruptions should reduce the realized mean makespan relative to
// rigid right-shift execution, on average across instances.
func TestRepairImprovesOverRightShift(t *testing.T) {
	var diff float64
	const instances = 6
	for k := 0; k < instances; k++ {
		w := testWorkload(t, uint64(200+k), 40, 4, 6)
		s, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rigid, err := Evaluate(s, NeverReschedule(), sim.Options{Realizations: 150}, rng.New(uint64(300+k)))
		if err != nil {
			t.Fatal(err)
		}
		react, err := Evaluate(s, Policy{Threshold: 0.05}, sim.Options{Realizations: 150}, rng.New(uint64(300+k)))
		if err != nil {
			t.Fatal(err)
		}
		if react.MeanReschedules == 0 {
			t.Fatalf("instance %d: reactive policy never fired", k)
		}
		diff += (react.MeanMakespan - rigid.MeanMakespan) / rigid.MeanMakespan
	}
	if mean := diff / instances; mean >= 0 {
		t.Errorf("reactive repair did not reduce mean makespan: %+.4f", mean)
	}
}

func TestEvaluateMetricsShape(t *testing.T) {
	w := testWorkload(t, 11, 20, 3, 3)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(s, Policy{Threshold: 0.1}, sim.Options{Realizations: 100}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if m.Realizations != 100 || m.M0 != s.Makespan() {
		t.Fatalf("metrics header wrong: %+v", m.Metrics)
	}
	if m.MeanReschedules < 0 {
		t.Fatalf("MeanReschedules = %g", m.MeanReschedules)
	}
	if _, err := Evaluate(s, NeverReschedule(), sim.Options{Realizations: 0}, rng.New(1)); err == nil {
		t.Error("zero realizations accepted")
	}
}

func BenchmarkExecuteRightShift(b *testing.B) {
	p := gen.PaperParams()
	w, err := gen.Random(p, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		b.Fatal(err)
	}
	durs := dynamic.RealizeMatrix(w, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(s, durs, NeverReschedule()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteReactive(b *testing.B) {
	p := gen.PaperParams()
	p.MeanUL = 6
	w, err := gen.Random(p, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		b.Fatal(err)
	}
	durs := dynamic.RealizeMatrix(w, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(s, durs, Policy{Threshold: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}
