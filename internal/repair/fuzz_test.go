package repair

import (
	"math"
	"strings"
	"testing"

	"robsched/internal/dynamic"
	"robsched/internal/fault"
	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/rng"
	"robsched/internal/wio"
)

// FuzzExecute drives the fault-aware executor with arbitrary fault
// scenarios and policies: it must never panic, always terminate, never
// place completed work on a dead processor or inside an outage, and keep
// the completion fraction in [0, 1]. Invalid inputs must be rejected with
// an error, not a crash.
func FuzzExecute(f *testing.F) {
	f.Add(uint64(1), `{"procs": 0}`, math.Inf(1), 2, 0.0, 0.0, true)
	f.Add(uint64(2), `{"procs": 3, "failures": [{"proc": 0, "at": 10}]}`, 0.05, 1, 0.5, 0.0, true)
	f.Add(uint64(3), `{"procs": 2, "outages": [{"proc": 1, "start": 5, "end": 9}]}`, 0.0, 3, 0.0, 2.0, false)
	f.Add(uint64(4), `{"procs": 2, "slowdowns": [{"proc": 0, "start": 0, "end": 50, "factor": 4}]}`, math.Inf(1), 0, 0.0, 1.5, true)
	f.Add(uint64(5), `{"procs": 1, "failures": [{"proc": 0, "at": 0}]}`, math.Inf(1), 2, 1.0, 3.0, true)
	f.Add(uint64(6), `not json`, -1.0, -2, math.NaN(), -0.5, false)
	f.Fuzz(func(t *testing.T, seed uint64, scenarioDoc string, threshold float64, retries int, backoff, drop float64, migrate bool) {
		p := gen.PaperParams()
		p.N = 5 + int(seed%8)
		p.M = 1 + int(seed%4)
		p.MeanUL = 1 + float64(seed%5)
		w, err := gen.Random(p, rng.New(seed))
		if err != nil {
			return
		}
		s, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			return
		}
		durs := dynamic.RealizeMatrix(w, rng.New(seed+1))
		sc, err := wio.ReadScenario(strings.NewReader(scenarioDoc))
		if err != nil {
			sc = fault.None()
		}
		pol := FaultPolicy{
			Policy:     Policy{Threshold: threshold},
			Retry:      RetryPolicy{MaxRetries: retries, Backoff: backoff, Migrate: migrate},
			DropFactor: drop,
		}
		o, err := ExecuteFaults(s, durs, sc, pol)
		if err != nil {
			return // rejected input is fine; panicking or hanging is not
		}
		if o.CompletionFraction < 0 || o.CompletionFraction > 1 {
			t.Fatalf("completion fraction %g out of range", o.CompletionFraction)
		}
		completedCount := 0
		for v := 0; v < w.N(); v++ {
			if !o.Completed[v] {
				continue
			}
			completedCount++
			pr := o.Proc[v]
			if pr < 0 || pr >= w.M() {
				t.Fatalf("task %d on processor %d of %d", v, pr, w.M())
			}
			if !sc.Alive(pr, o.Start[v]) {
				t.Fatalf("task %d started at %g on processor %d, dead by then", v, o.Start[v], pr)
			}
			if got := sc.NextStart(pr, o.Start[v]); got != o.Start[v] {
				t.Fatalf("task %d started inside an outage (start %g, feasible %g)", v, o.Start[v], got)
			}
			for _, a := range w.G.Predecessors(v) {
				if !o.Completed[a.To] {
					t.Fatalf("task %d completed without predecessor %d", v, a.To)
				}
			}
		}
		// Every task is accounted for exactly once: completed, dropped or
		// unfinished.
		if completedCount+len(o.Dropped)+len(o.Unfinished) != w.N() {
			t.Fatalf("%d completed + %d dropped + %d unfinished != %d tasks",
				completedCount, len(o.Dropped), len(o.Unfinished), w.N())
		}
		if o.Failed != (len(o.Unfinished) > 0) {
			t.Fatalf("Failed=%v with %d unfinished", o.Failed, len(o.Unfinished))
		}
	})
}
