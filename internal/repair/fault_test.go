package repair

import (
	"errors"
	"math"
	"testing"

	"robsched/internal/dynamic"
	"robsched/internal/fault"
	"robsched/internal/heft"
	"robsched/internal/rng"
	"robsched/internal/schedule"
	"robsched/internal/sim"
)

// TestEmptyScenarioBitIdentical is the acceptance criterion of the fault
// engine: with no faults, ExecuteFaults must perform exactly the same
// floating-point operations as Execute — every start, finish, assignment
// and reschedule count identical bit for bit, across repair thresholds.
func TestEmptyScenarioBitIdentical(t *testing.T) {
	r := rng.New(42)
	for _, threshold := range []float64{math.Inf(1), 0.05, 0} {
		for trial := 0; trial < 15; trial++ {
			w := testWorkload(t, uint64(500+trial), 35, 4, 5)
			s, err := heft.HEFT(w, heft.Options{})
			if err != nil {
				t.Fatal(err)
			}
			durs := dynamic.RealizeMatrix(w, r)
			base, err := Execute(s, durs, Policy{Threshold: threshold})
			if err != nil {
				t.Fatal(err)
			}
			fo, err := ExecuteFaults(s, durs, fault.None(), FaultPolicy{
				Policy: Policy{Threshold: threshold},
				Retry:  RetryPolicy{MaxRetries: 3, Backoff: 0.5, Migrate: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			if fo.Makespan != base.Makespan {
				t.Fatalf("θ=%g trial %d: makespan %v != %v", threshold, trial, fo.Makespan, base.Makespan)
			}
			if fo.Reschedules != base.Reschedules {
				t.Fatalf("θ=%g trial %d: reschedules %d != %d", threshold, trial, fo.Reschedules, base.Reschedules)
			}
			for v := 0; v < w.N(); v++ {
				if fo.Start[v] != base.Start[v] || fo.Finish[v] != base.Finish[v] || fo.Proc[v] != base.Proc[v] {
					t.Fatalf("θ=%g trial %d task %d: (%v,%v,p%d) != (%v,%v,p%d)", threshold, trial, v,
						fo.Start[v], fo.Finish[v], fo.Proc[v], base.Start[v], base.Finish[v], base.Proc[v])
				}
			}
			if fo.Kills != 0 || fo.Retries != 0 || fo.Migrations != 0 || len(fo.Dropped) != 0 ||
				fo.Failed || fo.CompletionFraction != 1 {
				t.Fatalf("θ=%g trial %d: fault counters nonzero on empty scenario: %+v", threshold, trial, fo)
			}
		}
	}
}

// checkValidFaultExecution verifies the fault-execution invariants:
// completed tasks obey precedence/communication/no-overlap among
// themselves, never run inside an outage, and never touch a processor at
// or past its failure time.
func checkValidFaultExecution(t *testing.T, s *schedule.Schedule, sc fault.Scenario, o FaultOutcome) {
	t.Helper()
	w := s.Workload()
	// Precedence, communication delays, no-overlap and completed-implies-
	// predecessors-completed come from the shared validator; the fault
	// scenario geometry (never run on a dead processor or inside an
	// outage) is checked here, where the scenario is known.
	if err := schedule.ValidateExecutionSubset(w, o.Proc, o.Start, o.Finish, o.Completed); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < w.N(); v++ {
		if !o.Completed[v] {
			continue
		}
		p := o.Proc[v]
		if !sc.Alive(p, o.Start[v]) {
			t.Fatalf("task %d started on dead processor %d at %g", v, p, o.Start[v])
		}
		if got := sc.NextStart(p, o.Start[v]); got != o.Start[v] {
			t.Fatalf("task %d started inside an outage on %d at %g (feasible %g)", v, p, o.Start[v], got)
		}
	}
	if o.CompletionFraction < 0 || o.CompletionFraction > 1 {
		t.Fatalf("completion fraction %g out of range", o.CompletionFraction)
	}
}

func TestRetryRecoversFromTransientOutage(t *testing.T) {
	// A blanket outage early in the run kills whatever is executing; with
	// retries the run must still complete everything.
	w := testWorkload(t, 21, 30, 3, 3)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.Makespan()
	sc := fault.Scenario{
		M: 3,
		Outages: [][]fault.Interval{
			{{Start: 0.2 * m0, End: 0.3 * m0}},
			{{Start: 0.25 * m0, End: 0.35 * m0}},
			nil,
		},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	durs := dynamic.RealizeMatrix(w, rng.New(22))
	for _, migrate := range []bool{false, true} {
		o, err := ExecuteFaults(s, durs, sc, FaultPolicy{
			Policy: NeverReschedule(),
			Retry:  RetryPolicy{MaxRetries: 5, Backoff: 0, Migrate: migrate},
		})
		if err != nil {
			t.Fatal(err)
		}
		checkValidFaultExecution(t, s, sc, o)
		if o.CompletionFraction != 1 || o.Failed {
			t.Fatalf("migrate=%v: run did not complete: %+v", migrate, o)
		}
		if o.Kills > 0 && o.Retries == 0 {
			t.Fatalf("migrate=%v: kills without retries", migrate)
		}
		if o.Makespan < m0*0.5 {
			t.Fatalf("migrate=%v: implausible makespan %g (M0=%g)", migrate, o.Makespan, m0)
		}
	}
}

func TestPermanentFailureMigratesWork(t *testing.T) {
	// Processor 0 dies early. With migration the run completes on the
	// survivors and no completed task ever ran on 0 past its death.
	w := testWorkload(t, 31, 40, 4, 3)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.Makespan()
	sc := fault.Scenario{M: 4, FailAt: []float64{0.3 * m0, math.Inf(1), math.Inf(1), math.Inf(1)}}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	durs := dynamic.RealizeMatrix(w, rng.New(32))
	o, err := ExecuteFaults(s, durs, sc, FaultPolicy{
		Policy: NeverReschedule(),
		Retry:  RetryPolicy{MaxRetries: 3, Backoff: 0.01 * m0, Migrate: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkValidFaultExecution(t, s, sc, o)
	if o.CompletionFraction != 1 || o.Failed {
		t.Fatalf("migrating run did not complete: completion=%g failed=%v unfinished=%v",
			o.CompletionFraction, o.Failed, o.Unfinished)
	}
	// The dead processor had planned work (overwhelmingly likely on this
	// instance); losing it must move something.
	plannedOn0 := len(s.ProcOrder(0))
	if plannedOn0 > 1 && o.Migrations == 0 && o.Kills == 0 {
		t.Fatalf("processor 0 had %d planned tasks but nothing was killed or migrated", plannedOn0)
	}
}

func TestNoMigrationAbandonsDeadProcessorWork(t *testing.T) {
	// Without migration, work planned on a processor that dies at t=0 can
	// never run: it must be abandoned, not spin forever.
	w := testWorkload(t, 41, 25, 3, 2)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := fault.Scenario{M: 3, FailAt: []float64{0, math.Inf(1), math.Inf(1)}}
	durs := dynamic.RealizeMatrix(w, rng.New(42))
	o, err := ExecuteFaults(s, durs, sc, FaultPolicy{
		Policy: NeverReschedule(),
		Retry:  RetryPolicy{MaxRetries: 2, Backoff: 0, Migrate: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkValidFaultExecution(t, s, sc, o)
	if len(s.ProcOrder(0)) > 0 {
		if !o.Failed || len(o.Unfinished) == 0 {
			t.Fatalf("dead-processor work not abandoned: %+v", o)
		}
		if o.CompletionFraction >= 1 {
			t.Fatal("completion fraction 1 despite abandoned work")
		}
	}
}

func TestGracefulDegradationDropsNonCritical(t *testing.T) {
	// All processors die mid-run and nothing can migrate anywhere: with
	// DropFactor set, the run must not be marked Failed — abandoned tasks
	// count as drops.
	w := testWorkload(t, 51, 30, 3, 3)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.Makespan()
	sc := fault.Scenario{M: 3, FailAt: []float64{0.5 * m0, 0.5 * m0, 0.5 * m0}}
	durs := dynamic.RealizeMatrix(w, rng.New(52))
	o, err := ExecuteFaults(s, durs, sc, FaultPolicy{
		Policy:     NeverReschedule(),
		Retry:      RetryPolicy{MaxRetries: 2, Backoff: 0, Migrate: true},
		DropFactor: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkValidFaultExecution(t, s, sc, o)
	if o.Failed {
		t.Fatalf("graceful-degradation run marked failed: %+v", o)
	}
	if len(o.Dropped) == 0 {
		t.Fatal("total platform death dropped nothing")
	}
	if o.CompletionFraction >= 1 {
		t.Fatal("completion fraction 1 despite drops")
	}
	// Without degradation the same scenario is a failure.
	o2, err := ExecuteFaults(s, durs, sc, FaultPolicy{
		Policy: NeverReschedule(),
		Retry:  RetryPolicy{MaxRetries: 2, Backoff: 0, Migrate: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o2.Failed || len(o2.Unfinished) == 0 {
		t.Fatalf("hard policy did not fail on total platform death: %+v", o2)
	}
}

func TestFaultPolicyValidation(t *testing.T) {
	w := testWorkload(t, 61, 10, 2, 2)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	durs := dynamic.RealizeMatrix(w, rng.New(62))
	bad := []FaultPolicy{
		{Policy: Policy{Threshold: -1}},
		{Policy: Policy{Threshold: math.NaN()}},
		{Policy: NeverReschedule(), Retry: RetryPolicy{MaxRetries: -1}},
		{Policy: NeverReschedule(), Retry: RetryPolicy{Backoff: -0.5}},
		{Policy: NeverReschedule(), Retry: RetryPolicy{Backoff: math.Inf(1)}},
		{Policy: NeverReschedule(), DropFactor: -2},
		{Policy: NeverReschedule(), DropFactor: math.NaN()},
	}
	for i, pol := range bad {
		_, err := ExecuteFaults(s, durs, fault.None(), pol)
		if err == nil {
			t.Errorf("policy %d accepted: %+v", i, pol)
			continue
		}
		var pe *PolicyError
		if !errors.As(err, &pe) {
			t.Errorf("policy %d: error %v is not a *PolicyError", i, err)
		}
	}
	// Scenario sized for the wrong platform.
	sc := fault.Scenario{M: 5, FailAt: []float64{1, 1, 1, 1, 1}}
	if _, err := ExecuteFaults(s, durs, sc, DefaultFaultPolicy()); err == nil {
		t.Error("mismatched scenario size accepted")
	} else {
		var ve *fault.ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("size mismatch error %v is not a *fault.ValidationError", err)
		}
	}
}

func TestEvaluateFaultsReproducibleAcrossWorkers(t *testing.T) {
	// The second acceptance criterion: fault runs are reproducible from
	// (seed, sampler) for any worker count.
	w := testWorkload(t, 71, 30, 4, 4)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mo := fault.Model{MTBF: 3 * s.Makespan(), OutageEvery: 2 * s.Makespan(), OutageMean: 0.1 * s.Makespan(), KeepOne: true}
	if err := mo.Validate(); err != nil {
		t.Fatal(err)
	}
	pol := FaultPolicy{
		Policy:     Policy{Threshold: 0.1},
		Retry:      RetryPolicy{MaxRetries: 2, Backoff: 0.01 * s.Makespan(), Migrate: true},
		DropFactor: 3,
	}
	var ref FaultMetrics
	for i, workers := range []int{1, 2, 7} {
		// A positive deadline keeps DeadlineMissRate a number, so the whole
		// metrics struct stays ==-comparable.
		fm, err := EvaluateFaults(s, pol, mo, 0,
			sim.Options{Realizations: 60, Workers: workers, Deadline: 2 * s.Makespan()}, rng.New(777))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = fm
			if fm.MeanKills == 0 {
				t.Fatal("fault model never killed anything — test is vacuous")
			}
			continue
		}
		if fm != ref {
			t.Fatalf("workers=%d: metrics differ from single-worker run:\n%+v\n%+v", workers, fm, ref)
		}
	}
}

func TestEvaluateFaultsValidation(t *testing.T) {
	w := testWorkload(t, 81, 10, 2, 2)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateFaults(s, DefaultFaultPolicy(), fault.Fixed{}, 0,
		sim.Options{Realizations: 0}, rng.New(1)); err == nil {
		t.Error("zero realizations accepted")
	} else {
		var oe *sim.OptionError
		if !errors.As(err, &oe) {
			t.Errorf("error %v is not a *sim.OptionError", err)
		}
	}
	if _, err := EvaluateFaults(s, DefaultFaultPolicy(), fault.Fixed{}, math.Inf(1),
		sim.Options{Realizations: 5}, rng.New(1)); err == nil {
		t.Error("infinite horizon accepted")
	}
	bad := FaultPolicy{Policy: Policy{Threshold: -1}}
	if _, err := EvaluateFaults(s, bad, fault.Fixed{}, 0, sim.Options{Realizations: 5}, rng.New(1)); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestDegradationCurve(t *testing.T) {
	w := testWorkload(t, 91, 30, 4, 3)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pol := FaultPolicy{
		Policy:     NeverReschedule(),
		Retry:      RetryPolicy{MaxRetries: 2, Backoff: 0, Migrate: true},
		DropFactor: 4,
	}
	curve, err := DegradationCurve(s, pol, 4, sim.Options{Realizations: 40}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 5 {
		t.Fatalf("expected lanes 0..4, got %d points", len(curve))
	}
	if curve[0].Failures != 0 || curve[0].MeanCompletion != 1 || curve[0].FailRate != 0 {
		t.Fatalf("no-fault lane wrong: %+v", curve[0])
	}
	if curve[0].MeanMakespan < s.Makespan() {
		t.Fatalf("no-fault mean makespan %g below M0 %g", curve[0].MeanMakespan, s.Makespan())
	}
	for i, pt := range curve {
		if pt.Failures != i {
			t.Fatalf("lane %d labelled %d", i, pt.Failures)
		}
		if pt.MeanCompletion <= 0 || pt.MeanCompletion > 1 {
			t.Fatalf("lane %d completion %g", i, pt.MeanCompletion)
		}
		if pt.FailRate != 0 {
			t.Fatalf("lane %d failed despite graceful degradation: %+v", i, pt)
		}
	}
	// Losing every processor must hurt completion relative to losing none.
	last := curve[len(curve)-1]
	if last.MeanCompletion >= 1 {
		t.Fatalf("all-processors-fail lane completed everything: %+v", last)
	}
	// Deterministic under the same root seed.
	again, err := DegradationCurve(s, pol, 4, sim.Options{Realizations: 40}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range curve {
		if curve[i] != again[i] {
			t.Fatalf("curve not reproducible at lane %d: %+v vs %+v", i, curve[i], again[i])
		}
	}
	if _, err := DegradationCurve(s, pol, -1, sim.Options{Realizations: 5}, rng.New(1)); err == nil {
		t.Error("negative maxFailures accepted")
	}
}
