package repair

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"robsched/internal/dynamic"
	"robsched/internal/fault"
	"robsched/internal/heft"
	"robsched/internal/obs"
	"robsched/internal/rng"
	"robsched/internal/sim"
)

// TestFaultTelemetryMatchesOutcome evaluates a schedule under a fault-heavy
// policy with the registry attached and cross-checks every counter against
// the aggregate the evaluator itself reports.
func TestFaultTelemetryMatchesOutcome(t *testing.T) {
	w := testWorkload(t, 71, 30, 4, 4)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pol := FaultPolicy{
		Policy:     NeverReschedule(),
		Retry:      RetryPolicy{MaxRetries: 2, Backoff: 0, Migrate: true},
		DropFactor: 3,
		Obs:        reg,
	}
	const R = 50
	m0 := s.Makespan()
	src := fault.Model{OutageEvery: m0 / 2, OutageMean: m0 / 10, KeepOne: true}
	fm, err := EvaluateFaults(s, pol, src, 0, sim.Options{Realizations: R, Workers: 4}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	round := func(x float64) int64 { return int64(math.Round(x * R)) }
	if got := snap.Counters["repair.executions"]; got != R {
		t.Errorf("repair.executions = %d, want %d", got, R)
	}
	if got, want := snap.Counters["repair.kills"], round(fm.MeanKills); got != want {
		t.Errorf("repair.kills = %d, want %d", got, want)
	}
	if got, want := snap.Counters["repair.retries"], round(fm.MeanRetries); got != want {
		t.Errorf("repair.retries = %d, want %d", got, want)
	}
	if got, want := snap.Counters["repair.migrations"], round(fm.MeanMigrations); got != want {
		t.Errorf("repair.migrations = %d, want %d", got, want)
	}
	if got, want := snap.Counters["repair.drops"], round(fm.MeanDropped); got != want {
		t.Errorf("repair.drops = %d, want %d", got, want)
	}
	if snap.Counters["repair.kills"] == 0 {
		t.Error("fault-heavy scenario produced no kills — test not exercising telemetry")
	}
}

// TestFaultTraceEvents drives one execution with a scripted permanent
// failure and checks the structured events carry task/processor/time
// attribution.
func TestFaultTraceEvents(t *testing.T) {
	w := testWorkload(t, 72, 20, 3, 3)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	durs := dynamic.RealizeMatrix(w, rng.New(8))
	sc := fault.Scenario{M: 3, FailAt: []float64{s.Makespan() * 0.25, math.Inf(1), math.Inf(1)}}
	var buf bytes.Buffer
	pol := FaultPolicy{
		Policy: NeverReschedule(),
		Retry:  RetryPolicy{MaxRetries: 3, Backoff: 0, Migrate: true},
		Trace:  obs.NewTracer(&buf, 0),
	}
	out, err := ExecuteFaults(s, durs, sc, pol)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec obs.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		if rec.Scope != "repair" {
			continue
		}
		counts[rec.Name]++
		switch rec.Name {
		case "kill":
			if rec.Attrs["proc"] != 0 {
				t.Errorf("kill on proc %g, want 0 (the failed processor)", rec.Attrs["proc"])
			}
			if rec.Attrs["time"] < 0 {
				t.Errorf("kill time %g < 0", rec.Attrs["time"])
			}
		case "migrate":
			if rec.Attrs["from"] == rec.Attrs["to"] {
				t.Errorf("migrate from == to == %g", rec.Attrs["from"])
			}
		}
	}
	if counts["kill"] != out.Kills {
		t.Errorf("trace has %d kill events, outcome reports %d", counts["kill"], out.Kills)
	}
	if counts["retry"] != out.Retries {
		t.Errorf("trace has %d retry events, outcome reports %d", counts["retry"], out.Retries)
	}
	if counts["migrate"] != out.Migrations {
		t.Errorf("trace has %d migrate events, outcome reports %d", counts["migrate"], out.Migrations)
	}
	if out.Kills == 0 {
		t.Error("scripted failure produced no kills — scenario not exercised")
	}
}
