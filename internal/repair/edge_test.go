package repair

// Edge-case coverage for the executor: threshold 0, single-processor
// platforms (cross-checked against the online dispatcher in
// internal/dynamic) and tie-breaking determinism.

import (
	"math"
	"testing"

	"robsched/internal/dag"
	"robsched/internal/dynamic"
	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// TestThresholdZeroFiresOnAnyLateness: with threshold 0 the repair window
// is zero, so any finish strictly past the plan re-plans — under real
// uncertainty that is nearly every task; the run must stay valid and
// fire at least as often as a loose threshold on the same realization.
func TestThresholdZeroFiresOnAnyLateness(t *testing.T) {
	w := testWorkload(t, 101, 30, 4, 5)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	durs := dynamic.RealizeMatrix(w, rng.New(102))
	zero, err := Execute(s, durs, Policy{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	checkValidExecution(t, w, zero)
	if zero.Reschedules == 0 {
		t.Fatal("threshold 0 never fired under UL=5")
	}
	loose, err := Execute(s, durs, Policy{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Reschedules < loose.Reschedules {
		t.Fatalf("threshold 0 fired %d times, looser threshold %d", zero.Reschedules, loose.Reschedules)
	}
	if zero.Reschedules >= w.N() {
		t.Fatalf("%d reschedules for %d tasks (each completion may fire at most once)", zero.Reschedules, w.N())
	}
}

// TestSingleProcessorMatchesDynamic: with m=1 there are no placement
// decisions — execution is serial, the makespan is the sum of realized
// durations, and the static executor must agree exactly with the online
// dispatcher from internal/dynamic.
func TestSingleProcessorMatchesDynamic(t *testing.T) {
	p := gen.PaperParams()
	p.N, p.M, p.MeanUL = 20, 1, 4
	w, err := gen.Random(p, rng.New(111))
	if err != nil {
		t.Fatal(err)
	}
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	durs := dynamic.RealizeMatrix(w, rng.New(112))
	o, err := Execute(s, durs, NeverReschedule())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for v := 0; v < w.N(); v++ {
		sum += durs.At(v, 0)
	}
	if math.Abs(o.Makespan-sum) > 1e-9*sum {
		t.Fatalf("serial makespan %g != duration sum %g", o.Makespan, sum)
	}
	dyn, err := dynamic.Simulate(w, durs, durs, heft.UpwardRanks(w))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.Makespan-dyn.Makespan) > 1e-9*sum {
		t.Fatalf("static %g != dynamic %g on one processor", o.Makespan, dyn.Makespan)
	}
	// Rescheduling cannot change anything either: there is nowhere to move.
	re, err := Execute(s, durs, Policy{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(re.Makespan-sum) > 1e-9*sum {
		t.Fatalf("reactive serial makespan %g != %g", re.Makespan, sum)
	}
}

// twoTaskWorkload builds two independent unit tasks on two identical
// processors — the minimal instance where queue heads tie on start time.
func twoTaskWorkload(t *testing.T) *platform.Workload {
	t.Helper()
	g, err := dag.NewBuilder(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	rates, err := platform.MatrixFromRows([][]float64{{1, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := platform.NewSystem(rates)
	if err != nil {
		t.Fatal(err)
	}
	bcet, err := platform.MatrixFromRows([][]float64{{1, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ul := platform.NewMatrix(2, 2)
	ul.Fill(1)
	w, err := platform.NewWorkload(g, sys, bcet, ul)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestTieBreakingDeterministic: when several queue heads share the same
// earliest feasible start, the executor must always pick the
// lowest-numbered processor, and repeated runs must agree bit for bit.
func TestTieBreakingDeterministic(t *testing.T) {
	w := twoTaskWorkload(t)
	s, err := schedule.New(w, []int{1, 0}, [][]int{{1}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	durs := platform.NewMatrix(2, 2)
	durs.Fill(1)
	first, err := Execute(s, durs, NeverReschedule())
	if err != nil {
		t.Fatal(err)
	}
	// Both heads tie at start 0: processor 0 (running task 1) must win the
	// scan, so its task starts first — observable only through determinism
	// here since both finish at 1; assert the full outcome is stable.
	for run := 0; run < 20; run++ {
		again, err := Execute(s, durs, NeverReschedule())
		if err != nil {
			t.Fatal(err)
		}
		if again.Makespan != first.Makespan {
			t.Fatalf("run %d: makespan %v != %v", run, again.Makespan, first.Makespan)
		}
		for v := 0; v < 2; v++ {
			if again.Start[v] != first.Start[v] || again.Finish[v] != first.Finish[v] || again.Proc[v] != first.Proc[v] {
				t.Fatalf("run %d: outcome differs for task %d", run, v)
			}
		}
	}
	if first.Start[0] != 0 || first.Start[1] != 0 || first.Makespan != 1 {
		t.Fatalf("independent unit tasks did not run in parallel: %+v", first)
	}

	// Larger stochastic instances: repeated reactive executions of the same
	// realization are bit-identical (no map iteration or other
	// nondeterminism in the scan and re-planner).
	for trial := 0; trial < 5; trial++ {
		w := testWorkload(t, uint64(120+trial), 30, 4, 6)
		s, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		durs := dynamic.RealizeMatrix(w, rng.New(uint64(130+trial)))
		a, err := Execute(s, durs, Policy{Threshold: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Execute(s, durs, Policy{Threshold: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		if a.Makespan != b.Makespan || a.Reschedules != b.Reschedules {
			t.Fatalf("trial %d: repeated execution differs (%v/%d vs %v/%d)",
				trial, a.Makespan, a.Reschedules, b.Makespan, b.Reschedules)
		}
		for v := 0; v < w.N(); v++ {
			if a.Start[v] != b.Start[v] || a.Proc[v] != b.Proc[v] {
				t.Fatalf("trial %d: task %d differs between repeated runs", trial, v)
			}
		}
	}
}
