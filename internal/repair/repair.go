// Package repair executes a static schedule against realized task
// durations under runtime repair policies, the reactive middle ground
// between the paper's pure static robustness and full online scheduling
// (cf. the related work of Leon et al., who study rescheduling after
// disruptions, and Moukrim et al.'s partially on-line algorithms):
//
//   - right-shift (the base policy, threshold = +Inf): the assignment and
//     processor orders are kept and every task simply starts as soon as it
//     is ready — exactly the paper's realization semantics (Claim 3.2);
//   - reactive rescheduling: execution follows the current plan until some
//     task finishes more than threshold·M0 later than planned, at which
//     point every not-yet-started task is re-planned with an
//     earliest-finish-time pass using expected durations, the observed
//     completions and current processor availability.
//
// The simulator is event-driven and chronologically consistent: the next
// task to start is always the plan-eligible task with the earliest
// feasible start time. One simplification: tasks already *running* at a
// re-plan instant keep their processor (correct — they cannot migrate) and
// the re-planner uses their realized finish times rather than re-estimating
// the remaining work of an in-flight task; this only sharpens the ready
// times the re-planner sees and does not let it change any decision it
// could not have made.
package repair

import (
	"fmt"
	"math"
	"sort"

	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
	"robsched/internal/sim"
)

// PolicyError reports an invalid policy field. It is the typed error
// returned by every policy validation path of this package.
type PolicyError struct {
	Field  string
	Reason string
}

func (e *PolicyError) Error() string {
	return fmt.Sprintf("repair: %s: %s", e.Field, e.Reason)
}

// Policy selects the repair behaviour.
type Policy struct {
	// Threshold is the relative delay (fraction of the plan's M0) of a
	// task's actual finish beyond its planned finish that triggers a
	// re-plan of all unstarted tasks. +Inf (or 0 value via NeverReschedule)
	// never triggers, giving pure right-shift execution.
	Threshold float64
}

// NeverReschedule is the pure right-shift policy.
func NeverReschedule() Policy { return Policy{Threshold: math.Inf(1)} }

// Outcome is one simulated execution under a repair policy.
type Outcome struct {
	Makespan    float64
	Reschedules int
	Proc        []int
	Start       []float64
	Finish      []float64
}

// Execute plays the realized duration matrix against the schedule under
// the policy. durs.At(i, p) is the duration task i would actually take on
// processor p (only the assigned processor's entry is consumed unless a
// re-plan moves the task).
func Execute(s *schedule.Schedule, durs platform.Matrix, pol Policy) (Outcome, error) {
	w := s.Workload()
	n, m := w.N(), w.M()
	if durs.Rows() != n || durs.Cols() != m {
		return Outcome{}, fmt.Errorf("repair: duration matrix is %dx%d, want %dx%d", durs.Rows(), durs.Cols(), n, m)
	}
	if pol.Threshold < 0 || math.IsNaN(pol.Threshold) {
		return Outcome{}, &PolicyError{"Threshold", fmt.Sprintf("%g must be >= 0", pol.Threshold)}
	}
	window := pol.Threshold * s.Makespan()

	out := Outcome{
		Proc:   s.ProcAssignment(),
		Start:  make([]float64, n),
		Finish: make([]float64, n),
	}
	// Current plan: per-processor queues of unstarted tasks plus the
	// planned finish time of every task.
	queues := make([][]int, m)
	for p := 0; p < m; p++ {
		queues[p] = s.ProcOrder(p)
	}
	planned := make([]float64, n)
	for v := 0; v < n; v++ {
		planned[v] = s.Finish(v)
	}
	completed := make([]bool, n)
	remainingPreds := make([]int, n)
	for v := 0; v < n; v++ {
		remainingPreds[v] = w.G.InDegree(v)
	}
	procFree := make([]float64, m)
	ranks := heft.UpwardRanks(w)
	done := 0
	for done < n {
		// Among processor-queue heads whose predecessors are all
		// completed, execute the one with the earliest feasible start.
		bestProc, bestStart := -1, math.Inf(1)
		for p := 0; p < m; p++ {
			if len(queues[p]) == 0 {
				continue
			}
			v := queues[p][0]
			if remainingPreds[v] > 0 {
				continue
			}
			start := procFree[p]
			for _, a := range w.G.Predecessors(v) {
				u := a.To
				if t := out.Finish[u] + w.Sys.CommCost(out.Proc[u], p, a.Data); t > start {
					start = t
				}
			}
			if start < bestStart {
				bestProc, bestStart = p, start
			}
		}
		if bestProc < 0 {
			return Outcome{}, fmt.Errorf("repair: execution stalled with %d tasks left (plan inconsistency)", n-done)
		}
		v := queues[bestProc][0]
		queues[bestProc] = queues[bestProc][1:]
		out.Start[v] = bestStart
		out.Finish[v] = bestStart + durs.At(v, bestProc)
		out.Proc[v] = bestProc
		procFree[bestProc] = out.Finish[v]
		completed[v] = true
		done++
		for _, a := range w.G.Successors(v) {
			remainingPreds[a.To]--
		}
		if out.Finish[v] > out.Makespan {
			out.Makespan = out.Finish[v]
		}
		// Repair trigger: the observed finish ran past the plan by more
		// than the window.
		if !math.IsInf(pol.Threshold, 1) && out.Finish[v]-planned[v] > window && done < n {
			replan(w, ranks, completed, out, procFree, queues, planned)
			out.Reschedules++
		}
	}
	return out, nil
}

// replan rebuilds the queues and planned finishes of every unstarted task
// with an earliest-finish-time pass over expected durations, seeded with
// the observed completions and processor availability.
func replan(w *platform.Workload, ranks []float64, completed []bool, out Outcome,
	procFree []float64, queues [][]int, planned []float64) {
	replanWith(w, ranks, completed, nil, nil, nil, out, procFree, queues, planned)
}

// replanWith is the general re-planner behind both the reactive-reschedule
// policy and the fault-aware executor. skip marks tasks excluded from the
// plan (dropped/abandoned), alive masks the processors eligible for new
// work (nil = all), and notBefore holds per-task earliest-start bounds
// (retry backoff; nil = none). With all three nil it performs exactly the
// floating-point operations of the original reactive re-planner. At least
// one processor must be alive.
func replanWith(w *platform.Workload, ranks []float64, completed, skip, alive []bool,
	notBefore []float64, out Outcome, procFree []float64, queues [][]int, planned []float64) {
	n, m := w.N(), w.M()
	var remaining []int
	for v := 0; v < n; v++ {
		if !completed[v] && (skip == nil || !skip[v]) {
			remaining = append(remaining, v)
		}
	}
	// Decreasing upward rank is a topological order of the remaining
	// sub-DAG (ranks strictly decrease along edges).
	sort.SliceStable(remaining, func(a, b int) bool {
		if ranks[remaining[a]] != ranks[remaining[b]] {
			return ranks[remaining[a]] > ranks[remaining[b]]
		}
		return remaining[a] < remaining[b]
	})
	estFree := append([]float64(nil), procFree...)
	estFinish := make([]float64, n)
	estProc := make([]int, n)
	for v := 0; v < n; v++ {
		estProc[v] = out.Proc[v]
		if completed[v] {
			estFinish[v] = out.Finish[v]
		}
	}
	for p := 0; p < m; p++ {
		queues[p] = queues[p][:0]
	}
	for _, v := range remaining {
		bestProc, bestFinish := -1, math.Inf(1)
		for p := 0; p < m; p++ {
			if alive != nil && !alive[p] {
				continue
			}
			start := estFree[p]
			for _, a := range w.G.Predecessors(v) {
				u := a.To
				if t := estFinish[u] + w.Sys.CommCost(estProc[u], p, a.Data); t > start {
					start = t
				}
			}
			if notBefore != nil && notBefore[v] > start {
				start = notBefore[v]
			}
			if f := start + w.ExpectedAt(v, p); f < bestFinish {
				bestProc, bestFinish = p, f
			}
		}
		estProc[v] = bestProc
		estFinish[v] = bestFinish
		estFree[bestProc] = bestFinish
		queues[bestProc] = append(queues[bestProc], v)
		planned[v] = bestFinish
		out.Proc[v] = bestProc
	}
}

// Metrics extends the simulator metrics with repair statistics.
type Metrics struct {
	sim.Metrics
	// MeanReschedules is the average number of re-plans per realization.
	MeanReschedules float64
}

// Evaluate Monte-Carlo evaluates the schedule under the repair policy.
// M0 is the schedule's planned makespan, so tardiness and miss rate are
// directly comparable with the static (right-shift) evaluation.
func Evaluate(s *schedule.Schedule, pol Policy, opt sim.Options, root *rng.Source) (Metrics, error) {
	if err := opt.Validate(); err != nil {
		return Metrics{}, err
	}
	w := s.Workload()
	n, m := w.N(), w.M()
	makespans := make([]float64, opt.Realizations)
	totalResched := 0
	durs := platform.NewMatrix(n, m)
	for k := range makespans {
		r := rng.New(root.Uint64())
		for i := 0; i < n; i++ {
			for p := 0; p < m; p++ {
				durs.Set(i, p, w.SampleDuration(i, p, r))
			}
		}
		o, err := Execute(s, durs, pol)
		if err != nil {
			return Metrics{}, err
		}
		makespans[k] = o.Makespan
		totalResched += o.Reschedules
	}
	return Metrics{
		Metrics:         sim.MetricsFromSamples(s.Makespan(), makespans, opt.Deadline),
		MeanReschedules: float64(totalResched) / float64(opt.Realizations),
	}, nil
}
