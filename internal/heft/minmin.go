package heft

import (
	"math"

	"robsched/internal/platform"
	"robsched/internal/schedule"
)

// BatchRule selects which task a levelized batch scheduler commits next
// from the ready set.
type BatchRule int

const (
	// MinMin repeatedly commits the (task, processor) pair with the
	// globally smallest earliest finish time — fast tasks first, the
	// classic independent-task heuristic lifted to DAGs by levelization.
	MinMin BatchRule = iota
	// MaxMin commits the task whose *best* finish time is largest —
	// long tasks first, trading mean performance for balance.
	MaxMin
)

func (r BatchRule) String() string {
	if r == MaxMin {
		return "max-min"
	}
	return "min-min"
}

// Batch schedules the workload with a levelized Min-Min or Max-Min
// heuristic: tasks become ready when all predecessors are scheduled, and
// the rule repeatedly picks from the ready set using insertion-free
// earliest-finish-time estimates on expected durations. These are the
// batch-mode baselines of the heterogeneous-computing literature (Ali et
// al.'s COV model paper evaluates on them), complementing the list
// schedulers.
func Batch(w *platform.Workload, rule BatchRule) (*schedule.Schedule, error) {
	n, m := w.N(), w.M()
	proc := make([]int, n)
	aft := make([]float64, n)
	for i := range proc {
		proc[i] = -1
	}
	procFree := make([]float64, m)
	timelinesOrder := make([][]int, m)
	remaining := make([]int, n)
	ready := make(map[int]bool)
	for v := 0; v < n; v++ {
		remaining[v] = w.G.InDegree(v)
		if remaining[v] == 0 {
			ready[v] = true
		}
	}
	// eft computes the append-only earliest finish of v on p.
	eft := func(v, p int) (start, finish float64) {
		start = procFree[p]
		for _, a := range w.G.Predecessors(v) {
			u := a.To
			if t := aft[u] + w.Sys.CommCost(proc[u], p, a.Data); t > start {
				start = t
			}
		}
		return start, start + w.ExpectedAt(v, p)
	}
	scheduled := 0
	for scheduled < n {
		bestTask, bestProc := -1, -1
		bestKey := math.Inf(1)
		if rule == MaxMin {
			bestKey = math.Inf(-1)
		}
		bestFinish := 0.0
		for v := range ready {
			vProc, vFinish := -1, math.Inf(1)
			for p := 0; p < m; p++ {
				if _, f := eft(v, p); f < vFinish {
					vProc, vFinish = p, f
				}
			}
			better := vFinish < bestKey
			if rule == MaxMin {
				better = vFinish > bestKey
			}
			// Deterministic tie-break on task id.
			if better || (vFinish == bestKey && (bestTask < 0 || v < bestTask)) {
				bestTask, bestProc, bestKey, bestFinish = v, vProc, vFinish, vFinish
			}
		}
		v, p := bestTask, bestProc
		proc[v] = p
		aft[v] = bestFinish
		procFree[p] = bestFinish
		timelinesOrder[p] = append(timelinesOrder[p], v)
		delete(ready, v)
		scheduled++
		for _, a := range w.G.Successors(v) {
			remaining[a.To]--
			if remaining[a.To] == 0 {
				ready[a.To] = true
			}
		}
	}
	return schedule.New(w, proc, timelinesOrder)
}
