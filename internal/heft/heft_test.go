package heft

import (
	"math"
	"testing"

	"robsched/internal/dag"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
)

// mustValidate pins every schedule a heuristic emits against the shared
// feasibility invariants (placement partition, precedence with
// communication, no processor overlap, analysis consistency).
func mustValidate(t *testing.T, s *schedule.Schedule) {
	t.Helper()
	if err := schedule.Validate(s); err != nil {
		t.Fatal(err)
	}
}

// topcuogluExample builds the canonical 10-task, 3-processor example from
// the HEFT paper (Topcuoglu et al., IEEE TPDS 2002, Fig. 2 / Table 1),
// for which the upward ranks and the final makespan (80) are published.
// Transfer rate is 1, so edge data equals communication cost.
func topcuogluExample(t testing.TB) *platform.Workload {
	t.Helper()
	b := dag.NewBuilder(10)
	edges := []struct {
		u, v int
		c    float64
	}{
		{0, 1, 18}, {0, 2, 12}, {0, 3, 9}, {0, 4, 11}, {0, 5, 14},
		{1, 7, 19}, {1, 8, 16},
		{2, 6, 23},
		{3, 7, 27}, {3, 8, 23},
		{4, 8, 13},
		{5, 7, 15},
		{6, 9, 17},
		{7, 9, 11},
		{8, 9, 13},
	}
	for _, e := range edges {
		b.MustAddEdge(e.u, e.v, e.c)
	}
	g := b.MustBuild()
	exec, err := platform.MatrixFromRows([][]float64{
		{14, 16, 9},
		{13, 19, 18},
		{11, 13, 19},
		{13, 8, 17},
		{12, 13, 10},
		{13, 16, 9},
		{7, 15, 11},
		{5, 11, 14},
		{18, 12, 20},
		{21, 7, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := platform.DeterministicWorkload(g, platform.UniformSystem(3, 1), exec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestUpwardRanksCanonical(t *testing.T) {
	w := topcuogluExample(t)
	ranks := UpwardRanks(w)
	// Published rank_u values (Table 3 of the HEFT paper).
	want := []float64{108, 77, 80, 80, 69, 63.333, 42.667, 35.667, 44.333, 14.667}
	for v, r := range ranks {
		if math.Abs(r-want[v]) > 0.01 {
			t.Errorf("rank_u(t%d) = %.3f, want %.3f", v+1, r, want[v])
		}
	}
}

func TestHEFTTaskOrderCanonical(t *testing.T) {
	w := topcuogluExample(t)
	order := tasksByDescending(UpwardRanks(w))
	// Decreasing rank order from the HEFT paper: t1 t3 t4 t2 t5 t6 t9 t7 t8
	// t10. Tasks t3 and t4 tie at rank exactly 80 in real arithmetic, so
	// floating point may order the pair either way.
	want := []int{0, 2, 3, 1, 4, 5, 8, 6, 7, 9}
	for i := range want {
		if order[i] != want[i] {
			if (i == 1 || i == 2) && order[1] == 3 && order[2] == 2 {
				continue // tied pair swapped; equally canonical
			}
			t.Fatalf("processing order = %v, want %v (t3/t4 may swap)", order, want)
		}
	}
}

func TestHEFTCanonicalMakespan(t *testing.T) {
	w := topcuogluExample(t)
	s, err := HEFT(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Makespan()-80) > 1e-9 {
		t.Fatalf("HEFT makespan = %g, want 80 (published result)", s.Makespan())
	}
	// Published assignment highlights: t1 on P3, t10 on P2.
	if s.Proc(0) != 2 {
		t.Errorf("t1 on processor %d, want P3", s.Proc(0)+1)
	}
	if s.Proc(9) != 1 {
		t.Errorf("t10 on processor %d, want P2", s.Proc(9)+1)
	}
}

func TestCPOPCanonicalMakespan(t *testing.T) {
	w := topcuogluExample(t)
	s, err := CPOP(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The CPOP schedule for this example has makespan 86 in the paper's
	// accounting; ASAP re-evaluation can only tighten it. Sanity-band it.
	if s.Makespan() < 60 || s.Makespan() > 100 {
		t.Fatalf("CPOP makespan = %g, expected near the published 86", s.Makespan())
	}
}

func TestDownwardRanks(t *testing.T) {
	w := topcuogluExample(t)
	down := DownwardRanks(w)
	if down[0] != 0 {
		t.Errorf("rank_d(entry) = %g, want 0", down[0])
	}
	// rank_d(t2) = rank_d(t1) + mean(t1) + c(1→2) = 0 + 13 + 18 = 31.
	if math.Abs(down[1]-31) > 1e-9 {
		t.Errorf("rank_d(t2) = %g, want 31", down[1])
	}
	// rank_d(t10): via t9 path = rank_d(t9)+mean(t9)+13. rank_d(t9) =
	// max(via t2=31+50/3+16, via t4=22+38/3+23, via t5=24+35/3+13) =
	// max(63.667, 57.667, 48.667) = 63.667 → 63.667+16.667+13 = 93.333.
	// via t8: rank_d(t8)=max(31+16.667+19, 22+12.667+27)=66.667 → +10+11=87.667.
	// via t7: rank_d(t7)=14.333+23+... t3: rank_d=0+13+12=25? no:
	// rank_d(t3)=rank_d(t1)+mean(t1)+c(1→3)=0+13+12... mean(t1)=(14+16+9)/3=13.
	// rank_d(t7)=25+14.333+23=62.333 → +11+17=90.333.
	// max = 93.333.
	if math.Abs(down[9]-93.3333333) > 0.01 {
		t.Errorf("rank_d(t10) = %g, want 93.333", down[9])
	}
}

func TestHEFTValidAndCompetitiveOnRandom(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 15; trial++ {
		w := randomWorkload(t, r, 30, 4)
		s, err := HEFT(w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mustValidate(t, s)
		// HEFT should beat the average random schedule comfortably.
		var sum float64
		const k = 10
		for i := 0; i < k; i++ {
			rs, err := RandomSchedule(w, r)
			if err != nil {
				t.Fatal(err)
			}
			sum += rs.Makespan()
		}
		if avg := sum / k; s.Makespan() > avg {
			t.Errorf("trial %d: HEFT makespan %g worse than random average %g",
				trial, s.Makespan(), avg)
		}
	}
}

func TestCPOPValidOnRandom(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 15; trial++ {
		w := randomWorkload(t, r, 25, 3)
		s, err := CPOP(w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mustValidate(t, s)
		if s.Makespan() <= 0 {
			t.Fatal("non-positive makespan")
		}
	}
}

func TestInsertionNeverWorse(t *testing.T) {
	r := rng.New(9)
	betterOrEqual, strictly := 0, 0
	for trial := 0; trial < 30; trial++ {
		w := randomWorkload(t, r, 40, 4)
		ins, err := HEFT(w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		app, err := HEFT(w, Options{NoInsertion: true})
		if err != nil {
			t.Fatal(err)
		}
		if ins.Makespan() <= app.Makespan()+1e-9 {
			betterOrEqual++
		}
		if ins.Makespan() < app.Makespan()-1e-9 {
			strictly++
		}
	}
	// Insertion is not provably dominant per-instance (greedy choices
	// diverge), but it should win or tie on the overwhelming majority and
	// strictly win sometimes.
	if betterOrEqual < 25 {
		t.Errorf("insertion better-or-equal on only %d/30 instances", betterOrEqual)
	}
	if strictly == 0 {
		t.Error("insertion never strictly better; slot search is probably inert")
	}
}

func TestSingleProcessor(t *testing.T) {
	r := rng.New(11)
	w := randomWorkload(t, r, 12, 1)
	s, err := HEFT(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// On one processor the makespan is the serial sum of durations.
	sum := 0.0
	for i := 0; i < w.N(); i++ {
		sum += w.ExpectedAt(i, 0)
	}
	if math.Abs(s.Makespan()-sum) > 1e-9 {
		t.Errorf("single-proc makespan = %g, want serial sum %g", s.Makespan(), sum)
	}
}

func TestRandomScheduleValidity(t *testing.T) {
	r := rng.New(13)
	w := randomWorkload(t, r, 20, 3)
	for i := 0; i < 20; i++ {
		s, err := RandomSchedule(w, r)
		if err != nil {
			t.Fatal(err)
		}
		mustValidate(t, s)
		count := 0
		for p := 0; p < w.M(); p++ {
			count += len(s.ProcOrder(p))
		}
		if count != w.N() {
			t.Fatalf("schedule covers %d tasks, want %d", count, w.N())
		}
	}
}

func TestFindStart(t *testing.T) {
	tl := []slot{{10, 20, 0}, {30, 40, 1}}
	cases := []struct {
		ready, dur float64
		noIns      bool
		want       float64
	}{
		{0, 5, false, 0},    // fits before the first slot
		{0, 15, false, 40},  // too long for any gap (gap 20..30 is 10 wide)
		{0, 10, false, 0},   // exactly fills the leading gap [0,10)
		{12, 10, false, 20}, // leading gap gone; exactly fills [20,30)
		{22, 8, false, 22},  // fits the rest of the middle gap
		{25, 8, false, 40},  // middle gap too short from 25
		{50, 3, false, 50},  // after everything
		{0, 1, true, 40},    // append-only ignores gaps
		{45, 1, true, 45},   // append-only starts at ready when free
	}
	for i, c := range cases {
		if got := findStart(tl, c.ready, c.dur, c.noIns); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: findStart = %g, want %g", i, got, c.want)
		}
	}
	if got := findStart(nil, 7, 3, false); got != 7 {
		t.Errorf("empty timeline: findStart = %g, want 7", got)
	}
}

func TestInsertSlotKeepsOrder(t *testing.T) {
	var tl []slot
	for _, s := range []slot{{30, 40, 2}, {0, 10, 0}, {15, 20, 1}} {
		tl = insertSlot(tl, s)
	}
	for i := 1; i < len(tl); i++ {
		if tl[i-1].start > tl[i].start {
			t.Fatalf("timeline out of order: %+v", tl)
		}
	}
	if tl[0].task != 0 || tl[1].task != 1 || tl[2].task != 2 {
		t.Fatalf("unexpected slot order: %+v", tl)
	}
}

func randomWorkload(t testing.TB, r *rng.Source, n, m int) *platform.Workload {
	t.Helper()
	b := dag.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < 0.2 {
				b.MustAddEdge(u, v, r.Uniform(0, 10))
			}
		}
	}
	g := b.MustBuild()
	bcet := platform.NewMatrix(n, m)
	ul := platform.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			bcet.Set(i, j, r.Uniform(5, 30))
			ul.Set(i, j, r.Uniform(1, 4))
		}
	}
	w, err := platform.NewWorkload(g, platform.UniformSystem(m, 1), bcet, ul)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func BenchmarkHEFT100x8(b *testing.B) {
	r := rng.New(1)
	w := randomWorkload(b, r, 100, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HEFT(w, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBatchMinMinValid(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 15; trial++ {
		w := randomWorkload(t, r, 25, 3)
		for _, rule := range []BatchRule{MinMin, MaxMin} {
			s, err := Batch(w, rule)
			if err != nil {
				t.Fatalf("%v: %v", rule, err)
			}
			mustValidate(t, s)
			if s.Makespan() <= 0 {
				t.Fatalf("%v: bad makespan", rule)
			}
			count := 0
			for p := 0; p < w.M(); p++ {
				count += len(s.ProcOrder(p))
			}
			if count != w.N() {
				t.Fatalf("%v: %d tasks scheduled", rule, count)
			}
		}
	}
}

func TestBatchSingleTask(t *testing.T) {
	b := dag.NewBuilder(1)
	g := b.MustBuild()
	exec, _ := platform.MatrixFromRows([][]float64{{7, 3}})
	w, err := platform.DeterministicWorkload(g, platform.UniformSystem(2, 1), exec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Batch(w, MinMin)
	if err != nil {
		t.Fatal(err)
	}
	if s.Proc(0) != 1 || s.Makespan() != 3 {
		t.Fatalf("min-min put the task on %d with makespan %g", s.Proc(0), s.Makespan())
	}
}

func TestBatchCompetitiveWithRandom(t *testing.T) {
	r := rng.New(43)
	for trial := 0; trial < 10; trial++ {
		w := randomWorkload(t, r, 30, 4)
		mm, err := Batch(w, MinMin)
		if err != nil {
			t.Fatal(err)
		}
		var randSum float64
		for i := 0; i < 8; i++ {
			rs, err := RandomSchedule(w, r)
			if err != nil {
				t.Fatal(err)
			}
			randSum += rs.Makespan()
		}
		if mm.Makespan() > randSum/8 {
			t.Errorf("trial %d: min-min %g worse than average random %g",
				trial, mm.Makespan(), randSum/8)
		}
	}
}

func TestBatchRuleString(t *testing.T) {
	if MinMin.String() != "min-min" || MaxMin.String() != "max-min" {
		t.Fatal("BatchRule strings wrong")
	}
}

func TestPEFTOCTExitRowsZero(t *testing.T) {
	w := topcuogluExample(t)
	oct := OptimisticCostTable(w)
	// Exit task t10 has OCT 0 on every processor.
	for p := 0; p < w.M(); p++ {
		if oct.At(9, p) != 0 {
			t.Fatalf("OCT(exit, %d) = %g", p, oct.At(9, p))
		}
	}
	// Entries are positive for non-exit tasks.
	for p := 0; p < w.M(); p++ {
		if oct.At(0, p) <= 0 {
			t.Fatalf("OCT(t1, %d) = %g", p, oct.At(0, p))
		}
	}
}

func TestPEFTValidAndCompetitive(t *testing.T) {
	r := rng.New(61)
	worseCount := 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		w := randomWorkload(t, r, 40, 4)
		ps, err := PEFT(w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mustValidate(t, ps)
		hs, err := HEFT(w, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ps.Makespan() <= 0 {
			t.Fatal("bad makespan")
		}
		if ps.Makespan() > 1.5*hs.Makespan() {
			worseCount++
		}
	}
	// PEFT should generally be in HEFT's ballpark.
	if worseCount > trials/3 {
		t.Errorf("PEFT >1.5x HEFT on %d/%d instances", worseCount, trials)
	}
}

func TestPEFTCanonicalSanity(t *testing.T) {
	w := topcuogluExample(t)
	s, err := PEFT(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The published PEFT schedule for this example reaches makespan 86 in
	// the authors' accounting (HEFT gets 80 on this particular graph);
	// ASAP re-evaluation can only tighten. Band it.
	if s.Makespan() < 60 || s.Makespan() > 110 {
		t.Fatalf("PEFT makespan = %g out of plausible band", s.Makespan())
	}
}

func TestPEFTSingleProcessor(t *testing.T) {
	r := rng.New(67)
	w := randomWorkload(t, r, 10, 1)
	s, err := PEFT(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < w.N(); i++ {
		sum += w.ExpectedAt(i, 0)
	}
	if math.Abs(s.Makespan()-sum) > 1e-9 {
		t.Fatalf("single-proc PEFT makespan %g != serial sum %g", s.Makespan(), sum)
	}
}
