package heft

import (
	"math"
	"sort"

	"robsched/internal/platform"
	"robsched/internal/schedule"
)

// PEFT schedules the workload with the Predict Earliest Finish Time
// heuristic (Arabnejad & Barbosa, IEEE TPDS 2014), the best-known
// successor to HEFT. It precomputes an optimistic cost table (OCT):
//
//	OCT(v, p) = max over successors s of
//	            min over processors q of
//	            [ OCT(s, q) + w(s, q) + (p == q ? 0 : mean comm(v→s)) ]
//
// — the optimistic remaining time to finish if v runs on p. Tasks are
// ranked by their mean OCT row; each is placed on the processor minimizing
// the *predicted* EFT: the insertion-based EFT plus OCT(v, p), so the
// placement looks one hop ahead instead of being purely greedy.
func PEFT(w *platform.Workload, opts Options) (*schedule.Schedule, error) {
	oct := OptimisticCostTable(w)
	n, m := w.N(), w.M()
	// Rank = mean OCT across processors.
	rank := make([]float64, n)
	for v := 0; v < n; v++ {
		sum := 0.0
		for p := 0; p < m; p++ {
			sum += oct.At(v, p)
		}
		rank[v] = sum / float64(m)
	}
	// Ready-list scheduling in decreasing rank order with the
	// OCT-augmented processor choice.
	order := readyOrder(w, rank)
	timelines := make([][]slot, m)
	proc := make([]int, n)
	aft := make([]float64, n)
	for i := range proc {
		proc[i] = -1
	}
	for _, v := range order {
		bestProc, bestStart := -1, 0.0
		bestPredicted := math.Inf(1)
		for p := 0; p < m; p++ {
			ready := 0.0
			for _, a := range w.G.Predecessors(v) {
				u := a.To
				if t := aft[u] + w.Sys.CommCost(proc[u], p, a.Data); t > ready {
					ready = t
				}
			}
			dur := w.ExpectedAt(v, p)
			start := findStart(timelines[p], ready, dur, opts.NoInsertion)
			if predicted := start + dur + oct.At(v, p); predicted < bestPredicted {
				bestProc, bestStart, bestPredicted = p, start, predicted
			}
		}
		proc[v] = bestProc
		aft[v] = bestStart + w.ExpectedAt(v, bestProc)
		timelines[bestProc] = insertSlot(timelines[bestProc], slot{bestStart, aft[v], v})
	}
	procOrder := make([][]int, m)
	for p, tl := range timelines {
		for _, s := range tl {
			procOrder[p] = append(procOrder[p], s.task)
		}
	}
	// Defensive: timelines are sorted by start; re-sort in case of ties.
	for p := range procOrder {
		sort.SliceStable(procOrder[p], func(a, b int) bool {
			va, vb := procOrder[p][a], procOrder[p][b]
			return startOf(timelines[p], va) < startOf(timelines[p], vb)
		})
	}
	return schedule.New(w, proc, procOrder)
}

func startOf(tl []slot, task int) float64 {
	for _, s := range tl {
		if s.task == task {
			return s.start
		}
	}
	return math.Inf(1)
}

// OptimisticCostTable computes PEFT's OCT matrix (n×m): zero for exit
// tasks, otherwise the optimistic remaining completion time after v on p.
func OptimisticCostTable(w *platform.Workload) platform.Matrix {
	n, m := w.N(), w.M()
	oct := platform.NewMatrix(n, m)
	topo := w.G.TopologicalOrder()
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		for p := 0; p < m; p++ {
			worst := 0.0
			for _, a := range w.G.Successors(v) {
				s := a.To
				best := math.Inf(1)
				for q := 0; q < m; q++ {
					c := oct.At(s, q) + w.ExpectedAt(s, q)
					if p != q {
						c += w.Sys.MeanCommCost(a.Data)
					}
					if c < best {
						best = c
					}
				}
				if best > worst {
					worst = best
				}
			}
			oct.Set(v, p, worst)
		}
	}
	return oct
}
