// Package heft implements the deterministic list-scheduling baselines the
// paper compares against and seeds its GA with: HEFT (Heterogeneous
// Earliest Finish Time) and CPOP (Critical Path On a Processor), both from
// Topcuoglu, Hariri & Wu (IEEE TPDS 2002), plus a uniformly random valid
// scheduler. All of them schedule with the workload's *expected* durations,
// exactly like the paper's scheduler inputs.
package heft

import (
	"fmt"
	"math"
	"sort"

	"robsched/internal/platform"
	"robsched/internal/schedule"
)

// Options tunes the list schedulers; the zero value is the paper-faithful
// configuration.
type Options struct {
	// NoInsertion disables HEFT's insertion-based slot search and appends
	// each task after the last one on the candidate processor. Exposed for
	// the ablation benchmark.
	NoInsertion bool
}

// HEFT schedules the workload with the HEFT heuristic and returns the
// resulting schedule. The schedule's Makespan() is evaluated with the
// paper's ASAP semantics over the disjunctive graph, which can only be at
// most the finish time HEFT itself computed.
func HEFT(w *platform.Workload, opts Options) (*schedule.Schedule, error) {
	ranks := UpwardRanks(w)
	order := tasksByDescending(ranks)
	return scheduleByList(w, order, opts, nil, -1)
}

// CPOP schedules the workload with the CPOP heuristic: tasks on the
// critical path (maximal upward+downward rank) are pinned to the single
// processor that minimizes the path's total execution time; all other tasks
// go to the processor with the earliest insertion-based finish time. Tasks
// are processed in decreasing priority order among ready tasks.
func CPOP(w *platform.Workload, opts Options) (*schedule.Schedule, error) {
	up := UpwardRanks(w)
	down := DownwardRanks(w)
	n := w.N()
	prio := make([]float64, n)
	for v := 0; v < n; v++ {
		prio[v] = up[v] + down[v]
	}
	// |CP| is the priority of the critical entry task; every task whose
	// priority equals it (within tolerance) is on a critical path.
	cpLen := 0.0
	for _, e := range w.G.Entries() {
		if prio[e] > cpLen {
			cpLen = prio[e]
		}
	}
	onCP := make([]bool, n)
	var cpTasks []int
	const tol = 1e-9
	for v := 0; v < n; v++ {
		if prio[v] >= cpLen-tol {
			onCP[v] = true
			cpTasks = append(cpTasks, v)
		}
	}
	// Pick the processor minimizing the critical path's total time.
	bestProc, bestSum := 0, math.Inf(1)
	for p := 0; p < w.M(); p++ {
		sum := 0.0
		for _, v := range cpTasks {
			sum += w.ExpectedAt(v, p)
		}
		if sum < bestSum {
			bestSum, bestProc = sum, p
		}
	}
	// Ready-list scheduling in decreasing priority order.
	order := readyOrder(w, prio)
	return scheduleByList(w, order, opts, onCP, bestProc)
}

// UpwardRanks returns HEFT's upward rank of every task:
// rank_u(v) = mean expected duration of v + max over successors of
// (mean communication cost + rank_u(successor)).
func UpwardRanks(w *platform.Workload) []float64 {
	n := w.N()
	rank := make([]float64, n)
	topo := w.G.TopologicalOrder()
	for i := n - 1; i >= 0; i-- {
		v := topo[i]
		best := 0.0
		for _, a := range w.G.Successors(v) {
			c := w.Sys.MeanCommCost(a.Data) + rank[a.To]
			if c > best {
				best = c
			}
		}
		rank[v] = w.MeanExpected(v) + best
	}
	return rank
}

// DownwardRanks returns CPOP's downward rank of every task:
// rank_d(v) = max over predecessors of (rank_d(pred) + mean duration of
// pred + mean communication cost); zero for entry tasks.
func DownwardRanks(w *platform.Workload) []float64 {
	n := w.N()
	rank := make([]float64, n)
	for _, v := range w.G.TopologicalOrder() {
		best := 0.0
		for _, a := range w.G.Predecessors(v) {
			u := a.To
			c := rank[u] + w.MeanExpected(u) + w.Sys.MeanCommCost(a.Data)
			if c > best {
				best = c
			}
		}
		rank[v] = best
	}
	return rank
}

// tasksByDescending returns task ids sorted by decreasing score; ties break
// by increasing id, keeping the order deterministic. For HEFT's upward
// ranks the result is always a valid topological order.
func tasksByDescending(score []float64) []int {
	order := make([]int, len(score))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if score[order[a]] != score[order[b]] {
			return score[order[a]] > score[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// readyOrder produces a full processing order by repeatedly picking the
// highest-priority ready task (CPOP's ready-list policy).
func readyOrder(w *platform.Workload, prio []float64) []int {
	n := w.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = w.G.InDegree(v)
	}
	var ready []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		best := 0
		for i := 1; i < len(ready); i++ {
			if prio[ready[i]] > prio[ready[best]] ||
				(prio[ready[i]] == prio[ready[best]] && ready[i] < ready[best]) {
				best = i
			}
		}
		v := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, v)
		for _, a := range w.G.Successors(v) {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				ready = append(ready, a.To)
			}
		}
	}
	return order
}

// slot is one occupied interval on a processor timeline.
type slot struct {
	start, finish float64
	task          int
}

// scheduleByList runs insertion-based earliest-finish-time list scheduling
// over the given task order. If pinned is non-nil, tasks with pinned[v] true
// are forced onto pinnedProc (CPOP's critical-path rule). The order must be
// a valid topological order.
func scheduleByList(w *platform.Workload, order []int, opts Options, pinned []bool, pinnedProc int) (*schedule.Schedule, error) {
	if !w.G.IsTopologicalOrder(order) {
		return nil, fmt.Errorf("heft: processing order is not topological")
	}
	n, m := w.N(), w.M()
	timelines := make([][]slot, m)
	proc := make([]int, n)
	aft := make([]float64, n) // actual finish time in the list schedule
	for i := range proc {
		proc[i] = -1
	}
	for _, v := range order {
		bestProc, bestStart, bestFinish := -1, 0.0, math.Inf(1)
		lo, hi := 0, m
		if pinned != nil && pinned[v] {
			lo, hi = pinnedProc, pinnedProc+1
		}
		for p := lo; p < hi; p++ {
			ready := 0.0
			for _, a := range w.G.Predecessors(v) {
				u := a.To
				t := aft[u] + w.Sys.CommCost(proc[u], p, a.Data)
				if t > ready {
					ready = t
				}
			}
			dur := w.ExpectedAt(v, p)
			start := findStart(timelines[p], ready, dur, opts.NoInsertion)
			if finish := start + dur; finish < bestFinish {
				bestProc, bestStart, bestFinish = p, start, finish
			}
		}
		proc[v] = bestProc
		aft[v] = bestFinish
		timelines[bestProc] = insertSlot(timelines[bestProc], slot{bestStart, bestFinish, v})
	}
	procOrder := make([][]int, m)
	for p, tl := range timelines {
		for _, s := range tl {
			procOrder[p] = append(procOrder[p], s.task)
		}
	}
	return schedule.New(w, proc, procOrder)
}

// findStart returns the earliest start >= ready on the timeline where a
// task of length dur fits. With noInsertion it simply starts after the last
// occupied slot (or at ready, whichever is later).
func findStart(tl []slot, ready, dur float64, noInsertion bool) float64 {
	if noInsertion {
		if len(tl) == 0 {
			return ready
		}
		if last := tl[len(tl)-1].finish; last > ready {
			return last
		}
		return ready
	}
	start := ready
	for _, s := range tl {
		if start+dur <= s.start+1e-12 {
			return start
		}
		if s.finish > start {
			start = s.finish
		}
	}
	return start
}

// insertSlot inserts s keeping the timeline sorted by start time.
func insertSlot(tl []slot, s slot) []slot {
	i := sort.Search(len(tl), func(i int) bool { return tl[i].start > s.start })
	tl = append(tl, slot{})
	copy(tl[i+1:], tl[i:])
	tl[i] = s
	return tl
}

// intSource is the randomness RandomSchedule needs; *rng.Source satisfies it.
type intSource interface{ Intn(int) int }

// RandomSchedule returns a uniformly random valid schedule: a random
// topological order with every task assigned to a uniformly random
// processor. The GA's initial population is built from these.
func RandomSchedule(w *platform.Workload, r intSource) (*schedule.Schedule, error) {
	order := w.G.RandomTopologicalOrder(r)
	proc := make([]int, w.N())
	for i := range proc {
		proc[i] = r.Intn(w.M())
	}
	return schedule.FromOrder(w, order, proc)
}
