package ga

import (
	"testing"

	"robsched/internal/rng"
)

func TestRunIslandsValidation(t *testing.T) {
	c := IslandConfig[bits]{Base: oneMaxConfig(8), Islands: 0}
	if _, err := RunIslands(c, rng.New(1)); err == nil {
		t.Error("Islands=0 accepted")
	}
	c = IslandConfig[bits]{Base: oneMaxConfig(8), Islands: 2}
	c.Base.OnGeneration = func(int, []bits, []float64) {}
	if _, err := RunIslands(c, rng.New(1)); err == nil {
		t.Error("OnGeneration accepted with islands")
	}
	bad := oneMaxConfig(8)
	bad.PopSize = 1
	if _, err := RunIslands(IslandConfig[bits]{Base: bad, Islands: 2}, rng.New(1)); err == nil {
		t.Error("invalid base config accepted")
	}
}

func TestRunIslandsSingleIslandDelegates(t *testing.T) {
	c := oneMaxConfig(16)
	c.MaxGenerations = 100
	c.Stagnation = 0
	res, err := RunIslands(IslandConfig[bits]{Base: c, Islands: 1}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < 14 {
		t.Fatalf("single island fitness %g", res.BestFitness)
	}
}

func TestRunIslandsSolvesOneMax(t *testing.T) {
	const n = 24
	c := oneMaxConfig(n)
	c.MaxGenerations = 300
	c.Stagnation = 0
	res, err := RunIslands(IslandConfig[bits]{Base: c, Islands: 4, MigrationEvery: 20}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != n {
		t.Fatalf("islands reached fitness %g after %d generations, want %d",
			res.BestFitness, res.Generations, n)
	}
}

func TestRunIslandsSeedMigrates(t *testing.T) {
	// Give island 0 the optimal seed with crossover and mutation disabled:
	// only migration can spread it, and the global best must be optimal.
	const n = 12
	c := oneMaxConfig(n)
	seed := make(bits, n)
	for i := range seed {
		seed[i] = 1
	}
	c.Seeds = []bits{seed}
	c.CrossoverRate = 0
	c.MutationRate = 0
	c.MaxGenerations = 60
	c.Stagnation = 0
	res, err := RunIslands(IslandConfig[bits]{Base: c, Islands: 3, MigrationEvery: 10}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != n {
		t.Fatalf("optimal seed lost: best %g", res.BestFitness)
	}
}

func TestRunIslandsDeterministic(t *testing.T) {
	run := func() float64 {
		c := oneMaxConfig(20)
		c.MaxGenerations = 60
		c.Stagnation = 0
		res, err := RunIslands(IslandConfig[bits]{Base: c, Islands: 3, MigrationEvery: 15}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return res.BestFitness
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("island run not deterministic: %g vs %g", a, b)
	}
}

func TestRunIslandsStagnation(t *testing.T) {
	c := oneMaxConfig(6)
	c.MaxGenerations = 2000
	c.Stagnation = 15
	res, err := RunIslands(IslandConfig[bits]{Base: c, Islands: 3, MigrationEvery: 10}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stagnated {
		t.Fatalf("islands did not stagnate on trivial problem (gens=%d)", res.Generations)
	}
	if res.Generations >= 2000 {
		t.Fatal("ran to the cap despite stagnation")
	}
}
