package ga

import (
	"testing"

	"robsched/internal/rng"
)

func TestRunIslandsValidation(t *testing.T) {
	c := IslandConfig[bits]{Base: oneMaxConfig(8), Islands: 0}
	if _, err := RunIslands(c, rng.New(1)); err == nil {
		t.Error("Islands=0 accepted")
	}
	c = IslandConfig[bits]{Base: oneMaxConfig(8), Islands: 2}
	c.Base.OnGeneration = func(int, []bits, []float64) {}
	if _, err := RunIslands(c, rng.New(1)); err == nil {
		t.Error("OnGeneration accepted with islands")
	}
	bad := oneMaxConfig(8)
	bad.PopSize = 1
	if _, err := RunIslands(IslandConfig[bits]{Base: bad, Islands: 2}, rng.New(1)); err == nil {
		t.Error("invalid base config accepted")
	}
}

func TestRunIslandsSingleIslandDelegates(t *testing.T) {
	c := oneMaxConfig(16)
	c.MaxGenerations = 100
	c.Stagnation = 0
	res, err := RunIslands(IslandConfig[bits]{Base: c, Islands: 1}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < 14 {
		t.Fatalf("single island fitness %g", res.BestFitness)
	}
}

func TestRunIslandsSolvesOneMax(t *testing.T) {
	const n = 24
	c := oneMaxConfig(n)
	c.MaxGenerations = 300
	c.Stagnation = 0
	res, err := RunIslands(IslandConfig[bits]{Base: c, Islands: 4, MigrationEvery: 20}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != n {
		t.Fatalf("islands reached fitness %g after %d generations, want %d",
			res.BestFitness, res.Generations, n)
	}
}

func TestRunIslandsSeedMigrates(t *testing.T) {
	// Give island 0 the optimal seed with crossover and mutation disabled:
	// only migration can spread it, and the global best must be optimal.
	const n = 12
	c := oneMaxConfig(n)
	seed := make(bits, n)
	for i := range seed {
		seed[i] = 1
	}
	c.Seeds = []bits{seed}
	c.CrossoverRate = 0
	c.MutationRate = 0
	c.MaxGenerations = 60
	c.Stagnation = 0
	res, err := RunIslands(IslandConfig[bits]{Base: c, Islands: 3, MigrationEvery: 10}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != n {
		t.Fatalf("optimal seed lost: best %g", res.BestFitness)
	}
}

func TestRunIslandsDeterministic(t *testing.T) {
	run := func() float64 {
		c := oneMaxConfig(20)
		c.MaxGenerations = 60
		c.Stagnation = 0
		res, err := RunIslands(IslandConfig[bits]{Base: c, Islands: 3, MigrationEvery: 15}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return res.BestFitness
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("island run not deterministic: %g vs %g", a, b)
	}
}

func TestRunIslandsStagnation(t *testing.T) {
	c := oneMaxConfig(6)
	c.MaxGenerations = 2000
	c.Stagnation = 15
	res, err := RunIslands(IslandConfig[bits]{Base: c, Islands: 3, MigrationEvery: 10}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stagnated {
		t.Fatalf("islands did not stagnate on trivial problem (gens=%d)", res.Generations)
	}
	if res.Generations >= 2000 {
		t.Fatal("ran to the cap despite stagnation")
	}
}

// TestIslandSnapshotRestoreBitIdentical: an island restored from a snapshot
// evolves exactly like the original continuing — best fitness, stagnation
// counter and RNG stream all agree after every subsequent epoch, for
// snapshots taken at several different barriers.
func TestIslandSnapshotRestoreBitIdentical(t *testing.T) {
	c := oneMaxConfig(20)
	c.MaxGenerations = 100
	for _, cutEpoch := range []int{0, 1, 3} {
		orig, err := NewIsland(c, 1, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		gen := 0
		for e := 0; e < cutEpoch; e++ {
			if err := orig.Epoch(gen, 7); err != nil {
				t.Fatal(err)
			}
			gen += 7
		}
		snap := orig.Snapshot()
		restored, err := RestoreIsland(c, 1, snap)
		if err != nil {
			t.Fatal(err)
		}
		if restored.Index() != 1 {
			t.Fatalf("restored index %d", restored.Index())
		}
		for e := 0; e < 4; e++ {
			if err := orig.Epoch(gen, 5); err != nil {
				t.Fatal(err)
			}
			if err := restored.Epoch(gen, 5); err != nil {
				t.Fatal(err)
			}
			gen += 5
			_, obf := orig.Best()
			_, rbf := restored.Best()
			if obf != rbf {
				t.Fatalf("cut %d epoch %d: best fitness %g != %g", cutEpoch, e, obf, rbf)
			}
			if orig.SinceImprove() != restored.SinceImprove() {
				t.Fatalf("cut %d epoch %d: sinceImprove %d != %d",
					cutEpoch, e, orig.SinceImprove(), restored.SinceImprove())
			}
			for i := range orig.fit {
				if orig.fit[i] != restored.fit[i] {
					t.Fatalf("cut %d epoch %d: fitness %d diverged", cutEpoch, e, i)
				}
			}
		}
		// The RNG streams stayed in lockstep through all of it.
		if orig.rng.Uint64() != restored.rng.Uint64() {
			t.Fatalf("cut %d: rng streams diverged", cutEpoch)
		}
	}
}

// TestIslandSnapshotRestoreWithMigration: snapshot, then both copies receive
// the same migrant and keep evolving identically.
func TestIslandSnapshotRestoreWithMigration(t *testing.T) {
	c := oneMaxConfig(16)
	c.MaxGenerations = 100
	orig, err := NewIsland(c, 0, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.Epoch(0, 6); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreIsland(c, 0, orig.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	migrant := make(bits, 16)
	for i := range migrant {
		migrant[i] = 1
	}
	if err := orig.Migrate(migrant); err != nil {
		t.Fatal(err)
	}
	if err := restored.Migrate(migrant); err != nil {
		t.Fatal(err)
	}
	if err := orig.Epoch(6, 6); err != nil {
		t.Fatal(err)
	}
	if err := restored.Epoch(6, 6); err != nil {
		t.Fatal(err)
	}
	_, obf := orig.Best()
	_, rbf := restored.Best()
	if obf != rbf {
		t.Fatalf("post-migration best %g != %g", obf, rbf)
	}
}

// TestRestoreIslandValidation: bad snapshots are rejected with errors.
func TestRestoreIslandValidation(t *testing.T) {
	c := oneMaxConfig(8)
	is, err := NewIsland(c, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	snap := is.Snapshot()

	short := snap
	short.Pop = snap.Pop[:len(snap.Pop)-1]
	if _, err := RestoreIsland(c, 0, short); err == nil {
		t.Error("short population accepted")
	}
	mismatch := snap
	mismatch.Fit = snap.Fit[:len(snap.Fit)-1]
	if _, err := RestoreIsland(c, 0, mismatch); err == nil {
		t.Error("fitness/population length mismatch accepted")
	}
	bad := c
	bad.PopSize = 1
	if _, err := RestoreIsland(bad, 0, snap); err == nil {
		t.Error("invalid config accepted")
	}
	hook := c
	hook.OnGeneration = func(int, []bits, []float64) {}
	if _, err := RestoreIsland(hook, 0, snap); err == nil {
		t.Error("OnGeneration accepted")
	}
}
