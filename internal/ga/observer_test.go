package ga

import (
	"math"
	"reflect"
	"testing"

	"robsched/internal/rng"
)

// collect runs the config with a recording observer and returns the full
// GenStats trajectory.
func collectStats(t *testing.T, c Config[bits], seed uint64) []GenStats {
	t.Helper()
	var got []GenStats
	c.Observer = ObserverFunc(func(s GenStats) { got = append(got, s) })
	if _, err := Run(c, rng.New(seed)); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestObserverTrajectoryShape(t *testing.T) {
	c := oneMaxConfig(16)
	c.MaxGenerations = 30
	c.Stagnation = 0
	stats := collectStats(t, c, 11)
	if len(stats) != 31 {
		t.Fatalf("got %d stats, want 31 (gen 0..30)", len(stats))
	}
	for i, s := range stats {
		if s.Gen != i || s.Island != 0 {
			t.Fatalf("stats[%d] = {Island:%d Gen:%d}, want {0 %d}", i, s.Island, s.Gen, i)
		}
		if s.Best < s.Mean-1e-12 {
			t.Fatalf("gen %d: best %g < mean %g", i, s.Best, s.Mean)
		}
		if s.Diversity < 0 || s.Diversity > 1 || math.IsNaN(s.Diversity) {
			t.Fatalf("gen %d: diversity %g outside (0,1]", i, s.Diversity)
		}
	}
	if stats[0].Crossovers != 0 || stats[0].Mutations != 0 {
		t.Fatalf("gen 0 must report zero operator counts, got %+v", stats[0])
	}
	anyOps := false
	for _, s := range stats[1:] {
		if s.Crossovers > 0 || s.Mutations > 0 {
			anyOps = true
		}
		// Each generation fills PopSize-1 slots from pairs; crossovers are
		// per-pair and mutations per-child, so both are bounded by PopSize.
		if s.Crossovers > c.PopSize || s.Mutations > c.PopSize {
			t.Fatalf("gen %d: implausible operator counts %+v", s.Gen, s)
		}
	}
	if !anyOps {
		t.Fatal("no operator applications observed over 30 generations")
	}
}

func TestObserverDiversityNaNWithoutKey(t *testing.T) {
	c := oneMaxConfig(8)
	c.Key = nil
	c.MaxGenerations = 3
	c.Stagnation = 0
	for _, s := range collectStats(t, c, 3) {
		if !math.IsNaN(s.Diversity) {
			t.Fatalf("gen %d: diversity = %g, want NaN without Key", s.Gen, s.Diversity)
		}
	}
}

// TestObserverDeterministic pins the core contract: same config + same seed
// → bit-identical, identically ordered GenStats sequences.
func TestObserverDeterministic(t *testing.T) {
	c := oneMaxConfig(24)
	c.MaxGenerations = 40
	c.Stagnation = 0
	a := collectStats(t, c, 99)
	b := collectStats(t, c, 99)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("observer trajectories differ between identical runs")
	}
}

// TestObserverMatchesResult cross-checks the trajectory against the engine's
// own result: the final best stat must equal Result.BestFitness and the
// number of evolved generations must equal Result.Generations.
func TestObserverMatchesResult(t *testing.T) {
	c := oneMaxConfig(16)
	c.MaxGenerations = 50
	c.Stagnation = 10
	var got []GenStats
	c.Observer = ObserverFunc(func(s GenStats) { got = append(got, s) })
	res, err := Run(c, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != res.Generations+1 {
		t.Fatalf("observed %d stats, want Generations+1 = %d", len(got), res.Generations+1)
	}
	last := got[len(got)-1]
	if last.Best != res.BestFitness {
		t.Fatalf("final observed best %g != result best %g", last.Best, res.BestFitness)
	}
}

// TestObserverIslandsDeterministicOrder runs an island configuration twice
// and demands the identical ordered sequence — the epoch-barrier buffering
// must erase goroutine scheduling from the emission order.
func TestObserverIslandsDeterministicOrder(t *testing.T) {
	runOnce := func() []GenStats {
		base := oneMaxConfig(16)
		base.MaxGenerations = 30
		base.Stagnation = 0
		var got []GenStats
		base.Observer = ObserverFunc(func(s GenStats) { got = append(got, s) })
		_, err := RunIslands(IslandConfig[bits]{Base: base, Islands: 3, MigrationEvery: 7}, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a := runOnce()
	b := runOnce()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("island observer trajectories differ between identical runs")
	}
	// 3 islands × (gen 0 + 30 generations).
	if len(a) != 3*31 {
		t.Fatalf("observed %d stats, want %d", len(a), 3*31)
	}
	// Gen 0 for all islands in index order, then strict (gen, island) order.
	for i := 0; i < 3; i++ {
		if a[i].Gen != 0 || a[i].Island != i {
			t.Fatalf("prefix[%d] = {Island:%d Gen:%d}, want island %d gen 0", i, a[i].Island, a[i].Gen, i)
		}
	}
	for i := 3; i < len(a); i++ {
		gen, island := 1+(i-3)/3, (i-3)%3
		if a[i].Gen != gen || a[i].Island != island {
			t.Fatalf("stats[%d] = {Island:%d Gen:%d}, want {%d %d}", i, a[i].Island, a[i].Gen, island, gen)
		}
	}
}

func TestMultiObserver(t *testing.T) {
	if MultiObserver() != nil || MultiObserver(nil, nil) != nil {
		t.Fatal("MultiObserver of no live observers must be nil")
	}
	var one []int
	o1 := ObserverFunc(func(s GenStats) { one = append(one, s.Gen) })
	if got := MultiObserver(nil, o1); got == nil {
		t.Fatal("single live observer must survive")
	} else {
		got.ObserveGeneration(GenStats{Gen: 7})
	}
	var order []string
	oa := ObserverFunc(func(GenStats) { order = append(order, "a") })
	ob := ObserverFunc(func(GenStats) { order = append(order, "b") })
	MultiObserver(oa, nil, ob).ObserveGeneration(GenStats{})
	if len(one) != 1 || one[0] != 7 {
		t.Fatalf("single observer saw %v, want [7]", one)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("fan-out order = %v, want [a b]", order)
	}
}
