package ga

import (
	"strings"
	"testing"

	"robsched/internal/rng"
)

// oneMax is a bitstring test problem: fitness = number of ones. The GA must
// reliably solve it, which exercises selection pressure, crossover,
// mutation and elitism end to end.
type bits []byte

func oneMaxConfig(n int) Config[bits] {
	c := Config[bits]{
		Random: func(r *rng.Source) bits {
			b := make(bits, n)
			for i := range b {
				b[i] = byte(r.Intn(2))
			}
			return b
		},
		Crossover: func(a, b bits, r *rng.Source) (bits, bits) {
			cut := 1 + r.Intn(n-1)
			c1 := append(append(bits{}, a[:cut]...), b[cut:]...)
			c2 := append(append(bits{}, b[:cut]...), a[cut:]...)
			return c1, c2
		},
		Mutate: func(ind bits, r *rng.Source) bits {
			out := append(bits{}, ind...)
			out[r.Intn(n)] ^= 1
			return out
		},
		Evaluate: func(pop []bits) []float64 {
			fit := make([]float64, len(pop))
			for i, ind := range pop {
				for _, b := range ind {
					fit[i] += float64(b)
				}
			}
			return fit
		},
		Key: func(ind bits) uint64 {
			const prime64 = 1099511628211
			h := uint64(14695981039346656037)
			for _, b := range ind {
				h = (h ^ uint64(b)) * prime64
			}
			return h
		},
	}
	c.PaperDefaults()
	return c
}

func TestPaperDefaults(t *testing.T) {
	var c Config[bits]
	c.PaperDefaults()
	if c.PopSize != 20 || c.CrossoverRate != 0.9 || c.MutationRate != 0.1 ||
		c.MaxGenerations != 1000 || c.Stagnation != 100 {
		t.Fatalf("PaperDefaults = %+v", c)
	}
}

func TestValidate(t *testing.T) {
	base := oneMaxConfig(8)
	muts := []struct {
		name string
		f    func(*Config[bits])
	}{
		{"pop", func(c *Config[bits]) { c.PopSize = 1 }},
		{"pc", func(c *Config[bits]) { c.CrossoverRate = 1.5 }},
		{"pm", func(c *Config[bits]) { c.MutationRate = -0.1 }},
		{"gens", func(c *Config[bits]) { c.MaxGenerations = 0 }},
		{"stag", func(c *Config[bits]) { c.Stagnation = -1 }},
		{"hooks", func(c *Config[bits]) { c.Evaluate = nil }},
		{"seeds", func(c *Config[bits]) { c.Seeds = make([]bits, 21) }},
	}
	for _, m := range muts {
		c := base
		m.f(&c)
		if _, err := Run(c, rng.New(1)); err == nil {
			t.Errorf("%s: invalid config accepted", m.name)
		}
	}
}

func TestSolvesOneMax(t *testing.T) {
	const n = 24
	c := oneMaxConfig(n)
	c.MaxGenerations = 400
	c.Stagnation = 0
	res, err := Run(c, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != n {
		t.Fatalf("best fitness %g after %d generations, want %d", res.BestFitness, res.Generations, n)
	}
}

func TestBestFitnessMonotoneWithAbsoluteFitness(t *testing.T) {
	// With an absolute (population-independent) fitness, elitism must make
	// the per-generation best non-decreasing.
	c := oneMaxConfig(16)
	c.MaxGenerations = 150
	c.Stagnation = 0
	prev := -1.0
	c.OnGeneration = func(gen int, pop []bits, fit []float64) {
		best := fit[0]
		for _, f := range fit {
			if f > best {
				best = f
			}
		}
		if best < prev {
			t.Fatalf("generation %d: best fitness dropped %g -> %g", gen, prev, best)
		}
		prev = best
	}
	if _, err := Run(c, rng.New(7)); err != nil {
		t.Fatal(err)
	}
}

func TestSeedsEnterInitialPopulation(t *testing.T) {
	const n = 16
	c := oneMaxConfig(n)
	seed := make(bits, n)
	for i := range seed {
		seed[i] = 1
	}
	c.Seeds = []bits{seed}
	sawSeed := false
	c.OnGeneration = func(gen int, pop []bits, fit []float64) {
		if gen != 0 {
			return
		}
		for _, ind := range pop {
			if string(ind) == string(seed) {
				sawSeed = true
			}
		}
	}
	c.MaxGenerations = 1
	c.Stagnation = 0
	res, err := Run(c, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !sawSeed {
		t.Fatal("seed not present in initial population")
	}
	// The all-ones seed is optimal: it must be the final best.
	if res.BestFitness != n {
		t.Fatalf("best fitness %g, want %d (the seed)", res.BestFitness, n)
	}
}

func TestInitialPopulationUnique(t *testing.T) {
	c := oneMaxConfig(10)
	c.OnGeneration = func(gen int, pop []bits, fit []float64) {
		if gen != 0 {
			return
		}
		seen := map[string]bool{}
		for _, ind := range pop {
			k := string(ind)
			if seen[k] {
				t.Fatalf("duplicate chromosome in initial population: %v", ind)
			}
			seen[k] = true
		}
	}
	c.MaxGenerations = 1
	if _, err := Run(c, rng.New(5)); err != nil {
		t.Fatal(err)
	}
}

func TestUniquenessFallbackOnTinySpace(t *testing.T) {
	// Only 2 distinct 1-bit chromosomes exist but PopSize is 4: the
	// uniqueness check must relax rather than loop forever.
	c := oneMaxConfig(1)
	c.PopSize = 4
	c.Crossover = func(a, b bits, r *rng.Source) (bits, bits) {
		return append(bits{}, a...), append(bits{}, b...)
	}
	c.MaxGenerations = 2
	res, err := Run(c, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness != 1 {
		t.Fatalf("best fitness %g, want 1", res.BestFitness)
	}
}

func TestStagnationStops(t *testing.T) {
	c := oneMaxConfig(6)
	c.MaxGenerations = 1000
	c.Stagnation = 10
	res, err := Run(c, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// A 6-bit OneMax converges almost immediately; the run must stop on
	// stagnation well before 1000 generations.
	if !res.Stagnated {
		t.Fatalf("run did not stagnate (generations=%d)", res.Generations)
	}
	if res.Generations >= 1000 {
		t.Fatalf("ran %d generations despite stagnation window", res.Generations)
	}
}

func TestPopulationSizeConstant(t *testing.T) {
	for _, np := range []int{2, 5, 20} { // includes an odd size
		c := oneMaxConfig(8)
		c.PopSize = np
		c.MaxGenerations = 20
		c.Stagnation = 0
		c.OnGeneration = func(gen int, pop []bits, fit []float64) {
			if len(pop) != np || len(fit) != np {
				t.Fatalf("Np=%d: generation %d has %d individuals, %d fitnesses", np, gen, len(pop), len(fit))
			}
		}
		if _, err := Run(c, rng.New(13)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTournamentProperties(t *testing.T) {
	c := oneMaxConfig(4)
	pop := []bits{{0, 0, 0, 0}, {1, 0, 0, 0}, {1, 1, 0, 0}, {1, 1, 1, 0}, {1, 1, 1, 1}, {0, 1, 0, 0}}
	fit := []float64{0, 1, 2, 3, 4, 1}
	r := rng.New(17)
	for trial := 0; trial < 50; trial++ {
		out := c.tournament(pop, fit, r)
		if len(out) != len(pop) {
			t.Fatalf("tournament changed population size: %d", len(out))
		}
		bestCopies, worstCopies := 0, 0
		for _, ind := range out {
			switch string(ind) {
			case string(pop[4]):
				bestCopies++
			case string(pop[0]):
				worstCopies++
			}
		}
		if bestCopies < 2 {
			t.Fatalf("best individual got %d copies, want >= 2", bestCopies)
		}
		if worstCopies != 0 {
			t.Fatalf("worst individual survived with %d copies", worstCopies)
		}
	}
}

func TestZeroRatesStillRun(t *testing.T) {
	c := oneMaxConfig(8)
	c.CrossoverRate = 0
	c.MutationRate = 0
	c.MaxGenerations = 30
	c.Stagnation = 0
	res, err := Run(c, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	// Selection alone should at least keep the initial best.
	if res.BestFitness < 4 {
		t.Fatalf("best fitness %g suspiciously low", res.BestFitness)
	}
}

func TestEvaluateSizeMismatchRejected(t *testing.T) {
	c := oneMaxConfig(8)
	c.Evaluate = func(pop []bits) []float64 { return make([]float64, 1) }
	if _, err := Run(c, rng.New(1)); err == nil || !strings.Contains(err.Error(), "Evaluate returned") {
		t.Fatalf("mismatched Evaluate not rejected: %v", err)
	}
}

func BenchmarkOneMaxGeneration(b *testing.B) {
	c := oneMaxConfig(64)
	c.MaxGenerations = 1
	c.Stagnation = 0
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(c, r); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEvaluateOneElitismMatchesFullReevaluation: with a population-
// independent fitness, supplying EvaluateOne must leave the evolution
// trajectory bit-identical to the full post-elitism re-evaluation — it only
// skips redundant work.
func TestEvaluateOneElitismMatchesFullReevaluation(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		run := func(fast bool) Result[bits] {
			c := oneMaxConfig(24)
			c.MaxGenerations = 40
			c.Stagnation = 0
			if fast {
				c.EvaluateOne = func(ind bits) float64 {
					f := 0.0
					for _, b := range ind {
						f += float64(b)
					}
					return f
				}
			}
			res, err := Run(c, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		full, fast := run(false), run(true)
		if full.BestFitness != fast.BestFitness || full.Generations != fast.Generations ||
			full.Stagnated != fast.Stagnated {
			t.Fatalf("seed %d: EvaluateOne run diverged: %+v vs %+v", seed, fast, full)
		}
		if string(full.Best) != string(fast.Best) {
			t.Fatalf("seed %d: best individuals differ", seed)
		}
	}
}

// TestConstantKeyOnlyAffectsInitialDedup: the Key hook is consulted only
// while building the initial population. A constant (maximally colliding)
// Key makes every random candidate look like a duplicate, so the engine's
// bounded-miss fallback must kick in, fill the population to Np anyway, and
// the run must complete with fitness untouched by the hook.
func TestConstantKeyOnlyAffectsInitialDedup(t *testing.T) {
	c := oneMaxConfig(16)
	c.MaxGenerations = 30
	c.Stagnation = 0
	c.Key = func(bits) uint64 { return 42 }
	popSizes := map[int]bool{}
	c.OnGeneration = func(gen int, pop []bits, fit []float64) {
		popSizes[len(pop)] = true
	}
	res, err := Run(c, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(popSizes) != 1 || !popSizes[c.PopSize] {
		t.Fatalf("population size not constant at %d: %v", c.PopSize, popSizes)
	}
	if res.Generations != 30 {
		t.Fatalf("run did not complete: %d generations", res.Generations)
	}
	// The fallback accepts genotype duplicates; evolution still improves.
	if res.BestFitness < 12 {
		t.Fatalf("best fitness %g implausibly low for oneMax(16)", res.BestFitness)
	}
}

// TestRunSteadyStateAllocationFree: with EvaluateInto and non-allocating
// hooks, the per-generation cost of Run must be constant — the engine's
// arenas are reused, so 16x more generations may not allocate measurably
// more than the baseline run. This pins the tentpole property that the
// steady-state loop performs no per-generation slice allocations. The
// chromosome is a value type (a 16-bit mask in an int) so the hooks
// themselves cannot allocate; every allocation belongs to the engine.
func TestRunSteadyStateAllocationFree(t *testing.T) {
	newConfig := func(gens int) Config[int] {
		return Config[int]{
			PopSize: 20, CrossoverRate: 0.9, MutationRate: 0.1,
			MaxGenerations: gens, Stagnation: 0,
			Random: func(r *rng.Source) int { return r.Intn(1 << 16) },
			Crossover: func(a, b int, r *rng.Source) (int, int) {
				mask := (1 << (1 + r.Intn(15))) - 1
				return a&mask | b&^mask, b&mask | a&^mask
			},
			Mutate: func(ind int, r *rng.Source) int { return ind ^ (1 << r.Intn(16)) },
			EvaluateInto: func(pop []int, fit []float64) {
				for i, ind := range pop {
					fit[i] = float64(bitCount(ind))
				}
			},
		}
	}
	measure := func(gens int) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(newConfig(gens), rng.New(1)); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := measure(8), measure(128)
	// Fixed setup cost (initial population, arenas) plus a small slop; the
	// 120 extra generations must not contribute ~per-generation allocations.
	if long > short+8 {
		t.Fatalf("steady state allocates per generation: 8 gens → %.0f allocs, 128 gens → %.0f", short, long)
	}
}

func bitCount(v int) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
