package ga

import (
	"fmt"
	"sync"

	"robsched/internal/rng"
)

// IslandConfig runs K independent populations ("islands") of the same
// problem in parallel goroutines, exchanging their best individuals every
// MigrationEvery generations in a ring topology. Island models both cut
// wall-clock time on multicore machines and preserve diversity: separated
// populations explore different basins before migration cross-pollinates
// them.
type IslandConfig[T any] struct {
	// Base is the per-island configuration. Its Seeds go to island 0; all
	// islands share the hooks and parameters. OnGeneration is not
	// supported across islands and must be nil.
	Base Config[T]
	// Islands is the number of populations (>= 1; 1 degenerates to Run).
	Islands int
	// MigrationEvery is the generation interval between migrations
	// (default 25).
	MigrationEvery int
}

// DefaultMigrationEvery is the epoch length (generations between ring
// migrations) when IslandConfig.MigrationEvery is zero.
const DefaultMigrationEvery = 25

// Island is one population's live state together with the stepping
// operations of the island model: evolve an epoch, exchange a migrant,
// report the running best. RunIslands drives a set of Islands in
// goroutines; a distributed coordinator (internal/dist) drives the same
// state machine across worker processes — both produce bit-identical
// trajectories because every step is a pure function of the island's own
// RNG stream, its population and the migrants it receives.
type Island[T any] struct {
	cfg Config[T]
	idx int

	pop  []T
	fit  []float64
	rng  *rng.Source
	best T
	bf   float64
	ar   *genArena[T]

	// sinceImprove counts consecutive generations without a strict best-
	// fitness improvement, the per-island half of the global stagnation
	// criterion (a run stops when every island has stagnated).
	sinceImprove int

	// stats buffers the epoch's GenStats for deterministic emission at the
	// barrier (only filled when an Observer is configured).
	stats []GenStats
}

// NewIsland initializes island idx of an island-model run: it validates the
// configuration, builds and evaluates the initial population from r (the
// island's own stream — RunIslands derives one per island by root.Split()
// in island order) and records the initial best. Heuristic Seeds go to
// island 0 only, exactly as in RunIslands; OnGeneration is rejected because
// its cross-island ordering would depend on scheduling.
func NewIsland[T any](c Config[T], idx int, r *rng.Source) (*Island[T], error) {
	if c.OnGeneration != nil {
		return nil, fmt.Errorf("ga: OnGeneration is not supported with islands")
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	if idx != 0 {
		c.Seeds = nil // the paper's heuristic seed goes to island 0
	}
	pop := c.initialPopulation(r)
	fit, err := c.evalInto(pop, make([]float64, c.PopSize))
	if err != nil {
		return nil, err
	}
	bi := argmax(fit)
	return &Island[T]{
		cfg: c, idx: idx,
		pop: pop, fit: fit, rng: r, best: pop[bi], bf: fit[bi],
		ar: newArena[T](c.PopSize),
	}, nil
}

// Index returns the island's position in the ring.
func (is *Island[T]) Index() int { return is.idx }

// Best returns the island's current best individual and its fitness (as
// valued within the island's own population at its last evaluation).
func (is *Island[T]) Best() (T, float64) { return is.best, is.bf }

// SinceImprove returns the number of consecutive generations the island's
// best fitness has not strictly improved.
func (is *Island[T]) SinceImprove() int { return is.sinceImprove }

// InitStats returns the GenStats of the initial population (generation 0).
// Only meaningful when an Observer is configured on the base config; the
// island-model runner emits it before the first epoch.
func (is *Island[T]) InitStats() GenStats {
	return is.cfg.genStats(is.idx, 0, is.pop, is.fit, opCounts{})
}

// Epoch advances the island by gens generations. startGen is the number of
// generations already evolved (for stats numbering); when an Observer is
// configured the per-generation stats are buffered on the island — the
// caller emits them at its barrier in (generation, island) order so the
// observed trajectory is independent of how epochs are scheduled.
func (is *Island[T]) Epoch(startGen, gens int) error {
	for e := 0; e < gens; e++ {
		next, fit, oc, err := is.cfg.advance(is.pop, is.fit, is.best, is.ar, is.rng)
		if err != nil {
			return err
		}
		is.pop, is.fit = next, fit
		if is.cfg.Observer != nil {
			is.stats = append(is.stats, is.cfg.genStats(is.idx, startGen+e+1, is.pop, is.fit, oc))
		}
		bi := argmax(fit)
		if fit[bi] > is.bf+1e-12 {
			is.sinceImprove = 0
		} else {
			is.sinceImprove++
		}
		is.best, is.bf = is.pop[bi], fit[bi]
	}
	return nil
}

// Migrate implements the receiving half of the ring migration: the island's
// worst individual is replaced by the migrant (the left neighbour's best)
// and fitness is refreshed — population-independent fitnesses re-score just
// the replaced slot via EvaluateOne, population-relative ones re-evaluate
// the whole island. The running best is updated from the refreshed values.
func (is *Island[T]) Migrate(migrant T) error {
	worst := argmin(is.fit)
	is.pop[worst] = migrant
	if is.cfg.EvaluateOne != nil {
		is.fit[worst] = is.cfg.EvaluateOne(migrant)
	} else {
		fit, err := is.cfg.evalInto(is.pop, is.fit)
		if err != nil {
			return err
		}
		is.fit = fit
	}
	bi := argmax(is.fit)
	is.best, is.bf = is.pop[bi], is.fit[bi]
	return nil
}

// IslandSnapshot is the complete evolution state of one island at an epoch
// barrier: population, fitnesses, running best, stagnation counter and the
// exact RNG position. Restoring it with RestoreIsland yields an island whose
// subsequent epochs are bit-identical to the snapshotted island continuing —
// the checkpoint/restart substrate of the distributed coordinator
// (internal/dist), which serializes snapshots over the wire so a dead
// worker's islands resume elsewhere without perturbing the trajectory.
//
// The Pop and Fit slices are fresh copies, but the individuals themselves
// are shared with the live island: the GA's operators never mutate an
// individual after creation (they clone), so sharing is safe as long as
// callers uphold the same rule.
type IslandSnapshot[T any] struct {
	Pop          []T
	Fit          []float64
	Best         T
	BestFit      float64
	SinceImprove int
	Rng          rng.State
}

// Snapshot captures the island's state. Call it only at an epoch boundary
// (never concurrently with Epoch or Migrate); buffered observer stats are
// not part of the snapshot — they belong to the runner's barrier, which has
// already drained them when a checkpoint is taken.
func (is *Island[T]) Snapshot() IslandSnapshot[T] {
	return IslandSnapshot[T]{
		Pop:          append([]T(nil), is.pop...),
		Fit:          append([]float64(nil), is.fit...),
		Best:         is.best,
		BestFit:      is.bf,
		SinceImprove: is.sinceImprove,
		Rng:          is.rng.State(),
	}
}

// RestoreIsland rebuilds island idx from a snapshot taken against the same
// configuration. The restored island evolves bit-identically to the
// snapshotted one: fitnesses are adopted as recorded (they are pure
// functions of the genotypes, so re-evaluation would produce the same
// values, only slower) and the RNG resumes at the captured position.
func RestoreIsland[T any](c Config[T], idx int, snap IslandSnapshot[T]) (*Island[T], error) {
	if c.OnGeneration != nil {
		return nil, fmt.Errorf("ga: OnGeneration is not supported with islands")
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	if len(snap.Pop) != c.PopSize {
		return nil, fmt.Errorf("ga: snapshot population %d does not match PopSize %d", len(snap.Pop), c.PopSize)
	}
	if len(snap.Fit) != len(snap.Pop) {
		return nil, fmt.Errorf("ga: snapshot has %d fitnesses for %d individuals", len(snap.Fit), len(snap.Pop))
	}
	if idx != 0 {
		c.Seeds = nil // parity with NewIsland; unused after init but kept consistent
	}
	return &Island[T]{
		cfg: c, idx: idx,
		pop:          append([]T(nil), snap.Pop...),
		fit:          append([]float64(nil), snap.Fit...),
		rng:          rng.FromState(snap.Rng),
		best:         snap.Best,
		bf:           snap.BestFit,
		sinceImprove: snap.SinceImprove,
		ar:           newArena[T](c.PopSize),
	}, nil
}

// takeStats drains the buffered epoch stats without freeing the backing
// array, so the next epoch appends into the same buffer.
func (is *Island[T]) takeStats() []GenStats {
	out := is.stats
	is.stats = is.stats[:0]
	return out
}

// RunIslands evolves the islands and returns the best individual across
// all of them, evaluated within its own island's final population.
func RunIslands[T any](c IslandConfig[T], root *rng.Source) (Result[T], error) {
	var zero Result[T]
	if c.Islands < 1 {
		return zero, fmt.Errorf("ga: Islands=%d must be >= 1", c.Islands)
	}
	if c.Base.OnGeneration != nil {
		return zero, fmt.Errorf("ga: OnGeneration is not supported with islands")
	}
	if c.Islands == 1 {
		return Run(c.Base, root)
	}
	if err := c.Base.validate(); err != nil {
		return zero, err
	}
	every := c.MigrationEvery
	if every <= 0 {
		every = DefaultMigrationEvery
	}

	// Each island runs in epochs of `every` generations; between epochs
	// the ring migration replaces each island's worst individual with its
	// left neighbour's best. The per-island stepping lives in Island so
	// this in-process runner and the multi-process coordinator in
	// internal/dist share one state machine.
	states := make([]*Island[T], c.Islands)
	for i := range states {
		st, err := NewIsland(c.Base, i, root.Split())
		if err != nil {
			return zero, err
		}
		states[i] = st
	}
	// Observer: island stats are buffered per island while the goroutines
	// run and emitted only here on the calling goroutine, in (generation,
	// island) order — a deterministic interleaving no matter how the epochs
	// are scheduled. Generation 0 covers the initial populations.
	if c.Base.Observer != nil {
		for _, st := range states {
			c.Base.Observer.ObserveGeneration(st.InitStats())
		}
	}

	totalGens := c.Base.MaxGenerations
	gen := 0
	for gen < totalGens {
		epoch := every
		if gen+epoch > totalGens {
			epoch = totalGens - gen
		}
		var wg sync.WaitGroup
		errs := make([]error, c.Islands)
		for i := range states {
			wg.Add(1)
			go func(st *Island[T], idx int) {
				defer wg.Done()
				errs[idx] = st.Epoch(gen, epoch)
			}(states[i], i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return zero, err
			}
		}
		if c.Base.Observer != nil {
			buffered := make([][]GenStats, len(states))
			for i, st := range states {
				buffered[i] = st.takeStats()
			}
			for e := 0; e < epoch; e++ {
				for _, stats := range buffered {
					c.Base.Observer.ObserveGeneration(stats[e])
				}
			}
		}
		gen += epoch
		// Ring migration: island i's worst is replaced by island (i-1)'s
		// best, then fitness is refreshed.
		if gen < totalGens {
			bests := make([]T, c.Islands)
			for i, st := range states {
				bests[i], _ = st.Best()
			}
			for i, st := range states {
				from := (i - 1 + c.Islands) % c.Islands
				if err := st.Migrate(bests[from]); err != nil {
					return zero, err
				}
			}
		}
		// Global stagnation: stop when every island has stagnated.
		if c.Base.Stagnation > 0 {
			all := true
			for _, st := range states {
				if st.SinceImprove() < c.Base.Stagnation {
					all = false
					break
				}
			}
			if all {
				best := pickBest(states)
				b, bf := best.Best()
				return Result[T]{Best: b, BestFitness: bf, Generations: gen, Stagnated: true}, nil
			}
		}
	}
	best := pickBest(states)
	b, bf := best.Best()
	return Result[T]{Best: b, BestFitness: bf, Generations: totalGens}, nil
}

// pickBest returns the island holding the globally best individual; ties
// keep the lowest island index, the same rule a coordinator applies when
// gathering bests over the wire.
func pickBest[T any](states []*Island[T]) *Island[T] {
	out := states[0]
	for _, s := range states[1:] {
		if s.bf > out.bf {
			out = s
		}
	}
	return out
}
