package ga

import (
	"fmt"
	"sync"

	"robsched/internal/rng"
)

// IslandConfig runs K independent populations ("islands") of the same
// problem in parallel goroutines, exchanging their best individuals every
// MigrationEvery generations in a ring topology. Island models both cut
// wall-clock time on multicore machines and preserve diversity: separated
// populations explore different basins before migration cross-pollinates
// them.
type IslandConfig[T any] struct {
	// Base is the per-island configuration. Its Seeds go to island 0; all
	// islands share the hooks and parameters. OnGeneration is not
	// supported across islands and must be nil.
	Base Config[T]
	// Islands is the number of populations (>= 1; 1 degenerates to Run).
	Islands int
	// MigrationEvery is the generation interval between migrations
	// (default 25).
	MigrationEvery int
}

// RunIslands evolves the islands and returns the best individual across
// all of them, evaluated within its own island's final population.
func RunIslands[T any](c IslandConfig[T], root *rng.Source) (Result[T], error) {
	var zero Result[T]
	if c.Islands < 1 {
		return zero, fmt.Errorf("ga: Islands=%d must be >= 1", c.Islands)
	}
	if c.Base.OnGeneration != nil {
		return zero, fmt.Errorf("ga: OnGeneration is not supported with islands")
	}
	if c.Islands == 1 {
		return Run(c.Base, root)
	}
	if err := c.Base.validate(); err != nil {
		return zero, err
	}
	every := c.MigrationEvery
	if every <= 0 {
		every = 25
	}

	// Each island runs in epochs of `every` generations; between epochs
	// the ring migration replaces each island's worst individual with its
	// left neighbour's best. Implemented by running the engine repeatedly
	// with seeding, which reuses all of Run's machinery (elitism,
	// tournament, stagnation bookkeeping is reset per epoch — stagnation
	// is therefore tracked across epochs here).
	states := make([]*islandState[T], c.Islands)
	for i := range states {
		r := root.Split()
		cfg := c.Base
		if i != 0 {
			cfg.Seeds = nil // the paper's heuristic seed goes to island 0
		}
		pop := cfg.initialPopulation(r)
		fit, err := cfg.evalInto(pop, make([]float64, cfg.PopSize))
		if err != nil {
			return zero, err
		}
		bi := argmax(fit)
		states[i] = &islandState[T]{
			pop: pop, fit: fit, rng: r, best: pop[bi], bf: fit[bi],
			ar: newArena[T](cfg.PopSize),
		}
	}
	// Observer: island stats are buffered per island while the goroutines
	// run and emitted only here on the calling goroutine, in (generation,
	// island) order — a deterministic interleaving no matter how the epochs
	// are scheduled. Generation 0 covers the initial populations.
	if c.Base.Observer != nil {
		for i, st := range states {
			c.Base.Observer.ObserveGeneration(c.Base.genStats(i, 0, st.pop, st.fit, opCounts{}))
		}
	}

	totalGens := c.Base.MaxGenerations
	sinceImprove := make([]int, c.Islands)
	gen := 0
	for gen < totalGens {
		epoch := every
		if gen+epoch > totalGens {
			epoch = totalGens - gen
		}
		var wg sync.WaitGroup
		errs := make([]error, c.Islands)
		for i := range states {
			wg.Add(1)
			go func(st *islandState[T], idx int) {
				defer wg.Done()
				cfg := c.Base
				for e := 0; e < epoch; e++ {
					next, fit, oc, err := cfg.advance(st.pop, st.fit, st.best, st.ar, st.rng)
					if err != nil {
						errs[idx] = err
						return
					}
					st.pop, st.fit = next, fit
					if cfg.Observer != nil {
						st.stats = append(st.stats, cfg.genStats(idx, gen+e+1, st.pop, st.fit, oc))
					}
					bi := argmax(fit)
					if fit[bi] > st.bf+1e-12 {
						sinceImprove[idx] = 0
					} else {
						sinceImprove[idx]++
					}
					st.best, st.bf = st.pop[bi], fit[bi]
				}
			}(states[i], i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return zero, err
			}
		}
		if c.Base.Observer != nil {
			for e := 0; e < epoch; e++ {
				for _, st := range states {
					c.Base.Observer.ObserveGeneration(st.stats[e])
				}
			}
			for _, st := range states {
				st.stats = st.stats[:0]
			}
		}
		gen += epoch
		// Ring migration: island i's worst is replaced by island (i-1)'s
		// best, then fitness is refreshed.
		if gen < totalGens {
			bests := make([]T, c.Islands)
			for i, st := range states {
				bests[i] = st.best
			}
			for i, st := range states {
				from := (i - 1 + c.Islands) % c.Islands
				worst := argmin(st.fit)
				st.pop[worst] = bests[from]
				if c.Base.EvaluateOne != nil {
					st.fit[worst] = c.Base.EvaluateOne(bests[from])
				} else {
					fit, err := c.Base.evalInto(st.pop, st.fit)
					if err != nil {
						return zero, err
					}
					st.fit = fit
				}
				bi := argmax(st.fit)
				st.best, st.bf = st.pop[bi], st.fit[bi]
			}
		}
		// Global stagnation: stop when every island has stagnated.
		if c.Base.Stagnation > 0 {
			all := true
			for _, s := range sinceImprove {
				if s < c.Base.Stagnation {
					all = false
					break
				}
			}
			if all {
				best := pickBest(states)
				return Result[T]{Best: best.best, BestFitness: best.bf, Generations: gen, Stagnated: true}, nil
			}
		}
	}
	best := pickBest(states)
	return Result[T]{Best: best.best, BestFitness: best.bf, Generations: totalGens}, nil
}

// islandState is one population's live state, including the generation
// arena its epochs reuse.
type islandState[T any] struct {
	pop  []T
	fit  []float64
	rng  *rng.Source
	best T
	bf   float64
	ar   *genArena[T]
	// stats buffers the epoch's GenStats for deterministic emission at the
	// barrier (only filled when an Observer is configured).
	stats []GenStats
}

func pickBest[T any](states []*islandState[T]) *islandState[T] {
	out := states[0]
	for _, s := range states[1:] {
		if s.bf > out.bf {
			out = s
		}
	}
	return out
}
