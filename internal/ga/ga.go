// Package ga implements the standard genetic algorithm of Section 4.2 as a
// reusable engine: constant-size population, uniqueness-checked initial
// population with heuristic seeding, systematic binary tournament selection
// (Goldberg & Deb), single-point crossover and mutation hooks, elitism, and
// the paper's stopping criteria (generation cap or stagnation window).
//
// The engine is generic over the chromosome type; the bi-objective robust
// scheduling chromosome lives in internal/robust. Fitness is evaluated for
// the whole population at once because the paper's ε-constraint fitness
// (Eqn. 8) is population-based: an infeasible individual's value depends on
// the minimum feasible fitness of its generation.
package ga

import (
	"fmt"

	"robsched/internal/rng"
)

// Config assembles the problem-specific hooks and the GA parameters.
// PaperDefaults fills the parameter values used in Section 5.
type Config[T any] struct {
	// PopSize is Np, the constant population size.
	PopSize int
	// CrossoverRate is pc: the fraction of the intermediate population
	// recombined each generation (the rest is copied unchanged).
	CrossoverRate float64
	// MutationRate is pm: the probability that an individual is mutated.
	MutationRate float64
	// MaxGenerations caps the evolution (paper: 1000).
	MaxGenerations int
	// Stagnation stops the run when the best fitness has not improved for
	// this many consecutive generations (paper: 100). Zero disables it.
	Stagnation int

	// Random generates one random individual.
	Random func(r *rng.Source) T
	// Crossover recombines two parents into two offspring. It must not
	// modify the parents.
	Crossover func(a, b T, r *rng.Source) (T, T)
	// Mutate returns a mutated copy of the individual. It must not modify
	// its argument.
	Mutate func(ind T, r *rng.Source) T
	// Evaluate returns the fitness of every individual (larger is better).
	// It must be pure with respect to the population: it must not mutate
	// pop (memoizing per-individual decode state is fine), and it must
	// return the same values when called again on the same individuals.
	// The engine relies on this — elitism may evaluate a population twice
	// per generation.
	Evaluate func(pop []T) []float64
	// EvaluateInto, if non-nil, is preferred over Evaluate on the steady-
	// state path: it writes the fitness of pop into fit (len(fit) ==
	// len(pop)), letting the engine reuse one fitness arena across
	// generations instead of allocating a fresh slice per evaluation. It
	// must agree exactly with Evaluate and obey the same purity contract.
	// At least one of Evaluate and EvaluateInto is required.
	EvaluateInto func(pop []T, fit []float64)
	// EvaluateOne returns the fitness of a single individual. Optional: set
	// it only when fitness is population-independent (each individual's
	// value does not depend on its peers), and it must agree exactly with
	// Evaluate. When present, the engine re-scores only the elite individual
	// after elitism instead of re-evaluating the whole population. Leave nil
	// for population-relative fitness such as the ε-constraint mode.
	EvaluateOne func(ind T) float64
	// Key returns a fingerprint used to reject duplicate individuals when
	// building the initial population (e.g. an FNV-1a hash of the genotype).
	// Optional; nil disables the check. Collisions are benign: a colliding
	// fresh individual is rejected as a duplicate and redrawn.
	Key func(ind T) uint64

	// Seeds are injected into the initial population before random filling
	// (the paper seeds one HEFT chromosome).
	Seeds []T

	// OnGeneration, if non-nil, observes every generation after evaluation:
	// the generation index (0 = initial population), the population and its
	// fitness values. Both slices are engine-owned arenas reused across
	// generations — observers that retain them past the callback must copy.
	// Used by the Fig. 2/3 evolution-trace experiments.
	OnGeneration func(gen int, pop []T, fit []float64)

	// Observer, if non-nil, receives per-generation telemetry (GenStats):
	// best/mean fitness, genotype diversity and operator counts. Unlike
	// OnGeneration it is also supported by RunIslands, which buffers each
	// island's stats and emits them deterministically at the epoch
	// barriers. The trajectory is bit-identical for every evaluation-hook
	// parallelism; with no Observer the engine skips all stats work.
	Observer Observer
}

// PaperDefaults sets the GA parameters of Section 5 (Np=20, pc=0.9, pm=0.1,
// 1000 generations, 100-generation stagnation window) on the config,
// leaving hooks untouched.
func (c *Config[T]) PaperDefaults() {
	c.PopSize = 20
	c.CrossoverRate = 0.9
	c.MutationRate = 0.1
	c.MaxGenerations = 1000
	c.Stagnation = 100
}

func (c *Config[T]) validate() error {
	switch {
	case c.PopSize < 2:
		return fmt.Errorf("ga: PopSize=%d must be >= 2", c.PopSize)
	case c.CrossoverRate < 0 || c.CrossoverRate > 1:
		return fmt.Errorf("ga: CrossoverRate=%g out of [0,1]", c.CrossoverRate)
	case c.MutationRate < 0 || c.MutationRate > 1:
		return fmt.Errorf("ga: MutationRate=%g out of [0,1]", c.MutationRate)
	case c.MaxGenerations < 1:
		return fmt.Errorf("ga: MaxGenerations=%d must be >= 1", c.MaxGenerations)
	case c.Stagnation < 0:
		return fmt.Errorf("ga: Stagnation=%d must be >= 0", c.Stagnation)
	case c.Random == nil || c.Crossover == nil || c.Mutate == nil ||
		(c.Evaluate == nil && c.EvaluateInto == nil):
		return fmt.Errorf("ga: Random, Crossover, Mutate and Evaluate (or EvaluateInto) hooks are required")
	case len(c.Seeds) > c.PopSize:
		return fmt.Errorf("ga: %d seeds exceed population size %d", len(c.Seeds), c.PopSize)
	}
	return nil
}

// Result reports the outcome of one GA run.
type Result[T any] struct {
	// Best is the fittest individual ever evaluated.
	Best T
	// BestFitness is its fitness in its final generation's evaluation.
	BestFitness float64
	// Generations is the number of evolution steps performed (excluding
	// the initial population).
	Generations int
	// Stagnated reports whether the run stopped on the stagnation window
	// rather than the generation cap.
	Stagnated bool
}

// genArena holds the engine-owned buffers one population reuses across
// generations: the tournament output, the recombination target (ping-ponged
// with the live population slice), a spare fitness slice and the Fisher–
// Yates permutation scratch. With EvaluateInto set and non-allocating hooks,
// a steady-state generation performs zero slice allocations beyond what the
// operators themselves require.
type genArena[T any] struct {
	inter []T
	spare []T
	fit   []float64
	perm  []int
}

func newArena[T any](np int) *genArena[T] {
	return &genArena[T]{
		inter: make([]T, np),
		spare: make([]T, np),
		fit:   make([]float64, np),
		perm:  make([]int, np),
	}
}

// evalInto evaluates pop, writing into fit when EvaluateInto is configured
// and falling back to the allocating Evaluate hook otherwise. The returned
// slice is the population's fitness either way.
func (c Config[T]) evalInto(pop []T, fit []float64) ([]float64, error) {
	if c.EvaluateInto != nil {
		c.EvaluateInto(pop, fit)
		return fit, nil
	}
	out := c.Evaluate(pop)
	if len(out) != len(pop) {
		return nil, fmt.Errorf("ga: Evaluate returned %d values for %d individuals", len(out), len(pop))
	}
	return out, nil
}

// advance runs one generation step — tournament, recombination, evaluation,
// elitism (the worst of the new population is replaced by elite, then
// re-scored) — using ar's buffers, and returns the new population and its
// fitness. The buffers previously holding pop and fit are recycled into ar
// for the next call, so the steady state allocates nothing. The trajectory
// is bit-identical to the historical allocate-per-generation loop.
func (c Config[T]) advance(pop []T, fit []float64, elite T, ar *genArena[T], r *rng.Source) ([]T, []float64, opCounts, error) {
	c.tournamentInto(ar.inter, pop, fit, ar.perm, r)
	next := ar.spare
	oc := c.recombineInto(next, ar.inter, r)
	nextFit, err := c.evalInto(next, ar.fit)
	if err != nil {
		return nil, nil, oc, err
	}
	// Elitism: the worst of the new population is replaced by the best
	// of the current one (Section 4.2.3), then re-scored within the new
	// population. With a population-relative fitness (ε-constraint,
	// Eqn. 8) the whole population must be re-evaluated — the
	// carried-over individual is valued against its new peers — but a
	// population-independent fitness only needs the one replaced slot
	// re-scored via EvaluateOne.
	worst := argmin(nextFit)
	next[worst] = elite
	if c.EvaluateOne != nil {
		nextFit[worst] = c.EvaluateOne(elite)
	} else {
		nextFit, err = c.evalInto(next, nextFit)
		if err != nil {
			return nil, nil, oc, err
		}
	}
	ar.spare, ar.fit = pop, fit
	return next, nextFit, oc, nil
}

// Run evolves a population and returns the best individual found.
func Run[T any](c Config[T], r *rng.Source) (Result[T], error) {
	var zero Result[T]
	if err := c.validate(); err != nil {
		return zero, err
	}
	pop := c.initialPopulation(r)
	ar := newArena[T](c.PopSize)
	fit, err := c.evalInto(pop, make([]float64, c.PopSize))
	if err != nil {
		return zero, err
	}
	bestIdx := argmax(fit)
	best, bestFit := pop[bestIdx], fit[bestIdx]
	if c.OnGeneration != nil {
		c.OnGeneration(0, pop, fit)
	}
	if c.Observer != nil {
		c.Observer.ObserveGeneration(c.genStats(0, 0, pop, fit, opCounts{}))
	}
	sinceImprove := 0
	gen := 0
	for gen = 1; gen <= c.MaxGenerations; gen++ {
		var oc opCounts
		pop, fit, oc, err = c.advance(pop, fit, best, ar, r)
		if err != nil {
			return zero, err
		}
		bestIdx = argmax(fit)
		if c.OnGeneration != nil {
			c.OnGeneration(gen, pop, fit)
		}
		if c.Observer != nil {
			c.Observer.ObserveGeneration(c.genStats(0, gen, pop, fit, oc))
		}
		if fit[bestIdx] > bestFit+1e-12 {
			best, bestFit = pop[bestIdx], fit[bestIdx]
			sinceImprove = 0
		} else {
			// Track the current best individual even when fitness is flat,
			// and refresh bestFit downward drift caused by the population-
			// relative component.
			best, bestFit = pop[bestIdx], fit[bestIdx]
			sinceImprove++
		}
		if c.Stagnation > 0 && sinceImprove >= c.Stagnation {
			return Result[T]{Best: best, BestFitness: bestFit, Generations: gen, Stagnated: true}, nil
		}
	}
	return Result[T]{Best: best, BestFitness: bestFit, Generations: c.MaxGenerations}, nil
}

// initialPopulation seeds, then fills with unique random individuals
// (Section 4.2.2). After a bounded number of duplicate rejections the
// uniqueness requirement is dropped so degenerate search spaces (e.g. a
// one-task graph) cannot hang the run.
func (c Config[T]) initialPopulation(r *rng.Source) []T {
	pop := make([]T, 0, c.PopSize)
	seen := make(map[uint64]bool, c.PopSize)
	add := func(ind T) bool {
		if c.Key != nil {
			k := c.Key(ind)
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		pop = append(pop, ind)
		return true
	}
	for _, s := range c.Seeds {
		add(s)
	}
	misses := 0
	for len(pop) < c.PopSize {
		if add(c.Random(r)) {
			misses = 0
			continue
		}
		misses++
		if misses > 50*c.PopSize {
			// Give up on uniqueness: accept duplicates.
			saved := c.Key
			c.Key = nil
			for len(pop) < c.PopSize {
				add(c.Random(r))
			}
			c.Key = saved
		}
	}
	return pop
}

// tournamentInto runs the systematic binary tournament into dst (len(pop)):
// the population is shuffled twice and adjacent pairs compete, so every
// individual participates in exactly two tournaments; the best individual
// always wins both (two copies), the worst always loses both (eliminated).
// perm is the engine-owned Fisher–Yates scratch (len(pop)); the RNG draw
// sequence — including the odd-population leftover bout whose second-round
// winner is discarded to keep size Np — matches the historical allocating
// implementation exactly.
func (c Config[T]) tournamentInto(dst, pop []T, fit []float64, perm []int, r *rng.Source) {
	np := len(pop)
	k := 0
	for round := 0; round < 2; round++ {
		r.PermInto(perm)
		for i := 0; i+1 < np; i += 2 {
			a, b := perm[i], perm[i+1]
			if fit[a] >= fit[b] {
				dst[k] = pop[a]
			} else {
				dst[k] = pop[b]
			}
			k++
		}
		if np%2 == 1 {
			// Odd population: the leftover individual fights a random
			// opponent so the intermediate population keeps size Np. The
			// second round's leftover winner falls past Np and is dropped,
			// but its opponent draw is still consumed.
			a := perm[np-1]
			b := perm[r.Intn(np-1)]
			w := pop[a]
			if !(fit[a] >= fit[b]) {
				w = pop[b]
			}
			if k < np {
				dst[k] = w
				k++
			}
		}
	}
}

// tournament is the allocating form of tournamentInto, kept for tests and
// one-off callers.
func (c Config[T]) tournament(pop []T, fit []float64, r *rng.Source) []T {
	out := make([]T, len(pop))
	c.tournamentInto(out, pop, fit, make([]int, len(pop)), r)
	return out
}

// recombineInto applies crossover to a pc fraction of the intermediate
// population (pairing adjacent individuals, which the tournament already
// shuffled) and mutation with probability pm per individual, writing the
// offspring into dst (len(inter), disjoint from inter). The returned
// operator counts feed the Observer; tallying them costs no allocation.
func (c Config[T]) recombineInto(dst, inter []T, r *rng.Source) opCounts {
	np := len(inter)
	var oc opCounts
	copy(dst, inter)
	for i := 0; i+1 < np; i += 2 {
		if r.Float64() < c.CrossoverRate {
			dst[i], dst[i+1] = c.Crossover(inter[i], inter[i+1], r)
			oc.crossovers++
		}
	}
	for i := range dst {
		if r.Float64() < c.MutationRate {
			dst[i] = c.Mutate(dst[i], r)
			oc.mutations++
		}
	}
	return oc
}

// recombine is the allocating form of recombineInto, kept for tests and
// one-off callers.
func (c Config[T]) recombine(inter []T, r *rng.Source) []T {
	next := make([]T, len(inter))
	c.recombineInto(next, inter, r)
	return next
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}
