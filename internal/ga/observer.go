package ga

import "math"

// GenStats is the engine telemetry of one evaluated generation. Every field
// is computed serially from the population in index order, so for a fixed
// configuration the emitted trajectory is bit-identical regardless of how
// the evaluation hooks parallelize internally (e.g. robust's Workers
// setting), and deterministically ordered across runs — including island
// runs, where stats are buffered per island and emitted at the epoch
// barriers in (generation, island) order.
type GenStats struct {
	// Island is the population's island index (0 for single-population
	// runs).
	Island int
	// Gen is the generation index; 0 is the initial population.
	Gen int
	// Best and Mean summarize the generation's fitness values.
	Best float64
	Mean float64
	// Diversity is the fraction of distinct genotypes in the population,
	// measured by Config.Key; NaN when no Key is configured. Collisions can
	// only under-report diversity, never affect the run.
	Diversity float64
	// Crossovers and Mutations count the operator applications that
	// produced this generation (both 0 for the initial population).
	Crossovers int
	Mutations  int
}

// Observer receives per-generation engine telemetry. Unlike OnGeneration it
// is supported by RunIslands; the stats it receives never expose
// engine-owned arenas, so observers may retain them freely. Observers run
// on the engine's calling goroutine (islands: at the epoch barrier) and
// must not mutate engine state.
type Observer interface {
	ObserveGeneration(GenStats)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(GenStats)

// ObserveGeneration implements Observer.
func (f ObserverFunc) ObserveGeneration(s GenStats) { f(s) }

// MultiObserver fans stats out to several observers in order, skipping
// nils; it returns nil when none remain (keeping the engine's no-observer
// fast path).
func MultiObserver(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiObserver(live)
}

type multiObserver []Observer

func (m multiObserver) ObserveGeneration(s GenStats) {
	for _, o := range m {
		o.ObserveGeneration(s)
	}
}

// opCounts tallies the operator applications of one generation step.
type opCounts struct {
	crossovers int
	mutations  int
}

// genStats assembles the telemetry of an evaluated generation. Only called
// when an Observer is configured — the diversity map is the one allocation
// the observer path adds per generation.
func (c Config[T]) genStats(island, gen int, pop []T, fit []float64, oc opCounts) GenStats {
	sum := 0.0
	for _, f := range fit {
		sum += f
	}
	div := math.NaN()
	if c.Key != nil {
		seen := make(map[uint64]struct{}, len(pop))
		for _, ind := range pop {
			seen[c.Key(ind)] = struct{}{}
		}
		div = float64(len(seen)) / float64(len(pop))
	}
	return GenStats{
		Island:     island,
		Gen:        gen,
		Best:       fit[argmax(fit)],
		Mean:       sum / float64(len(fit)),
		Diversity:  div,
		Crossovers: oc.crossovers,
		Mutations:  oc.mutations,
	}
}
