package stoch

import (
	"math"
	"testing"

	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
	"robsched/internal/sim"
)

func testWorkload(t testing.TB, seed uint64, n, m int, ul float64) *platform.Workload {
	t.Helper()
	p := gen.PaperParams()
	p.N, p.M, p.MeanUL = n, m, ul
	w, err := gen.Random(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSigma(t *testing.T) {
	w := testWorkload(t, 1, 10, 3, 3)
	sigma := Sigma(w)
	for i := 0; i < w.N(); i++ {
		for j := 0; j < w.M(); j++ {
			want := (w.UL.At(i, j) - 1) * w.BCET.At(i, j) / math.Sqrt(3)
			if math.Abs(sigma.At(i, j)-want) > 1e-12 {
				t.Fatalf("sigma(%d,%d) = %g, want %g", i, j, sigma.At(i, j), want)
			}
			if sigma.At(i, j) < 0 {
				t.Fatal("negative sigma")
			}
		}
	}
}

func TestSigmaMatchesSampleStd(t *testing.T) {
	// The analytic σ must match the empirical standard deviation of
	// SampleDuration.
	w := testWorkload(t, 2, 5, 2, 4)
	sigma := Sigma(w)
	r := rng.New(3)
	const n = 200000
	i, p := 0, 0
	var sum, sum2 float64
	for k := 0; k < n; k++ {
		d := w.SampleDuration(i, p, r)
		sum += d
		sum2 += d * d
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(std-sigma.At(i, p))/sigma.At(i, p) > 0.02 {
		t.Fatalf("empirical std %g vs analytic %g", std, sigma.At(i, p))
	}
}

func TestRiskAdjustedDurations(t *testing.T) {
	w := testWorkload(t, 5, 12, 3, 3)
	view, err := RiskAdjusted(w, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	sigma := Sigma(w)
	for i := 0; i < w.N(); i++ {
		for j := 0; j < w.M(); j++ {
			want := w.ExpectedAt(i, j) + 1.5*sigma.At(i, j)
			if math.Abs(view.ExpectedAt(i, j)-want) > 1e-9 {
				t.Fatalf("adjusted (%d,%d) = %g, want %g", i, j, view.ExpectedAt(i, j), want)
			}
		}
	}
	// k = 0 recovers the plain expectations.
	zero, err := RiskAdjusted(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.N(); i++ {
		for j := 0; j < w.M(); j++ {
			if math.Abs(zero.ExpectedAt(i, j)-w.ExpectedAt(i, j)) > 1e-12 {
				t.Fatal("k=0 changed the expectations")
			}
		}
	}
	if _, err := RiskAdjusted(w, -1); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestRebindValidation(t *testing.T) {
	w1 := testWorkload(t, 7, 10, 2, 2)
	w2 := testWorkload(t, 8, 10, 2, 2) // different graph
	s, err := heft.HEFT(w1, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Rebind(s, w2); err == nil {
		t.Fatal("rebind across graphs accepted")
	}
	// Rebinding to the same workload is the identity on the assignment.
	s2, err := Rebind(s, w1)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Makespan() != s.Makespan() {
		t.Fatalf("identity rebind changed makespan: %g vs %g", s2.Makespan(), s.Makespan())
	}
}

func TestHEFTRiskZeroMatchesPlainHEFT(t *testing.T) {
	w := testWorkload(t, 9, 25, 4, 3)
	plain, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	risk0, err := HEFT(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if risk0.Makespan() != plain.Makespan() {
		t.Fatalf("k=0 HEFT makespan %g != plain %g", risk0.Makespan(), plain.Makespan())
	}
	for v := 0; v < w.N(); v++ {
		if risk0.Proc(v) != plain.Proc(v) {
			t.Fatalf("k=0 HEFT assignment differs at task %d", v)
		}
	}
}

// TestRiskFactorBuysRobustness is the future-work hypothesis as a test:
// averaged across instances, scheduling against inflated (mean + k·σ)
// durations reduces the relative tardiness and the makespan variability
// compared with plain HEFT. The effect is an aggregate one (a few percent
// per instance, with instance-level noise either way), so the assertion is
// on the mean over a batch of workloads.
func TestRiskFactorBuysRobustness(t *testing.T) {
	const instances = 12
	var dTard, dCov float64
	for inst := 0; inst < instances; inst++ {
		w := testWorkload(t, uint64(50+inst), 60, 4, 6)
		plain, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		risky, err := HEFT(w, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		both, err := sim.EvaluateAll(
			[]*schedule.Schedule{plain, risky},
			sim.Options{Realizations: 500}, rng.New(uint64(77+inst)))
		if err != nil {
			t.Fatal(err)
		}
		dTard += (both[1].MeanTardiness - both[0].MeanTardiness) / both[0].MeanTardiness
		dCov += both[1].StdMakespan/both[1].MeanMakespan - both[0].StdMakespan/both[0].MeanMakespan
	}
	if mean := dTard / instances; mean >= 0 {
		t.Errorf("risk-adjusted HEFT did not reduce mean relative tardiness: %+.4f", mean)
	}
	if mean := dCov / instances; mean >= 0 {
		t.Errorf("risk-adjusted HEFT did not reduce makespan variability: %+.4f", mean)
	}
}
