// Package stoch implements the paper's future-work direction: "guiding the
// scheduling algorithm with the stochastic information about the
// environment. Currently the algorithm is provided with the expected
// system performance ... We believe that stochastic information about the
// computing system will direct the algorithm to generate more robust
// schedules."
//
// Under the paper's duration model c_ij ~ U(b_ij, (2·UL_ij−1)·b_ij) the
// full distribution is known, not just its mean: the standard deviation is
// σ_ij = (UL_ij−1)·b_ij / √3. This package exposes *risk-adjusted*
// workload views whose planning durations are E[c] + k·σ for a risk factor
// k ≥ 0, so any deterministic scheduler (HEFT, CPOP, the GA) becomes a
// variance-aware one: processors on which a task's duration is volatile
// look slower and attract fewer critical tasks. k = 0 recovers the plain
// expected-duration model; larger k buys robustness with expected
// makespan, giving a second, orthogonal robustness dial next to the
// paper's ε.
package stoch

import (
	"fmt"
	"math"

	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/schedule"
)

// Sigma returns the n×m matrix of duration standard deviations implied by
// the workload's uniform model: σ_ij = (UL_ij − 1) · b_ij / √3.
func Sigma(w *platform.Workload) platform.Matrix {
	n, m := w.N(), w.M()
	out := platform.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			out.Set(i, j, (w.UL.At(i, j)-1)*w.BCET.At(i, j)/math.Sqrt(3))
		}
	}
	return out
}

// RiskAdjusted returns a planning view of the workload whose expected
// durations are inflated to E[c] + k·σ (risk factor k >= 0). The view
// shares the graph and platform; its BCET matrix carries the inflated
// durations with UL = 1 everywhere, so deterministic schedulers treat the
// inflated values as exact. Schedules built against the view must be
// re-bound to the original workload (Rebind) before Monte-Carlo
// evaluation.
func RiskAdjusted(w *platform.Workload, k float64) (*platform.Workload, error) {
	if k < 0 {
		return nil, fmt.Errorf("stoch: risk factor %g must be >= 0", k)
	}
	sigma := Sigma(w)
	n, m := w.N(), w.M()
	adj := platform.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			adj.Set(i, j, w.ExpectedAt(i, j)+k*sigma.At(i, j))
		}
	}
	return platform.DeterministicWorkload(w.G, w.Sys, adj)
}

// Rebind re-expresses a schedule planned on one view of a workload (same
// graph and platform, any duration matrices) as a schedule of the target
// workload, revalidating it and recomputing the analysis under the
// target's expected durations.
func Rebind(s *schedule.Schedule, target *platform.Workload) (*schedule.Schedule, error) {
	src := s.Workload()
	if src.G != target.G {
		return nil, fmt.Errorf("stoch: rebind across different task graphs")
	}
	if src.Sys != target.Sys {
		return nil, fmt.Errorf("stoch: rebind across different platforms")
	}
	procOrder := make([][]int, target.M())
	for p := 0; p < target.M(); p++ {
		procOrder[p] = s.ProcOrder(p)
	}
	return schedule.New(target, s.ProcAssignment(), procOrder)
}

// HEFT schedules the workload with HEFT on risk-adjusted durations
// (E[c] + k·σ) and returns the schedule bound to the original workload —
// the variance-aware baseline the paper's conclusion calls for.
func HEFT(w *platform.Workload, k float64) (*schedule.Schedule, error) {
	view, err := RiskAdjusted(w, k)
	if err != nil {
		return nil, err
	}
	s, err := heft.HEFT(view, heft.Options{})
	if err != nil {
		return nil, err
	}
	return Rebind(s, w)
}
