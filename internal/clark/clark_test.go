package clark

import (
	"math"
	"testing"

	"robsched/internal/dag"
	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
	"robsched/internal/sim"
)

func TestNormHelpers(t *testing.T) {
	if math.Abs(normCDF(0)-0.5) > 1e-12 {
		t.Errorf("Φ(0) = %g", normCDF(0))
	}
	if math.Abs(normCDF(1.959963985)-0.975) > 1e-6 {
		t.Errorf("Φ(1.96) = %g", normCDF(1.959963985))
	}
	if math.Abs(normPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Errorf("φ(0) = %g", normPDF(0))
	}
	// Quantile inverts the CDF.
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.975, 0.999} {
		if got := normCDF(normQuantile(p)); math.Abs(got-p) > 1e-6 {
			t.Errorf("Φ(Φ⁻¹(%g)) = %g", p, got)
		}
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("extreme quantiles not infinite")
	}
}

func TestMaxMomentsAgainstSampling(t *testing.T) {
	r := rng.New(1)
	cases := []struct {
		a, b Moments
		rho  float64
	}{
		{Moments{0, 1}, Moments{0, 1}, 0},
		{Moments{0, 1}, Moments{2, 1}, 0},
		{Moments{5, 4}, Moments{3, 9}, 0},
		{Moments{1, 0.25}, Moments{1.2, 0.01}, 0},
	}
	const n = 400000
	for ci, c := range cases {
		got := MaxMoments(c.a, c.b, c.rho)
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			x := r.Norm(c.a.Mean, c.a.Std())
			y := r.Norm(c.b.Mean, c.b.Std())
			m := math.Max(x, y)
			sum += m
			sum2 += m * m
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if math.Abs(got.Mean-mean) > 0.02*(1+math.Abs(mean)) {
			t.Errorf("case %d: Clark mean %g vs sampled %g", ci, got.Mean, mean)
		}
		if math.Abs(got.Var-variance) > 0.05*(1+variance) {
			t.Errorf("case %d: Clark var %g vs sampled %g", ci, got.Var, variance)
		}
	}
}

func TestMaxMomentsDegenerate(t *testing.T) {
	a := Moments{3, 0}
	b := Moments{5, 0}
	got := MaxMoments(a, b, 0)
	if got.Mean != 5 || got.Var != 0 {
		t.Fatalf("max of constants = %+v", got)
	}
	got = MaxMoments(b, a, 0)
	if got.Mean != 5 {
		t.Fatalf("max of constants (swapped) = %+v", got)
	}
}

func TestTaskMoments(t *testing.T) {
	// Single task, UL = 2, b = 6 on its processor: duration U(6, 18),
	// mean 12, variance (18-6)²/12 = 12.
	g := dag.NewBuilder(1).MustBuild()
	bcet, _ := platform.MatrixFromRows([][]float64{{6}})
	ul, _ := platform.MatrixFromRows([][]float64{{2}})
	w, err := platform.NewWorkload(g, platform.UniformSystem(1, 1), bcet, ul)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.FromOrder(w, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	m := TaskMoments(s)
	if math.Abs(m[0].Mean-12) > 1e-12 || math.Abs(m[0].Var-12) > 1e-12 {
		t.Fatalf("moments = %+v, want mean 12 var 12", m[0])
	}
}

func TestAnalyzeChainExact(t *testing.T) {
	// A serial chain has no max operations: the analytic mean/variance are
	// exact sums of the task moments.
	b := dag.NewBuilder(3)
	b.MustAddEdge(0, 1, 0)
	b.MustAddEdge(1, 2, 0)
	g := b.MustBuild()
	bcet, _ := platform.MatrixFromRows([][]float64{{4}, {6}, {10}})
	ul, _ := platform.MatrixFromRows([][]float64{{2}, {3}, {1.5}})
	w, err := platform.NewWorkload(g, platform.UniformSystem(1, 1), bcet, ul)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.FromOrder(w, []int{0, 1, 2}, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(s)
	wantMean := 2*4.0 + 3*6.0 + 1.5*10.0
	wantVar := sq((2-1)*4)/3 + sq((3-1)*6)/3 + sq((1.5-1)*10)/3
	if math.Abs(a.Makespan.Mean-wantMean) > 1e-9 {
		t.Errorf("chain mean = %g, want %g", a.Makespan.Mean, wantMean)
	}
	if math.Abs(a.Makespan.Var-wantVar) > 1e-9 {
		t.Errorf("chain var = %g, want %g", a.Makespan.Var, wantVar)
	}
	// Expected makespan of the schedule equals the analytic mean on a
	// chain.
	if math.Abs(a.Makespan.Mean-s.Makespan()) > 1e-9 {
		t.Errorf("analytic mean %g != M0 %g on a chain", a.Makespan.Mean, s.Makespan())
	}
}

func sq(x float64) float64 { return x * x }

func TestAnalyzeMatchesMonteCarlo(t *testing.T) {
	// On random workloads the Clark estimate must land within the method's
	// documented bias bands of the Monte-Carlo ground truth: the
	// independence assumption overestimates the mean by up to ~25% on the densest instances
	// (but never underestimates it beyond noise) and underestimates the
	// standard deviation by up to a factor of ~3.
	for seed := uint64(0); seed < 5; seed++ {
		p := gen.PaperParams()
		p.N, p.M, p.MeanUL = 50, 4, 4
		w, err := gen.Random(p, rng.New(200+seed))
		if err != nil {
			t.Fatal(err)
		}
		s, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mc, err := sim.Evaluate(s, sim.Options{Realizations: 4000}, rng.New(300+seed))
		if err != nil {
			t.Fatal(err)
		}
		a := Analyze(s)
		rel := (a.Makespan.Mean - mc.MeanMakespan) / mc.MeanMakespan
		if rel < -0.02 || rel > 0.25 {
			t.Errorf("seed %d: analytic mean %g vs MC %g (rel %+g, want [-0.02, +0.25])",
				seed, a.Makespan.Mean, mc.MeanMakespan, rel)
		}
		ratio := a.Makespan.Std() / mc.StdMakespan
		if ratio < 0.25 || ratio > 2.0 {
			t.Errorf("seed %d: analytic std %g vs MC %g (ratio %g, want [0.25, 2])",
				seed, a.Makespan.Std(), mc.StdMakespan, ratio)
		}
		// With the mean overestimated, the analytic miss rate saturates
		// high; it must at least stay in [MC-0.1, 1].
		if a.MissRate < mc.MissRate-0.1 || a.MissRate > 1 {
			t.Errorf("seed %d: analytic miss %g vs MC %g", seed, a.MissRate, mc.MissRate)
		}
	}
}

func TestAnalyzeQuantileOrder(t *testing.T) {
	p := gen.PaperParams()
	p.N, p.M, p.MeanUL = 30, 3, 3
	w, err := gen.Random(p, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(s)
	q50, q95, q99 := a.Quantile(0.5), a.Quantile(0.95), a.Quantile(0.99)
	if !(q50 < q95 && q95 < q99) {
		t.Fatalf("quantiles out of order: %g %g %g", q50, q95, q99)
	}
	if math.Abs(q50-a.Makespan.Mean) > 1e-9 {
		t.Errorf("normal median %g != mean %g", q50, a.Makespan.Mean)
	}
}

func TestAnalyzeDeterministicWorkload(t *testing.T) {
	// UL = 1 everywhere: zero variance, makespan mean equals M0 exactly,
	// no tardiness.
	p := gen.PaperParams()
	p.N, p.M = 25, 3
	r := rng.New(13)
	g, err := gen.RandomGraph(p, r)
	if err != nil {
		t.Fatal(err)
	}
	exec := gen.ExecMatrix(g.N(), 3, 20, 0.5, 0.5, r)
	w, err := platform.DeterministicWorkload(g, platform.UniformSystem(3, 1), exec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(s)
	if math.Abs(a.Makespan.Mean-s.Makespan()) > 1e-9 || a.Makespan.Var > 1e-12 {
		t.Fatalf("deterministic analysis: mean %g (M0 %g), var %g",
			a.Makespan.Mean, s.Makespan(), a.Makespan.Var)
	}
	if a.TardinessMean != 0 || a.MissRate != 0 {
		t.Fatalf("deterministic tardiness %g miss %g", a.TardinessMean, a.MissRate)
	}
}

func BenchmarkAnalyze100x8(b *testing.B) {
	p := gen.PaperParams()
	w, err := gen.Random(p, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(s)
	}
}
