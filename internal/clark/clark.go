// Package clark estimates the distribution of a schedule's makespan
// *analytically*, without Monte-Carlo sampling, using Clark's classical
// moment-matching recursion for the maximum of normal variables
// (C. E. Clark, "The greatest of a finite set of random variables",
// Operations Research 9(2), 1961 — the standard PERT-network approach).
//
// Each task's uncertain duration U(b, (2·UL−1)·b) contributes its exact
// mean and variance; finish-time distributions are propagated through the
// schedule's disjunctive graph by approximating every finish time as a
// normal variable and every max of incoming arrival times with Clark's
// first two moments. Two simplifications are inherited from the method:
// arrival times at a join are treated as independent (shared ancestors are
// ignored), and all intermediate distributions are normal. The result is a
// fast O(V+E) estimate of E[makespan] and Var[makespan].
//
// Accuracy: on the dense disjunctive graphs of this problem (many joins
// with heavily shared ancestry) the independence assumption makes the
// method biased in the textbook directions — the mean is overestimated by
// a few percent (typically 5–17% at n=50–100) and the variance is substantially
// underestimated (roughly 2× on the standard deviation), because ignoring
// the positive correlation between arrival times inflates E[max] and
// deflates Var[max]. The tests quantify these bands against the
// Monte-Carlo engine; treat the analytic numbers as a fast screening
// estimate, not a replacement for simulation. (Exact correlation tracking
// à la Canon & Jeannot is O(V²) and out of scope.)
package clark

import (
	"math"

	"robsched/internal/schedule"
)

// Moments is a mean/variance pair describing a (approximately normal)
// random variable.
type Moments struct {
	Mean, Var float64
}

// Std returns the standard deviation.
func (m Moments) Std() float64 { return math.Sqrt(m.Var) }

// normPDF and normCDF are the standard normal density and distribution.
func normPDF(x float64) float64 { return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi) }
func normCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// MaxMoments returns Clark's first two moments of max(X, Y) for normal
// X ~ (a.Mean, a.Var) and Y ~ (b.Mean, b.Var) with correlation rho.
func MaxMoments(a, b Moments, rho float64) Moments {
	theta2 := a.Var + b.Var - 2*rho*a.Std()*b.Std()
	if theta2 <= 1e-18 {
		// (Nearly) perfectly dependent with equal spread: the max is just
		// the larger mean's variable.
		if a.Mean >= b.Mean {
			return a
		}
		return b
	}
	theta := math.Sqrt(theta2)
	alpha := (a.Mean - b.Mean) / theta
	phi := normPDF(alpha)
	Phi := normCDF(alpha)
	mean := a.Mean*Phi + b.Mean*(1-Phi) + theta*phi
	second := (a.Mean*a.Mean+a.Var)*Phi +
		(b.Mean*b.Mean+b.Var)*(1-Phi) +
		(a.Mean+b.Mean)*theta*phi
	variance := second - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Moments{Mean: mean, Var: variance}
}

// SumMoments returns the moments of X + c for a deterministic offset c.
func (m Moments) shift(c float64) Moments { return Moments{Mean: m.Mean + c, Var: m.Var} }

// add returns the moments of X + Y for independent X, Y.
func (m Moments) add(o Moments) Moments {
	return Moments{Mean: m.Mean + o.Mean, Var: m.Var + o.Var}
}

// TaskMoments returns the exact mean and variance of each task's duration
// on its assigned processor under the workload's uniform model:
// mean = UL·b, variance = ((UL−1)·b)²/3.
func TaskMoments(s *schedule.Schedule) []Moments {
	w := s.Workload()
	out := make([]Moments, w.N())
	for v := range out {
		p := s.Proc(v)
		b := w.BCET.At(v, p)
		ul := w.UL.At(v, p)
		half := (ul - 1) * b // half-width of the uniform support
		out[v] = Moments{Mean: ul * b, Var: half * half / 3}
	}
	return out
}

// Analysis is the analytic estimate of a schedule's realized behaviour.
type Analysis struct {
	// Makespan is the estimated distribution of the realized makespan.
	Makespan Moments
	// Finish is the estimated finish-time distribution of each task.
	Finish []Moments
	// TardinessMean estimates E[max(0, M − M0)]/M0 under the normal
	// approximation of the makespan (comparable to sim's MeanTardiness).
	TardinessMean float64
	// MissRate estimates P(M > M0) under the same approximation.
	MissRate float64
}

// Analyze propagates duration moments through the disjunctive graph:
// start(v) = max over predecessors of (finish(u) + comm), approximated
// pairwise with Clark's equations (independence assumed at joins), and
// finish(v) = start(v) + duration(v).
func Analyze(s *schedule.Schedule) Analysis {
	w := s.Workload()
	n := w.N()
	dur := TaskMoments(s)
	finish := make([]Moments, n)
	// A task is an exit of G_s iff it has no data successors and is last
	// on its processor; every other finish time is dominated by a
	// successor's in every realization, so the makespan max runs only over
	// exits (this also keeps serial chains exact).
	isExit := make([]bool, n)
	for p := 0; p < w.M(); p++ {
		order := s.ProcOrder(p)
		if len(order) > 0 {
			last := order[len(order)-1]
			isExit[last] = w.G.OutDegree(last) == 0
		}
	}
	var makespan Moments
	first := true
	for _, v := range s.Order() {
		start := Moments{}
		haveStart := false
		// The disjunctive predecessors are exactly the predecessors used
		// by the expected-duration analysis; recover them from the
		// original graph plus the processor order.
		for _, u := range disjunctivePreds(s, v) {
			arrival := finish[u.task].shift(u.comm)
			if !haveStart {
				start, haveStart = arrival, true
				continue
			}
			start = MaxMoments(start, arrival, 0)
		}
		finish[v] = start.add(dur[v])
		if !isExit[v] {
			continue
		}
		if first {
			makespan, first = finish[v], false
		} else {
			makespan = MaxMoments(makespan, finish[v], 0)
		}
	}
	m0 := s.Makespan()
	a := Analysis{Makespan: makespan, Finish: finish}
	// Normal-approximation tardiness: E[max(0, M−m0)] for M ~ N(µ, σ²) is
	// σ·φ(z) + (µ−m0)·(1−Φ(z)) with z = (m0−µ)/σ.
	sigma := makespan.Std()
	if sigma > 0 {
		z := (m0 - makespan.Mean) / sigma
		a.TardinessMean = (sigma*normPDF(z) + (makespan.Mean-m0)*(1-normCDF(z))) / m0
		a.MissRate = 1 - normCDF(z)
	} else if makespan.Mean > m0 {
		a.TardinessMean = (makespan.Mean - m0) / m0
		a.MissRate = 1
	}
	return a
}

type pred struct {
	task int
	comm float64
}

// disjunctivePreds lists v's predecessors in G_s with their communication
// costs: data-edge predecessors (cost by processor pair) plus the previous
// task on v's processor (cost 0).
func disjunctivePreds(s *schedule.Schedule, v int) []pred {
	w := s.Workload()
	var out []pred
	for _, a := range w.G.Predecessors(v) {
		u := a.To
		out = append(out, pred{u, w.Sys.CommCost(s.Proc(u), s.Proc(v), a.Data)})
	}
	order := s.ProcOrder(s.Proc(v))
	for i, t := range order {
		if t == v && i > 0 {
			prev := order[i-1]
			if !w.G.HasEdge(prev, v) {
				out = append(out, pred{prev, 0})
			}
		}
	}
	return out
}

// Quantile returns the q-quantile of the normal approximation of the
// makespan.
func (a Analysis) Quantile(q float64) float64 {
	return a.Makespan.Mean + a.Makespan.Std()*normQuantile(q)
}

// normQuantile is the standard normal quantile (Acklam's rational
// approximation; |error| < 1.15e-9 over (0,1)).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
