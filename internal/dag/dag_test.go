package dag

import (
	"strings"
	"testing"
	"testing/quick"

	"robsched/internal/rng"
)

// diamond builds the 4-node diamond 0->{1,2}->3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(0, 2, 2)
	b.MustAddEdge(1, 3, 3)
	b.MustAddEdge(2, 3, 4)
	return b.MustBuild()
}

// randomDAG builds a random DAG where every edge goes from a lower to a
// higher node id, so acyclicity holds by construction.
func randomDAG(r *rng.Source, n int, p float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.MustAddEdge(u, v, r.Uniform(0, 10))
			}
		}
	}
	return b.MustBuild()
}

func TestBuildValidation(t *testing.T) {
	if _, err := NewBuilder(0).Build(); err == nil {
		t.Error("empty graph accepted")
	}
	b := NewBuilder(3)
	if err := b.AddEdge(0, 3, 1); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := b.AddEdge(-1, 0, 1); err == nil {
		t.Error("out-of-range source accepted")
	}
	if err := b.AddEdge(1, 1, 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := b.AddEdge(0, 1, -2); err == nil {
		t.Error("negative data accepted")
	}
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(0, 1, 5); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestBuildDetectsCycle(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1, 0)
	b.MustAddEdge(1, 2, 0)
	b.MustAddEdge(2, 0, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("cycle not detected")
	}
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatal("cycle error should mention cycle")
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := NewBuilder(1).MustBuild()
	if g.N() != 1 || g.EdgeCount() != 0 {
		t.Fatalf("unexpected shape: n=%d edges=%d", g.N(), g.EdgeCount())
	}
	if got := g.Entries(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Entries = %v", got)
	}
	if got := g.Exits(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Exits = %v", got)
	}
	if got := g.TopologicalOrder(); len(got) != 1 || got[0] != 0 {
		t.Errorf("TopologicalOrder = %v", got)
	}
}

func TestDiamondBasics(t *testing.T) {
	g := diamond(t)
	if g.N() != 4 || g.EdgeCount() != 4 {
		t.Fatalf("n=%d edges=%d", g.N(), g.EdgeCount())
	}
	if got := g.Entries(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Entries = %v", got)
	}
	if got := g.Exits(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Exits = %v", got)
	}
	if g.InDegree(3) != 2 || g.OutDegree(0) != 2 {
		t.Errorf("degrees wrong: in(3)=%d out(0)=%d", g.InDegree(3), g.OutDegree(0))
	}
	if d, ok := g.Data(0, 2); !ok || d != 2 {
		t.Errorf("Data(0,2) = %g,%v", d, ok)
	}
	if _, ok := g.Data(2, 0); ok {
		t.Error("Data(2,0) should not exist")
	}
	if !g.HasEdge(1, 3) || g.HasEdge(3, 1) || g.HasEdge(1, 2) {
		t.Error("HasEdge answers wrong")
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := diamond(t)
	es := g.Edges()
	if len(es) != 4 {
		t.Fatalf("got %d edges", len(es))
	}
	for i := 1; i < len(es); i++ {
		a, b := es[i-1], es[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("edges not sorted: %v then %v", a, b)
		}
	}
}

func TestCanonicalTopoOrderIsValidAndDeterministic(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 25; trial++ {
		g := randomDAG(r, 2+r.Intn(40), 0.3)
		o1 := g.TopologicalOrder()
		o2 := g.TopologicalOrder()
		if !g.IsTopologicalOrder(o1) {
			t.Fatalf("canonical order invalid: %v", o1)
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatal("canonical order not deterministic")
			}
		}
	}
}

func TestTopologicalOrderReturnsCopy(t *testing.T) {
	g := diamond(t)
	o := g.TopologicalOrder()
	o[0] = 99
	if g.TopologicalOrder()[0] == 99 {
		t.Fatal("TopologicalOrder exposed internal slice")
	}
}

func TestRandomTopologicalOrderProperty(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		g := randomDAG(r, 2+r.Intn(50), 0.25)
		order := g.RandomTopologicalOrder(r)
		if !g.IsTopologicalOrder(order) {
			t.Fatalf("random order invalid for n=%d: %v", g.N(), order)
		}
	}
}

func TestRandomTopologicalOrderCoversAlternatives(t *testing.T) {
	// In the diamond, nodes 1 and 2 can appear in either order; with enough
	// samples both must occur.
	g := diamond(t)
	r := rng.New(9)
	saw12, saw21 := false, false
	for i := 0; i < 200; i++ {
		o := g.RandomTopologicalOrder(r)
		pos := make(map[int]int, 4)
		for i, v := range o {
			pos[v] = i
		}
		if pos[1] < pos[2] {
			saw12 = true
		} else {
			saw21 = true
		}
	}
	if !saw12 || !saw21 {
		t.Fatalf("random topological order never varied: saw12=%v saw21=%v", saw12, saw21)
	}
}

func TestIsTopologicalOrderRejects(t *testing.T) {
	g := diamond(t)
	cases := [][]int{
		{3, 1, 2, 0},    // reversed
		{0, 1, 2},       // short
		{0, 1, 2, 2},    // repeat
		{0, 1, 2, 4},    // out of range
		{1, 0, 2, 3},    // violates 0->1
		{0, 1, 3, 2},    // violates 2->3
		{0, -1, 2, 3},   // negative
		{0, 1, 2, 3, 3}, // long
	}
	for _, c := range cases {
		if g.IsTopologicalOrder(c) {
			t.Errorf("accepted invalid order %v", c)
		}
	}
	if !g.IsTopologicalOrder([]int{0, 2, 1, 3}) {
		t.Error("rejected valid order")
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	levels := g.Levels()
	want := [][]int{{0}, {1, 2}, {3}}
	if len(levels) != len(want) {
		t.Fatalf("got %d levels, want %d", len(levels), len(want))
	}
	for i := range want {
		if len(levels[i]) != len(want[i]) {
			t.Fatalf("level %d = %v, want %v", i, levels[i], want[i])
		}
		for j := range want[i] {
			if levels[i][j] != want[i][j] {
				t.Fatalf("level %d = %v, want %v", i, levels[i], want[i])
			}
		}
	}
	if g.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", g.Depth())
	}
}

func TestLevelsLongestPath(t *testing.T) {
	// 0->1->2 and 0->2 directly: node 2 must sit at level 2, not 1.
	b := NewBuilder(3)
	b.MustAddEdge(0, 1, 0)
	b.MustAddEdge(1, 2, 0)
	b.MustAddEdge(0, 2, 0)
	g := b.MustBuild()
	levels := g.Levels()
	if len(levels) != 3 || levels[2][0] != 2 {
		t.Fatalf("levels = %v, want node 2 at depth 2", levels)
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := diamond(t)
	c := g.TransitiveClosure()
	reach := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}}
	for _, p := range reach {
		if !c.Reachable(p[0], p[1]) {
			t.Errorf("Reachable(%d,%d) = false", p[0], p[1])
		}
		if c.Reachable(p[1], p[0]) {
			t.Errorf("Reachable(%d,%d) = true (backwards)", p[1], p[0])
		}
	}
	if !c.Independent(1, 2) || c.Independent(0, 3) || c.Independent(1, 1) {
		t.Error("Independence answers wrong")
	}
}

func TestClosureMatchesDFS(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(r, 2+r.Intn(70), 0.15)
		c := g.TransitiveClosure()
		// Reference reachability by DFS from each node.
		for u := 0; u < g.N(); u++ {
			seen := make([]bool, g.N())
			stack := []int{u}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, a := range g.Successors(v) {
					if !seen[a.To] {
						seen[a.To] = true
						stack = append(stack, a.To)
					}
				}
			}
			for v := 0; v < g.N(); v++ {
				if v == u {
					continue
				}
				if seen[v] != c.Reachable(u, v) {
					t.Fatalf("closure mismatch %d->%d: dfs=%v closure=%v", u, v, seen[v], c.Reachable(u, v))
				}
			}
		}
	}
}

func TestDescendants(t *testing.T) {
	g := diamond(t)
	c := g.TransitiveClosure()
	d := c.Descendants(0)
	if len(d) != 3 || d[0] != 1 || d[1] != 2 || d[2] != 3 {
		t.Fatalf("Descendants(0) = %v", d)
	}
	if len(c.Descendants(3)) != 0 {
		t.Fatalf("Descendants(3) = %v, want empty", c.Descendants(3))
	}
}

func TestClosureLargeBitsetBoundary(t *testing.T) {
	// 130 nodes spans three 64-bit words; chain graph checks word boundaries.
	n := 130
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.MustAddEdge(i, i+1, 0)
	}
	c := b.MustBuild().TransitiveClosure()
	if !c.Reachable(0, n-1) || !c.Reachable(63, 64) || !c.Reachable(127, 128) {
		t.Fatal("chain reachability across word boundaries failed")
	}
	if got := len(c.Descendants(0)); got != n-1 {
		t.Fatalf("Descendants(0) size = %d, want %d", got, n-1)
	}
}

func TestWithExtraEdges(t *testing.T) {
	g := diamond(t)
	g2, err := g.WithExtraEdges([]Edge{{1, 2, 0}})
	if err != nil {
		t.Fatalf("WithExtraEdges: %v", err)
	}
	if !g2.HasEdge(1, 2) || g2.EdgeCount() != 5 {
		t.Fatal("extra edge missing")
	}
	if !g.HasEdge(0, 1) || g.EdgeCount() != 4 {
		t.Fatal("original graph mutated")
	}
	if _, err := g.WithExtraEdges([]Edge{{3, 0, 0}}); err == nil {
		t.Fatal("cycle-creating extra edge accepted")
	}
	if _, err := g.WithExtraEdges([]Edge{{0, 1, 0}}); err == nil {
		t.Fatal("duplicate extra edge accepted")
	}
}

func TestDot(t *testing.T) {
	g := diamond(t)
	dot := g.Dot("fig1")
	for _, want := range []string{"digraph \"fig1\"", "n0 -> n1", "n2 -> n3", "label=\"4\""} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestQuickRandomDAGInvariants(t *testing.T) {
	r := rng.New(33)
	check := func(nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%60) + 1
		p := float64(pRaw%100) / 100
		g := randomDAG(r, n, p)
		order := g.TopologicalOrder()
		if !g.IsTopologicalOrder(order) {
			return false
		}
		// Entry/exit consistency with degrees.
		for _, e := range g.Entries() {
			if g.InDegree(e) != 0 {
				return false
			}
		}
		for _, e := range g.Exits() {
			if g.OutDegree(e) != 0 {
				return false
			}
		}
		// Levels partition all nodes.
		total := 0
		for _, lv := range g.Levels() {
			total += len(lv)
		}
		return total == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransitiveClosure(b *testing.B) {
	r := rng.New(1)
	g := randomDAG(r, 100, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.TransitiveClosure()
	}
}

func BenchmarkRandomTopologicalOrder(b *testing.B) {
	r := rng.New(1)
	g := randomDAG(r, 100, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RandomTopologicalOrder(r)
	}
}
