package dag

import (
	"robsched/internal/rng"

	"math"
	"testing"
)

func TestStatsDiamond(t *testing.T) {
	g := diamond(t)
	s := g.Stats()
	if s.Nodes != 4 || s.Edges != 4 {
		t.Fatalf("nodes/edges = %d/%d", s.Nodes, s.Edges)
	}
	if s.Depth != 3 || s.Width != 2 {
		t.Errorf("depth/width = %d/%d, want 3/2", s.Depth, s.Width)
	}
	if s.MaxIn != 2 || s.MaxOut != 2 {
		t.Errorf("maxIn/maxOut = %d/%d", s.MaxIn, s.MaxOut)
	}
	if want := 4.0 / 6.0; math.Abs(s.Density-want) > 1e-12 {
		t.Errorf("density = %g, want %g", s.Density, want)
	}
	if s.AvgDegree != 1 {
		t.Errorf("avgDegree = %g", s.AvgDegree)
	}
	if want := 4.0 / 3.0; math.Abs(s.Parallelism-want) > 1e-12 {
		t.Errorf("parallelism = %g, want %g", s.Parallelism, want)
	}
	if s.Entries != 1 || s.Exits != 1 {
		t.Errorf("entries/exits = %d/%d", s.Entries, s.Exits)
	}
}

func TestStatsSingleNode(t *testing.T) {
	g := NewBuilder(1).MustBuild()
	s := g.Stats()
	if s.Depth != 1 || s.Width != 1 || s.Density != 0 || s.Parallelism != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLongestPathUnitWeights(t *testing.T) {
	g := diamond(t)
	got := g.LongestPath(
		func(int) float64 { return 1 },
		func(int, int, float64) float64 { return 0 },
	)
	if got != float64(g.Depth()) {
		t.Fatalf("unit longest path = %g, want depth %d", got, g.Depth())
	}
}

func TestLongestPathWeighted(t *testing.T) {
	// diamond edges carry data 1, 2, 3, 4; node weight = id+1, edge weight
	// = data. Paths: 0-1-3 = (1+2+4)+(1+3) = 11; 0-2-3 = (1+3+4)+(2+4) = 14.
	g := diamond(t)
	got := g.LongestPath(
		func(v int) float64 { return float64(v + 1) },
		func(u, v int, data float64) float64 { return data },
	)
	if got != 14 {
		t.Fatalf("weighted longest path = %g, want 14", got)
	}
}

func TestLongestPathMatchesLevelsOnRandom(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 30; trial++ {
		g := randomDAG(r, 2+r.Intn(50), 0.2)
		lp := g.LongestPath(
			func(int) float64 { return 1 },
			func(int, int, float64) float64 { return 0 },
		)
		if int(lp) != g.Depth() {
			t.Fatalf("unit longest path %g != depth %d", lp, g.Depth())
		}
	}
}
