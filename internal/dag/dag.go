// Package dag implements the directed-acyclic task-graph model used by the
// robust scheduling problem (Section 3.1 of the paper).
//
// A task graph G = (V, E) has n task nodes and directed edges that carry the
// amount of data transferred between dependent tasks (the matrix D in the
// paper). The package provides construction with full validation, canonical
// and random topological orders, level decomposition, transitive closure for
// independence queries (needed by Corollary 3.5), and Graphviz export.
//
// Graphs are immutable after Build, which makes them safe to share across
// the goroutines that fan out Monte-Carlo realizations.
package dag

import (
	"fmt"
	"sort"
)

// Arc is one directed edge endpoint as seen from a node's adjacency list.
type Arc struct {
	// To is the neighbouring node: the successor when the Arc comes from
	// Successors, the predecessor when it comes from Predecessors.
	To int
	// Data is the amount of data transferred along the edge (d_ij).
	Data float64
}

// Edge is a fully specified directed edge.
type Edge struct {
	From, To int
	Data     float64
}

// Graph is an immutable directed acyclic task graph.
type Graph struct {
	n     int
	succ  [][]Arc
	pred  [][]Arc
	topo  []int
	edges int
}

// Builder accumulates nodes and edges and validates them into a Graph.
type Builder struct {
	n     int
	edges []Edge
	seen  map[[2]int]bool
}

// NewBuilder returns a Builder for a graph with n nodes, identified 0..n-1.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, seen: make(map[[2]int]bool)}
}

// AddEdge records a directed edge from -> to carrying data units of
// communication. It returns an error for out-of-range endpoints, self loops,
// duplicate edges, or negative data sizes.
func (b *Builder) AddEdge(from, to int, data float64) error {
	switch {
	case from < 0 || from >= b.n:
		return fmt.Errorf("dag: edge source %d out of range [0,%d)", from, b.n)
	case to < 0 || to >= b.n:
		return fmt.Errorf("dag: edge target %d out of range [0,%d)", to, b.n)
	case from == to:
		return fmt.Errorf("dag: self loop on node %d", from)
	case data < 0:
		return fmt.Errorf("dag: negative data size %g on edge %d->%d", data, from, to)
	}
	key := [2]int{from, to}
	if b.seen[key] {
		return fmt.Errorf("dag: duplicate edge %d->%d", from, to)
	}
	b.seen[key] = true
	b.edges = append(b.edges, Edge{from, to, data})
	return nil
}

// MustAddEdge is AddEdge but panics on error; intended for hand-built fixed
// graphs whose shape is known at compile time.
func (b *Builder) MustAddEdge(from, to int, data float64) {
	if err := b.AddEdge(from, to, data); err != nil {
		panic(err)
	}
}

// Build validates acyclicity and returns the immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	if b.n <= 0 {
		return nil, fmt.Errorf("dag: graph must have at least one node, got %d", b.n)
	}
	g := &Graph{
		n:     b.n,
		succ:  make([][]Arc, b.n),
		pred:  make([][]Arc, b.n),
		edges: len(b.edges),
	}
	for _, e := range b.edges {
		g.succ[e.From] = append(g.succ[e.From], Arc{e.To, e.Data})
		g.pred[e.To] = append(g.pred[e.To], Arc{e.From, e.Data})
	}
	// Keep adjacency deterministic regardless of insertion order.
	for i := 0; i < g.n; i++ {
		sort.Slice(g.succ[i], func(a, b int) bool { return g.succ[i][a].To < g.succ[i][b].To })
		sort.Slice(g.pred[i], func(a, b int) bool { return g.pred[i][a].To < g.pred[i][b].To })
	}
	topo, err := kahn(g.n, g.succ, g.pred, nil)
	if err != nil {
		return nil, err
	}
	g.topo = topo
	return g, nil
}

// MustBuild is Build but panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// kahn runs Kahn's algorithm over the combined succ adjacency plus optional
// extra edges, always popping the smallest ready node so the order is
// canonical. It reports an error containing the cycle size if the graph is
// not acyclic.
func kahn(n int, succ [][]Arc, pred [][]Arc, extra [][]int) ([]int, error) {
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(pred[v])
	}
	for _, tails := range extra {
		for _, to := range tails {
			indeg[to]++
		}
	}
	// Min-heap over ready nodes keeps the order canonical.
	heap := make([]int, 0, n)
	push := func(v int) {
		heap = append(heap, v)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p] <= heap[i] {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() int {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && heap[l] < heap[small] {
				small = l
			}
			if r < last && heap[r] < heap[small] {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			push(v)
		}
	}
	order := make([]int, 0, n)
	for len(heap) > 0 {
		v := pop()
		order = append(order, v)
		for _, a := range succ[v] {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				push(a.To)
			}
		}
		if extra != nil {
			for _, to := range extra[v] {
				indeg[to]--
				if indeg[to] == 0 {
					push(to)
				}
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag: graph contains a cycle involving %d node(s)", n-len(order))
	}
	return order, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return g.edges }

// Successors returns the outgoing arcs of v. The caller must not modify it.
func (g *Graph) Successors(v int) []Arc { return g.succ[v] }

// Predecessors returns the incoming arcs of v (Arc.To is the predecessor).
// The caller must not modify it.
func (g *Graph) Predecessors(v int) []Arc { return g.pred[v] }

// OutDegree returns the number of immediate successors of v.
func (g *Graph) OutDegree(v int) int { return len(g.succ[v]) }

// InDegree returns the number of immediate predecessors of v.
func (g *Graph) InDegree(v int) int { return len(g.pred[v]) }

// Entries returns the nodes with no predecessors, in increasing order.
func (g *Graph) Entries() []int {
	var out []int
	for v := 0; v < g.n; v++ {
		if len(g.pred[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Exits returns the nodes with no successors, in increasing order.
func (g *Graph) Exits() []int {
	var out []int
	for v := 0; v < g.n; v++ {
		if len(g.succ[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// HasEdge reports whether the edge u->v exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.Data(u, v)
	return ok
}

// Data returns the data size on edge u->v and whether the edge exists.
func (g *Graph) Data(u, v int) (float64, bool) {
	arcs := g.succ[u]
	lo, hi := 0, len(arcs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case arcs[mid].To < v:
			lo = mid + 1
		case arcs[mid].To > v:
			hi = mid
		default:
			return arcs[mid].Data, true
		}
	}
	return 0, false
}

// Edges returns all edges sorted by (From, To).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u := 0; u < g.n; u++ {
		for _, a := range g.succ[u] {
			out = append(out, Edge{u, a.To, a.Data})
		}
	}
	return out
}

// TopologicalOrder returns a copy of the canonical topological order.
func (g *Graph) TopologicalOrder() []int {
	out := make([]int, g.n)
	copy(out, g.topo)
	return out
}

// IsTopologicalOrder reports whether perm is a permutation of the nodes that
// respects every precedence constraint.
func (g *Graph) IsTopologicalOrder(perm []int) bool {
	if len(perm) != g.n {
		return false
	}
	pos := make([]int, g.n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range perm {
		if v < 0 || v >= g.n || pos[v] != -1 {
			return false
		}
		pos[v] = i
	}
	for u := 0; u < g.n; u++ {
		for _, a := range g.succ[u] {
			if pos[u] > pos[a.To] {
				return false
			}
		}
	}
	return true
}

// RandomTopologicalOrder returns a topological order sampled by running
// Kahn's algorithm with a uniformly random choice among ready nodes. This is
// how the GA generates initial scheduling strings (Section 4.2.2).
type intSource interface{ Intn(int) int }

func (g *Graph) RandomTopologicalOrder(r intSource) []int {
	indeg := make([]int, g.n)
	ready := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.pred[v])
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(ready) > 0 {
		i := r.Intn(len(ready))
		v := ready[i]
		last := len(ready) - 1
		ready[i] = ready[last]
		ready = ready[:last]
		order = append(order, v)
		for _, a := range g.succ[v] {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				ready = append(ready, a.To)
			}
		}
	}
	return order
}

// Levels returns the longest-path layering of the graph: level 0 holds the
// entry nodes and each node sits one past its deepest predecessor. Nodes
// within a level are sorted.
func (g *Graph) Levels() [][]int {
	depth := make([]int, g.n)
	maxDepth := 0
	for _, v := range g.topo {
		for _, a := range g.pred[v] {
			if d := depth[a.To] + 1; d > depth[v] {
				depth[v] = d
			}
		}
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	levels := make([][]int, maxDepth+1)
	for v := 0; v < g.n; v++ {
		levels[depth[v]] = append(levels[depth[v]], v)
	}
	return levels
}

// Depth returns the number of levels in the longest-path layering.
func (g *Graph) Depth() int { return len(g.Levels()) }

// WithExtraEdges returns a new Graph equal to g plus the given zero-data
// edges, or an error if an extra edge duplicates an existing one or creates
// a cycle. Definition 3.1's disjunctive graph G_s is built this way.
func (g *Graph) WithExtraEdges(extra []Edge) (*Graph, error) {
	b := NewBuilder(g.n)
	for _, e := range g.Edges() {
		if err := b.AddEdge(e.From, e.To, e.Data); err != nil {
			return nil, err
		}
	}
	for _, e := range extra {
		if err := b.AddEdge(e.From, e.To, e.Data); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
