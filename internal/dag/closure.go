package dag

import "math/bits"

// Closure is a precomputed transitive closure supporting O(1) reachability
// and independence queries. Two tasks are independent when neither reaches
// the other; Corollary 3.5 of the paper states that the makespan is immune
// to simultaneous delays, each within its own slack, on any set of pairwise
// independent tasks of the disjunctive graph.
type Closure struct {
	n     int
	words int
	bits  []uint64 // row-major: bits[v*words ...] = set of nodes reachable from v
}

// TransitiveClosure computes the closure of g with a bitset DP over the
// reverse topological order, O(V*E/64).
func (g *Graph) TransitiveClosure() *Closure {
	words := (g.n + 63) / 64
	c := &Closure{n: g.n, words: words, bits: make([]uint64, g.n*words)}
	for i := len(g.topo) - 1; i >= 0; i-- {
		v := g.topo[i]
		row := c.bits[v*words : (v+1)*words]
		for _, a := range g.succ[v] {
			row[a.To/64] |= 1 << (uint(a.To) % 64)
			child := c.bits[a.To*words : (a.To+1)*words]
			for w := range row {
				row[w] |= child[w]
			}
		}
	}
	return c
}

// Reachable reports whether there is a directed path from u to v (u != v).
func (c *Closure) Reachable(u, v int) bool {
	return c.bits[u*c.words+v/64]&(1<<(uint(v)%64)) != 0
}

// Independent reports whether u and v are distinct and neither reaches the
// other.
func (c *Closure) Independent(u, v int) bool {
	return u != v && !c.Reachable(u, v) && !c.Reachable(v, u)
}

// Descendants returns the nodes reachable from v, in increasing order.
func (c *Closure) Descendants(v int) []int {
	var out []int
	row := c.bits[v*c.words : (v+1)*c.words]
	for w, word := range row {
		for word != 0 {
			idx := w*64 + bits.TrailingZeros64(word)
			out = append(out, idx)
			word &= word - 1
		}
	}
	return out
}
