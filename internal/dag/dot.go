package dag

import (
	"fmt"
	"strings"
)

// Dot renders the graph in Graphviz format. Node labels are 1-based to match
// the paper's figures; edge labels carry the data size when non-zero.
func (g *Graph) Dot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", name)
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&b, "  n%d [label=\"%d\"];\n", v, v+1)
	}
	for _, e := range g.Edges() {
		if e.Data != 0 {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.3g\"];\n", e.From, e.To, e.Data)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
