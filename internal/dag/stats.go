package dag

// Stats summarizes a task graph's shape — the quantities workload studies
// report next to their parameters (depth, width, density, degree).
type Stats struct {
	Nodes  int
	Edges  int
	Depth  int // levels in the longest-path layering
	Width  int // size of the largest level
	MaxIn  int // largest in-degree
	MaxOut int // largest out-degree
	// Density is edges / possible edges in a DAG: n(n-1)/2.
	Density float64
	// AvgDegree is the mean number of successors per node.
	AvgDegree float64
	// Parallelism is Nodes / Depth: the mean level width, an upper bound
	// estimate of exploitable task parallelism.
	Parallelism float64
	// Entries and Exits count source and sink tasks.
	Entries, Exits int
}

// Stats computes the summary.
func (g *Graph) Stats() Stats {
	s := Stats{Nodes: g.n, Edges: g.edges}
	levels := g.Levels()
	s.Depth = len(levels)
	for _, lv := range levels {
		if len(lv) > s.Width {
			s.Width = len(lv)
		}
	}
	for v := 0; v < g.n; v++ {
		if d := g.InDegree(v); d > s.MaxIn {
			s.MaxIn = d
		}
		if d := g.OutDegree(v); d > s.MaxOut {
			s.MaxOut = d
		}
	}
	if g.n > 1 {
		s.Density = float64(g.edges) / (float64(g.n) * float64(g.n-1) / 2)
	}
	s.AvgDegree = float64(g.edges) / float64(g.n)
	s.Parallelism = float64(g.n) / float64(s.Depth)
	s.Entries = len(g.Entries())
	s.Exits = len(g.Exits())
	return s
}

// LongestPath returns the length of the longest path through the graph
// where each node contributes nodeWeight(v) and each edge
// edgeWeight(u, v, data). With unit node weights and zero edge weights it
// equals Depth().
func (g *Graph) LongestPath(nodeWeight func(v int) float64, edgeWeight func(u, v int, data float64) float64) float64 {
	dist := make([]float64, g.n)
	best := 0.0
	for _, v := range g.topo {
		d := 0.0
		for _, a := range g.pred[v] {
			u := a.To
			if x := dist[u] + edgeWeight(u, v, a.Data); x > d {
				d = x
			}
		}
		dist[v] = d + nodeWeight(v)
		if dist[v] > best {
			best = dist[v]
		}
	}
	return best
}
