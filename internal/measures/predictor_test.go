package measures

import (
	"testing"

	"robsched/internal/heft"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
	"robsched/internal/sim"
	"robsched/internal/stats"
)

// TestSlackPredictsDelay validates the claim the paper builds on (Leon,
// Wu & Storer 1994: "the mean job slack was a good predictor of average
// schedule delay"): across many schedules of the same uncertain workload,
// the normalized average slack must correlate *negatively* and strongly
// with the realized mean relative tardiness. This is the statistical
// justification for using slack as the GA's robustness surrogate at all.
func TestSlackPredictsDelay(t *testing.T) {
	w := testWorkload(t, 999, 40, 4, 4)

	// The schedule family where slack is the controlled variable: the
	// ε-constraint GA across the ε grid (the paper's own Fig. 5 setting),
	// anchored by HEFT. (Uniformly random schedules confound the
	// relationship — their tardiness is dominated by structure, not slack —
	// so the paper's claim is about *engineered* slack, which this family
	// isolates.)
	var schedules []*schedule.Schedule
	hs, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schedules = append(schedules, hs)
	for i, eps := range []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0} {
		res, err := robust.Solve(w, robust.Options{
			Mode: robust.EpsilonConstraint, Eps: eps,
			PopSize: 12, CrossoverRate: 0.9, MutationRate: 0.2,
			MaxGenerations: 60,
		}, rng.New(uint64(40+i)))
		if err != nil {
			t.Fatal(err)
		}
		schedules = append(schedules, res.Schedule)
	}

	ms, err := sim.EvaluateAll(schedules, sim.Options{Realizations: 500}, rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	// Normalize slack by the schedule's own makespan so the predictor is
	// scale-free across the ε range.
	var slackNorm, tard []float64
	for i, s := range schedules {
		slackNorm = append(slackNorm, s.AvgSlack()/s.Makespan())
		tard = append(tard, ms[i].MeanTardiness)
	}
	pearson := stats.Pearson(slackNorm, tard)
	spearman := stats.Spearman(slackNorm, tard)
	if pearson >= -0.6 {
		t.Errorf("normalized slack does not predict tardiness: Pearson %g (want strongly negative)", pearson)
	}
	if spearman >= -0.6 {
		t.Errorf("normalized slack does not rank-predict tardiness: Spearman %g", spearman)
	}
	t.Logf("slack→tardiness correlation over %d schedules: Pearson %.3f, Spearman %.3f",
		len(schedules), pearson, spearman)
}
