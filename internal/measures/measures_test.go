package measures

import (
	"math"
	"testing"

	"robsched/internal/dag"
	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/robust"
	"robsched/internal/schedule"
)

func testWorkload(t testing.TB, seed uint64, n, m int, ul float64) *platform.Workload {
	t.Helper()
	p := gen.PaperParams()
	p.N, p.M, p.MeanUL = n, m, ul
	w, err := gen.Random(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// diamondSchedule reuses the hand-checkable fixture: slack = [0, 6, 0, 0],
// so exactly 3 critical components.
func diamondSchedule(t *testing.T) *schedule.Schedule {
	t.Helper()
	b := dag.NewBuilder(4)
	b.MustAddEdge(0, 1, 2)
	b.MustAddEdge(0, 2, 4)
	b.MustAddEdge(1, 3, 1)
	b.MustAddEdge(2, 3, 3)
	g := b.MustBuild()
	exec, _ := platform.MatrixFromRows([][]float64{{2, 3}, {3, 2}, {4, 2}, {1, 2}})
	w, err := platform.DeterministicWorkload(g, platform.UniformSystem(2, 1), exec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.New(w, []int{0, 0, 1, 0}, [][]int{{0, 1, 3}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCriticalComponentsDiamond(t *testing.T) {
	s := diamondSchedule(t)
	if got := CriticalComponents(s); got != 3 {
		t.Fatalf("CriticalComponents = %d, want 3", got)
	}
}

func TestSlackWithMatchesExpected(t *testing.T) {
	// SlackWith under expected durations reproduces the cached analysis.
	w := testWorkload(t, 1, 30, 4, 3)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	slack, makespan := s.SlackWith(s.ExpectedDurations())
	if math.Abs(makespan-s.Makespan()) > 1e-9 {
		t.Fatalf("makespan %g != %g", makespan, s.Makespan())
	}
	for v := range slack {
		if math.Abs(slack[v]-s.Slack(v)) > 1e-9 {
			t.Fatalf("slack(%d) = %g, want %g", v, slack[v], s.Slack(v))
		}
	}
}

func TestCriticalityProbabilitiesDeterministic(t *testing.T) {
	// With UL=1 every realization is identical, so criticality
	// probabilities are exactly 0 or 1 and match the static analysis.
	s := diamondSchedule(t)
	probs, err := CriticalityProbabilities(s, 50, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0, 1, 1}
	for v := range want {
		if probs[v] != want[v] {
			t.Fatalf("probs = %v, want %v", probs, want)
		}
	}
}

func TestCriticalityProbabilitiesRange(t *testing.T) {
	w := testWorkload(t, 3, 25, 3, 4)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	probs, err := CriticalityProbabilities(s, 200, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	anyPositive := false
	for v, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("prob(%d) = %g", v, p)
		}
		if p > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Fatal("no task ever critical")
	}
	if _, err := CriticalityProbabilities(s, 0, rng.New(1)); err == nil {
		t.Fatal("zero realizations accepted")
	}
}

func TestEntropy(t *testing.T) {
	// Concentrated criticality → zero entropy.
	if h := Entropy([]float64{1, 0, 0}); h != 0 {
		t.Errorf("concentrated entropy = %g", h)
	}
	// Uniform over k tasks → ln k.
	if h := Entropy([]float64{0.5, 0.5, 0.5, 0.5}); math.Abs(h-math.Log(4)) > 1e-12 {
		t.Errorf("uniform entropy = %g, want ln 4", h)
	}
	// Empty / all-zero → 0.
	if h := Entropy(nil); h != 0 {
		t.Errorf("empty entropy = %g", h)
	}
	if h := Entropy([]float64{0, 0}); h != 0 {
		t.Errorf("zero entropy = %g", h)
	}
	// Scale invariance of the normalization.
	a := Entropy([]float64{0.2, 0.4, 0.4})
	b := Entropy([]float64{0.1, 0.2, 0.2})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("entropy not scale invariant: %g vs %g", a, b)
	}
}

func TestKSDistance(t *testing.T) {
	// Identical samples → 0.
	a := []float64{1, 2, 3, 4, 5}
	if d, err := KSDistance(a, a); err != nil || d != 0 {
		t.Fatalf("KS(a,a) = %g, %v", d, err)
	}
	// Disjoint supports → 1.
	b := []float64{10, 11, 12}
	if d, _ := KSDistance(a, b); d != 1 {
		t.Fatalf("KS(disjoint) = %g, want 1", d)
	}
	// Known half-shifted case: {1,2} vs {2,3}: D = 0.5.
	if d, _ := KSDistance([]float64{1, 2}, []float64{2, 3}); d != 0.5 {
		t.Fatalf("KS half shift = %g, want 0.5", d)
	}
	// Symmetry.
	d1, _ := KSDistance(a, b)
	d2, _ := KSDistance(b, a)
	if d1 != d2 {
		t.Fatalf("KS not symmetric: %g vs %g", d1, d2)
	}
	if _, err := KSDistance(nil, a); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestKSDistanceStatistical(t *testing.T) {
	// Two large samples from the same distribution have small KS distance;
	// from shifted distributions, large.
	r := rng.New(5)
	const n = 5000
	same1 := make([]float64, n)
	same2 := make([]float64, n)
	shifted := make([]float64, n)
	for i := 0; i < n; i++ {
		same1[i] = r.Norm(0, 1)
		same2[i] = r.Norm(0, 1)
		shifted[i] = r.Norm(1, 1)
	}
	dSame, _ := KSDistance(same1, same2)
	dShift, _ := KSDistance(same1, shifted)
	if dSame > 0.05 {
		t.Errorf("KS same-distribution = %g, want small", dSame)
	}
	if dShift < 0.3 {
		t.Errorf("KS shifted = %g, want large", dShift)
	}
}

func TestSampleMakespans(t *testing.T) {
	w := testWorkload(t, 7, 20, 3, 3)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := SampleMakespans(s, 300, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 300 {
		t.Fatalf("got %d samples", len(ms))
	}
	for _, m := range ms {
		if m < s.Makespan()*0.2 {
			t.Fatalf("implausible makespan %g (M0 %g)", m, s.Makespan())
		}
	}
	if _, err := SampleMakespans(s, 0, rng.New(1)); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// TestRobustScheduleLowersCriticalityEntropy ties the paper's approach to
// Bölöni & Marinescu's entropy measure: the slack-maximized GA schedule
// concentrates criticality on one stable, heavily padded path, so the
// probability of *which* tasks become critical is far less dispersed than
// in HEFT's tight schedule, where the critical path wanders between
// realizations. Lower schedule entropy = more predictable = more robust in
// their framing. (The raw critical-component *count* is not a reliable
// discriminator here: stretching the makespan can lengthen the single
// critical chain even as everything else gains slack.)
func TestRobustScheduleLowersCriticalityEntropy(t *testing.T) {
	lower := 0
	const instances = 5
	for k := 0; k < instances; k++ {
		w := testWorkload(t, uint64(20+k), 30, 4, 4)
		hs, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := robust.Solve(w, robust.Options{
			Mode: robust.EpsilonConstraint, Eps: 1.5,
			PopSize: 12, CrossoverRate: 0.9, MutationRate: 0.2,
			MaxGenerations: 60,
		}, rng.New(uint64(30+k)))
		if err != nil {
			t.Fatal(err)
		}
		ph, err := CriticalityProbabilities(hs, 200, rng.New(uint64(40+k)))
		if err != nil {
			t.Fatal(err)
		}
		pg, err := CriticalityProbabilities(res.Schedule, 200, rng.New(uint64(40+k)))
		if err != nil {
			t.Fatal(err)
		}
		if Entropy(pg) < Entropy(ph) {
			lower++
		}
	}
	if lower < instances-1 {
		t.Errorf("GA lowered criticality entropy on only %d/%d instances", lower, instances)
	}
}

func TestMeasureReport(t *testing.T) {
	w := testWorkload(t, 9, 20, 3, 3)
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Measure(s, 150, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CriticalComponents < 1 || rep.CriticalComponents > w.N() {
		t.Errorf("CriticalComponents = %d", rep.CriticalComponents)
	}
	if rep.Entropy < 0 {
		t.Errorf("Entropy = %g", rep.Entropy)
	}
	if rep.MeanSlack != s.AvgSlack() {
		t.Errorf("MeanSlack = %g, want %g", rep.MeanSlack, s.AvgSlack())
	}
	if rep.Metrics.Realizations != 150 {
		t.Errorf("Metrics.Realizations = %d", rep.Metrics.Realizations)
	}
}
