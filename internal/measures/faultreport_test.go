package measures

import (
	"testing"

	"robsched/internal/fault"
	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/repair"
	"robsched/internal/rng"
)

func TestMeasureFaults(t *testing.T) {
	p := gen.PaperParams()
	p.N, p.M, p.MeanUL = 30, 4, 3
	w, err := gen.Random(p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mo := fault.Model{MTBF: 3 * s.Makespan(), KeepOne: true}
	pol := repair.FaultPolicy{
		Policy:     repair.NeverReschedule(),
		Retry:      repair.RetryPolicy{MaxRetries: 2, Migrate: true},
		DropFactor: 3,
	}
	rep, err := MeasureFaults(s, pol, mo, 0, 60, 2, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if rep.NoFault.MeanMakespan < s.Makespan() {
		t.Fatalf("no-fault mean %g below M0 %g", rep.NoFault.MeanMakespan, s.Makespan())
	}
	// Faults can only hurt the expected makespan relative to pure noise.
	if rep.Fault.MeanMakespan < rep.NoFault.MeanMakespan {
		t.Fatalf("faulted mean %g below no-fault mean %g", rep.Fault.MeanMakespan, rep.NoFault.MeanMakespan)
	}
	if rep.Fault.R1 <= 0 || rep.Fault.R2 <= 0 {
		t.Fatalf("fault-conditional robustness not computed: %+v", rep.Fault.Metrics)
	}
	if len(rep.Degradation) != 3 {
		t.Fatalf("degradation curve has %d lanes, want 3", len(rep.Degradation))
	}
	if rep.Degradation[0].MeanCompletion != 1 {
		t.Fatalf("no-failure lane completion %g", rep.Degradation[0].MeanCompletion)
	}

	// Reproducible from the seed.
	again, err := MeasureFaults(s, pol, mo, 0, 60, 2, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if again.Fault.MeanMakespan != rep.Fault.MeanMakespan ||
		again.Fault.MeanRetries != rep.Fault.MeanRetries ||
		again.NoFault.MeanMakespan != rep.NoFault.MeanMakespan {
		t.Fatal("fault report not reproducible from seed")
	}

	if _, err := MeasureFaults(s, pol, mo, 0, 0, 2, rng.New(1)); err == nil {
		t.Error("zero realizations accepted")
	}
}
