package measures

// Fault-conditional robustness measures: the no-fault report answers "how
// robust is this schedule against duration noise?"; the fault report adds
// "and against processors failing?" by pairing the same distributional
// metrics with the fault-aware executor in internal/repair.

import (
	"robsched/internal/fault"
	"robsched/internal/repair"
	"robsched/internal/rng"
	"robsched/internal/schedule"
	"robsched/internal/sim"
)

// FaultReport bundles the fault-conditional robustness view of one
// schedule: the makespan distribution and R1/R2 under faults, the repair
// effort spent (retries, migrations, dropped work), and a degradation
// curve of expected makespan and completion versus permanent failures.
type FaultReport struct {
	// NoFault is the baseline duration-noise-only evaluation, computed on
	// the batched RealizeAll kernel with the same realization budget.
	NoFault sim.Metrics
	// Fault holds distribution metrics plus mean retry/migration/drop
	// counts per realization under the fault model.
	Fault repair.FaultMetrics
	// Degradation is the expected makespan and completion fraction when
	// exactly k processors fail, k = 0..len-1.
	Degradation []repair.DegradationPoint
}

// MeasureFaults computes the fault report: realizations Monte-Carlo
// samples under the sampler (horizon <= 0 defaults to 4·M0), plus a
// degradation curve up to maxFailures permanent failures. The three
// sections draw independent sub-streams of root, so the report is
// reproducible from (schedule, policy, sampler, seed) alone.
func MeasureFaults(s *schedule.Schedule, pol repair.FaultPolicy, src fault.Sampler,
	horizon float64, realizations, maxFailures int, root *rng.Source) (FaultReport, error) {
	opt := sim.Options{Realizations: realizations}
	if err := opt.Validate(); err != nil {
		return FaultReport{}, err
	}
	mks, err := SampleMakespans(s, realizations, root.Split())
	if err != nil {
		return FaultReport{}, err
	}
	rep := FaultReport{NoFault: sim.MetricsFromSamples(s.Makespan(), mks, 0)}
	rep.Fault, err = repair.EvaluateFaults(s, pol, src, horizon, opt, root.Split())
	if err != nil {
		return FaultReport{}, err
	}
	rep.Degradation, err = repair.DegradationCurve(s, pol, maxFailures, opt, root.Split())
	if err != nil {
		return FaultReport{}, err
	}
	return rep, nil
}
