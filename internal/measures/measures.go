// Package measures implements the alternative robustness measures from the
// paper's related-work section, so the slack-based approach can be compared
// against its contemporaries on the same schedules:
//
//   - Bölöni & Marinescu (Journal of Scheduling 2002): the number of
//     *critical components* of a schedule — the fewer tasks sit on a
//     critical path, the more robust the schedule — and a schedule
//     *entropy* built from the probability that each task becomes critical
//     in a realization (the paper notes this probability is "non-trivial"
//     to determine analytically; here it is estimated by Monte Carlo).
//   - Leon, Wu & Storer (IIE Transactions 1994): average slack as a delay
//     predictor (the quantity the paper adopts as its surrogate; exposed
//     here for side-by-side reporting).
//   - England, Weissman & Sadagopan (HPDC 2005): robustness as a
//     distributional distance — implemented as the Kolmogorov–Smirnov
//     statistic between empirical makespan distributions.
package measures

import (
	"fmt"
	"math"
	"sort"

	"robsched/internal/rng"
	"robsched/internal/schedule"
	"robsched/internal/sim"
)

// CriticalTolerance is the slack threshold below which a task counts as
// critical, relative to the schedule makespan.
const CriticalTolerance = 1e-9

// CriticalComponents returns the number of tasks with (numerically) zero
// slack under expected durations — Bölöni & Marinescu's first robustness
// indicator (smaller is more robust).
func CriticalComponents(s *schedule.Schedule) int {
	count := 0
	for v := 0; v < s.Workload().N(); v++ {
		if s.Slack(v) <= CriticalTolerance*(1+s.Makespan()) {
			count++
		}
	}
	return count
}

// CriticalityProbabilities estimates, by Monte Carlo over realized
// durations, the probability that each task lies on a critical path of the
// realized execution (slack ≈ 0 under the realized durations).
func CriticalityProbabilities(s *schedule.Schedule, realizations int, root *rng.Source) ([]float64, error) {
	if realizations < 1 {
		return nil, fmt.Errorf("measures: realizations=%d must be >= 1", realizations)
	}
	w := s.Workload()
	n := w.N()
	counts := make([]int, n)
	dur := make([]float64, n)
	for k := 0; k < realizations; k++ {
		r := rng.New(root.Uint64())
		for v := 0; v < n; v++ {
			dur[v] = w.SampleDuration(v, s.Proc(v), r)
		}
		slack, makespan := s.SlackWith(dur)
		tol := CriticalTolerance * (1 + makespan)
		for v := 0; v < n; v++ {
			if slack[v] <= tol {
				counts[v]++
			}
		}
	}
	probs := make([]float64, n)
	for v := range probs {
		probs[v] = float64(counts[v]) / float64(realizations)
	}
	return probs, nil
}

// Entropy returns the Shannon entropy (nats) of the normalized criticality
// distribution — Bölöni & Marinescu's second indicator, adapted to task
// (rather than path) criticality probabilities: a schedule whose
// criticality concentrates on few tasks has low entropy; spreading the
// risk across many potential critical tasks raises it.
func Entropy(probs []float64) float64 {
	total := 0.0
	for _, p := range probs {
		total += p
	}
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, p := range probs {
		if p <= 0 {
			continue
		}
		q := p / total
		h -= q * math.Log(q)
	}
	return h
}

// MeanSlack is Leon et al.'s average-slack predictor — identical to the
// schedule's AvgSlack, re-exported for uniform reporting.
func MeanSlack(s *schedule.Schedule) float64 { return s.AvgSlack() }

// KSDistance returns the two-sample Kolmogorov–Smirnov statistic between
// empirical samples a and b: the maximum vertical distance between their
// empirical CDFs, in [0, 1]. England et al. frame robustness comparisons
// as distances between performance distributions; two schedules whose
// makespan distributions are close behave interchangeably under
// uncertainty.
func KSDistance(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("measures: KS distance needs non-empty samples")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j := 0, 0
	d := 0.0
	for i < len(as) && j < len(bs) {
		// Step past every occurrence of the current smallest value in both
		// samples before measuring, so ties move the two CDFs together.
		x := math.Min(as[i], bs[j])
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// SampleMakespans draws n realized makespans of the schedule, the raw
// material for distributional measures. It runs on sim.RealizeAll, the same
// batched kernel behind sim.Evaluate, so the sample is produced at batched
// throughput and ordered by realization index.
func SampleMakespans(s *schedule.Schedule, n int, root *rng.Source) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("measures: n=%d must be >= 1", n)
	}
	mks, err := sim.RealizeAll([]*schedule.Schedule{s}, sim.Options{Realizations: n}, root)
	if err != nil {
		return nil, err
	}
	return mks[0], nil
}

// Report bundles every related-work measure for one schedule.
type Report struct {
	CriticalComponents int
	Entropy            float64
	MeanSlack          float64
	Metrics            sim.Metrics
}

// Measure computes the full report with the given Monte-Carlo budget.
func Measure(s *schedule.Schedule, realizations int, root *rng.Source) (Report, error) {
	probs, err := CriticalityProbabilities(s, realizations, root.Split())
	if err != nil {
		return Report{}, err
	}
	m, err := sim.Evaluate(s, sim.Options{Realizations: realizations}, root.Split())
	if err != nil {
		return Report{}, err
	}
	return Report{
		CriticalComponents: CriticalComponents(s),
		Entropy:            Entropy(probs),
		MeanSlack:          MeanSlack(s),
		Metrics:            m,
	}, nil
}
