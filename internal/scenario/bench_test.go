package scenario

import (
	"testing"

	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
	"robsched/internal/sim"
)

// BenchmarkScenarioEvaluateAll is the corpus-driven perf lane behind
// BENCH_scenarios.json: the paper-scale Monte-Carlo evaluation (1000
// realizations, ~100 tasks, 8 processors, 7 schedules under common random
// numbers) for every scenario family × duration model, so kernel work is
// measured across graph shapes and sampling paths instead of one layered
// random graph. The "random-uniform" entry is the same path BENCH_sim.json's
// BenchmarkEvaluateAll tracks; the others price the workflow shapes and the
// general sampling path (heavy tails, correlated load).
func BenchmarkScenarioEvaluateAll(b *testing.B) {
	for _, name := range Names() {
		s, err := Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			p := gen.PaperParams() // N=100, M=8
			w, err := s.Workload(p, rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			ss := benchSchedules(b, w, 7)
			opt := s.Apply(sim.PaperOptions())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.EvaluateAll(ss, opt, rng.New(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSchedules mirrors internal/sim's benchmark corpus: HEFT plus
// deterministic round-robin variants of one workload.
func benchSchedules(tb testing.TB, w *platform.Workload, count int) []*schedule.Schedule {
	tb.Helper()
	s, err := heft.HEFT(w, heft.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	ss := []*schedule.Schedule{s}
	order := w.G.TopologicalOrder()
	for k := 1; len(ss) < count; k++ {
		proc := make([]int, w.N())
		for i, v := range order {
			proc[v] = (i*k + k) % w.M()
		}
		s, err := schedule.FromOrder(w, order, proc)
		if err != nil {
			tb.Fatal(err)
		}
		ss = append(ss, s)
	}
	return ss
}
