package scenario

import (
	"math"
	"testing"

	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/rng"
	"robsched/internal/schedule"
	"robsched/internal/sim"
)

func TestNamesResolve(t *testing.T) {
	names := Names()
	if want := len(Families()) * len(Models()); len(names) != want {
		t.Fatalf("registry lists %d scenarios, want %d", len(names), want)
	}
	seen := map[string]bool{}
	for _, name := range names {
		s, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("Lookup(%q).Name = %q", name, s.Name)
		}
		if seen[name] {
			t.Errorf("duplicate scenario name %q", name)
		}
		seen[name] = true
		if o := s.Apply(sim.Options{Realizations: 10}); o.Validate() != nil {
			t.Errorf("%q applies invalid sim options: %v", name, o.Validate())
		}
	}
}

func TestLookupForms(t *testing.T) {
	for _, family := range Families() {
		s, err := Lookup(family)
		if err != nil {
			t.Fatalf("bare family %q rejected: %v", family, err)
		}
		if s.Name != family+"-uniform" || s.Model != sim.ModelUniform || s.Corr != sim.CorrNone {
			t.Errorf("bare family %q resolved to %+v, want uniform model", family, s)
		}
	}
	for _, bad := range []string{"", "pegasus", "montage-cauchy", "random-", "-uniform"} {
		if _, err := Lookup(bad); err == nil {
			t.Errorf("Lookup(%q) accepted", bad)
		}
	}
}

// TestDefaultIsPaperPath pins the bit-identity contract of the default
// scenario: its workload generation routes through gen.Random with the same
// draws, and its option overlay is all-zero — nothing the -scenario plumbing
// touches can perturb the default experiment path.
func TestDefaultIsPaperPath(t *testing.T) {
	s := Default()
	p := gen.PaperParams()
	p.N, p.M = 30, 4
	got, err := s.Workload(p, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	want, err := gen.Random(p, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("default scenario workload shape %dx%d, want %dx%d", got.N(), got.M(), want.N(), want.M())
	}
	for i := 0; i < got.N(); i++ {
		for j := 0; j < got.M(); j++ {
			if math.Float64bits(got.BCET.At(i, j)) != math.Float64bits(want.BCET.At(i, j)) {
				t.Fatalf("default scenario BCET(%d,%d) differs from gen.Random", i, j)
			}
		}
	}
	if opt := s.Apply(sim.Options{Realizations: 7}); opt != (sim.Options{Realizations: 7}) {
		t.Errorf("default scenario perturbs sim options: %+v", opt)
	}
}

// TestScenarioMatrixSmoke is the CI scenario matrix: every registered
// family × duration model generates at a small size, schedules under HEFT,
// passes the shared schedule validator, and evaluates to finite metrics.
func TestScenarioMatrixSmoke(t *testing.T) {
	p := gen.PaperParams()
	p.N, p.M = 22, 3
	for _, name := range Names() {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		w, err := s.Workload(p, rng.New(5))
		if err != nil {
			t.Fatalf("%s: workload: %v", name, err)
		}
		if w.N() > p.N {
			t.Errorf("%s: %d tasks exceeds requested budget %d", name, w.N(), p.N)
		}
		sched, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			t.Fatalf("%s: HEFT: %v", name, err)
		}
		if err := schedule.Validate(sched); err != nil {
			t.Fatalf("%s: invalid schedule: %v", name, err)
		}
		opt := s.Apply(sim.Options{Realizations: 60, Workers: 1})
		m, err := sim.Evaluate(sched, opt, rng.New(6))
		if err != nil {
			t.Fatalf("%s: evaluate: %v", name, err)
		}
		if !(m.MeanMakespan > 0) || math.IsInf(m.MeanMakespan, 0) ||
			math.IsNaN(m.P95) || m.P95 < m.P50 {
			t.Errorf("%s: degenerate metrics %+v", name, m)
		}
	}
}

// TestWidthFor pins the task-count derivation: the derived width lands the
// family's task count as close to n as possible without exceeding it (for
// n comfortably above the minimum structure).
func TestWidthFor(t *testing.T) {
	cases := []struct {
		family string
		n      int
		tasks  func(w int) int
	}{
		{"montage", 100, func(w int) int { return 3*w + 4 }},
		{"epigenomics", 50, func(w int) int { return 3*w + 4 }},
		{"cybershake", 100, func(w int) int { return 2*w + 4 }},
	}
	for _, c := range cases {
		s, err := Lookup(c.family)
		if err != nil {
			t.Fatal(err)
		}
		w := s.WidthFor(c.n)
		if got := c.tasks(w); got > c.n || c.n-got > 3 {
			t.Errorf("%s: WidthFor(%d) = %d gives %d tasks", c.family, c.n, w, got)
		}
	}
	if s, _ := Lookup("montage"); s.WidthFor(1) != 2 {
		t.Error("WidthFor must clamp to the minimum width 2")
	}
}
