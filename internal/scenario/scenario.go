// Package scenario is the named scenario-family registry behind the CLIs'
// -scenario flag: the cross product of workflow families (the paper's
// layered-random generator plus the Montage / Epigenomics / CyberShake
// shapes of internal/gen) and duration models (the paper's uniform model,
// lognormal and bounded-Pareto heavy tails, and correlated per-processor
// load — internal/sim's model extension).
//
// A Scenario bundles exactly the two decisions an experiment must make —
// which workload to generate and which uncertainty model to evaluate it
// under — so figure sweeps, fault-resilience runs and benchmarks can be
// re-run per family by name instead of growing ad-hoc flag sets. The
// default scenario, "random-uniform", reproduces the paper's path
// bit-identically: it generates through gen.Random and applies zero-valued
// sim options.
package scenario

import (
	"fmt"
	"strings"

	"robsched/internal/gen"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/sim"
)

// Default parameters of the non-paper duration models: a 0.3-COV shared
// load factor is a moderately loaded cluster (busy enough to break the
// independence assumption measurably), and tail index 1.5 is the classic
// heavy tail (infinite variance before truncation).
const (
	DefaultLoadCOV     = 0.3
	DefaultParetoShape = 1.5
)

// Scenario is one named (workload family, duration model) pair.
type Scenario struct {
	// Name is the registry key, "<family>-<model>".
	Name string
	// Family is the workload generator: "random" (the paper's layered
	// generator) or a gen workflow shape ("montage", "epigenomics",
	// "cybershake").
	Family string
	// Model, Corr, LoadCOV and ParetoShape are the sim.Options overlay of
	// the scenario's duration model.
	Model       sim.DurationModel
	Corr        sim.Correlation
	LoadCOV     float64
	ParetoShape float64
}

// Families lists the workload families, paper generator first.
func Families() []string {
	return append([]string{"random"}, gen.WorkflowShapes()...)
}

// Models lists the duration-model names: the paper's independent uniform
// model, the two heavy tails, and correlated per-processor load (uniform
// marginals, CorrShared dependence).
func Models() []string { return []string{"uniform", "lognormal", "pareto", "correlated"} }

// Names enumerates the full registry in family-major order:
// "random-uniform", "random-lognormal", …, "cybershake-correlated".
func Names() []string {
	var out []string
	for _, f := range Families() {
		for _, m := range Models() {
			out = append(out, f+"-"+m)
		}
	}
	return out
}

// Lookup resolves a scenario name. Both the full "<family>-<model>" form
// and the bare family (implying the paper's uniform model) are accepted.
func Lookup(name string) (Scenario, error) {
	family, model := name, "uniform"
	if i := strings.LastIndex(name, "-"); i >= 0 {
		family, model = name[:i], name[i+1:]
	}
	familyOK := false
	for _, f := range Families() {
		if f == family {
			familyOK = true
			break
		}
	}
	if !familyOK {
		return Scenario{}, fmt.Errorf("scenario: unknown name %q (families %s, models %s)",
			name, strings.Join(Families(), "|"), strings.Join(Models(), "|"))
	}
	s := Scenario{Name: family + "-" + model, Family: family}
	switch model {
	case "uniform":
	case "lognormal":
		s.Model = sim.ModelLognormal
	case "pareto":
		s.Model = sim.ModelBoundedPareto
		s.ParetoShape = DefaultParetoShape
	case "correlated":
		s.Corr = sim.CorrShared
		s.LoadCOV = DefaultLoadCOV
	default:
		return Scenario{}, fmt.Errorf("scenario: unknown duration model %q in %q (want %s)",
			model, name, strings.Join(Models(), "|"))
	}
	return s, nil
}

// Default returns the paper's scenario: layered-random graphs under the
// independent uniform duration model.
func Default() Scenario {
	s, _ := Lookup("random-uniform")
	return s
}

// WidthFor derives the workflow width that brings the family's task count
// closest to (but not above) n: montage/epigenomics generate 3W+4 tasks,
// cybershake 2W+4. The minimum width is 2.
func (s Scenario) WidthFor(n int) int {
	var w int
	switch s.Family {
	case "cybershake":
		w = (n - 4) / 2
	default:
		w = (n - 4) / 3
	}
	if w < 2 {
		w = 2
	}
	return w
}

// Workload generates one workload instance of the scenario's family. The
// generator params carry the usual knobs (p.N sizes the instance; for
// workflow families the width is derived via WidthFor, so the task count
// tracks p.N without exceeding it). "random" routes through gen.Random
// unchanged — same draws, same workload, bit for bit.
func (s Scenario) Workload(p gen.Params, r *rng.Source) (*platform.Workload, error) {
	if s.Family == "" || s.Family == "random" {
		return gen.Random(p, r)
	}
	w, _, err := gen.WorkflowByName(s.Family, s.WidthFor(p.N), p, r)
	return w, err
}

// Apply overlays the scenario's duration model onto a sim option set. The
// default scenario's overlay writes only zero values, leaving the paper
// path untouched.
func (s Scenario) Apply(opt sim.Options) sim.Options {
	opt.Model = s.Model
	opt.Corr = s.Corr
	opt.LoadCOV = s.LoadCOV
	opt.ParetoShape = s.ParetoShape
	return opt
}
