package platform

import (
	"fmt"

	"robsched/internal/dag"
)

// Workload bundles everything a scheduler and the Monte-Carlo evaluator need
// about one problem instance: the task graph, the platform, the best-case
// execution times and the uncertainty levels.
type Workload struct {
	G    *dag.Graph
	Sys  *System
	BCET Matrix // n×m: b_ij, best-case execution time of task i on processor j
	UL   Matrix // n×m: UL_ij >= 1, uncertainty level of task i on processor j

	expected Matrix // cached UL ∘ BCET
}

// NewWorkload validates dimensions and value ranges and returns the bundle.
// UL entries must be >= 1 so that the duration distribution
// U(b, (2*UL-1)*b) has a non-negative width.
func NewWorkload(g *dag.Graph, sys *System, bcet, ul Matrix) (*Workload, error) {
	if g == nil || sys == nil {
		return nil, fmt.Errorf("platform: workload needs a graph and a system")
	}
	n, m := g.N(), sys.M()
	if bcet.Rows() != n || bcet.Cols() != m {
		return nil, fmt.Errorf("platform: BCET matrix is %dx%d, want %dx%d", bcet.Rows(), bcet.Cols(), n, m)
	}
	if ul.Rows() != n || ul.Cols() != m {
		return nil, fmt.Errorf("platform: UL matrix is %dx%d, want %dx%d", ul.Rows(), ul.Cols(), n, m)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if bcet.At(i, j) <= 0 {
				return nil, fmt.Errorf("platform: non-positive BCET %g for task %d on processor %d", bcet.At(i, j), i, j)
			}
			if ul.At(i, j) < 1 {
				return nil, fmt.Errorf("platform: uncertainty level %g < 1 for task %d on processor %d", ul.At(i, j), i, j)
			}
		}
	}
	w := &Workload{G: g, Sys: sys, BCET: bcet.Clone(), UL: ul.Clone()}
	w.expected = w.BCET.Hadamard(w.UL)
	return w, nil
}

// DeterministicWorkload builds a workload with UL == 1 everywhere, i.e. the
// classical deterministic scheduling model where real durations equal the
// supplied execution-time matrix exactly.
func DeterministicWorkload(g *dag.Graph, sys *System, exec Matrix) (*Workload, error) {
	ul := NewMatrix(exec.Rows(), exec.Cols())
	ul.Fill(1)
	return NewWorkload(g, sys, exec, ul)
}

// N returns the number of tasks.
func (w *Workload) N() int { return w.G.N() }

// M returns the number of processors.
func (w *Workload) M() int { return w.Sys.M() }

// Expected returns the expected execution time matrix W = UL ∘ BCET, the
// durations a deterministic scheduler is fed. The returned matrix is shared;
// callers must not modify it.
func (w *Workload) Expected() Matrix { return w.expected }

// ExpectedAt returns the expected duration of task i on processor p.
func (w *Workload) ExpectedAt(i, p int) float64 { return w.expected.At(i, p) }

// MeanExpected returns task i's expected duration averaged over processors,
// the quantity HEFT uses for upward ranks.
func (w *Workload) MeanExpected(i int) float64 { return w.expected.RowMean(i) }

// uniformSource is the sampling capability SampleDuration needs; *rng.Source
// satisfies it.
type uniformSource interface {
	Uniform(a, b float64) float64
}

// SampleDuration draws one realization of task i's duration on processor p:
// U(b, (2*UL - 1)*b). With UL == 1 the distribution degenerates to exactly b.
func (w *Workload) SampleDuration(i, p int, r uniformSource) float64 {
	b := w.BCET.At(i, p)
	hi := (2*w.UL.At(i, p) - 1) * b
	if hi <= b {
		return b
	}
	return r.Uniform(b, hi)
}

// CCR returns the workload's realized communication-to-computation ratio:
// mean communication cost per edge (at the system's mean rate) divided by
// mean expected computation cost per task. Zero-edge graphs report 0.
func (w *Workload) CCR() float64 {
	edges := w.G.Edges()
	if len(edges) == 0 {
		return 0
	}
	comm := 0.0
	for _, e := range edges {
		comm += w.Sys.MeanCommCost(e.Data)
	}
	comm /= float64(len(edges))
	comp := 0.0
	for i := 0; i < w.N(); i++ {
		comp += w.MeanExpected(i)
	}
	comp /= float64(w.N())
	return comm / comp
}
