package platform

import (
	"math"
	"testing"
	"testing/quick"

	"robsched/internal/dag"
	"robsched/internal/rng"
)

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0, 3) did not panic")
		}
	}()
	NewMatrix(0, 3)
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 || m.IsZero() {
		t.Fatalf("shape wrong: %dx%d zero=%v", m.Rows(), m.Cols(), m.IsZero())
	}
	var zero Matrix
	if !zero.IsZero() {
		t.Fatal("zero value not reported as zero")
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %g", m.At(1, 2))
	}
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(0, 2, 3)
	if got := m.RowMean(0); got != 2 {
		t.Errorf("RowMean(0) = %g, want 2", got)
	}
	if got := m.Mean(); math.Abs(got-13.0/6) > 1e-12 {
		t.Errorf("Mean = %g, want %g", got, 13.0/6)
	}
	if got := m.Min(); got != 0 {
		t.Errorf("Min = %g, want 0", got)
	}
}

func TestMatrixRowAliases(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row does not alias storage")
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 5)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 5 {
		t.Fatal("Clone shares storage")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %g", m.At(1, 0))
	}
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := MatrixFromRows(nil); err == nil {
		t.Fatal("empty rows accepted")
	}
}

func TestHadamard(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	h := a.Hadamard(b)
	want := [][]float64{{5, 12}, {21, 32}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if h.At(i, j) != want[i][j] {
				t.Errorf("Hadamard(%d,%d) = %g, want %g", i, j, h.At(i, j), want[i][j])
			}
		}
	}
	// Inputs unchanged.
	if a.At(0, 0) != 1 || b.At(0, 0) != 5 {
		t.Error("Hadamard mutated an input")
	}
}

func TestHadamardSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	NewMatrix(2, 2).Hadamard(NewMatrix(2, 3))
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Matrix{}); err == nil {
		t.Error("zero matrix accepted")
	}
	if _, err := NewSystem(NewMatrix(2, 3)); err == nil {
		t.Error("non-square matrix accepted")
	}
	bad := NewMatrix(2, 2)
	bad.Set(0, 1, 0) // zero off-diagonal rate
	bad.Set(1, 0, 1)
	if _, err := NewSystem(bad); err == nil {
		t.Error("zero off-diagonal rate accepted")
	}
}

func TestUniformSystem(t *testing.T) {
	s := UniformSystem(4, 2)
	if s.M() != 4 {
		t.Fatalf("M = %d", s.M())
	}
	if got := s.CommCost(0, 1, 10); got != 5 {
		t.Errorf("CommCost(0,1,10) = %g, want 5", got)
	}
	if got := s.CommCost(2, 2, 10); got != 0 {
		t.Errorf("same-processor CommCost = %g, want 0", got)
	}
	if got := s.MeanRate(); got != 2 {
		t.Errorf("MeanRate = %g, want 2", got)
	}
	if got := s.MeanCommCost(10); got != 5 {
		t.Errorf("MeanCommCost(10) = %g, want 5", got)
	}
}

func TestSingleProcessorSystem(t *testing.T) {
	s := UniformSystem(1, 1)
	if got := s.MeanCommCost(100); got != 0 {
		t.Errorf("single-proc MeanCommCost = %g, want 0", got)
	}
	if got := s.MeanRate(); got != 1 {
		t.Errorf("single-proc MeanRate = %g, want 1", got)
	}
}

func TestHeterogeneousRates(t *testing.T) {
	rates, _ := MatrixFromRows([][]float64{
		{0, 1, 2},
		{1, 0, 4},
		{2, 4, 0},
	})
	s, err := NewSystem(rates)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CommCost(1, 2, 8); got != 2 {
		t.Errorf("CommCost(1,2,8) = %g, want 2", got)
	}
	if got := s.Rate(0, 2); got != 2 {
		t.Errorf("Rate(0,2) = %g", got)
	}
	wantMean := (1.0 + 2 + 1 + 4 + 2 + 4) / 6
	if got := s.MeanRate(); math.Abs(got-wantMean) > 1e-12 {
		t.Errorf("MeanRate = %g, want %g", got, wantMean)
	}
}

func testGraph(t *testing.T) *dag.Graph {
	t.Helper()
	b := dag.NewBuilder(3)
	b.MustAddEdge(0, 1, 6)
	b.MustAddEdge(0, 2, 4)
	return b.MustBuild()
}

func testWorkload(t *testing.T) *Workload {
	t.Helper()
	g := testGraph(t)
	sys := UniformSystem(2, 1)
	bcet, _ := MatrixFromRows([][]float64{{2, 4}, {3, 3}, {5, 1}})
	ul, _ := MatrixFromRows([][]float64{{2, 2}, {1, 3}, {1.5, 2}})
	w, err := NewWorkload(g, sys, bcet, ul)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorkloadValidation(t *testing.T) {
	g := testGraph(t)
	sys := UniformSystem(2, 1)
	good := NewMatrix(3, 2)
	good.Fill(1)
	if _, err := NewWorkload(nil, sys, good, good); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewWorkload(g, nil, good, good); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := NewWorkload(g, sys, NewMatrix(3, 3), good); err == nil {
		t.Error("wrong BCET shape accepted")
	}
	if _, err := NewWorkload(g, sys, good, NewMatrix(2, 2)); err == nil {
		t.Error("wrong UL shape accepted")
	}
	badB := good.Clone()
	badB.Set(0, 0, 0)
	if _, err := NewWorkload(g, sys, badB, good); err == nil {
		t.Error("zero BCET accepted")
	}
	badU := good.Clone()
	badU.Set(1, 1, 0.5)
	if _, err := NewWorkload(g, sys, good, badU); err == nil {
		t.Error("UL < 1 accepted")
	}
}

func TestWorkloadExpected(t *testing.T) {
	w := testWorkload(t)
	// expected = BCET ∘ UL
	want := [][]float64{{4, 8}, {3, 9}, {7.5, 2}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if got := w.ExpectedAt(i, j); math.Abs(got-want[i][j]) > 1e-12 {
				t.Errorf("ExpectedAt(%d,%d) = %g, want %g", i, j, got, want[i][j])
			}
		}
	}
	if got := w.MeanExpected(0); got != 6 {
		t.Errorf("MeanExpected(0) = %g, want 6", got)
	}
	if w.N() != 3 || w.M() != 2 {
		t.Errorf("N,M = %d,%d", w.N(), w.M())
	}
}

func TestWorkloadCopiesMatrices(t *testing.T) {
	g := testGraph(t)
	sys := UniformSystem(2, 1)
	bcet := NewMatrix(3, 2)
	bcet.Fill(2)
	ul := NewMatrix(3, 2)
	ul.Fill(1)
	w, err := NewWorkload(g, sys, bcet, ul)
	if err != nil {
		t.Fatal(err)
	}
	bcet.Set(0, 0, 99)
	if w.BCET.At(0, 0) == 99 {
		t.Fatal("workload aliases caller's BCET matrix")
	}
}

func TestSampleDurationBoundsAndMean(t *testing.T) {
	w := testWorkload(t)
	r := rng.New(5)
	const n = 100000
	// Task 0 on proc 0: b=2, UL=2 → U(2, 6), mean 4 = expected.
	var sum float64
	for k := 0; k < n; k++ {
		d := w.SampleDuration(0, 0, r)
		if d < 2 || d >= 6 {
			t.Fatalf("sample %g outside [2,6)", d)
		}
		sum += d
	}
	if mean := sum / n; math.Abs(mean-w.ExpectedAt(0, 0)) > 0.05 {
		t.Errorf("sample mean %g, want ~%g", mean, w.ExpectedAt(0, 0))
	}
}

func TestSampleDurationDegenerate(t *testing.T) {
	w := testWorkload(t)
	r := rng.New(5)
	// Task 1 on proc 0 has UL=1 → always exactly b=3.
	for k := 0; k < 100; k++ {
		if d := w.SampleDuration(1, 0, r); d != 3 {
			t.Fatalf("UL=1 sample = %g, want exactly 3", d)
		}
	}
}

func TestDeterministicWorkload(t *testing.T) {
	g := testGraph(t)
	sys := UniformSystem(2, 1)
	exec, _ := MatrixFromRows([][]float64{{2, 4}, {3, 3}, {5, 1}})
	w, err := DeterministicWorkload(g, sys, exec)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 3; i++ {
		for p := 0; p < 2; p++ {
			if got := w.SampleDuration(i, p, r); got != exec.At(i, p) {
				t.Fatalf("deterministic sample (%d,%d) = %g, want %g", i, p, got, exec.At(i, p))
			}
			if got := w.ExpectedAt(i, p); got != exec.At(i, p) {
				t.Fatalf("deterministic expected (%d,%d) = %g, want %g", i, p, got, exec.At(i, p))
			}
		}
	}
}

func TestCCR(t *testing.T) {
	w := testWorkload(t)
	// mean comm per edge = (6+4)/2 = 5 at rate 1; mean comp = (6+6+4.75)/3.
	meanComp := (6.0 + 6.0 + 4.75) / 3
	want := 5.0 / meanComp
	if got := w.CCR(); math.Abs(got-want) > 1e-12 {
		t.Errorf("CCR = %g, want %g", got, want)
	}
}

func TestCCRNoEdges(t *testing.T) {
	g := dag.NewBuilder(2).MustBuild()
	sys := UniformSystem(2, 1)
	exec := NewMatrix(2, 2)
	exec.Fill(3)
	w, err := DeterministicWorkload(g, sys, exec)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.CCR(); got != 0 {
		t.Errorf("CCR with no edges = %g, want 0", got)
	}
}

func TestQuickSampleWithinBounds(t *testing.T) {
	w := testWorkload(t)
	r := rng.New(77)
	check := func(iRaw, pRaw uint8) bool {
		i := int(iRaw) % w.N()
		p := int(pRaw) % w.M()
		d := w.SampleDuration(i, p, r)
		b := w.BCET.At(i, p)
		hi := (2*w.UL.At(i, p) - 1) * b
		return d >= b && (d <= hi)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
