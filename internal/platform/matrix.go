// Package platform models the heterogeneous multiprocessor computing system
// of Section 3.1: a set of m fully connected processors with a data transfer
// rate matrix TR, a best-case execution time (BCET) matrix B, and an
// uncertainty-level matrix UL. The real duration of task i on processor j is
// the uniform random variable U(b_ij, (2*UL_ij - 1)*b_ij), whose expectation
// UL_ij*b_ij is what deterministic schedulers are fed.
package platform

import "fmt"

// Matrix is a dense row-major matrix of float64. The zero value is an empty
// matrix; use NewMatrix.
type Matrix struct {
	rows, cols int
	v          []float64
}

// NewMatrix returns a rows×cols zero matrix. It panics on non-positive
// dimensions.
func NewMatrix(rows, cols int) Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("platform: NewMatrix(%d, %d)", rows, cols))
	}
	return Matrix{rows: rows, cols: cols, v: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices, which must be non-empty
// and of equal length.
func MatrixFromRows(rows [][]float64) (Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return Matrix{}, fmt.Errorf("platform: MatrixFromRows needs at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return Matrix{}, fmt.Errorf("platform: row %d has %d columns, want %d", i, len(r), m.cols)
		}
		copy(m.v[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m Matrix) Cols() int { return m.cols }

// IsZero reports whether the matrix is the unusable zero value.
func (m Matrix) IsZero() bool { return m.v == nil }

// At returns element (i, j).
func (m Matrix) At(i, j int) float64 { return m.v[i*m.cols+j] }

// Set assigns element (i, j).
func (m Matrix) Set(i, j int, x float64) { m.v[i*m.cols+j] = x }

// Row returns row i as a slice aliasing the matrix storage.
func (m Matrix) Row(i int) []float64 { return m.v[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	out := Matrix{rows: m.rows, cols: m.cols, v: make([]float64, len(m.v))}
	copy(out.v, m.v)
	return out
}

// Fill sets every element to x.
func (m Matrix) Fill(x float64) {
	for i := range m.v {
		m.v[i] = x
	}
}

// RowMean returns the arithmetic mean of row i.
func (m Matrix) RowMean(i int) float64 {
	sum := 0.0
	for _, x := range m.Row(i) {
		sum += x
	}
	return sum / float64(m.cols)
}

// Mean returns the mean over all elements.
func (m Matrix) Mean() float64 {
	sum := 0.0
	for _, x := range m.v {
		sum += x
	}
	return sum / float64(len(m.v))
}

// Min returns the smallest element.
func (m Matrix) Min() float64 {
	min := m.v[0]
	for _, x := range m.v[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Hadamard returns the element-wise product of two equally sized matrices.
func (m Matrix) Hadamard(o Matrix) Matrix {
	if m.rows != o.rows || m.cols != o.cols {
		panic(fmt.Sprintf("platform: Hadamard size mismatch %dx%d vs %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := m.Clone()
	for i := range out.v {
		out.v[i] *= o.v[i]
	}
	return out
}
