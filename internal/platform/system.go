package platform

import "fmt"

// System is a set of m fully connected heterogeneous processors with a
// data-transfer-rate matrix. Intra-processor communication is free and
// communications do not contend (Section 3.1 assumptions).
type System struct {
	m     int
	rates Matrix // rates.At(p, q) = transfer rate between p and q, p != q
}

// NewSystem validates the rate matrix (square, m×m, positive off-diagonal
// entries) and returns the system.
func NewSystem(rates Matrix) (*System, error) {
	if rates.IsZero() {
		return nil, fmt.Errorf("platform: rate matrix is unset")
	}
	if rates.Rows() != rates.Cols() {
		return nil, fmt.Errorf("platform: rate matrix is %dx%d, want square", rates.Rows(), rates.Cols())
	}
	m := rates.Rows()
	for p := 0; p < m; p++ {
		for q := 0; q < m; q++ {
			if p != q && rates.At(p, q) <= 0 {
				return nil, fmt.Errorf("platform: non-positive transfer rate %g between processors %d and %d", rates.At(p, q), p, q)
			}
		}
	}
	return &System{m: m, rates: rates.Clone()}, nil
}

// UniformSystem returns a system of m processors with the same transfer rate
// on every link. The paper's experiments do not vary transfer rates, so this
// is the default platform (rate 1.0 makes communication cost equal the data
// size).
func UniformSystem(m int, rate float64) *System {
	if m <= 0 || rate <= 0 {
		panic(fmt.Sprintf("platform: UniformSystem(%d, %g)", m, rate))
	}
	rates := NewMatrix(m, m)
	rates.Fill(rate)
	s, err := NewSystem(rates)
	if err != nil {
		panic(err)
	}
	return s
}

// M returns the number of processors.
func (s *System) M() int { return s.m }

// Rate returns the transfer rate between processors p and q (p != q).
func (s *System) Rate(p, q int) float64 { return s.rates.At(p, q) }

// CommCost returns the time to move data units from processor p to q:
// zero when p == q, data/rate otherwise.
func (s *System) CommCost(p, q int, data float64) float64 {
	if p == q {
		return 0
	}
	return data / s.rates.At(p, q)
}

// MeanRate returns the mean off-diagonal transfer rate, used by list
// schedulers that rank tasks with average communication costs.
func (s *System) MeanRate() float64 {
	if s.m == 1 {
		// A single processor never communicates; any positive rate works.
		return 1
	}
	sum := 0.0
	for p := 0; p < s.m; p++ {
		for q := 0; q < s.m; q++ {
			if p != q {
				sum += s.rates.At(p, q)
			}
		}
	}
	return sum / float64(s.m*(s.m-1))
}

// MeanCommCost returns the average communication cost for data units over
// all distinct processor pairs, and zero on a single-processor system.
func (s *System) MeanCommCost(data float64) float64 {
	if s.m == 1 {
		return 0
	}
	sum := 0.0
	for p := 0; p < s.m; p++ {
		for q := 0; q < s.m; q++ {
			if p != q {
				sum += data / s.rates.At(p, q)
			}
		}
	}
	return sum / float64(s.m*(s.m-1))
}
