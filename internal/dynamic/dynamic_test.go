package dynamic

import (
	"testing"

	"robsched/internal/dag"
	"robsched/internal/gen"
	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/schedule"
	"robsched/internal/sim"
)

func testWorkload(t testing.TB, seed uint64, n, m int, ul float64) *platform.Workload {
	t.Helper()
	p := gen.PaperParams()
	p.N, p.M, p.MeanUL = n, m, ul
	w, err := gen.Random(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// checkValidExecution verifies the physical consistency of a simulated
// run — no overlap on any processor, every task starts only after each
// predecessor's actual finish plus the communication delay — via the
// shared schedule.ValidateExecution.
func checkValidExecution(t *testing.T, w *platform.Workload, res Result) {
	t.Helper()
	if err := schedule.ValidateExecution(w, res.Proc, res.Start, res.Finish); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateValidity(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		w := testWorkload(t, uint64(trial), 30, 4, 3)
		durs := RealizeMatrix(w, r)
		res, err := Simulate(w, durs, w.Expected(), heft.UpwardRanks(w))
		if err != nil {
			t.Fatal(err)
		}
		checkValidExecution(t, w, res)
		if res.Makespan <= 0 {
			t.Fatal("non-positive makespan")
		}
	}
}

func TestSimulateInputValidation(t *testing.T) {
	w := testWorkload(t, 3, 10, 2, 2)
	good := w.Expected()
	bad := platform.NewMatrix(3, 3)
	bad.Fill(1)
	if _, err := Simulate(w, bad, good, heft.UpwardRanks(w)); err == nil {
		t.Error("bad duration matrix accepted")
	}
	if _, err := Simulate(w, good, bad, heft.UpwardRanks(w)); err == nil {
		t.Error("bad estimate matrix accepted")
	}
	if _, err := Simulate(w, good, good, []float64{1}); err == nil {
		t.Error("short ranks accepted")
	}
}

func TestDeterministicDurationsMatchStaticSemantics(t *testing.T) {
	// With durations equal to expectations, the dispatcher's run is a
	// valid static schedule; building that assignment as a Schedule and
	// evaluating it with expected durations must give a makespan no larger
	// than the dispatcher observed (ASAP can only compress).
	w := testWorkload(t, 5, 25, 3, 2)
	expected := w.Expected()
	res, err := Simulate(w, expected, expected, heft.UpwardRanks(w))
	if err != nil {
		t.Fatal(err)
	}
	checkValidExecution(t, w, res)
}

func TestClairvoyantNoWorseOnAverage(t *testing.T) {
	// Perfect knowledge of durations should beat expectation-based
	// placement on average over realizations.
	w := testWorkload(t, 7, 40, 4, 4)
	r := rng.New(11)
	ranks := heft.UpwardRanks(w)
	expected := w.Expected()
	var sumBlind, sumClair float64
	const trials = 40
	for i := 0; i < trials; i++ {
		durs := RealizeMatrix(w, r)
		blind, err := Simulate(w, durs, expected, ranks)
		if err != nil {
			t.Fatal(err)
		}
		clair, err := Clairvoyant(w, durs)
		if err != nil {
			t.Fatal(err)
		}
		sumBlind += blind.Makespan
		sumClair += clair.Makespan
	}
	if sumClair > sumBlind*1.02 {
		t.Fatalf("clairvoyant dispatcher worse on average: %g vs %g", sumClair/trials, sumBlind/trials)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	w := testWorkload(t, 9, 30, 4, 3)
	m, err := Evaluate(w, sim.Options{Realizations: 200}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if m.Realizations != 200 {
		t.Errorf("Realizations = %d", m.Realizations)
	}
	if m.M0 <= 0 || m.MeanMakespan <= 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
	if m.MinMakespan > m.P50 || m.P50 > m.P95 {
		t.Errorf("quantiles out of order: %+v", m)
	}
	if _, err := Evaluate(w, sim.Options{Realizations: 0}, rng.New(1)); err == nil {
		t.Error("zero realizations accepted")
	}
}

// TestDynamicAdaptsBetterThanStaticHEFT is the motivating comparison from
// the paper's introduction: under heavy uncertainty the online dispatcher,
// which reacts to observed finish times, should beat the *static* HEFT
// schedule's realized mean makespan on average across instances.
func TestDynamicAdaptsBetterThanStaticHEFT(t *testing.T) {
	wins := 0
	const instances = 6
	for k := 0; k < instances; k++ {
		w := testWorkload(t, uint64(100+k), 50, 4, 6)
		dyn, err := Evaluate(w, sim.Options{Realizations: 200}, rng.New(uint64(17+k)))
		if err != nil {
			t.Fatal(err)
		}
		hs, err := heft.HEFT(w, heft.Options{})
		if err != nil {
			t.Fatal(err)
		}
		stat, err := sim.Evaluate(hs, sim.Options{Realizations: 200}, rng.New(uint64(17+k)))
		if err != nil {
			t.Fatal(err)
		}
		if dyn.MeanMakespan < stat.MeanMakespan {
			wins++
		}
	}
	if wins < instances/2 {
		t.Fatalf("dynamic dispatcher beat static HEFT on only %d/%d instances", wins, instances)
	}
}

func TestSimulateSingleTask(t *testing.T) {
	g := dag.NewBuilder(1).MustBuild()
	exec := platform.NewMatrix(1, 2)
	exec.Set(0, 0, 5)
	exec.Set(0, 1, 3)
	w, err := platform.DeterministicWorkload(g, platform.UniformSystem(2, 1), exec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(w, w.Expected(), w.Expected(), heft.UpwardRanks(w))
	if err != nil {
		t.Fatal(err)
	}
	// Must pick the faster processor.
	if res.Proc[0] != 1 || res.Makespan != 3 {
		t.Fatalf("single task dispatched to %d with makespan %g", res.Proc[0], res.Makespan)
	}
}

func TestRealizeMatrixBounds(t *testing.T) {
	w := testWorkload(t, 21, 15, 3, 3)
	r := rng.New(23)
	durs := RealizeMatrix(w, r)
	for i := 0; i < w.N(); i++ {
		for p := 0; p < w.M(); p++ {
			b := w.BCET.At(i, p)
			hi := (2*w.UL.At(i, p) - 1) * b
			if durs.At(i, p) < b || durs.At(i, p) > hi {
				t.Fatalf("realized duration (%d,%d) = %g outside [%g,%g]", i, p, durs.At(i, p), b, hi)
			}
		}
	}
}

func BenchmarkSimulate100x8(b *testing.B) {
	p := gen.PaperParams()
	w, err := gen.Random(p, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	durs := RealizeMatrix(w, r)
	ranks := heft.UpwardRanks(w)
	expected := w.Expected()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(w, durs, expected, ranks); err != nil {
			b.Fatal(err)
		}
	}
}
