// Package dynamic implements the online scheduling baseline the paper's
// introduction contrasts static robust scheduling against: "dynamic
// scheduling algorithm assigns each ready task according to the current
// status of the resource environment aiming to avoid the inaccuracy of
// execution time estimation."
//
// The simulator plays a rank-ordered earliest-finish-time dispatch rule
// against realized task durations: a task becomes ready when all its
// predecessors have completed; the dispatcher repeatedly takes the ready
// task with the highest (static) upward rank and places it on the
// processor with the smallest *estimated* finish time, computed from
// expected durations and the actually observed predecessor finish times.
// Only then is the task's real duration revealed. Decisions therefore use
// exactly the information an online scheduler would have: completed
// predecessors' actual finish times, processor availability, and expected
// durations for the future.
package dynamic

import (
	"fmt"
	"math"

	"robsched/internal/heft"
	"robsched/internal/platform"
	"robsched/internal/rng"
	"robsched/internal/sim"
)

// Result is one simulated online execution.
type Result struct {
	Makespan float64
	// Proc, Start and Finish record the dispatch decisions and the actual
	// (realized) execution times.
	Proc   []int
	Start  []float64
	Finish []float64
}

// Simulate plays the dispatch rule against one realized duration matrix
// (durs.At(i, p) = the duration task i would actually take on processor p).
// The ranks give the dispatch priority; heft.UpwardRanks(w) is the usual
// choice. estimate selects durations used for placement decisions — the
// expected matrix for a realistic online scheduler, or durs itself for a
// clairvoyant lower-bound variant.
func Simulate(w *platform.Workload, durs, estimate platform.Matrix, ranks []float64) (Result, error) {
	n, m := w.N(), w.M()
	if durs.Rows() != n || durs.Cols() != m {
		return Result{}, fmt.Errorf("dynamic: duration matrix is %dx%d, want %dx%d", durs.Rows(), durs.Cols(), n, m)
	}
	if estimate.Rows() != n || estimate.Cols() != m {
		return Result{}, fmt.Errorf("dynamic: estimate matrix is %dx%d, want %dx%d", estimate.Rows(), estimate.Cols(), n, m)
	}
	if len(ranks) != n {
		return Result{}, fmt.Errorf("dynamic: %d ranks for %d tasks", len(ranks), n)
	}
	res := Result{
		Proc:   make([]int, n),
		Start:  make([]float64, n),
		Finish: make([]float64, n),
	}
	for i := range res.Proc {
		res.Proc[i] = -1
	}
	procFree := make([]float64, m)
	remainingPreds := make([]int, n)
	ready := make([]int, 0, n)
	for v := 0; v < n; v++ {
		remainingPreds[v] = w.G.InDegree(v)
		if remainingPreds[v] == 0 {
			ready = append(ready, v)
		}
	}
	scheduled := 0
	for scheduled < n {
		if len(ready) == 0 {
			return Result{}, fmt.Errorf("dynamic: dispatcher stalled with %d tasks left (graph inconsistency)", n-scheduled)
		}
		// Highest-rank ready task (ties: smallest id).
		best := 0
		for i := 1; i < len(ready); i++ {
			if ranks[ready[i]] > ranks[ready[best]] ||
				(ranks[ready[i]] == ranks[ready[best]] && ready[i] < ready[best]) {
				best = i
			}
		}
		v := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		// Place on the processor with the smallest estimated finish.
		bestProc, bestStart, bestEst := -1, 0.0, math.Inf(1)
		for p := 0; p < m; p++ {
			start := procFree[p]
			for _, a := range w.G.Predecessors(v) {
				u := a.To
				if t := res.Finish[u] + w.Sys.CommCost(res.Proc[u], p, a.Data); t > start {
					start = t
				}
			}
			if est := start + estimate.At(v, p); est < bestEst {
				bestProc, bestStart, bestEst = p, start, est
			}
		}
		res.Proc[v] = bestProc
		res.Start[v] = bestStart
		res.Finish[v] = bestStart + durs.At(v, bestProc) // reality revealed
		procFree[bestProc] = res.Finish[v]
		if res.Finish[v] > res.Makespan {
			res.Makespan = res.Finish[v]
		}
		scheduled++
		for _, a := range w.G.Successors(v) {
			remainingPreds[a.To]--
			if remainingPreds[a.To] == 0 {
				ready = append(ready, a.To)
			}
		}
	}
	return res, nil
}

// RealizeMatrix samples a full n×m actual-duration matrix for one
// environment realization.
func RealizeMatrix(w *platform.Workload, r *rng.Source) platform.Matrix {
	n, m := w.N(), w.M()
	out := platform.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		for p := 0; p < m; p++ {
			out.Set(i, p, w.SampleDuration(i, p, r))
		}
	}
	return out
}

// Evaluate Monte-Carlo evaluates the online dispatcher: M0 is its makespan
// when every duration equals its expectation, and each realization samples
// a fresh duration matrix. The returned metrics are directly comparable to
// sim.Evaluate on static schedules.
func Evaluate(w *platform.Workload, opt sim.Options, root *rng.Source) (sim.Metrics, error) {
	if opt.Realizations < 1 {
		return sim.Metrics{}, fmt.Errorf("dynamic: Realizations=%d must be >= 1", opt.Realizations)
	}
	ranks := heft.UpwardRanks(w)
	expected := w.Expected()
	base, err := Simulate(w, expected, expected, ranks)
	if err != nil {
		return sim.Metrics{}, err
	}
	makespans := make([]float64, opt.Realizations)
	for i := range makespans {
		r := rng.New(root.Uint64())
		durs := RealizeMatrix(w, r)
		res, err := Simulate(w, durs, expected, ranks)
		if err != nil {
			return sim.Metrics{}, err
		}
		makespans[i] = res.Makespan
	}
	return sim.MetricsFromSamples(base.Makespan, makespans, opt.Deadline), nil
}

// Clairvoyant runs the dispatcher with perfect knowledge of the realized
// durations (estimate == reality), a lower-bound reference for how much of
// the dynamic scheduler's loss comes from estimation error rather than
// from greedy dispatch.
func Clairvoyant(w *platform.Workload, durs platform.Matrix) (Result, error) {
	return Simulate(w, durs, durs, heft.UpwardRanks(w))
}
