package pareto

import (
	"math"
	"testing"
	"testing/quick"

	"robsched/internal/rng"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{2, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict gain
		{[]float64{1, 1}, []float64{1, 2}, true},
		{[]float64{2, 2}, []float64{1, 1}, false},
		{[]float64{0}, []float64{1}, true},
	}
	for i, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("case %d: Dominates(%v,%v) = %v", i, c.a, c.b, got)
		}
	}
}

func TestDominatesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2})
}

func TestFilter(t *testing.T) {
	objs := [][]float64{
		{1, 5}, // front
		{2, 4}, // front
		{3, 3}, // front
		{3, 5}, // dominated by {1,5}? no: 1<=3, 5<=5 strict in first → dominated
		{2, 6}, // dominated by {1,5}
		{5, 1}, // front
	}
	got := Filter(objs)
	want := map[int]bool{0: true, 1: true, 2: true, 5: true}
	if len(got) != len(want) {
		t.Fatalf("Filter = %v", got)
	}
	for _, i := range got {
		if !want[i] {
			t.Fatalf("Filter = %v", got)
		}
	}
}

func TestNonDominatedSort(t *testing.T) {
	objs := [][]float64{
		{1, 4}, {4, 1}, // front 0
		{2, 5}, {5, 2}, // front 1
		{3, 6}, {6, 3}, // front 2
	}
	fronts := NonDominatedSort(objs)
	if len(fronts) != 3 {
		t.Fatalf("got %d fronts: %v", len(fronts), fronts)
	}
	wantSizes := []int{2, 2, 2}
	for i, f := range fronts {
		if len(f) != wantSizes[i] {
			t.Fatalf("front %d = %v", i, f)
		}
	}
	if !(fronts[0][0] == 0 && fronts[0][1] == 1) {
		t.Fatalf("front 0 = %v", fronts[0])
	}
}

func TestNonDominatedSortCoversAll(t *testing.T) {
	r := rng.New(1)
	check := func(nRaw uint8) bool {
		n := int(nRaw%30) + 1
		objs := make([][]float64, n)
		for i := range objs {
			objs[i] = []float64{r.Uniform(0, 10), r.Uniform(0, 10)}
		}
		fronts := NonDominatedSort(objs)
		seen := make([]bool, n)
		total := 0
		for fi, f := range fronts {
			for _, i := range f {
				if seen[i] {
					return false
				}
				seen[i] = true
				total++
				// No point in a front may be dominated by another point of
				// the same front.
				for _, j := range f {
					if i != j && Dominates(objs[j], objs[i]) {
						return false
					}
				}
				// Every point in front fi > 0 must be dominated by some
				// point in front fi-1.
				if fi > 0 {
					dominated := false
					for _, j := range fronts[fi-1] {
						if Dominates(objs[j], objs[i]) {
							dominated = true
							break
						}
					}
					if !dominated {
						return false
					}
				}
			}
		}
		return total == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterMatchesFirstFront(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		objs := make([][]float64, n)
		for i := range objs {
			objs[i] = []float64{r.Uniform(0, 5), r.Uniform(0, 5), r.Uniform(0, 5)}
		}
		f0 := NonDominatedSort(objs)[0]
		filt := Filter(objs)
		if len(f0) != len(filt) {
			t.Fatalf("front-0 size %d != filter size %d", len(f0), len(filt))
		}
		set := map[int]bool{}
		for _, i := range f0 {
			set[i] = true
		}
		for _, i := range filt {
			if !set[i] {
				t.Fatalf("filter index %d not in front 0", i)
			}
		}
	}
}

func TestCrowdingDistance(t *testing.T) {
	objs := [][]float64{{0, 4}, {1, 2}, {2, 1}, {4, 0}}
	front := []int{0, 1, 2, 3}
	d := CrowdingDistance(objs, front)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[3], 1) {
		t.Fatalf("boundaries not infinite: %v", d)
	}
	// Interior: point 1 neighbourhood (x: 2-0=2, y: 4-1=3) normalized by
	// ranges (4, 4): 0.5 + 0.75 = 1.25.
	if math.Abs(d[1]-1.25) > 1e-12 {
		t.Errorf("d[1] = %g, want 1.25", d[1])
	}
	// Point 2: (4-1)/4 + (2-0)/4 = 0.75+0.5 = 1.25.
	if math.Abs(d[2]-1.25) > 1e-12 {
		t.Errorf("d[2] = %g, want 1.25", d[2])
	}
}

func TestCrowdingDistanceSmallFronts(t *testing.T) {
	objs := [][]float64{{1, 1}, {2, 2}}
	if d := CrowdingDistance(objs, []int{0}); !math.IsInf(d[0], 1) {
		t.Error("singleton not infinite")
	}
	d := CrowdingDistance(objs, []int{0, 1})
	if !math.IsInf(d[0], 1) || !math.IsInf(d[1], 1) {
		t.Error("pair not infinite")
	}
	if got := CrowdingDistance(objs, nil); len(got) != 0 {
		t.Error("empty front")
	}
}

func TestCrowdingDistanceDegenerateDimension(t *testing.T) {
	// All points share one objective value: that dimension contributes
	// nothing and must not divide by zero.
	objs := [][]float64{{1, 5}, {2, 5}, {3, 5}}
	d := CrowdingDistance(objs, []int{0, 1, 2})
	if math.IsNaN(d[1]) {
		t.Fatal("NaN crowding distance")
	}
}

func TestHypervolume2D(t *testing.T) {
	// Single point (1,1) with ref (3,3): area (3-1)*(3-1) = 4.
	if hv := Hypervolume2D([][]float64{{1, 1}}, [2]float64{3, 3}); hv != 4 {
		t.Errorf("single point hv = %g, want 4", hv)
	}
	// Two staircase points.
	objs := [][]float64{{1, 2}, {2, 1}}
	// Sweep: (3-1)*(3-2)=2 then (3-2)*(2-1)=1 → 3.
	if hv := Hypervolume2D(objs, [2]float64{3, 3}); hv != 3 {
		t.Errorf("staircase hv = %g, want 3", hv)
	}
	// Dominated points add nothing.
	objs = append(objs, []float64{2.5, 2.5})
	if hv := Hypervolume2D(objs, [2]float64{3, 3}); hv != 3 {
		t.Errorf("dominated point changed hv to %g", hv)
	}
	// Points beyond the reference are ignored.
	if hv := Hypervolume2D([][]float64{{5, 5}}, [2]float64{3, 3}); hv != 0 {
		t.Errorf("out-of-box point hv = %g", hv)
	}
	if hv := Hypervolume2D(nil, [2]float64{3, 3}); hv != 0 {
		t.Errorf("empty hv = %g", hv)
	}
}

func TestHypervolumeMonotoneInPoints(t *testing.T) {
	// Adding a non-dominated point never decreases the hypervolume.
	r := rng.New(3)
	for trial := 0; trial < 100; trial++ {
		var objs [][]float64
		ref := [2]float64{10, 10}
		prev := 0.0
		for k := 0; k < 8; k++ {
			objs = append(objs, []float64{r.Uniform(0, 10), r.Uniform(0, 10)})
			hv := Hypervolume2D(objs, ref)
			if hv < prev-1e-12 {
				t.Fatalf("hypervolume decreased: %g -> %g", prev, hv)
			}
			prev = hv
		}
	}
}
