// Package pareto provides the multi-objective optimization machinery the
// bi-objective scheduling problem rests on (Deb, "Multi-Objective
// Optimization using Evolutionary Algorithms", the paper's reference for
// non-dominated solutions): Pareto dominance, fast non-dominated sorting,
// crowding distance, and the 2-D hypervolume indicator. All objectives are
// minimized; callers maximizing an objective negate it.
package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Dominates reports whether a Pareto-dominates b: a is no worse in every
// objective and strictly better in at least one. Vectors must have equal
// length.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("pareto: dominance between %d- and %d-dim vectors", len(a), len(b)))
	}
	strictly := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strictly = true
		}
	}
	return strictly
}

// Filter returns the indices of the non-dominated points, in input order.
func Filter(objs [][]float64) []int {
	var out []int
	for i := range objs {
		dominated := false
		for j := range objs {
			if i != j && Dominates(objs[j], objs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// NonDominatedSort partitions the points into fronts (Deb's fast
// non-dominated sort): front 0 is the Pareto front, front k+1 is the
// Pareto front after removing fronts 0..k. Indices within a front keep
// input order.
func NonDominatedSort(objs [][]float64) [][]int {
	n := len(objs)
	dominatedBy := make([]int, n) // how many points dominate i
	dominates := make([][]int, n) // which points i dominates
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Dominates(objs[i], objs[j]) {
				dominates[i] = append(dominates[i], j)
			} else if Dominates(objs[j], objs[i]) {
				dominatedBy[i]++
			}
		}
		if dominatedBy[i] == 0 {
			first = append(first, i)
		}
	}
	var fronts [][]int
	cur := first
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominates[i] {
				dominatedBy[j]--
				if dominatedBy[j] == 0 {
					next = append(next, j)
				}
			}
		}
		cur = next
	}
	return fronts
}

// CrowdingDistance returns NSGA-II's crowding distance for each member of
// the front (aligned with front's order): boundary points get +Inf, the
// rest the normalized perimeter of their objective-space neighbourhood.
func CrowdingDistance(objs [][]float64, front []int) []float64 {
	k := len(front)
	dist := make([]float64, k)
	if k == 0 {
		return dist
	}
	if k <= 2 {
		for i := range dist {
			dist[i] = math.Inf(1)
		}
		return dist
	}
	dims := len(objs[front[0]])
	order := make([]int, k) // positions into front
	for d := 0; d < dims; d++ {
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return objs[front[order[a]]][d] < objs[front[order[b]]][d]
		})
		lo := objs[front[order[0]]][d]
		hi := objs[front[order[k-1]]][d]
		dist[order[0]] = math.Inf(1)
		dist[order[k-1]] = math.Inf(1)
		if hi == lo {
			continue
		}
		for i := 1; i < k-1; i++ {
			gap := objs[front[order[i+1]]][d] - objs[front[order[i-1]]][d]
			dist[order[i]] += gap / (hi - lo)
		}
	}
	return dist
}

// Hypervolume2D returns the area dominated by the given 2-objective points
// (both minimized) and bounded by the reference point, which must be
// weakly dominated by every point; points beyond the reference contribute
// nothing. Larger is better.
func Hypervolume2D(objs [][]float64, ref [2]float64) float64 {
	// Keep only the non-dominated points inside the reference box.
	var pts [][2]float64
	for _, idx := range Filter(objs) {
		o := objs[idx]
		if len(o) != 2 {
			panic(fmt.Sprintf("pareto: Hypervolume2D on %d-dim point", len(o)))
		}
		if o[0] < ref[0] && o[1] < ref[1] {
			pts = append(pts, [2]float64{o[0], o[1]})
		}
	}
	if len(pts) == 0 {
		return 0
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a][0] < pts[b][0] })
	hv := 0.0
	prevY := ref[1]
	for _, p := range pts {
		if p[1] >= prevY {
			continue // dominated in the sweep (equal x, worse y)
		}
		hv += (ref[0] - p[0]) * (prevY - p[1])
		prevY = p[1]
	}
	return hv
}
