package schedule

// CriticalPath returns one longest path of the disjunctive graph under
// expected durations, as an ordered task sequence from an entry to an exit
// of G_s. Ties are broken deterministically (smallest task id). All tasks
// on the returned path have zero slack.
func (s *Schedule) CriticalPath() []int {
	// Walk forward from the task whose finish equals the makespan,
	// following predecessors whose finish+comm attains each start.
	end := -1
	for v := 0; v < s.w.N(); v++ {
		if s.finish[v] >= s.makespan-1e-9 && (end < 0 || v < end) {
			end = v
		}
	}
	if end < 0 {
		return nil
	}
	var rev []int
	v := end
	for {
		rev = append(rev, v)
		bestU := -1
		predOff, predTo := s.arcs.predOff, s.arcs.predTo
		for k := predOff[v]; k < predOff[v+1]; k++ {
			u := int(predTo[k])
			if s.finish[u]+s.predComm[k] >= s.start[v]-1e-9 && (bestU < 0 || u < bestU) {
				bestU = u
			}
		}
		if u := int(s.dpred[v]); u >= 0 {
			if s.finish[u] >= s.start[v]-1e-9 && (bestU < 0 || u < bestU) {
				bestU = u
			}
		}
		if bestU < 0 {
			break
		}
		v = bestU
	}
	// Reverse into entry→exit order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ProcessorUtilization returns each processor's busy fraction under
// expected durations: total assigned work divided by the makespan. An
// empty schedule (zero makespan) reports zeros.
func (s *Schedule) ProcessorUtilization() []float64 {
	m := s.w.M()
	out := make([]float64, m)
	if s.makespan <= 0 {
		return out
	}
	for v := 0; v < s.w.N(); v++ {
		out[s.proc[v]] += s.expDur[v]
	}
	for p := range out {
		out[p] /= s.makespan
	}
	return out
}

// TotalIdleTime returns the summed idle time across processors within the
// makespan window under expected durations: m·makespan − total work.
func (s *Schedule) TotalIdleTime() float64 {
	busy := 0.0
	for v := 0; v < s.w.N(); v++ {
		busy += s.expDur[v]
	}
	return float64(s.w.M())*s.makespan - busy
}

// LoadImbalance returns (max − min) processor busy time divided by the
// makespan — 0 for perfectly balanced schedules.
func (s *Schedule) LoadImbalance() float64 {
	if s.makespan <= 0 {
		return 0
	}
	m := s.w.M()
	busy := make([]float64, m)
	for v := 0; v < s.w.N(); v++ {
		busy[s.proc[v]] += s.expDur[v]
	}
	min, max := busy[0], busy[0]
	for _, b := range busy[1:] {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	return (max - min) / s.makespan
}
