package schedule

// Shared invariant checkers, promoted from what used to be per-package
// test helpers so that every layer (HEFT, the GA, the repair executors,
// the dynamic dispatcher) validates schedules and execution traces against
// one definition of feasibility.

import (
	"fmt"
	"sort"

	"robsched/internal/platform"
)

// validateEps absorbs the floating-point slop of longest-path arithmetic;
// it matches the tolerance the analysis itself uses for slack clamping.
const validateEps = 1e-9

// Validate checks the full feasibility of a schedule together with its
// expected-duration analysis:
//
//   - every task is assigned to exactly one in-range processor and appears
//     exactly once in that processor's execution order;
//   - precedence with communication: no task starts before each
//     predecessor's finish plus the (Eqn. 1) communication delay;
//   - no two tasks overlap on any processor, and each processor runs its
//     tasks in its stated order;
//   - start/finish/makespan are consistent with the expected durations
//     (finish = start + duration, makespan = max finish).
//
// Construction already enforces most of this, so Validate is cheap
// insurance against internal-state corruption: tests call it on every
// schedule a solver emits, making "the GA produced an infeasible schedule"
// a structured error instead of a silently wrong makespan.
func Validate(s *Schedule) error {
	if s == nil {
		return fmt.Errorf("schedule: nil schedule")
	}
	w := s.w
	n, m := w.N(), w.M()
	if len(s.proc) != n || len(s.start) != n || len(s.finish) != n {
		return fmt.Errorf("schedule: analysis vectors have wrong length")
	}

	// Placement: partition of tasks over processor orders, consistent with
	// the proc map.
	seen := make([]bool, n)
	for p := 0; p+1 < len(s.porderOff); p++ {
		for _, v32 := range s.porder[s.porderOff[p]:s.porderOff[p+1]] {
			v := int(v32)
			if v < 0 || v >= n {
				return fmt.Errorf("schedule: processor %d lists task %d out of range", p, v)
			}
			if seen[v] {
				return fmt.Errorf("schedule: task %d appears on more than one processor slot", v)
			}
			seen[v] = true
			if int(s.proc[v]) != p {
				return fmt.Errorf("schedule: task %d listed on processor %d but assigned to %d", v, p, s.proc[v])
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("schedule: task %d is not placed on any processor", v)
		}
	}
	for v := 0; v < n; v++ {
		if p := int(s.proc[v]); p < 0 || p >= m {
			return fmt.Errorf("schedule: task %d assigned to processor %d out of range [0,%d)", v, p, m)
		}
	}

	// Expected-duration consistency.
	maxFinish := 0.0
	for v := 0; v < n; v++ {
		if s.finish[v] < s.start[v]-validateEps {
			return fmt.Errorf("schedule: task %d finishes at %g before its start %g", v, s.finish[v], s.start[v])
		}
		if d := s.finish[v] - s.start[v]; absDiff(d, s.expDur[v]) > validateEps {
			return fmt.Errorf("schedule: task %d runs for %g, expected duration is %g", v, d, s.expDur[v])
		}
		if s.finish[v] > maxFinish {
			maxFinish = s.finish[v]
		}
	}
	if absDiff(maxFinish, s.makespan) > validateEps {
		return fmt.Errorf("schedule: makespan %g != max finish %g", s.makespan, maxFinish)
	}

	// Same-processor order: each processor executes its list back-to-back
	// without overlap, in the stated order.
	for p := 0; p+1 < len(s.porderOff); p++ {
		list := s.porder[s.porderOff[p]:s.porderOff[p+1]]
		for i := 1; i < len(list); i++ {
			u, v := int(list[i-1]), int(list[i])
			if s.start[v] < s.finish[u]-validateEps {
				return fmt.Errorf("schedule: processor %d runs task %d at %g before task %d finishes at %g",
					p, v, s.start[v], u, s.finish[u])
			}
		}
	}

	// Precedence with communication, against the task graph itself.
	procs := make([]int, n)
	for v := range procs {
		procs[v] = int(s.proc[v])
	}
	return validatePrecedence(w, procs, s.start, s.finish, func(int) bool { return true })
}

// ValidateExecution checks the physical consistency of an executed (or
// simulated) trace: proc/start/finish as reported by the dynamic
// dispatcher or a repair executor. It enforces
//
//   - every task ran on exactly one in-range processor with finish >= start;
//   - precedence with communication: no task starts before each
//     predecessor's finish plus the communication delay between their
//     processors;
//   - no two tasks overlap on any processor.
//
// Unlike Validate it takes raw vectors, because executed traces carry
// realized times that no Schedule object describes.
func ValidateExecution(w *platform.Workload, proc []int, start, finish []float64) error {
	return ValidateExecutionSubset(w, proc, start, finish, nil)
}

// ValidateExecutionSubset is ValidateExecution restricted to the tasks
// with completed[v] true — the shape fault-tolerant executions produce,
// where dropped tasks carry no meaningful times. It additionally requires
// every predecessor of a completed task to be completed (a task cannot
// finish without its inputs). completed == nil means all tasks.
func ValidateExecutionSubset(w *platform.Workload, proc []int, start, finish []float64, completed []bool) error {
	n, m := w.N(), w.M()
	if len(proc) != n || len(start) != n || len(finish) != n {
		return fmt.Errorf("schedule: execution trace has %d/%d/%d entries, want %d",
			len(proc), len(start), len(finish), n)
	}
	if completed != nil && len(completed) != n {
		return fmt.Errorf("schedule: completed mask has %d entries, want %d", len(completed), n)
	}
	done := func(v int) bool { return completed == nil || completed[v] }
	type iv struct {
		s, f float64
		v    int
	}
	perProc := make([][]iv, m)
	for v := 0; v < n; v++ {
		if !done(v) {
			continue
		}
		if proc[v] < 0 || proc[v] >= m {
			return fmt.Errorf("schedule: task %d ran on processor %d out of range [0,%d)", v, proc[v], m)
		}
		if finish[v] < start[v]-validateEps {
			return fmt.Errorf("schedule: task %d finishes at %g before its start %g", v, finish[v], start[v])
		}
		perProc[proc[v]] = append(perProc[proc[v]], iv{start[v], finish[v], v})
	}
	if err := validatePrecedence(w, proc, start, finish, done); err != nil {
		return err
	}
	for p, ivs := range perProc {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
		for i := 1; i < len(ivs); i++ {
			a, b := ivs[i-1], ivs[i]
			if b.s < a.f-validateEps {
				return fmt.Errorf("schedule: processor %d overlap: task %d [%g,%g] and task %d [%g,%g]",
					p, a.v, a.s, a.f, b.v, b.s, b.f)
			}
		}
	}
	return nil
}

// validatePrecedence checks every data edge between done tasks: the
// consumer must not start before the producer's finish plus the
// communication cost between their processors, and a done consumer
// requires every producer to be done.
func validatePrecedence(w *platform.Workload, proc []int, start, finish []float64, done func(int) bool) error {
	for v := 0; v < w.N(); v++ {
		if !done(v) {
			continue
		}
		for _, a := range w.G.Predecessors(v) {
			u := a.To
			if !done(u) {
				return fmt.Errorf("schedule: task %d completed but its predecessor %d did not", v, u)
			}
			need := finish[u] + w.Sys.CommCost(proc[u], proc[v], a.Data)
			if start[v] < need-validateEps {
				return fmt.Errorf("schedule: task %d starts at %g before data from task %d arrives at %g",
					v, start[v], u, need)
			}
		}
	}
	return nil
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
