package schedule

import (
	"fmt"
	"sync"

	"robsched/internal/platform"
)

// Decoder is the fast path for decoding GA chromosomes (scheduling string +
// assignment string) into schedules. All transient construction state comes
// from a package-level pool and the data-arc CSR is shared per task graph,
// so steady-state decoding costs exactly two heap allocations per schedule
// (its int32 and float64 arenas).
//
// A Decoder is safe for concurrent use by multiple goroutines as long as
// each goroutine decodes distinct Schedule targets.
type Decoder struct {
	w    *platform.Workload
	arcs *arcSet
}

// NewDecoder returns a decoder for the given workload.
func NewDecoder(w *platform.Workload) *Decoder {
	return &Decoder{w: w, arcs: arcsFor(w.G)}
}

// Decode builds the schedule of a trusted (order, proc) chromosome.
func (d *Decoder) Decode(order, proc []int) (*Schedule, error) {
	s := new(Schedule)
	if err := d.DecodeInto(s, order, proc); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeInto builds the schedule into an existing (typically embedded)
// Schedule value, overwriting all of its state. On error the target is left
// in an unspecified state and must not be used.
func (d *Decoder) DecodeInto(s *Schedule, order, proc []int) error {
	sc := getScratch(d.w.N(), d.w.M())
	defer putScratch(sc)
	if err := sc.prepassFromOrder(d.w, order, proc); err != nil {
		return err
	}
	return buildWith(s, d.w, d.arcs, sc, order)
}

// decodeScratch holds every transient buffer one schedule construction
// needs. Instances are pooled; ensure grows them to the workload at hand.
type decodeScratch struct {
	proc    []int32 // validated task -> processor copy
	porder  []int32 // tasks grouped by processor
	dsucc   []int32 // disjunctive successor of each task, -1 if none
	dpred   []int32 // disjunctive predecessor of each task, -1 if none
	cursor  []int32 // Kahn indegrees (explicit-list construction only)
	pos     []int32 // position of each task in the scheduling string
	poff    []int32 // m+1 per-processor offsets into porder
	pcur    []int32 // per-processor fill cursors
	plast   []int32 // last task seen on each processor, -1 if none
	changed []bool  // delta decode: tasks with a reassigned processor
	sdirty  []bool  // delta decode: start/finish recompute frontier
	bdirty  []bool  // delta decode: bottom-level recompute frontier
}

var scratchPool = sync.Pool{New: func() any { return new(decodeScratch) }}

func getScratch(n, m int) *decodeScratch {
	sc := scratchPool.Get().(*decodeScratch)
	if cap(sc.proc) < n {
		sc.proc = make([]int32, n)
		sc.porder = make([]int32, n)
		sc.dsucc = make([]int32, n)
		sc.dpred = make([]int32, n)
		sc.cursor = make([]int32, n)
		sc.pos = make([]int32, n)
		sc.changed = make([]bool, n)
		sc.sdirty = make([]bool, n)
		sc.bdirty = make([]bool, n)
	}
	if cap(sc.poff) < m+1 {
		sc.poff = make([]int32, m+1)
		sc.pcur = make([]int32, m)
		sc.plast = make([]int32, m)
	}
	return sc
}

func putScratch(sc *decodeScratch) { scratchPool.Put(sc) }

// decodeOrder is the shared implementation behind FromOrder and
// FromOrderTrusted: prepass over the scheduling string, then the build.
func decodeOrder(s *Schedule, w *platform.Workload, order, proc []int) error {
	sc := getScratch(w.N(), w.M())
	defer putScratch(sc)
	if err := sc.prepassFromOrder(w, order, proc); err != nil {
		return err
	}
	return buildWith(s, w, arcsFor(w.G), sc, order)
}

// prepassFromOrder validates the chromosome shape (permutation, processor
// range) and computes the per-processor grouping and the disjunctive arcs
// into the scratch. Precedence validation of the order itself happens
// arc-by-arc during the communication-cost fill in buildWith.
func (sc *decodeScratch) prepassFromOrder(w *platform.Workload, order, proc []int) error {
	g := w.G
	n, m := w.N(), w.M()
	if len(order) != n {
		return fmt.Errorf("schedule: scheduling string has %d entries, want %d", len(order), n)
	}
	if len(proc) != n {
		return fmt.Errorf("schedule: proc has %d entries, want %d", len(proc), n)
	}
	pos := sc.pos[:n]
	for v := range pos {
		pos[v] = -1
	}
	for i, v := range order {
		if v < 0 || v >= n || pos[v] != -1 {
			return fmt.Errorf("schedule: scheduling string is not a permutation of the tasks")
		}
		pos[v] = int32(i)
	}
	sproc := sc.proc[:n]
	pcount := sc.poff[:m+1]
	for p := range pcount {
		pcount[p] = 0
	}
	for v, p := range proc {
		if p < 0 || p >= m {
			return fmt.Errorf("schedule: task %d assigned to processor %d out of range [0,%d)", v, p, m)
		}
		sproc[v] = int32(p)
		pcount[p+1]++
	}
	for p := 1; p <= m; p++ {
		pcount[p] += pcount[p-1]
	}
	// Fill the per-processor grouping in scheduling-string order and detect
	// the disjunctive arcs between consecutive same-processor tasks that are
	// not already data edges.
	pcur := sc.pcur[:m]
	plast := sc.plast[:m]
	for p := 0; p < m; p++ {
		pcur[p] = pcount[p]
		plast[p] = -1
	}
	dsucc := sc.dsucc[:n]
	dpred := sc.dpred[:n]
	for v := range dsucc {
		dsucc[v] = -1
		dpred[v] = -1
	}
	porder := sc.porder[:n]
	for _, v := range order {
		p := proc[v]
		porder[pcur[p]] = int32(v)
		pcur[p]++
		if u := plast[p]; u >= 0 && !g.HasEdge(int(u), v) {
			dsucc[u] = int32(v)
			dpred[v] = u
		}
		plast[p] = int32(v)
	}
	return nil
}

// prepassFromLists is prepassFromOrder for explicit, already-validated
// per-processor orders (the New constructor).
func (sc *decodeScratch) prepassFromLists(w *platform.Workload, proc []int, procOrder [][]int) {
	g := w.G
	n, m := w.N(), w.M()
	sproc := sc.proc[:n]
	for v, p := range proc {
		sproc[v] = int32(p)
	}
	dsucc := sc.dsucc[:n]
	dpred := sc.dpred[:n]
	for v := range dsucc {
		dsucc[v] = -1
		dpred[v] = -1
	}
	porder := sc.porder[:n]
	poff := sc.poff[:m+1]
	k := int32(0)
	for p, list := range procOrder {
		poff[p] = k
		for i, v := range list {
			porder[k] = int32(v)
			k++
			if i > 0 && !g.HasEdge(list[i-1], v) {
				dsucc[list[i-1]] = int32(v)
				dpred[v] = int32(list[i-1])
			}
		}
	}
	poff[m] = k
}

func carveI(a []int32, k int) ([]int32, []int32)       { return a[:k:k], a[k:] }
func carveF(a []float64, k int) ([]float64, []float64) { return a[:k:k], a[k:] }

// buildWith constructs the schedule from the scratch prepass, allocating
// exactly two arenas (one int32, one float64). When order is non-nil it
// doubles as the topological order of G_s — validated arc-by-arc during the
// communication-cost fill — so downstream passes iterate the scheduling
// string itself. The explicit-list path (order nil) derives the order with
// the same FIFO Kahn pass the legacy construction used, arc for arc, so
// its topological orders — and therefore every downstream result — remain
// bit-identical to it.
func buildWith(s *Schedule, w *platform.Workload, arcs *arcSet, sc *decodeScratch, order []int) error {
	sys := w.Sys
	n, m := w.N(), w.M()
	nE := len(arcs.succTo)

	ints := make([]int32, 5*n+m+1)
	s.proc, ints = carveI(ints, n)
	s.topo, ints = carveI(ints, n)
	s.porder, ints = carveI(ints, n)
	s.porderOff, ints = carveI(ints, m+1)
	s.dsucc, ints = carveI(ints, n)
	s.dpred, _ = carveI(ints, n)
	floats := make([]float64, 5*n+2*nE)
	s.succComm, floats = carveF(floats, nE)
	s.predComm, floats = carveF(floats, nE)
	s.expDur, floats = carveF(floats, n)
	s.start, floats = carveF(floats, n)
	s.finish, floats = carveF(floats, n)
	s.bl, floats = carveF(floats, n)
	s.slack, _ = carveF(floats, n)

	s.w = w
	s.arcs = arcs
	copy(s.proc, sc.proc[:n])
	copy(s.porder, sc.porder[:n])
	copy(s.porderOff, sc.poff[:m+1])
	copy(s.dsucc, sc.dsucc[:n])
	copy(s.dpred, sc.dpred[:n])

	// Communication costs, computed once per arc and mirrored into the pred
	// direction. When decoding an order the loop doubles as the precedence
	// check: one position comparison per arc replaces both the legacy
	// precedence scan and the Kahn cycle detection, and rejects every
	// inversion (a same-processor one is the legacy disjunctive cycle).
	succOff, succTo, succData := arcs.succOff, arcs.succTo, arcs.succData
	sMirror := arcs.sMirror
	if order != nil {
		pos := sc.pos[:n]
		for u := 0; u < n; u++ {
			pu := int(s.proc[u])
			up := pos[u]
			for k := succOff[u]; k < succOff[u+1]; k++ {
				to := succTo[k]
				if pos[to] < up {
					return fmt.Errorf("schedule: scheduling string is not a topological order of the task graph")
				}
				c := sys.CommCost(pu, int(s.proc[to]), succData[k])
				s.succComm[k] = c
				s.predComm[sMirror[k]] = c
			}
		}
		for i, v := range order {
			s.topo[i] = int32(v)
		}
	} else {
		for u := 0; u < n; u++ {
			pu := int(s.proc[u])
			for k := succOff[u]; k < succOff[u+1]; k++ {
				c := sys.CommCost(pu, int(s.proc[succTo[k]]), succData[k])
				s.succComm[k] = c
				s.predComm[sMirror[k]] = c
			}
		}
		// FIFO Kahn over G_s, writing the queue directly into topo; a
		// shortfall means the processor orders induced a cycle.
		predOff := arcs.predOff
		indeg := sc.cursor[:n]
		for v := 0; v < n; v++ {
			d := predOff[v+1] - predOff[v]
			if s.dpred[v] >= 0 {
				d++
			}
			indeg[v] = d
		}
		qlen := 0
		for v := 0; v < n; v++ {
			if indeg[v] == 0 {
				s.topo[qlen] = int32(v)
				qlen++
			}
		}
		for head := 0; head < qlen; head++ {
			v := int(s.topo[head])
			for k := succOff[v]; k < succOff[v+1]; k++ {
				to := succTo[k]
				indeg[to]--
				if indeg[to] == 0 {
					s.topo[qlen] = to
					qlen++
				}
			}
			if u := s.dsucc[v]; u >= 0 {
				indeg[u]--
				if indeg[u] == 0 {
					s.topo[qlen] = u
					qlen++
				}
			}
		}
		if qlen != n {
			return fmt.Errorf("schedule: processor orders conflict with precedence constraints (disjunctive graph is cyclic)")
		}
	}

	// Expected-duration analysis: ASAP start/finish, makespan M0, bottom
	// levels and slack (Definition 3.3).
	for v := 0; v < n; v++ {
		s.expDur[v] = w.ExpectedAt(v, int(s.proc[v]))
	}
	s.makespan = s.forward(s.expDur, s.start, s.finish)
	s.backward(s.expDur, s.bl)
	sum := 0.0
	s.minSlack = 0
	for v := 0; v < n; v++ {
		sl := s.makespan - s.bl[v] - s.start[v]
		// Clamp the tiny negative values floating-point subtraction can
		// produce on critical-path nodes.
		if sl < 0 && sl > -1e-9 {
			sl = 0
		}
		s.slack[v] = sl
		sum += sl
		if v == 0 || sl < s.minSlack {
			s.minSlack = sl
		}
	}
	s.avgSlack = sum / float64(n)
	return nil
}

// buildInto keeps the legacy entry point used by New.
func buildInto(s *Schedule, w *platform.Workload, sc *decodeScratch, order []int) error {
	return buildWith(s, w, arcsFor(w.G), sc, order)
}
